(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Section 4) and runs Bechamel micro-benchmarks over the substrate's
   execution tiers.

   For each figure the harness prints:
   - MEASURED rows: real executions of this repository's pipelines
     (interpreter / compiled stencil kernels / vendor kernels, simulated
     GPU clock, simulated MPI) at container-friendly problem sizes;
   - MODEL rows: the calibrated ARCHER2/V100/Slingshot machine models at
     the paper's problem sizes, which is where the figure *shapes* (who
     wins, crossovers) are reproduced. EXPERIMENTS.md records the
     paper-vs-ours comparison.

   Usage:  main.exe [--figure N] [--quick] [--no-bechamel]
           main.exe --serve   (BENCH_serve.json only, incl. saturation) *)

module P = Fsc_driver.Pipeline
module B = Fsc_driver.Benchmarks
module Rt = Fsc_rt.Memref_rt
module V = Fsc_rt.Vendor_kernels
module C = Fsc_perf.Cpu_model
module G = Fsc_perf.Gpu_model
module N = Fsc_perf.Net_model
module Cal = Fsc_perf.Calibrate

let quick = ref false
let figures = ref []
let run_bechamel = ref true
let kernels_only = ref false
let dist_only = ref false
let serve_only = ref false

let () =
  Array.iteri
    (fun i arg ->
      match arg with
      | "--quick" -> quick := true
      | "--no-bechamel" -> run_bechamel := false
      | "--kernels-only" -> kernels_only := true
      | "--dist" -> dist_only := true
      | "--serve" -> serve_only := true
      | "--figure" ->
        if i + 1 < Array.length Sys.argv then
          figures := int_of_string Sys.argv.(i + 1) :: !figures
      | _ -> ())
    Sys.argv

let want fig = !figures = [] || List.mem fig !figures

(* ------------------------------------------------------------------ *)
(* Machine-readable pipeline timings: BENCH_pipeline.json              *)
(* ------------------------------------------------------------------ *)

(* Instrument one representative compile+run (gauss-seidel through the
   gpu-optimised flow, which exercises the full Listing-4 pass pipeline)
   and dump per-phase / per-pass / per-kernel timings plus counters as
   JSON, so perf PRs can diff pipeline cost mechanically instead of
   scraping the tables above. *)
let write_pipeline_json () =
  let module Obs = Fsc_obs.Obs in
  let module J = Fsc_obs.Obs.Json in
  Obs.reset ();
  Obs.set_enabled true;
  let n = 12 in
  let iters = 2 in
  let src = B.gauss_seidel ~nx:n ~ny:n ~nz:n ~niter:iters () in
  let a, _ = P.stencil ~target:(P.Gpu P.Gpu_optimised) src in
  P.run a;
  P.shutdown a;
  Obs.set_enabled false;
  let ms s = J.Num (1000. *. s) in
  let arg_json name e =
    match List.assoc_opt name e.Obs.e_args with
    | Some a -> Obs.json_of_arg a
    | None -> J.Null
  in
  let phases =
    List.map
      (fun e ->
        J.Obj [ ("name", J.Str e.Obs.e_name); ("ms", ms e.Obs.e_dur) ])
      (Obs.events_with_cat "pipeline")
  in
  let passes =
    List.map
      (fun e ->
        J.Obj
          [ ("name", J.Str e.Obs.e_name); ("ms", ms e.Obs.e_dur);
            ("ops_before", arg_json "ops_before" e);
            ("ops_after", arg_json "ops_after" e);
            ("verify_ms", arg_json "verify_ms" e) ])
      (Obs.events_with_cat "pass")
  in
  let kernels =
    List.map
      (fun (name, count, total) ->
        J.Obj
          [ ("name", J.Str name); ("count", J.Num (float_of_int count));
            ("total_ms", ms total) ])
      (Obs.span_summary ~cat:"kernel" ())
  in
  let counters =
    List.map
      (fun (name, v) -> (name, J.Num (float_of_int v)))
      (Obs.counter_totals ())
  in
  let json =
    J.Obj
      [ ("benchmark",
         J.Str
           (Printf.sprintf "gauss_seidel %d^3 x%d, gpu-optimised" n iters));
        ("phases", J.List phases); ("passes", J.List passes);
        ("kernels", J.List kernels); ("counters", J.Obj counters) ]
  in
  let path = "BENCH_pipeline.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "pipeline timings written to %s (%d passes, %d phases)\n"
    path (List.length passes) (List.length phases)

(* ------------------------------------------------------------------ *)
(* Static-analysis timings: BENCH_analysis.json                        *)
(* ------------------------------------------------------------------ *)

(* Cost of the `sfc check` analyses (dependence classification + bounds
   checking) relative to lowering alone, per benchmark program — the
   overhead a build pays for running the linter on every file. *)
let write_analysis_json () =
  let module J = Fsc_obs.Obs.Json in
  let module Check = Fsc_analysis.Check in
  let time reps f =
    (* median-of-reps wall clock, in ms *)
    let samples =
      List.init reps (fun _ ->
          let t0 = Unix.gettimeofday () in
          ignore (f ());
          1e3 *. (Unix.gettimeofday () -. t0))
    in
    List.nth (List.sort compare samples) (reps / 2)
  in
  let n = 12 in
  let iters = 2 in
  let benches =
    [ ("gauss-seidel", B.gauss_seidel ~nx:n ~ny:n ~nz:n ~niter:iters ());
      ("pw-advection", B.pw_advection ~nx:n ~ny:n ~nz:n ~niter:iters ()) ]
  in
  let reps = if !quick then 5 else 11 in
  let series =
    List.map
      (fun (bname, src) ->
        let lower_ms =
          time reps (fun () -> Fsc_fortran.Flower.compile_source src)
        in
        let check_ms = time reps (fun () -> Check.check_source src) in
        let nests, carried =
          match Check.check_source src with
          | Ok (_, r) ->
            let s = r.Check.r_summary in
            ( s.Check.ns_parallel + s.Check.ns_carried + s.Check.ns_unknown,
              s.Check.ns_carried )
          | Error _ -> (0, 0)
        in
        J.Obj
          [ ("benchmark", J.Str bname); ("lower_ms", J.Num lower_ms);
            ("check_ms", J.Num check_ms);
            ("analysis_overhead_ms", J.Num (check_ms -. lower_ms));
            ("overhead_ratio", J.Num (check_ms /. lower_ms));
            ("nests", J.Num (float_of_int nests));
            ("carried", J.Num (float_of_int carried)) ])
      benches
  in
  let json =
    J.Obj
      [ ("setup",
         J.Str (Printf.sprintf "%d^3 x%d, median of %d reps" n iters reps));
        ("series", J.List series) ]
  in
  let path = "BENCH_analysis.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "analysis timings written to %s (%d programs)\n" path
    (List.length series)

(* ------------------------------------------------------------------ *)
(* Compilation-service timings: BENCH_serve.json                       *)
(* ------------------------------------------------------------------ *)

(* Cold-vs-warm compile series through the artifact cache, per
   benchmark and target, plus the wall clock of an 8-job batch on a
   2-worker pool — the numbers behind `sfc batch` / `sfc serve`. *)
let write_serve_json () =
  let module J = Fsc_obs.Obs.Json in
  let module Cc = Fsc_driver.Compile_cache in
  let fresh_cache () =
    let dir = Filename.temp_file "fsc_bench_cache" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    Cc.create_cache ~dir ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, 1e3 *. (Unix.gettimeofday () -. t0))
  in
  let n = 12 in
  let iters = 2 in
  let benches =
    [ ("gauss-seidel", B.gauss_seidel ~nx:n ~ny:n ~nz:n ~niter:iters ());
      ("pw-advection", B.pw_advection ~nx:n ~ny:n ~nz:n ~niter:iters ()) ]
  in
  let targets = [ P.Serial; P.Openmp 2; P.Gpu P.Gpu_optimised ] in
  let cache = fresh_cache () in
  let warm_reps = 5 in
  let series =
    List.concat_map
      (fun (bname, src) ->
        List.map
          (fun target ->
            let options = P.default_options ~target () in
            let _, cold_ms = time (fun () -> Cc.compile ~cache options src) in
            let warm_total =
              List.fold_left ( +. ) 0.
                (List.init warm_reps (fun _ ->
                     snd (time (fun () -> Cc.compile ~cache options src))))
            in
            let warm_ms = warm_total /. float_of_int warm_reps in
            J.Obj
              [ ("benchmark", J.Str bname);
                ("target", J.Str (P.target_name target));
                ("cold_ms", J.Num cold_ms); ("warm_ms", J.Num warm_ms);
                ("speedup", J.Num (cold_ms /. warm_ms)) ])
          targets)
      benches
  in
  (* batch wall clock: every target on both programs, 2 workers *)
  let job src target_fields =
    J.to_string (J.Obj (("source", J.Str src) :: target_fields))
  in
  let lines =
    List.concat_map
      (fun (_, src) ->
        [ job src [ ("target", J.Str "serial") ];
          job src [ ("target", J.Str "openmp"); ("threads", J.Num 2.) ];
          job src [ ("target", J.Str "gpu-initial") ];
          job src [ ("target", J.Str "gpu-optimised") ] ])
      benches
  in
  let bcache = fresh_cache () in
  let batch ~label:_ () =
    snd
      (time (fun () ->
           Fsc_server.Service.run_batch ~cache:bcache ~workers:2 lines))
  in
  let batch_cold_ms = batch ~label:"cold" () in
  let batch_warm_ms = batch ~label:"warm" () in
  (* ---- multi-client open-loop saturation sweep ----

     A real `serve` instance under paced one-connection-per-request load
     from concurrent client identities, at several offered-load multiples
     of the measured warm capacity. Latency is measured from the
     *scheduled* send time, so a lagging generator counts as queueing
     rather than hiding it (no coordinated omission). A quarter of the
     jobs are fresh sources (cold compiles); every ok reply's checksums
     must be bitwise identical to a serial in-process reference. *)
  let module Svc = Fsc_server.Service in
  let failures = ref [] in
  let sat_workers = 2 and sat_handlers = 12 and sat_queue = 3 in
  let n_clients = 8 in
  let jobs_per_point = if !quick then 20 else 40 in
  let variants = Hashtbl.create 64 in
  List.iteri (fun i (_, src) -> Hashtbl.replace variants i src) benches;
  let next_vid = ref (List.length benches) in
  (* a fresh variant pads a base program with [vid] blank lines: a new
     cache key, the same program, the same checksums *)
  let fresh_variant () =
    let vid = !next_vid in
    incr next_vid;
    let _, base = List.nth benches (vid mod List.length benches) in
    Hashtbl.replace variants vid (base ^ String.make vid '\n');
    vid
  in
  let multipliers = [ 0.5; 1.0; 2.0; 4.0 ] in
  let schedules =
    List.map
      (fun m ->
        ( m,
          List.init jobs_per_point (fun j ->
              let vid = if j mod 4 = 3 then fresh_variant () else j mod 2 in
              (j, vid)) ))
      multipliers
  in
  let job_line ~client vid =
    J.to_string
      (J.Obj
         [ ("source", J.Str (Hashtbl.find variants vid));
           ("target", J.Str "serial"); ("action", J.Str "run");
           ("id", J.Num (float_of_int vid)); ("client", J.Str client) ])
  in
  let reply_fields r =
    match J.of_string r with
    | j ->
      let str name =
        match J.member name j with Some (J.Str s) -> s | _ -> ""
      in
      let vid =
        match J.member "id" j with
        | Some (J.Num v) -> int_of_float v
        | _ -> -1
      in
      let cks =
        match J.member "checksums" j with
        | Some v -> J.to_string v
        | None -> ""
      in
      (vid, str "status", str "cache", cks)
    | exception J.Parse_error _ -> (-1, "unparseable", "", "")
  in
  (* serial in-process reference: the bitwise ground truth per job *)
  let reference = Hashtbl.create 64 in
  let ref_lines =
    List.init !next_vid (fun vid -> job_line ~client:"ref" vid)
  in
  List.iter
    (fun r ->
      let vid, status, _, cks = reply_fields r in
      if status <> "ok" then
        failures :=
          Printf.sprintf "saturation: serial reference job %d is %s" vid
            status
          :: !failures;
      Hashtbl.replace reference vid cks)
    (Svc.run_batch ~workers:1 ~cache:(fresh_cache ()) ref_lines);
  let tmp_dir () =
    let d = Filename.temp_file "fsc_bench_serve" "" in
    Sys.remove d;
    Unix.mkdir d 0o700;
    d
  in
  let socket = Filename.concat (tmp_dir ()) "sfc.sock" in
  let server_cache = fresh_cache () in
  let server =
    Domain.spawn (fun () ->
        Svc.serve ~cache:server_cache ~workers:sat_workers
          ~queue_capacity:sat_queue ~handlers:sat_handlers ~socket ())
  in
  let rec await_socket tries =
    if not (Sys.file_exists socket) then
      if tries <= 0 then
        failures := "saturation: serve socket never appeared" :: !failures
      else begin
        Unix.sleepf 0.02;
        await_socket (tries - 1)
      end
  in
  await_socket 250;
  (* warm the base variants, then measure steady-state service time *)
  List.iteri
    (fun i _ -> ignore (Svc.request ~socket [ job_line ~client:"warmup" i ]))
    benches;
  let warm_s =
    let reps = 6 in
    let t0 = Unix.gettimeofday () in
    for i = 1 to reps do
      ignore
        (Svc.request ~socket
           [ job_line ~client:"warmup" (i mod List.length benches) ])
    done;
    max 1e-4 ((Unix.gettimeofday () -. t0) /. float_of_int reps)
  in
  let cold_s =
    let reps = 2 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore
        (Svc.request ~socket [ job_line ~client:"warmup" (fresh_variant ()) ])
    done;
    max 1e-4 ((Unix.gettimeofday () -. t0) /. float_of_int reps)
  in
  (* the offered mix is 3 warm jobs to 1 cold, so capacity must price
     the cold compiles in or every point lands past saturation *)
  let svc_s = (0.75 *. warm_s) +. (0.25 *. cold_s) in
  let capacity = float_of_int sat_workers /. svc_s in
  let percentile lats p =
    let a = Array.of_list lats in
    let m = Array.length a in
    if m = 0 then 0.
    else begin
      Array.sort compare a;
      a.(max 0 (min (m - 1) (int_of_float (ceil (p *. float_of_int m)) - 1)))
    end
  in
  let points =
    List.map
      (fun (mult, sched) ->
        let rate = mult *. capacity in
        let t0 = Unix.gettimeofday () +. 0.05 in
        let buckets = Array.make n_clients [] in
        List.iter
          (fun (j, vid) ->
            buckets.(j mod n_clients) <-
              (float_of_int j /. rate, j, vid) :: buckets.(j mod n_clients))
          sched;
        let doms =
          Array.map
            (fun bucket ->
              let bucket = List.rev bucket in
              Domain.spawn (fun () ->
                  List.map
                    (fun (t, j, vid) ->
                      let client = Printf.sprintf "load-%d" (j mod n_clients) in
                      let target = t0 +. t in
                      let now = Unix.gettimeofday () in
                      if target > now then Unix.sleepf (target -. now);
                      let reply =
                        match Svc.request ~socket [ job_line ~client vid ] with
                        | [ r ] -> r
                        | _ -> ""
                      in
                      (vid, target, Unix.gettimeofday (), reply))
                    bucket))
            buckets
        in
        let results = Array.to_list doms |> List.concat_map Domain.join in
        let t_end =
          List.fold_left (fun acc (_, _, fin, _) -> max acc fin) t0 results
        in
        let wall = max 1e-6 (t_end -. t0) in
        let ok = ref 0 and rejected = ref 0 and errors = ref 0 in
        let cold = ref 0 and warm = ref 0 in
        let lats = ref [] in
        List.iter
          (fun (vid, sched_t, fin, reply) ->
            let _, status, cachef, cks = reply_fields reply in
            match status with
            | "ok" ->
              incr ok;
              lats := (1e3 *. (fin -. sched_t)) :: !lats;
              (match cachef with
              | "hit" -> incr warm
              | "miss" -> incr cold
              | _ -> ());
              (match Hashtbl.find_opt reference vid with
              | Some ref_cks when ref_cks = cks -> ()
              | Some _ ->
                failures :=
                  Printf.sprintf
                    "saturation x%g: job %d checksums differ from serial"
                    mult vid
                  :: !failures
              | None ->
                failures :=
                  Printf.sprintf "saturation x%g: job %d has no reference"
                    mult vid
                  :: !failures)
            | "rejected" -> incr rejected
            | other ->
              incr errors;
              failures :=
                Printf.sprintf "saturation x%g: job %d unexpected status %S"
                  mult vid other
                :: !failures)
          results;
        let total = List.length results in
        let p50 = percentile !lats 0.50 and p99 = percentile !lats 0.99 in
        if p99 < p50 then
          failures :=
            Printf.sprintf "saturation x%g: p99 below p50" mult :: !failures;
        Printf.printf
          "  serve saturation x%-4g %5.1f req/s offered: %5.1f/s through, \
           p50 %6.1f ms, p99 %6.1f ms, shed %4.1f%%, warm %d/%d\n"
          mult rate
          (float_of_int !ok /. wall)
          p50 p99
          (100. *. float_of_int !rejected /. float_of_int (max 1 total))
          !warm (!warm + !cold);
        ( !cold,
          !warm,
          J.Obj
            [ ("offered_multiplier", J.Num mult);
              ("offered_per_s", J.Num rate);
              ("jobs", J.Num (float_of_int total));
              ("ok", J.Num (float_of_int !ok));
              ("rejected", J.Num (float_of_int !rejected));
              ("errors", J.Num (float_of_int !errors));
              ("throughput_per_s", J.Num (float_of_int !ok /. wall));
              ("p50_ms", J.Num p50); ("p99_ms", J.Num p99);
              ("shed_rate",
               J.Num (float_of_int !rejected /. float_of_int (max 1 total)));
              ("cold_compiles", J.Num (float_of_int !cold));
              ("warm_hits", J.Num (float_of_int !warm));
              ("warm_hit_ratio",
               J.Num
                 (if !warm + !cold = 0 then 0.
                  else float_of_int !warm /. float_of_int (!warm + !cold)))
            ] ))
      schedules
  in
  (try ignore (Svc.request ~socket [ {|{"action": "shutdown"}|} ])
   with Unix.Unix_error _ | Sys_error _ -> ());
  Domain.join server;
  let total_cold = List.fold_left (fun a (c, _, _) -> a + c) 0 points in
  let total_warm = List.fold_left (fun a (_, w, _) -> a + w) 0 points in
  let point_objs = List.map (fun (_, _, o) -> o) points in
  if List.length point_objs < 4 then
    failures := "saturation: fewer than 4 offered-load points" :: !failures;
  if total_cold = 0 then
    failures := "saturation: no cold compiles observed" :: !failures;
  if total_warm = 0 then
    failures := "saturation: no warm cache hits observed" :: !failures;
  let json =
    J.Obj
      [ ("setup",
         J.Str
           (Printf.sprintf "%d^3 x%d, %d warm reps, 2 workers" n iters
              warm_reps));
        ("series", J.List series);
        ("batch",
         J.Obj
           [ ("jobs", J.Num (float_of_int (List.length lines)));
             ("workers", J.Num 2.); ("cold_ms", J.Num batch_cold_ms);
             ("warm_ms", J.Num batch_warm_ms) ]);
        ("saturation",
         J.Obj
           [ ("setup",
              J.Obj
                [ ("workers", J.Num (float_of_int sat_workers));
                  ("handlers", J.Num (float_of_int sat_handlers));
                  ("queue_capacity", J.Num (float_of_int sat_queue));
                  ("clients", J.Num (float_of_int n_clients));
                  ("jobs_per_point", J.Num (float_of_int jobs_per_point));
                  ("service_ms", J.Num (1e3 *. svc_s));
                  ("capacity_per_s", J.Num capacity) ]);
             ("points", J.List point_objs) ]) ]
  in
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  (* self-validate: the file must re-parse and carry the saturation
     curve with its percentile and shed fields *)
  let reread =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (match J.of_string reread with
  | parsed -> (
    if
      J.member "series" parsed = None
      || J.member "batch" parsed = None
      || J.member "saturation" parsed = None
    then
      failures := (path ^ ": missing series/batch/saturation") :: !failures;
    match
      Option.bind (J.member "saturation" parsed) (J.member "points")
    with
    | Some (J.List (first :: _ as pts)) ->
      if List.length pts < 4 then
        failures := (path ^ ": saturation has < 4 points") :: !failures;
      List.iter
        (fun field ->
          if J.member field first = None then
            failures :=
              Printf.sprintf "%s: saturation point lacks %S" path field
              :: !failures)
        [ "offered_per_s"; "throughput_per_s"; "p50_ms"; "p99_ms";
          "shed_rate"; "warm_hit_ratio" ]
    | _ ->
      failures := (path ^ ": saturation points missing/empty") :: !failures)
  | exception J.Parse_error e ->
    failures := (path ^ ": unparseable: " ^ e) :: !failures);
  Printf.printf
    "serve timings written to %s (%d series points; batch %d jobs cold \
     %.0f ms -> warm %.0f ms; %d saturation points)\n"
    path (List.length series) (List.length lines) batch_cold_ms batch_warm_ms
    (List.length point_objs);
  if !failures <> [] then begin
    List.iter (fun f -> Printf.eprintf "FAIL %s\n" f) !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Execution-engine comparison: BENCH_kernels.json                     *)
(* ------------------------------------------------------------------ *)

(* The four kernel execution tiers (interp / closure / vector / native)
   on the row-friendly benchmarks. Closure, vector and native run on the
   same compiled artifact (same grids) so the ratio isolates the engine;
   the interpreter runs on a much smaller grid, like figure2_measured,
   and its ratio is a tier gap rather than a same-size speedup. The
   native tier builds Sync into a fresh private cache: the first run
   pays the cold ocamlopt compile — recorded separately as
   [cold_build_ms] — and the measured windows then see only the plugin's
   steady-state throughput. Before any number is written the
   closure/vector/native grids are required to be bitwise identical, and
   neither vector (vs closure) nor native (vs vector) may lose to the
   tier below — any failure exits nonzero, which is what ci.sh asserts.
   Without an ocamlopt toolchain the native column is skipped with a
   notice and the gate does not apply. *)
let write_kernels_json () =
  let module J = Fsc_obs.Obs.Json in
  let min_seconds = if !quick then 0.1 else 0.2 in
  let n_gs = if !quick then 32 else 48 in
  let n_lp = if !quick then 96 else 128 in
  let n_small = if !quick then 8 else 12 in
  (* enough timesteps that per-run fixed costs (allocation, host
     interpretation) amortise against kernel execution *)
  let iters = if !quick then 6 else 10 in
  let benches =
    [ (* name, fast source + cells, interp source + cells, checked grid *)
      ("gauss-seidel",
       B.gauss_seidel ~nx:n_gs ~ny:n_gs ~nz:n_gs ~niter:iters (),
       float_of_int (n_gs * n_gs * n_gs * iters),
       Printf.sprintf "%d^3 x%d" n_gs iters,
       B.gauss_seidel ~nx:n_small ~ny:n_small ~nz:n_small ~niter:iters (),
       float_of_int (n_small * n_small * n_small * iters),
       "u");
      ("laplace",
       B.laplace ~n:n_lp ~niter:iters (),
       float_of_int (n_lp * n_lp * iters),
       Printf.sprintf "%d^2 x%d" n_lp iters,
       B.laplace ~n:n_small ~niter:iters (),
       float_of_int (n_small * n_small * iters),
       "phi") ]
  in
  let failures = ref [] in
  let series = ref [] and speedups = ref [] in
  (* best of three windows: the mean of one window is hostage to
     scheduler noise in a shared container; the fastest window is the
     engine's actual throughput *)
  let measure ~label a cells_per_iter =
    let windows =
      List.init 3 (fun _ ->
          Cal.measure ~label ~cells_per_iter ~min_seconds (fun () ->
              P.run a))
    in
    List.fold_left
      (fun best m -> if Cal.mcells m > Cal.mcells best then m else best)
      (List.hd windows) (List.tl windows)
  in
  List.iter
    (fun (bname, src, cells, size, src_small, cells_small, grid) ->
      (* one compile, three links: the engine is link-time state *)
      let options = P.default_options ~target:P.Serial () in
      let ca = P.compile options src in
      let linked engine = P.link ~engine ca in
      let a_interp, _ =
        P.stencil ~target:P.Serial ~engine:P.Engine_interp src_small
      in
      let m_interp =
        measure
          ~label:(bname ^ "  interp (FIR interpreter)")
          a_interp cells_small
      in
      let a_closure = linked P.Engine_closure in
      let m_closure =
        measure
          ~label:(bname ^ "  closure (per-cell JIT)")
          a_closure cells
      in
      let a_vector = linked P.Engine_vector in
      let m_vector =
        measure
          ~label:(bname ^ "  vector (row bytecode)")
          a_vector cells
      in
      (* native: Sync builds into a fresh private cache so every plugin
         compile is cold and attributable to this benchmark *)
      let module N = Fsc_codegen.Native in
      let native_ctx =
        N.create
          ~cache:
            (Fsc_cache.Cache.create
               ~dir:
                 (Filename.concat
                    (Filename.get_temp_dir_name ())
                    (Printf.sprintf "sfc-bench-native-%d-%s" (Unix.getpid ())
                       bname))
               ~version:N.format_version ())
          ~mode:N.Sync ()
      in
      let native =
        match N.toolchain_error native_ctx with
        | Some why ->
          Printf.printf "  %s: native tier skipped (%s)\n" bname why;
          None
        | None ->
          let a_native = P.link ~engine:P.Engine_native ~native:native_ctx ca in
          (* the first run binds and compiles inline (Sync): after it,
             the per-kernel reports carry the cold build cost *)
          P.run a_native;
          let build_ms =
            List.fold_left
              (fun acc (_, impl) ->
                match impl with
                | P.Native_jit (_, nk) ->
                  Printf.printf "    %s: %s\n" (N.name nk) (N.describe nk);
                  acc +. Option.value (N.report nk).N.rp_build_ms ~default:0.
                | _ -> acc)
              0. a_native.P.a_kernels
          in
          let m_native =
            measure
              ~label:(bname ^ "  native (compiled plugin)")
              a_native cells
          in
          Some (a_native, m_native, build_ms)
      in
      print_endline
        (Cal.report
           ([ m_interp; m_closure; m_vector ]
           @ match native with Some (_, m, _) -> [ m ] | None -> []));
      (* bitwise agreement on the full grid across the compiled tiers *)
      let check_diff other_name other_a =
        let diff =
          Rt.max_abs_diff
            (P.buffer_exn a_closure grid)
            (P.buffer_exn other_a grid)
        in
        if diff <> 0.0 then
          failures :=
            Printf.sprintf "%s: closure/%s grids differ by %g" bname
              other_name diff
            :: !failures
      in
      check_diff "vector" a_vector;
      Option.iter (fun (a, _, _) -> check_diff "native" a) native;
      (* per-nest vectorisation coverage for the record *)
      let vec_nests, nests =
        List.fold_left
          (fun (v, n) (_, impl) ->
            match impl with
            | P.Vectorised (_, plan) ->
              let module Kb = Fsc_rt.Kernel_bytecode in
              (v + Kb.vectorised_nests plan, n + Kb.nest_count plan)
            | _ -> (v, n))
          (0, 0) a_vector.P.a_kernels
      in
      P.shutdown a_closure;
      P.shutdown a_vector;
      P.shutdown a_interp;
      Option.iter (fun (a, _, _) -> P.shutdown a) native;
      let point ?(extra = []) engine m cells_note =
        J.Obj
          ([ ("benchmark", J.Str bname); ("engine", J.Str engine);
             ("size", J.Str cells_note);
             ("mcells_per_s", J.Num (Cal.mcells m)) ]
          @ extra)
      in
      series :=
        !series
        @ [ point "interp" m_interp
              (Printf.sprintf "%.0f cells" cells_small);
            point "closure" m_closure size; point "vector" m_vector size ]
        @ (match native with
          | Some (_, m, build_ms) ->
            [ point ~extra:[ ("cold_build_ms", J.Num build_ms) ] "native" m
                size ]
          | None -> []);
      let v_over_c = Cal.mcells m_vector /. Cal.mcells m_closure in
      if v_over_c < 1.0 then
        failures :=
          Printf.sprintf "%s: vector engine slower than closure (%.2fx)"
            bname v_over_c
          :: !failures;
      let native_fields =
        match native with
        | None -> []
        | Some (_, m, build_ms) ->
          let n_over_v = Cal.mcells m /. Cal.mcells m_vector in
          if n_over_v < 1.0 then
            failures :=
              Printf.sprintf "%s: native engine slower than vector (%.2fx)"
                bname n_over_v
              :: !failures;
          Printf.printf "  %s: native/vector %.2fx (cold build %.1f ms)\n"
            bname n_over_v build_ms;
          [ ("native_over_vector", J.Num n_over_v);
            ("native_cold_build_ms", J.Num build_ms) ]
      in
      Printf.printf
        "  %s: vector/closure %.2fx, closure/interp tier gap %.0fx \
         (%d/%d nests vectorised)\n"
        bname v_over_c
        (Cal.mcells m_closure /. Cal.mcells m_interp)
        vec_nests nests;
      speedups :=
        !speedups
        @ [ J.Obj
              ([ ("benchmark", J.Str bname);
                 ("vector_over_closure", J.Num v_over_c);
                 ("closure_over_interp",
                  J.Num (Cal.mcells m_closure /. Cal.mcells m_interp));
                 ("vectorised_nests", J.Num (float_of_int vec_nests));
                 ("nests", J.Num (float_of_int nests)) ]
              @ native_fields) ])
    benches;
  (* --- scheduling ablations: the native tier's emit-time transforms.
     Four knob combinations per benchmark — native_v1 (both off: the
     flat v1 loop schedule), each knob alone, native_v2 (both on) —
     plus a pooled v2 point on an OpenMP compile so the in-plugin
     work-sharing path is exercised. Every configuration must stay
     bitwise identical to the closure engine. Two kinds of gate: the
     throughput gate (v2 over v1 on the perf benchmarks, full margin
     only at full sizes where the rolling-window and blit savings
     dominate fixed costs) and structural gates — aligned fusion must
     fire on smooth, the shifted sweep/copy schedule on Gauss-Seidel —
     which are deterministic and immune to container timing noise. *)
  let scheduling = ref [] in
  let module N = Fsc_codegen.Native in
  let sched_ctx ~bname ~cname =
    N.create
      ~cache:
        (Fsc_cache.Cache.create
           ~dir:
             (Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "sfc-bench-sched-%d-%s-%s" (Unix.getpid ())
                   bname cname))
           ~version:N.format_version ())
      ~mode:N.Sync ()
  in
  let sched_gate = if !quick then 1.05 else 1.3 in
  let sched_benches =
    [ ("gauss-seidel",
       B.gauss_seidel ~nx:n_gs ~ny:n_gs ~nz:n_gs ~niter:iters (),
       float_of_int (n_gs * n_gs * n_gs * iters),
       Printf.sprintf "%d^3 x%d" n_gs iters, "u", true, "shift d=");
      ("laplace",
       B.laplace ~n:n_lp ~niter:iters (),
       float_of_int (n_lp * n_lp * iters),
       Printf.sprintf "%d^2 x%d" n_lp iters, "phi", true, "shift d=");
      ("smooth",
       B.smooth ~nx:n_gs ~ny:n_gs ~nz:n_gs ~niter:iters (),
       float_of_int (n_gs * n_gs * n_gs * iters),
       Printf.sprintf "%d^3 x%d" n_gs iters, "d", false, "aligned") ]
  in
  let sched_cfgs =
    [ ("native_v1", false, false); ("native_no_fuse", true, false);
      ("native_no_tile", false, true); ("native_v2", true, true) ]
  in
  (match N.toolchain_error (sched_ctx ~bname:"probe" ~cname:"probe") with
  | Some why -> Printf.printf "  scheduling ablations skipped (%s)\n" why
  | None ->
    List.iter
      (fun (bname, src, cells, size, grid, perf_gate, fuse_marker) ->
        let options = P.default_options ~target:P.Serial () in
        let ca = P.compile options src in
        let a_closure = P.link ~engine:P.Engine_closure ca in
        P.run a_closure;
        (* one native link per knob combination, each into its own
           fresh Sync cache; the first run binds and compiles inline *)
        let kernel_stats a =
          List.fold_left
            (fun (f, w, b, d) (_, impl) ->
              match impl with
              | P.Native_jit (_, nk) ->
                let r = N.report nk in
                ( f + r.N.rp_fused_nests,
                  w + r.N.rp_reuse_windows,
                  b + r.N.rp_copy_blits,
                  d ^ (if d = "" then "" else " | ") ^ r.N.rp_detail )
              | _ -> (f, w, b, d))
            (0, 0, 0, "") a.P.a_kernels
        in
        let check_bitwise cname a =
          let diff =
            Rt.max_abs_diff
              (P.buffer_exn a_closure grid)
              (P.buffer_exn a grid)
          in
          if diff <> 0.0 then
            failures :=
              Printf.sprintf "%s/%s: closure/native grids differ by %g"
                bname cname diff
              :: !failures
        in
        (* link every configuration first, then measure them in
           interleaved round-robin windows: the container's CPU budget
           is bursty, and sequential per-config measurement would hand
           whichever config coincides with a slow burst a phantom loss.
           A burst inside a round slows every config's window of that
           round; taking each config's best window then compares like
           against like. *)
        let linked_cfgs =
          List.map
            (fun (cname, tile, fuse) ->
              let a =
                P.link ~engine:P.Engine_native
                  ~native:(sched_ctx ~bname ~cname) ~native_tile:tile
                  ~native_fuse:fuse ca
              in
              P.run a;
              let fused, windows, blits, detail = kernel_stats a in
              Printf.printf "    %s/%s: %s\n" bname cname detail;
              (cname, a, (fused, windows, blits, detail)))
            sched_cfgs
        in
        let sched_seconds = Float.max min_seconds 0.2 in
        let best = Hashtbl.create 8 in
        for _ = 1 to 4 do
          List.iter
            (fun (cname, a, _) ->
              let m =
                Cal.measure
                  ~label:(Printf.sprintf "%s  %s" bname cname)
                  ~cells_per_iter:cells ~min_seconds:sched_seconds (fun () ->
                    P.run a)
              in
              match Hashtbl.find_opt best cname with
              | Some prev when Cal.mcells prev >= Cal.mcells m -> ()
              | _ -> Hashtbl.replace best cname m)
            linked_cfgs
        done;
        let results =
          List.map
            (fun (cname, a, (fused, windows, blits, detail)) ->
              check_bitwise cname a;
              P.shutdown a;
              (cname, Cal.mcells (Hashtbl.find best cname), fused, windows,
               blits, detail))
            linked_cfgs
        in
        let mcells_of want =
          match List.find_opt (fun (c, _, _, _, _, _) -> c = want) results with
          | Some (_, mc, _, _, _, _) -> mc
          | None -> 0.0
        in
        let v1 = mcells_of "native_v1" and v2 = mcells_of "native_v2" in
        Printf.printf "  %s: scheduled/flat (v2/v1) %.2fx\n" bname (v2 /. v1);
        if perf_gate && v2 < sched_gate *. v1 then
          failures :=
            Printf.sprintf
              "%s: scheduled native below the %.2fx gate over flat (%.2fx)"
              bname sched_gate (v2 /. v1)
            :: !failures;
        (* structural gate: the fusion kind the benchmark exists to
           prove must actually appear in the v2 report *)
        (match
           List.find_opt (fun (c, _, _, _, _, _) -> c = "native_v2") results
         with
        | Some (_, _, fused, _, _, detail) ->
          if fused < 2 then
            failures :=
              Printf.sprintf "%s: v2 schedule fused no nests" bname
              :: !failures;
          let marker_present =
            let ml = String.length fuse_marker
            and dl = String.length detail in
            let rec scan i =
              i + ml <= dl && (String.sub detail i ml = fuse_marker
                               || scan (i + 1))
            in
            scan 0
          in
          if not marker_present then
            failures :=
              Printf.sprintf "%s: v2 schedule missing '%s' fusion" bname
                fuse_marker
              :: !failures
        | None -> ());
        (* pooled v2: an OpenMP compile of the same program, so emitted
           parallel levels dispatch through the in-plugin pool pfor *)
        let ca_mp =
          P.compile (P.default_options ~target:(P.Openmp 2) ()) src
        in
        let a_pool =
          P.link ~engine:P.Engine_native
            ~native:(sched_ctx ~bname ~cname:"pool") ca_mp
        in
        P.run a_pool;
        let p_fused, p_windows, p_blits, _ = kernel_stats a_pool in
        let par_mode =
          List.fold_left
            (fun acc (_, impl) ->
              match impl with
              | P.Native_jit (_, nk) -> (
                match (N.report nk).N.rp_par_mode with
                | Some m -> Some m
                | None -> acc)
              | _ -> acc)
            None a_pool.P.a_kernels
          |> Option.value ~default:"unknown"
        in
        let m_pool =
          measure ~label:(Printf.sprintf "%s  native_v2_pool2" bname) a_pool
            cells
        in
        check_bitwise "native_v2_pool2" a_pool;
        P.shutdown a_pool;
        P.shutdown a_closure;
        let sched_point ?(extra = []) cname mc fused windows blits =
          J.Obj
            ([ ("benchmark", J.Str bname); ("config", J.Str cname);
               ("size", J.Str size); ("mcells_per_s", J.Num mc);
               ("fused_nests", J.Num (float_of_int fused));
               ("reuse_windows", J.Num (float_of_int windows));
               ("copy_blits", J.Num (float_of_int blits)) ]
            @ extra)
        in
        scheduling :=
          !scheduling
          @ List.map
              (fun (cname, mc, fused, windows, blits, _) ->
                sched_point cname mc fused windows blits)
              results
          @ [ sched_point
                ~extra:[ ("par_mode", J.Str par_mode) ]
                "native_v2_pool2" (Cal.mcells m_pool) p_fused p_windows
                p_blits ])
      sched_benches);
  let json =
    J.Obj
      [ ("setup",
         J.Str
           (Printf.sprintf
              "serial, engines on identical compiled artifacts; interp \
               tier on %d-sized grids; min %.1fs per measurement"
              n_small min_seconds));
        ("series", J.List !series); ("speedups", J.List !speedups);
        ("scheduling", J.List !scheduling) ]
  in
  let path = "BENCH_kernels.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  (* self-validate: the file must re-parse and carry both sections *)
  let reread =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (match J.of_string reread with
  | parsed ->
    if
      J.member "series" parsed = None
      || J.member "speedups" parsed = None
      || J.member "scheduling" parsed = None
    then
      failures := (path ^ ": missing series/speedups/scheduling") :: !failures
  | exception J.Parse_error e ->
    failures := (path ^ ": unparseable: " ^ e) :: !failures);
  Printf.printf "kernel engine timings written to %s (%d series points)\n"
    path (List.length !series);
  if !failures <> [] then begin
    List.iter (fun f -> Printf.eprintf "FAIL %s\n" f) !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Distributed backend scaling: BENCH_dmp.json                         *)
(* ------------------------------------------------------------------ *)

(* The Figure-6 counterpart for the real distributed backend: strong and
   weak scaling of the full pipeline at `--target dist` (concurrent
   ranks, vector engine per rank), overlap-vs-blocking supersteps on
   identical work, measured halo traffic beside the ARCHER2 model's
   projection — with the model curve extended past the measurable rank
   counts to 128 simulated ranks — and per-rank vector-engine
   utilisation. Self-validating: the file is re-read and failures
   (overlap losing to blocking, measured throughput falling outside the
   stated factor of the model, coalescing not cutting message counts by
   the swap-set size) exit nonzero so CI can gate on it. *)
let write_dmp_json () =
  let module J = Fsc_obs.Obs.Json in
  let module Dk = Fsc_dmp.Dist_kernel in
  let failures = ref [] in
  let n = if !quick then 12 else 16 in
  let iters = if !quick then 4 else 8 in
  let reps = if !quick then 3 else 5 in
  (* Best-of-[reps] wall clock of [P.run] on one linked artifact, with
     one untimed warm-up run first (pool spin-up, scatter-group and
     runner compilation) so warm-up traffic and time never reach the
     report. Group stats reset at every [P.run] (buffers are reallocated
     per run), so snapshotting them right after a rep yields exactly
     that rep's halo traffic; we keep the snapshot belonging to the rep
     whose time we report. *)
  let best_run_s a =
    P.run a;
    let best = ref infinity in
    let best_stats = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      P.run a;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then begin
        best := dt;
        best_stats := Option.map Dk.stats a.P.a_dist
      end
    done;
    (!best, !best_stats)
  in
  let mcells_of ~cells dt = float_of_int (cells * iters) /. dt /. 1e6 in
  let dist_point ?(mode = Fsc_dmp.Dist_exec.Overlap) ~global:(gx, gy, gz)
      ranks =
    let src = B.gauss_seidel ~nx:gx ~ny:gy ~nz:gz ~niter:iters () in
    let a, _ =
      P.stencil ~target:(P.Dist ranks) ~engine:P.Engine_vector
        ~dist_mode:mode src
    in
    let dt, stats = best_run_s a in
    P.shutdown a;
    (mcells_of ~cells:(gx * gy * gz) dt, stats)
  in
  (* strong scaling: fixed global grid, growing rank counts *)
  let rank_list = [ 1; 2; 4; 8 ] in
  let measured_8 = ref 0.0 in
  let strong =
    List.map
      (fun ranks ->
        let mc, stats = dist_point ~global:(n, n, n) ranks in
        if ranks = 8 then measured_8 := mc;
        let msgs, bytes, vec, total =
          match stats with
          | Some s ->
            ( List.fold_left (fun a g -> a + g.Dk.gs_msgs) 0 s.Dk.ds_groups,
              List.fold_left (fun a g -> a + g.Dk.gs_bytes) 0 s.Dk.ds_groups,
              s.Dk.ds_vec_nests, s.Dk.ds_total_nests )
          | None -> (0, 0, 0, 0)
        in
        if ranks > 1 && msgs = 0 then
          failures :=
            Printf.sprintf "strong ranks=%d: no halo messages" ranks
            :: !failures;
        if total > 0 && vec = 0 then
          failures :=
            Printf.sprintf "strong ranks=%d: vector engine unused" ranks
            :: !failures;
        let model =
          N.mcells ~variant:N.Auto_dmp ~global:(n, n, n) ~ranks ()
        in
        J.Obj
          [ ("ranks", J.Num (float_of_int ranks)); ("mcells", J.Num mc);
            ("halo_msgs", J.Num (float_of_int msgs));
            ("msgs_per_superstep",
             J.Num (float_of_int msgs /. float_of_int iters));
            ("halo_kb", J.Num (float_of_int bytes /. 1024.));
            ("model_mcells", J.Num model);
            ("vec_nests", J.Num (float_of_int vec));
            ("total_nests", J.Num (float_of_int total)) ])
      rank_list
  in
  (* the Figure-6 tail: the ARCHER2 model carries the curve past what
     one machine can execute, out to 128 simulated ranks (a rank count
     whose process grid cannot fit the global face — 128 on the quick
     12x12 — is skipped, not faked) *)
  let projected =
    List.filter_map
      (fun ranks ->
        match
          ( N.mcells ~variant:N.Auto_dmp ~global:(n, n, n) ~ranks (),
            N.mcells ~variant:N.Hand_cray ~global:(n, n, n) ~ranks () )
        with
        | auto, hand ->
          Some
            (J.Obj
               [ ("ranks", J.Num (float_of_int ranks));
                 ("model_mcells", J.Num auto);
                 ("model_hand_mcells", J.Num hand) ])
        | exception Fsc_dmp.Decomp.Invalid_decomp _ -> None)
      [ 8; 16; 32; 64; 128 ]
  in
  (* gate: the measured 8-rank point must land within a stated factor of
     the model's projection — the collapse this file exists to catch *)
  let model_8 = N.mcells ~variant:N.Auto_dmp ~global:(n, n, n) ~ranks:8 () in
  let model_floor = 0.5 in
  if !measured_8 < model_floor *. model_8 then
    failures :=
      Printf.sprintf
        "strong ranks=8: measured %.1f MCells/s below %.1fx model (%.1f)"
        !measured_8 model_floor model_8
      :: !failures;
  (* weak scaling: constant cells per rank (global z grows with ranks) *)
  let weak =
    List.map
      (fun ranks ->
        let global = (n, n, n * ranks) in
        let mc, _ = dist_point ~global ranks in
        J.Obj
          [ ("ranks", J.Num (float_of_int ranks));
            ("global_cells", J.Num (float_of_int (n * n * n * ranks)));
            ("mcells", J.Num mc) ])
      rank_list
  in
  (* overlap vs blocking on identical work, with a real pool attached so
     the comparison measures the superstep structures (without one,
     overlap collapses to the blocking schedule): overlap runs one
     rendezvous fewer per superstep, so best-of-N must not lose *)
  let ranks_ovb = 4 in
  let ov, bl =
    let module DX = Fsc_dmp.Dist_exec in
    let iters_ovb = iters * 5 in
    let d = Fsc_dmp.Decomp.create ~global:(n, n, n) ~ranks:ranks_ovb in
    let init name (i, j, k) =
      if name = "u" then V.gs_init i j k else 0.0
    in
    let pool = Fsc_rt.Domain_pool.create 2 in
    let bench mode =
      let t = DX.create ~pool d ~fields:[ "u"; "unew" ] ~init in
      let local_grids t rank =
        let st = t.DX.ranks.(rank) in
        let lu = DX.field st "u" and ln = DX.field st "unew" in
        let lx, ly, lz = Fsc_dmp.Decomp.local_extents d rank in
        ( { V.g_buf = lu; V.g_nx = lx; V.g_ny = ly; V.g_nz = lz },
          { V.g_buf = ln; V.g_nx = lx; V.g_ny = ly; V.g_nz = lz } )
      in
      let best = ref infinity in
      for _ = 1 to reps do
        let t0 = Unix.gettimeofday () in
        DX.iterate t ~mode ~iters:iters_ovb ~swap_fields:[ "u" ]
          ~sweep:(fun t ~rank w ->
            let gu, gn = local_grids t rank in
            V.gs3d_sweep_in ~u:gu ~unew:gn ~jlo:w.DX.w_jlo ~jhi:w.DX.w_jhi
              ~klo:w.DX.w_klo ~khi:w.DX.w_khi ())
          ~finish:(fun t ~rank ->
            let gu, gn = local_grids t rank in
            V.gs3d_copyback ~u:gu ~unew:gn ())
          ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt
      done;
      float_of_int (n * n * n * iters_ovb) /. !best /. 1e6
    in
    (* interleaved best-of rounds: each mode's best converges to its
       floor, and overlap's floor is structurally lower (one rendezvous
       fewer), so extra rounds settle scheduling noise toward the truth
       instead of gambling on it *)
    let bl = ref (bench DX.Blocking) in
    let ov = ref (bench DX.Overlap) in
    let rounds = ref 1 in
    while !ov < !bl && !rounds < 10 do
      incr rounds;
      bl := Float.max !bl (bench DX.Blocking);
      ov := Float.max !ov (bench DX.Overlap)
    done;
    Fsc_rt.Domain_pool.shutdown pool;
    (!ov, !bl)
  in
  if ov < bl then
    failures :=
      Printf.sprintf
        "overlap (%.2f MCells/s) slower than blocking (%.2f MCells/s)" ov bl
      :: !failures;
  (* coalescing traffic shape: the same supersteps over a three-field
     swap set, counted with per-field messages versus one coalesced
     payload per neighbour — the message count must drop by exactly the
     swap-set size (payload bytes gain only the small offset header) *)
  let coalescing =
    let module DX = Fsc_dmp.Dist_exec in
    let ranks_co = 4 and iters_co = 4 in
    let swap = [ "u"; "v"; "w" ] in
    let d = Fsc_dmp.Decomp.create ~global:(n, n, n) ~ranks:ranks_co in
    let traffic coalesce =
      let t =
        DX.create d ~fields:swap ~init:(fun _ (i, j, k) ->
            float_of_int ((i * 7 + j * 3 + k) mod 11))
      in
      DX.iterate t ~mode:DX.Blocking ~coalesce ~iters:iters_co
        ~swap_fields:swap
        ~sweep:(fun _ ~rank:_ _ -> ())
        ();
      DX.stats t
    in
    let msgs_on, bytes_on = traffic true in
    let msgs_off, bytes_off = traffic false in
    let factor = float_of_int msgs_off /. float_of_int msgs_on in
    if factor < float_of_int (List.length swap) -. 0.01 then
      failures :=
        Printf.sprintf
          "coalescing: %d msgs vs %d per-field (%.2fx, want %dx)" msgs_on
          msgs_off factor (List.length swap)
        :: !failures;
    J.Obj
      [ ("ranks", J.Num (float_of_int ranks_co));
        ("swap_fields", J.Num (float_of_int (List.length swap)));
        ("supersteps", J.Num (float_of_int iters_co));
        ("msgs_coalesced", J.Num (float_of_int msgs_on));
        ("msgs_per_field", J.Num (float_of_int msgs_off));
        ("kb_coalesced", J.Num (float_of_int bytes_on /. 1024.));
        ("kb_per_field", J.Num (float_of_int bytes_off /. 1024.));
        ("msg_reduction", J.Num factor) ]
  in
  (* footprint staling ablation: the residual+probe program at the dist
     target, affine-footprint halo staling on vs off on identical work.
     The probe nest writes u only along the global j = k = 1 edge, a
     plane the write footprint proves is never a mirrored block
     boundary, so staling-on must move strictly fewer halo messages
     (deterministic counts), report stales avoided, answer
     bitwise-identically to staling-off, and — via interleaved best-of
     rounds — never run slower than the whole-field baseline. *)
  let footprint_staling =
    let ranks_fp = 4 in
    let src = B.residual ~nx:n ~ny:n ~nz:n ~niter:iters () in
    let copy_u a =
      let b = P.buffer_exn a "u" in
      Array.init (Bigarray.Array1.dim b.Rt.data) (fun i ->
          Bigarray.Array1.unsafe_get b.Rt.data i)
    in
    let build fp =
      fst
        (P.stencil ~target:(P.Dist ranks_fp) ~engine:P.Engine_vector
           ~dist_footprint:fp src)
    in
    let a_on = build true and a_off = build false in
    (* deterministic message counts: one untimed run each, then a
       snapshot — group stats reset at every [P.run] *)
    P.run a_on;
    P.run a_off;
    let u_on = copy_u a_on and u_off = copy_u a_off in
    let snap a =
      match Option.map Dk.stats a.P.a_dist with
      | Some s ->
        ( List.fold_left (fun acc g -> acc + g.Dk.gs_msgs) 0 s.Dk.ds_groups,
          s.Dk.ds_stales_avoided )
      | None -> (0, 0)
    in
    let msgs_on, avoided_on = snap a_on in
    let msgs_off, avoided_off = snap a_off in
    if msgs_on >= msgs_off then
      failures :=
        Printf.sprintf
          "footprint staling: %d msgs with footprints, %d without (want \
           strictly fewer)"
          msgs_on msgs_off
        :: !failures;
    if avoided_on = 0 then
      failures := "footprint staling: no stales avoided" :: !failures;
    if avoided_off <> 0 then
      failures :=
        "footprint staling: baseline reported avoided stales" :: !failures;
    (if u_on <> u_off then
       failures :=
         "footprint staling: answers differ between on and off" :: !failures);
    (* the dist answer must also match serial bit for bit *)
    let a_ser, _ = P.stencil ~target:P.Serial ~engine:P.Engine_vector src in
    P.run a_ser;
    let u_ser = copy_u a_ser in
    P.shutdown a_ser;
    if u_on <> u_ser then
      failures := "footprint staling: dist differs from serial" :: !failures;
    let cells = n * n * n in
    let bench a =
      let dt, _ = best_run_s a in
      mcells_of ~cells dt
    in
    (* interleaved best-of rounds: each side's best converges to its
       floor, and staling-on's floor is no higher (same compute, fewer
       exchanges), so extra rounds settle scheduling noise *)
    let mc_off = ref (bench a_off) in
    let mc_on = ref (bench a_on) in
    let rounds = ref 1 in
    while !mc_on < !mc_off && !rounds < 10 do
      incr rounds;
      mc_off := Float.max !mc_off (bench a_off);
      mc_on := Float.max !mc_on (bench a_on)
    done;
    P.shutdown a_on;
    P.shutdown a_off;
    if !mc_on < !mc_off then
      failures :=
        Printf.sprintf
          "footprint staling (%.2f MCells/s) slower than whole-field \
           baseline (%.2f MCells/s)"
          !mc_on !mc_off
        :: !failures;
    J.Obj
      [ ("benchmark",
         J.Str (Printf.sprintf "residual+probe %d^3 x%d" n iters));
        ("ranks", J.Num (float_of_int ranks_fp));
        ("halo_msgs_footprint", J.Num (float_of_int msgs_on));
        ("halo_msgs_whole_field", J.Num (float_of_int msgs_off));
        ("stales_avoided", J.Num (float_of_int avoided_on));
        ("mcells_footprint", J.Num !mc_on);
        ("mcells_whole_field", J.Num !mc_off);
        ("bitwise_vs_serial", J.Bool true) ]
  in
  let json =
    J.Obj
      [ ("benchmark",
         J.Str (Printf.sprintf "gauss_seidel %d^3 x%d, dist target" n iters));
        ("engine", J.Str "vector");
        ("strong", J.List strong); ("weak", J.List weak);
        ("projected", J.List projected);
        ("model_gate",
         J.Obj
           [ ("ranks", J.Num 8.); ("floor", J.Num model_floor);
             ("measured_mcells", J.Num !measured_8);
             ("model_mcells", J.Num model_8) ]);
        ("coalescing", coalescing);
        ("footprint_staling", footprint_staling);
        ("overlap_vs_blocking",
         J.Obj
           [ ("ranks", J.Num (float_of_int ranks_ovb));
             ("overlap_mcells", J.Num ov);
             ("blocking_mcells", J.Num bl);
             ("ratio", J.Num (ov /. bl)) ]) ]
  in
  let path = "BENCH_dmp.json" in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  (* self-validate what was just written *)
  let reread =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (match J.of_string reread with
  | parsed ->
    if
      J.member "strong" parsed = None
      || J.member "overlap_vs_blocking" parsed = None
      || J.member "projected" parsed = None
      || J.member "coalescing" parsed = None
      || J.member "footprint_staling" parsed = None
    then
      failures :=
        (path
        ^ ": missing \
           strong/overlap_vs_blocking/projected/coalescing/footprint_staling")
        :: !failures
  | exception J.Parse_error e ->
    failures := (path ^ ": unparseable: " ^ e) :: !failures);
  Printf.printf
    "distributed scaling written to %s (%d strong points, overlap/blocking \
     %.2f)\n"
    path (List.length strong) (ov /. bl);
  if !failures <> [] then begin
    List.iter (fun f -> Printf.eprintf "FAIL %s\n" f) !failures;
    exit 1
  end

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Measured substrate numbers                                          *)
(* ------------------------------------------------------------------ *)

let measure_pipeline ~src ~cells_per_run ~label target =
  Cal.measure ~label ~cells_per_iter:cells_per_run
    ~min_seconds:(if !quick then 0.1 else 0.4)
    (fun () ->
      let a, _ = P.stencil ~target src in
      P.run a;
      P.shutdown a)

let measure_flang ~src ~cells_per_run ~label =
  Cal.measure ~label ~cells_per_iter:cells_per_run
    ~min_seconds:(if !quick then 0.1 else 0.4)
    (fun () ->
      let a = P.flang_only src in
      P.run a)

(* measured single-core GS + PW at substrate scale *)
let figure2_measured () =
  let n_jit = if !quick then 32 else 48 in
  let n_interp = if !quick then 12 else 16 in
  let iters = 2 in
  let cells n = float_of_int (n * n * n * iters) in
  Printf.printf
    "\nMEASURED on this machine (substrate tiers; grids %d^3 / %d^3):\n"
    n_jit n_interp;
  (* Gauss-Seidel *)
  let gs_flang =
    measure_flang
      ~src:(B.gauss_seidel ~nx:n_interp ~ny:n_interp ~nz:n_interp
              ~niter:iters ())
      ~cells_per_run:(cells n_interp)
      ~label:"GS  Flang only (FIR interpreter)"
  in
  let gs_st =
    measure_pipeline
      ~src:(B.gauss_seidel ~nx:n_jit ~ny:n_jit ~nz:n_jit ~niter:iters ())
      ~cells_per_run:(cells n_jit)
      ~label:"GS  Stencil (compiled kernels)" P.Serial
  in
  let gs_vendor =
    let u = V.grid3 ~nx:n_jit ~ny:n_jit ~nz:n_jit in
    let unew = V.grid3 ~nx:n_jit ~ny:n_jit ~nz:n_jit in
    V.init_linear u;
    Cal.measure ~label:"GS  Cray-class (vendor kernels)"
      ~cells_per_iter:(cells n_jit)
      ~min_seconds:(if !quick then 0.1 else 0.4)
      (fun () -> V.gs3d_run ~u ~unew ~iters ())
  in
  (* PW advection *)
  let pw_flang =
    measure_flang
      ~src:(B.pw_advection ~nx:n_interp ~ny:n_interp ~nz:n_interp
              ~niter:iters ())
      ~cells_per_run:(cells n_interp)
      ~label:"PW  Flang only (FIR interpreter)"
  in
  let pw_st =
    measure_pipeline
      ~src:(B.pw_advection ~nx:n_jit ~ny:n_jit ~nz:n_jit ~niter:iters ())
      ~cells_per_run:(cells n_jit)
      ~label:"PW  Stencil (compiled kernels)" P.Serial
  in
  let pw_vendor =
    let g () = V.grid3 ~nx:n_jit ~ny:n_jit ~nz:n_jit in
    let u = g () and v = g () and w = g () in
    let su = g () and sv = g () and sw = g () in
    V.init_linear u;
    Cal.measure ~label:"PW  Cray-class (vendor kernels)"
      ~cells_per_iter:(cells n_jit)
      ~min_seconds:(if !quick then 0.1 else 0.4)
      (fun () ->
        for _ = 1 to iters do
          V.pw_advect ~u ~v ~w ~su ~sv ~sw ~rdx:0.1 ~rdy:0.2 ~rdz:0.3 ()
        done)
  in
  print_endline
    (Cal.report [ gs_flang; gs_st; gs_vendor; pw_flang; pw_st; pw_vendor ]);
  Printf.printf
    "  measured substrate tier gap Stencil/Flang: GS %.0fx, PW %.0fx\n\
    \  (the substrate's interpreter-vs-JIT gap exceeds the paper's \
     compiler gap;\n\
    \   the calibrated model above carries the paper-shape factors of \
     ~2x and ~10x)\n"
    (Cal.mcells gs_st /. Cal.mcells gs_flang)
    (Cal.mcells pw_st /. Cal.mcells pw_flang)

(* ------------------------------------------------------------------ *)
(* Figure 2: single-core CPU, three problem sizes                      *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  header "Figure 2: single-core CPU performance (MCells/s)";
  Printf.printf
    "MODEL (ARCHER2 AMD Rome core; paper sizes; shape target: Cray > \
     Stencil > Flang,\n  Stencil ~2x Flang on GS, ~10x on PW):\n\n";
  row "  %-14s %-12s %10s %10s %10s\n" "benchmark" "size" "Cray"
    "Flang only" "Stencil";
  List.iter
    (fun bench ->
      List.iter
        (fun size ->
          let v pipe = C.mcells ~bench ~pipe ~threads:1 () in
          row "  %-14s %-12s %10.1f %10.1f %10.1f\n"
            (C.benchmark_name bench) size (v C.Cray) (v C.Flang_only)
            (v C.Stencil_opt))
        [ "256^3"; "512^3"; "1024^3" ])
    [ C.Gauss_seidel; C.Pw_advection ];
  Printf.printf
    "  (single-core model throughput is size-independent: all three sizes \
     stream from DRAM)\n";
  figure2_measured ()

(* ------------------------------------------------------------------ *)
(* Figures 3 & 4: OpenMP thread scaling                                *)
(* ------------------------------------------------------------------ *)

let figure34 bench fig =
  header
    (Printf.sprintf "Figure %d: multithreaded %s, 2.1e9 cells (MCells/s)"
       fig (C.benchmark_name bench));
  row "  %-8s %12s %12s %12s\n" "threads" "Cray" "Flang only" "Stencil";
  List.iter
    (fun t ->
      let v pipe = C.mcells ~bench ~pipe ~threads:t () in
      let cray = v C.Cray and flang = v C.Flang_only in
      let st = v C.Stencil_opt in
      row "  %-8d %12.0f %12.0f %12.0f%s\n" t cray flang st
        (if st > cray then "   <- stencil wins" else ""))
    [ 1; 2; 4; 8; 16; 32; 64; 128 ];
  if bench = C.Pw_advection then
    Printf.printf
      "  (paper: the auto-parallelised stencil overtakes hand-written \
       OpenMP at 64 and 128 threads — fusion wins once bandwidth \
       saturates)\n"

(* measured OpenMP differential (correctness + relative cost on this
   container; true scaling needs >1 core) *)
let figure34_measured () =
  let n = if !quick then 24 else 32 in
  let iters = 2 in
  let src = B.gauss_seidel ~nx:n ~ny:n ~nz:n ~niter:iters () in
  let cells = float_of_int (n * n * n * iters) in
  Printf.printf
    "\nMEASURED auto-parallelised OpenMP path (%d core(s) visible to this \
     container):\n"
    (Fsc_rt.Domain_pool.recommended_size ());
  List.iter
    (fun threads ->
      let m =
        measure_pipeline ~src ~cells_per_run:cells
          ~label:(Printf.sprintf "GS Stencil omp.wsloop, %d threads" threads)
          (P.Openmp threads)
      in
      print_endline (Cal.report [ m ]))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Figure 5: GPU                                                       *)
(* ------------------------------------------------------------------ *)

let figure5 () =
  header "Figure 5: Nvidia V100 GPU performance (MCells/s, log-scale data)";
  Printf.printf "MODEL (V100 SXM2-16GB; 500 timesteps):\n\n";
  row "  %-14s %-8s %14s %16s %18s\n" "benchmark" "size" "OpenACC"
    "Stencil(initial)" "Stencil(optimised)";
  let run ~arrays ~bytes ~flops name sizes =
    List.iter
      (fun n ->
        let cells = float_of_int (n * n * n) in
        let v strategy =
          G.mcells ~strategy ~cells ~flops_per_cell:flops
            ~bytes_per_cell:bytes ~arrays
            ~array_bytes:(cells *. 8.0 *. float_of_int arrays)
            ~iters:500 ()
        in
        row "  %-14s %-8s %14.0f %16.1f %18.0f\n" name
          (Printf.sprintf "%d^3" n)
          (v G.Openacc_nvidia) (v G.Stencil_initial)
          (v G.Stencil_optimised))
      sizes
  in
  run ~arrays:2 ~bytes:32.0 ~flops:6.0 "Gauss-Seidel" [ 128; 256; 512 ];
  run ~arrays:6 ~bytes:64.0 ~flops:63.0 "PW advection" [ 128; 256; 512 ];
  (* measured: execute the real GPU pipelines against the simulator and
     report its clock *)
  let n = if !quick then 8 else 12 in
  let iters = 10 in
  Printf.printf
    "\nMEASURED on the simulated device (real extracted kernels, %d^3, %d \
     timesteps):\n"
    n iters;
  let sim_time target =
    let src = B.gauss_seidel ~nx:n ~ny:n ~nz:n ~niter:iters () in
    let a, _ = P.stencil ~target src in
    P.run a;
    let s =
      match a.P.a_ctx.Fsc_rt.Interp.gpu with
      | Some g -> Fsc_rt.Gpu_sim.stats g
      | None -> assert false
    in
    P.shutdown a;
    s
  in
  let si = sim_time (P.Gpu P.Gpu_initial) in
  let so = sim_time (P.Gpu P.Gpu_optimised) in
  let cells = float_of_int (n * n * n * iters) in
  row "  %-38s %10.1f MCells/s  (%d kB paged)\n"
    "GS Stencil (initial data approach)"
    (cells /. si.Fsc_rt.Gpu_sim.s_clock /. 1e6)
    (si.Fsc_rt.Gpu_sim.s_bytes_paged / 1024);
  row "  %-38s %10.1f MCells/s  (%d kB copied once)\n"
    "GS Stencil (optimised data approach)"
    (cells /. so.Fsc_rt.Gpu_sim.s_clock /. 1e6)
    (so.Fsc_rt.Gpu_sim.s_bytes_h2d / 1024)

(* ------------------------------------------------------------------ *)
(* Figure 6: distributed memory                                        *)
(* ------------------------------------------------------------------ *)

let figure6 () =
  header
    "Figure 6: distributed Gauss-Seidel on ARCHER2, 1.7e10 cells (MCells/s)";
  Printf.printf "MODEL (Slingshot, 128 ranks/node, 2-D decomposition):\n\n";
  let global = (2580, 2580, 2580) in
  row "  %-8s %-8s %16s %22s\n" "nodes" "cores" "Hand parallelised"
    "Stencil auto (DMP/MPI)";
  List.iter
    (fun nodes ->
      let ranks = nodes * 128 in
      let hand = N.mcells ~variant:N.Hand_cray ~global ~ranks () in
      let auto = N.mcells ~variant:N.Auto_dmp ~global ~ranks () in
      row "  %-8d %-8d %16.0f %22.0f\n" nodes ranks hand auto)
    [ 2; 4; 8; 16; 32; 64 ];
  Printf.printf
    "  (paper: hand version wins and scales better; auto reaches ~70,000 \
     MCells/s at 8192 cores)\n";
  (* measured: functional SPMD execution over simulated MPI *)
  let n = if !quick then 12 else 16 in
  let iters = 3 in
  let d = Fsc_dmp.Decomp.create ~global:(n, n, n) ~ranks:4 in
  let init name (i, j, k) =
    match name with
    | "u" ->
      V.gs_init i j k
    | _ -> 0.0
  in
  let t = Fsc_dmp.Dist_exec.create d ~fields:[ "u"; "unew" ] ~init in
  let local_grids t rank =
    let st = t.Fsc_dmp.Dist_exec.ranks.(rank) in
    let lu = Fsc_dmp.Dist_exec.field st "u" in
    let ln = Fsc_dmp.Dist_exec.field st "unew" in
    let lx, ly, lz = Fsc_dmp.Decomp.local_extents d rank in
    ( { V.g_buf = lu; V.g_nx = lx; V.g_ny = ly; V.g_nz = lz },
      { V.g_buf = ln; V.g_nx = lx; V.g_ny = ly; V.g_nz = lz } )
  in
  let t0 = Unix.gettimeofday () in
  Fsc_dmp.Dist_exec.iterate t ~iters ~swap_fields:[ "u" ]
    ~sweep:(fun t ~rank w ->
      let gu, gn = local_grids t rank in
      V.gs3d_sweep_in ~u:gu ~unew:gn ~jlo:w.Fsc_dmp.Dist_exec.w_jlo
        ~jhi:w.Fsc_dmp.Dist_exec.w_jhi ~klo:w.Fsc_dmp.Dist_exec.w_klo
        ~khi:w.Fsc_dmp.Dist_exec.w_khi ())
    ~finish:(fun t ~rank ->
      let gu, gn = local_grids t rank in
      V.gs3d_copyback ~u:gu ~unew:gn ())
    ();
  let dt = Unix.gettimeofday () -. t0 in
  let msgs, bytes = Fsc_dmp.Dist_exec.stats t in
  Printf.printf
    "\nMEASURED functional SPMD run: 4 simulated ranks, %d^3 global, %d \
     iters:\n  %.2f MCells/s host-side, %d halo messages, %d kB exchanged\n"
    n iters
    (float_of_int (n * n * n * iters) /. dt /. 1e6)
    msgs (bytes / 1024)

(* ------------------------------------------------------------------ *)
(* Headline summary (Section 4.2 / conclusions)                        *)
(* ------------------------------------------------------------------ *)

let headline () =
  header "Headline claims (paper Section 6)";
  let gs =
    C.mcells ~bench:C.Gauss_seidel ~pipe:C.Stencil_opt ~threads:1 ()
    /. C.mcells ~bench:C.Gauss_seidel ~pipe:C.Flang_only ~threads:1 ()
  in
  let pw =
    C.mcells ~bench:C.Pw_advection ~pipe:C.Stencil_opt ~threads:1 ()
    /. C.mcells ~bench:C.Pw_advection ~pipe:C.Flang_only ~threads:1 ()
  in
  Printf.printf
    "  stencil vs Flang-only single core: GS %.1fx, PW %.1fx (paper: ~2x \
     and ~10x)\n"
    gs pw;
  let pw_gpu strategy =
    G.mcells ~strategy ~cells:(256. ** 3.) ~flops_per_cell:63.
      ~bytes_per_cell:64. ~arrays:6
      ~array_bytes:((256. ** 3.) *. 48.)
      ~iters:500 ()
  in
  Printf.printf
    "  PW on V100, stencil-optimised vs hand OpenACC: %.1fx (paper: ~15x)\n"
    (pw_gpu G.Stencil_optimised /. pw_gpu G.Openacc_nvidia)

(* ------------------------------------------------------------------ *)
(* Future work (paper Section 6): multinode GPU projection             *)
(* ------------------------------------------------------------------ *)

let future_work () =
  header "Future work: multinode GPU (paper Section 6, fifth item)";
  Printf.printf
    "Gauss-Seidel, 2048^3 cells, one V100 per node (model, MCells/s):\n\n";
  row "  %-6s %18s %18s\n" "GPUs" "PCIe-staged halos" "GPUDirect/NVLink";
  let global = (2048, 2048, 2048) in
  List.iter
    (fun gpus ->
      let v gpudirect =
        N.multinode_gpu_mcells
          ~cluster:{ N.default_gpu_cluster with N.gc_gpudirect = gpudirect }
          ~global ~gpus ~bytes_per_cell:32.0 ~flops_per_cell:6.0 ()
      in
      row "  %-6d %18.0f %18.0f\n" gpus (v false) (v true))
    [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablations (design-choice studies)";
  let n = if !quick then 24 else 40 in
  let iters = 2 in
  let cells = float_of_int (n * n * n * iters) in

  (* 1. stencil merging (the PW fusion): measured on this substrate *)
  Printf.printf "\n[A] stencil merging on PW advection (%d^3, measured):\n" n;
  let pw = B.pw_advection ~nx:n ~ny:n ~nz:n ~niter:iters () in
  let fused =
    Cal.measure ~label:"merge enabled (one fused sweep)"
      ~cells_per_iter:cells
      ~min_seconds:(if !quick then 0.1 else 0.4)
      (fun () ->
        let a, _ = P.stencil ~target:P.Serial ~merge:true pw in
        P.run a)
  in
  let unfused =
    Cal.measure ~label:"merge disabled (three sweeps)"
      ~cells_per_iter:cells
      ~min_seconds:(if !quick then 0.1 else 0.4)
      (fun () ->
        let a, _ = P.stencil ~target:P.Serial ~merge:false pw in
        P.run a)
  in
  print_endline (Cal.report [ fused; unfused ]);
  Printf.printf "  substrate fusion ratio: %.2fx\n"
    (Cal.mcells fused /. Cal.mcells unfused);
  (* fusion is a *bandwidth* optimisation; the closure JIT is
     compute-bound, so its measured effect here is ~1x — the effect that
     decides the paper's Figure 4 lives in the memory-traffic model: *)
  let model threads fused_flag =
    let bytes = if fused_flag then 48.0 else 96.0 in
    let bw = Fsc_perf.Cpu_model.bandwidth Fsc_perf.Machine.archer2_node
               threads in
    bw /. bytes /. 1e6
  in
  Printf.printf
    "  model @128 threads (bandwidth-bound): fused %.0f vs unfused %.0f \
     MCells/s -> %.2fx\n"
    (model 128 true) (model 128 false)
    (model 128 true /. model 128 false);

  (* 2. loop specialisation (the scf-parallel-loop-specialization pass) *)
  Printf.printf
    "\n[B] loop specialisation on Gauss-Seidel (%d^3, measured):\n" n;
  let gs = B.gauss_seidel ~nx:n ~ny:n ~nz:n ~niter:iters () in
  let spec =
    Cal.measure ~label:"specialised (unrolled inner loop)"
      ~cells_per_iter:cells
      ~min_seconds:(if !quick then 0.1 else 0.4)
      (fun () ->
        let a, _ = P.stencil ~target:P.Serial ~specialize:true gs in
        P.run a)
  in
  let nospec =
    Cal.measure ~label:"unspecialised"
      ~cells_per_iter:cells
      ~min_seconds:(if !quick then 0.1 else 0.4)
      (fun () ->
        let a, _ = P.stencil ~target:P.Serial ~specialize:false gs in
        P.run a)
  in
  print_endline (Cal.report [ spec; nospec ]);
  Printf.printf "  specialisation speedup: %.2fx\n"
    (Cal.mcells spec /. Cal.mcells nospec);

  (* 3. GPU tile sizes (paper: sensitive, some values fail at runtime) *)
  Printf.printf
    "\n[C] GPU tile-size sensitivity (paper Listing 4 uses 32,32,1):\n";
  List.iter
    (fun (tx, ty) ->
      let threads = tx * ty in
      let g = Fsc_rt.Gpu_sim.create () in
      let host = Rt.create [ 64; 64; 64 ] in
      Fsc_rt.Gpu_sim.alloc g host;
      Fsc_rt.Gpu_sim.memcpy_h2d g host;
      match
        Fsc_rt.Gpu_sim.launch g
          ~strategy:Fsc_rt.Gpu_sim.Strategy_device_resident
          ~block_threads:threads ~flops:1e6 ~bytes_accessed:2e6
          ~body:(fun () -> ())
          [ host ]
      with
      | () ->
        Printf.printf
          "  tile %2d,%2d,1  -> %4d threads/block: ok (%.1f us simulated)\n"
          tx ty threads
          (1e6 *. (Fsc_rt.Gpu_sim.stats g).Fsc_rt.Gpu_sim.s_clock)
      | exception Fsc_rt.Gpu_sim.Launch_failure msg ->
        Printf.printf "  tile %2d,%2d,1  -> %4d threads/block: RUNTIME \
                       FAILURE (%s)\n"
          tx ty threads msg)
    [ (8, 8); (16, 16); (32, 32); (64, 64) ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one grouped test per figure              *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  header "Bechamel micro-benchmarks (ns/run, OLS estimate)";
  let open Bechamel in
  let n = 16 in
  let iters = 1 in
  (* pre-built artifacts so the timed closures do pure execution *)
  let gs_src = B.gauss_seidel ~nx:n ~ny:n ~nz:n ~niter:iters () in
  let pw_src = B.pw_advection ~nx:n ~ny:n ~nz:n ~niter:iters () in
  let st_gs, _ = P.stencil ~target:P.Serial gs_src in
  let st_pw, _ = P.stencil ~target:P.Serial pw_src in
  let gpu_gs, _ = P.stencil ~target:(P.Gpu P.Gpu_optimised) gs_src in
  let flang_gs = P.flang_only gs_src in
  let vu = V.grid3 ~nx:n ~ny:n ~nz:n and vn = V.grid3 ~nx:n ~ny:n ~nz:n in
  V.init_linear vu;
  let pool = Fsc_rt.Domain_pool.create 2 in
  let d = Fsc_dmp.Decomp.create ~global:(n, n, n) ~ranks:4 in
  let dist =
    Fsc_dmp.Dist_exec.create d ~fields:[ "u" ] ~init:(fun _ _ -> 1.0)
  in
  let tests =
    Test.make_grouped ~name:"figures"
      [ (* Figure 2 trio *)
        Test.make ~name:"fig2/gs-flang-only"
          (Staged.stage (fun () -> P.run flang_gs));
        Test.make ~name:"fig2/gs-stencil"
          (Staged.stage (fun () -> P.run st_gs));
        Test.make ~name:"fig2/gs-cray-class"
          (Staged.stage (fun () -> V.gs3d_run ~u:vu ~unew:vn ~iters ()));
        Test.make ~name:"fig2/pw-stencil"
          (Staged.stage (fun () -> P.run st_pw));
        (* Figure 3/4: one work-shared sweep through the pool *)
        Test.make ~name:"fig34/gs-openmp-sweep"
          (Staged.stage (fun () -> V.gs3d_sweep ~pool ~u:vu ~unew:vn ()));
        (* Figure 5: a full GPU timestep against the simulator *)
        Test.make ~name:"fig5/gs-gpu-optimised"
          (Staged.stage (fun () -> P.run gpu_gs));
        (* Figure 6: one halo superstep over simulated MPI *)
        Test.make ~name:"fig6/halo-superstep"
          (Staged.stage (fun () ->
               Fsc_dmp.Dist_exec.iterate dist ~iters:1 ~swap_fields:[ "u" ]
                 ~sweep:(fun _ ~rank:_ _ -> ())
                 ()));
        (* compilation pipeline itself *)
        Test.make ~name:"pipeline/compile-gs"
          (Staged.stage (fun () ->
               let a, _ = P.stencil ~target:P.Serial gs_src in
               P.shutdown a)) ]
  in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if !quick then 0.25 else 0.6))
      ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> rows := (name, Float.nan) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "  %-36s %14.0f ns/run\n" name est)
    (List.sort compare !rows);
  Fsc_rt.Domain_pool.shutdown pool

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf
    "fsc benchmark harness — reproducing Brown et al., \"Fortran \
     performance optimisation and auto-parallelisation by leveraging \
     MLIR-based domain specific abstractions in Flang\" (SC-W 2023)\n";
  if !kernels_only then begin
    write_kernels_json ();
    exit 0
  end;
  if !dist_only then begin
    write_dmp_json ();
    exit 0
  end;
  if !serve_only then begin
    write_serve_json ();
    exit 0
  end;
  write_pipeline_json ();
  write_analysis_json ();
  write_serve_json ();
  write_kernels_json ();
  write_dmp_json ();
  if want 2 then figure2 ();
  if want 3 then figure34 C.Gauss_seidel 3;
  if want 4 then figure34 C.Pw_advection 4;
  if want 3 || want 4 then figure34_measured ();
  if want 5 then figure5 ();
  if want 6 then figure6 ();
  headline ();
  if !figures = [] then begin
    future_work ();
    ablations ()
  end;
  if !run_bechamel then bechamel_suite ();
  print_newline ()

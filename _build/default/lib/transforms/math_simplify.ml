(* The two math passes of the paper's GPU pipeline (Listing 4):
   test-math-algebraic-simplification (powf with small constant exponents
   becomes multiplication) and test-expand-math (math.fpowi expands to a
   multiplication chain). *)

open Fsc_ir
module Arith = Fsc_dialects.Arith

let const_float_of (v : Op.value) =
  match Arith.as_constant v with
  | Some (Attr.Float_a f) -> Some f
  | Some (Attr.Int_a n) -> Some (float_of_int n)
  | _ -> None

let const_int_of (v : Op.value) =
  match Arith.as_constant v with Some (Attr.Int_a n) -> Some n | _ -> None

let expand_power rw op base n =
  (* n >= 0 small constant: replace with multiplication chain *)
  if n = 0 then begin
    let c =
      Rewrite.create_before rw ~anchor:op "arith.constant"
        ~results:[ Op.value_type base ]
        ~attrs:[ ("value", Attr.Float_a 1.0) ]
    in
    Rewrite.replace_op rw op [ Op.result c ];
    true
  end
  else begin
    let rec chain acc k =
      if k = 1 then acc
      else
        let m =
          Rewrite.create_before rw ~anchor:op "arith.mulf"
            ~operands:[ acc; base ]
            ~results:[ Op.value_type base ]
        in
        chain (Op.result m) (k - 1)
    in
    let v = chain base n in
    Rewrite.replace_op rw op [ v ];
    true
  end

let algebraic_patterns =
  [ Rewrite.pattern ~match_name:"math.powf" "powf-to-mul" (fun rw op ->
        match const_float_of (Op.operand ~index:1 op) with
        | Some f when Float.is_integer f && f >= 0. && f <= 4. ->
          expand_power rw op (Op.operand ~index:0 op) (int_of_float f)
        | _ -> false);
    Rewrite.pattern ~match_name:"math.sqrt" "sqrt-of-square" (fun rw op ->
        match Op.defining_op (Op.operand op) with
        | Some m
          when m.Op.o_name = "arith.mulf"
               && Op.operand ~index:0 m == Op.operand ~index:1 m ->
          let abs =
            Rewrite.create_before rw ~anchor:op "math.absf"
              ~operands:[ Op.operand ~index:0 m ]
              ~results:[ Op.value_type (Op.result op) ]
          in
          Rewrite.replace_op rw op [ Op.result abs ];
          true
        | _ -> false) ]

let expand_patterns =
  [ Rewrite.pattern ~match_name:"math.fpowi" "expand-fpowi" (fun rw op ->
        match const_int_of (Op.operand ~index:1 op) with
        | Some n when n >= 0 && n <= 8 ->
          expand_power rw op (Op.operand ~index:0 op) n
        | _ -> false) ]

let simplify_pass =
  Pass.create "test-math-algebraic-simplification" (fun m ->
      ignore (Rewrite.apply_greedily algebraic_patterns m))

let expand_pass =
  Pass.create "test-expand-math" (fun m ->
      ignore (Rewrite.apply_greedily expand_patterns m))

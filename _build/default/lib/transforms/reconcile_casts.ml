(* reconcile-unrealized-casts: cancels chains of
   builtin.unrealized_conversion_cast whose endpoints agree, as in MLIR.
   A cast that survives because its types genuinely differ is left for the
   runtime boundary (memref materialisation from !llvm.ptr). *)

open Fsc_ir

let patterns =
  [ Rewrite.pattern ~match_name:"builtin.unrealized_conversion_cast"
      "reconcile-cast-pair" (fun rw op ->
        match Op.defining_op (Op.operand op) with
        | Some inner
          when inner.Op.o_name = "builtin.unrealized_conversion_cast"
               && Types.equal
                    (Op.value_type (Op.operand inner))
                    (Op.value_type (Op.result op)) ->
          Rewrite.replace_op rw op [ Op.operand inner ];
          true
        | _ ->
          if
            Types.equal
              (Op.value_type (Op.operand op))
              (Op.value_type (Op.result op))
          then begin
            Rewrite.replace_op rw op [ Op.operand op ];
            true
          end
          else false) ]

let pass =
  Pass.create "reconcile-unrealized-casts" (fun m ->
      ignore (Rewrite.apply_greedily patterns m);
      (* cancelled pairs leave a dead inner cast behind *)
      ignore (Dce.run m))

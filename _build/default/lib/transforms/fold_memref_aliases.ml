(* fold-memref-alias-ops: folds memref.cast chains feeding loads/stores so
   accesses go straight to the allocation. *)

open Fsc_ir

let rec root_memref (v : Op.value) =
  match Op.defining_op v with
  | Some op when op.Op.o_name = "memref.cast" -> root_memref (Op.operand op)
  | _ -> v

let patterns =
  [ Rewrite.pattern ~match_name:"memref.load" "fold-load-alias" (fun rw op ->
        let m = Op.operand ~index:0 op in
        let r = root_memref m in
        if r == m then false
        else begin
          Op.set_operand op 0 r;
          Rewrite.notify_changed rw op;
          true
        end);
    Rewrite.pattern ~match_name:"memref.store" "fold-store-alias"
      (fun rw op ->
        let m = Op.operand ~index:1 op in
        let r = root_memref m in
        if r == m then false
        else begin
          Op.set_operand op 1 r;
          Rewrite.notify_changed rw op;
          true
        end) ]

let pass =
  Pass.create "fold-memref-alias-ops" (fun m ->
      ignore (Rewrite.apply_greedily patterns m))

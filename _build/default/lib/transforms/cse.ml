(* Common subexpression elimination over pure operations, scoped per
   block (a value computed in a parent block is reused in nested regions
   only when the nested op's operands match — we keep the simple per-block
   scope, which is what the loop-invariant FIR produced by the frontend
   needs). *)

open Fsc_ir

let op_key op =
  let operand_ids =
    Array.to_list (Array.map (fun (v : Op.value) -> v.Op.v_id) op.Op.o_operands)
  in
  let attrs =
    List.sort compare
      (List.map (fun (k, a) -> (k, Attr.to_string a)) op.Op.o_attrs)
  in
  let result_types =
    List.map (fun (r : Op.value) -> Types.to_string (Op.value_type r))
      (Op.results op)
  in
  (op.Op.o_name, operand_ids, attrs, result_types)

let run m =
  let eliminated = ref 0 in
  let rec block_sweep block =
    let seen = Hashtbl.create 64 in
    Op.iter_block_ops
      (fun op ->
        Array.iter
          (fun r -> List.iter block_sweep r.Op.g_blocks)
          op.Op.o_regions;
        if Dialect.op_is_pure op && Array.length op.Op.o_regions = 0 then begin
          let key = op_key op in
          match Hashtbl.find_opt seen key with
          | Some prior ->
            List.iter2
              (fun (r : Op.value) (p : Op.value) ->
                Op.replace_all_uses_with r p)
              (Op.results op) (Op.results prior);
            Op.erase op;
            incr eliminated
          | None -> Hashtbl.replace seen key op
        end)
      block
  in
  Array.iter
    (fun r -> List.iter block_sweep r.Op.g_blocks)
    m.Op.o_regions;
  !eliminated

let pass = Pass.create "cse" (fun m -> ignore (run m))

lib/transforms/dce.ml: Array Dialect Fsc_ir List Op Pass

lib/transforms/math_simplify.ml: Attr Float Fsc_dialects Fsc_ir Op Pass Rewrite

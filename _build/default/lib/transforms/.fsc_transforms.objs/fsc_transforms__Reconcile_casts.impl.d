lib/transforms/reconcile_casts.ml: Dce Fsc_ir Op Pass Rewrite Types

lib/transforms/cse.ml: Array Attr Dialect Fsc_ir Hashtbl List Op Pass Types

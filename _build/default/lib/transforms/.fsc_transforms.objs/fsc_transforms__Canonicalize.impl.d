lib/transforms/canonicalize.ml: Attr Dce Fsc_dialects Fsc_ir Op Pass Rewrite Types

lib/transforms/fold_memref_aliases.ml: Fsc_ir Op Pass Rewrite

(* Dead code elimination: removes pure operations whose results are all
   unused, iterating to a fixpoint (bottom-up within each block). *)

open Fsc_ir

let removable op =
  Op.num_results op > 0
  && (not (List.exists Op.has_uses (Op.results op)))
  && (Dialect.op_is_pure op
     || List.mem op.Op.o_name [ "fir.load"; "memref.load" ])

(* [aggressive] also drops side-effect-free loads (safe when the pass
   runs before anything can observe the removed read). *)
let run ?(aggressive = false) m =
  let removed = ref 0 in
  let rec block_sweep block =
    let changed = ref false in
    (* reverse order: users die before producers *)
    List.iter
      (fun op ->
        Array.iter
          (fun r -> List.iter block_sweep r.Op.g_blocks)
          op.Op.o_regions;
        let dead =
          Op.num_results op > 0
          && (not (List.exists Op.has_uses (Op.results op)))
          && (Dialect.op_is_pure op
             || (aggressive
                && List.mem op.Op.o_name [ "fir.load"; "memref.load" ]))
        in
        if dead then begin
          Op.erase op;
          incr removed;
          changed := true
        end)
      (List.rev (Op.block_ops block));
    if !changed then block_sweep block
  in
  Array.iter
    (fun r -> List.iter block_sweep r.Op.g_blocks)
    m.Op.o_regions;
  !removed

let pass = Pass.create "dce" (fun m -> ignore (run m))

(* Canonicalisation: greedy application of folding patterns, followed by
   DCE — the workhorse "canonicalize" pass that appears four times in the
   paper's Listing 4 pipeline. *)

open Fsc_ir
module Arith = Fsc_dialects.Arith

let const_int_of (v : Op.value) =
  match Arith.as_constant v with Some (Attr.Int_a n) -> Some n | _ -> None

let const_float_of (v : Op.value) =
  match Arith.as_constant v with
  | Some (Attr.Float_a f) -> Some f
  | Some (Attr.Int_a n) -> Some (float_of_int n)
  | _ -> None

let replace_with_const rw op attr =
  let c =
    Rewrite.create_before rw ~anchor:op "arith.constant"
      ~results:[ Op.value_type (Op.result op) ]
      ~attrs:[ ("value", attr) ]
  in
  Rewrite.replace_op rw op [ Op.result c ];
  true

(* integer binary folding *)
let fold_int_binop name f =
  Rewrite.pattern ~match_name:name ("fold-" ^ name) (fun rw op ->
      match
        (const_int_of (Op.operand ~index:0 op),
         const_int_of (Op.operand ~index:1 op))
      with
      | Some a, Some b -> replace_with_const rw op (Attr.Int_a (f a b))
      | _ -> false)

let fold_float_binop name f =
  Rewrite.pattern ~match_name:name ("fold-" ^ name) (fun rw op ->
      match
        (const_float_of (Op.operand ~index:0 op),
         const_float_of (Op.operand ~index:1 op))
      with
      | Some a, Some b -> replace_with_const rw op (Attr.Float_a (f a b))
      | _ -> false)

(* x + 0 = x ; x - 0 = x ; x * 1 = x ; x * 0 = 0 *)
let identity_patterns =
  [ Rewrite.pattern ~match_name:"arith.addi" "addi-zero" (fun rw op ->
        match
          (const_int_of (Op.operand ~index:0 op),
           const_int_of (Op.operand ~index:1 op))
        with
        | Some 0, _ ->
          Rewrite.replace_op rw op [ Op.operand ~index:1 op ];
          true
        | _, Some 0 ->
          Rewrite.replace_op rw op [ Op.operand ~index:0 op ];
          true
        | _ -> false);
    Rewrite.pattern ~match_name:"arith.subi" "subi-zero" (fun rw op ->
        match const_int_of (Op.operand ~index:1 op) with
        | Some 0 ->
          Rewrite.replace_op rw op [ Op.operand ~index:0 op ];
          true
        | _ -> false);
    Rewrite.pattern ~match_name:"arith.muli" "muli-identity" (fun rw op ->
        match
          (const_int_of (Op.operand ~index:0 op),
           const_int_of (Op.operand ~index:1 op))
        with
        | Some 1, _ ->
          Rewrite.replace_op rw op [ Op.operand ~index:1 op ];
          true
        | _, Some 1 ->
          Rewrite.replace_op rw op [ Op.operand ~index:0 op ];
          true
        | _ -> false);
    Rewrite.pattern ~match_name:"arith.mulf" "mulf-identity" (fun rw op ->
        match const_float_of (Op.operand ~index:1 op) with
        | Some 1.0 ->
          Rewrite.replace_op rw op [ Op.operand ~index:0 op ];
          true
        | _ -> (
          match const_float_of (Op.operand ~index:0 op) with
          | Some 1.0 ->
            Rewrite.replace_op rw op [ Op.operand ~index:1 op ];
            true
          | _ -> false));
    Rewrite.pattern ~match_name:"arith.addf" "addf-zero" (fun rw op ->
        match const_float_of (Op.operand ~index:1 op) with
        | Some 0.0 ->
          Rewrite.replace_op rw op [ Op.operand ~index:0 op ];
          true
        | _ -> false) ]

let fold_patterns =
  [ fold_int_binop "arith.addi" ( + );
    fold_int_binop "arith.subi" ( - );
    fold_int_binop "arith.muli" ( * );
    fold_float_binop "arith.addf" ( +. );
    fold_float_binop "arith.subf" ( -. );
    fold_float_binop "arith.mulf" ( *. );
    fold_float_binop "arith.divf" ( /. );
    (* cmpi folding *)
    Rewrite.pattern ~match_name:"arith.cmpi" "fold-cmpi" (fun rw op ->
        match
          (const_int_of (Op.operand ~index:0 op),
           const_int_of (Op.operand ~index:1 op))
        with
        | Some a, Some b ->
          let pred =
            Arith.cmp_predicate_of_int (Op.int_attr op "predicate")
          in
          let result =
            match pred with
            | Arith.Eq -> a = b
            | Arith.Ne -> a <> b
            | Arith.Slt -> a < b
            | Arith.Sle -> a <= b
            | Arith.Sgt -> a > b
            | Arith.Sge -> a >= b
          in
          replace_with_const rw op (Attr.Int_a (if result then 1 else 0))
        | _ -> false);
    (* select with constant condition *)
    Rewrite.pattern ~match_name:"arith.select" "fold-select" (fun rw op ->
        match const_int_of (Op.operand ~index:0 op) with
        | Some 1 ->
          Rewrite.replace_op rw op [ Op.operand ~index:1 op ];
          true
        | Some 0 ->
          Rewrite.replace_op rw op [ Op.operand ~index:2 op ];
          true
        | _ -> false);
    (* cast of cast with same endpoints collapses *)
    Rewrite.pattern ~match_name:"arith.index_cast" "index-cast-chain"
      (fun rw op ->
        match Op.defining_op (Op.operand op) with
        | Some inner
          when inner.Op.o_name = "arith.index_cast"
               && Types.equal
                    (Op.value_type (Op.operand inner))
                    (Op.value_type (Op.result op)) ->
          Rewrite.replace_op rw op [ Op.operand inner ];
          true
        | _ -> false);
    (* fir.convert identity / of constant *)
    Rewrite.pattern ~match_name:"fir.convert" "fold-fir-convert"
      (fun rw op ->
        let from = Op.value_type (Op.operand op)
        and to_ = Op.value_type (Op.result op) in
        if Types.equal from to_ then begin
          Rewrite.replace_op rw op [ Op.operand op ];
          true
        end
        else
          match (Arith.as_constant (Op.operand op), to_) with
          | Some (Attr.Int_a n), t when Types.is_integer t ->
            replace_with_const rw op (Attr.Int_a n)
          | Some (Attr.Int_a n), (Types.F32 | Types.F64) ->
            replace_with_const rw op (Attr.Float_a (float_of_int n))
          | Some (Attr.Float_a f), Types.F32 | Some (Attr.Float_a f), Types.F64
            ->
            replace_with_const rw op (Attr.Float_a f)
          | _ -> false) ]

let patterns = fold_patterns @ identity_patterns

let run ?(extra_patterns = []) m =
  let changed = Rewrite.apply_greedily (patterns @ extra_patterns) m in
  let removed = Dce.run m in
  changed || removed > 0

let pass = Pass.create "canonicalize" (fun m -> ignore (run m))

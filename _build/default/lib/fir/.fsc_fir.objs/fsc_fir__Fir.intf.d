lib/fir/fir.mli: Builder Dialect Fsc_ir Op Types

lib/fir/fir.ml: Attr Builder Dialect Fsc_ir List Op Types

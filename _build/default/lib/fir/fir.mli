(** FIR — the Fortran IR dialect produced by the mini-Flang frontend.

    Modelled on flang's FIR, restricted to the operations the paper's
    discovery pass walks. The stack/heap representation split the paper
    calls out is real here: stack arrays are accessed straight off the
    [fir.alloca] result while heap (allocatable) arrays go through a
    pointer cell that must be [fir.load]ed before [fir.coordinate_of]. *)

open Fsc_ir

val d : Dialect.dialect

(** {2 Storage} *)

(** Stack allocation; result is [!fir.ref<in_type>]. [name] becomes the
    [bindc_name] attribute carrying the Fortran variable name. *)
val alloca : Builder.t -> ?name:string -> Types.t -> Op.value

(** Heap allocation; result is [!fir.heap<in_type>]. *)
val allocmem : Builder.t -> ?name:string -> Types.t -> Op.value

val freemem : Builder.t -> Op.value -> unit

(** Pointee type of a [!fir.ref]/[!fir.heap] value. *)
val referenced_type : Op.value -> Types.t

val load : Builder.t -> Op.value -> Op.value
val store : Builder.t -> Op.value -> Op.value -> unit

(** Address of an array element: base is an array reference, indices are
    zero-based per-dimension coordinates (index-typed). *)
val coordinate_of : Builder.t -> Op.value -> Op.value list -> Op.value

(** {2 Value operations} *)

val convert : Builder.t -> to_:Types.t -> Op.value -> Op.value

(** Reassociation fence (Fortran parentheses). *)
val no_reassoc : Builder.t -> Op.value -> Op.value

(** {2 Control flow} *)

val result_ : Builder.t -> Op.value list -> unit

(** Fortran DO loop: index runs [lb..ub] {e inclusive} with [step]. The
    body callback receives the induction variable and iteration values,
    returning the next iteration values. *)
val do_loop :
  Builder.t ->
  lb:Op.value ->
  ub:Op.value ->
  step:Op.value ->
  ?iter_args:Op.value list ->
  (Builder.t -> Op.value -> Op.value list -> Op.value list) ->
  Op.value list

(** While-style loop: [cond] builds the condition region (returning the
    i1 to test), [body] the body region. *)
val iterate_while :
  Builder.t ->
  cond:(Builder.t -> Op.value) ->
  body:(Builder.t -> unit) ->
  Op.op

(** Fortran EXIT / CYCLE of the innermost enclosing loop. *)
val exit_ : Builder.t -> unit

val cycle : Builder.t -> unit

val if_ :
  Builder.t ->
  Op.value ->
  ?else_:(Builder.t -> unit) ->
  (Builder.t -> unit) ->
  Op.op

val call :
  Builder.t -> callee:string -> results:Types.t list -> Op.value list -> Op.op

(** {2 Queries used by the discovery pass} *)

val is_do_loop : Op.op -> bool
val is_store : Op.op -> bool
val is_load : Op.op -> bool
val is_coordinate_of : Op.op -> bool

(** (lb, ub, step) operands of a [fir.do_loop]. *)
val do_loop_bounds : Op.op -> Op.value * Op.value * Op.value

(** The single block of a single-region op. *)
val body_block : Op.op -> Op.block

val do_loop_body : Op.op -> Op.block
val do_loop_induction_var : Op.op -> Op.value

(** The [bindc_name] of an allocation, when present. *)
val var_name : Op.op -> string option

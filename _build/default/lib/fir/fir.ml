(* FIR — the Fortran IR dialect produced by the mini-Flang frontend.

   Modelled on flang's FIR (https://flang.llvm.org/docs/FIRLangRef.html),
   restricted to the operations the paper's discovery pass walks:

   - storage: fir.alloca (stack), fir.allocmem/fir.freemem (heap),
     fir.declare (named variable aliases);
   - access: fir.coordinate_of (per-dimension indices into an array
     reference), fir.load, fir.store;
   - control flow: fir.do_loop / fir.if / fir.result;
   - misc: fir.convert (type conversion), fir.no_reassoc (reassociation
     fence), fir.call, fir.global / fir.address_of.

   The stack/heap representation split the paper calls out is real here:
   stack arrays are accessed straight off the fir.alloca result while heap
   arrays go through a pointer cell (alloca of !fir.heap<...>) that must be
   fir.load'ed before fir.coordinate_of — discovery handles both routes. *)

open Fsc_ir

let d = Dialect.define_dialect "fir"

let () =
  Dialect.define_op d "alloca" ~num_results:1 ~verify:(fun op ->
      match Op.value_type (Op.result op) with
      | Types.Fir_ref _ -> Ok ()
      | _ -> Error "fir.alloca must produce a !fir.ref");
  Dialect.define_op d "allocmem" ~num_results:1 ~verify:(fun op ->
      match Op.value_type (Op.result op) with
      | Types.Fir_heap _ -> Ok ()
      | _ -> Error "fir.allocmem must produce a !fir.heap");
  Dialect.define_op d "freemem" ~num_operands:1 ~num_results:0;
  Dialect.define_op d "declare" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "load" ~num_operands:1 ~num_results:1;
  Dialect.define_op d "store" ~num_operands:2 ~num_results:0;
  Dialect.define_op d "coordinate_of" ~num_results:1 ~pure:true
    ~verify:(fun op ->
      if Op.num_operands op >= 2 then Ok ()
      else Error "fir.coordinate_of needs a ref and at least one index");
  Dialect.define_op d "convert" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "no_reassoc" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "do_loop" ~num_regions:1 ~verify:(fun op ->
      if Op.num_operands op >= 3 then Ok ()
      else Error "fir.do_loop needs lb, ub, step");
  (* while-style loop: region 0 evaluates the condition (fir.result of an
     i1), region 1 is the body *)
  Dialect.define_op d "iterate_while" ~num_operands:0 ~num_results:0
    ~num_regions:2;
  (* Fortran EXIT / CYCLE inside the innermost enclosing loop *)
  Dialect.define_op d "exit" ~num_operands:0 ~num_results:0;
  Dialect.define_op d "cycle" ~num_operands:0 ~num_results:0;
  Dialect.define_op d "if" ~num_operands:1;
  Dialect.define_op d "result" ~num_results:0 ~terminator:true;
  Dialect.define_op d "call" ~verify:(fun op ->
      match Op.attr op "callee" with
      | Some (Attr.Sym_a _) -> Ok ()
      | _ -> Error "fir.call requires a callee symbol");
  Dialect.define_op d "global" ~num_operands:0 ~num_results:0;
  Dialect.define_op d "address_of" ~num_operands:0 ~num_results:1 ~pure:true;
  (* stand-in for the Fortran runtime's list-directed output calls *)
  Dialect.define_op d "print" ~num_results:0

(* ---- builders ---- *)

(* Stack allocation of [in_type]; result is !fir.ref<in_type>. The
   bindc_name attribute carries the Fortran variable name, which discovery
   uses to identify arrays (mirroring Flang). *)
let alloca b ?name in_type =
  let attrs =
    ("in_type", Attr.Type_a in_type)
    ::
    (match name with
    | Some n -> [ ("bindc_name", Attr.Str_a n) ]
    | None -> [])
  in
  Builder.op1 b "fir.alloca" ~results:[ Types.Fir_ref in_type ] ~attrs

let allocmem b ?name in_type =
  let attrs =
    ("in_type", Attr.Type_a in_type)
    ::
    (match name with
    | Some n -> [ ("bindc_name", Attr.Str_a n) ]
    | None -> [])
  in
  Builder.op1 b "fir.allocmem" ~results:[ Types.Fir_heap in_type ] ~attrs

let freemem b v = ignore (Builder.op b "fir.freemem" ~operands:[ v ])

let referenced_type v =
  match Op.value_type v with
  | Types.Fir_ref t | Types.Fir_heap t -> t
  | t ->
    invalid_arg
      ("Fir.referenced_type: not a reference type: " ^ Types.to_string t)

let load b ref_v =
  Builder.op1 b "fir.load" ~operands:[ ref_v ]
    ~results:[ referenced_type ref_v ]

let store b value ref_v =
  ignore (Builder.op b "fir.store" ~operands:[ value; ref_v ])

(* Address of array element: base is !fir.ref/heap<!fir.array<...>>,
   indices are zero-based i64 per-dimension coordinates (leftmost index
   varies fastest, as in Fortran column-major — the frontend emits indices
   in declaration order and the runtime picks the layout). *)
let coordinate_of b base indices =
  let elem =
    match Op.value_type base with
    | Types.Fir_ref (Types.Fir_array (_, t))
    | Types.Fir_heap (Types.Fir_array (_, t)) ->
      t
    | t ->
      invalid_arg
        ("Fir.coordinate_of: not an array reference: " ^ Types.to_string t)
  in
  Builder.op1 b "fir.coordinate_of"
    ~operands:(base :: indices)
    ~results:[ Types.Fir_ref elem ]

let convert b ~to_ v =
  Builder.op1 b "fir.convert" ~operands:[ v ] ~results:[ to_ ]

let no_reassoc b v =
  Builder.op1 b "fir.no_reassoc" ~operands:[ v ]
    ~results:[ Op.value_type v ]

let result_ b values = ignore (Builder.op b "fir.result" ~operands:values)

(* Fortran DO loop: index runs from lb to ub *inclusive* with [step]
   (fir.do_loop semantics). [body] receives the induction variable. *)
let do_loop b ~lb ~ub ~step ?(iter_args = []) body =
  let arg_types = Types.Index :: List.map Op.value_type iter_args in
  let region, blk = Op.region_with_block ~args:arg_types () in
  let inner = Builder.at_end blk in
  let iv, iters =
    match Op.block_args blk with
    | iv :: rest -> (iv, rest)
    | [] -> assert false
  in
  let yielded = body inner iv iters in
  result_ inner yielded;
  let op =
    Builder.op b "fir.do_loop"
      ~operands:(lb :: ub :: step :: iter_args)
      ~results:(List.map Op.value_type iter_args)
      ~regions:[ region ]
  in
  Op.results op

(* while-style loop: [cond] builds the condition region (must end by
   returning an i1 via fir.result), [body] the body region. *)
let iterate_while b ~cond ~body =
  let cond_region, cond_blk = Op.region_with_block () in
  let cb = Builder.at_end cond_blk in
  let cv = cond cb in
  result_ cb [ cv ];
  let body_region, body_blk = Op.region_with_block () in
  let bb = Builder.at_end body_blk in
  body bb;
  result_ bb [];
  Builder.op b "fir.iterate_while" ~regions:[ cond_region; body_region ]

let exit_ b = ignore (Builder.op b "fir.exit")
let cycle b = ignore (Builder.op b "fir.cycle")

let if_ b cond ?else_ then_ =
  let then_region, then_blk = Op.region_with_block () in
  then_ (Builder.at_end then_blk);
  result_ (Builder.at_end then_blk) [];
  let regions =
    match else_ with
    | None -> [ then_region ]
    | Some e ->
      let else_region, else_blk = Op.region_with_block () in
      e (Builder.at_end else_blk);
      result_ (Builder.at_end else_blk) [];
      [ then_region; else_region ]
  in
  Builder.op b "fir.if" ~operands:[ cond ] ~regions

let call b ~callee ~results args =
  Builder.op b "fir.call" ~operands:args ~results
    ~attrs:[ ("callee", Attr.Sym_a callee) ]

(* ---- queries used by the discovery pass ---- *)

let is_do_loop op = op.Op.o_name = "fir.do_loop"
let is_store op = op.Op.o_name = "fir.store"
let is_load op = op.Op.o_name = "fir.load"
let is_coordinate_of op = op.Op.o_name = "fir.coordinate_of"

let do_loop_bounds op =
  ( Op.operand ~index:0 op,
    Op.operand ~index:1 op,
    Op.operand ~index:2 op )

let body_block op =
  match (Op.region op).Op.g_blocks with
  | [ b ] -> b
  | _ -> invalid_arg ("Fir.body_block: " ^ op.Op.o_name)

let do_loop_body = body_block

let do_loop_induction_var op = Op.block_arg (body_block op)

(* The declared Fortran variable name of an allocation, when present. *)
let var_name op =
  match Op.attr op "bindc_name" with
  | Some (Attr.Str_a s) -> Some s
  | _ -> None

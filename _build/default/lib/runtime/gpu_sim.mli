(** Simulated GPU device (Nvidia V100-SXM2-16GB class, as on Cirrus).

    Kernels execute functionally on the host; the simulator maintains a
    distinct device memory space and an analytic clock so the three data
    management strategies of the paper's Figure 5 are priced differently:
    on-demand paging for [gpu.host_register] (the "initial" approach),
    explicit transfers for the bespoke data-placement pass (the
    "optimised" approach), and unified-memory stalls for the OpenACC
    baseline. *)

type spec = {
  name : string;
  peak_flops : float;  (** FP64 flop/s *)
  hbm_bw : float;  (** device memory bytes/s *)
  pcie_bw : float;  (** host<->device bytes/s *)
  pcie_latency : float;  (** s per transfer *)
  launch_latency : float;  (** s per kernel launch *)
  page_migration_bw : float;  (** bytes/s for on-demand paging *)
  unified_stall : float;  (** extra s per launch under unified memory *)
  max_threads_per_block : int;
  device_mem_bytes : int;
}

(** The Tesla V100-SXM2-16GB of the paper's Cirrus system. *)
val v100 : spec

(** Raised on device-limit violations (oversized blocks — the paper's
    tile-size runtime failures — or out-of-memory) and on launches that
    access non-resident data under the explicit strategy. *)
exception Launch_failure of string

type residency =
  | Host_registered
  | Device_resident

type dev_buffer = {
  db_host : Memref_rt.t;
  db_device : Memref_rt.t;  (** the device twin (own storage) *)
  mutable db_residency : residency;
}

type t = {
  spec : spec;
  buffers : (int, dev_buffer) Hashtbl.t;
  mutable clock : float;  (** simulated seconds *)
  mutable kernels_launched : int;
  mutable bytes_h2d : int;
  mutable bytes_d2h : int;
  mutable bytes_paged : int;
  mutable allocated_bytes : int;
}

val create : ?spec:spec -> unit -> t
val reset_clock : t -> unit

(** Advance the simulated clock. *)
val charge : t -> float -> unit

val copy_time : t -> int -> float
val page_time : t -> int -> float

(** {2 Memory management} *)

(** Lazily create (or fetch) the device twin of a host buffer.
    @raise Launch_failure on device OOM. *)
val device_buffer : t -> Memref_rt.t -> dev_buffer

(** [gpu.host_register]: visible to the device, pages on demand. *)
val host_register : t -> Memref_rt.t -> unit

(** [gpu.alloc]: explicit device residency. *)
val alloc : t -> Memref_rt.t -> unit

val dealloc : t -> Memref_rt.t -> unit
val memcpy_h2d : t -> Memref_rt.t -> unit
val memcpy_d2h : t -> Memref_rt.t -> unit

(** The buffer a kernel must actually read/write for a host buffer. *)
val kernel_view : t -> Memref_rt.t -> Memref_rt.t

(** {2 Kernel launches} *)

type data_strategy =
  | Strategy_host_register  (** page everything, every launch *)
  | Strategy_device_resident  (** data must already be on the device *)
  | Strategy_unified  (** OpenACC managed memory: first-touch + stalls *)

(** Charge one launch over [buffers] doing [flops] floating point
    operations and [bytes_accessed] bytes of device traffic, then run
    [body] (which must operate on {!kernel_view} buffers) between the
    strategy's page-in and page-out phases.
    @raise Launch_failure per {!exception-Launch_failure}. *)
val launch :
  t ->
  strategy:data_strategy ->
  block_threads:int ->
  flops:float ->
  bytes_accessed:float ->
  body:(unit -> unit) ->
  Memref_rt.t list ->
  unit

(** Copy every device-resident buffer back to its host mirror. *)
val sync_all_d2h : t -> unit

type stats = {
  s_clock : float;
  s_kernels : int;
  s_bytes_h2d : int;
  s_bytes_d2h : int;
  s_bytes_paged : int;
}

val stats : t -> stats

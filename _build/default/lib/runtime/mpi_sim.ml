(* Simulated MPI: SPMD execution of R ranks inside one process, with real
   halo buffers and a message queue — the functional layer backing the
   distributed-memory experiments (Figure 6). Ranks execute supersteps
   sequentially; messages posted during a superstep are delivered before
   the next one, which is exactly the halo-swap pattern the DMP lowering
   emits. Timing at scale comes from [Fsc_perf.Net_model]; this module is
   about correctness of decomposition + exchange. *)

type message = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_payload : float array;
}

type t = {
  nranks : int;
  mutable in_flight : message list;
  mutable delivered : message list; (* current superstep's inbox *)
  mutable total_messages : int;
  mutable total_bytes : int;
}

let create nranks =
  { nranks; in_flight = []; delivered = []; total_messages = 0;
    total_bytes = 0 }

let send t ~src ~dst ~tag payload =
  if dst < 0 || dst >= t.nranks then invalid_arg "Mpi_sim.send: bad rank";
  t.in_flight <-
    { m_src = src; m_dst = dst; m_tag = tag; m_payload = payload }
    :: t.in_flight;
  t.total_messages <- t.total_messages + 1;
  t.total_bytes <- t.total_bytes + (8 * Array.length payload)

(* Finish the communication phase: everything posted becomes receivable. *)
let exchange t =
  t.delivered <- List.rev t.in_flight;
  t.in_flight <- []

let recv t ~src ~dst ~tag =
  let rec pick acc = function
    | [] -> invalid_arg
              (Printf.sprintf "Mpi_sim.recv: no message %d->%d tag %d" src
                 dst tag)
    | m :: rest ->
      if m.m_src = src && m.m_dst = dst && m.m_tag = tag then begin
        t.delivered <- List.rev_append acc rest;
        m.m_payload
      end
      else pick (m :: acc) rest
  in
  pick [] t.delivered

(* ------------------------------------------------------------------ *)
(* SPMD driver                                                         *)
(* ------------------------------------------------------------------ *)

(* Run [superstep world rank step_index] for every rank, [steps] times,
   with message exchange between supersteps. The superstep function does
   compute + posts sends; receives happen at the start of the *next*
   superstep via [recv]. For halo swaps we split each step into a post
   phase and a consume phase. *)
let run_supersteps t ~steps ~post ~consume =
  for step = 0 to steps - 1 do
    for rank = 0 to t.nranks - 1 do
      post t ~rank ~step
    done;
    exchange t;
    for rank = 0 to t.nranks - 1 do
      consume t ~rank ~step
    done
  done

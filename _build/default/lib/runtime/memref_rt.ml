(* Runtime buffers backing FIR arrays and memrefs.

   All array data lives in float64 Bigarrays with explicit strides; FIR
   arrays and the memrefs derived from them are column-major (dimension 0
   contiguous), matching Fortran. Integer and logical array elements are
   stored as floats (exact for |n| < 2^53) — a simulator simplification
   recorded in DESIGN.md. *)

type t = {
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  dims : int array;
  strides : int array;
  (* unique id used by the GPU/MPI simulators to track residency *)
  buf_id : int;
}

let next_id =
  let c = ref 0 in
  fun () ->
    incr c;
    !c

let column_major_strides dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = 1 to n - 1 do
    strides.(i) <- strides.(i - 1) * dims.(i - 1)
  done;
  strides

let size t = Array.fold_left ( * ) 1 t.dims

let bytes t = 8 * size t

let create dims =
  let dims = Array.of_list dims in
  let total = Array.fold_left ( * ) 1 dims in
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
               (max total 1) in
  Bigarray.Array1.fill data 0.0;
  { data; dims; strides = column_major_strides dims; buf_id = next_id () }

let scalar () = create [ 1 ]

let rank t = Array.length t.dims

let offset t (indices : int array) =
  let off = ref 0 in
  for i = 0 to Array.length indices - 1 do
    off := !off + (indices.(i) * t.strides.(i))
  done;
  !off

let get t indices = Bigarray.Array1.get t.data (offset t indices)

let set t indices v = Bigarray.Array1.set t.data (offset t indices) v

let get_flat t i = Bigarray.Array1.get t.data i
let set_flat t i v = Bigarray.Array1.set t.data i v

let fill t v = Bigarray.Array1.fill t.data v

let copy_into ~src ~dst =
  if size src <> size dst then invalid_arg "Memref_rt.copy_into: size";
  Bigarray.Array1.blit src.data dst.data

let clone t =
  let t' = create (Array.to_list t.dims) in
  Bigarray.Array1.blit t.data t'.data;
  t'

(* Initialise with a function of the flat index (deterministic test data). *)
let init t f =
  for i = 0 to size t - 1 do
    set_flat t i (f i)
  done

(* max |a - b| over all elements *)
let max_abs_diff a b =
  if size a <> size b then invalid_arg "Memref_rt.max_abs_diff: size";
  let m = ref 0.0 in
  for i = 0 to size a - 1 do
    let d = Float.abs (get_flat a i -. get_flat b i) in
    if d > !m then m := d
  done;
  !m

let checksum t =
  let acc = ref 0.0 in
  for i = 0 to size t - 1 do
    acc := !acc +. (get_flat t i *. float_of_int ((i mod 97) + 1))
  done;
  !acc

(* Simulated GPU device (Nvidia V100-SXM2-16GB class, as on Cirrus).

   Kernels execute functionally on the host; the simulator maintains a
   distinct device memory space and an analytic clock so the three data
   management strategies of the paper's Figure 5 are priced differently:

   - gpu.host_register (the "initial" approach): data stays host-resident
     and every kernel launch pays on-demand page migration over PCIe for
     all bytes the kernel touches — no caching between launches, which is
     what the paper observed;
   - explicit gpu.alloc + gpu.memcpy (the "optimised" bespoke pass):
     transfers appear only where the data placement pass put them;
   - OpenACC-with-unified-memory (the Nvidia baseline): first-touch
     migration plus a per-launch stall overhead, cheaper than
     host_register but not free.

   Timing: t_kernel = launch_latency + max(flops/peak, bytes/hbm_bw),
   t_copy = pcie_latency + bytes/pcie_bw. *)

type spec = {
  name : string;
  peak_flops : float;       (* FP64 flop/s *)
  hbm_bw : float;           (* device memory bytes/s *)
  pcie_bw : float;          (* host<->device bytes/s *)
  pcie_latency : float;     (* s per transfer *)
  launch_latency : float;   (* s per kernel launch *)
  page_migration_bw : float;(* bytes/s for on-demand paging *)
  unified_stall : float;    (* extra s per launch under unified memory *)
  max_threads_per_block : int;
  device_mem_bytes : int;
}

let v100 =
  { name = "Nvidia V100-SXM2-16GB";
    peak_flops = 7.8e12;
    hbm_bw = 900e9;
    pcie_bw = 12e9;
    pcie_latency = 10e-6;
    launch_latency = 8e-6;
    page_migration_bw = 2.0e9;  (* on-demand paging is far below PCIe peak *)
    unified_stall = 60e-6;
    max_threads_per_block = 1024;
    device_mem_bytes = 16 * 1024 * 1024 * 1024 }

exception Launch_failure of string

type residency =
  | Host_registered (* pages migrate on every launch *)
  | Device_resident (* lives in device memory *)

type dev_buffer = {
  db_host : Memref_rt.t;           (* host mirror *)
  db_device : Memref_rt.t;         (* device copy (own storage) *)
  mutable db_residency : residency;
}

type t = {
  spec : spec;
  buffers : (int, dev_buffer) Hashtbl.t; (* keyed by host buf_id *)
  mutable clock : float;        (* simulated seconds *)
  mutable kernels_launched : int;
  mutable bytes_h2d : int;
  mutable bytes_d2h : int;
  mutable bytes_paged : int;
  mutable allocated_bytes : int;
}

let create ?(spec = v100) () =
  { spec; buffers = Hashtbl.create 16; clock = 0.0; kernels_launched = 0;
    bytes_h2d = 0; bytes_d2h = 0; bytes_paged = 0; allocated_bytes = 0 }

let reset_clock t = t.clock <- 0.0

let charge t seconds = t.clock <- t.clock +. seconds

let copy_time t bytes =
  t.spec.pcie_latency +. (float_of_int bytes /. t.spec.pcie_bw)

let page_time t bytes =
  float_of_int bytes /. t.spec.page_migration_bw

(* ---- memory management ---- *)

let device_buffer t host =
  match Hashtbl.find_opt t.buffers host.Memref_rt.buf_id with
  | Some db -> db
  | None ->
    let bytes = Memref_rt.bytes host in
    if t.allocated_bytes + bytes > t.spec.device_mem_bytes then
      raise (Launch_failure "device out of memory");
    t.allocated_bytes <- t.allocated_bytes + bytes;
    let db =
      { db_host = host;
        db_device = Memref_rt.clone host;
        db_residency = Host_registered }
    in
    Hashtbl.replace t.buffers host.Memref_rt.buf_id db;
    db

(* gpu.host_register: make the host buffer visible to the device without
   an explicit copy — accesses will page on demand. *)
let host_register t host =
  let db = device_buffer t host in
  db.db_residency <- Host_registered

(* gpu.alloc: explicit device allocation for this host buffer. *)
let alloc t host =
  let db = device_buffer t host in
  db.db_residency <- Device_resident;
  charge t 1e-6

let dealloc t host =
  match Hashtbl.find_opt t.buffers host.Memref_rt.buf_id with
  | Some _ ->
    Hashtbl.remove t.buffers host.Memref_rt.buf_id;
    t.allocated_bytes <- t.allocated_bytes - Memref_rt.bytes host
  | None -> ()

(* gpu.memcpy host -> device *)
let memcpy_h2d t host =
  let db = device_buffer t host in
  Memref_rt.copy_into ~src:db.db_host ~dst:db.db_device;
  let bytes = Memref_rt.bytes host in
  t.bytes_h2d <- t.bytes_h2d + bytes;
  charge t (copy_time t bytes)

let memcpy_d2h t host =
  let db = device_buffer t host in
  Memref_rt.copy_into ~src:db.db_device ~dst:db.db_host;
  let bytes = Memref_rt.bytes host in
  t.bytes_d2h <- t.bytes_d2h + bytes;
  charge t (copy_time t bytes)

(* The buffer a kernel should actually read/write for a host buffer. *)
let kernel_view t host =
  let db = device_buffer t host in
  db.db_device

(* ---- kernel launch accounting ---- *)

type data_strategy =
  | Strategy_host_register
  | Strategy_device_resident
  | Strategy_unified (* the OpenACC baseline *)

(* Charge one kernel launch touching [buffers], doing [flops] floating
   point operations and [bytes_accessed] bytes of device traffic, then
   execute [body] (which must operate on kernel_view buffers) between the
   page-in and page-out phases of the data strategy. *)
let launch t ~strategy ~block_threads ~flops ~bytes_accessed ~body buffers =
  if block_threads > t.spec.max_threads_per_block then
    raise
      (Launch_failure
         (Printf.sprintf "block of %d threads exceeds device limit %d"
            block_threads t.spec.max_threads_per_block));
  t.kernels_launched <- t.kernels_launched + 1;
  charge t t.spec.launch_latency;
  (match strategy with
  | Strategy_host_register ->
    (* every page the kernel touches migrates, both directions, every
       launch: this is the pathology of Figure 5's initial approach *)
    List.iter
      (fun host ->
        let db = device_buffer t host in
        Memref_rt.copy_into ~src:db.db_host ~dst:db.db_device;
        let bytes = Memref_rt.bytes host in
        t.bytes_paged <- t.bytes_paged + bytes;
        charge t (page_time t bytes))
      buffers
  | Strategy_unified ->
    charge t t.spec.unified_stall;
    List.iter
      (fun host ->
        let db = device_buffer t host in
        if db.db_residency = Host_registered then begin
          (* first touch migrates at PCIe speed, then stays resident *)
          Memref_rt.copy_into ~src:db.db_host ~dst:db.db_device;
          db.db_residency <- Device_resident;
          let bytes = Memref_rt.bytes host in
          t.bytes_h2d <- t.bytes_h2d + bytes;
          charge t (copy_time t bytes)
        end)
      buffers
  | Strategy_device_resident ->
    List.iter
      (fun host ->
        let db = device_buffer t host in
        if db.db_residency <> Device_resident then
          raise
            (Launch_failure
               "kernel accesses buffer not resident on the device"))
      buffers);
  (* compute time: roofline of flops vs memory traffic *)
  let t_compute = flops /. t.spec.peak_flops in
  let t_memory = bytes_accessed /. t.spec.hbm_bw in
  charge t (Float.max t_compute t_memory);
  body ();
  (match strategy with
  | Strategy_host_register ->
    (* written pages migrate back *)
    List.iter
      (fun host ->
        let db = device_buffer t host in
        Memref_rt.copy_into ~src:db.db_device ~dst:db.db_host;
        let bytes = Memref_rt.bytes host in
        t.bytes_paged <- t.bytes_paged + bytes;
        charge t (page_time t bytes))
      buffers
  | Strategy_unified | Strategy_device_resident -> ())

(* Synchronise all device buffers back to their host mirrors (end of a
   unified/managed region). *)
let sync_all_d2h t =
  Hashtbl.iter
    (fun _ db ->
      if db.db_residency = Device_resident then begin
        Memref_rt.copy_into ~src:db.db_device ~dst:db.db_host;
        let bytes = Memref_rt.bytes db.db_host in
        t.bytes_d2h <- t.bytes_d2h + bytes;
        charge t (copy_time t bytes)
      end)
    t.buffers

type stats = {
  s_clock : float;
  s_kernels : int;
  s_bytes_h2d : int;
  s_bytes_d2h : int;
  s_bytes_paged : int;
}

let stats t =
  { s_clock = t.clock; s_kernels = t.kernels_launched;
    s_bytes_h2d = t.bytes_h2d; s_bytes_d2h = t.bytes_d2h;
    s_bytes_paged = t.bytes_paged }

(** Simulated MPI: SPMD execution of ranks inside one process with real
    message buffers — the functional layer backing the distributed-memory
    experiments (Figure 6). Ranks execute supersteps sequentially;
    messages posted during a superstep are delivered before the next,
    which is exactly the halo-swap pattern the DMP lowering emits. *)

type message = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_payload : float array;
}

type t = {
  nranks : int;
  mutable in_flight : message list;
  mutable delivered : message list;
  mutable total_messages : int;
  mutable total_bytes : int;
}

val create : int -> t

(** Post a message (delivered at the next {!exchange}). *)
val send : t -> src:int -> dst:int -> tag:int -> float array -> unit

(** Make everything posted receivable. *)
val exchange : t -> unit

(** Take the matching message out of the inbox.
    @raise Invalid_argument when absent. *)
val recv : t -> src:int -> dst:int -> tag:int -> float array

(** Run [steps] supersteps: all ranks [post], one {!exchange}, all ranks
    [consume]. *)
val run_supersteps :
  t ->
  steps:int ->
  post:(t -> rank:int -> step:int -> unit) ->
  consume:(t -> rank:int -> step:int -> unit) ->
  unit

lib/runtime/memref_rt.ml: Array Bigarray Float

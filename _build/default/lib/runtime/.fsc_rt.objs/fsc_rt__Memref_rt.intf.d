lib/runtime/memref_rt.mli: Bigarray

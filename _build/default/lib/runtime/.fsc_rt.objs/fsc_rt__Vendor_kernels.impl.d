lib/runtime/vendor_kernels.ml: Bigarray Domain_pool Memref_rt

lib/runtime/interp.mli: Buffer Domain_pool Fsc_ir Gpu_sim Hashtbl Memref_rt Op

lib/runtime/kernel_compile.mli: Domain_pool Fsc_ir Memref_rt Op

lib/runtime/gpu_sim.ml: Float Hashtbl List Memref_rt Printf

lib/runtime/mpi_sim.mli:

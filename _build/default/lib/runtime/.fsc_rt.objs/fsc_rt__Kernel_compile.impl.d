lib/runtime/kernel_compile.ml: Array Attr Bigarray Dialect Domain_pool Float Fsc_dialects Fsc_ir Hashtbl List Memref_rt Op Printf Types

lib/runtime/gpu_sim.mli: Hashtbl Memref_rt

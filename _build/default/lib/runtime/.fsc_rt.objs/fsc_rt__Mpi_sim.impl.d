lib/runtime/mpi_sim.ml: Array List Printf

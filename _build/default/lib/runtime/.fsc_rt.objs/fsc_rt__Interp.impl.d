lib/runtime/interp.ml: Array Attr Buffer Dialect Domain_pool Float Fsc_dialects Fsc_ir Gpu_sim Hashtbl List Memref_rt Op Printf String Types

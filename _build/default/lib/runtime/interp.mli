(** Tree-walking IR interpreter.

    The execution substrate for the "Flang only" path (direct FIR
    execution, deliberately naive) and the functional reference for every
    lowered form (scf, omp, gpu). Cross-module linking resolves fir.call
    from the host module into the stencil module's functions even though
    the pointer types differ nominally ([!fir.llvm_ptr] vs [!llvm.ptr]) —
    the paper's link-time reconciliation. *)

open Fsc_ir

exception Interp_error of string

(** Runtime values. *)
type rvalue =
  | R_unit
  | R_int of int  (** all integer/index/i1 values *)
  | R_float of float
  | R_buf of Memref_rt.t  (** array object / memref / data pointer *)
  | R_cell of cell  (** mutable scalar memory cell *)
  | R_elem of Memref_rt.t * int  (** element reference: buffer + offset *)

and cell = { mutable contents : rvalue }

(** Converters; raise {!Interp_error} on kind mismatch. *)

val as_int : rvalue -> int

val as_float : rvalue -> float
val as_buf : rvalue -> Memref_rt.t

(** A linked execution context: registered functions, external (native)
    implementations, the OpenMP pool, the GPU simulator and its active
    data strategy, captured output, and the registry of named array
    allocations drivers and tests inspect. *)
type context = {
  funcs : (string, Op.op) Hashtbl.t;
  gpu_funcs : (string, Op.op) Hashtbl.t;  (** ["module::kernel"] *)
  externals : (string, context -> rvalue list -> rvalue list) Hashtbl.t;
  mutable pool : Domain_pool.t option;
  mutable gpu : Gpu_sim.t option;
  mutable gpu_strategy : Gpu_sim.data_strategy;
  mutable gpu_coords : int array;  (** bid x,y,z then tid x,y,z *)
  mutable output : Buffer.t option;  (** capture fir.print *)
  mutable op_count : int;  (** interpreted ops, for inspection *)
  mutable named_buffers : (string * Memref_rt.t) list;
}

val create_context : unit -> context

(** Register every [func.func] (and gpu.module kernel) of a module. *)
val add_module : context -> Op.op -> unit

(** Externals take precedence over registered functions with the same
    symbol — the driver shadows interpretable kernel definitions with
    compiled ones. *)
val register_external :
  context -> string -> (context -> rvalue list -> rvalue list) -> unit

(** Call a symbol (function or external) with arguments.
    @raise Interp_error on unknown symbols or runtime errors. *)
val call : context -> string -> rvalue list -> rvalue list

(** Call a specific function op directly. *)
val call_func : context -> Op.op -> rvalue list -> rvalue list

(** Run the registered Fortran main program ([_QQmain]). *)
val run_main : context -> unit

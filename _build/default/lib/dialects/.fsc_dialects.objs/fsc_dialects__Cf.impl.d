lib/dialects/cf.ml: Attr Builder Dialect Fsc_ir Op

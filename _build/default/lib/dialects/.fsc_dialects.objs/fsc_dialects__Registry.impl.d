lib/dialects/registry.ml: Arith Builtin Cf Func Gpu Llvm Math Memref Openmp Scf

lib/dialects/llvm.ml: Attr Builder Dialect Fsc_ir Op

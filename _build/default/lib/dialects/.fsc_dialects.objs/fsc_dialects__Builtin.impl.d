lib/dialects/builtin.ml: Builder Dialect Fsc_ir

lib/dialects/arith.ml: Attr Builder Dialect Fsc_ir List Op Printf Types

lib/dialects/memref.ml: Builder Dialect Fsc_ir List Op Types

lib/dialects/gpu.ml: Attr Builder Dialect Fsc_ir Op Types

lib/dialects/math.ml: Builder Dialect Float Fsc_ir List Op

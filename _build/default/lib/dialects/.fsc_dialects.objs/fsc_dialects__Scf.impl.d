lib/dialects/scf.ml: Array Builder Dialect Fsc_ir List Op Types

lib/dialects/openmp.ml: Array Attr Builder Dialect Fsc_ir List Op Types

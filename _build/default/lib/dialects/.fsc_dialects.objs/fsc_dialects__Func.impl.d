lib/dialects/func.ml: Attr Builder Dialect Fsc_ir List Op Types

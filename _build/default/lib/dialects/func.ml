(* func dialect: functions, calls and returns. *)

open Fsc_ir

let d = Dialect.define_dialect "func"

let () =
  Dialect.define_op d "func" ~num_operands:0 ~num_results:0 ~num_regions:1
    ~verify:(fun op ->
      match (Op.attr op "sym_name", Op.attr op "function_type") with
      | Some (Attr.Str_a _), Some (Attr.Type_a (Types.Func_t _)) -> Ok ()
      | _ -> Error "func.func requires sym_name and function_type attributes");
  Dialect.define_op d "return" ~num_results:0 ~terminator:true;
  Dialect.define_op d "call" ~verify:(fun op ->
      match Op.attr op "callee" with
      | Some (Attr.Sym_a _) -> Ok ()
      | _ -> Error "func.call requires a callee symbol attribute")

(* Create a func.func with entry block arguments for [args]; [body] is
   invoked with a builder positioned in the entry block and the argument
   values. The body must end with func.return (use [return_] below). *)
let func ?(attrs = []) ~name ~args ~results body =
  let region, entry = Op.region_with_block ~args () in
  let op =
    Op.create "func.func" ~regions:[ region ]
      ~attrs:
        ([ ("sym_name", Attr.Str_a name);
           ("function_type", Attr.Type_a (Types.Func_t (args, results))) ]
        @ attrs)
  in
  let b = Builder.at_end entry in
  body b (Op.block_args entry);
  op

(* Declaration-only function (no body ops): used for the extraction
   trampolines where the stencil module provides the implementation. *)
let declare ~name ~args ~results =
  let region, _ = Op.region_with_block ~args () in
  Op.create "func.func" ~regions:[ region ]
    ~attrs:
      [ ("sym_name", Attr.Str_a name);
        ("function_type", Attr.Type_a (Types.Func_t (args, results)));
        ("sym_visibility", Attr.Str_a "private") ]

let return_ b values = ignore (Builder.op b "func.return" ~operands:values)

let call b ~callee ~results args =
  Builder.op b "func.call" ~operands:args ~results
    ~attrs:[ ("callee", Attr.Sym_a callee) ]

let name op = Op.string_attr op "sym_name"

let signature op =
  match Op.attr_exn op "function_type" with
  | Attr.Type_a (Types.Func_t (args, rets)) -> (args, rets)
  | _ -> invalid_arg "Func.signature"

let entry_block op =
  match (Op.region op).Op.g_blocks with
  | b :: _ -> b
  | [] -> invalid_arg "Func.entry_block: no blocks"

let is_declaration op =
  Op.first_op (entry_block op) = None

(* Find a function by name inside a module op. *)
let lookup m fname =
  let found = ref None in
  Op.walk_inner
    (fun op ->
      if op.Op.o_name = "func.func" && name op = fname then found := Some op)
    m;
  !found

let lookup_exn m fname =
  match lookup m fname with
  | Some f -> f
  | None -> invalid_arg ("Func.lookup_exn: no function " ^ fname)

let all_functions m =
  Op.collect_ops (fun op -> op.Op.o_name = "func.func") m
  |> List.filter (fun f -> not (Op.is_module f))

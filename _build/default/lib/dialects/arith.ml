(* arith dialect: integer/float arithmetic, comparisons and casts. *)

open Fsc_ir

let d = Dialect.define_dialect "arith"

let same_type_binop op =
  let a = Op.operand ~index:0 op and b = Op.operand ~index:1 op in
  if Types.equal (Op.value_type a) (Op.value_type b) then Ok ()
  else Error "binary op operands must have the same type"

let float_binop op =
  match same_type_binop op with
  | Error _ as e -> e
  | Ok () ->
    if Types.is_float (Op.value_type (Op.operand op)) then Ok ()
    else Error "expected float operands"

let int_binop op =
  match same_type_binop op with
  | Error _ as e -> e
  | Ok () ->
    if Types.is_integer (Op.value_type (Op.operand op)) then Ok ()
    else Error "expected integer operands"

let () =
  Dialect.define_op d "constant" ~num_operands:0 ~num_results:1 ~pure:true
    ~verify:(fun op ->
      if Op.has_attr op "value" then Ok ()
      else Error "arith.constant requires a \"value\" attribute");
  List.iter
    (fun n ->
      Dialect.define_op d n ~num_operands:2 ~num_results:1 ~pure:true
        ~verify:float_binop)
    [ "addf"; "subf"; "mulf"; "divf"; "maximumf"; "minimumf" ];
  List.iter
    (fun n ->
      Dialect.define_op d n ~num_operands:2 ~num_results:1 ~pure:true
        ~verify:int_binop)
    [ "addi"; "subi"; "muli"; "divsi"; "remsi"; "andi"; "ori"; "xori";
      "shli"; "shrsi"; "maxsi"; "minsi" ];
  Dialect.define_op d "negf" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "cmpi" ~num_operands:2 ~num_results:1 ~pure:true;
  Dialect.define_op d "cmpf" ~num_operands:2 ~num_results:1 ~pure:true;
  Dialect.define_op d "select" ~num_operands:3 ~num_results:1 ~pure:true;
  Dialect.define_op d "index_cast" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "sitofp" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "fptosi" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "extf" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "truncf" ~num_operands:1 ~num_results:1 ~pure:true

(* Comparison predicates, encoded as an integer attribute like MLIR. *)
type cmp_predicate =
  | Eq
  | Ne
  | Slt
  | Sle
  | Sgt
  | Sge

let cmp_predicate_to_int = function
  | Eq -> 0
  | Ne -> 1
  | Slt -> 2
  | Sle -> 3
  | Sgt -> 4
  | Sge -> 5

let cmp_predicate_of_int = function
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Slt
  | 3 -> Sle
  | 4 -> Sgt
  | 5 -> Sge
  | n -> invalid_arg (Printf.sprintf "Arith.cmp_predicate_of_int %d" n)

(* ---- builders ---- *)

let constant_int b ?(ty = Types.I64) v =
  Builder.op1 b "arith.constant" ~results:[ ty ]
    ~attrs:[ ("value", Attr.Int_a v) ]

let constant_index b v = constant_int b ~ty:Types.Index v

let constant_float b ?(ty = Types.F64) v =
  Builder.op1 b "arith.constant" ~results:[ ty ]
    ~attrs:[ ("value", Attr.Float_a v) ]

let binop b name x y =
  Builder.op1 b name ~operands:[ x; y ] ~results:[ Op.value_type x ]

let addf b x y = binop b "arith.addf" x y
let subf b x y = binop b "arith.subf" x y
let mulf b x y = binop b "arith.mulf" x y
let divf b x y = binop b "arith.divf" x y
let addi b x y = binop b "arith.addi" x y
let subi b x y = binop b "arith.subi" x y
let muli b x y = binop b "arith.muli" x y
let divsi b x y = binop b "arith.divsi" x y
let remsi b x y = binop b "arith.remsi" x y

let negf b x =
  Builder.op1 b "arith.negf" ~operands:[ x ] ~results:[ Op.value_type x ]

let cmpi b pred x y =
  Builder.op1 b "arith.cmpi" ~operands:[ x; y ] ~results:[ Types.I1 ]
    ~attrs:[ ("predicate", Attr.Int_a (cmp_predicate_to_int pred)) ]

let cmpf b pred x y =
  Builder.op1 b "arith.cmpf" ~operands:[ x; y ] ~results:[ Types.I1 ]
    ~attrs:[ ("predicate", Attr.Int_a (cmp_predicate_to_int pred)) ]

let select b c x y =
  Builder.op1 b "arith.select" ~operands:[ c; x; y ]
    ~results:[ Op.value_type x ]

let index_cast b ~to_ x =
  Builder.op1 b "arith.index_cast" ~operands:[ x ] ~results:[ to_ ]

let sitofp b ~to_ x =
  Builder.op1 b "arith.sitofp" ~operands:[ x ] ~results:[ to_ ]

let fptosi b ~to_ x =
  Builder.op1 b "arith.fptosi" ~operands:[ x ] ~results:[ to_ ]

(* Constant folding helpers used by canonicalisation. *)
let is_constant op = op.Op.o_name = "arith.constant"

let constant_value op =
  if is_constant op then Op.attr op "value" else None

let as_constant (v : Op.value) =
  match Op.defining_op v with
  | Some op -> constant_value op
  | None -> None

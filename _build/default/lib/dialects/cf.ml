(* cf dialect: minimal unstructured control flow. Successor blocks are
   identified by position within the enclosing region ("succ"/"true_succ"/
   "false_succ" integer attributes) — enough for the lowered forms this
   pipeline produces without block operands. *)

open Fsc_ir

let d = Dialect.define_dialect "cf"

let () =
  Dialect.define_op d "br" ~num_results:0 ~terminator:true ~verify:(fun op ->
      if Op.has_attr op "succ" then Ok ()
      else Error "cf.br requires a succ attribute");
  Dialect.define_op d "cond_br" ~num_results:0 ~terminator:true
    ~verify:(fun op ->
      if Op.has_attr op "true_succ" && Op.has_attr op "false_succ" then Ok ()
      else Error "cf.cond_br requires true_succ and false_succ attributes");
  Dialect.define_op d "assert" ~num_operands:1 ~num_results:0

let br b ~succ ?(args = []) () =
  ignore
    (Builder.op b "cf.br" ~operands:args ~attrs:[ ("succ", Attr.Int_a succ) ])

let cond_br b cond ~true_succ ~false_succ =
  ignore
    (Builder.op b "cf.cond_br" ~operands:[ cond ]
       ~attrs:
         [ ("true_succ", Attr.Int_a true_succ);
           ("false_succ", Attr.Int_a false_succ) ])

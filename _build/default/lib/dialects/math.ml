(* math dialect: transcendental / special functions (Flang lowers Fortran
   intrinsics to these, which the paper relies on being standard). *)

open Fsc_ir

let d = Dialect.define_dialect "math"

let unary_ops =
  [ "sqrt"; "sin"; "cos"; "tan"; "exp"; "log"; "log2"; "absf"; "tanh";
    "atan"; "ceil"; "floor"; "erf" ]

let binary_ops = [ "powf"; "atan2"; "copysign" ]

let () =
  List.iter
    (fun n -> Dialect.define_op d n ~num_operands:1 ~num_results:1 ~pure:true)
    unary_ops;
  List.iter
    (fun n -> Dialect.define_op d n ~num_operands:2 ~num_results:1 ~pure:true)
    binary_ops;
  Dialect.define_op d "fma" ~num_operands:3 ~num_results:1 ~pure:true;
  (* fpowi: float base, integer exponent — expanded by test-expand-math. *)
  Dialect.define_op d "fpowi" ~num_operands:2 ~num_results:1 ~pure:true

let unary b name x =
  Builder.op1 b ("math." ^ name) ~operands:[ x ]
    ~results:[ Op.value_type x ]

let binary b name x y =
  Builder.op1 b ("math." ^ name) ~operands:[ x; y ]
    ~results:[ Op.value_type x ]

let sqrt b x = unary b "sqrt" x
let absf b x = unary b "absf" x
let powf b x y = binary b "powf" x y

let fpowi b x n =
  Builder.op1 b "math.fpowi" ~operands:[ x; n ]
    ~results:[ Op.value_type x ]

(* Interpretation table shared by the interpreter and the kernel JIT. *)
let eval_unary name (x : float) =
  match name with
  | "math.sqrt" -> Float.sqrt x
  | "math.sin" -> Float.sin x
  | "math.cos" -> Float.cos x
  | "math.tan" -> Float.tan x
  | "math.exp" -> Float.exp x
  | "math.log" -> Float.log x
  | "math.log2" -> Float.log x /. Float.log 2.
  | "math.absf" -> Float.abs x
  | "math.tanh" -> Float.tanh x
  | "math.atan" -> Float.atan x
  | "math.ceil" -> Float.ceil x
  | "math.floor" -> Float.floor x
  | "math.erf" -> Float.erf x
  | _ -> invalid_arg ("Math.eval_unary: " ^ name)

let eval_binary name (x : float) (y : float) =
  match name with
  | "math.powf" -> Float.pow x y
  | "math.atan2" -> Float.atan2 x y
  | "math.copysign" -> Float.copy_sign x y
  | _ -> invalid_arg ("Math.eval_binary: " ^ name)

(* llvm dialect: the thin slice needed at module boundaries. The paper's
   extraction pass passes FIR data as !fir.llvm_ptr across the boundary to
   functions taking !llvm.ptr — nominally different, semantically identical
   types that only meet at link time. *)

open Fsc_ir

let d = Dialect.define_dialect "llvm"

let () =
  Dialect.define_op d "mlir.constant" ~num_operands:0 ~num_results:1
    ~pure:true;
  Dialect.define_op d "bitcast" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "getelementptr" ~num_results:1 ~pure:true;
  Dialect.define_op d "load" ~num_operands:1 ~num_results:1;
  Dialect.define_op d "store" ~num_operands:2 ~num_results:0;
  Dialect.define_op d "call" ~verify:(fun op ->
      match Op.attr op "callee" with
      | Some (Attr.Sym_a _) -> Ok ()
      | _ -> Error "llvm.call requires a callee symbol");
  Dialect.define_op d "return" ~num_results:0 ~terminator:true

let bitcast b ~to_ v =
  Builder.op1 b "llvm.bitcast" ~operands:[ v ] ~results:[ to_ ]

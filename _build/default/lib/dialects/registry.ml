(* Forcing module initialisation registers every dialect's ops with the
   global dialect table; call [init] once at program start. *)

let init () =
  ignore Arith.d;
  ignore Math.d;
  ignore Func.d;
  ignore Scf.d;
  ignore Memref.d;
  ignore Cf.d;
  ignore Llvm.d;
  ignore Builtin.d;
  ignore Openmp.d;
  ignore Gpu.d

(* scf dialect: structured control flow — serial loops, parallel loops and
   conditionals. The paper's CPU lowering turns the outermost stencil loop
   into scf.parallel and inner loops into scf.for. *)

open Fsc_ir

let d = Dialect.define_dialect "scf"

let () =
  (* scf.for %iv = %lb to %ub step %step iter_args(...) — operands are
     lb, ub, step, then the initial values of iter_args. *)
  Dialect.define_op d "for" ~num_regions:1 ~verify:(fun op ->
      if Op.num_operands op < 3 then Error "scf.for needs lb, ub, step"
      else
        let region = Op.region op in
        match region.Op.g_blocks with
        | [ body ] ->
          let nargs = Array.length body.Op.b_args in
          if nargs <> Op.num_operands op - 3 + 1 then
            Error "scf.for body must take induction var + iter_args"
          else Ok ()
        | _ -> Error "scf.for requires exactly one block");
  Dialect.define_op d "parallel" ~num_regions:1 ~verify:(fun op ->
      if Op.num_operands op mod 3 <> 0 || Op.num_operands op = 0 then
        Error "scf.parallel operands must be (lb*, ub*, step*)"
      else Ok ());
  Dialect.define_op d "if" ~num_operands:1 ~verify:(fun op ->
      if Array.length op.Op.o_regions < 1 || Array.length op.Op.o_regions > 2
      then Error "scf.if takes one or two regions"
      else Ok ());
  Dialect.define_op d "yield" ~num_results:0 ~terminator:true;
  Dialect.define_op d "reduce" ~num_operands:1 ~num_results:0 ~num_regions:1

let yield b values = ignore (Builder.op b "scf.yield" ~operands:values)

(* Serial counted loop. [body] receives a builder in the loop body, the
   induction variable and the iteration arguments; it returns the values to
   yield (same arity as [iter_args]). Returns loop results. *)
let for_ b ~lb ~ub ~step ?(iter_args = []) body =
  let arg_types =
    Types.Index :: List.map Op.value_type iter_args
  in
  let region, blk = Op.region_with_block ~args:arg_types () in
  let inner = Builder.at_end blk in
  let args = Op.block_args blk in
  let iv, iters =
    match args with
    | iv :: rest -> (iv, rest)
    | [] -> assert false
  in
  let yielded = body inner iv iters in
  yield inner yielded;
  let op =
    Builder.op b "scf.for"
      ~operands:(lb :: ub :: step :: iter_args)
      ~results:(List.map Op.value_type iter_args)
      ~regions:[ region ]
  in
  Op.results op

(* Multi-dimensional parallel loop; [body] gets the induction variables.
   The number of dims is the length of [lbs]. *)
let parallel b ~lbs ~ubs ~steps body =
  let n = List.length lbs in
  if List.length ubs <> n || List.length steps <> n then
    invalid_arg "Scf.parallel: dimension mismatch";
  let region, blk =
    Op.region_with_block ~args:(List.init n (fun _ -> Types.Index)) ()
  in
  let inner = Builder.at_end blk in
  body inner (Op.block_args blk);
  yield inner [];
  Builder.op b "scf.parallel"
    ~operands:(lbs @ ubs @ steps)
    ~regions:[ region ]

let if_ b cond ?else_ then_ =
  let then_region, then_blk = Op.region_with_block () in
  then_ (Builder.at_end then_blk);
  let regions =
    match else_ with
    | None ->
      yield (Builder.at_end then_blk) [];
      [ then_region ]
    | Some e ->
      yield (Builder.at_end then_blk) [];
      let else_region, else_blk = Op.region_with_block () in
      e (Builder.at_end else_blk);
      yield (Builder.at_end else_blk) [];
      [ then_region; else_region ]
  in
  Builder.op b "scf.if" ~operands:[ cond ] ~regions

(* Accessors for scf.parallel: (lbs, ubs, steps). *)
let parallel_bounds op =
  let n = Op.num_operands op / 3 in
  let ops = Array.of_list (Op.operands op) in
  let slice i = Array.to_list (Array.sub ops (i * n) n) in
  (slice 0, slice 1, slice 2)

let body_block op =
  match (Op.region op).Op.g_blocks with
  | [ b ] -> b
  | _ -> invalid_arg "Scf.body_block"

(* builtin dialect: unrealized_conversion_cast is the glue MLIR uses to
   mix dialects with different type systems mid-lowering. The paper notes
   Flang does NOT register builtin, which is why the extraction pass cannot
   simply cast !fir.llvm_ptr to !llvm.ptr inside the FIR module — we model
   that by putting unrealized_conversion_cast in its own "builtin" dialect,
   registered with mlir-opt/xDSL contexts but not the Flang context (which
   only accepts builtin.module itself). *)

open Fsc_ir

let d = Dialect.define_dialect "builtin"

let () =
  Dialect.define_op d "unrealized_conversion_cast" ~num_operands:1
    ~num_results:1 ~pure:true

let unrealized_cast b ~to_ v =
  Builder.op1 b "builtin.unrealized_conversion_cast" ~operands:[ v ]
    ~results:[ to_ ]

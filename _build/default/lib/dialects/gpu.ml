(* gpu dialect: kernels, launches and explicit device memory management.
   The paper's §4.3 contrasts gpu.host_register (page-on-demand, slow) with
   a bespoke pass issuing gpu.alloc/gpu.memcpy (device-resident, fast). *)

open Fsc_ir

let d = Dialect.define_dialect "gpu"

let () =
  Dialect.define_op d "module" ~num_operands:0 ~num_results:0 ~num_regions:1
    ~verify:(fun op ->
      if Op.has_attr op "sym_name" then Ok ()
      else Error "gpu.module requires sym_name");
  Dialect.define_op d "func" ~num_operands:0 ~num_results:0 ~num_regions:1
    ~verify:(fun op ->
      if Op.has_attr op "sym_name" && Op.has_attr op "function_type" then
        Ok ()
      else Error "gpu.func requires sym_name and function_type");
  Dialect.define_op d "return" ~num_results:0 ~terminator:true;
  Dialect.define_op d "launch_func" ~num_results:0 ~verify:(fun op ->
      if Op.has_attr op "kernel" then Ok ()
      else Error "gpu.launch_func requires a kernel symbol");
  Dialect.define_op d "alloc" ~num_results:1;
  Dialect.define_op d "dealloc" ~num_operands:1 ~num_results:0;
  Dialect.define_op d "memcpy" ~num_operands:2 ~num_results:0;
  Dialect.define_op d "host_register" ~num_operands:1 ~num_results:0;
  Dialect.define_op d "host_unregister" ~num_operands:1 ~num_results:0;
  Dialect.define_op d "thread_id" ~num_operands:0 ~num_results:1 ~pure:true;
  Dialect.define_op d "block_id" ~num_operands:0 ~num_results:1 ~pure:true;
  Dialect.define_op d "block_dim" ~num_operands:0 ~num_results:1 ~pure:true;
  Dialect.define_op d "grid_dim" ~num_operands:0 ~num_results:1 ~pure:true;
  Dialect.define_op d "wait" ~num_results:0;
  Dialect.define_op d "barrier" ~num_operands:0 ~num_results:0;
  Dialect.define_op d "launch" ~num_operands:6 ~num_results:0 ~num_regions:1;
  Dialect.define_op d "terminator" ~num_operands:0 ~num_results:0
    ~terminator:true

type dim = X | Y | Z

let dim_to_string = function X -> "x" | Y -> "y" | Z -> "z"

let dim_of_string = function
  | "x" -> X
  | "y" -> Y
  | "z" -> Z
  | s -> invalid_arg ("Gpu.dim_of_string: " ^ s)

let index_op b name dim =
  Builder.op1 b name ~results:[ Types.Index ]
    ~attrs:[ ("dimension", Attr.Str_a (dim_to_string dim)) ]

let thread_id b dim = index_op b "gpu.thread_id" dim
let block_id b dim = index_op b "gpu.block_id" dim
let block_dim b dim = index_op b "gpu.block_dim" dim
let grid_dim b dim = index_op b "gpu.grid_dim" dim

let gpu_module ~name =
  let region, _ = Op.region_with_block () in
  Op.create "gpu.module" ~regions:[ region ]
    ~attrs:[ ("sym_name", Attr.Str_a name) ]

let gpu_module_block op = Op.module_block op

let gpu_func ~name ~args body =
  let region, entry = Op.region_with_block ~args () in
  let op =
    Op.create "gpu.func" ~regions:[ region ]
      ~attrs:
        [ ("sym_name", Attr.Str_a name);
          ("function_type", Attr.Type_a (Types.Func_t (args, [])));
          ("gpu.kernel", Attr.Unit_a) ]
  in
  let b = Builder.at_end entry in
  body b (Op.block_args entry);
  ignore (Builder.op b "gpu.return");
  op

(* Launch [kernel] (a "module::func" symbol) with explicit grid and block
   dimensions followed by the kernel arguments. The six leading operands
   are gridX,gridY,gridZ,blockX,blockY,blockZ. *)
let launch_func b ~kernel ~grid ~block args =
  let gx, gy, gz = grid and bx, by, bz = block in
  ignore
    (Builder.op b "gpu.launch_func"
       ~operands:([ gx; gy; gz; bx; by; bz ] @ args)
       ~attrs:[ ("kernel", Attr.Sym_a kernel) ])

let alloc b ?(dynamic_sizes = []) ty =
  Builder.op1 b "gpu.alloc" ~operands:dynamic_sizes ~results:[ ty ]

let dealloc b m = ignore (Builder.op b "gpu.dealloc" ~operands:[ m ])

(* memcpy dst, src (MLIR operand order). *)
let memcpy b ~dst ~src =
  ignore (Builder.op b "gpu.memcpy" ~operands:[ dst; src ])

let host_register b m =
  ignore (Builder.op b "gpu.host_register" ~operands:[ m ])

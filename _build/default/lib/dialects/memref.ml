(* memref dialect: memory allocation and indexed access — the data
   representation used by the stencil dialect side of the pipeline. *)

open Fsc_ir

let d = Dialect.define_dialect "memref"

let memref_verify_access op =
  match Op.value_type (Op.operand op) with
  | Types.Memref (dims, _) ->
    let rank = List.length dims in
    (* load: memref + rank indices; store: value + memref + rank indices *)
    let expected =
      if op.Op.o_name = "memref.store" then rank + 2 else rank + 1
    in
    if Op.num_operands op = expected then Ok ()
    else Error "index count does not match memref rank"
  | _ -> Error "expected a memref operand"

let () =
  Dialect.define_op d "alloc" ~num_results:1;
  Dialect.define_op d "alloca" ~num_results:1;
  Dialect.define_op d "dealloc" ~num_operands:1 ~num_results:0;
  Dialect.define_op d "load" ~num_results:1 ~verify:memref_verify_access;
  Dialect.define_op d "store" ~num_results:0 ~verify:(fun op ->
      match Op.value_type (Op.operand ~index:1 op) with
      | Types.Memref (dims, _) ->
        if Op.num_operands op = List.length dims + 2 then Ok ()
        else Error "index count does not match memref rank"
      | _ -> Error "memref.store operand 1 must be a memref");
  Dialect.define_op d "dim" ~num_operands:2 ~num_results:1 ~pure:true;
  Dialect.define_op d "cast" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "copy" ~num_operands:2 ~num_results:0;
  Dialect.define_op d "subview" ~num_results:1 ~pure:true

let alloc b ?(dynamic_sizes = []) ty =
  Builder.op1 b "memref.alloc" ~operands:dynamic_sizes ~results:[ ty ]

let dealloc b m = ignore (Builder.op b "memref.dealloc" ~operands:[ m ])

let load b m indices =
  let elem = Types.element_type (Op.value_type m) in
  Builder.op1 b "memref.load" ~operands:(m :: indices) ~results:[ elem ]

let store b value m indices =
  ignore (Builder.op b "memref.store" ~operands:(value :: m :: indices))

let dim b m i =
  Builder.op1 b "memref.dim" ~operands:[ m; i ] ~results:[ Types.Index ]

let cast b ~to_ m =
  Builder.op1 b "memref.cast" ~operands:[ m ] ~results:[ to_ ]

let copy b src dst = ignore (Builder.op b "memref.copy" ~operands:[ src; dst ])

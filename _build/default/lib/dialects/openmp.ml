(* openmp dialect: target of convert-scf-to-openmp. omp.parallel forks a
   team; omp.wsloop work-shares a loop nest across the team. *)

open Fsc_ir

let d = Dialect.define_dialect "openmp"

(* MLIR spells these omp.*; we follow that op prefix but keep the dialect
   key "openmp" to match the paper's prose. *)
let () =
  ignore d;
  let omp = Dialect.define_dialect "omp" in
  Dialect.define_op omp "parallel" ~num_operands:0 ~num_results:0
    ~num_regions:1;
  Dialect.define_op omp "wsloop" ~num_regions:1 ~verify:(fun op ->
      if Op.num_operands op mod 3 = 0 && Op.num_operands op > 0 then Ok ()
      else Error "omp.wsloop operands must be (lb*, ub*, step*)");
  Dialect.define_op omp "terminator" ~num_operands:0 ~num_results:0
    ~terminator:true;
  Dialect.define_op omp "yield" ~num_results:0 ~terminator:true;
  Dialect.define_op omp "barrier" ~num_operands:0 ~num_results:0

let terminator b = ignore (Builder.op b "omp.terminator")

let parallel b ?num_threads body =
  let region, blk = Op.region_with_block () in
  body (Builder.at_end blk);
  terminator (Builder.at_end blk);
  let attrs =
    match num_threads with
    | None -> []
    | Some n -> [ ("num_threads", Attr.Int_a n) ]
  in
  Builder.op b "omp.parallel" ~regions:[ region ] ~attrs

(* Work-shared loop nest over [lbs;ubs;steps], body gets induction vars. *)
let wsloop b ~lbs ~ubs ~steps body =
  let n = List.length lbs in
  let region, blk =
    Op.region_with_block ~args:(List.init n (fun _ -> Types.Index)) ()
  in
  let inner = Builder.at_end blk in
  body inner (Op.block_args blk);
  ignore (Builder.op inner "omp.yield");
  Builder.op b "omp.wsloop" ~operands:(lbs @ ubs @ steps) ~regions:[ region ]

let wsloop_bounds op =
  let n = Op.num_operands op / 3 in
  let ops = Array.of_list (Op.operands op) in
  let slice i = Array.to_list (Array.sub ops (i * n) n) in
  (slice 0, slice 1, slice 2)

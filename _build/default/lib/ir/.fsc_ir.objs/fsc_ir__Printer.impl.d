lib/ir/printer.ml: Attr Buffer Hashtbl List Op Printf String Types

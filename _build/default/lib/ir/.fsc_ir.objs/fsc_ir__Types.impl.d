lib/ir/types.ml: Format List Printf String

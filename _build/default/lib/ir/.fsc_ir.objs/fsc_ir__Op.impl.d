lib/ir/op.ml: Array Attr Hashtbl List Printf Types

lib/ir/verifier.ml: Array Dialect Hashtbl List Op Printf String

lib/ir/op.mli: Attr Hashtbl Types

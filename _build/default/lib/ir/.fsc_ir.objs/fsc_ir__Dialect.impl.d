lib/ir/dialect.ml: Hashtbl List Op String

lib/ir/parser.ml: Attr Buffer Hashtbl List Op Printf String Types

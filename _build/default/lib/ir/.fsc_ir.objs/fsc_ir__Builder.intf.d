lib/ir/builder.mli: Attr Op Types

lib/ir/parser.mli: Attr Hashtbl Op Types

lib/ir/rewrite.ml: Hashtbl List Op Option

lib/ir/builder.ml: Op

lib/ir/dialect.mli: Hashtbl Op

lib/ir/pass.mli: Dialect Logs Op

lib/ir/rewrite.mli: Attr Op Types

lib/ir/verifier.mli: Dialect Op

lib/ir/pass.ml: List Logs Op Printf String Unix Verifier

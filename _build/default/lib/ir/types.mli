(** MLIR-style type system.

    Unlike real MLIR, types form a closed sum: this substrate only needs
    the builtin types plus the FIR, LLVM and stencil families the paper's
    pipeline manipulates. Stencil bounds are inclusive on both ends, as
    printed in the paper's Listing 2 ([!stencil.temp<[-1,255]x...>]). *)

type dim =
  | Static of int
  | Dynamic

(** Per-dimension inclusive index bounds of a stencil field or temp. *)
type bounds = (int * int) list

type t =
  | I1
  | I8
  | I16
  | I32
  | I64
  | F32
  | F64
  | Index
  | None_t
  | Memref of dim list * t
  | Vector of int list * t
  | Func_t of t list * t list
  | Llvm_ptr  (** opaque pointer *)
  | Llvm_typed_ptr of t  (** "transparent" pointer with pointee *)
  | Llvm_struct of t list
  | Llvm_array of int * t
  | Fir_ref of t
  | Fir_heap of t
  | Fir_box of t
  | Fir_array of dim list * t
  | Fir_char of int
  | Fir_llvm_ptr of t
      (** deliberately distinct from {!Llvm_ptr}: the paper exploits that
          they are semantically identical but nominally different *)
  | Stencil_field of bounds * t
  | Stencil_temp of bounds * t
  | Stencil_result of t

val is_integer : t -> bool
val is_float : t -> bool
val is_scalar : t -> bool

(** @raise Invalid_argument on non-scalar types. *)
val bitwidth : t -> int

(** Element type of shaped types (transparent through nesting);
    identity on scalars. *)
val element_type : t -> t

(** Rank of a shaped type; scalars have rank 0. *)
val rank : t -> int

val dim_to_string : dim -> string

(** The MLIR textual syntax; round-trips through {!Parser.parse_type}. *)
val to_string : t -> string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Bounds arithmetic (used by shape inference)} *)

(** Cells per dimension of an inclusive bounds list. *)
val bounds_extents : bounds -> int list

val bounds_volume : bounds -> int

(** Smallest box covering both.
    @raise Invalid_argument on rank mismatch. *)
val bounds_union : bounds -> bounds -> bounds

val bounds_intersect : bounds -> bounds -> bounds

(** Bounds needed on an input accessed at [offsets] when computing an
    output over [b]: the union of [b] shifted by each offset. *)
val bounds_expand_by_offsets : bounds -> int list list -> bounds

(** Textual IR output in MLIR's {e generic} operation syntax:

    {v
%0, %1 = "dialect.op"(%a, %b) ({ ...regions... })
         {"attr" = value} : (t_a, t_b) -> (t_0, t_1)
    v}

    The generic form is used exclusively so {!Parser} can read everything
    back without per-dialect grammar — exactly how the paper's pipeline
    passes modules between Flang, xDSL and mlir-opt as text. Output is
    deterministic (attributes sorted, values numbered in print order). *)

val op_to_string : Op.op -> string

(** Alias of {!op_to_string} for module ops. *)
val module_to_string : Op.op -> string

val print_module : out_channel -> Op.op -> unit

(** Pass manager: named module passes with optional verification between
    passes and per-pass timing — the mini equivalent of mlir-opt's
    [--pass-pipeline] driver from the paper's Listing 4. *)

val log_src : Logs.src

type t = {
  name : string;  (** printed in pipelines, timings and errors *)
  run : Op.op -> unit;  (** transforms the module in place *)
}

val create : string -> (Op.op -> unit) -> t

type stats = {
  s_pass : string;
  s_seconds : float;
}

(** Raised when a pass throws; carries the pass name and the original
    exception. *)
exception Pipeline_error of string * exn

(** Run the passes in order over module [m]. With [verify_each] (default
    true) the IR is verified after every pass — against [ctx]'s dialect
    registry when given, otherwise structurally only. Returns per-pass
    timings. *)
val run_pipeline :
  ?verify_each:bool -> ?ctx:Dialect.context -> t list -> Op.op -> stats list

val total_seconds : stats list -> float

(** Human-readable timing table. *)
val report_stats : stats list -> string

(* Pass manager: named module passes, optional verification between
   passes, and per-pass timing/statistics — the mini equivalent of
   mlir-opt's --pass-pipeline driver from Listing 4 of the paper. *)

let log_src = Logs.Src.create "fsc.pass" ~doc:"pass manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  name : string;
  run : Op.op -> unit;
}

let create name run = { name; run }

type stats = {
  s_pass : string;
  s_seconds : float;
}

exception Pipeline_error of string * exn

(* Run [passes] over module [m]. When [verify_each] is set, the IR is
   verified after every pass (against [ctx] when provided, otherwise only
   structurally), mirroring mlir-opt's -verify-each. *)
let run_pipeline ?(verify_each = true) ?ctx passes m =
  let stats = ref [] in
  List.iter
    (fun p ->
      let t0 = Unix.gettimeofday () in
      (try p.run m with
      | e -> raise (Pipeline_error (p.name, e)));
      let dt = Unix.gettimeofday () -. t0 in
      stats := { s_pass = p.name; s_seconds = dt } :: !stats;
      Log.debug (fun f -> f "pass %s: %.3f ms" p.name (1000. *. dt));
      if verify_each then begin
        match ctx with
        | Some c -> Verifier.verify_in_context_exn c m
        | None -> Verifier.verify_exn m
      end)
    passes;
  List.rev !stats

let total_seconds stats =
  List.fold_left (fun acc s -> acc +. s.s_seconds) 0. stats

let report_stats stats =
  String.concat "\n"
    (List.map
       (fun s -> Printf.sprintf "  %-45s %8.3f ms" s.s_pass
                   (1000. *. s.s_seconds))
       stats)

(** Dialect registry.

    Real MLIR tools only accept operations whose dialect they register:
    the paper's module-splitting design exists because Flang does not
    register builtin/scf/memref and mlir-opt does not register FIR. A
    {!context} is the set of dialects one "tool" knows about; the
    verifier rejects modules containing operations outside it.

    Dialects also carry per-operation structural expectations, custom
    verifiers, and the purity/terminator traits the generic passes
    (CSE, DCE, greedy rewriting) rely on. *)

type op_verifier = Op.op -> (unit, string) result

type op_info = {
  oi_name : string;
  oi_num_operands : int;  (** -1 = variadic/unchecked *)
  oi_num_results : int;
  oi_num_regions : int;
  oi_verify : op_verifier option;
  oi_pure : bool;  (** pure ops may be CSE'd and DCE'd *)
  oi_terminator : bool;  (** must be the last op of its block *)
}

type dialect = {
  d_name : string;
  mutable d_ops : (string, op_info) Hashtbl.t;
}

(** Get-or-create a dialect in the global table. *)
val define_dialect : string -> dialect

(** Register an operation with its dialect. [num_*] default to
    unchecked; [pure] and [terminator] default to [false]. *)
val define_op :
  ?num_operands:int ->
  ?num_results:int ->
  ?num_regions:int ->
  ?verify:op_verifier ->
  ?pure:bool ->
  ?terminator:bool ->
  dialect ->
  string ->
  unit

(** ["arith.addf"] -> ["arith"]. *)
val dialect_of_op_name : string -> string

val lookup_op : string -> op_info option
val op_is_pure : Op.op -> bool
val op_is_terminator : Op.op -> bool

(** A tool's registry: the set of dialect names it accepts. *)
type context = { ctx_name : string; mutable ctx_dialects : string list }

val create_context : name:string -> string list -> context
val register_dialect : context -> string -> unit
val dialect_registered : context -> string -> bool
val op_registered : context -> Op.op -> bool

(** The three tool registries of the paper's pipeline: Flang (FIR +
    arith/math/func/cf/omp/llvm, but no builtin/scf/memref/gpu/stencil),
    mlir-opt (everything standard, no FIR), and xDSL (everything,
    including stencil/dmp/mpi). *)

val flang_context : unit -> context
val mlir_opt_context : unit -> context
val xdsl_context : unit -> context

(** Like {!op_registered} but [builtin.module] itself is accepted by
    every tool. *)
val op_accepted : context -> Op.op -> bool

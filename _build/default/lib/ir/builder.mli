(** Insertion-point based IR builder, the work-horse of every lowering. *)

type insertion =
  | At_end of Op.block
  | At_start of Op.block
  | Before of Op.op
  | After of Op.op
      (** after inserting, the point advances so consecutive inserts stay
          in source order *)

type t = { mutable point : insertion }

val create : insertion -> t
val at_end : Op.block -> t
val at_start : Op.block -> t
val before : Op.op -> t
val after : Op.op -> t
val set_point : t -> insertion -> unit

(** Insert an already-created op at the current point. *)
val insert : t -> Op.op -> Op.op

(** Create an op and insert it. *)
val op :
  t ->
  ?operands:Op.value list ->
  ?results:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  string ->
  Op.op

(** Like {!op} for single-result operations; returns the result value. *)
val op1 :
  t ->
  ?operands:Op.value list ->
  ?results:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  string ->
  Op.value

(** The block the insertion point lives in. *)
val block : t -> Op.block

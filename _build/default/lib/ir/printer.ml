(* Textual IR output in MLIR's *generic* operation syntax:

     %0, %1 = "dialect.op"(%a, %b) ({ ...regions... })
              {"attr" = value} : (t_a, t_b) -> (t_0, t_1)

   The generic form is deliberately chosen over per-op pretty forms so that
   [Parser] can read everything back without per-dialect grammar, exactly
   how the paper's pipeline passes modules between Flang, xDSL and
   mlir-opt as text. *)

type env = {
  names : (int, string) Hashtbl.t; (* value id -> printed name *)
  mutable next_value : int;
  mutable next_block : int;
  buf : Buffer.t;
}

let create_env () =
  { names = Hashtbl.create 64; next_value = 0; next_block = 0;
    buf = Buffer.create 1024 }

let value_name env (v : Op.value) =
  match Hashtbl.find_opt env.names v.Op.v_id with
  | Some n -> n
  | None ->
    let n = Printf.sprintf "%%%d" env.next_value in
    env.next_value <- env.next_value + 1;
    Hashtbl.replace env.names v.Op.v_id n;
    n

let indent env n =
  Buffer.add_string env.buf (String.make (2 * n) ' ')

let rec print_op env depth (op : Op.op) =
  indent env depth;
  let results = Op.results op in
  if results <> [] then begin
    Buffer.add_string env.buf
      (String.concat ", " (List.map (value_name env) results));
    Buffer.add_string env.buf " = "
  end;
  Buffer.add_string env.buf (Printf.sprintf "%S" op.Op.o_name);
  Buffer.add_char env.buf '(';
  Buffer.add_string env.buf
    (String.concat ", " (List.map (value_name env) (Op.operands op)));
  Buffer.add_char env.buf ')';
  (* Regions *)
  let regions = Op.regions op in
  if regions <> [] then begin
    Buffer.add_string env.buf " (";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_string env.buf ", ";
        print_region env depth r)
      regions;
    Buffer.add_char env.buf ')'
  end;
  (* Attributes, sorted for deterministic output. *)
  let attrs =
    List.sort (fun (a, _) (b, _) -> compare a b) op.Op.o_attrs
  in
  if attrs <> [] then begin
    Buffer.add_string env.buf " {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string env.buf ", ";
        Buffer.add_string env.buf
          (Printf.sprintf "%S = %s" k (Attr.to_string v)))
      attrs;
    Buffer.add_char env.buf '}'
  end;
  (* Type signature *)
  Buffer.add_string env.buf " : (";
  Buffer.add_string env.buf
    (String.concat ", "
       (List.map (fun v -> Types.to_string (Op.value_type v)) (Op.operands op)));
  Buffer.add_string env.buf ") -> (";
  Buffer.add_string env.buf
    (String.concat ", "
       (List.map (fun v -> Types.to_string (Op.value_type v)) results));
  Buffer.add_string env.buf ")";
  Buffer.add_char env.buf '\n'

and print_region env depth (r : Op.region) =
  Buffer.add_string env.buf "{\n";
  List.iter (print_block env (depth + 1)) r.Op.g_blocks;
  indent env depth;
  Buffer.add_char env.buf '}'

and print_block env depth (b : Op.block) =
  let label = Printf.sprintf "^bb%d" env.next_block in
  env.next_block <- env.next_block + 1;
  Hashtbl.replace env.names (-b.Op.b_id) label;
  indent env (depth - 1);
  Buffer.add_string env.buf label;
  let args = Op.block_args b in
  if args <> [] then begin
    Buffer.add_char env.buf '(';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string env.buf ", ";
        Buffer.add_string env.buf (value_name env a);
        Buffer.add_string env.buf ": ";
        Buffer.add_string env.buf (Types.to_string (Op.value_type a)))
      args;
    Buffer.add_char env.buf ')'
  end;
  Buffer.add_string env.buf ":\n";
  List.iter (print_op env depth) (Op.block_ops b)

let op_to_string (op : Op.op) =
  let env = create_env () in
  print_op env 0 op;
  Buffer.contents env.buf

let module_to_string = op_to_string

let print_module oc m = output_string oc (module_to_string m)

(* Insertion-point based IR builder, the work-horse of every lowering. *)

type insertion =
  | At_end of Op.block
  | At_start of Op.block
  | Before of Op.op
  | After of Op.op

type t = { mutable point : insertion }

let create point = { point }

let at_end block = create (At_end block)
let at_start block = create (At_start block)
let before op = create (Before op)
let after op = create (After op)

let set_point b point = b.point <- point

let insert b op =
  (match b.point with
  | At_end block -> Op.append_to block op
  | At_start block -> Op.prepend_to block op
  | Before anchor -> Op.insert_before ~anchor op
  | After anchor ->
    Op.insert_after ~anchor op;
    (* Keep appending after the op we just inserted so a sequence of
       [insert] calls stays in source order. *)
    b.point <- After op);
  op

(* Build an op and insert it at the current point. *)
let op b ?operands ?results ?attrs ?regions name =
  insert b (Op.create ?operands ?results ?attrs ?regions name)

(* Convenience for single-result ops: returns the result value. *)
let op1 b ?operands ?(results = []) ?attrs ?regions name =
  let o = op b ?operands ~results ?attrs ?regions name in
  Op.result o

let block b =
  match b.point with
  | At_end blk | At_start blk -> blk
  | Before anchor | After anchor -> (
    match Op.parent_block anchor with
    | Some blk -> blk
    | None -> invalid_arg "Builder.block: anchor not in a block")

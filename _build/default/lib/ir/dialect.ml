(* Dialect registry.

   Real MLIR tools only accept operations whose dialect is registered with
   the tool: the paper's whole module-splitting dance (Section 3) exists
   because Flang does not register builtin/scf/memref, and mlir-opt does not
   register FIR. We reproduce that constraint: a [registry] is the set of
   dialects a "tool" (a driver context) knows about, and the verifier
   rejects modules containing operations from unregistered dialects.

   Each dialect may register per-op verifiers, traits and a canonical list
   of operation names (used for stricter checking in tests). *)

type op_verifier = Op.op -> (unit, string) result

type op_info = {
  oi_name : string;
  (* Structural expectations; -1 means variadic/unchecked. *)
  oi_num_operands : int;
  oi_num_results : int;
  oi_num_regions : int;
  oi_verify : op_verifier option;
  (* Pure ops can be CSE'd/DCE'd freely. *)
  oi_pure : bool;
  (* Terminators must be the last op of their block. *)
  oi_terminator : bool;
}

type dialect = {
  d_name : string;
  mutable d_ops : (string, op_info) Hashtbl.t;
}

(* Global table of all dialects ever defined (definition is separate from
   registration-with-a-context). *)
let all_dialects : (string, dialect) Hashtbl.t = Hashtbl.create 16

let define_dialect name =
  match Hashtbl.find_opt all_dialects name with
  | Some d -> d
  | None ->
    let d = { d_name = name; d_ops = Hashtbl.create 32 } in
    Hashtbl.replace all_dialects name d;
    d

let define_op ?(num_operands = -1) ?(num_results = -1) ?(num_regions = 0)
    ?verify ?(pure = false) ?(terminator = false) dialect name =
  let full = dialect.d_name ^ "." ^ name in
  Hashtbl.replace dialect.d_ops full
    { oi_name = full; oi_num_operands = num_operands;
      oi_num_results = num_results; oi_num_regions = num_regions;
      oi_verify = verify; oi_pure = pure; oi_terminator = terminator }

let dialect_of_op_name name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let lookup_op name =
  let d = dialect_of_op_name name in
  match Hashtbl.find_opt all_dialects d with
  | None -> None
  | Some dialect -> Hashtbl.find_opt dialect.d_ops name

let op_is_pure op =
  match lookup_op op.Op.o_name with Some i -> i.oi_pure | None -> false

let op_is_terminator op =
  match lookup_op op.Op.o_name with
  | Some i -> i.oi_terminator
  | None -> false

(* A context = the set of dialects one "tool" registers. *)
type context = { ctx_name : string; mutable ctx_dialects : string list }

let create_context ~name dialects =
  { ctx_name = name; ctx_dialects = dialects }

let register_dialect ctx name =
  if not (List.mem name ctx.ctx_dialects) then
    ctx.ctx_dialects <- name :: ctx.ctx_dialects

let dialect_registered ctx name = List.mem name ctx.ctx_dialects

let op_registered ctx op =
  dialect_registered ctx (dialect_of_op_name op.Op.o_name)

(* The two tool contexts of the paper's pipeline. Flang registers FIR plus
   the arith/math/func/cf/openmp/llvm dialects it uses, but crucially not
   builtin's unrealized_conversion_cast, scf, memref, gpu or stencil.
   mlir-opt registers everything standard but not FIR. xDSL registers
   everything including the experimental dialects. *)
let flang_context () =
  create_context ~name:"flang"
    [ "fir"; "arith"; "math"; "func"; "cf"; "omp"; "llvm" ]

let mlir_opt_context () =
  create_context ~name:"mlir-opt"
    [ "builtin"; "arith"; "math"; "func"; "cf"; "scf"; "memref"; "omp";
      "gpu"; "llvm"; "vector" ]

let xdsl_context () =
  create_context ~name:"xdsl"
    [ "builtin"; "arith"; "math"; "func"; "cf"; "scf"; "memref"; "omp";
      "gpu"; "llvm"; "vector"; "fir"; "stencil"; "dmp"; "mpi" ]

(* builtin.module is accepted by every tool; model that with a pseudo
   dialect name checked specially. *)
let op_accepted ctx op =
  Op.is_module op || op_registered ctx op

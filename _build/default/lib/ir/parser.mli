(** Parser for the generic operation syntax emitted by {!Printer}.

    Scannerless recursive descent over the raw string: MLIR's shaped-type
    syntax (e.g. [memref<10x20xf64>]) does not tokenise cleanly, so
    everything is parsed character-wise. *)

exception Parse_error of string * int  (** message, byte offset *)

(** Parser state; exposed so {!parse_type} / {!parse_attr} can be used
    directly on type/attribute fragments (as the tests do). *)
type state = {
  src : string;
  mutable pos : int;
  values : (string, Op.value) Hashtbl.t;  (** [%name] -> value *)
  blocks : (string, Op.block) Hashtbl.t;  (** [^label] -> block *)
}

(** Parse one type at the current position. *)
val parse_type : state -> Types.t

(** Parse one attribute at the current position. *)
val parse_attr : state -> Attr.t

(** Parse one operation (with nested regions) at the current position. *)
val parse_op : state -> Op.op

(** Parse a whole module; input must be fully consumed.
    @raise Parse_error on malformed input. *)
val parse_module : string -> Op.op

val parse_module_exn : string -> Op.op

val parse_module_result : string -> (Op.op, string) result

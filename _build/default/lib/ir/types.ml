(* MLIR-style type system for the mini compiler infrastructure.

   Unlike real MLIR, types are a closed sum: this substrate only needs the
   builtin types plus the FIR, LLVM and stencil type families that the
   paper's pipeline manipulates. Bounds on stencil types are inclusive on
   the lower end and exclusive on the upper end is NOT the convention used
   here: we follow the Open Earth printing convention [lb,ub] where both
   ends denote the first and last accessible index (see Listing 2 of the
   paper, e.g. !stencil.temp<[-1,255]x[-1,255]xf64>). *)

type dim =
  | Static of int
  | Dynamic

(* Per-dimension inclusive index bounds of a stencil field or temp. *)
type bounds = (int * int) list

type t =
  | I1
  | I8
  | I16
  | I32
  | I64
  | F32
  | F64
  | Index
  | None_t
  | Memref of dim list * t
  | Vector of int list * t
  | Func_t of t list * t list
  (* llvm dialect types *)
  | Llvm_ptr                 (* opaque pointer *)
  | Llvm_typed_ptr of t      (* "transparent" pointer, carries pointee *)
  | Llvm_struct of t list
  | Llvm_array of int * t
  (* FIR dialect types; note Fir_llvm_ptr is deliberately distinct from
     Llvm_ptr — the paper exploits that they are semantically identical but
     nominally different (Section 3). *)
  | Fir_ref of t
  | Fir_heap of t
  | Fir_box of t
  | Fir_array of dim list * t
  | Fir_char of int
  | Fir_llvm_ptr of t
  (* stencil dialect types *)
  | Stencil_field of bounds * t
  | Stencil_temp of bounds * t
  | Stencil_result of t

let is_integer = function
  | I1 | I8 | I16 | I32 | I64 | Index -> true
  | _ -> false

let is_float = function F32 | F64 -> true | _ -> false

let is_scalar t = is_integer t || is_float t

let bitwidth = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 | Index -> 64
  | F32 -> 32
  | F64 -> 64
  | _ -> invalid_arg "Types.bitwidth: not a scalar type"

let rec element_type = function
  | Memref (_, t) | Vector (_, t) -> t
  | Fir_array (_, t) -> element_type t
  | Stencil_field (_, t) | Stencil_temp (_, t) -> t
  | t -> t

(* Rank of a shaped type; scalars have rank 0. *)
let rank = function
  | Memref (dims, _) | Fir_array (dims, _) -> List.length dims
  | Vector (dims, _) -> List.length dims
  | Stencil_field (b, _) | Stencil_temp (b, _) -> List.length b
  | _ -> 0

let dim_to_string = function
  | Static n -> string_of_int n
  | Dynamic -> "?"

let rec to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"
  | Index -> "index"
  | None_t -> "none"
  | Memref (dims, t) ->
    let ds = List.map dim_to_string dims in
    Printf.sprintf "memref<%s>" (String.concat "x" (ds @ [ to_string t ]))
  | Vector (dims, t) ->
    let ds = List.map string_of_int dims in
    Printf.sprintf "vector<%s>" (String.concat "x" (ds @ [ to_string t ]))
  | Func_t (args, rets) ->
    Printf.sprintf "(%s) -> (%s)"
      (String.concat ", " (List.map to_string args))
      (String.concat ", " (List.map to_string rets))
  | Llvm_ptr -> "!llvm.ptr"
  | Llvm_typed_ptr t -> Printf.sprintf "!llvm.ptr<%s>" (to_string t)
  | Llvm_struct ts ->
    Printf.sprintf "!llvm.struct<(%s)>"
      (String.concat ", " (List.map to_string ts))
  | Llvm_array (n, t) -> Printf.sprintf "!llvm.array<%d x %s>" n (to_string t)
  | Fir_ref t -> Printf.sprintf "!fir.ref<%s>" (to_string t)
  | Fir_heap t -> Printf.sprintf "!fir.heap<%s>" (to_string t)
  | Fir_box t -> Printf.sprintf "!fir.box<%s>" (to_string t)
  | Fir_array (dims, t) ->
    let ds = List.map dim_to_string dims in
    Printf.sprintf "!fir.array<%s>" (String.concat "x" (ds @ [ to_string t ]))
  | Fir_char n -> Printf.sprintf "!fir.char<%d>" n
  | Fir_llvm_ptr t -> Printf.sprintf "!fir.llvm_ptr<%s>" (to_string t)
  | Stencil_field (b, t) ->
    Printf.sprintf "!stencil.field<%s>" (bounds_elem_string b t)
  | Stencil_temp (b, t) ->
    Printf.sprintf "!stencil.temp<%s>" (bounds_elem_string b t)
  | Stencil_result t -> Printf.sprintf "!stencil.result<%s>" (to_string t)

and bounds_elem_string b t =
  let bs = List.map (fun (lo, hi) -> Printf.sprintf "[%d,%d]" lo hi) b in
  String.concat "x" (bs @ [ to_string t ])

let equal (a : t) (b : t) = a = b

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* Number of accessible cells per dimension of an inclusive bounds list. *)
let bounds_extents (b : bounds) = List.map (fun (lo, hi) -> hi - lo + 1) b

let bounds_volume b =
  List.fold_left (fun acc e -> acc * e) 1 (bounds_extents b)

(* Grow [b] so it covers [b'] as well. *)
let bounds_union (b : bounds) (b' : bounds) : bounds =
  if List.length b <> List.length b' then
    invalid_arg "Types.bounds_union: rank mismatch";
  List.map2 (fun (l1, h1) (l2, h2) -> (min l1 l2, max h1 h2)) b b'

(* Shrink the accessible region: intersection of two bounds. *)
let bounds_intersect (b : bounds) (b' : bounds) : bounds =
  if List.length b <> List.length b' then
    invalid_arg "Types.bounds_intersect: rank mismatch";
  List.map2 (fun (l1, h1) (l2, h2) -> (max l1 l2, min h1 h2)) b b'

(* Bounds needed on an input accessed with [offsets] when computing an
   output over [b]: shift b by each offset and union. *)
let bounds_expand_by_offsets (b : bounds) (offsets : int list list) : bounds =
  let shift ofs =
    List.map2 (fun (lo, hi) o -> (lo + o, hi + o)) b ofs
  in
  match offsets with
  | [] -> b
  | first :: rest ->
    List.fold_left (fun acc o -> bounds_union acc (shift o)) (shift first) rest

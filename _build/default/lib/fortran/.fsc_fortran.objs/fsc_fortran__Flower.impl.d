lib/fortran/flower.ml: Attr Builder Fast Float Fparser Fsc_dialects Fsc_fir Fsc_ir Fsema Hashtbl List Op Option Printf String Types

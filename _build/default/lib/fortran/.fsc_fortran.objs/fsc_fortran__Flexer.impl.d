lib/fortran/flexer.ml: Buffer List Printf String

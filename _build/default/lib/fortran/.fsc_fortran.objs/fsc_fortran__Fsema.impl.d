lib/fortran/fsema.ml: Fast Float Hashtbl List Option Printf String

lib/fortran/flower.mli: Fast Fsc_ir Fsema

lib/fortran/fast.ml: List Printf String

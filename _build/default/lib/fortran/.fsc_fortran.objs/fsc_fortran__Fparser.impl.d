lib/fortran/fparser.ml: Fast Flexer List Printf

(** Lowering of the Fortran AST to the FIR dialect — the mini-Flang
    "fc1 -emit-mlir" stage of the paper's Figure 1 pipeline.

    Representation choices mirror Flang closely enough for the discovery
    pass to face the same obstacles the paper describes: scalars live in
    [fir.alloca] cells; explicit-shape arrays use the stack route
    ([fir.coordinate_of] directly on the alloca); allocatable arrays use
    the heap route (a pointer cell that must be [fir.load]ed first);
    index expressions are i32 arithmetic [fir.convert]ed to index with
    the declared lower bound subtracted; DO induction variables bind to
    the [fir.do_loop] block argument; parenthesised real subexpressions
    become [fir.no_reassoc]. Arrays are column-major, matching Fortran. *)

open Fast

(** Raised (with a location) on constructs outside the supported
    subset. *)
exception Unsupported of string * loc

(** FIR scalar type of a Fortran type: integer -> i32, real(4) -> f32,
    real(8)/double precision -> f64, logical -> i1. *)
val fir_scalar_type : ftype -> Fsc_ir.Types.t

(** [_QQmain] for programs, [_QP<name>] for subroutines/functions —
    Flang's mangling. *)
val mangle : program_unit -> string

(** Lower one analysed unit to a [func.func]. *)
val lower_unit : Fsema.unit_env -> Fsc_ir.Op.op

(** Lower a whole analysed compilation unit into a fresh module. *)
val lower_compilation_unit : Fsema.unit_env list -> Fsc_ir.Op.op

(** One-stop front door: Fortran source text -> FIR module.
    @raise Fparser.Parse_error on syntax errors
    @raise Fsema.Sema_error on semantic errors
    @raise Unsupported on constructs outside the subset *)
val compile_source : string -> Fsc_ir.Op.op

(* Recursive-descent parser for the Fortran subset. Statement-oriented:
   each statement occupies one logical line (the lexer already folded
   continuations). *)

open Fast

exception Parse_error of string * int (* message, line *)

type state = {
  mutable toks : Flexer.located list;
}

let error st msg =
  let line =
    match st.toks with { Flexer.tline; _ } :: _ -> tline | [] -> 0
  in
  raise (Parse_error (msg, line))

let peek st =
  match st.toks with { Flexer.tok; _ } :: _ -> tok | [] -> Flexer.EOF

let peek_loc st =
  match st.toks with
  | { Flexer.tline; tcol; _ } :: _ -> { line = tline; col = tcol }
  | [] -> no_loc

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s, found %s"
         (Flexer.token_to_string tok)
         (Flexer.token_to_string (peek st)))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match peek st with
  | Flexer.IDENT s ->
    advance st;
    s
  | t -> error st ("expected identifier, found " ^ Flexer.token_to_string t)

let accept_keyword st kw =
  match peek st with
  | Flexer.IDENT s when s = kw ->
    advance st;
    true
  | _ -> false

let expect_keyword st kw =
  if not (accept_keyword st kw) then
    error st
      (Printf.sprintf "expected keyword %S, found %s" kw
         (Flexer.token_to_string (peek st)))

let skip_newlines st =
  while peek st = Flexer.NEWLINE do
    advance st
  done

let expect_eos st =
  (* end of statement *)
  match peek st with
  | Flexer.NEWLINE ->
    advance st
  | Flexer.EOF -> ()
  | t -> error st ("expected end of statement, found "
                   ^ Flexer.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

(* Precedence (low to high): .or. < .and. < .not. < comparison <
   addition < multiplication < unary minus < ** < primary *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept st Flexer.OR do
    !lhs |> fun l -> lhs := binop Or l (parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while accept st Flexer.AND do
    !lhs |> fun l -> lhs := binop And l (parse_not st)
  done;
  !lhs

and parse_not st =
  if accept st Flexer.NOT then expr (Unop (Not, parse_not st))
  else parse_comparison st

and parse_comparison st =
  let lhs = parse_additive st in
  let mk op =
    advance st;
    binop op lhs (parse_additive st)
  in
  match peek st with
  | Flexer.EQ -> mk Eq
  | Flexer.NE -> mk Ne
  | Flexer.LT_ -> mk Lt
  | Flexer.LE_ -> mk Le
  | Flexer.GT_ -> mk Gt
  | Flexer.GE_ -> mk Ge
  | _ -> lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Flexer.PLUS ->
      advance st;
      lhs := binop Add !lhs (parse_multiplicative st)
    | Flexer.MINUS ->
      advance st;
      lhs := binop Sub !lhs (parse_multiplicative st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Flexer.STAR ->
      advance st;
      lhs := binop Mul !lhs (parse_unary st)
    | Flexer.SLASH ->
      advance st;
      lhs := binop Div !lhs (parse_unary st)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Flexer.MINUS ->
    advance st;
    expr (Unop (Neg, parse_unary st))
  | Flexer.PLUS ->
    advance st;
    parse_unary st
  | _ -> parse_power st

and parse_power st =
  let base = parse_primary st in
  (* ** is right-associative *)
  if accept st Flexer.POW then binop Pow base (parse_unary st) else base

and parse_primary st =
  let loc = peek_loc st in
  match peek st with
  | Flexer.INT n ->
    advance st;
    expr ~loc (Int_lit n)
  | Flexer.REAL (f, k) ->
    advance st;
    expr ~loc (Real_lit (f, k))
  | Flexer.TRUE ->
    advance st;
    expr ~loc (Logical_lit true)
  | Flexer.FALSE ->
    advance st;
    expr ~loc (Logical_lit false)
  | Flexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Flexer.RPAREN;
    expr ~loc (Unop (Paren, e))
  | Flexer.IDENT name ->
    advance st;
    if peek st = Flexer.LPAREN then begin
      advance st;
      let args = parse_expr_list st in
      expect st Flexer.RPAREN;
      expr ~loc (Ref_or_call (name, args))
    end
    else expr ~loc (Var name)
  | t -> error st ("expected expression, found " ^ Flexer.token_to_string t)

and parse_expr_list st =
  if peek st = Flexer.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept st Flexer.COMMA then go (e :: acc) else List.rev (e :: acc)
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_dim_spec st =
  (* one of: expr | expr:expr | : *)
  if peek st = Flexer.COLON then begin
    advance st;
    { ds_lower = None; ds_upper = None }
  end
  else begin
    let first = parse_expr st in
    if accept st Flexer.COLON then
      if peek st = Flexer.COMMA || peek st = Flexer.RPAREN then
        { ds_lower = Some first; ds_upper = None }
      else
        let upper = parse_expr st in
        { ds_lower = Some first; ds_upper = Some upper }
    else { ds_lower = None; ds_upper = Some first }
  end

let parse_dim_list st =
  expect st Flexer.LPAREN;
  let rec go acc =
    let d = parse_dim_spec st in
    if accept st Flexer.COMMA then go (d :: acc) else List.rev (d :: acc)
  in
  let dims = go [] in
  expect st Flexer.RPAREN;
  dims

(* Type spec at the start of a declaration: integer, real, real(8),
   real(kind=8), double precision, logical. Returns None if the current
   tokens do not start a type. *)
let try_parse_type_spec st =
  match peek st with
  | Flexer.IDENT "integer" ->
    advance st;
    (* optional kind, ignored for integers *)
    if peek st = Flexer.LPAREN then begin
      advance st;
      ignore (accept_keyword st "kind");
      ignore (accept st Flexer.ASSIGN);
      (match peek st with Flexer.INT _ -> advance st | _ -> ());
      expect st Flexer.RPAREN
    end;
    Some T_integer
  | Flexer.IDENT "real" ->
    advance st;
    let kind = ref 4 in
    if peek st = Flexer.LPAREN then begin
      advance st;
      ignore (accept_keyword st "kind");
      ignore (accept st Flexer.ASSIGN);
      (match peek st with
      | Flexer.INT k ->
        advance st;
        kind := k
      | _ -> ());
      expect st Flexer.RPAREN
    end;
    Some (T_real !kind)
  | Flexer.IDENT "double" ->
    advance st;
    expect_keyword st "precision";
    Some (T_real 8)
  | Flexer.IDENT "logical" ->
    advance st;
    Some T_logical
  | _ -> None

(* After the type spec: attribute list then :: then entity list.
     real(kind=8), dimension(0:n+1, 0:n+1), allocatable :: u, unew
     integer, parameter :: n = 256
     integer :: i, j
     real(kind=8) :: data(n, m)   ! dims on the entity *)
let parse_decl_rest st loc ftype =
  let dims = ref [] in
  let allocatable = ref false in
  let parameter = ref false in
  let intent = ref None in
  while accept st Flexer.COMMA do
    if accept_keyword st "dimension" then dims := parse_dim_list st
    else if accept_keyword st "allocatable" then allocatable := true
    else if accept_keyword st "parameter" then parameter := true
    else if accept_keyword st "intent" then begin
      expect st Flexer.LPAREN;
      let which =
        if accept_keyword st "in" then
          if accept_keyword st "out" then "inout" else "in"
        else if accept_keyword st "out" then "out"
        else if accept_keyword st "inout" then "inout"
        else error st "expected in/out/inout"
      in
      expect st Flexer.RPAREN;
      intent := Some which
    end
    else error st "unknown declaration attribute"
  done;
  expect st Flexer.DCOLON;
  let decls = ref [] in
  let rec entities () =
    let name = expect_ident st in
    let entity_dims =
      if peek st = Flexer.LPAREN then parse_dim_list st else !dims
    in
    let init =
      if accept st Flexer.ASSIGN then Some (parse_expr st) else None
    in
    (if !parameter && init = None then
       error st ("parameter " ^ name ^ " requires an initialiser"));
    decls :=
      { d_loc = loc; d_name = name; d_type = ftype; d_dims = entity_dims;
        d_allocatable = !allocatable;
        d_parameter = (if !parameter then init else None);
        d_intent = !intent }
      :: !decls;
    if accept st Flexer.COMMA then entities ()
  in
  entities ();
  expect_eos st;
  List.rev !decls

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : stmt option =
  skip_newlines st;
  let loc = peek_loc st in
  match peek st with
  | Flexer.IDENT "do" -> Some (parse_do st loc)
  | Flexer.IDENT "if" -> Some (parse_if st loc)
  | Flexer.IDENT "call" ->
    advance st;
    let name = expect_ident st in
    let args =
      if accept st Flexer.LPAREN then begin
        let a = parse_expr_list st in
        expect st Flexer.RPAREN;
        a
      end
      else []
    in
    expect_eos st;
    Some (stmt ~loc (Call_stmt (name, args)))
  | Flexer.IDENT "allocate" ->
    advance st;
    expect st Flexer.LPAREN;
    let rec go acc =
      let name = expect_ident st in
      let dims = parse_dim_list st in
      if accept st Flexer.COMMA then go ((name, dims) :: acc)
      else List.rev ((name, dims) :: acc)
    in
    let allocs = go [] in
    expect st Flexer.RPAREN;
    expect_eos st;
    Some (stmt ~loc (Allocate allocs))
  | Flexer.IDENT "deallocate" ->
    advance st;
    expect st Flexer.LPAREN;
    let rec go acc =
      let name = expect_ident st in
      if accept st Flexer.COMMA then go (name :: acc)
      else List.rev (name :: acc)
    in
    let names = go [] in
    expect st Flexer.RPAREN;
    expect_eos st;
    Some (stmt ~loc (Deallocate names))
  | Flexer.IDENT "print" ->
    advance st;
    expect st Flexer.STAR;
    let args =
      if accept st Flexer.COMMA then begin
        let rec go acc =
          let e =
            match peek st with
            | Flexer.STRING s ->
              advance st;
              (* strings in print: keep as a Var-like marker *)
              expr (Var ("\"" ^ s ^ "\""))
            | _ -> parse_expr st
          in
          if accept st Flexer.COMMA then go (e :: acc)
          else List.rev (e :: acc)
        in
        go []
      end
      else []
    in
    expect_eos st;
    Some (stmt ~loc (Print args))
  | Flexer.IDENT "return" ->
    advance st;
    expect_eos st;
    Some (stmt ~loc Return)
  | Flexer.IDENT "exit" ->
    advance st;
    expect_eos st;
    Some (stmt ~loc Exit_stmt)
  | Flexer.IDENT "cycle" ->
    advance st;
    expect_eos st;
    Some (stmt ~loc Cycle_stmt)
  | Flexer.IDENT ("end" | "else" | "elseif" | "contains") -> None
  | Flexer.IDENT _ ->
    (* assignment: lhs = rhs, lhs is var or array element *)
    let lhs = parse_primary st in
    (match lhs.e_kind with
    | Var _ | Ref_or_call _ -> ()
    | _ -> error st "invalid assignment target");
    expect st Flexer.ASSIGN;
    let rhs = parse_expr st in
    expect_eos st;
    Some (stmt ~loc (Assign (lhs, rhs)))
  | Flexer.EOF -> None
  | t -> error st ("unexpected token " ^ Flexer.token_to_string t)

and parse_stmt_list st =
  let rec go acc =
    skip_newlines st;
    match parse_stmt st with
    | Some s -> go (s :: acc)
    | None -> List.rev acc
  in
  go []

and parse_do st loc =
  expect_keyword st "do";
  if accept_keyword st "while" then begin
    expect st Flexer.LPAREN;
    let cond = parse_expr st in
    expect st Flexer.RPAREN;
    expect_eos st;
    let body = parse_stmt_list st in
    expect_keyword st "end";
    expect_keyword st "do";
    expect_eos st;
    stmt ~loc (Do_while (cond, body))
  end
  else begin
    let v = expect_ident st in
    expect st Flexer.ASSIGN;
    let lb = parse_expr st in
    expect st Flexer.COMMA;
    let ub = parse_expr st in
    let step = if accept st Flexer.COMMA then Some (parse_expr st) else None in
    expect_eos st;
    let body = parse_stmt_list st in
    expect_keyword st "end";
    expect_keyword st "do";
    expect_eos st;
    stmt ~loc (Do (v, lb, ub, step, body))
  end

and parse_if st loc =
  expect_keyword st "if";
  expect st Flexer.LPAREN;
  let cond = parse_expr st in
  expect st Flexer.RPAREN;
  if accept_keyword st "then" then begin
    expect_eos st;
    let body = parse_stmt_list st in
    let branches = ref [ (cond, body) ] in
    let else_body = ref None in
    let rec elses () =
      if accept_keyword st "else" then
        if accept_keyword st "if" then begin
          expect st Flexer.LPAREN;
          let c = parse_expr st in
          expect st Flexer.RPAREN;
          expect_keyword st "then";
          expect_eos st;
          let b = parse_stmt_list st in
          branches := (c, b) :: !branches;
          elses ()
        end
        else begin
          expect_eos st;
          else_body := Some (parse_stmt_list st)
        end
      else if accept_keyword st "elseif" then begin
        expect st Flexer.LPAREN;
        let c = parse_expr st in
        expect st Flexer.RPAREN;
        expect_keyword st "then";
        expect_eos st;
        let b = parse_stmt_list st in
        branches := (c, b) :: !branches;
        elses ()
      end
    in
    elses ();
    expect_keyword st "end";
    expect_keyword st "if";
    expect_eos st;
    stmt ~loc (If (List.rev !branches, !else_body))
  end
  else begin
    (* one-line if *)
    match parse_stmt st with
    | Some s -> stmt ~loc (If ([ (cond, [ s ]) ], None))
    | None -> error st "expected statement after one-line if"
  end

(* ------------------------------------------------------------------ *)
(* Program units                                                       *)
(* ------------------------------------------------------------------ *)

let parse_specification st =
  (* implicit none + declarations *)
  let decls = ref [] in
  let continue_ = ref true in
  while !continue_ do
    skip_newlines st;
    if accept_keyword st "implicit" then begin
      expect_keyword st "none";
      expect_eos st
    end
    else begin
      let save = st.toks in
      let loc = peek_loc st in
      match try_parse_type_spec st with
      | Some ftype ->
        (* A type keyword can also start a statement like
           real(...)=... only in weird code; our subset treats a type
           token at spec position as a declaration. But a function call
           assignment like "integer = 5" is invalid anyway. However we
           must not swallow executable statements: if the next tokens do
           not look like a declaration, rewind. *)
        (match peek st with
        | Flexer.COMMA | Flexer.DCOLON ->
          decls := !decls @ parse_decl_rest st loc ftype
        | _ ->
          st.toks <- save;
          continue_ := false)
      | None -> continue_ := false
    end
  done;
  !decls

let parse_unit st =
  skip_newlines st;
  let loc = peek_loc st in
  if accept_keyword st "program" then begin
    let name = expect_ident st in
    expect_eos st;
    let decls = parse_specification st in
    let body = parse_stmt_list st in
    expect_keyword st "end";
    ignore (accept_keyword st "program");
    (match peek st with Flexer.IDENT _ -> advance st | _ -> ());
    expect_eos st;
    Some
      { u_loc = loc; u_name = name; u_kind = Program; u_decls = decls;
        u_body = body }
  end
  else if accept_keyword st "subroutine" then begin
    let name = expect_ident st in
    let args =
      if accept st Flexer.LPAREN then begin
        if accept st Flexer.RPAREN then []
        else begin
          let rec go acc =
            let a = expect_ident st in
            if accept st Flexer.COMMA then go (a :: acc)
            else List.rev (a :: acc)
          in
          let args = go [] in
          expect st Flexer.RPAREN;
          args
        end
      end
      else []
    in
    expect_eos st;
    let decls = parse_specification st in
    let body = parse_stmt_list st in
    expect_keyword st "end";
    ignore (accept_keyword st "subroutine");
    (match peek st with Flexer.IDENT _ -> advance st | _ -> ());
    expect_eos st;
    Some
      { u_loc = loc; u_name = name; u_kind = Subroutine args;
        u_decls = decls; u_body = body }
  end
  else if
    (match peek st with
    | Flexer.IDENT ("integer" | "real" | "double" | "logical" | "function")
      -> true
    | _ -> false)
  then begin
    (* [type] function name(args) [result(r)] *)
    let _ret_type = try_parse_type_spec st in
    expect_keyword st "function";
    let name = expect_ident st in
    expect st Flexer.LPAREN;
    let args =
      if accept st Flexer.RPAREN then []
      else begin
        let rec go acc =
          let a = expect_ident st in
          if accept st Flexer.COMMA then go (a :: acc)
          else List.rev (a :: acc)
        in
        let args = go [] in
        expect st Flexer.RPAREN;
        args
      end
    in
    let result_var =
      if accept_keyword st "result" then begin
        expect st Flexer.LPAREN;
        let r = expect_ident st in
        expect st Flexer.RPAREN;
        r
      end
      else name
    in
    expect_eos st;
    let decls = parse_specification st in
    let body = parse_stmt_list st in
    expect_keyword st "end";
    ignore (accept_keyword st "function");
    (match peek st with Flexer.IDENT _ -> advance st | _ -> ());
    expect_eos st;
    Some
      { u_loc = loc; u_name = name; u_kind = Function (args, result_var);
        u_decls = decls; u_body = body }
  end
  else None

let parse_source src =
  let toks = Flexer.tokenize src in
  let st = { toks } in
  let rec go acc =
    skip_newlines st;
    if peek st = Flexer.EOF then List.rev acc
    else
      match parse_unit st with
      | Some u -> go (u :: acc)
      | None -> error st "expected program, subroutine or function"
  in
  go []

(* Semantic analysis: symbol tables, constant evaluation of parameters and
   dimension bounds, expression typing, and disambiguation of
   name(args) into array references vs intrinsic vs user-function calls. *)

open Fast

exception Sema_error of string * loc

let error loc fmt =
  Printf.ksprintf (fun msg -> raise (Sema_error (msg, loc))) fmt

type const_value =
  | C_int of int
  | C_real of float
  | C_bool of bool

(* Static per-dimension bounds (inclusive), when compile-time known. *)
type static_bounds = (int * int) list

type symbol =
  | S_scalar of ftype
  | S_param of ftype * const_value
  | S_array of array_info
  | S_dummy_scalar of ftype * string option (* intent *)
  | S_dummy_array of array_info * string option

and array_info = {
  a_type : ftype;
  a_rank : int;
  a_bounds : static_bounds option; (* None for deferred/dynamic shape *)
  a_allocatable : bool;
}

type unit_env = {
  env_unit : program_unit;
  env_symbols : (string, symbol) Hashtbl.t;
  env_functions : (string, program_unit) Hashtbl.t; (* whole-file units *)
}

let intrinsics =
  [ "abs"; "sqrt"; "max"; "min"; "mod"; "dble"; "real"; "int"; "exp";
    "sin"; "cos"; "tan"; "log"; "atan"; "atan2"; "floor"; "nint";
    (* whole-array reductions *)
    "sum"; "maxval"; "minval" ]

let is_intrinsic n = List.mem n intrinsics

(* ---- constant expression evaluation ---- *)

let rec eval_const env (e : expr) : const_value =
  match e.e_kind with
  | Int_lit n -> C_int n
  | Real_lit (f, _) -> C_real f
  | Logical_lit b -> C_bool b
  | Var n -> (
    match Hashtbl.find_opt env n with
    | Some (S_param (_, v)) -> v
    | Some _ -> error e.e_loc "%s is not a constant" n
    | None -> error e.e_loc "undeclared name %s in constant expression" n)
  | Unop (Neg, a) -> (
    match eval_const env a with
    | C_int n -> C_int (-n)
    | C_real f -> C_real (-.f)
    | C_bool _ -> error e.e_loc "cannot negate a logical")
  | Unop (Not, a) -> (
    match eval_const env a with
    | C_bool b -> C_bool (not b)
    | _ -> error e.e_loc ".not. requires a logical")
  | Unop (Paren, a) -> eval_const env a
  | Binop (op, a, b) -> eval_const_binop env e.e_loc op a b
  | Ref_or_call ("max", [ a; b ]) -> (
    match (eval_const env a, eval_const env b) with
    | C_int x, C_int y -> C_int (max x y)
    | x, y -> C_real (max (to_real x) (to_real y)))
  | Ref_or_call ("min", [ a; b ]) -> (
    match (eval_const env a, eval_const env b) with
    | C_int x, C_int y -> C_int (min x y)
    | x, y -> C_real (min (to_real x) (to_real y)))
  | Ref_or_call _ -> error e.e_loc "call is not a constant expression"

and to_real = function
  | C_int n -> float_of_int n
  | C_real f -> f
  | C_bool _ -> invalid_arg "to_real"

and eval_const_binop env loc op a b =
  let va = eval_const env a and vb = eval_const env b in
  let arith fi ff =
    match (va, vb) with
    | C_int x, C_int y -> C_int (fi x y)
    | (C_int _ | C_real _), (C_int _ | C_real _) ->
      C_real (ff (to_real va) (to_real vb))
    | _ -> error loc "arithmetic on logicals"
  in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> (
    match (va, vb) with
    | C_int x, C_int y ->
      if y = 0 then error loc "division by zero in constant"
      else C_int (x / y)
    | _ -> C_real (to_real va /. to_real vb))
  | Pow -> (
    match (va, vb) with
    | C_int x, C_int y when y >= 0 ->
      let rec p acc n = if n = 0 then acc else p (acc * x) (n - 1) in
      C_int (p 1 y)
    | _ -> C_real (Float.pow (to_real va) (to_real vb)))
  | Eq -> C_bool (to_real va = to_real vb)
  | Ne -> C_bool (to_real va <> to_real vb)
  | Lt -> C_bool (to_real va < to_real vb)
  | Le -> C_bool (to_real va <= to_real vb)
  | Gt -> C_bool (to_real va > to_real vb)
  | Ge -> C_bool (to_real va >= to_real vb)
  | And | Or -> (
    match (va, vb) with
    | C_bool x, C_bool y -> C_bool (if op = And then x && y else x || y)
    | _ -> error loc "logical op on non-logicals")

let eval_const_int env e =
  match eval_const env e with
  | C_int n -> n
  | _ -> error e.e_loc "expected integer constant"

(* ---- building the symbol table ---- *)

let resolve_bounds env loc (dims : dim_spec list) : static_bounds option =
  let resolve_dim d =
    match (d.ds_lower, d.ds_upper) with
    | None, None -> None (* deferred shape *)
    | lower, Some upper -> (
      try
        let lo =
          match lower with None -> 1 | Some e -> eval_const_int env e
        in
        let hi = eval_const_int env upper in
        if hi < lo then error loc "array upper bound below lower bound";
        Some (lo, hi)
      with Sema_error _ -> None)
    | Some _, None -> None
  in
  let bs = List.map resolve_dim dims in
  if List.for_all Option.is_some bs then Some (List.map Option.get bs)
  else None

let analyze_unit (all_units : compilation_unit) (u : program_unit) : unit_env
    =
  let symbols = Hashtbl.create 32 in
  let functions = Hashtbl.create 8 in
  List.iter
    (fun u' ->
      match u'.u_kind with
      | Subroutine _ | Function _ -> Hashtbl.replace functions u'.u_name u'
      | Program -> ())
    all_units;
  let dummy_args =
    match u.u_kind with
    | Program -> []
    | Subroutine args -> args
    | Function (args, _) -> args
  in
  List.iter
    (fun d ->
      if Hashtbl.mem symbols d.d_name then
        error d.d_loc "duplicate declaration of %s" d.d_name;
      let is_dummy = List.mem d.d_name dummy_args in
      let sym =
        match (d.d_parameter, d.d_dims) with
        | Some init, [] ->
          S_param (d.d_type, eval_const symbols init)
        | Some _, _ -> error d.d_loc "array parameters are not supported"
        | None, [] ->
          if is_dummy then S_dummy_scalar (d.d_type, d.d_intent)
          else S_scalar d.d_type
        | None, dims ->
          let info =
            { a_type = d.d_type; a_rank = List.length dims;
              a_bounds = resolve_bounds symbols d.d_loc dims;
              a_allocatable = d.d_allocatable }
          in
          if is_dummy then S_dummy_array (info, d.d_intent)
          else S_array info
      in
      Hashtbl.replace symbols d.d_name sym)
    u.u_decls;
  (* every dummy argument must be declared *)
  List.iter
    (fun a ->
      if not (Hashtbl.mem symbols a) then
        error u.u_loc "dummy argument %s is not declared" a)
    dummy_args;
  { env_unit = u; env_symbols = symbols; env_functions = functions }

(* ---- expression typing ---- *)

let lookup env loc name =
  match Hashtbl.find_opt env.env_symbols name with
  | Some s -> s
  | None -> error loc "undeclared name %s (implicit none)" name

let symbol_type = function
  | S_scalar t | S_param (t, _) | S_dummy_scalar (t, _) -> t
  | S_array i | S_dummy_array (i, _) -> i.a_type

let array_info env loc name =
  match lookup env loc name with
  | S_array i | S_dummy_array (i, _) -> i
  | _ -> error loc "%s is not an array" name

let is_array env name =
  match Hashtbl.find_opt env.env_symbols name with
  | Some (S_array _ | S_dummy_array _) -> true
  | _ -> false

let type_join a b =
  match (a, b) with
  | T_real 8, _ | _, T_real 8 -> T_real 8
  | T_real 4, _ | _, T_real 4 -> T_real 4
  | T_integer, T_integer -> T_integer
  | T_logical, T_logical -> T_logical
  | _ -> T_real 8

let rec type_of_expr env (e : expr) : ftype =
  match e.e_kind with
  | Int_lit _ -> T_integer
  | Real_lit (_, k) -> T_real k
  | Logical_lit _ -> T_logical
  | Var n -> symbol_type (lookup env e.e_loc n)
  | Unop (Neg, a) | Unop (Paren, a) -> type_of_expr env a
  | Unop (Not, _) -> T_logical
  | Binop ((Add | Sub | Mul | Div | Pow), a, b) ->
    type_join (type_of_expr env a) (type_of_expr env b)
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> T_logical
  | Ref_or_call (n, args) -> (
    if is_array env n then begin
      let info = array_info env e.e_loc n in
      if List.length args <> info.a_rank then
        error e.e_loc "%s has rank %d but %d subscripts given" n info.a_rank
          (List.length args);
      info.a_type
    end
    else if is_intrinsic n then intrinsic_type env e.e_loc n args
    else
      match Hashtbl.find_opt env.env_functions n with
      | Some f -> (
        match f.u_kind with
        | Function (_, result) -> (
          match
            List.find_opt (fun d -> d.d_name = result) f.u_decls
          with
          | Some d -> d.d_type
          | None -> T_real 8)
        | _ -> error e.e_loc "%s is a subroutine, not a function" n)
      | None -> error e.e_loc "unknown function or array %s" n)

and intrinsic_type env loc n args =
  let arg_t i = type_of_expr env (List.nth args i) in
  match n with
  | "abs" | "sqrt" | "exp" | "sin" | "cos" | "tan" | "log" | "atan" ->
    arg_t 0
  | "atan2" -> arg_t 0
  | "max" | "min" | "mod" ->
    if List.length args < 2 then error loc "%s needs two arguments" n
    else type_join (arg_t 0) (arg_t 1)
  | "dble" -> T_real 8
  | "real" -> T_real 4
  | "int" | "floor" | "nint" -> T_integer
  | "sum" | "maxval" | "minval" -> (
    (* whole-array reduction: the single argument must be an array name *)
    match args with
    | [ { e_kind = Var name; e_loc; _ } ] -> (
      match Hashtbl.find_opt env.env_symbols name with
      | Some (S_array i) | Some (S_dummy_array (i, _)) -> i.a_type
      | _ -> error e_loc "%s expects an array argument" n)
    | _ -> error loc "%s expects a single whole-array argument" n)
  | _ -> error loc "unknown intrinsic %s" n

(* ---- statement checking ---- *)

let rec check_stmt env (s : stmt) =
  match s.s_kind with
  | Assign (lhs, rhs) -> (
    ignore (type_of_expr env rhs);
    match lhs.e_kind with
    | Var n -> (
      match lookup env s.s_loc n with
      | S_scalar _ | S_dummy_scalar _ -> ()
      | S_param _ -> error s.s_loc "cannot assign to parameter %s" n
      | S_array _ | S_dummy_array _ ->
        error s.s_loc "whole-array assignment to %s is not supported" n)
    | Ref_or_call (n, args) ->
      let info = array_info env s.s_loc n in
      if List.length args <> info.a_rank then
        error s.s_loc "%s has rank %d but %d subscripts given" n info.a_rank
          (List.length args);
      List.iter (fun a -> ignore (type_of_expr env a)) args
    | _ -> error s.s_loc "invalid assignment target")
  | Do (v, lb, ub, step, body) ->
    (match lookup env s.s_loc v with
    | S_scalar T_integer | S_dummy_scalar (T_integer, _) -> ()
    | _ -> error s.s_loc "loop variable %s must be a declared integer" v);
    ignore (type_of_expr env lb);
    ignore (type_of_expr env ub);
    Option.iter (fun e -> ignore (type_of_expr env e)) step;
    List.iter (check_stmt env) body
  | Do_while (cond, body) ->
    (match type_of_expr env cond with
    | T_logical -> ()
    | _ -> error s.s_loc "do while condition must be logical");
    List.iter (check_stmt env) body
  | If (branches, else_body) ->
    List.iter
      (fun (c, body) ->
        (match type_of_expr env c with
        | T_logical -> ()
        | _ -> error s.s_loc "if condition must be logical");
        List.iter (check_stmt env) body)
      branches;
    Option.iter (List.iter (check_stmt env)) else_body
  | Call_stmt (n, args) ->
    (match Hashtbl.find_opt env.env_functions n with
    | Some { u_kind = Subroutine params; _ } ->
      if List.length params <> List.length args then
        error s.s_loc "subroutine %s expects %d arguments, got %d" n
          (List.length params) (List.length args)
    | Some _ -> error s.s_loc "%s is not a subroutine" n
    | None -> error s.s_loc "unknown subroutine %s" n);
    List.iter (fun a -> ignore (type_of_expr env a)) args
  | Allocate allocs ->
    List.iter
      (fun (n, dims) ->
        let info = array_info env s.s_loc n in
        if not info.a_allocatable then
          error s.s_loc "%s is not allocatable" n;
        if List.length dims <> info.a_rank then
          error s.s_loc "allocate rank mismatch for %s" n)
      allocs
  | Deallocate names ->
    List.iter
      (fun n ->
        let info = array_info env s.s_loc n in
        if not info.a_allocatable then
          error s.s_loc "%s is not allocatable" n)
      names
  | Print args ->
    List.iter
      (fun a ->
        match a.e_kind with
        | Var n when String.length n > 0 && n.[0] = '"' -> ()
        | _ -> ignore (type_of_expr env a))
      args
  | Return | Exit_stmt | Cycle_stmt -> ()

let check_unit env = List.iter (check_stmt env) env.env_unit.u_body

(* Analyze and check a whole compilation unit. *)
let analyze (units : compilation_unit) : unit_env list =
  let envs = List.map (analyze_unit units) units in
  List.iter check_unit envs;
  envs

(* Abstract syntax tree of the supported Fortran subset.

   The subset is what the paper's benchmarks need: program/subroutine/
   function units, implicit none, integer/real/double precision/logical
   declarations with dimension (arbitrary per-dimension lower bounds),
   parameter constants, allocatable arrays with allocate/deallocate,
   nested DO loops, IF/ELSE IF/ELSE, assignments, full arithmetic and
   logical expressions, and a handful of numeric intrinsics. *)

type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

type ftype =
  | T_integer
  | T_real of int (* kind: 4 or 8 *)
  | T_logical

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Not
  (* Explicit parentheses. Fortran forbids reassociation across them;
     Flang materialises this as fir.no_reassoc, which the paper's
     extraction pass must convert away — so we keep them in the AST. *)
  | Paren

type expr = {
  e_loc : loc;
  e_kind : expr_kind;
}

and expr_kind =
  | Int_lit of int
  | Real_lit of float * int (* value, kind *)
  | Logical_lit of bool
  | Var of string
  (* name(args): array reference or function/intrinsic call, disambiguated
     during semantic analysis. *)
  | Ref_or_call of string * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr

type dim_spec = {
  (* Lower bound; None means the Fortran default of 1. *)
  ds_lower : expr option;
  (* Upper bound; None only for deferred shape (allocatable ":"). *)
  ds_upper : expr option;
}

type decl = {
  d_loc : loc;
  d_name : string;
  d_type : ftype;
  d_dims : dim_spec list; (* [] for scalars *)
  d_allocatable : bool;
  d_parameter : expr option;
  d_intent : string option; (* "in" | "out" | "inout" *)
}

type stmt = {
  s_loc : loc;
  s_kind : stmt_kind;
}

and stmt_kind =
  | Assign of expr * expr (* lhs (Var or Ref_or_call), rhs *)
  | Do of string * expr * expr * expr option * stmt list
  | Do_while of expr * stmt list
  | If of (expr * stmt list) list * stmt list option
  | Call_stmt of string * expr list
  | Allocate of (string * dim_spec list) list
  | Deallocate of string list
  | Print of expr list
  | Return
  | Exit_stmt
  | Cycle_stmt

type unit_kind =
  | Program
  | Subroutine of string list (* dummy argument names *)
  | Function of string list * string (* args, result variable *)

type program_unit = {
  u_loc : loc;
  u_name : string;
  u_kind : unit_kind;
  u_decls : decl list;
  u_body : stmt list;
}

type compilation_unit = program_unit list

(* ---- convenience constructors (used heavily by tests) ---- *)

let expr ?(loc = no_loc) kind = { e_loc = loc; e_kind = kind }
let int_lit n = expr (Int_lit n)
let real_lit ?(kind = 8) f = expr (Real_lit (f, kind))
let var n = expr (Var n)
let ref_ n args = expr (Ref_or_call (n, args))
let binop op a b = expr (Binop (op, a, b))
let stmt ?(loc = no_loc) kind = { s_loc = loc; s_kind = kind }

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Eq -> "=="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> ".and."
  | Or -> ".or."

let rec expr_to_string e =
  match e.e_kind with
  | Int_lit n -> string_of_int n
  | Real_lit (f, k) -> Printf.sprintf "%g_%d" f k
  | Logical_lit b -> if b then ".true." else ".false."
  | Var n -> n
  | Ref_or_call (n, args) ->
    Printf.sprintf "%s(%s)" n
      (String.concat ", " (List.map expr_to_string args))
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)
  | Unop (Neg, a) -> Printf.sprintf "(-%s)" (expr_to_string a)
  | Unop (Not, a) -> Printf.sprintf "(.not. %s)" (expr_to_string a)
  | Unop (Paren, a) -> Printf.sprintf "(%s)" (expr_to_string a)

(* Free-form Fortran lexer. Fortran is case-insensitive and line-oriented:
   statements end at newline unless continued with '&'; '!' starts a
   comment; ';' separates statements on one line. The lexer lowercases
   everything and emits NEWLINE tokens at statement boundaries. *)

type token =
  | IDENT of string
  | INT of int
  | REAL of float * int (* value, kind *)
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | DCOLON
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW (* ** *)
  | ASSIGN (* = *)
  | EQ (* == or .eq. *)
  | NE
  | LT_
  | LE_
  | GT_
  | GE_
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  | PERCENT
  | NEWLINE
  | EOF

type located = { tok : token; tline : int; tcol : int }

exception Lex_error of string * int * int (* message, line, col *)

let token_to_string = function
  | IDENT s -> "identifier " ^ s
  | INT n -> "integer " ^ string_of_int n
  | REAL (f, k) -> Printf.sprintf "real %g (kind %d)" f k
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLON -> ":"
  | DCOLON -> "::"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | POW -> "**"
  | ASSIGN -> "="
  | EQ -> "=="
  | NE -> "/="
  | LT_ -> "<"
  | LE_ -> "<="
  | GT_ -> ">"
  | GE_ -> ">="
  | AND -> ".and."
  | OR -> ".or."
  | NOT -> ".not."
  | TRUE -> ".true."
  | FALSE -> ".false."
  | PERCENT -> "%"
  | NEWLINE -> "end of line"
  | EOF -> "end of file"

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_alnum c = is_alpha c || is_digit c

let lower = String.lowercase_ascii

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let n = String.length src in
  let out = ref [] in
  let emit tok = out := { tok; tline = st.line; tcol = st.col } :: !out in
  let peek () = if st.pos < n then src.[st.pos] else '\000' in
  let peek2 () = if st.pos + 1 < n then src.[st.pos + 1] else '\000' in
  let advance () =
    if st.pos < n then begin
      if src.[st.pos] = '\n' then begin
        st.line <- st.line + 1;
        st.col <- 1
      end
      else st.col <- st.col + 1;
      st.pos <- st.pos + 1
    end
  in
  let error msg = raise (Lex_error (msg, st.line, st.col)) in
  let skip_to_eol () =
    while st.pos < n && peek () <> '\n' do
      advance ()
    done
  in
  (* Collapse blank lines: only emit NEWLINE after a significant token. *)
  let last_was_newline () =
    match !out with
    | [] -> true
    | { tok = NEWLINE; _ } :: _ -> true
    | _ -> false
  in
  let continuation = ref false in
  while st.pos < n do
    let c = peek () in
    if c = ' ' || c = '\t' || c = '\r' then advance ()
    else if c = '!' then skip_to_eol ()
    else if c = '\n' then begin
      if !continuation then continuation := false
      else if not (last_was_newline ()) then emit NEWLINE;
      advance ()
    end
    else if c = '&' then begin
      continuation := true;
      advance ()
    end
    else if c = ';' then begin
      if not (last_was_newline ()) then emit NEWLINE;
      advance ()
    end
    else if is_digit c || (c = '.' && is_digit (peek2 ())) then begin
      let start = st.pos in
      while is_digit (peek ()) do
        advance ()
      done;
      let is_real = ref false in
      (* Careful: "1." followed by "and." must not eat the dot of .and. —
         a dot is part of the number only if not starting a dot-operator. *)
      if
        peek () = '.'
        && not
             (is_alpha (peek2 ())
             && (let save = st.pos in
                 (* lookahead: .ident. pattern *)
                 let p = ref (save + 1) in
                 while !p < n && is_alpha src.[!p] do
                   incr p
                 done;
                 let isop = !p < n && src.[!p] = '.' in
                 isop))
      then begin
        is_real := true;
        advance ();
        while is_digit (peek ()) do
          advance ()
        done
      end;
      (* exponent: e/d followed by optional sign and digits *)
      (match peek () with
      | 'e' | 'E' | 'd' | 'D'
        when is_digit (peek2 ())
             || ((peek2 () = '+' || peek2 () = '-')
                && st.pos + 2 < n
                && is_digit src.[st.pos + 2]) ->
        is_real := true;
        advance ();
        if peek () = '+' || peek () = '-' then advance ();
        while is_digit (peek ()) do
          advance ()
        done
      | _ -> ());
      let lexeme = String.sub src start (st.pos - start) in
      (* kind suffix: 1.0_8 *)
      let kind = ref 4 in
      if String.contains (lower lexeme) 'd' then kind := 8;
      if peek () = '_' && is_digit (peek2 ()) then begin
        advance ();
        let kstart = st.pos in
        while is_digit (peek ()) do
          advance ()
        done;
        kind := int_of_string (String.sub src kstart (st.pos - kstart))
      end;
      if !is_real then begin
        let norm =
          String.map
            (fun c -> match c with 'd' | 'D' -> 'e' | c -> c)
            lexeme
        in
        emit (REAL (float_of_string norm, !kind))
      end
      else emit (INT (int_of_string lexeme))
    end
    else if is_alpha c then begin
      let start = st.pos in
      while is_alnum (peek ()) do
        advance ()
      done;
      emit (IDENT (lower (String.sub src start (st.pos - start))))
    end
    else if c = '.' && is_alpha (peek2 ()) then begin
      (* dot operator: .and. .or. .not. .true. .false. .eq. ... *)
      advance ();
      let start = st.pos in
      while is_alpha (peek ()) do
        advance ()
      done;
      let name = lower (String.sub src start (st.pos - start)) in
      if peek () <> '.' then
        error ("." ^ name ^ " not terminated by '.'");
      advance ();
      (match name with
      | "and" -> emit AND
      | "or" -> emit OR
      | "not" -> emit NOT
      | "true" -> emit TRUE
      | "false" -> emit FALSE
      | "eq" -> emit EQ
      | "ne" -> emit NE
      | "lt" -> emit LT_
      | "le" -> emit LE_
      | "gt" -> emit GT_
      | "ge" -> emit GE_
      | _ -> error ("unknown operator ." ^ name ^ "."))
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      advance ();
      let b = Buffer.create 16 in
      while st.pos < n && peek () <> quote do
        Buffer.add_char b (peek ());
        advance ()
      done;
      if st.pos >= n then error "unterminated string literal";
      advance ();
      emit (STRING (Buffer.contents b))
    end
    else begin
      (match c with
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | ',' -> emit COMMA
      | ':' ->
        if peek2 () = ':' then begin
          advance ();
          emit DCOLON
        end
        else emit COLON
      | '+' -> emit PLUS
      | '-' -> emit MINUS
      | '*' ->
        if peek2 () = '*' then begin
          advance ();
          emit POW
        end
        else emit STAR
      | '/' ->
        if peek2 () = '=' then begin
          advance ();
          emit NE
        end
        else emit SLASH
      | '=' ->
        if peek2 () = '=' then begin
          advance ();
          emit EQ
        end
        else emit ASSIGN
      | '<' ->
        if peek2 () = '=' then begin
          advance ();
          emit LE_
        end
        else emit LT_
      | '>' ->
        if peek2 () = '=' then begin
          advance ();
          emit GE_
        end
        else emit GT_
      | '%' -> emit PERCENT
      | c -> error (Printf.sprintf "unexpected character %C" c));
      advance ()
    end
  done;
  if not (last_was_newline ()) then emit NEWLINE;
  emit EOF;
  List.rev !out

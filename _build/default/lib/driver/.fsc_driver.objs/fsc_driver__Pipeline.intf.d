lib/driver/pipeline.mli: Fsc_ir Fsc_rt Op

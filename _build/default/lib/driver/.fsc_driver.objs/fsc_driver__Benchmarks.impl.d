lib/driver/benchmarks.ml: Printf

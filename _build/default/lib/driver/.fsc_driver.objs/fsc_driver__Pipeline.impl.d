lib/driver/pipeline.ml: Array Dialect Filename Fsc_core Fsc_dialects Fsc_fortran Fsc_ir Fsc_lowering Fsc_rt Fsc_transforms Lazy List Logs Op String Verifier

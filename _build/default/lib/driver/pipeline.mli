(** End-to-end compilation and execution pipelines — the paper's Figure 1
    as code. Each flow takes Fortran source text and produces a runnable
    {!artifact}. *)

open Fsc_ir

(** GPU data-management strategy (Section 4.3 / Figure 5). *)
type gpu_strategy =
  | Gpu_initial  (** [gpu.host_register]: page everything, every launch *)
  | Gpu_optimised  (** the bespoke data-placement pass: device-resident *)

type target =
  | Serial
  | Openmp of int  (** auto-parallelised, thread count *)
  | Gpu of gpu_strategy

(** How a kernel is executed at runtime. *)
type kernel_impl =
  | Compiled of Fsc_rt.Kernel_compile.spec
      (** closure-compiled fast path *)
  | Interpreted of string  (** fallback, with the analyser's reason *)

type artifact = {
  a_host : Op.op;  (** the FIR host module *)
  a_stencil : Op.op option;  (** extracted module after lowering *)
  a_gpu_ir : Op.op option;
      (** the Listing-4 pipeline output (GPU targets only) *)
  a_ctx : Fsc_rt.Interp.context;  (** linked execution context *)
  a_kernels : (string * kernel_impl) list;
  a_target : target;
}

type stencil_stats = {
  st_discovered : int;
  st_merged : int;
  st_kernels : int;
}

(** The baseline: frontend to FIR, no stencil optimisation, naive
    execution (the paper's "Flang only" series). *)
val flang_only : string -> artifact

(** The full stencil pipeline: discover, merge, extract, lower for the
    target, link compiled kernels back against the interpreted host.
    [merge] and [specialize] default to [true] and exist for ablation
    studies; [tile_sizes] parameterises the GPU pipeline (paper default
    32,32,1). *)
val stencil :
  ?target:target ->
  ?tile_sizes:int list ->
  ?merge:bool ->
  ?specialize:bool ->
  string ->
  artifact * stencil_stats

(** Execute the program's [_QQmain]; for GPU targets, synchronise device
    mirrors back to the host afterwards. *)
val run : artifact -> unit

(** Release the artifact's worker pool (OpenMP targets). *)
val shutdown : artifact -> unit

(** Look up a named Fortran array allocated during execution. *)
val buffer : artifact -> string -> Fsc_rt.Memref_rt.t option

val buffer_exn : artifact -> string -> Fsc_rt.Memref_rt.t

(* CPU roofline model for the three compiler pipelines of Figures 2-4.

   Each (pipeline, benchmark) pair is characterised by
   - a compute efficiency: the fraction of peak core flops the generated
     code sustains (vectorisation quality — Cray's strength, Section 4.2);
   - effective bytes moved per grid cell (fusion and streaming quality —
     the stencil pipeline's strength on PW advection, where merging the
     three loop nests into one stencil region cuts traffic threefold).

   Throughput(t threads) = min(t * compute_rate, BW(t) / bytes_per_cell)
   with BW(t) from spread thread placement over NUMA regions. *)

type pipeline =
  | Cray
  | Flang_only
  | Stencil_opt

type benchmark =
  | Gauss_seidel (* 6 flops/cell, sweep + copy-back *)
  | Pw_advection (* 63 flops/cell, 3 nests (fused by the stencil flow) *)

let pipeline_name = function
  | Cray -> "Cray"
  | Flang_only -> "Flang only"
  | Stencil_opt -> "Stencil"

let benchmark_name = function
  | Gauss_seidel -> "Gauss-Seidel"
  | Pw_advection -> "PW advection"

let flops_per_cell = function Gauss_seidel -> 6.0 | Pw_advection -> 63.0

(* compute efficiency (fraction of core peak) *)
let efficiency bench pipe =
  match (bench, pipe) with
  (* Cray: aggressive vectorisation (the paper profiled "considerably
     more vectorisation" than the stencil flow) *)
  | Gauss_seidel, Cray -> 0.50
  | Pw_advection, Cray -> 0.50
  (* Stencil: scf lowering + loop specialisation, partial vectorisation *)
  | Gauss_seidel, Stencil_opt -> 0.12
  | Pw_advection, Stencil_opt -> 0.15
  (* Flang alone: FIR straight to LLVM-IR, scalar code, redundant
     address computation *)
  | Gauss_seidel, Flang_only -> 0.020
  | Pw_advection, Flang_only -> 0.013

(* effective bytes per cell *)
let bytes_per_cell bench pipe =
  match (bench, pipe) with
  | Gauss_seidel, Cray -> 32.0 (* sweep + copy, well-streamed *)
  | Gauss_seidel, Stencil_opt -> 48.0
  | Gauss_seidel, Flang_only -> 80.0
  | Pw_advection, Cray -> 96.0 (* three unfused nests re-read u,v,w *)
  | Pw_advection, Stencil_opt -> 48.0 (* fused: one pass over memory *)
  | Pw_advection, Flang_only -> 160.0

(* Aggregate bandwidth at [t] threads with spread placement. *)
let bandwidth (node : Machine.cpu_node) t =
  let numa_used = min t node.Machine.numa_regions in
  Float.min
    (float_of_int t *. node.Machine.core_bw)
    (float_of_int numa_used *. node.Machine.numa_bw)

(* thread-management overhead of a parallel sweep (fork/join + barrier) *)
let parallel_overhead pipe t =
  if t <= 1 then 1.0
  else
    let base = match pipe with Flang_only -> 0.06 | _ -> 0.03 in
    1.0 +. (base *. Float.log2 (float_of_int t))

(* Cells/s at [threads] on [node]. *)
let throughput ?(node = Machine.archer2_node) ~bench ~pipe ~threads () =
  let compute_rate =
    node.Machine.core_flops *. efficiency bench pipe /. flops_per_cell bench
  in
  let t = float_of_int threads in
  let mem_rate = bandwidth node threads /. bytes_per_cell bench pipe in
  Float.min (t *. compute_rate) mem_rate /. parallel_overhead pipe threads

let mcells ?node ~bench ~pipe ~threads () =
  throughput ?node ~bench ~pipe ~threads () /. 1.0e6

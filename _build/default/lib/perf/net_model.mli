(** Distributed-memory scaling model for the paper's Figure 6:
    Gauss-Seidel over a 2-D decomposition on ARCHER2 (128 ranks/node,
    Slingshot).

    Per iteration and rank: T = T_compute + T_comm + T_sync. The hand
    version overlaps its halo messages and computes at the Cray
    pipeline's rate; the auto DMP/MPI version posts its four messages
    back-to-back with per-swap bookkeeping and computes at the stencil
    pipeline's rate — the two reasons the paper gives for the hand
    version winning and scaling better. *)

type variant =
  | Hand_cray
  | Auto_dmp

val variant_name : variant -> string

val rank_bandwidth : Machine.network -> ranks_per_node:int -> float

(** {2 Future work (paper §6, fifth item): multinode GPU}

    Combines the DMP decomposition with per-node GPU kernels: one rank
    per GPU, halos staged over PCIe unless [gc_gpudirect] models an
    NVLink/GPUDirect-class path. *)

type gpu_cluster = {
  gc_gpu : Fsc_rt.Gpu_sim.spec;
  gc_net : Machine.network;
  gc_gpudirect : bool;
}

val default_gpu_cluster : gpu_cluster

val multinode_gpu_iteration_time :
  ?cluster:gpu_cluster ->
  global:int * int * int ->
  gpus:int ->
  bytes_per_cell:float ->
  flops_per_cell:float ->
  unit ->
  float

val multinode_gpu_mcells :
  ?cluster:gpu_cluster ->
  global:int * int * int ->
  gpus:int ->
  bytes_per_cell:float ->
  flops_per_cell:float ->
  unit ->
  float

val iteration_time :
  ?node:Machine.cpu_node ->
  ?net:Machine.network ->
  variant:variant ->
  global:int * int * int ->
  ranks:int ->
  unit ->
  float

(** Global throughput in cells/s. *)
val throughput :
  ?node:Machine.cpu_node ->
  ?net:Machine.network ->
  variant:variant ->
  global:int * int * int ->
  ranks:int ->
  unit ->
  float

val mcells :
  ?node:Machine.cpu_node ->
  ?net:Machine.network ->
  variant:variant ->
  global:int * int * int ->
  ranks:int ->
  unit ->
  float

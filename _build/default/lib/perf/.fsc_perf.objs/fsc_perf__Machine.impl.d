lib/perf/machine.ml: Fsc_rt

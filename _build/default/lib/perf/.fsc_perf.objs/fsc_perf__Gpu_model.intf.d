lib/perf/gpu_model.mli: Fsc_rt

lib/perf/net_model.mli: Fsc_rt Machine

lib/perf/net_model.ml: Cpu_model Float Fsc_dmp Fsc_rt Machine

lib/perf/calibrate.ml: Float List Printf String Unix

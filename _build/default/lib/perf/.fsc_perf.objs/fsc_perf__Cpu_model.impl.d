lib/perf/cpu_model.ml: Float Machine

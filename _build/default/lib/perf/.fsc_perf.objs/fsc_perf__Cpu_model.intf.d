lib/perf/cpu_model.mli: Machine

lib/perf/gpu_model.ml: Float Fsc_rt

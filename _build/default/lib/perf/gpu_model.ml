(* V100 timing model for Figure 5: one iteration = kernel roofline plus
   the cost of the data management strategy. All three series execute the
   same cell computation; the entire story is data movement:

   - Stencil (initial): gpu.host_register pages every touched byte across
     PCIe on every launch, with no inter-launch caching (Section 4.3);
   - Stencil (optimised): the bespoke data placement pass keeps arrays
     device-resident, paying PCIe once at start/end;
   - OpenACC + Nvidia: unified memory — resident after first touch but
     with managed-memory stalls that throttle effective bandwidth,
     noticeably for the many-array PW advection kernel. *)

type strategy =
  | Openacc_nvidia
  | Stencil_initial
  | Stencil_optimised

let strategy_name = function
  | Openacc_nvidia -> "OpenACC with Nvidia"
  | Stencil_initial -> "Stencil (initial data approach)"
  | Stencil_optimised -> "Stencil (optimised data approach)"

(* effective device bandwidth under managed memory stalls *)
let unified_effective_bw (spec : Fsc_rt.Gpu_sim.spec) ~arrays =
  (* stalls scale with the number of distinct managed arrays the kernel
     streams (TLB/fault pressure): GS (2 arrays) barely notices, PW
     (6 arrays) suffers badly — matching the paper's profiling *)
  let penalty = 1.0 +. (3.5 *. float_of_int (max 0 (arrays - 2))) in
  spec.Fsc_rt.Gpu_sim.hbm_bw /. penalty

(* seconds for one kernel launch over [cells] cells *)
let iteration_time ?(spec = Fsc_rt.Gpu_sim.v100) ~strategy ~cells
    ~flops_per_cell ~bytes_per_cell ~arrays ~array_bytes () =
  let open Fsc_rt.Gpu_sim in
  let kernel bw =
    spec.launch_latency
    +. Float.max
         (cells *. flops_per_cell /. spec.peak_flops)
         (cells *. bytes_per_cell /. bw)
  in
  match strategy with
  | Stencil_optimised -> kernel spec.hbm_bw
  | Stencil_initial ->
    (* all arrays page in and out every single launch *)
    kernel spec.hbm_bw
    +. (2.0 *. array_bytes /. spec.page_migration_bw)
    +. (2.0 *. float_of_int arrays *. spec.pcie_latency)
  | Openacc_nvidia ->
    spec.unified_stall +. kernel (unified_effective_bw spec ~arrays)

(* One-time transfer cost amortised over the run (optimised approach). *)
let total_time ?spec ~strategy ~cells ~flops_per_cell ~bytes_per_cell
    ~arrays ~array_bytes ~iters () =
  let s = match spec with Some s -> s | None -> Fsc_rt.Gpu_sim.v100 in
  let per_iter =
    iteration_time ~spec:s ~strategy ~cells ~flops_per_cell ~bytes_per_cell
      ~arrays ~array_bytes ()
  in
  let edge =
    match strategy with
    | Stencil_optimised | Openacc_nvidia ->
      2.0 *. array_bytes /. s.Fsc_rt.Gpu_sim.pcie_bw
    | Stencil_initial -> 0.0
  in
  (float_of_int iters *. per_iter) +. edge

let mcells ?spec ~strategy ~cells ~flops_per_cell ~bytes_per_cell ~arrays
    ~array_bytes ~iters () =
  let t =
    total_time ?spec ~strategy ~cells ~flops_per_cell ~bytes_per_cell
      ~arrays ~array_bytes ~iters ()
  in
  cells *. float_of_int iters /. t /. 1.0e6

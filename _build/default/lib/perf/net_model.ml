(* Distributed-memory scaling model for Figure 6: Gauss-Seidel over a 2-D
   decomposition on ARCHER2 (128 ranks per node, Slingshot network).

   Per iteration and rank:  T = T_compute + T_comm + T_sync
   - hand-parallelised (Cray): overlapped sends (cost = max over
     directions), tight per-iteration synchronisation;
   - auto DMP/MPI (stencil): the xDSL dialects post the four halo
     messages back-to-back without overlap and add a per-swap bookkeeping
     cost, and the baseline compute rate is the stencil pipeline's —
     matching the paper's two reasons why the hand version wins. *)

type variant =
  | Hand_cray
  | Auto_dmp

let variant_name = function
  | Hand_cray -> "Hand parallelised"
  | Auto_dmp -> "Stencil automatic parallelisation"

(* effective network share per rank: ranks on a node share injection
   bandwidth *)
let rank_bandwidth (net : Machine.network) ~ranks_per_node =
  net.Machine.bandwidth /. float_of_int (max 1 ranks_per_node)

let iteration_time ?(node = Machine.archer2_node)
    ?(net = Machine.slingshot) ~variant ~global ~ranks () =
  let nx, ny, nz = global in
  let d = Fsc_dmp.Decomp.create ~global ~ranks in
  ignore (nx, ny, nz);
  (* worst-case (interior) rank *)
  let lx, ly, lz = Fsc_dmp.Decomp.local_extents d 0 in
  let local_cells = float_of_int (lx * ly * lz) in
  let pipe =
    match variant with
    | Hand_cray -> Cpu_model.Cray
    | Auto_dmp -> Cpu_model.Stencil_opt
  in
  (* each rank is one core; a full node's worth of ranks shares the
     node's bandwidth, so per-rank throughput is the 128-thread value
     divided by 128 *)
  let node_rate =
    Cpu_model.throughput ~node ~bench:Cpu_model.Gauss_seidel ~pipe
      ~threads:node.Machine.cores ()
  in
  let per_rank_rate = node_rate /. float_of_int node.Machine.cores in
  let t_compute = local_cells /. per_rank_rate in
  (* halo messages: two dims, two directions *)
  let bw = rank_bandwidth net ~ranks_per_node:node.Machine.cores in
  let msg_bytes_y = float_of_int (8 * (lx + 2) * (lz + 2)) in
  let msg_bytes_z = float_of_int (8 * (lx + 2) * (ly + 2)) in
  let msg t_bytes = net.Machine.latency +. (t_bytes /. bw) in
  let t_comm =
    match variant with
    | Hand_cray ->
      (* overlapped isend/irecv: pay the largest direction plus one
         synchronisation latency *)
      Float.max (msg msg_bytes_y) (msg msg_bytes_z) +. net.Machine.latency
    | Auto_dmp ->
      (* four serialized blocking exchanges + per-swap dialect overhead *)
      (2.0 *. msg msg_bytes_y) +. (2.0 *. msg msg_bytes_z)
      +. (4.0 *. 6.0e-6)
  in
  (* per-iteration global synchronisation grows with log(ranks) *)
  let sync_base =
    match variant with Hand_cray -> 1.5e-6 | Auto_dmp -> 4.0e-6
  in
  let t_sync = sync_base *. Float.log2 (float_of_int (max 2 ranks)) in
  t_compute +. t_comm +. t_sync

(* ------------------------------------------------------------------ *)
(* Future work (paper Section 6, fifth item): multinode GPU execution,
   combining the DMP distributed decomposition with per-node GPU
   kernels, optionally over NVLink-class interconnect. One rank per GPU;
   halos move device -> host -> network -> host -> device unless
   GPUDirect-style transfer is enabled. *)

type gpu_cluster = {
  gc_gpu : Fsc_rt.Gpu_sim.spec;
  gc_net : Machine.network;
  gc_gpudirect : bool; (* skip the host staging copies *)
}

let default_gpu_cluster =
  { gc_gpu = Fsc_rt.Gpu_sim.v100; gc_net = Machine.slingshot;
    gc_gpudirect = false }

let multinode_gpu_iteration_time ?(cluster = default_gpu_cluster) ~global
    ~gpus ~bytes_per_cell ~flops_per_cell () =
  let open Fsc_rt.Gpu_sim in
  let d = Fsc_dmp.Decomp.create ~global ~ranks:gpus in
  let lx, ly, lz = Fsc_dmp.Decomp.local_extents d 0 in
  let local_cells = float_of_int (lx * ly * lz) in
  let spec = cluster.gc_gpu in
  let t_kernel =
    spec.launch_latency
    +. Float.max
         (local_cells *. flops_per_cell /. spec.peak_flops)
         (local_cells *. bytes_per_cell /. spec.hbm_bw)
  in
  let halo_bytes = float_of_int (Fsc_dmp.Decomp.halo_bytes d 0) in
  let t_net =
    cluster.gc_net.Machine.latency
    +. (halo_bytes /. cluster.gc_net.Machine.bandwidth)
  in
  let t_staging =
    if cluster.gc_gpudirect then 0.0
    else 2.0 *. (spec.pcie_latency +. (halo_bytes /. spec.pcie_bw))
  in
  t_kernel +. t_net +. t_staging

let multinode_gpu_mcells ?cluster ~global ~gpus ~bytes_per_cell
    ~flops_per_cell () =
  let nx, ny, nz = global in
  let cells = float_of_int nx *. float_of_int ny *. float_of_int nz in
  cells
  /. multinode_gpu_iteration_time ?cluster ~global ~gpus ~bytes_per_cell
       ~flops_per_cell ()
  /. 1.0e6

(* Global throughput in cells/s. *)
let throughput ?node ?net ~variant ~global ~ranks () =
  let nx, ny, nz = global in
  let cells = float_of_int nx *. float_of_int ny *. float_of_int nz in
  cells /. iteration_time ?node ?net ~variant ~global ~ranks ()

let mcells ?node ?net ~variant ~global ~ranks () =
  throughput ?node ?net ~variant ~global ~ranks () /. 1.0e6

(** V100 timing model for the paper's Figure 5: one iteration = kernel
    roofline plus the cost of the data-management strategy. All three
    series run the same computation; the entire story is data movement. *)

type strategy =
  | Openacc_nvidia  (** unified memory: resident after first touch, but
                        managed-memory stalls throttle effective
                        bandwidth — badly for many-array kernels *)
  | Stencil_initial  (** [gpu.host_register]: pages every byte over PCIe
                         on every launch, no inter-launch caching *)
  | Stencil_optimised  (** the bespoke data-placement pass: one transfer
                           each way, device-resident in between *)

val strategy_name : strategy -> string

(** Effective bandwidth under managed-memory stalls, as a function of how
    many distinct managed arrays the kernel streams. *)
val unified_effective_bw : Fsc_rt.Gpu_sim.spec -> arrays:int -> float

(** Seconds for one kernel launch. *)
val iteration_time :
  ?spec:Fsc_rt.Gpu_sim.spec ->
  strategy:strategy ->
  cells:float ->
  flops_per_cell:float ->
  bytes_per_cell:float ->
  arrays:int ->
  array_bytes:float ->
  unit ->
  float

(** Total run time over [iters] timesteps, including the one-time edge
    transfers of the resident strategies. *)
val total_time :
  ?spec:Fsc_rt.Gpu_sim.spec ->
  strategy:strategy ->
  cells:float ->
  flops_per_cell:float ->
  bytes_per_cell:float ->
  arrays:int ->
  array_bytes:float ->
  iters:int ->
  unit ->
  float

val mcells :
  ?spec:Fsc_rt.Gpu_sim.spec ->
  strategy:strategy ->
  cells:float ->
  flops_per_cell:float ->
  bytes_per_cell:float ->
  arrays:int ->
  array_bytes:float ->
  iters:int ->
  unit ->
  float

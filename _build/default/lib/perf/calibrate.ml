(* Calibration: measure the *real* throughput of this substrate's three
   execution tiers on a small grid, so benchmark reports can print the
   measured numbers alongside the machine-model extrapolations and the
   ratio between them. The measured ordering (vendor > compiled stencil >
   interpreter) is the substrate's ground truth for the paper's
   qualitative claim; the model supplies paper-scale magnitudes. *)

type measurement = {
  m_label : string;
  m_cells : float;
  m_seconds : float;
}

let mcells m = m.m_cells /. m.m_seconds /. 1.0e6

let time ~label ~cells f =
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  { m_label = label; m_cells = cells; m_seconds = Float.max dt 1e-9 }

(* Measure with enough repetitions to pass [min_seconds]. [f] runs one
   iteration over [cells_per_iter] cells. *)
let measure ~label ~cells_per_iter ?(min_seconds = 0.2) f =
  (* warm-up *)
  f ();
  let reps = ref 0 in
  let t0 = Unix.gettimeofday () in
  let rec go () =
    f ();
    incr reps;
    if Unix.gettimeofday () -. t0 < min_seconds then go ()
  in
  go ();
  let dt = Unix.gettimeofday () -. t0 in
  { m_label = label;
    m_cells = cells_per_iter *. float_of_int !reps;
    m_seconds = dt }

let report ms =
  String.concat "\n"
    (List.map
       (fun m ->
         Printf.sprintf "  %-40s %10.2f MCells/s" m.m_label (mcells m))
       ms)

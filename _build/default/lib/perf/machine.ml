(* Machine descriptions for the paper's two systems (Section 4.1).
   Numbers are public specifications plus calibrated effective rates; the
   models below only claim to reproduce the *shape* of the paper's
   figures (who wins, by what factor, where the crossovers are). *)

type cpu_node = {
  cn_name : string;
  cores : int;
  numa_regions : int;
  cores_per_numa : int;
  (* peak double-precision flop/s of one core *)
  core_flops : float;
  (* sustained memory bandwidth of one NUMA region (bytes/s) *)
  numa_bw : float;
  (* sustained single-core streaming bandwidth cap (bytes/s) *)
  core_bw : float;
}

(* ARCHER2: HPE Cray EX, dual AMD EPYC 7742 (Rome), 128 cores/node,
   8 NUMA regions of 16 cores. *)
let archer2_node =
  { cn_name = "ARCHER2 (2x AMD EPYC 7742)"; cores = 128; numa_regions = 8;
    cores_per_numa = 16;
    core_flops = 36.0e9 (* 2.25 GHz x 16 dp flops/cycle *);
    numa_bw = 48.0e9; core_bw = 15.0e9 }

type network = {
  nw_name : string;
  latency : float;       (* s per message *)
  bandwidth : float;     (* bytes/s per node (injection) *)
}

(* HPE Cray Slingshot: 2 x 100 Gbps bidirectional per node. *)
let slingshot = { nw_name = "Slingshot"; latency = 2.0e-6;
                  bandwidth = 25.0e9 }

(* Cirrus GPU node: V100 spec lives in Fsc_rt.Gpu_sim.v100. *)
let cirrus_gpu = Fsc_rt.Gpu_sim.v100

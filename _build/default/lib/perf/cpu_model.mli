(** CPU roofline model for the three compiler pipelines of the paper's
    Figures 2–4.

    Each (pipeline, benchmark) pair is characterised by a compute
    efficiency (the fraction of peak core flops the generated code
    sustains — vectorisation quality, Cray's strength) and effective
    bytes moved per grid cell (fusion and streaming quality — the stencil
    pipeline's strength on PW advection, where merging the three loop
    nests cuts traffic in half). Throughput at [t] threads is
    [min(t * compute_rate, BW(t) / bytes_per_cell)] with [BW] from spread
    thread placement over the node's NUMA regions — which is exactly the
    mechanism that makes the fused stencil overtake hand-written OpenMP
    at 64 threads in Figure 4. *)

type pipeline =
  | Cray  (** the proprietary Cray Compilation Environment *)
  | Flang_only  (** FIR straight to LLVM-IR, no stencil optimisation *)
  | Stencil_opt  (** the paper's stencil pipeline *)

type benchmark =
  | Gauss_seidel  (** 7-point, 6 flops/cell, sweep + copy-back *)
  | Pw_advection  (** 63 flops/cell, 3 nests (fused by the stencil flow) *)

val pipeline_name : pipeline -> string
val benchmark_name : benchmark -> string
val flops_per_cell : benchmark -> float

(** Fraction of peak core flops sustained. *)
val efficiency : benchmark -> pipeline -> float

(** Effective DRAM bytes per grid cell. *)
val bytes_per_cell : benchmark -> pipeline -> float

(** Aggregate bandwidth at [t] threads (spread placement). *)
val bandwidth : Machine.cpu_node -> int -> float

(** Fork/join + barrier overhead factor. *)
val parallel_overhead : pipeline -> int -> float

(** Cells/s. *)
val throughput :
  ?node:Machine.cpu_node ->
  bench:benchmark ->
  pipe:pipeline ->
  threads:int ->
  unit ->
  float

(** MCells/s, the paper's reporting unit. *)
val mcells :
  ?node:Machine.cpu_node ->
  bench:benchmark ->
  pipe:pipeline ->
  threads:int ->
  unit ->
  float

(** convert-scf-to-openmp: rewrites top-level [scf.parallel] loops into
    [omp.parallel { omp.wsloop }] — how the paper auto-parallelises
    unchanged serial Fortran for the Figure 3/4 experiments. *)

open Fsc_ir

(** Convert every top-level [scf.parallel]; returns how many. *)
val run : ?num_threads:int -> Op.op -> int

val pass : Pass.t

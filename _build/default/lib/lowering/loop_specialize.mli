(** scf-(parallel-)loop-specialization: marks innermost constant-bound
    [scf.for] loops as specialised so the backend can emit a vectorised /
    unrolled body. In real MLIR this clones loops into constant-trip
    variants feeding the vectoriser; in this substrate the kernel
    compiler honours the annotation with bounds-check-free accesses and a
    4x-unrolled fast path — the measured single-core edge of the
    "Stencil" series over "Flang only" in Figure 2. *)

open Fsc_ir

(** Annotate; returns how many loops were specialised. *)
val run : ?vector_width:int -> Op.op -> int

val pass : Pass.t

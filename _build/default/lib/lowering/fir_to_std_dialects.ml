(* FIR -> standard dialects: the paper's fourth further-work item.

   "We believe that it would be worth exploring the potential of lowering
   FIR into the standard MLIR dialects rather than directly to LLVM-IR.
   This could reduce the maintenance burden ... and would also aid in
   bringing additional dialects into the Flang ecosystem." (Section 6)

   This pass translates a FIR module into scf/memref/arith/math/func:

   - fir.alloca of a scalar        -> memref.alloca of memref<1xT>
   - fir.alloca/allocmem of arrays -> memref.alloca / memref.alloc
   - the heap pointer cell         -> store-forwarded away (mem2reg-lite:
     flow-sensitive forwarding is sound in this structured IR because a
     store textually dominates the loads it feeds)
   - fir.coordinate_of + load/store -> memref.load / memref.store
   - fir.do_loop                   -> scf.for (exclusive upper bound)
   - fir.if / fir.result           -> scf.if / scf.yield
   - fir.convert                   -> arith casts; reference-to-pointer
     conversions at kernel-call boundaries become
     builtin.unrealized_conversion_cast (memref -> !llvm.ptr)
   - fir.no_reassoc                -> dropped
   - fir.call                      -> func.call

   fir.print (list-directed I/O) has no standard-dialect equivalent and
   is kept; everything computational leaves the fir dialect. Functions
   using constructs outside this set (fir.iterate_while, escaping element
   references) are copied unchanged and reported. *)

open Fsc_ir
module Arith = Fsc_dialects.Arith
module Scf = Fsc_dialects.Scf
module Memref = Fsc_dialects.Memref
module Func = Fsc_dialects.Func

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

(* how a FIR value is represented after translation *)
type repr =
  | Direct of Op.value (* scalar SSA value, or a memref for arrays *)
  | Scalar_cell of Op.value (* memref<1xT> holding a mutable scalar *)
  | Heap_cell of Op.value option ref (* forwarded allocmem result *)
  | Elem of Op.value * Op.value list (* memref + indices, from coordinate_of *)

type env = {
  mutable reprs : (int, repr) Hashtbl.t;
}

let lookup env (v : Op.value) =
  match Hashtbl.find_opt env.reprs v.Op.v_id with
  | Some r -> r
  | None -> unsupported "untranslated value %%#%d" v.Op.v_id

let direct env v =
  match lookup env v with
  | Direct d -> d
  | Scalar_cell _ | Heap_cell _ | Elem _ ->
    unsupported "reference used as a value"

let memref_elem_type t =
  match t with
  | Types.Fir_array (dims, elem) ->
    Types.Memref (dims, elem)
  | t when Types.is_scalar t -> Types.Memref ([ Types.Static 1 ], t)
  | t -> unsupported "cannot lower allocation of %s" (Types.to_string t)

let rec translate_block env b block =
  List.iter (fun op -> translate_op env b op) (Op.block_ops block)

and bind env (old : Op.value) repr = Hashtbl.replace env.reprs old.Op.v_id repr

and translate_op env b (op : Op.op) =
  let operand i = Op.operand ~index:i op in
  (* keep the Fortran variable name so drivers/tests can find grids *)
  let name_attrs () =
    match Op.attr op "bindc_name" with
    | Some a -> [ ("bindc_name", a) ]
    | None -> []
  in
  match op.Op.o_name with
  | "fir.alloca" -> (
    match Op.attr_exn op "in_type" with
    | Attr.Type_a (Types.Fir_array _ as t) ->
      let mr =
        Builder.op1 b "memref.alloca" ~results:[ memref_elem_type t ]
          ~attrs:(name_attrs ())
      in
      bind env (Op.result op) (Direct mr)
    | Attr.Type_a (Types.Fir_heap _) ->
      bind env (Op.result op) (Heap_cell (ref None))
    | Attr.Type_a t when Types.is_scalar t ->
      let mr =
        Builder.op1 b "memref.alloca" ~results:[ memref_elem_type t ]
      in
      bind env (Op.result op) (Scalar_cell mr)
    | _ -> unsupported "fir.alloca shape")
  | "fir.allocmem" -> (
    match Op.attr_exn op "in_type" with
    | Attr.Type_a (Types.Fir_array _ as t) ->
      let mr =
        Builder.op1 b "memref.alloc" ~results:[ memref_elem_type t ]
          ~attrs:(name_attrs ())
      in
      bind env (Op.result op) (Direct mr)
    | _ -> unsupported "fir.allocmem shape")
  | "fir.freemem" -> Memref.dealloc b (direct env (operand 0))
  | "fir.store" -> (
    let target = lookup env (operand 1) in
    match target with
    | Heap_cell slot ->
      (* forward the stored memref; no code emitted *)
      slot := Some (direct env (operand 0))
    | Scalar_cell mr ->
      let zero = Arith.constant_index b 0 in
      Memref.store b (direct env (operand 0)) mr [ zero ]
    | Elem (mr, idxs) -> Memref.store b (direct env (operand 0)) mr idxs
    | Direct _ -> unsupported "store to a non-reference")
  | "fir.load" -> (
    match lookup env (operand 0) with
    | Heap_cell { contents = Some mr } -> bind env (Op.result op) (Direct mr)
    | Heap_cell { contents = None } ->
      unsupported "load of unset heap cell (allocate not seen yet)"
    | Scalar_cell mr ->
      let zero = Arith.constant_index b 0 in
      bind env (Op.result op) (Direct (Memref.load b mr [ zero ]))
    | Elem (mr, idxs) ->
      bind env (Op.result op) (Direct (Memref.load b mr idxs))
    | Direct mr ->
      (* loading a dummy-argument reference: scalars arrive as
         memref<1xT> (by-reference) *)
      (match Op.value_type mr with
      | Types.Memref ([ Types.Static 1 ], _) ->
        let zero = Arith.constant_index b 0 in
        bind env (Op.result op) (Direct (Memref.load b mr [ zero ]))
      | _ -> bind env (Op.result op) (Direct mr)))
  | "fir.coordinate_of" ->
    let base =
      match lookup env (operand 0) with
      | Direct mr -> mr
      | Heap_cell { contents = Some mr } -> mr
      | _ -> unsupported "coordinate_of base"
    in
    let idxs =
      List.init (Op.num_operands op - 1) (fun i -> direct env (operand (i + 1)))
    in
    (* element references must be consumed by load/store only *)
    List.iter
      (fun (u : Op.use) ->
        match u.Op.u_op.Op.o_name with
        | "fir.load" | "fir.store" -> ()
        | name -> unsupported "element reference escapes into %s" name)
      (Op.result op).Op.v_uses;
    bind env (Op.result op) (Elem (base, idxs))
  | "fir.convert" -> (
    let from_t = Op.value_type (operand 0) in
    let to_t = Op.value_type (Op.result op) in
    match (from_t, to_t) with
    | _, Types.Fir_llvm_ptr _ | _, Types.Llvm_ptr ->
      (* reference -> pointer at a kernel-call boundary *)
      let mr =
        match lookup env (operand 0) with
        | Direct mr -> mr
        | Heap_cell { contents = Some mr } -> mr
        | _ -> unsupported "pointer conversion of non-array"
      in
      bind env (Op.result op)
        (Direct
           (Builder.op1 b "builtin.unrealized_conversion_cast"
              ~operands:[ mr ] ~results:[ Types.Llvm_ptr ]))
    | _ ->
      let v = direct env (operand 0) in
      bind env (Op.result op)
        (Direct (Fsc_core.Fir_to_std.std_convert b v to_t)))
  | "fir.no_reassoc" ->
    bind env (Op.result op) (Direct (direct env (operand 0)))
  | "fir.do_loop" ->
    let lb = direct env (operand 0) in
    let ub = direct env (operand 1) in
    let step = direct env (operand 2) in
    if Op.num_operands op > 3 then unsupported "do_loop iter_args";
    let one = Arith.constant_index b 1 in
    let ub_excl =
      Builder.op1 b "arith.addi" ~operands:[ ub; one ]
        ~results:[ Types.Index ]
    in
    let body = Fsc_fir.Fir.do_loop_body op in
    ignore
      (Scf.for_ b ~lb ~ub:ub_excl ~step (fun inner iv _ ->
           bind env (Op.block_arg ~index:0 body) (Direct iv);
           translate_block env inner body;
           []))
  | "fir.if" ->
    let cond = direct env (operand 0) in
    let then_region = Op.region ~index:0 op in
    let else_fn =
      if Array.length op.Op.o_regions > 1 then
        Some
          (fun eb ->
            translate_block env eb
              (List.hd (Op.region ~index:1 op).Op.g_blocks))
      else None
    in
    ignore
      (Scf.if_ b cond ?else_:else_fn (fun tb ->
           translate_block env tb (List.hd then_region.Op.g_blocks)))
  | "fir.result" ->
    if Op.num_operands op > 0 then unsupported "fir.result with values"
  | "fir.call" ->
    let args =
      List.map
        (fun (v : Op.value) ->
          match lookup env v with
          | Direct d -> d
          | Scalar_cell mr -> mr
          | Heap_cell { contents = Some mr } -> mr
          | _ -> unsupported "call argument")
        (Op.operands op)
    in
    let call =
      Func.call b
        ~callee:(Op.string_attr op "callee")
        ~results:(List.map Op.value_type (Op.results op))
        args
    in
    List.iteri
      (fun i (r : Op.value) ->
        bind env r (Direct (Op.result ~index:i call)))
      (Op.results op)
  | "fir.print" ->
    (* list-directed I/O has no standard equivalent; keep it *)
    let operands = List.map (fun v -> direct env v) (Op.operands op) in
    ignore (Builder.op b "fir.print" ~operands ~attrs:op.Op.o_attrs)
  | "func.return" ->
    Func.return_ b (List.map (fun v -> direct env v) (Op.operands op))
  | "fir.exit" | "fir.cycle" | "fir.iterate_while" ->
    unsupported "%s has no scf lowering here" op.Op.o_name
  | name when Dialect.dialect_of_op_name name = "arith"
              || Dialect.dialect_of_op_name name = "math" ->
    let operands = List.map (fun v -> direct env v) (Op.operands op) in
    let c =
      Builder.op b name ~operands
        ~results:(List.map Op.value_type (Op.results op))
        ~attrs:op.Op.o_attrs
    in
    List.iteri
      (fun i (r : Op.value) -> bind env r (Direct (Op.result ~index:i c)))
      (Op.results op)
  | name -> unsupported "no standard lowering for %s" name

(* FIR reference argument types become memrefs. *)
let translate_arg_type t =
  match t with
  | Types.Fir_ref (Types.Fir_array (dims, elem)) -> Types.Memref (dims, elem)
  | Types.Fir_ref s when Types.is_scalar s ->
    Types.Memref ([ Types.Static 1 ], s)
  | t -> t

let translate_func f =
  let args, results = Func.signature f in
  let new_args = List.map translate_arg_type args in
  let env = { reprs = Hashtbl.create 64 } in
  Func.func
    ~name:(Func.name f)
    ~attrs:(List.remove_assoc "function_type"
              (List.remove_assoc "sym_name" f.Op.o_attrs))
    ~args:new_args ~results
    (fun b new_vals ->
      let entry = Func.entry_block f in
      List.iteri
        (fun i (old : Op.value) ->
          let nv = List.nth new_vals i in
          match Op.value_type old with
          | Types.Fir_ref (Types.Fir_array _) -> bind env old (Direct nv)
          | Types.Fir_ref s when Types.is_scalar s ->
            bind env old (Scalar_cell nv)
          | _ -> bind env old (Direct nv))
        (Op.block_args entry);
      translate_block env b entry)

type result = {
  lowered : Op.op; (* the new module *)
  skipped : (string * string) list; (* function, reason *)
}

(* Translate every function of [m] into a fresh module. Functions outside
   the supported set are cloned unchanged and reported. *)
let run m =
  let out = Op.create_module () in
  let blk = Op.module_block out in
  let skipped = ref [] in
  List.iter
    (fun f ->
      match translate_func f with
      | nf -> Op.append_to blk nf
      | exception Unsupported reason ->
        skipped := (Func.name f, reason) :: !skipped;
        Op.append_to blk (Op.clone f))
    (Func.all_functions m);
  { lowered = out; skipped = List.rev !skipped }

let pass =
  Pass.create "fir-to-std-dialects" (fun _ ->
      (* module-replacing transform: use [run] directly *)
      ())

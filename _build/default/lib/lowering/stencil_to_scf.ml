(* Lowering of the stencil dialect to scf loops over memrefs — the xDSL
   "stencil lowering" box of the paper's Figure 1. One source, two modes
   (Section 3): for CPU the outermost loop becomes scf.parallel and inner
   loops scf.for; for GPU the whole iteration space is coalesced into a
   single multi-dimensional scf.parallel ready for block/thread mapping.

   Dimension order: dim 0 is the contiguous (Fortran-first) dimension, so
   loops are emitted outermost = highest dimension, innermost = dim 0. *)

open Fsc_ir
module Stencil = Fsc_stencil.Stencil
module Arith = Fsc_dialects.Arith
module Scf = Fsc_dialects.Scf
module Memref = Fsc_dialects.Memref

type mode =
  | Cpu
  | Gpu

(* The memref behind a field/temp value, following external_load/load. *)
let rec backing_memref (v : Op.value) =
  match Op.defining_op v with
  | Some op when op.Op.o_name = "stencil.external_load" -> Op.operand op
  | Some op when op.Op.o_name = "stencil.load" ->
    backing_memref (Op.operand op)
  | Some op when op.Op.o_name = "stencil.cast" ->
    backing_memref (Op.operand op)
  | _ -> invalid_arg "Stencil_to_scf.backing_memref"

(* Stores consuming the results of [apply]: (result index, store op). *)
let stores_of_apply apply =
  List.concat
    (List.mapi
       (fun i (r : Op.value) ->
         List.filter_map
           (fun (u : Op.use) ->
             if Stencil.is_store u.Op.u_op then Some (i, u.Op.u_op)
             else None)
           r.Op.v_uses)
       (Op.results apply))

(* Emit the computation for one grid cell: clone the apply body with
   stencil ops rewritten to memref accesses at [idxs] (absolute cell
   position, ordered by dimension). *)
let lower_cell b apply ~idxs ~stores =
  let body = Stencil.apply_body apply in
  let args = Op.block_args body in
  let mapping : (int, Op.value) Hashtbl.t = Hashtbl.create 32 in
  (* apply operands: temps map to their memref, scalars map through *)
  List.iteri
    (fun i (arg : Op.value) ->
      let input = Op.operand ~index:i apply in
      match Op.value_type input with
      | Types.Stencil_temp _ | Types.Stencil_field _ ->
        Hashtbl.replace mapping arg.Op.v_id (backing_memref input)
      | _ -> Hashtbl.replace mapping arg.Op.v_id input)
    args;
  let lookup (v : Op.value) =
    match Hashtbl.find_opt mapping v.Op.v_id with
    | Some v' -> v'
    | None -> v
  in
  let offset_index d off =
    let base = List.nth idxs d in
    if off = 0 then base
    else begin
      let c = Arith.constant_index b off in
      Builder.op1 b "arith.addi" ~operands:[ base; c ]
        ~results:[ Types.Index ]
    end
  in
  List.iter
    (fun op ->
      match op.Op.o_name with
      | "stencil.access" ->
        let mr = lookup (Op.operand op) in
        let offsets = Stencil.access_offset op in
        let indices = List.mapi offset_index offsets in
        let v = Memref.load b mr indices in
        Hashtbl.replace mapping (Op.result op).Op.v_id v
      | "stencil.index" ->
        let d = Attr.as_int (Op.attr_exn op "dim") in
        Hashtbl.replace mapping (Op.result op).Op.v_id (List.nth idxs d)
      | "stencil.return" ->
        let values = List.map lookup (Op.operands op) in
        List.iter
          (fun (result_idx, store_op) ->
            let out_mr = backing_memref (Op.operand ~index:1 store_op) in
            Memref.store b (List.nth values result_idx) out_mr idxs)
          stores
      | _ ->
        let c = Op.clone ~mapping op in
        ignore (Builder.insert b c);
        Array.iteri
          (fun i (r : Op.value) ->
            Hashtbl.replace mapping r.Op.v_id c.Op.o_results.(i))
          op.Op.o_results)
    (Op.block_ops body)

(* Lower one apply (plus its stores) to loops inserted before it. *)
let lower_apply ~mode apply =
  let stores = stores_of_apply apply in
  if stores = [] then invalid_arg "Stencil_to_scf: apply without store";
  let lb, ub = Stencil.store_bounds (snd (List.hd stores)) in
  let rank = List.length lb in
  let b = Builder.before apply in
  let lbs = List.map (Arith.constant_index b) lb in
  (* scf loop bounds are exclusive *)
  let ubs = List.map (fun u -> Arith.constant_index b (u + 1)) ub in
  let step = Arith.constant_index b 1 in
  (match mode with
  | Gpu ->
    (* one coalesced scf.parallel over every dimension, outermost dim
       first so dim 0 stays fastest-varying *)
    let order = List.init rank (fun i -> rank - 1 - i) in
    let sel xs = List.map (List.nth xs) order in
    ignore
      (Scf.parallel b ~lbs:(sel lbs) ~ubs:(sel ubs)
         ~steps:(List.map (fun _ -> step) order)
         (fun inner ivs ->
           (* ivs arrive outermost-first; rebuild dimension order *)
           let idxs =
             List.init rank (fun d ->
                 List.nth ivs (rank - 1 - d))
           in
           lower_cell inner apply ~idxs ~stores))
  | Cpu ->
    (* outermost dimension parallel, inner dimensions serial *)
    let outer_d = rank - 1 in
    ignore
      (Scf.parallel b
         ~lbs:[ List.nth lbs outer_d ]
         ~ubs:[ List.nth ubs outer_d ]
         ~steps:[ step ]
         (fun pb pivs ->
           let outer_iv = List.hd pivs in
           (* nested scf.for from dim rank-2 down to dim 0 *)
           let rec nest bld d idxs_acc =
             if d < 0 then
               lower_cell bld apply ~idxs:idxs_acc ~stores
             else begin
               let lb_d = List.nth lbs d and ub_d = List.nth ubs d in
               ignore
                 (Scf.for_ bld ~lb:lb_d ~ub:ub_d ~step (fun fb iv _ ->
                      nest fb (d - 1) (replace_nth idxs_acc d iv);
                      []))
             end
           and replace_nth xs i v = List.mapi (fun j x -> if j = i then v else x) xs
           in
           let init_idxs =
             List.init rank (fun d ->
                 if d = outer_d then outer_iv else outer_iv (* placeholder *))
           in
           nest pb (rank - 2) init_idxs)));
  (* erase the stencil ops this apply involved *)
  List.iter (fun (_, s) -> Op.erase s) stores;
  List.iter
    (fun (r : Op.value) ->
      if Op.has_uses r then
        invalid_arg "Stencil_to_scf: apply result has non-store use")
    (Op.results apply);
  Op.erase apply

(* Remove now-dead stencil plumbing (external_load/load/cast). *)
let cleanup func =
  let rec sweep () =
    let removed = ref false in
    Op.walk_inner
      (fun op ->
        if
          List.mem op.Op.o_name
            [ "stencil.external_load"; "stencil.load"; "stencil.cast" ]
          && (not (List.exists Op.has_uses (Op.results op)))
          && Op.parent_block op <> None
        then begin
          Op.erase op;
          removed := true
        end)
      func;
    if !removed then sweep ()
  in
  sweep ()

let run ~mode m =
  Op.walk
    (fun op ->
      if op.Op.o_name = "func.func" then begin
        let applies = Op.collect_ops Stencil.is_apply op in
        List.iter (lower_apply ~mode) applies;
        cleanup op
      end)
    m

let pass ~mode =
  let name =
    match mode with
    | Cpu -> "stencil-to-scf{cpu}"
    | Gpu -> "stencil-to-scf{gpu}"
  in
  Pass.create name (fun m -> run ~mode m)

lib/lowering/gpu_pipeline.mli: Fsc_ir Op Pass

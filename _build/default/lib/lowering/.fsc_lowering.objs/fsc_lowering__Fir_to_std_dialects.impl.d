lib/lowering/fir_to_std_dialects.ml: Array Attr Builder Dialect Fsc_core Fsc_dialects Fsc_fir Fsc_ir Hashtbl List Op Pass Printf Types

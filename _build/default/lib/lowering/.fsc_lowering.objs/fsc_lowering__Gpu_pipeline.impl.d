lib/lowering/gpu_pipeline.ml: Fsc_ir Fsc_transforms List Loop_tiling Op Parallel_to_gpu Pass

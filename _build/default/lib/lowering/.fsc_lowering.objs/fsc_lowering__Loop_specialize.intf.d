lib/lowering/loop_specialize.mli: Fsc_ir Op Pass

lib/lowering/loop_tiling.ml: Attr Builder Fsc_dialects Fsc_ir Hashtbl List Op Pass Printf String Types

lib/lowering/scf_to_openmp.mli: Fsc_ir Op Pass

lib/lowering/loop_tiling.mli: Fsc_ir Op Pass

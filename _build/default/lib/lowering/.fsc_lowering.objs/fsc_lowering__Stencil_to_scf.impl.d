lib/lowering/stencil_to_scf.ml: Array Attr Builder Fsc_dialects Fsc_ir Fsc_stencil Hashtbl List Op Pass Types

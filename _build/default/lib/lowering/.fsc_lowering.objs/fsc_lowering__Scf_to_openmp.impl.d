lib/lowering/scf_to_openmp.ml: Builder Fsc_dialects Fsc_ir Hashtbl List Op Pass

lib/lowering/fir_to_std_dialects.mli: Fsc_ir Op Pass

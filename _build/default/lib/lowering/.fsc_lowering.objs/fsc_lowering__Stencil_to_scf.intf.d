lib/lowering/stencil_to_scf.mli: Fsc_ir Op Pass

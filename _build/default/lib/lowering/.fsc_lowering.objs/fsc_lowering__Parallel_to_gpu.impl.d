lib/lowering/parallel_to_gpu.ml: Array Attr Builder Fsc_dialects Fsc_ir Hashtbl List Op Pass Printf Types

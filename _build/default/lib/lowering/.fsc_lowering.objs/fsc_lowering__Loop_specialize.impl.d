lib/lowering/loop_specialize.ml: Attr Fsc_ir Op Pass

(** Lowering of the stencil dialect to scf loops over memrefs — the xDSL
    "stencil lowering" box of the paper's Figure 1. One source, two modes
    (Section 3): for CPU the outermost loop becomes [scf.parallel] and
    inner loops [scf.for]; for GPU the whole iteration space is coalesced
    into a single multi-dimensional [scf.parallel] ready for block/thread
    mapping. Dimension 0 (the Fortran-contiguous one) always ends up
    fastest-varying. *)

open Fsc_ir

type mode =
  | Cpu
  | Gpu

(** The memref behind a field/temp value (follows
    external_load/load/cast chains). *)
val backing_memref : Op.value -> Op.value

(** Lower every [stencil.apply] (plus its stores and plumbing) in every
    function of the module, in place. *)
val run : mode:mode -> Op.op -> unit

val pass : mode:mode -> Pass.t

(* convert-scf-to-openmp: rewrites top-level scf.parallel loops into
   omp.parallel { omp.wsloop } — this is how the paper auto-parallelises
   unchanged serial Fortran for the Figure 3/4 experiments. *)

open Fsc_ir
module Scf = Fsc_dialects.Scf
module Openmp = Fsc_dialects.Openmp

let convert ?num_threads par =
  let lbs, ubs, steps = Scf.parallel_bounds par in
  let body = Scf.body_block par in
  let b = Builder.before par in
  ignore
    (Openmp.parallel b ?num_threads (fun pb ->
         ignore
           (Openmp.wsloop pb ~lbs ~ubs ~steps (fun wb ivs ->
                let mapping = Hashtbl.create 8 in
                List.iteri
                  (fun d (arg : Op.value) ->
                    Hashtbl.replace mapping arg.Op.v_id (List.nth ivs d))
                  (Op.block_args body);
                List.iter
                  (fun op ->
                    if op.Op.o_name <> "scf.yield" then
                      ignore (Builder.insert wb (Op.clone ~mapping op)))
                  (Op.block_ops body)))));
  Op.erase par

let run ?num_threads m =
  let parallels =
    Op.collect_ops
      (fun o ->
        o.Op.o_name = "scf.parallel"
        &&
        match Op.parent_op o with
        | Some p ->
          p.Op.o_name <> "scf.parallel" && p.Op.o_name <> "omp.wsloop"
          && p.Op.o_name <> "omp.parallel"
        | None -> true)
      m
  in
  List.iter (convert ?num_threads) parallels;
  List.length parallels

let pass = Pass.create "convert-scf-to-openmp" (fun m -> ignore (run m))

(* scf-parallel-loop-tiling{parallel-loop-tile-sizes=...}: splits an
   scf.parallel into an outer parallel over tile origins (step = tile
   size) and an inner parallel over intra-tile offsets bounded by
   min(tile, remaining). The paper found GPU performance — and even
   correctness — sensitive to these sizes; 32,32,1 performed well across
   kernels (Section 3). *)

open Fsc_ir
module Arith = Fsc_dialects.Arith
module Scf = Fsc_dialects.Scf

let tile_one ~tile_sizes par =
  let lbs, ubs, steps = Scf.parallel_bounds par in
  let rank = List.length lbs in
  let sizes =
    List.init rank (fun i ->
        if i < List.length tile_sizes then List.nth tile_sizes i else 1)
  in
  let b = Builder.before par in
  let size_consts = List.map (Arith.constant_index b) sizes in
  (* outer: same bounds, step = original step * tile size *)
  let outer_steps =
    List.map2 (fun s c -> Arith.muli b s c) steps size_consts
  in
  let body = Scf.body_block par in
  let outer =
    Scf.parallel b ~lbs ~ubs ~steps:outer_steps (fun ob oivs ->
        (* inner parallel over [0, min(size, ub - oiv)) step original *)
        let inner_ubs =
          List.mapi
            (fun i oiv ->
              let ub = List.nth ubs i and sz = List.nth size_consts i in
              let remaining =
                Builder.op1 ob "arith.subi" ~operands:[ ub; oiv ]
                  ~results:[ Types.Index ]
              in
              Builder.op1 ob "arith.minsi" ~operands:[ sz; remaining ]
                ~results:[ Types.Index ])
            oivs
        in
        let zero = Arith.constant_index ob 0 in
        ignore
          (Scf.parallel ob
             ~lbs:(List.map (fun _ -> zero) oivs)
             ~ubs:inner_ubs ~steps
             (fun ib iivs ->
               (* absolute index = outer + inner *)
               let idxs =
                 List.map2
                   (fun o i ->
                     Builder.op1 ib "arith.addi" ~operands:[ o; i ]
                       ~results:[ Types.Index ])
                   oivs iivs
               in
               (* splice the original body, remapping its ivs *)
               let mapping = Hashtbl.create 8 in
               List.iteri
                 (fun d (arg : Op.value) ->
                   Hashtbl.replace mapping arg.Op.v_id (List.nth idxs d))
                 (Op.block_args body);
               List.iter
                 (fun op ->
                   if op.Op.o_name <> "scf.yield" then begin
                     let c = Op.clone ~mapping op in
                     ignore (Builder.insert ib c)
                   end)
                 (Op.block_ops body))))
  in
  Op.set_attr outer "tiled" Attr.Unit_a;
  Op.set_attr outer "tile_sizes"
    (Attr.Arr_a (List.map (fun s -> Attr.Int_a s) sizes));
  Op.erase par

(* Tiles every *top-level* scf.parallel (not ones already produced by
   tiling). *)
let run ~tile_sizes m =
  let parallels =
    Op.collect_ops
      (fun o ->
        o.Op.o_name = "scf.parallel"
        && (not (Op.has_attr o "tiled"))
        && (match Op.parent_op o with
           | Some p -> p.Op.o_name <> "scf.parallel"
           | None -> true))
      m
  in
  List.iter (tile_one ~tile_sizes) parallels

let pass ~tile_sizes =
  Pass.create
    (Printf.sprintf "scf-parallel-loop-tiling{parallel-loop-tile-sizes=%s}"
       (String.concat "," (List.map string_of_int tile_sizes)))
    (fun m -> run ~tile_sizes m)

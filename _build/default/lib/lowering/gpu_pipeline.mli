(** The full mlir-opt pipeline of the paper's Listing 4, reconstructed
    pass for pass (conversion passes whose representation change the
    interpreter does not need are kept as named marker passes so the
    pipeline reads — and can be misconfigured — like the real one). *)

open Fsc_ir

(** The passes in Listing-4 order. [tile_sizes] defaults to the paper's
    32,32,1. *)
val passes : ?tile_sizes:int list -> unit -> Pass.t list

(** Run the pipeline over a stencil module already lowered to scf (GPU
    mode). [drop] removes passes by name — the failure-injection tests
    use it to reproduce the silent CPU fallback. *)
val run :
  ?tile_sizes:int list -> ?drop:string list -> Op.op -> Pass.stats list

(** The check the paper wishes it had: is GPU target binary actually
    embedded and is there at least one kernel launch? [Error reason] when
    execution would silently stay on the host. *)
val verify_gpu_artifact : Op.op -> (unit, string) result

(* The full mlir-opt pipeline of Listing 4 in the paper, reconstructed
   pass for pass. Conversion passes whose only effect in this substrate
   would be a representation change the interpreter does not need
   (finalize-memref-to-llvm, convert-arith-to-llvm, ...) are kept as named
   marker passes so the pipeline reads — and can be misconfigured — like
   the real one: dropping gpu-map-parallel-loops or gpu-to-cubin produces
   the paper's "silently runs on the CPU" failure, which
   [verify_gpu_artifact] detects. *)

open Fsc_ir

let marker name = Pass.create name (fun _ -> ())

(* Listing 4, in order. [tile_sizes] defaults to the paper's 32,32,1. *)
let passes ?(tile_sizes = [ 32; 32; 1 ]) () =
  [ Fsc_transforms.Math_simplify.simplify_pass;
    Loop_tiling.pass ~tile_sizes;
    Fsc_transforms.Canonicalize.pass;
    Fsc_transforms.Math_simplify.expand_pass;
    Parallel_to_gpu.map_pass;
    Parallel_to_gpu.convert_pass;
    Fsc_transforms.Fold_memref_aliases.pass;
    marker "finalize-memref-to-llvm{index-bitwidth=64 use-opaque-pointers=false}";
    marker "lower-affine";
    Parallel_to_gpu.outline_pass;
    Parallel_to_gpu.async_region_pass;
    Fsc_transforms.Canonicalize.pass;
    marker "convert-arith-to-llvm{index-bitwidth=64}";
    marker "convert-scf-to-cf";
    marker "convert-cf-to-llvm{index-bitwidth=64}";
    marker "convert-gpu-to-nvvm";
    Fsc_transforms.Reconcile_casts.pass;
    Fsc_transforms.Canonicalize.pass;
    Parallel_to_gpu.cubin_pass;
    Fsc_transforms.Fold_memref_aliases.pass;
    marker "gpu-to-llvm{use-opaque-pointers=false}";
    Fsc_transforms.Reconcile_casts.pass ]

(* Run the pipeline over a stencil module already lowered to scf (GPU
   mode). [drop] removes passes by name — used by the failure-injection
   tests to reproduce the silent CPU fallback. *)
let run ?(tile_sizes = [ 32; 32; 1 ]) ?(drop = []) m =
  let ps =
    List.filter
      (fun (p : Pass.t) -> not (List.mem p.Pass.name drop))
      (passes ~tile_sizes ())
  in
  Pass.run_pipeline ~verify_each:false ps m

(* The check the paper wishes it had: is GPU target binary actually
   embedded, and is there at least one kernel launch? Returns Error with
   a reason when execution would silently stay on the host. *)
let verify_gpu_artifact m =
  let has_cubin = ref false in
  let has_launch = ref false in
  let leftover_parallel = ref false in
  Op.walk
    (fun op ->
      if op.Op.o_name = "gpu.module" && Op.has_attr op "cubin" then
        has_cubin := true;
      if op.Op.o_name = "gpu.launch_func" then has_launch := true;
      if op.Op.o_name = "scf.parallel" then leftover_parallel := true)
    m;
  if not !has_launch then
    Error "no gpu.launch_func generated: kernels will run on the CPU"
  else if not !has_cubin then
    Error "gpu.module has no embedded target binary (gpu-to-cubin missing)"
  else if !leftover_parallel then
    Error "scf.parallel left unconverted: part of the work stays on the CPU"
  else Ok ()

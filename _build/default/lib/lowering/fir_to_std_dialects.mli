(** FIR -> standard dialects: the paper's fourth further-work item,
    implemented.

    Translates a FIR module into scf/memref/arith/math/func: allocations
    become memrefs (scalars as [memref<1xT>]), the heap pointer cell is
    store-forwarded away, [fir.coordinate_of]+load/store fuse into memref
    accesses, [fir.do_loop]/[fir.if] become scf, [fir.convert] becomes
    arith casts (reference-to-pointer conversions at kernel-call
    boundaries become [builtin.unrealized_conversion_cast]). [fir.print]
    is kept (no standard I/O equivalent). Functions using constructs
    outside this set are copied unchanged and reported. *)

open Fsc_ir

exception Unsupported of string

type result = {
  lowered : Op.op;  (** a fresh module *)
  skipped : (string * string) list;  (** (function, reason) *)
}

(** Translate every function of the module into a fresh module. *)
val run : Op.op -> result

val pass : Pass.t

(* scf-(parallel-)loop-specialization: marks innermost constant-bound
   scf.for loops as specialised so the backend can emit a vectorised /
   unrolled body. In real MLIR this clones loops into constant-trip
   variants feeding the vectoriser; in this substrate the kernel compiler
   honours the annotation with an unrolled unsafe-access fast path, which
   is what gives the "Stencil" series its single-core edge over
   "Flang only" in Figure 2. *)

open Fsc_ir

let is_innermost_for op =
  op.Op.o_name = "scf.for"
  &&
  let nested = ref false in
  Op.walk_inner
    (fun o ->
      if o.Op.o_name = "scf.for" || o.Op.o_name = "scf.parallel" then
        nested := true)
    op;
  not !nested

let const_of (v : Op.value) =
  match Op.defining_op v with
  | Some op when op.Op.o_name = "arith.constant" -> (
    match Op.attr op "value" with
    | Some (Attr.Int_a n) -> Some n
    | _ -> None)
  | _ -> None

let run ?(vector_width = 4) m =
  let count = ref 0 in
  Op.walk
    (fun op ->
      if is_innermost_for op then begin
        let lb, ub, step =
          ( Op.operand ~index:0 op,
            Op.operand ~index:1 op,
            Op.operand ~index:2 op )
        in
        match (const_of lb, const_of ub, const_of step) with
        | Some _, Some _, Some 1 ->
          Op.set_attr op "specialized" Attr.Unit_a;
          Op.set_attr op "vector_width" (Attr.Int_a vector_width);
          incr count
        | _ -> ()
      end)
    m;
  !count

let pass =
  Pass.create "scf-parallel-loop-specialization" (fun m -> ignore (run m))

(* The stencil dialect of the Open Earth Compiler (Gysi et al., TACO 2021),
   as used by the paper via xDSL.

   Value vocabulary:
   - !stencil.field<[l,h]x...xT>  — storage backing a grid (from a memref);
   - !stencil.temp<[l,h]x...xT>   — a value-semantics snapshot of a field
     region, input/output of stencil.apply;
   - stencil.apply               — the computation: executes its region once
     per output grid cell; stencil.access reads an input temp at a constant
     offset from the current cell; stencil.return yields the cell value.

   Bounds are inclusive on both ends (Listing 2: [-1,255] means indices
   -1..255 are addressable). *)

open Fsc_ir

let d = Dialect.define_dialect "stencil"

let field_type bounds elem = Types.Stencil_field (bounds, elem)
let temp_type bounds elem = Types.Stencil_temp (bounds, elem)

let type_bounds = function
  | Types.Stencil_field (b, _) | Types.Stencil_temp (b, _) -> b
  | t -> invalid_arg ("Stencil.type_bounds: " ^ Types.to_string t)

let type_elem = function
  | Types.Stencil_field (_, t) | Types.Stencil_temp (_, t) -> t
  | t -> invalid_arg ("Stencil.type_elem: " ^ Types.to_string t)

let () =
  Dialect.define_op d "external_load" ~num_operands:1 ~num_results:1
    ~verify:(fun op ->
      match Op.value_type (Op.result op) with
      | Types.Stencil_field _ -> Ok ()
      | _ -> Error "stencil.external_load must produce a field");
  Dialect.define_op d "external_store" ~num_operands:2 ~num_results:0;
  Dialect.define_op d "cast" ~num_operands:1 ~num_results:1 ~pure:true;
  Dialect.define_op d "load" ~num_operands:1 ~num_results:1 ~pure:true
    ~verify:(fun op ->
      match
        (Op.value_type (Op.operand op), Op.value_type (Op.result op))
      with
      | Types.Stencil_field _, Types.Stencil_temp _ -> Ok ()
      | _ -> Error "stencil.load: field -> temp");
  Dialect.define_op d "store" ~num_operands:2 ~num_results:0
    ~verify:(fun op ->
      match
        (Op.value_type (Op.operand ~index:0 op),
         Op.value_type (Op.operand ~index:1 op))
      with
      | Types.Stencil_temp _, Types.Stencil_field _ -> Ok ()
      | _ -> Error "stencil.store: temp -> field");
  Dialect.define_op d "apply" ~num_regions:1 ~verify:(fun op ->
      let region = Op.region op in
      match region.Op.g_blocks with
      | [ body ] ->
        if Array.length body.Op.b_args <> Op.num_operands op then
          Error "stencil.apply block args must match operands"
        else Ok ()
      | _ -> Error "stencil.apply requires exactly one block");
  Dialect.define_op d "access" ~num_operands:1 ~num_results:1 ~pure:true
    ~verify:(fun op ->
      match Op.attr op "offset" with
      | Some (Attr.Index_a ofs) -> (
        match Op.value_type (Op.operand op) with
        | Types.Stencil_temp (b, _) ->
          if List.length ofs = List.length b then Ok ()
          else Error "stencil.access offset rank mismatch"
        | _ -> Error "stencil.access expects a temp operand")
      | _ -> Error "stencil.access requires an offset attribute");
  Dialect.define_op d "index" ~num_operands:0 ~num_results:1 ~pure:true
    ~verify:(fun op ->
      if Op.has_attr op "dim" then Ok ()
      else Error "stencil.index requires a dim attribute");
  Dialect.define_op d "return" ~num_results:0 ~terminator:true

(* ---- builders ---- *)

let external_load b memref_v ~bounds =
  let elem = Types.element_type (Op.value_type memref_v) in
  Builder.op1 b "stencil.external_load" ~operands:[ memref_v ]
    ~results:[ field_type bounds elem ]

let external_store b temp_v memref_v =
  ignore
    (Builder.op b "stencil.external_store" ~operands:[ temp_v; memref_v ])

let load b field_v =
  let t = Op.value_type field_v in
  Builder.op1 b "stencil.load" ~operands:[ field_v ]
    ~results:[ temp_type (type_bounds t) (type_elem t) ]

let store b temp_v field_v ~lb ~ub =
  ignore
    (Builder.op b "stencil.store" ~operands:[ temp_v; field_v ]
       ~attrs:[ ("lb", Attr.Index_a lb); ("ub", Attr.Index_a ub) ])

(* Build a stencil.apply over [inputs]; [body] is called with a builder in
   the apply region and the block arguments (one per input, typed as the
   inputs), and must return the values handed to stencil.return. The
   result temps take bounds [out_bounds]. *)
let apply b ~inputs ~out_bounds ~out_elems body =
  let arg_types = List.map Op.value_type inputs in
  let region, blk = Op.region_with_block ~args:arg_types () in
  let inner = Builder.at_end blk in
  let returned = body inner (Op.block_args blk) in
  ignore (Builder.op inner "stencil.return" ~operands:returned);
  let op =
    Builder.op b "stencil.apply" ~operands:inputs
      ~results:(List.map (fun e -> temp_type out_bounds e) out_elems)
      ~regions:[ region ]
  in
  Op.results op

let access b temp_v ~offset =
  Builder.op1 b "stencil.access" ~operands:[ temp_v ]
    ~results:[ type_elem (Op.value_type temp_v) ]
    ~attrs:[ ("offset", Attr.Index_a offset) ]

let index b ~dim =
  Builder.op1 b "stencil.index" ~results:[ Types.Index ]
    ~attrs:[ ("dim", Attr.Int_a dim) ]

(* ---- queries ---- *)

let is_apply op = op.Op.o_name = "stencil.apply"
let is_access op = op.Op.o_name = "stencil.access"
let is_store op = op.Op.o_name = "stencil.store"
let is_load op = op.Op.o_name = "stencil.load"

let access_offset op = Attr.as_index (Op.attr_exn op "offset")

let store_bounds op =
  ( Attr.as_index (Op.attr_exn op "lb"),
    Attr.as_index (Op.attr_exn op "ub") )

let apply_body op =
  match (Op.region op).Op.g_blocks with
  | [ b ] -> b
  | _ -> invalid_arg "Stencil.apply_body"

(* All accesses inside an apply, per input argument index. *)
let apply_accesses op =
  let body = apply_body op in
  let args = Op.block_args body in
  let acc = ref [] in
  List.iter
    (fun o ->
      Op.walk
        (fun o ->
          if is_access o then begin
            let target = Op.operand o in
            match
              List.find_index (fun a -> a == target) args
            with
            | Some i -> acc := (i, access_offset o) :: !acc
            | None -> ()
          end)
        o)
    (Op.block_ops body);
  List.rev !acc

(* ---- shape inference ----

   Given the output bounds demanded by stencil.store ops, propagate
   backwards: each input temp of an apply must cover the output bounds
   expanded by every offset it is accessed at. Updates the types of apply
   results, apply block args, load results and field types. *)
let infer_shapes_in_func func_op =
  let applies = Op.collect_ops is_apply func_op in
  (* Process applies in reverse (consumers first). *)
  List.iter
    (fun apply_op ->
      (* Output bounds: union of store bounds over all result uses, or
         keep existing type bounds if never stored. *)
      let out_bounds = ref None in
      List.iter
        (fun (r : Op.value) ->
          List.iter
            (fun (u : Op.use) ->
              if is_store u.Op.u_op then begin
                let lb, ub = store_bounds u.Op.u_op in
                let b = List.combine lb ub in
                out_bounds :=
                  Some
                    (match !out_bounds with
                    | None -> b
                    | Some b' -> Types.bounds_union b b')
              end)
            r.Op.v_uses)
        (Op.results apply_op);
      match !out_bounds with
      | None -> ()
      | Some ob ->
        List.iter
          (fun (r : Op.value) ->
            r.Op.v_type <- temp_type ob (type_elem r.Op.v_type))
          (Op.results apply_op);
        (* Input bounds: expand output bounds by access offsets. *)
        let body = apply_body apply_op in
        let accesses = apply_accesses apply_op in
        List.iteri
          (fun i (input : Op.value) ->
            let offsets =
              List.filter_map
                (fun (j, o) -> if i = j then Some o else None)
                accesses
            in
            match Op.value_type input with
            | Types.Stencil_temp (_, elem) ->
              let nb = Types.bounds_expand_by_offsets ob offsets in
              input.Op.v_type <- temp_type nb elem;
              body.Op.b_args.(i).Op.v_type <- temp_type nb elem
            | _ ->
              (* scalar input: leave alone, but sync block arg type *)
              body.Op.b_args.(i).Op.v_type <- Op.value_type input)
          (Op.operands apply_op))
    (List.rev applies);
  (* Propagate temp bounds through stencil.load back to fields. *)
  Op.walk
    (fun o ->
      if is_load o then begin
        let temp = Op.result o and field = Op.operand o in
        match (Op.value_type temp, Op.value_type field) with
        | Types.Stencil_temp (tb, elem), Types.Stencil_field (fb, _) ->
          let nb = Types.bounds_union tb fb in
          field.Op.v_type <- field_type nb elem
        | _ -> ()
      end)
    func_op

lib/stencil/stencil.ml: Array Attr Builder Dialect Fsc_ir List Op Types

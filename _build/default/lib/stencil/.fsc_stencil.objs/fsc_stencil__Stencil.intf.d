lib/stencil/stencil.mli: Builder Dialect Fsc_ir Op Types

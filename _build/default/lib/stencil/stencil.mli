(** The stencil dialect of the Open Earth Compiler (Gysi et al., TACO
    2021), as used by the paper via xDSL.

    Value vocabulary:
    - [!stencil.field<[l,h]x...xT>] — storage backing a grid (created
      from a memref by [stencil.external_load]);
    - [!stencil.temp<...>] — a value-semantics snapshot of a field,
      input/output of [stencil.apply];
    - [stencil.apply] — the computation: its region executes once per
      output cell; [stencil.access] reads an input temp at a constant
      offset from the current cell; [stencil.return] yields the value.

    Bounds are inclusive on both ends, as in the paper's Listing 2:
    [[-1,255]] means indices [-1..255] are addressable. *)

open Fsc_ir

(** The dialect handle (registration happens at module initialisation). *)
val d : Dialect.dialect

(** {2 Types} *)

val field_type : Types.bounds -> Types.t -> Types.t
val temp_type : Types.bounds -> Types.t -> Types.t

(** Bounds of a field/temp type.
    @raise Invalid_argument on other types. *)
val type_bounds : Types.t -> Types.bounds

(** Element type of a field/temp type. *)
val type_elem : Types.t -> Types.t

(** {2 Builders} *)

(** [external_load b memref ~bounds] wraps backing storage as a field. *)
val external_load : Builder.t -> Op.value -> bounds:Types.bounds -> Op.value

val external_store : Builder.t -> Op.value -> Op.value -> unit

(** [load b field] snapshots a field into a temp. *)
val load : Builder.t -> Op.value -> Op.value

(** [store b temp field ~lb ~ub] writes the temp back over the inclusive
    index box [lb..ub]. *)
val store :
  Builder.t -> Op.value -> Op.value -> lb:int list -> ub:int list -> unit

(** [apply b ~inputs ~out_bounds ~out_elems body] builds a
    [stencil.apply]. [body] receives a builder positioned in the region
    and the block arguments (one per input) and returns the per-cell
    values handed to [stencil.return]. Returns the result temps. *)
val apply :
  Builder.t ->
  inputs:Op.value list ->
  out_bounds:Types.bounds ->
  out_elems:Types.t list ->
  (Builder.t -> Op.value list -> Op.value list) ->
  Op.value list

(** [access b temp ~offset] reads the input at a constant offset from
    the current output cell. *)
val access : Builder.t -> Op.value -> offset:int list -> Op.value

(** [index b ~dim] is the current cell's absolute index along [dim]. *)
val index : Builder.t -> dim:int -> Op.value

(** {2 Queries} *)

val is_apply : Op.op -> bool
val is_access : Op.op -> bool
val is_store : Op.op -> bool
val is_load : Op.op -> bool

(** Offset attribute of a [stencil.access]. *)
val access_offset : Op.op -> int list

(** [(lb, ub)] attributes of a [stencil.store]. *)
val store_bounds : Op.op -> int list * int list

(** The single body block of a [stencil.apply]. *)
val apply_body : Op.op -> Op.block

(** All accesses inside an apply as [(input index, offset)] pairs. *)
val apply_accesses : Op.op -> (int * int list) list

(** {2 Shape inference}

    Propagate bounds backwards from the [stencil.store] demands: each
    apply's results take the union of their stores' boxes, each input
    temp grows to cover the output box expanded by every offset it is
    accessed at, and field types absorb their temps' needs. *)
val infer_shapes_in_func : Op.op -> unit

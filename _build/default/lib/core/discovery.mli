(** Stencil discovery — the paper's central transformation (Listing 3).

    Operating on the FIR produced by the frontend, the pass finds
    [fir.store] operations whose address is indexed by enclosing DO
    loops, analyses the right-hand side to find the neighbouring-cell
    reads, and replaces the loop nest with stencil dialect operations
    ([stencil.external_load] / [load] / [apply] / [store]) inserted
    directly before the outermost applicable loop. Loops whose bodies
    become empty are removed; stencil shape inference then assigns
    bounds.

    A store candidate is rejected — left completely untouched — when:
    - its address is not a [fir.coordinate_of] with per-dimension indices
      of the form induction-variable + constant (all variables distinct);
    - the loop nest bounds/step are not compile-time constants (step 1);
    - a right-hand-side array read uses a different induction variable
      for some dimension (e.g. a transposed access);
    - the expression tree contains an operation with no standard-dialect
      equivalent, or reads a scalar that is written inside the nest. *)

open Fsc_ir

(** Raised internally when a candidate store is rejected; the message is
    recorded in {!stats}. *)
exception Reject of string

type stats = {
  mutable found : int;  (** stencils generated *)
  mutable rejected : (string * string) list;
      (** (store description, rejection reason) for every candidate the
          pass declined — useful for compiler diagnostics and tests *)
}

(** Run discovery over every [func.func] in the module. Returns the
    statistics; the module is rewritten in place. *)
val run : ?log_rejects:bool -> Op.op -> stats

(** The same as a named pass for {!Fsc_ir.Pass.run_pipeline}. *)
val pass : Pass.t

(* Conversion of FIR value operations to their standard-dialect
   counterparts, needed because the extracted stencil module must not
   contain any FIR (Section 3 of the paper): Flang already uses arith and
   math for computation, but fir.convert and fir.no_reassoc have to be
   rewritten into standard ops. *)

open Fsc_ir

(* Emit the standard-dialect equivalent of fir.convert from the type of
   [v] to [to_]. Returns [v] unchanged for identity conversions. *)
let std_convert b v (to_ : Types.t) =
  let from = Op.value_type v in
  if Types.equal from to_ then v
  else
    match (from, to_) with
    | (Types.I1 | Types.I8 | Types.I16 | Types.I32 | Types.I64), Types.Index
    | Types.Index, (Types.I1 | Types.I8 | Types.I16 | Types.I32 | Types.I64)
      ->
      Builder.op1 b "arith.index_cast" ~operands:[ v ] ~results:[ to_ ]
    | t, (Types.F32 | Types.F64) when Types.is_integer t ->
      if Types.equal t Types.Index then begin
        let as_i64 =
          Builder.op1 b "arith.index_cast" ~operands:[ v ]
            ~results:[ Types.I64 ]
        in
        Builder.op1 b "arith.sitofp" ~operands:[ as_i64 ] ~results:[ to_ ]
      end
      else Builder.op1 b "arith.sitofp" ~operands:[ v ] ~results:[ to_ ]
    | (Types.F32 | Types.F64), t when Types.is_integer t ->
      Builder.op1 b "arith.fptosi" ~operands:[ v ] ~results:[ to_ ]
    | Types.F32, Types.F64 ->
      Builder.op1 b "arith.extf" ~operands:[ v ] ~results:[ to_ ]
    | Types.F64, Types.F32 ->
      Builder.op1 b "arith.truncf" ~operands:[ v ] ~results:[ to_ ]
    | (Types.I1 | Types.I8 | Types.I16 | Types.I32 | Types.I64),
      (Types.I1 | Types.I8 | Types.I16 | Types.I32 | Types.I64) ->
      (* width changes collapse to index_cast-free bit ops; at our scale a
         single generic cast op keeps the interpreter honest *)
      Builder.op1 b "arith.index_cast" ~operands:[ v ] ~results:[ to_ ]
    | _ ->
      invalid_arg
        (Printf.sprintf "Fir_to_std.std_convert: %s -> %s"
           (Types.to_string from) (Types.to_string to_))

(* Is this op representable in the standard dialects that mlir-opt
   registers (i.e. allowed inside the extracted stencil module)? *)
let is_standard_op (op : Op.op) =
  let dialect = Dialect.dialect_of_op_name op.Op.o_name in
  List.mem dialect [ "arith"; "math"; "scf"; "memref"; "func"; "cf";
                     "stencil"; "builtin"; "gpu"; "llvm" ]

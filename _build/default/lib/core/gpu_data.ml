(* The bespoke GPU data-placement pass of Section 4.3.

   The naive flow leaves data movement to gpu.host_register, which pages
   everything across PCIe on every kernel launch. This pass walks the
   host module just after extraction, finds the stencil kernel calls that
   sit inside (time-)loops, and hoists data placement out:

   - a @<kernel>_gpu_init trampoline call (device allocation + H2D copy)
     is inserted before the outermost loop enclosing the kernel call;
   - a @<kernel>_gpu_sync call (D2H copy-back) plus @<kernel>_gpu_free
     follows after the loop;
   - matching functions carrying the actual gpu.alloc / gpu.memcpy /
     gpu.dealloc operations are appended to the extracted stencil module,
     where the gpu dialect is registered (it is not in Flang).

   The FIR side keeps holding the data as !fir.llvm_ptr values, exactly
   as the paper describes. *)

open Fsc_ir

let is_kernel_call op =
  op.Op.o_name = "fir.call"
  &&
  match Op.attr op "callee" with
  | Some (Attr.Sym_a s) ->
    String.length s >= 15 && String.sub s 0 15 = "_stencil_kernel"
  | _ -> false

let outermost_loop op =
  let rec go best o =
    match Op.parent_op o with
    | Some p ->
      if p.Op.o_name = "fir.do_loop" then go (Some p) p else go best p
    | None -> best
  in
  go None op

(* Clone the producer chain of [v] (converts/loads over loop-invariant
   roots) at builder [b]; returns the cloned value. *)
let rec clone_producer b (v : Op.value) =
  match Op.defining_op v with
  | Some op
    when List.mem op.Op.o_name [ "fir.convert"; "fir.load"; "fir.declare" ]
    ->
    let operand = clone_producer b (Op.operand op) in
    Builder.op1 b op.Op.o_name ~operands:[ operand ]
      ~results:[ Op.value_type (Op.result op) ]
      ~attrs:op.Op.o_attrs
  | _ -> v

type managed = {
  mg_kernel : string;
  mg_buffer_args : int list; (* positions of pointer args in the call *)
}

let ptr_arg_positions call =
  List.concat
    (List.mapi
       (fun i (v : Op.value) ->
         match Op.value_type v with
         | Types.Fir_llvm_ptr _ | Types.Llvm_ptr | Types.Llvm_typed_ptr _ ->
           [ i ]
         | _ -> [])
       (Op.operands call))

(* Append the device-management functions to the stencil module. *)
let emit_device_functions stencil_module ~kernel ~num_ptrs =
  let blk = Op.module_block stencil_module in
  let ptr_args = List.init num_ptrs (fun _ -> Types.Llvm_ptr) in
  let init_fn =
    Fsc_dialects.Func.func ~name:(kernel ^ "_gpu_init") ~args:ptr_args
      ~results:[] (fun b args ->
        List.iter
          (fun host ->
            let dev =
              Builder.op1 b "gpu.alloc" ~results:[ Types.Llvm_ptr ]
                ~operands:[]
            in
            ignore dev;
            (* conceptual dst: the device twin of this host pointer *)
            ignore
              (Builder.op b "gpu.memcpy" ~operands:[ host; host ]
                 ~attrs:[ ("direction", Attr.Str_a "h2d") ]))
          args;
        Fsc_dialects.Func.return_ b [])
  in
  let sync_fn =
    Fsc_dialects.Func.func ~name:(kernel ^ "_gpu_sync") ~args:ptr_args
      ~results:[] (fun b args ->
        List.iter
          (fun host ->
            ignore
              (Builder.op b "gpu.memcpy" ~operands:[ host; host ]
                 ~attrs:[ ("direction", Attr.Str_a "d2h") ]))
          args;
        Fsc_dialects.Func.return_ b [])
  in
  let free_fn =
    Fsc_dialects.Func.func ~name:(kernel ^ "_gpu_free") ~args:ptr_args
      ~results:[] (fun b args ->
        List.iter
          (fun host -> ignore (Builder.op b "gpu.dealloc" ~operands:[ host ]))
          args;
        Fsc_dialects.Func.return_ b [])
  in
  Op.append_to blk init_fn;
  Op.append_to blk sync_fn;
  Op.append_to blk free_fn

(* Run over the extracted pair of modules. Returns the kernels managed. *)
let run ~host_module ~stencil_module =
  let managed = ref [] in
  let calls = Op.collect_ops is_kernel_call host_module in
  List.iter
    (fun call ->
      let kernel = Op.string_attr call "callee" in
      if not (List.exists (fun m -> m.mg_kernel = kernel) !managed) then begin
        (* hoist around the outermost enclosing loop when there is one
           (the interesting case: data stays resident across the whole
           time loop); otherwise manage the single call directly *)
        match Some (Option.value (outermost_loop call) ~default:call) with
        | None -> ()
        | Some top ->
          let positions = ptr_arg_positions call in
          (* init before the loop *)
          let b_before = Builder.before top in
          let init_args =
            List.map
              (fun i ->
                clone_producer b_before (Op.operand ~index:i call))
              positions
          in
          ignore
            (Builder.op b_before "fir.call" ~operands:init_args
               ~attrs:[ ("callee", Attr.Sym_a (kernel ^ "_gpu_init")) ]);
          (* sync + free after the loop *)
          let b_after = Builder.after top in
          let sync_args =
            List.map
              (fun i -> clone_producer b_after (Op.operand ~index:i call))
              positions
          in
          ignore
            (Builder.op b_after "fir.call" ~operands:sync_args
               ~attrs:[ ("callee", Attr.Sym_a (kernel ^ "_gpu_sync")) ]);
          ignore
            (Builder.op b_after "fir.call" ~operands:sync_args
               ~attrs:[ ("callee", Attr.Sym_a (kernel ^ "_gpu_free")) ]);
          emit_device_functions stencil_module ~kernel
            ~num_ptrs:(List.length positions);
          managed :=
            { mg_kernel = kernel; mg_buffer_args = positions } :: !managed
      end)
    calls;
  List.rev !managed

(** Stencil merging (Listing 3, line 29): adjacent [stencil.apply]
    operations that share lower and upper bounds are fused into a single
    apply with the union of inputs and the concatenation of results.
    This is what turns the PW advection benchmark's three loop nests into
    one stencil region, saving two full passes over memory per iteration.

    Safety: apply B is fused into apply A only when B does not read any
    array that A writes (via [stencil.store]), and everything between
    them in the block is pure plumbing. *)

open Fsc_ir

(** Merge until fixpoint within every block of the module; returns the
    number of fusions performed. *)
val run : Op.op -> int

val pass : Pass.t

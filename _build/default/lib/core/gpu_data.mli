(** The bespoke GPU data-placement pass of the paper's Section 4.3.

    The naive flow leaves data movement to [gpu.host_register], which
    pages everything across PCIe on every kernel launch. This pass walks
    the host module just after extraction, finds the stencil kernel
    calls, and hoists data placement out of the enclosing (time-)loop:
    [@kernel_gpu_init] (device allocation + H2D) before the loop,
    [@kernel_gpu_sync] / [@kernel_gpu_free] after it, with the matching
    gpu-dialect functions appended to the extracted stencil module
    (the gpu dialect is not registered with Flang, so they cannot live
    in the host module). *)

open Fsc_ir

type managed = {
  mg_kernel : string;  (** kernel symbol whose data is now managed *)
  mg_buffer_args : int list;
      (** positions of the pointer arguments in the kernel call *)
}

(** Rewrite the host module and extend the stencil module; returns one
    {!managed} record per kernel. *)
val run : host_module:Op.op -> stencil_module:Op.op -> managed list

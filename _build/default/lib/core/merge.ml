(* Stencil merging (Listing 3 line 29): adjacent stencil.apply operations
   that share lower and upper bounds are fused into a single apply. This
   is what turns the PW advection benchmark's three loop nests into one
   stencil region (Section 4.1 of the paper), saving two full passes over
   memory per iteration.

   Safety: apply B may be fused into apply A only if B does not read any
   array that A writes (the write only becomes visible through memory via
   stencil.store, which conceptually happens after the whole region). *)

open Fsc_ir
module Stencil = Fsc_stencil.Stencil

(* The array root behind a temp input (temp <- load <- external_load). *)
let rec input_root (v : Op.value) : Op.value option =
  match Op.defining_op v with
  | Some op when op.Op.o_name = "stencil.load" ->
    input_root (Op.operand op)
  | Some op when op.Op.o_name = "stencil.external_load" ->
    Some (Op.operand op)
  | _ -> None

(* Arrays written by an apply: roots of the fields its results are stored
   to. *)
let output_roots apply =
  List.concat_map
    (fun (r : Op.value) ->
      List.filter_map
        (fun (u : Op.use) ->
          if Stencil.is_store u.Op.u_op then
            match Op.defining_op (Op.operand ~index:1 u.Op.u_op) with
            | Some fl when fl.Op.o_name = "stencil.external_load" ->
              Some (Op.operand fl)
            | _ -> None
          else None)
        r.Op.v_uses)
    (Op.results apply)

let apply_out_bounds apply =
  match Op.results apply with
  | r :: _ -> Stencil.type_bounds (Op.value_type r)
  | [] -> invalid_arg "apply_out_bounds"

(* Are [a] and [b] adjacent enough to merge? Everything between them in
   the block must be stencil plumbing or pure ops (no intervening FIR
   side effects). *)
let only_plumbing_between a b_op =
  let rec go o =
    match o.Op.o_next with
    | None -> false
    | Some n ->
      if n == b_op then true
      else if
        List.mem n.Op.o_name
          [ "stencil.external_load"; "stencil.load"; "stencil.store";
            "arith.constant"; "fir.load" ]
        || Dialect.op_is_pure n
      then go n
      else false
  in
  go a

let can_merge a b =
  apply_out_bounds a = apply_out_bounds b
  && only_plumbing_between a b
  &&
  let a_outs = output_roots a in
  let b_in_roots =
    List.filter_map input_root (Op.operands b)
  in
  not
    (List.exists
       (fun out -> List.exists (fun i -> i == out) b_in_roots)
       a_outs)

(* Fuse [b_op] into [a]: a new apply with the union of inputs and the
   concatenation of results, inserted where [a] stood. B's input plumbing
   (pure loads) is hoisted before A first so every fused operand
   dominates the fusion point. *)
let fuse a b_op =
  List.iter (Op.hoist_chain_before ~anchor:a) (Op.operands b_op);
  let inputs_a = Op.operands a and inputs_b = Op.operands b_op in
  let inputs =
    List.fold_left
      (fun acc v -> if List.exists (fun w -> w == v) acc then acc
        else acc @ [ v ])
      inputs_a inputs_b
  in
  let builder = Builder.before a in
  let result_types =
    List.map Op.value_type (Op.results a @ Op.results b_op)
  in
  let arg_types = List.map Op.value_type inputs in
  let region, blk = Op.region_with_block ~args:arg_types () in
  let mapping = Hashtbl.create 32 in
  let new_args = Op.block_args blk in
  let bind_args src_apply =
    let body = Stencil.apply_body src_apply in
    List.iteri
      (fun i (arg : Op.value) ->
        let input = Op.operand ~index:i src_apply in
        let j =
          match
            List.find_index (fun v -> v == input) inputs
          with
          | Some j -> j
          | None -> assert false
        in
        Hashtbl.replace mapping arg.Op.v_id (List.nth new_args j))
      (Op.block_args body)
  in
  bind_args a;
  bind_args b_op;
  (* Clone both bodies (minus terminators), remember returned values. *)
  let clone_body src_apply =
    let body = Stencil.apply_body src_apply in
    let returned = ref [] in
    List.iter
      (fun op ->
        if op.Op.o_name = "stencil.return" then
          returned :=
            List.map
              (fun (v : Op.value) ->
                match Hashtbl.find_opt mapping v.Op.v_id with
                | Some v' -> v'
                | None -> v)
              (Op.operands op)
        else begin
          let c = Op.clone ~mapping op in
          Op.append_to blk c
        end)
      (Op.block_ops body);
    !returned
  in
  let ret_a = clone_body a in
  let ret_b = clone_body b_op in
  ignore (Builder.op (Builder.at_end blk) "stencil.return"
            ~operands:(ret_a @ ret_b));
  let fused =
    Builder.insert builder
      (Op.create "stencil.apply" ~operands:inputs ~results:result_types
         ~regions:[ region ])
  in
  (* Rewire results. *)
  let fused_results = Op.results fused in
  List.iteri
    (fun i (r : Op.value) ->
      Op.replace_all_uses_with r (List.nth fused_results i))
    (Op.results a);
  let na = Op.num_results a in
  List.iteri
    (fun i (r : Op.value) ->
      Op.replace_all_uses_with r (List.nth fused_results (na + i)))
    (Op.results b_op);
  Op.erase a;
  Op.erase b_op;
  fused

(* Merge until fixpoint within every block of [m]. *)
let run m =
  let merged = ref 0 in
  let rec try_block block =
    let applies =
      List.filter Stencil.is_apply (Op.block_ops block)
    in
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        if can_merge a b then begin
          ignore (fuse a b);
          incr merged;
          true
        end
        else pairs rest
      | _ -> false
    in
    if pairs applies then try_block block
  in
  Op.walk
    (fun op ->
      Array.iter
        (fun r -> List.iter try_block r.Op.g_blocks)
        op.Op.o_regions)
    m;
  !merged

let pass = Pass.create "merge-stencils" (fun m -> ignore (run m))

lib/core/fir_to_std.ml: Builder Dialect Fsc_ir List Op Printf Types

lib/core/gpu_data.ml: Attr Builder Fsc_dialects Fsc_ir List Op Option String Types

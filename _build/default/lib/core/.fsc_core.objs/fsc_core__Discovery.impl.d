lib/core/discovery.ml: Array Attr Builder Dialect Fir_to_std Fsc_fir Fsc_ir Fsc_stencil Hashtbl Index_expr List Logs Op Pass Printf Types

lib/core/index_expr.mli: Fsc_ir Op Types

lib/core/discovery.mli: Fsc_ir Op Pass

lib/core/merge.ml: Array Builder Dialect Fsc_ir Fsc_stencil Hashtbl List Op Pass

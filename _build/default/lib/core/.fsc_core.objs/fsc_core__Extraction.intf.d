lib/core/extraction.mli: Fsc_ir Op Types

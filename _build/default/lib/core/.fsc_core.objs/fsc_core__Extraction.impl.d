lib/core/extraction.ml: Array Attr Builder Dialect Fsc_dialects Fsc_fir Fsc_ir Fsc_stencil Hashtbl List Op Printf Types

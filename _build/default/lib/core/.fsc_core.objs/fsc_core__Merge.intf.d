lib/core/merge.mli: Fsc_ir Op Pass

lib/core/fir_to_std.mli: Builder Fsc_ir Op Types

lib/core/index_expr.ml: Attr Fsc_ir List Op Printf Types

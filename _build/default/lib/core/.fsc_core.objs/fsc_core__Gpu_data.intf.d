lib/core/gpu_data.mli: Fsc_ir Op

(** Conversion of FIR value operations to standard-dialect counterparts.

    The extracted stencil module must contain no FIR (Section 3):
    Flang already uses arith/math for computation, but [fir.convert] and
    [fir.no_reassoc] must be rewritten into standard operations. *)

open Fsc_ir

(** Emit the standard-dialect equivalent of [fir.convert] from the type
    of the value to [to_]: [arith.index_cast] / [sitofp] / [fptosi] /
    [extf] / [truncf] as appropriate. Identity conversions return the
    value unchanged.

    @raise Invalid_argument on conversions with no standard equivalent. *)
val std_convert : Builder.t -> Op.value -> Types.t -> Op.value

(** Is this operation expressible in the dialects mlir-opt registers
    (i.e. allowed inside the extracted stencil module)? *)
val is_standard_op : Op.op -> bool

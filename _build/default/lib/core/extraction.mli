(** Stencil extraction (Section 3 of the paper).

    After discovery the IR mixes FIR with the stencil dialect — but Flang
    does not register the stencil/memref/builtin dialects and mlir-opt
    does not register FIR, so the module must be split: every stencil
    section is lifted into a function in a separate module and invoked
    from FIR through a plain call.

    Data crosses the boundary as pointers: the host converts each array
    reference to [!fir.llvm_ptr<i8>] (the only pointer type FIR can
    reach) while the kernel receives [!llvm.ptr] and rebuilds a memref
    via [builtin.unrealized_conversion_cast]. The two pointer types are
    nominally different but semantically identical; as in the paper, the
    mismatch is only reconciled at link time. *)

open Fsc_ir

(** How one kernel parameter crosses the module boundary. *)
type kernel_arg =
  | K_array of { extents : int list; elem : Types.t }
      (** an array, passed as an opaque pointer *)
  | K_scalar of Types.t  (** a loop-invariant scalar, passed by value *)

type kernel_info = {
  k_name : string;  (** the generated symbol, [_stencil_kernel_N] *)
  k_args : kernel_arg list;
}

type extracted = {
  host_module : Op.op;
      (** the original module, now pure Flang-registered dialects *)
  stencil_module : Op.op;
      (** fresh module holding one [func.func] per extracted section *)
  kernels : kernel_info list;
}

(** Split the module in place; returns the host/stencil pair plus kernel
    metadata. *)
val run : Op.op -> extracted

(** Reset the [_stencil_kernel_N] counter (kernel names are process-wide
    so that independently compiled programs stay unambiguous; tests and
    drivers reset between programs). *)
val reset_name_counter : unit -> unit

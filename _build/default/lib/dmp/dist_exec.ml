(* Functional SPMD executor: runs a 3-D halo-exchange computation over a
   [Decomp.t] with simulated MPI, validating that the auto-parallelised
   pipeline computes the same grid as serial execution. Local grids carry
   one-cell halos in the decomposed (y, z) dimensions; the x dimension is
   never decomposed (it is the contiguous one). *)

module A1 = Bigarray.Array1
module Mpi = Fsc_rt.Mpi_sim
module Rt = Fsc_rt.Memref_rt

type rank_state = {
  rs_rank : int;
  rs_fields : (string * Rt.t) list; (* local (lx+2)(ly+2)(lz+2) grids *)
  rs_range : (int * int) * (int * int) * (int * int); (* global 1-based *)
}

type t = {
  decomp : Decomp.t;
  mpi : Mpi.t;
  ranks : rank_state array;
}

(* Create the distributed state; [init name (i,j,k)] gives the global
   value of field [name] at global *array* coordinates (0-based, halos
   included: 0..n+1). *)
let create decomp ~fields ~init =
  let mpi = Mpi.create (Decomp.nranks decomp) in
  let ranks =
    Array.init (Decomp.nranks decomp) (fun rank ->
        let lx, ly, lz = Decomp.local_extents decomp rank in
        let ((_, _), (yl, _), (zl, _)) as range =
          Decomp.local_range decomp rank
        in
        let mk name =
          let buf = Rt.create [ lx + 2; ly + 2; lz + 2 ] in
          (* local (i,j,k) with halo maps to global (i, yl-1+j, zl-1+k) *)
          for k = 0 to lz + 1 do
            for j = 0 to ly + 1 do
              for i = 0 to lx + 1 do
                Rt.set buf [| i; j; k |]
                  (init name (i, yl - 1 + j, zl - 1 + k))
              done
            done
          done;
          (name, buf)
        in
        { rs_rank = rank; rs_fields = List.map mk fields; rs_range = range })
  in
  { decomp; mpi; ranks }

let field st name = List.assoc name st.rs_fields

(* j/k index of the plane to send (interior boundary) and to receive
   into (halo). *)
let send_plane_index buf = function
  | Decomp.Y_low -> (`Y, 1)
  | Decomp.Y_high -> (`Y, buf.Rt.dims.(1) - 2)
  | Decomp.Z_low -> (`Z, 1)
  | Decomp.Z_high -> (`Z, buf.Rt.dims.(2) - 2)

let recv_plane_index buf = function
  | Decomp.Y_low -> (`Y, 0)
  | Decomp.Y_high -> (`Y, buf.Rt.dims.(1) - 1)
  | Decomp.Z_low -> (`Z, 0)
  | Decomp.Z_high -> (`Z, buf.Rt.dims.(2) - 1)

let pack buf (axis, idx) =
  let dims = buf.Rt.dims in
  match axis with
  | `Y ->
    let out = Array.make (dims.(0) * dims.(2)) 0.0 in
    for k = 0 to dims.(2) - 1 do
      for i = 0 to dims.(0) - 1 do
        out.((k * dims.(0)) + i) <- Rt.get buf [| i; idx; k |]
      done
    done;
    out
  | `Z ->
    let out = Array.make (dims.(0) * dims.(1)) 0.0 in
    for j = 0 to dims.(1) - 1 do
      for i = 0 to dims.(0) - 1 do
        out.((j * dims.(0)) + i) <- Rt.get buf [| i; j; idx |]
      done
    done;
    out

let unpack buf (axis, idx) payload =
  let dims = buf.Rt.dims in
  match axis with
  | `Y ->
    for k = 0 to dims.(2) - 1 do
      for i = 0 to dims.(0) - 1 do
        Rt.set buf [| i; idx; k |] payload.((k * dims.(0)) + i)
      done
    done
  | `Z ->
    for j = 0 to dims.(1) - 1 do
      for i = 0 to dims.(0) - 1 do
        Rt.set buf [| i; j; idx |] payload.((j * dims.(0)) + i)
      done
    done

(* One halo swap of [name] across all ranks. *)
let post_halo t ~name ~rank =
  let st = t.ranks.(rank) in
  let buf = field st name in
  List.iter
    (fun dir ->
      match Decomp.neighbor t.decomp rank dir with
      | Some nbr ->
        Mpi.send t.mpi ~src:rank ~dst:nbr
          ~tag:(Decomp.tag_of_direction dir)
          (pack buf (send_plane_index buf dir))
      | None -> ())
    Decomp.directions

let consume_halo t ~name ~rank =
  let st = t.ranks.(rank) in
  let buf = field st name in
  List.iter
    (fun dir ->
      match Decomp.neighbor t.decomp rank dir with
      | Some nbr ->
        (* our halo in direction [dir] is the neighbour's send in the
           opposite direction *)
        let payload =
          Mpi.recv t.mpi ~src:nbr ~dst:rank
            ~tag:(Decomp.tag_of_direction (Decomp.opposite dir))
        in
        unpack buf (recv_plane_index buf dir) payload
      | None -> ())
    Decomp.directions

(* Run [iters] supersteps: swap halos of [swap_fields], then run
   [compute t rank] on each rank. *)
let iterate t ~iters ~swap_fields ~compute =
  for _ = 1 to iters do
    Array.iter
      (fun st ->
        List.iter (fun n -> post_halo t ~name:n ~rank:st.rs_rank) swap_fields)
      t.ranks;
    Mpi.exchange t.mpi;
    Array.iter
      (fun st ->
        List.iter
          (fun n -> consume_halo t ~name:n ~rank:st.rs_rank)
          swap_fields)
      t.ranks;
    Array.iter (fun st -> compute t st.rs_rank) t.ranks
  done

(* Gather field [name] into a global (nx+2)(ny+2)(nz+2) grid. Each rank
   contributes its interior plus only those halo planes that sit on the
   *global* boundary — interior halos are other ranks' cells (and may be
   one exchange stale), so writing them would corrupt the gather. *)
let gather t name =
  let nx, ny, nz = t.decomp.Decomp.global in
  let out = Rt.create [ nx + 2; ny + 2; nz + 2 ] in
  Array.iter
    (fun st ->
      let (_, _), (yl, yh), (zl, zh) = st.rs_range in
      let jlo = if yl = 1 then yl - 1 else yl in
      let jhi = if yh = ny then yh + 1 else yh in
      let klo = if zl = 1 then zl - 1 else zl in
      let khi = if zh = nz then zh + 1 else zh in
      let buf = field st name in
      for k = klo to khi do
        for j = jlo to jhi do
          for i = 0 to nx + 1 do
            Rt.set out [| i; j; k |]
              (Rt.get buf [| i; j - yl + 1; k - zl + 1 |])
          done
        done
      done)
    t.ranks;
  out

let stats t = (t.mpi.Mpi.total_messages, t.mpi.Mpi.total_bytes)

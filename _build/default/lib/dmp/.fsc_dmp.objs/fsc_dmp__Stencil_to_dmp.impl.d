lib/dmp/stencil_to_dmp.ml: Array Attr Builder Dmp_dialect Fsc_ir Fsc_stencil List Op Pass Types

lib/dmp/dmp_to_mpi.ml: Attr Builder Dmp_dialect Fsc_ir List Op Pass Printf

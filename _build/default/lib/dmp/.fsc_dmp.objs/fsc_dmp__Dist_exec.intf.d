lib/dmp/dist_exec.mli: Decomp Fsc_rt

lib/dmp/decomp.mli:

lib/dmp/dmp_dialect.ml: Attr Builder Dialect Fsc_ir List Op

lib/dmp/decomp.ml: Array List

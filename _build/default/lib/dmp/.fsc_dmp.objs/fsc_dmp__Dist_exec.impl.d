lib/dmp/dist_exec.ml: Array Bigarray Decomp Fsc_rt List

(* DMP -> MPI lowering: each dmp.swap becomes, per decomposed dimension,
   a pair of mpi.isend/mpi.irecv to the low and high neighbours followed
   by one mpi.waitall — the two-pass lowering described in Section 2.1 of
   the paper (DMP -> MPI dialect -> library calls). Neighbour ranks are
   symbolic ("y_low", ...) and resolved by the SPMD runtime. *)

open Fsc_ir

let neighbors_for_dim dim =
  match dim with
  | 1 -> [ ("y_low", 0); ("y_high", 1) ]
  | 2 -> [ ("z_low", 2); ("z_high", 3) ]
  | d -> [ (Printf.sprintf "dim%d_low" d, 2 * d);
           (Printf.sprintf "dim%d_high" d, (2 * d) + 1) ]

let lower_swap swap =
  let grid = Op.operand swap in
  let halo = Dmp_dialect.swap_halo swap in
  let dims =
    match Op.attr_exn swap "decomposed_dims" with
    | Attr.Arr_a xs -> List.map Attr.as_int xs
    | _ -> []
  in
  let b = Builder.before swap in
  List.iter
    (fun d ->
      let width = if d < List.length halo then List.nth halo d else 0 in
      if width > 0 then
        List.iter
          (fun (nbr, tag) ->
            ignore
              (Builder.op b "mpi.isend" ~operands:[ grid ]
                 ~attrs:
                   [ ("dest", Attr.Str_a nbr); ("tag", Attr.Int_a tag);
                     ("width", Attr.Int_a width) ]);
            ignore
              (Builder.op b "mpi.irecv" ~operands:[ grid ]
                 ~attrs:
                   [ ("source", Attr.Str_a nbr); ("tag", Attr.Int_a tag);
                     ("width", Attr.Int_a width) ]))
          (neighbors_for_dim d))
    dims;
  ignore (Builder.op b "mpi.waitall");
  Op.erase swap

let run m =
  let swaps = Op.collect_ops (fun o -> o.Op.o_name = "dmp.swap") m in
  List.iter lower_swap swaps;
  List.length swaps

let pass = Pass.create "dmp-to-mpi" (fun m -> ignore (run m))

(** Functional SPMD executor: runs a 3-D halo-exchange computation over a
    {!Decomp.t} with simulated MPI, validating that the auto-parallelised
    pipeline computes the same grid as serial execution. Local grids
    carry one-cell halos; the x (contiguous) dimension is never
    decomposed. *)

module Mpi = Fsc_rt.Mpi_sim
module Rt = Fsc_rt.Memref_rt

type rank_state = {
  rs_rank : int;
  rs_fields : (string * Rt.t) list;  (** (lx+2)(ly+2)(lz+2) local grids *)
  rs_range : (int * int) * (int * int) * (int * int);
      (** global 1-based interior ranges owned by the rank *)
}

type t = {
  decomp : Decomp.t;
  mpi : Mpi.t;
  ranks : rank_state array;
}

(** Create the distributed state. [init name (i,j,k)] gives the global
    value of field [name] at 0-based array coordinates (halos
    included). *)
val create :
  Decomp.t ->
  fields:string list ->
  init:(string -> int * int * int -> float) ->
  t

val field : rank_state -> string -> Rt.t

(** Run [iters] supersteps: swap the halos of [swap_fields], then run
    [compute t rank] on every rank. *)
val iterate :
  t ->
  iters:int ->
  swap_fields:string list ->
  compute:(t -> int -> unit) ->
  unit

(** Gather a field into a global grid. Each rank contributes its interior
    plus only global-boundary halo planes (interior halos may be one
    exchange stale). *)
val gather : t -> string -> Rt.t

(** (messages, bytes) moved so far. *)
val stats : t -> int * int

(* Lower-to-DMP (the "lower to DMP" box in the paper's Figure 1): for
   every stencil.apply, compute the halo each input needs — the maximum
   access offset magnitude per decomposed dimension — and insert a
   dmp.swap on the backing grid before the apply. Bounds stay expressed
   against the global index space; the per-rank specialisation happens in
   the runtime (Dist_exec), parameterised by mpi.comm_rank. *)

open Fsc_ir
module Stencil = Fsc_stencil.Stencil

(* halo width per dimension required by the accesses on input [i] *)
let halo_of_accesses accesses rank_dims i =
  let rank = rank_dims in
  let widths = Array.make rank 0 in
  List.iter
    (fun (j, offsets) ->
      if j = i then
        List.iteri
          (fun d o -> widths.(d) <- max widths.(d) (abs o))
          offsets)
    accesses;
  Array.to_list widths

let run ?(decomposed_dims = [ 1; 2 ]) m =
  let swaps = ref 0 in
  Op.walk
    (fun func ->
      if func.Op.o_name = "func.func" then begin
        let applies = Op.collect_ops Stencil.is_apply func in
        List.iter
          (fun apply ->
            let accesses = Stencil.apply_accesses apply in
            let b = Builder.before apply in
            List.iteri
              (fun i (input : Op.value) ->
                match Op.value_type input with
                | Types.Stencil_temp (bounds, _) ->
                  let halo =
                    halo_of_accesses accesses (List.length bounds) i
                  in
                  (* only swap when a decomposed dim actually needs halo *)
                  if
                    List.exists
                      (fun d ->
                        d < List.length halo && List.nth halo d > 0)
                      decomposed_dims
                  then begin
                    Dmp_dialect.swap b input ~halo ~decomposed_dims;
                    incr swaps
                  end
                | _ -> ())
              (Op.operands apply))
          applies;
        if applies <> [] then
          Op.set_attr func "dmp.decomposed_dims"
            (Attr.Arr_a (List.map (fun d -> Attr.Int_a d) decomposed_dims))
      end)
    m;
  !swaps

let pass = Pass.create "lower-to-dmp" (fun m -> ignore (run m))

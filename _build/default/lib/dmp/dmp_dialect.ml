(* The DMP (Distributed Memory Parallelism) and MPI dialects, after
   xDSL's: DMP expresses technology-agnostic halo exchanges over
   decomposed grids; it lowers to the MPI dialect, which lowers to
   library calls. *)

open Fsc_ir

let dmp = Dialect.define_dialect "dmp"
let mpi = Dialect.define_dialect "mpi"

let () =
  (* dmp.swap: exchange the halo region of a grid with neighbours.
     Attributes: "halo" (per-dimension width), "decomposed_dims". *)
  Dialect.define_op dmp "swap" ~num_operands:1 ~num_results:0
    ~verify:(fun op ->
      if Op.has_attr op "halo" then Ok ()
      else Error "dmp.swap requires a halo attribute");
  Dialect.define_op dmp "grid" ~num_operands:0 ~num_results:0;
  (* mpi dialect *)
  Dialect.define_op mpi "comm_rank" ~num_operands:0 ~num_results:1;
  Dialect.define_op mpi "comm_size" ~num_operands:0 ~num_results:1;
  Dialect.define_op mpi "isend" ~num_operands:1 ~num_results:0
    ~verify:(fun op ->
      if Op.has_attr op "dest" && Op.has_attr op "tag" then Ok ()
      else Error "mpi.isend requires dest and tag");
  Dialect.define_op mpi "irecv" ~num_operands:1 ~num_results:0
    ~verify:(fun op ->
      if Op.has_attr op "source" && Op.has_attr op "tag" then Ok ()
      else Error "mpi.irecv requires source and tag");
  Dialect.define_op mpi "waitall" ~num_operands:0 ~num_results:0;
  Dialect.define_op mpi "barrier" ~num_operands:0 ~num_results:0

let swap b grid ~halo ~decomposed_dims =
  ignore
    (Builder.op b "dmp.swap" ~operands:[ grid ]
       ~attrs:
         [ ("halo", Attr.Arr_a (List.map (fun h -> Attr.Int_a h) halo));
           ("decomposed_dims",
            Attr.Arr_a (List.map (fun d -> Attr.Int_a d) decomposed_dims)) ])

let swap_halo op =
  match Op.attr_exn op "halo" with
  | Attr.Arr_a xs -> List.map Attr.as_int xs
  | _ -> invalid_arg "swap_halo"

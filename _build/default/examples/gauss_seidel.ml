(* Gauss-Seidel diffusion solver: one serial Fortran source, every target
   of the paper — serial CPU, auto-parallelised OpenMP, GPU with both
   data strategies — all producing the identical grid, with the GPU data
   traffic printed to show what the bespoke placement pass buys.

   Run with:  dune exec examples/gauss_seidel.exe                     *)

module P = Fsc_driver.Pipeline
module B = Fsc_driver.Benchmarks
module Rt = Fsc_rt.Memref_rt

let nx = 16
let niter = 8

let () =
  let src = B.gauss_seidel ~nx ~ny:nx ~nz:nx ~niter () in
  Printf.printf
    "Gauss-Seidel: %d^3 grid, %d iterations (7-point stencil, 6 \
     flops/cell)\nThe Fortran source is serial; every parallel target \
     below is compiler-generated.\n\n"
    nx niter;
  (* reference: naive FIR execution *)
  let reference = P.flang_only src in
  P.run reference;
  let u_ref = P.buffer_exn reference "u" in
  Printf.printf "%-42s checksum %.6f\n" "Flang only (reference)"
    (Rt.checksum u_ref);
  let targets =
    [ ("Stencil, serial CPU", P.Serial);
      ("Stencil, auto-OpenMP (2 threads)", P.Openmp 2);
      ("Stencil, GPU (initial data approach)", P.Gpu P.Gpu_initial);
      ("Stencil, GPU (optimised data approach)", P.Gpu P.Gpu_optimised) ]
  in
  List.iter
    (fun (label, target) ->
      let a, _ = P.stencil ~target src in
      P.run a;
      let u = P.buffer_exn a "u" in
      let diff = Rt.max_abs_diff u_ref u in
      Printf.printf "%-42s checksum %.6f  max-diff %g%s\n" label
        (Rt.checksum u) diff
        (match a.P.a_ctx.Fsc_rt.Interp.gpu with
        | Some g ->
          let s = Fsc_rt.Gpu_sim.stats g in
          Printf.sprintf
            "  [device: %d launches, %d kB paged, %d kB copied]"
            s.Fsc_rt.Gpu_sim.s_kernels
            (s.Fsc_rt.Gpu_sim.s_bytes_paged / 1024)
            ((s.Fsc_rt.Gpu_sim.s_bytes_h2d + s.Fsc_rt.Gpu_sim.s_bytes_d2h)
            / 1024)
        | None -> "");
      assert (diff = 0.0);
      P.shutdown a)
    targets;
  print_endline
    "\nAll targets produced bit-identical grids from the unchanged serial \
     source.";
  (* show the convergence behaviour, because this is a real solver: the
     change per doubling of iterations shrinks as u approaches the
     harmonic steady state *)
  Printf.printf "\nconvergence (max change of u between iteration counts):\n";
  let grid_at iters =
    let a, _ =
      P.stencil ~target:P.Serial
        (B.gauss_seidel ~nx ~ny:nx ~nz:nx ~niter:iters ())
    in
    P.run a;
    Rt.clone (P.buffer_exn a "u")
  in
  let prev = ref (grid_at 1) in
  List.iter
    (fun iters ->
      let u = grid_at iters in
      Printf.printf "  u(%3d) vs u(previous): max change %.3e\n" iters
        (Rt.max_abs_diff !prev u);
      prev := u)
    [ 2; 4; 8; 16; 32 ]

examples/gauss_seidel.ml: Fsc_driver Fsc_rt List Printf

examples/gauss_seidel.mli:

examples/auto_parallel.ml: Array Attr Float Fsc_core Fsc_dialects Fsc_dmp Fsc_driver Fsc_fortran Fsc_ir Fsc_perf Fsc_rt List Op Printf String

examples/quickstart.ml: Dialect Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fsc_lowering Fsc_rt Fsc_transforms List Printer Printf String Verifier

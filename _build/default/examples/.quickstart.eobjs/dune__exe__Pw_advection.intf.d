examples/pw_advection.mli:

examples/quickstart.mli:

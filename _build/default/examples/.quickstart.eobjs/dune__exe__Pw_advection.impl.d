examples/pw_advection.ml: Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fsc_perf Fsc_rt Fsc_stencil List Op Printf String

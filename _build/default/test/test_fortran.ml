(* Fortran frontend tests: lexer, parser, semantic analysis and FIR
   lowering (including the stack-vs-heap array representation split). *)

open Fsc_fortran
open Fsc_ir

let () = Fsc_dialects.Registry.init ()

(* ---------------- lexer ---------------- *)

let toks s = List.map (fun t -> t.Flexer.tok) (Flexer.tokenize s)

let test_lexer_basics () =
  Alcotest.(check bool) "keywords and idents" true
    (toks "do i = 1, n"
    = [ Flexer.IDENT "do"; Flexer.IDENT "i"; Flexer.ASSIGN; Flexer.INT 1;
        Flexer.COMMA; Flexer.IDENT "n"; Flexer.NEWLINE; Flexer.EOF ]);
  Alcotest.(check bool) "case insensitive" true
    (toks "REAL :: X" = toks "real :: x");
  Alcotest.(check bool) "comment stripped" true
    (toks "x = 1 ! a comment" = toks "x = 1")

let test_lexer_numbers () =
  Alcotest.(check bool) "d exponent" true
    (match toks "x = 6.0d0" with
    | [ _; _; Flexer.REAL (6.0, 8); _; _ ] -> true
    | _ -> false);
  Alcotest.(check bool) "kind suffix" true
    (match toks "x = 1.5_8" with
    | [ _; _; Flexer.REAL (1.5, 8); _; _ ] -> true
    | _ -> false);
  Alcotest.(check bool) "exponent" true
    (match toks "x = 2.5e-3" with
    | [ _; _; Flexer.REAL (0.0025, 4); _; _ ] -> true
    | _ -> false)

let test_lexer_operators () =
  Alcotest.(check bool) "dot operators" true
    (toks "a .and. .not. b"
    = [ Flexer.IDENT "a"; Flexer.AND; Flexer.NOT; Flexer.IDENT "b";
        Flexer.NEWLINE; Flexer.EOF ]);
  Alcotest.(check bool) "pow vs mul" true
    (toks "a ** b * c"
    = [ Flexer.IDENT "a"; Flexer.POW; Flexer.IDENT "b"; Flexer.STAR;
        Flexer.IDENT "c"; Flexer.NEWLINE; Flexer.EOF ]);
  Alcotest.(check bool) "comparisons" true
    (toks "a /= b <= c"
    = [ Flexer.IDENT "a"; Flexer.NE; Flexer.IDENT "b"; Flexer.LE_;
        Flexer.IDENT "c"; Flexer.NEWLINE; Flexer.EOF ])

let test_lexer_continuation () =
  Alcotest.(check bool) "continuation joins lines" true
    (toks "x = 1 + &\n 2" = toks "x = 1 + 2")

(* ---------------- parser ---------------- *)

let parse1 src =
  match Fparser.parse_source src with
  | [ u ] -> u
  | us -> Alcotest.failf "expected 1 unit, got %d" (List.length us)

let test_parse_program () =
  let u =
    parse1
      {|
program p
  implicit none
  integer :: i
  real(kind=8) :: x
  x = 0.0d0
  do i = 1, 10
    x = x + 1.0d0
  end do
end program p
|}
  in
  Alcotest.(check string) "name" "p" u.Fast.u_name;
  Alcotest.(check int) "decls" 2 (List.length u.Fast.u_decls);
  Alcotest.(check int) "stmts" 2 (List.length u.Fast.u_body);
  match (List.nth u.Fast.u_body 1).Fast.s_kind with
  | Fast.Do ("i", _, _, None, body) ->
    Alcotest.(check int) "loop body" 1 (List.length body)
  | _ -> Alcotest.fail "expected do loop"

let test_parse_dims () =
  let u =
    parse1
      {|
program p
  implicit none
  integer, parameter :: n = 4
  real(kind=8), dimension(0:n+1, n) :: a
  real(kind=8), allocatable :: b(:, :)
  a(1, 1) = 0.0d0
end program p
|}
  in
  let a = List.nth u.Fast.u_decls 1 in
  Alcotest.(check int) "a rank" 2 (List.length a.Fast.d_dims);
  let b = List.nth u.Fast.u_decls 2 in
  Alcotest.(check bool) "b allocatable" true b.Fast.d_allocatable;
  Alcotest.(check bool) "b deferred" true
    (List.for_all
       (fun d -> d.Fast.ds_lower = None && d.Fast.ds_upper = None)
       b.Fast.d_dims)

let test_parse_if_elseif () =
  let u =
    parse1
      {|
program p
  implicit none
  integer :: i
  i = 0
  if (i > 0) then
    i = 1
  else if (i < 0) then
    i = 2
  else
    i = 3
  end if
end program p
|}
  in
  match (List.nth u.Fast.u_body 1).Fast.s_kind with
  | Fast.If (branches, Some else_body) ->
    Alcotest.(check int) "branches" 2 (List.length branches);
    Alcotest.(check int) "else" 1 (List.length else_body)
  | _ -> Alcotest.fail "expected if"

let test_parse_subroutine_function () =
  let us =
    Fparser.parse_source
      {|
subroutine s(a, b)
  implicit none
  real(kind=8), intent(in) :: a
  real(kind=8), intent(out) :: b
  b = a * 2.0d0
end subroutine s

real(kind=8) function f(x)
  implicit none
  real(kind=8) :: x
  real(kind=8) :: f
  f = x + 1.0d0
end function f
|}
  in
  Alcotest.(check int) "two units" 2 (List.length us);
  (match (List.hd us).Fast.u_kind with
  | Fast.Subroutine [ "a"; "b" ] -> ()
  | _ -> Alcotest.fail "subroutine args");
  match (List.nth us 1).Fast.u_kind with
  | Fast.Function ([ "x" ], "f") -> ()
  | _ -> Alcotest.fail "function result"

let test_precedence () =
  let u = parse1 "program p\nimplicit none\nreal :: x\nx = 1 + 2 * 3 ** 2\nend program p" in
  match (List.hd u.Fast.u_body).Fast.s_kind with
  | Fast.Assign (_, rhs) ->
    Alcotest.(check string) "precedence" "(1 + (2 * (3 ** 2)))"
      (Fast.expr_to_string rhs)
  | _ -> Alcotest.fail "assign"

let test_parse_error_reported () =
  Alcotest.(check bool) "missing end do" true
    (match Fparser.parse_source "program p\ndo i = 1, 3\nend program p" with
    | exception Fparser.Parse_error _ -> true
    | _ -> false)

(* ---------------- sema ---------------- *)

let analyze src = Fsema.analyze (Fparser.parse_source src)

let sema_fails src =
  match analyze src with
  | exception Fsema.Sema_error _ -> true
  | _ -> false

let test_sema_undeclared () =
  Alcotest.(check bool) "undeclared var" true
    (sema_fails "program p\nimplicit none\nx = 1\nend program p")

let test_sema_rank_mismatch () =
  Alcotest.(check bool) "rank mismatch" true
    (sema_fails
       {|
program p
  implicit none
  real(kind=8), dimension(4, 4) :: a
  a(1) = 0.0d0
end program p
|})

let test_sema_parameter_assignment () =
  Alcotest.(check bool) "assign to parameter" true
    (sema_fails
       {|
program p
  implicit none
  integer, parameter :: n = 4
  n = 5
end program p
|})

let test_sema_allocate_non_allocatable () =
  Alcotest.(check bool) "allocate non-allocatable" true
    (sema_fails
       {|
program p
  implicit none
  real(kind=8), dimension(4) :: a
  allocate(a(4))
end program p
|})

let test_sema_parameter_folding () =
  let envs =
    analyze
      {|
program p
  implicit none
  integer, parameter :: n = 4, m = n * 2 + 1
  real(kind=8), dimension(m) :: a
  a(1) = 0.0d0
end program p
|}
  in
  let env = List.hd envs in
  match Hashtbl.find env.Fsema.env_symbols "m" with
  | Fsema.S_param (_, Fsema.C_int 9) -> ()
  | _ -> Alcotest.fail "parameter m should fold to 9"

(* ---------------- lowering ---------------- *)

let lower src = Flower.compile_source src

let count name m =
  List.length (Op.collect_ops (fun o -> o.Op.o_name = name) m)

let test_lower_stack_array () =
  let m =
    lower
      {|
program p
  implicit none
  real(kind=8), dimension(4, 4) :: a
  a(2, 3) = 1.5d0
end program p
|}
  in
  Verifier.verify_exn m;
  Verifier.verify_in_context_exn (Dialect.flang_context ()) m;
  Alcotest.(check int) "one array alloca + program alloca count" 1
    (count "fir.alloca" m);
  Alcotest.(check int) "coordinate_of" 1 (count "fir.coordinate_of" m);
  Alcotest.(check int) "store" 1 (count "fir.store" m);
  (* stack array: coordinate_of operates directly on the alloca *)
  let coord =
    List.hd (Op.collect_ops (fun o -> o.Op.o_name = "fir.coordinate_of") m)
  in
  match Op.defining_op (Op.operand coord) with
  | Some d -> Alcotest.(check string) "base is alloca" "fir.alloca" d.Op.o_name
  | None -> Alcotest.fail "no base"

let test_lower_heap_array () =
  let m =
    lower
      {|
program p
  implicit none
  integer, parameter :: n = 4
  real(kind=8), allocatable :: a(:, :)
  allocate(a(n, n))
  a(2, 3) = 1.5d0
  deallocate(a)
end program p
|}
  in
  Verifier.verify_exn m;
  Alcotest.(check int) "allocmem" 1 (count "fir.allocmem" m);
  Alcotest.(check int) "freemem" 1 (count "fir.freemem" m);
  (* heap route: coordinate_of goes through a fir.load of the cell *)
  let coord =
    List.hd (Op.collect_ops (fun o -> o.Op.o_name = "fir.coordinate_of") m)
  in
  match Op.defining_op (Op.operand coord) with
  | Some d -> Alcotest.(check string) "base is load" "fir.load" d.Op.o_name
  | None -> Alcotest.fail "no base"

let test_lower_lower_bounds () =
  (* dimension(0:n) means index i maps to zero-based i - 0; while
     dimension(n) maps i to i - 1: verify by executing *)
  let m =
    lower
      {|
program p
  implicit none
  real(kind=8), dimension(0:3) :: a
  real(kind=8), dimension(4) :: b
  a(0) = 1.0d0
  b(1) = 2.0d0
end program p
|}
  in
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx m;
  Fsc_rt.Interp.run_main ctx;
  let a = List.assoc "a" ctx.Fsc_rt.Interp.named_buffers in
  let b = List.assoc "b" ctx.Fsc_rt.Interp.named_buffers in
  Alcotest.(check (float 0.)) "a(0) -> flat 0" 1.0
    (Fsc_rt.Memref_rt.get_flat a 0);
  Alcotest.(check (float 0.)) "b(1) -> flat 0" 2.0
    (Fsc_rt.Memref_rt.get_flat b 0)

let test_lower_paren_no_reassoc () =
  let m =
    lower
      {|
program p
  implicit none
  real(kind=8) :: x, y
  y = 1.0d0
  x = 2.0d0 * (y + 3.0d0)
end program p
|}
  in
  Alcotest.(check int) "no_reassoc emitted" 1 (count "fir.no_reassoc" m)

let test_lower_do_loop_shape () =
  let m =
    lower
      {|
program p
  implicit none
  integer :: i
  real(kind=8) :: x
  x = 0.0d0
  do i = 1, 8
    x = x + 1.0d0
  end do
end program p
|}
  in
  Alcotest.(check int) "do_loop" 1 (count "fir.do_loop" m);
  let loop =
    List.hd (Op.collect_ops (fun o -> o.Op.o_name = "fir.do_loop") m)
  in
  Alcotest.(check int) "3 bounds operands" 3 (Op.num_operands loop)

let test_lower_function_call () =
  let m =
    lower
      {|
real(kind=8) function double_it(x)
  implicit none
  real(kind=8) :: x
  real(kind=8) :: double_it
  double_it = x * 2.0d0
end function double_it

program p
  implicit none
  real(kind=8) :: y
  y = double_it(21.0d0)
end program p
|}
  in
  Verifier.verify_exn m;
  Alcotest.(check int) "call lowered" 1 (count "fir.call" m);
  (* and it executes correctly *)
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx m;
  let buf = Buffer.create 16 in
  ctx.Fsc_rt.Interp.output <- Some buf;
  Fsc_rt.Interp.run_main ctx

let run_program src =
  let m = lower src in
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx m;
  let buf = Buffer.create 32 in
  ctx.Fsc_rt.Interp.output <- Some buf;
  Fsc_rt.Interp.run_main ctx;
  Buffer.contents buf

let test_do_while () =
  let out =
    run_program
      {|
program p
  implicit none
  integer :: i
  i = 0
  do while (i < 5)
    i = i + 1
  end do
  print *, i
end program p
|}
  in
  Alcotest.(check string) "while counts to 5" "5\n" out

let test_exit_cycle () =
  let out =
    run_program
      {|
program p
  implicit none
  integer :: i, total
  total = 0
  do i = 1, 100
    if (i > 10) then
      exit
    end if
    if (mod(i, 2) == 0) then
      cycle
    end if
    total = total + i
  end do
  print *, total
end program p
|}
  in
  (* 1+3+5+7+9 = 25 *)
  Alcotest.(check string) "exit and cycle" "25\n" out

let test_exit_inner_loop_only () =
  let out =
    run_program
      {|
program p
  implicit none
  integer :: i, j, total
  total = 0
  do i = 1, 3
    do j = 1, 10
      if (j > 2) then
        exit
      end if
      total = total + 1
    end do
  end do
  print *, total
end program p
|}
  in
  (* inner loop contributes 2 per outer iteration *)
  Alcotest.(check string) "exit unwinds one level" "6\n" out

let test_array_reductions () =
  let out =
    run_program
      {|
program p
  implicit none
  integer, parameter :: n = 4
  integer :: i, j
  real(kind=8), dimension(n, n) :: a
  do j = 1, n
    do i = 1, n
      a(i, j) = dble(i) + 10.0d0 * dble(j)
    end do
  end do
  print *, sum(a), maxval(a), minval(a)
end program p
|}
  in
  Alcotest.(check string) "sum/maxval/minval" "440 44 11\n" out

let test_reduction_not_a_stencil () =
  (* the reduction loop writes its accumulator inside the nest: discovery
     must leave it alone *)
  let src =
    {|
program p
  implicit none
  integer, parameter :: n = 4
  integer :: i
  real(kind=8) :: total
  real(kind=8), dimension(n) :: a
  do i = 1, n
    a(i) = dble(i)
  end do
  total = sum(a)
  print *, total
end program p
|}
  in
  let m = lower src in
  let stats = Fsc_core.Discovery.run m in
  (* only the initialisation loop becomes a stencil *)
  Alcotest.(check int) "init only" 1 stats.Fsc_core.Discovery.found;
  Alcotest.(check bool) "reduction loop survives" true
    (count "fir.do_loop" m >= 1)

let test_unsupported_reported () =
  (* whole-array assignment remains unsupported and must be reported *)
  Alcotest.(check bool) "whole-array assignment unsupported" true
    (match
       Fsema.analyze
         (Fparser.parse_source
            "program p\nimplicit none\nreal(kind=8), dimension(4) :: a\na = 0.0d0\nend program p")
     with
    | exception Fsema.Sema_error _ -> true
    | _ -> false)

(* fuzz: the frontend must fail only through its declared exceptions *)
let prop_frontend_total =
  QCheck.Test.make ~name:"frontend is total on garbage" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let frag =
           oneofl
             [ "program p"; "implicit none"; "integer :: i";
               "real(kind=8), dimension(0:n+1) :: a"; "do i = 1, n";
               "end do"; "end program p"; "a(i) = a(i-1) + 1.0d0";
               "if (i > 0) then"; "end if"; "call s(a)"; "allocate(a(n))";
               "x = 1.0d0 ** 2"; "print *, x"; "::"; "(("; "end";
               "integer, parameter :: n = 8"; "+ 1.0" ]
         in
         map (String.concat "\n") (list_size (int_range 0 14) frag)))
    (fun src ->
      match Fsc_fortran.Flower.compile_source src with
      | _ -> true
      | exception Fsc_fortran.Fparser.Parse_error _ -> true
      | exception Fsc_fortran.Fsema.Sema_error _ -> true
      | exception Fsc_fortran.Flower.Unsupported _ -> true
      | exception Fsc_fortran.Flexer.Lex_error _ -> true)

let () =
  Alcotest.run "fortran"
    [ ("lexer",
       [ Alcotest.test_case "basics" `Quick test_lexer_basics;
         Alcotest.test_case "numbers" `Quick test_lexer_numbers;
         Alcotest.test_case "operators" `Quick test_lexer_operators;
         Alcotest.test_case "continuation" `Quick test_lexer_continuation ]);
      ("parser",
       [ Alcotest.test_case "program" `Quick test_parse_program;
         Alcotest.test_case "dimensions" `Quick test_parse_dims;
         Alcotest.test_case "if/else if" `Quick test_parse_if_elseif;
         Alcotest.test_case "subroutine+function" `Quick
           test_parse_subroutine_function;
         Alcotest.test_case "precedence" `Quick test_precedence;
         Alcotest.test_case "errors" `Quick test_parse_error_reported ]);
      ("sema",
       [ Alcotest.test_case "undeclared" `Quick test_sema_undeclared;
         Alcotest.test_case "rank mismatch" `Quick test_sema_rank_mismatch;
         Alcotest.test_case "parameter assignment" `Quick
           test_sema_parameter_assignment;
         Alcotest.test_case "allocate non-allocatable" `Quick
           test_sema_allocate_non_allocatable;
         Alcotest.test_case "parameter folding" `Quick
           test_sema_parameter_folding ]);
      ("lowering",
       [ Alcotest.test_case "stack array" `Quick test_lower_stack_array;
         Alcotest.test_case "heap array" `Quick test_lower_heap_array;
         Alcotest.test_case "lower bounds" `Quick test_lower_lower_bounds;
         Alcotest.test_case "paren -> no_reassoc" `Quick
           test_lower_paren_no_reassoc;
         Alcotest.test_case "do loop shape" `Quick test_lower_do_loop_shape;
         Alcotest.test_case "function call" `Quick test_lower_function_call;
         Alcotest.test_case "do while" `Quick test_do_while;
         Alcotest.test_case "exit and cycle" `Quick test_exit_cycle;
         Alcotest.test_case "exit unwinds one level" `Quick
           test_exit_inner_loop_only;
         Alcotest.test_case "array reductions" `Quick test_array_reductions;
         Alcotest.test_case "reduction is not a stencil" `Quick
           test_reduction_not_a_stencil;
         Alcotest.test_case "unsupported reported" `Quick
           test_unsupported_reported ]);
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_frontend_total ]) ]

"builtin.module"() ({
^bb0:
  "func.func"() ({
  ^bb1(%0: !llvm.ptr, %1: !llvm.ptr):
    %2 = "builtin.unrealized_conversion_cast"(%0) : (!llvm.ptr) -> (memref<9x9xf64>)
    %3 = "builtin.unrealized_conversion_cast"(%1) : (!llvm.ptr) -> (memref<9x9xf64>)
    %4 = "stencil.external_load"(%2) : (memref<9x9xf64>) -> (!stencil.field<[0,8]x[0,8]xf64>)
    %5 = "stencil.load"(%4) : (!stencil.field<[0,8]x[0,8]xf64>) -> (!stencil.temp<[0,8]x[0,8]xf64>)
    %6 = "stencil.external_load"(%3) : (memref<9x9xf64>) -> (!stencil.field<[0,8]x[0,8]xf64>)
    %7 = "stencil.apply"(%5) ({
    ^bb2(%8: !stencil.temp<[0,8]x[0,8]xf64>):
      %9 = "arith.constant"() {"value" = 0.25} : () -> (f32)
      %10 = "arith.extf"(%9) : (f32) -> (f64)
      %11 = "stencil.access"(%8) {"offset" = #stencil.index<0, -1>} : (!stencil.temp<[0,8]x[0,8]xf64>) -> (f64)
      %12 = "stencil.access"(%8) {"offset" = #stencil.index<0, 1>} : (!stencil.temp<[0,8]x[0,8]xf64>) -> (f64)
      %13 = "arith.addf"(%11, %12) : (f64, f64) -> (f64)
      %14 = "stencil.access"(%8) {"offset" = #stencil.index<-1, 0>} : (!stencil.temp<[0,8]x[0,8]xf64>) -> (f64)
      %15 = "arith.addf"(%13, %14) : (f64, f64) -> (f64)
      %16 = "stencil.access"(%8) {"offset" = #stencil.index<1, 0>} : (!stencil.temp<[0,8]x[0,8]xf64>) -> (f64)
      %17 = "arith.addf"(%15, %16) : (f64, f64) -> (f64)
      %18 = "arith.mulf"(%10, %17) : (f64, f64) -> (f64)
      "stencil.return"(%18) : (f64) -> ()
    }) : (!stencil.temp<[0,8]x[0,8]xf64>) -> (!stencil.temp<[1,7]x[1,7]xf64>)
    "stencil.store"(%7, %6) {"lb" = #stencil.index<1, 1>, "ub" = #stencil.index<7, 7>} : (!stencil.temp<[1,7]x[1,7]xf64>, !stencil.field<[0,8]x[0,8]xf64>) -> ()
    "func.return"() : () -> ()
  }) {"function_type" = (!llvm.ptr, !llvm.ptr) -> (), "sym_name" = "_stencil_kernel_0"} : () -> ()
}) : () -> ()

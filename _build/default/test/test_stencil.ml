(* Stencil dialect unit tests: op verifiers, builders, access queries and
   shape inference. *)

open Fsc_ir
module Stencil = Fsc_stencil.Stencil

let () = Fsc_dialects.Registry.init ()

let mk_field b ~bounds =
  let mr =
    Builder.op1 b "memref.alloc"
      ~results:
        [ Types.Memref
            (List.map (fun (lo, hi) -> Types.Static (hi - lo + 1)) bounds,
             Types.F64) ]
  in
  Stencil.external_load b mr ~bounds

let in_module build =
  let m = Op.create_module () in
  let f =
    Fsc_dialects.Func.func ~name:"k" ~args:[] ~results:[] (fun b _ ->
        build b;
        Fsc_dialects.Func.return_ b [])
  in
  Op.append_to (Op.module_block m) f;
  m

let test_builders_verify () =
  let bounds = [ (0, 16); (0, 16) ] in
  let m =
    in_module (fun b ->
        let field = mk_field b ~bounds in
        let temp = Stencil.load b field in
        let out_field = mk_field b ~bounds in
        let results =
          Stencil.apply b ~inputs:[ temp ] ~out_bounds:[ (1, 15); (1, 15) ]
            ~out_elems:[ Types.F64 ] (fun inner args ->
              let x = Stencil.access inner (List.hd args) ~offset:[ 0; -1 ] in
              let y = Stencil.access inner (List.hd args) ~offset:[ 0; 1 ] in
              [ Fsc_dialects.Arith.addf inner x y ])
        in
        Stencil.store b (List.hd results) out_field ~lb:[ 1; 1 ]
          ~ub:[ 15; 15 ])
  in
  Verifier.verify_exn m

let test_access_offset_rank_checked () =
  let m =
    in_module (fun b ->
        let field = mk_field b ~bounds:[ (0, 8); (0, 8) ] in
        let temp = Stencil.load b field in
        ignore
          (Stencil.apply b ~inputs:[ temp ] ~out_bounds:[ (1, 7); (1, 7) ]
             ~out_elems:[ Types.F64 ] (fun inner args ->
               (* wrong rank offset: 1 entry for a 2-D temp *)
               let bad =
                 Builder.op1 inner "stencil.access"
                   ~operands:[ List.hd args ] ~results:[ Types.F64 ]
                   ~attrs:[ ("offset", Attr.Index_a [ 1 ]) ]
               in
               [ bad ])))
  in
  Alcotest.(check bool) "rank mismatch rejected" true
    (Result.is_error (Verifier.verify m))

let test_apply_arg_mismatch_checked () =
  let m =
    in_module (fun b ->
        let field = mk_field b ~bounds:[ (0, 8) ] in
        let temp = Stencil.load b field in
        (* an apply whose block takes no args but has one operand *)
        let region, blk = Op.region_with_block () in
        ignore
          (Builder.op (Builder.at_end blk) "stencil.return"
             ~operands:[]);
        ignore
          (Builder.op b "stencil.apply" ~operands:[ temp ]
             ~results:[ Stencil.temp_type [ (0, 8) ] Types.F64 ]
             ~regions:[ region ]))
  in
  Alcotest.(check bool) "apply arg count checked" true
    (Result.is_error (Verifier.verify m))

let test_apply_accesses_query () =
  let bounds = [ (0, 8); (0, 8) ] in
  let captured = ref None in
  let _m =
    in_module (fun b ->
        let f1 = mk_field b ~bounds in
        let t1 = Stencil.load b f1 in
        let f2 = mk_field b ~bounds in
        let t2 = Stencil.load b f2 in
        let out = mk_field b ~bounds in
        let rs =
          Stencil.apply b ~inputs:[ t1; t2 ]
            ~out_bounds:[ (1, 7); (1, 7) ] ~out_elems:[ Types.F64 ]
            (fun inner args ->
              match args with
              | [ a; c ] ->
                let x = Stencil.access inner a ~offset:[ -1; 0 ] in
                let y = Stencil.access inner a ~offset:[ 1; 0 ] in
                let z = Stencil.access inner c ~offset:[ 0; 0 ] in
                let s = Fsc_dialects.Arith.addf inner x y in
                [ Fsc_dialects.Arith.addf inner s z ]
              | _ -> assert false)
        in
        (match Op.defining_op (List.hd rs) with
        | Some apply -> captured := Some (Stencil.apply_accesses apply)
        | None -> ());
        Stencil.store b (List.hd rs) out ~lb:[ 1; 1 ] ~ub:[ 7; 7 ])
  in
  match !captured with
  | Some accesses ->
    Alcotest.(check int) "three accesses" 3 (List.length accesses);
    Alcotest.(check bool) "input 0 has two" true
      (List.length (List.filter (fun (i, _) -> i = 0) accesses) = 2);
    Alcotest.(check bool) "input 1 offset 0,0" true
      (List.mem (1, [ 0; 0 ]) accesses)
  | None -> Alcotest.fail "no apply captured"

let test_shape_inference () =
  (* an apply whose input type starts too small: inference must grow the
     input temp to cover output + offsets *)
  let m =
    in_module (fun b ->
        let bounds = [ (0, 10); (0, 10) ] in
        let field = mk_field b ~bounds in
        let temp = Stencil.load b field in
        let out = mk_field b ~bounds in
        let rs =
          Stencil.apply b ~inputs:[ temp ] ~out_bounds:[ (2, 9); (2, 9) ]
            ~out_elems:[ Types.F64 ] (fun inner args ->
              [ Stencil.access inner (List.hd args) ~offset:[ -2; 1 ] ])
        in
        Stencil.store b (List.hd rs) out ~lb:[ 2; 2 ] ~ub:[ 9; 9 ])
  in
  let f = Fsc_dialects.Func.lookup_exn m "k" in
  Stencil.infer_shapes_in_func f;
  let apply = List.hd (Op.collect_ops Stencil.is_apply m) in
  (match Op.value_type (Op.operand apply) with
  | Types.Stencil_temp (b, _) ->
    (* output [2,9]x[2,9] at offset [-2,1] needs [0,7]x[3,10] *)
    Alcotest.(check bool) "input covers accesses" true
      (List.for_all2
         (fun (lo, hi) (nlo, nhi) -> lo <= nlo && hi >= nhi)
         b
         [ (0, 7); (3, 10) ])
  | _ -> Alcotest.fail "temp expected");
  match Op.value_type (Op.result apply) with
  | Types.Stencil_temp (b, _) ->
    Alcotest.(check bool) "output bounds set" true (b = [ (2, 9); (2, 9) ])
  | _ -> Alcotest.fail "temp result expected"

let test_type_helpers () =
  let t = Stencil.temp_type [ (-1, 255); (-1, 255) ] Types.F64 in
  Alcotest.(check string) "printed like the paper"
    "!stencil.temp<[-1,255]x[-1,255]xf64>" (Types.to_string t);
  Alcotest.(check bool) "bounds round" true
    (Stencil.type_bounds t = [ (-1, 255); (-1, 255) ]);
  Alcotest.(check bool) "elem" true (Stencil.type_elem t = Types.F64)

let () =
  Alcotest.run "stencil"
    [ ("dialect",
       [ Alcotest.test_case "builders verify" `Quick test_builders_verify;
         Alcotest.test_case "access offset rank" `Quick
           test_access_offset_rank_checked;
         Alcotest.test_case "apply arg mismatch" `Quick
           test_apply_arg_mismatch_checked;
         Alcotest.test_case "apply_accesses query" `Quick
           test_apply_accesses_query;
         Alcotest.test_case "shape inference" `Quick test_shape_inference;
         Alcotest.test_case "type helpers" `Quick test_type_helpers ]) ]

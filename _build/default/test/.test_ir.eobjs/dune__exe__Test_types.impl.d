test/test_types.ml: Alcotest Fsc_ir List QCheck QCheck_alcotest Types

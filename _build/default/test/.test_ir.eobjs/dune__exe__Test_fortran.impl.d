test/test_fortran.ml: Alcotest Buffer Dialect Fast Flexer Flower Fparser Fsc_core Fsc_dialects Fsc_fortran Fsc_ir Fsc_rt Fsema Hashtbl List Op QCheck QCheck_alcotest String Verifier

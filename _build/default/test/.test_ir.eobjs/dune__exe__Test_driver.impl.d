test/test_driver.ml: Alcotest Fsc_driver Fsc_lowering Fsc_rt Lazy List

test/test_stencil.ml: Alcotest Attr Builder Fsc_dialects Fsc_ir Fsc_stencil List Op Result Types Verifier

test/test_kernel_compile.ml: Alcotest Float Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fsc_lowering Fsc_rt List Op Types

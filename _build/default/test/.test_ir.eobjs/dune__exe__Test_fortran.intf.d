test/test_fortran.mli:

test/test_golden.ml: Alcotest Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fun

test/test_stencil.mli:

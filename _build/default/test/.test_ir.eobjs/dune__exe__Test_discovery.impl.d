test/test_discovery.ml: Alcotest Dialect Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fsc_stencil List Op Printer Printf QCheck QCheck_alcotest Str String Types Verifier

test/test_discovery.mli:

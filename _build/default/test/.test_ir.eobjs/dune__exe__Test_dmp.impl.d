test/test_dmp.ml: Alcotest Array Float Fsc_core Fsc_dialects Fsc_dmp Fsc_driver Fsc_fortran Fsc_ir Fsc_rt List Op QCheck QCheck_alcotest

test/test_dmp.mli:

test/test_extraction.ml: Alcotest Attr Dialect Filename Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fsc_lowering List Op String Types Verifier

test/test_parser.ml: Alcotest Attr Builder Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Gen Hashtbl List Op Parser Printer QCheck QCheck_alcotest Result String Types

test/test_transforms.ml: Alcotest Float Fsc_dialects Fsc_ir Fsc_rt Fsc_transforms List Op Pass QCheck QCheck_alcotest Rewrite Types

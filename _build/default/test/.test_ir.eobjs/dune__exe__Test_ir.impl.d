test/test_ir.ml: Alcotest Attr Builder Dialect Fsc_dialects Fsc_fir Fsc_ir Fsc_transforms List Op Pass Result Rewrite Types Verifier

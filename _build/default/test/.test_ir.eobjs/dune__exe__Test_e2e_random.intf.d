test/test_e2e_random.mli:

test/test_runtime.ml: Alcotest Array Atomic Fsc_rt QCheck QCheck_alcotest

test/test_fir_to_std.mli:

test/test_kernel_compile.mli:

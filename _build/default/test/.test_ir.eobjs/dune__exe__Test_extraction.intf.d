test/test_extraction.mli:

test/test_perf.ml: Alcotest Fsc_perf List Printf

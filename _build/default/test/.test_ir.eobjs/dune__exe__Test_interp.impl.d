test/test_interp.ml: Alcotest Buffer Builder Fsc_dialects Fsc_fir Fsc_fortran Fsc_ir Fsc_rt List Op Types

test/test_lowering.ml: Alcotest Dialect Float Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fsc_lowering Fsc_rt List Op Result Str Verifier

test/test_fir_to_std.ml: Alcotest Buffer Dialect Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fsc_lowering Fsc_rt Hashtbl List Op Option Verifier

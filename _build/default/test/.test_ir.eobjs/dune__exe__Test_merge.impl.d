test/test_merge.ml: Alcotest Fsc_core Fsc_dialects Fsc_driver Fsc_fortran Fsc_ir Fsc_lowering Fsc_rt Fsc_stencil List Op Verifier

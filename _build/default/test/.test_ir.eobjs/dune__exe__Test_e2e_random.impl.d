test/test_e2e_random.ml: Alcotest Buffer Fsc_core Fsc_driver Fsc_fortran Fsc_rt List Printf QCheck QCheck_alcotest String

(* Extraction tests: module splitting, the llvm_ptr boundary, dialect
   registration constraints, and the GPU data-placement pass. *)

open Fsc_ir

let () = Fsc_dialects.Registry.init ()

let extract src =
  Fsc_core.Extraction.reset_name_counter ();
  let m = Fsc_fortran.Flower.compile_source src in
  ignore (Fsc_core.Discovery.run m);
  ignore (Fsc_core.Merge.run m);
  Fsc_core.Extraction.run m

let count name m =
  List.length (Op.collect_ops (fun o -> o.Op.o_name = name) m)

let gs = Fsc_driver.Benchmarks.gauss_seidel ~nx:6 ~ny:6 ~nz:6 ~niter:2 ()

let test_host_is_flang_clean () =
  let ex = extract gs in
  (* the host module must verify under Flang's restricted registry... *)
  Verifier.verify_in_context_exn (Dialect.flang_context ())
    ex.Fsc_core.Extraction.host_module;
  (* ...and contain no stencil ops at all *)
  Alcotest.(check int) "no stencil ops in host" 0
    (List.length
       (Op.collect_ops
          (fun o -> Dialect.dialect_of_op_name o.Op.o_name = "stencil")
          ex.Fsc_core.Extraction.host_module))

let test_stencil_module_is_fir_free () =
  let ex = extract gs in
  Alcotest.(check int) "no fir ops in stencil module" 0
    (List.length
       (Op.collect_ops
          (fun o -> Dialect.dialect_of_op_name o.Op.o_name = "fir")
          ex.Fsc_core.Extraction.stencil_module));
  (* the mixed pre-extraction module is NOT acceptable to either tool;
     after lowering to scf the stencil module becomes mlir-opt clean *)
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu
    ex.Fsc_core.Extraction.stencil_module;
  Verifier.verify_in_context_exn (Dialect.mlir_opt_context ())
    ex.Fsc_core.Extraction.stencil_module

let test_boundary_types () =
  let ex = extract gs in
  (* host passes !fir.llvm_ptr<i8>; kernels accept !llvm.ptr — nominally
     different, reconciled at link time (Section 3 of the paper) *)
  let calls =
    Op.collect_ops
      (fun o ->
        o.Op.o_name = "fir.call"
        &&
        match Op.attr o "callee" with
        | Some (Attr.Sym_a s) ->
          String.length s > 15 && String.sub s 0 15 = "_stencil_kernel"
        | _ -> false)
      ex.Fsc_core.Extraction.host_module
  in
  Alcotest.(check bool) "kernel calls exist" true (calls <> []);
  List.iter
    (fun call ->
      List.iter
        (fun (v : Op.value) ->
          match Op.value_type v with
          | Types.Fir_llvm_ptr Types.I8 -> ()
          | t when Types.is_scalar t -> ()
          | t ->
            Alcotest.failf "unexpected boundary type %s" (Types.to_string t))
        (Op.operands call))
    calls;
  List.iter
    (fun k ->
      let args, _ = Fsc_dialects.Func.signature k in
      List.iter
        (fun t ->
          match t with
          | Types.Llvm_ptr -> ()
          | t when Types.is_scalar t -> ()
          | t -> Alcotest.failf "kernel arg type %s" (Types.to_string t))
        args)
    (Fsc_dialects.Func.all_functions ex.Fsc_core.Extraction.stencil_module)

let test_kernel_metadata () =
  let ex = extract gs in
  Alcotest.(check int) "two kernels (init, sweep+copy)" 2
    (List.length ex.Fsc_core.Extraction.kernels);
  List.iter
    (fun k ->
      Alcotest.(check bool) "has array args" true
        (List.exists
           (function Fsc_core.Extraction.K_array _ -> true | _ -> false)
           k.Fsc_core.Extraction.k_args))
    ex.Fsc_core.Extraction.kernels

let test_memref_rebuild () =
  let ex = extract gs in
  (* each kernel rebuilds memrefs from pointers via
     builtin.unrealized_conversion_cast *)
  let casts =
    count "builtin.unrealized_conversion_cast"
      ex.Fsc_core.Extraction.stencil_module
  in
  Alcotest.(check bool) "casts present" true (casts > 0)

let test_pw_scalars_cross_boundary () =
  let ex =
    extract (Fsc_driver.Benchmarks.pw_advection ~nx:6 ~ny:6 ~nz:6 ~niter:1 ())
  in
  (* rdx/rdy/rdz cross as scalar f64 arguments *)
  let has_scalar_args =
    List.exists
      (fun k ->
        List.exists
          (function
            | Fsc_core.Extraction.K_scalar Types.F64 -> true
            | _ -> false)
          k.Fsc_core.Extraction.k_args)
      ex.Fsc_core.Extraction.kernels
  in
  Alcotest.(check bool) "scalar args" true has_scalar_args;
  Verifier.verify_in_context_exn (Dialect.flang_context ())
    ex.Fsc_core.Extraction.host_module

let test_gpu_data_pass () =
  let ex = extract gs in
  let managed =
    Fsc_core.Gpu_data.run ~host_module:ex.Fsc_core.Extraction.host_module
      ~stencil_module:ex.Fsc_core.Extraction.stencil_module
  in
  Alcotest.(check int) "both kernels managed" 2 (List.length managed);
  let host = ex.Fsc_core.Extraction.host_module in
  Verifier.verify_in_context_exn (Dialect.flang_context ()) host;
  (* init/sync/free trampolines appear in the host *)
  let call_names =
    Op.collect_ops (fun o -> o.Op.o_name = "fir.call") host
    |> List.map (fun o -> Op.string_attr o "callee")
  in
  Alcotest.(check bool) "init call" true
    (List.exists
       (fun n -> Filename.check_suffix n "_gpu_init")
       call_names);
  Alcotest.(check bool) "sync call" true
    (List.exists
       (fun n -> Filename.check_suffix n "_gpu_sync")
       call_names);
  (* device functions with gpu dialect ops live in the stencil module,
     never in the host (Flang does not register gpu) *)
  Alcotest.(check int) "no gpu ops in host" 0
    (List.length
       (Op.collect_ops
          (fun o -> Dialect.dialect_of_op_name o.Op.o_name = "gpu")
          host));
  Alcotest.(check bool) "gpu ops in stencil module" true
    (count "gpu.memcpy" ex.Fsc_core.Extraction.stencil_module > 0)

let test_init_hoisted_out_of_time_loop () =
  let ex = extract gs in
  ignore
    (Fsc_core.Gpu_data.run ~host_module:ex.Fsc_core.Extraction.host_module
       ~stencil_module:ex.Fsc_core.Extraction.stencil_module);
  (* the _gpu_init call for the time-loop kernel must NOT be inside any
     fir.do_loop *)
  let host = ex.Fsc_core.Extraction.host_module in
  Op.walk
    (fun o ->
      if
        o.Op.o_name = "fir.call"
        && Filename.check_suffix (Op.string_attr o "callee") "_gpu_init"
      then begin
        let rec in_loop p =
          match Op.parent_op p with
          | Some q -> q.Op.o_name = "fir.do_loop" || in_loop q
          | None -> false
        in
        Alcotest.(check bool) "init outside loops" false (in_loop o)
      end)
    host

let () =
  Alcotest.run "extraction"
    [ ("extraction",
       [ Alcotest.test_case "host flang-clean" `Quick test_host_is_flang_clean;
         Alcotest.test_case "stencil module fir-free" `Quick
           test_stencil_module_is_fir_free;
         Alcotest.test_case "boundary types" `Quick test_boundary_types;
         Alcotest.test_case "kernel metadata" `Quick test_kernel_metadata;
         Alcotest.test_case "memref rebuild" `Quick test_memref_rebuild;
         Alcotest.test_case "pw scalars cross boundary" `Quick
           test_pw_scalars_cross_boundary ]);
      ("gpu-data",
       [ Alcotest.test_case "gpu data pass" `Quick test_gpu_data_pass;
         Alcotest.test_case "init hoisted out of time loop" `Quick
           test_init_hoisted_out_of_time_loop ]) ]

(* Byte-exact golden test: the extracted stencil module for the paper's
   Listing 1 must match the checked-in reference text. Guards the whole
   frontend + discovery + merge + extraction chain against accidental
   output drift. Regenerate with:
     dune exec bin/sfc.exe -- compile <listing1.f90> --emit stencil
   after verifying the change is intentional. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let produce () =
  Fsc_dialects.Registry.init ();
  Fsc_core.Extraction.reset_name_counter ();
  let m =
    Fsc_fortran.Flower.compile_source
      (Fsc_driver.Benchmarks.listing1 ~n:8 ())
  in
  ignore (Fsc_core.Discovery.run m);
  ignore (Fsc_core.Merge.run m);
  let ex = Fsc_core.Extraction.run m in
  Fsc_ir.Printer.module_to_string ex.Fsc_core.Extraction.stencil_module

let test_golden_stencil_module () =
  let expected = read_file "golden/listing1_stencil_module.mlir" in
  Alcotest.(check string) "listing1 stencil module" expected (produce ())

let test_golden_round_trips () =
  (* the checked-in text itself must parse and re-print identically *)
  let text = read_file "golden/listing1_stencil_module.mlir" in
  match Fsc_ir.Parser.parse_module_result text with
  | Error e -> Alcotest.failf "golden file does not parse: %s" e
  | Ok m ->
    Alcotest.(check string) "round trip" text
      (Fsc_ir.Printer.module_to_string m)

let () =
  Alcotest.run "golden"
    [ ("golden",
       [ Alcotest.test_case "stencil module text" `Quick
           test_golden_stencil_module;
         Alcotest.test_case "golden file round-trips" `Quick
           test_golden_round_trips ]) ]

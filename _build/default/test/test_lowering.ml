(* Lowering tests: stencil->scf in both modes, tiling, specialisation,
   scf->openmp, the Listing-4 GPU pipeline, and its failure modes. *)

open Fsc_ir

let () = Fsc_dialects.Registry.init ()

let count name m =
  List.length (Op.collect_ops (fun o -> o.Op.o_name = name) m)

let stencil_module ?(src = Fsc_driver.Benchmarks.gauss_seidel ~nx:6 ~ny:6
                           ~nz:6 ~niter:1 ())
    () =
  Fsc_core.Extraction.reset_name_counter ();
  let m = Fsc_fortran.Flower.compile_source src in
  ignore (Fsc_core.Discovery.run m);
  ignore (Fsc_core.Merge.run m);
  let ex = Fsc_core.Extraction.run m in
  (ex.Fsc_core.Extraction.host_module, ex.Fsc_core.Extraction.stencil_module)

let test_cpu_mode_structure () =
  let _, sm = stencil_module () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu sm;
  Verifier.verify_exn sm;
  Alcotest.(check int) "no stencil ops left" 0
    (List.length
       (Op.collect_ops
          (fun o -> Dialect.dialect_of_op_name o.Op.o_name = "stencil")
          sm));
  (* CPU mode: every parallel op is 1-D (the outermost dim), inner dims
     are serial scf.for *)
  Op.walk
    (fun o ->
      if o.Op.o_name = "scf.parallel" then
        Alcotest.(check int) "1-D parallel" 3 (Op.num_operands o))
    sm;
  Alcotest.(check bool) "has inner scf.for" true (count "scf.for" sm > 0)

let test_gpu_mode_structure () =
  let _, sm = stencil_module () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Gpu sm;
  Verifier.verify_exn sm;
  (* GPU mode: coalesced multi-dim scf.parallel, no scf.for *)
  Alcotest.(check int) "no scf.for" 0 (count "scf.for" sm);
  let found_3d = ref false in
  Op.walk
    (fun o ->
      if o.Op.o_name = "scf.parallel" && Op.num_operands o = 9 then
        found_3d := true)
    sm;
  Alcotest.(check bool) "3-D coalesced parallel" true !found_3d

let test_lowering_semantics () =
  (* direct check: lowered scf form computes the same grid as the
     interpreter running the stencil ops would — via full pipelines in
     test_driver; here a small sanity on Listing 1 *)
  let _, sm = stencil_module ~src:(Fsc_driver.Benchmarks.listing1 ~n:8 ()) () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu sm;
  Verifier.verify_exn sm;
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx sm;
  let data = Fsc_rt.Memref_rt.create [ 9; 9 ] in
  let result = Fsc_rt.Memref_rt.create [ 9; 9 ] in
  Fsc_rt.Memref_rt.init data (fun i -> float_of_int i);
  ignore
    (Fsc_rt.Interp.call ctx "_stencil_kernel_0"
       [ Fsc_rt.Interp.R_buf data; Fsc_rt.Interp.R_buf result ]);
  (* check one interior cell by hand: cell (j=2, i=3) *)
  let get j i = Fsc_rt.Memref_rt.get data [| j; i |] in
  let expected =
    0.25 *. (get 2 2 +. get 2 4 +. get 1 3 +. get 3 3)
  in
  Alcotest.(check (float 1e-12)) "cell value" expected
    (Fsc_rt.Memref_rt.get result [| 2; 3 |])

let test_specialization_attr () =
  let _, sm = stencil_module () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu sm;
  let n = Fsc_lowering.Loop_specialize.run sm in
  Alcotest.(check bool) "some loops specialised" true (n > 0);
  Op.walk
    (fun o ->
      if Op.has_attr o "specialized" then begin
        Alcotest.(check string) "only scf.for" "scf.for" o.Op.o_name;
        Alcotest.(check int) "width recorded" 4 (Op.int_attr o "vector_width")
      end)
    sm

let test_tiling () =
  let _, sm = stencil_module () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Gpu sm;
  Fsc_lowering.Loop_tiling.run ~tile_sizes:[ 8; 8; 1 ] sm;
  Verifier.verify_exn sm;
  (* nested parallel pair: outer tiled, inner intra-tile *)
  let outers =
    Op.collect_ops
      (fun o -> o.Op.o_name = "scf.parallel" && Op.has_attr o "tiled")
      sm
  in
  Alcotest.(check bool) "tiled outer exists" true (outers <> []);
  List.iter
    (fun outer ->
      let inner =
        Op.collect_ops (fun o -> o.Op.o_name = "scf.parallel") outer
        |> List.filter (fun o -> not (o == outer))
      in
      Alcotest.(check int) "one inner parallel" 1 (List.length inner))
    outers

let test_scf_to_openmp () =
  let _, sm = stencil_module () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu sm;
  let n = Fsc_lowering.Scf_to_openmp.run sm in
  Verifier.verify_exn sm;
  Alcotest.(check bool) "converted" true (n > 0);
  Alcotest.(check int) "no top-level scf.parallel left" 0
    (List.length
       (Op.collect_ops
          (fun o ->
            o.Op.o_name = "scf.parallel"
            &&
            match Op.parent_op o with
            | Some p -> p.Op.o_name = "func.func"
            | None -> false)
          sm));
  Alcotest.(check bool) "omp.parallel + wsloop" true
    (count "omp.parallel" sm > 0 && count "omp.wsloop" sm > 0)

(* ---- GPU pipeline (Listing 4) ---- *)

let gpu_lowered ?drop () =
  let _, sm = stencil_module () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Gpu sm;
  ignore (Fsc_lowering.Gpu_pipeline.run ?drop ~tile_sizes:[ 8; 8; 1 ] sm);
  sm

let test_gpu_pipeline_complete () =
  let sm = gpu_lowered () in
  Alcotest.(check bool) "launch_func generated" true
    (count "gpu.launch_func" sm > 0);
  Alcotest.(check bool) "kernels outlined into gpu.module" true
    (count "gpu.module" sm = 1 && count "gpu.func" sm > 0);
  (match Fsc_lowering.Gpu_pipeline.verify_gpu_artifact sm with
  | Ok () -> ()
  | Error e -> Alcotest.failf "artifact check failed: %s" e);
  (* the gpu.module carries embedded binary *)
  let gm = List.hd (Op.collect_ops (fun o -> o.Op.o_name = "gpu.module") sm) in
  Alcotest.(check bool) "cubin embedded" true (Op.has_attr gm "cubin")

let test_silent_cpu_fallback_detected () =
  (* dropping gpu-map-parallel-loops leaves everything on the CPU with no
     error anywhere — exactly the sharp edge the paper describes; only
     the artifact check notices *)
  let sm = gpu_lowered ~drop:[ "gpu-map-parallel-loops" ] () in
  Alcotest.(check int) "no launches" 0 (count "gpu.launch_func" sm);
  Alcotest.(check bool) "artifact check catches it" true
    (Result.is_error (Fsc_lowering.Gpu_pipeline.verify_gpu_artifact sm))

let test_missing_cubin_detected () =
  let sm = gpu_lowered ~drop:[ "gpu-to-cubin" ] () in
  Alcotest.(check bool) "launches exist" true (count "gpu.launch_func" sm > 0);
  match Fsc_lowering.Gpu_pipeline.verify_gpu_artifact sm with
  | Error e ->
    Alcotest.(check bool) "mentions cubin" true
      (let re = Str.regexp_string "cubin" in
       try
         ignore (Str.search_forward re e 0);
         true
       with Not_found -> false)
  | Ok () -> Alcotest.fail "should have failed"

(* run a lowered stencil module's kernel on fresh buffers via the
   interpreter; returns the output buffer *)
let exec_kernel ?gpu sm ~n =
  let ctx = Fsc_rt.Interp.create_context () in
  (match gpu with
  | Some g ->
    ctx.Fsc_rt.Interp.gpu <- Some g;
    ctx.Fsc_rt.Interp.gpu_strategy <- Fsc_rt.Gpu_sim.Strategy_host_register
  | None -> ());
  Fsc_rt.Interp.add_module ctx sm;
  let data = Fsc_rt.Memref_rt.create [ n + 1; n + 1 ] in
  let result = Fsc_rt.Memref_rt.create [ n + 1; n + 1 ] in
  Fsc_rt.Memref_rt.init data (fun i ->
      Float.sin (float_of_int i *. 0.37) *. 3.0);
  ignore
    (Fsc_rt.Interp.call ctx "_stencil_kernel_0"
       [ Fsc_rt.Interp.R_buf data; Fsc_rt.Interp.R_buf result ]);
  result

let test_tiling_preserves_semantics () =
  let n = 12 in
  let src = Fsc_driver.Benchmarks.listing1 ~n () in
  let _, plain = stencil_module ~src () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Gpu
    plain;
  let _, tiled = stencil_module ~src () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Gpu
    tiled;
  Fsc_lowering.Loop_tiling.run ~tile_sizes:[ 5; 3 ] tiled;
  Verifier.verify_exn tiled;
  let r1 = exec_kernel plain ~n and r2 = exec_kernel tiled ~n in
  Alcotest.(check (float 0.)) "tiled == untiled" 0.0
    (Fsc_rt.Memref_rt.max_abs_diff r1 r2);
  (* deliberately awkward tile sizes that do not divide the extents *)
  let _, tiled2 = stencil_module ~src () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Gpu
    tiled2;
  Fsc_lowering.Loop_tiling.run ~tile_sizes:[ 7; 7 ] tiled2;
  let r3 = exec_kernel tiled2 ~n in
  Alcotest.(check (float 0.)) "ragged tiles ok" 0.0
    (Fsc_rt.Memref_rt.max_abs_diff r1 r3)

let test_gpu_pipeline_executes () =
  (* the fully lowered Listing-4 artifact must still compute the right
     grid when its gpu.launch_func is executed against the simulator *)
  let n = 12 in
  let src = Fsc_driver.Benchmarks.listing1 ~n () in
  let _, reference = stencil_module ~src () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu
    reference;
  let r_ref = exec_kernel reference ~n in
  let _, gpu_m = stencil_module ~src () in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Gpu
    gpu_m;
  ignore (Fsc_lowering.Gpu_pipeline.run ~tile_sizes:[ 4; 4 ] gpu_m);
  (match Fsc_lowering.Gpu_pipeline.verify_gpu_artifact gpu_m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "artifact: %s" e);
  let g = Fsc_rt.Gpu_sim.create () in
  let r_gpu = exec_kernel ~gpu:g gpu_m ~n in
  Alcotest.(check (float 0.)) "gpu pipeline == cpu" 0.0
    (Fsc_rt.Memref_rt.max_abs_diff r_ref r_gpu);
  let s = Fsc_rt.Gpu_sim.stats g in
  Alcotest.(check bool) "kernel actually launched on the device" true
    (s.Fsc_rt.Gpu_sim.s_kernels > 0)

let test_oversized_tile_rejected_at_launch () =
  (* tile sizes whose product exceeds the device thread limit fail at
     runtime, as the paper found empirically *)
  let spec = Fsc_rt.Gpu_sim.v100 in
  let g = Fsc_rt.Gpu_sim.create ~spec () in
  Alcotest.(check bool) "launch fails" true
    (match
       Fsc_rt.Gpu_sim.launch g
         ~strategy:Fsc_rt.Gpu_sim.Strategy_device_resident
         ~block_threads:(64 * 64) ~flops:1.0 ~bytes_accessed:1.0
         ~body:(fun () -> ())
         []
     with
    | exception Fsc_rt.Gpu_sim.Launch_failure _ -> true
    | () -> false)

let () =
  Alcotest.run "lowering"
    [ ("stencil-to-scf",
       [ Alcotest.test_case "cpu mode" `Quick test_cpu_mode_structure;
         Alcotest.test_case "gpu mode" `Quick test_gpu_mode_structure;
         Alcotest.test_case "semantics" `Quick test_lowering_semantics;
         Alcotest.test_case "specialisation" `Quick test_specialization_attr;
         Alcotest.test_case "tiling" `Quick test_tiling;
         Alcotest.test_case "scf->openmp" `Quick test_scf_to_openmp ]);
      ("semantics",
       [ Alcotest.test_case "tiling preserves semantics" `Quick
           test_tiling_preserves_semantics;
         Alcotest.test_case "gpu pipeline executes" `Quick
           test_gpu_pipeline_executes ]);
      ("gpu-pipeline",
       [ Alcotest.test_case "complete pipeline" `Quick
           test_gpu_pipeline_complete;
         Alcotest.test_case "silent CPU fallback" `Quick
           test_silent_cpu_fallback_detected;
         Alcotest.test_case "missing cubin" `Quick test_missing_cubin_detected;
         Alcotest.test_case "oversized tile" `Quick
           test_oversized_tile_rejected_at_launch ]) ]

(* Distributed-memory tests: decomposition properties, the DMP/MPI
   dialect lowerings, halo exchange correctness, and distributed
   Gauss-Seidel equivalence with serial execution. *)

open Fsc_ir
module D = Fsc_dmp.Decomp
module DX = Fsc_dmp.Dist_exec
module Rt = Fsc_rt.Memref_rt
module V = Fsc_rt.Vendor_kernels

let () = Fsc_dialects.Registry.init ()

(* ---- decomposition ---- *)

let test_factorize () =
  Alcotest.(check (pair int int)) "8192" (64, 128) (D.factorize 8192);
  Alcotest.(check (pair int int)) "128" (8, 16) (D.factorize 128);
  Alcotest.(check (pair int int)) "7 (prime)" (1, 7) (D.factorize 7);
  Alcotest.(check (pair int int)) "1" (1, 1) (D.factorize 1)

let test_local_ranges () =
  let d = D.create ~global:(16, 10, 9) ~ranks:6 in
  (* 6 = 2 x 3 *)
  Alcotest.(check int) "ranks" 6 (D.nranks d);
  (* ranges tile the domain *)
  Alcotest.(check bool) "partition" true (D.check_partition d);
  (* x never decomposed *)
  for r = 0 to 5 do
    let (xl, xh), _, _ = D.local_range d r in
    Alcotest.(check (pair int int)) "x full" (1, 16) (xl, xh)
  done

let test_neighbors () =
  let d = D.create ~global:(8, 8, 8) ~ranks:4 in
  (* 2 x 2 grid: rank 0 = (0,0) *)
  Alcotest.(check bool) "no low neighbour at edge" true
    (D.neighbor d 0 D.Y_low = None && D.neighbor d 0 D.Z_low = None);
  (match D.neighbor d 0 D.Y_high with
  | Some n ->
    Alcotest.(check bool) "reciprocal" true
      (D.neighbor d n D.Y_low = Some 0)
  | None -> Alcotest.fail "expected neighbour");
  Alcotest.(check bool) "halo bytes positive" true (D.halo_bytes d 0 > 0)

let prop_partition =
  QCheck.Test.make ~name:"decomposition partitions the grid" ~count:100
    QCheck.(pair (int_range 1 64) (triple (int_range 2 20) (int_range 2 20)
                                     (int_range 2 20)))
    (fun (ranks, (nx, ny, nz)) ->
      let d = D.create ~global:(nx, ny, nz) ~ranks in
      (* degenerate decompositions (more ranks than cells along a dim)
         are allowed to produce empty local ranges; partition still must
         hold *)
      D.check_partition d)

let prop_split_covers =
  QCheck.Test.make ~name:"split covers 1..n contiguously" ~count:200
    QCheck.(pair (int_range 1 50) (int_range 1 12))
    (fun (n, p) ->
      let pieces = List.init p (fun i -> D.split n p i) in
      let covered =
        List.concat_map
          (fun (lo, hi) -> if hi >= lo then List.init (hi - lo + 1)
                               (fun i -> lo + i) else [])
          pieces
      in
      List.sort_uniq compare covered = List.init n (fun i -> i + 1))

(* ---- halo exchange correctness ---- *)

let test_halo_exchange () =
  let global = (6, 8, 10) in
  let d = D.create ~global ~ranks:4 in
  let init _name (i, j, k) =
    float_of_int ((100 * i) + (10 * j) + k)
  in
  let t = DX.create d ~fields:[ "u" ] ~init in
  (* scribble over every halo, then swap: halos must be restored to the
     neighbour's true values (global boundaries keep their init value) *)
  Array.iter
    (fun st ->
      let buf = DX.field st "u" in
      let dims = buf.Rt.dims in
      for k = 0 to dims.(2) - 1 do
        for i = 0 to dims.(0) - 1 do
          Rt.set buf [| i; 0; k |] (-1.0);
          Rt.set buf [| i; dims.(1) - 1; k |] (-1.0)
        done
      done)
    t.DX.ranks;
  DX.iterate t ~iters:1 ~swap_fields:[ "u" ] ~compute:(fun _ _ -> ());
  (* interior halos restored *)
  Array.iter
    (fun st ->
      let (_, _), (yl, yh), (zl, _) = st.DX.rs_range in
      let buf = DX.field st "u" in
      (match D.neighbor d st.DX.rs_rank D.Y_low with
      | Some _ ->
        (* halo row j=0 corresponds to global j = yl - 1 *)
        Alcotest.(check (float 0.)) "y-low halo restored"
          (init "u" (2, yl - 1, zl))
          (Rt.get buf [| 2; 0; 1 |])
      | None -> ());
      match D.neighbor d st.DX.rs_rank D.Y_high with
      | Some _ ->
        Alcotest.(check (float 0.)) "y-high halo restored"
          (init "u" (2, yh + 1, zl))
          (Rt.get buf [| 2; buf.Rt.dims.(1) - 1; 1 |])
      | None -> ())
    t.DX.ranks

let test_distributed_gs_equals_serial () =
  let nx, ny, nz = (6, 8, 10) in
  let iters = 3 in
  (* serial reference with the vendor kernel *)
  let u = V.grid3 ~nx ~ny ~nz and unew = V.grid3 ~nx ~ny ~nz in
  V.init_linear u;
  V.gs3d_run ~u ~unew ~iters ();
  (* distributed over 4 ranks *)
  let d = D.create ~global:(nx, ny, nz) ~ranks:4 in
  let init name (i, j, k) =
    match name with
    | "u" ->
      V.gs_init i j k
    | _ -> 0.0
  in
  let t = DX.create d ~fields:[ "u"; "unew" ] ~init in
  DX.iterate t ~iters ~swap_fields:[ "u" ] ~compute:(fun t rank ->
      let st = t.DX.ranks.(rank) in
      let lu = DX.field st "u" and lnew = DX.field st "unew" in
      let lx, ly, lz = D.local_extents d rank in
      let gu = { V.g_buf = lu; g_nx = lx; g_ny = ly; g_nz = lz } in
      let gn = { V.g_buf = lnew; g_nx = lx; g_ny = ly; g_nz = lz } in
      V.gs3d_sweep ~u:gu ~unew:gn ();
      V.gs3d_copyback ~u:gu ~unew:gn ());
  let gathered = DX.gather t "u" in
  (* compare interiors only: distributed halos of the global boundary
     follow a different update discipline than the serial boundary *)
  let max_diff = ref 0.0 in
  for k = 1 to nz do
    for j = 1 to ny do
      for i = 1 to nx do
        let a = Rt.get u.V.g_buf [| i; j; k |] in
        let b = Rt.get gathered [| i; j; k |] in
        max_diff := Float.max !max_diff (Float.abs (a -. b))
      done
    done
  done;
  Alcotest.(check (float 0.)) "interior identical" 0.0 !max_diff;
  let msgs, bytes = DX.stats t in
  Alcotest.(check bool) "halo messages flowed" true (msgs > 0 && bytes > 0)

(* ---- IR-level DMP/MPI lowerings ---- *)

let stencil_module () =
  Fsc_core.Extraction.reset_name_counter ();
  let m =
    Fsc_fortran.Flower.compile_source
      (Fsc_driver.Benchmarks.gauss_seidel ~nx:6 ~ny:6 ~nz:6 ~niter:1 ())
  in
  ignore (Fsc_core.Discovery.run m);
  ignore (Fsc_core.Merge.run m);
  (Fsc_core.Extraction.run m).Fsc_core.Extraction.stencil_module

let count name m =
  List.length (Op.collect_ops (fun o -> o.Op.o_name = name) m)

let test_stencil_to_dmp () =
  let sm = stencil_module () in
  let swaps = Fsc_dmp.Stencil_to_dmp.run sm in
  (* the sweep apply reads u with halo 1 in both decomposed dims; the
     copy-back apply has offsets 0 so no swap; the init kernel has no
     reads at all *)
  Alcotest.(check int) "one swap inserted" 1 swaps;
  let swap = List.hd (Op.collect_ops (fun o -> o.Op.o_name = "dmp.swap") sm) in
  Alcotest.(check (list int)) "halo widths" [ 1; 1; 1 ]
    (Fsc_dmp.Dmp_dialect.swap_halo swap)

let test_dmp_to_mpi () =
  let sm = stencil_module () in
  ignore (Fsc_dmp.Stencil_to_dmp.run sm);
  let lowered = Fsc_dmp.Dmp_to_mpi.run sm in
  Alcotest.(check int) "one swap lowered" 1 lowered;
  Alcotest.(check int) "no dmp left" 0 (count "dmp.swap" sm);
  (* 2 decomposed dims x 2 directions of isend+irecv, one waitall *)
  Alcotest.(check int) "isends" 4 (count "mpi.isend" sm);
  Alcotest.(check int) "irecvs" 4 (count "mpi.irecv" sm);
  Alcotest.(check int) "waitall" 1 (count "mpi.waitall" sm)

let () =
  Alcotest.run "dmp"
    [ ("decomposition",
       [ Alcotest.test_case "factorize" `Quick test_factorize;
         Alcotest.test_case "local ranges" `Quick test_local_ranges;
         Alcotest.test_case "neighbors" `Quick test_neighbors;
         QCheck_alcotest.to_alcotest prop_partition;
         QCheck_alcotest.to_alcotest prop_split_covers ]);
      ("execution",
       [ Alcotest.test_case "halo exchange" `Quick test_halo_exchange;
         Alcotest.test_case "distributed GS == serial" `Quick
           test_distributed_gs_equals_serial ]);
      ("dialect",
       [ Alcotest.test_case "stencil -> dmp" `Quick test_stencil_to_dmp;
         Alcotest.test_case "dmp -> mpi" `Quick test_dmp_to_mpi ]) ]

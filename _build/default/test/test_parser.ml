(* Printer/parser round-trip tests: golden strings plus a qcheck property
   over randomly generated IR modules — the pipeline depends on passing
   modules between "tools" as text. *)

open Fsc_ir

let () = Fsc_dialects.Registry.init ()

let roundtrip m =
  let s1 = Printer.module_to_string m in
  match Parser.parse_module_result s1 with
  | Error e -> Alcotest.failf "parse failed: %s\n%s" e s1
  | Ok m2 ->
    let s2 = Printer.module_to_string m2 in
    Alcotest.(check string) "round trip" s1 s2

let test_empty_module () = roundtrip (Op.create_module ())

let test_simple_module () =
  let m = Op.create_module () in
  let b = Builder.at_end (Op.module_block m) in
  let x = Fsc_dialects.Arith.constant_float b 0.25 in
  let y = Fsc_dialects.Arith.constant_float b 1.5 in
  ignore (Fsc_dialects.Arith.mulf b x y);
  roundtrip m

let test_regions_and_args () =
  let m = Op.create_module () in
  let b = Builder.at_end (Op.module_block m) in
  let f =
    Fsc_dialects.Func.func ~name:"f" ~args:[ Types.F64; Types.I64 ]
      ~results:[ Types.F64 ] (fun fb args ->
        match args with
        | [ x; _n ] ->
          let y = Fsc_dialects.Arith.addf fb x x in
          Fsc_dialects.Func.return_ fb [ y ]
        | _ -> assert false)
  in
  ignore (Builder.insert b f);
  roundtrip m

let test_loops_and_attrs () =
  let m = Op.create_module () in
  let b = Builder.at_end (Op.module_block m) in
  let lb = Fsc_dialects.Arith.constant_index b 0 in
  let ub = Fsc_dialects.Arith.constant_index b 8 in
  ignore
    (Fsc_dialects.Scf.for_ b ~lb ~ub ~step:lb (fun inner iv _ ->
         let c = Fsc_dialects.Arith.constant_float inner 3.25 in
         ignore (Fsc_dialects.Arith.index_cast inner ~to_:Types.I64 iv);
         ignore c;
         []));
  roundtrip m

let test_stencil_types_roundtrip () =
  let tests =
    [ "!stencil.temp<[-1,255]x[-1,255]xf64>";
      "!stencil.field<[0,16]x[0,16]x[0,16]xf32>";
      "memref<257x257xf64>"; "!fir.ref<!fir.array<10x20xf64>>";
      "!fir.heap<!fir.array<?x?xf64>>"; "!fir.llvm_ptr<i8>"; "!llvm.ptr";
      "!llvm.ptr<f64>"; "index"; "i1"; "i32"; "f32"; "none";
      "vector<4xf64>"; "(i64) -> (f64)" ]
  in
  List.iter
    (fun s ->
      let st =
        { Parser.src = s; pos = 0; values = Hashtbl.create 1;
          blocks = Hashtbl.create 1 }
      in
      let t = Parser.parse_type st in
      Alcotest.(check string) s s (Types.to_string t))
    tests

let test_attr_roundtrip () =
  let attrs =
    [ Attr.Int_a 42; Attr.Int_a (-7); Attr.Float_a 0.25; Attr.Float_a 1e-9;
      Attr.Str_a "hello world"; Attr.Bool_a true; Attr.Sym_a "kernel_0";
      Attr.Index_a [ 0; -1; 2 ];
      Attr.Arr_a [ Attr.Int_a 1; Attr.Str_a "x" ];
      Attr.Dict_a [ ("a", Attr.Int_a 1) ] ]
  in
  List.iter
    (fun a ->
      let s = Attr.to_string a in
      let st =
        { Parser.src = s; pos = 0; values = Hashtbl.create 1;
          blocks = Hashtbl.create 1 }
      in
      let a2 = Parser.parse_attr st in
      Alcotest.(check string) s s (Attr.to_string a2))
    attrs

let test_parse_errors () =
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Parser.parse_module_result "not mlir at all"));
  Alcotest.(check bool) "undefined value rejected" true
    (Result.is_error
       (Parser.parse_module_result
          {|"builtin.module"() ({
^bb0:
  %0 = "arith.addi"(%1, %1) : (i64, i64) -> (i64)
}) : () -> ()|}))

let test_fortran_pipeline_roundtrip () =
  (* the full FIR of a real benchmark must survive text round-trip *)
  let m =
    Fsc_fortran.Flower.compile_source
      (Fsc_driver.Benchmarks.gauss_seidel ~nx:4 ~ny:4 ~nz:4 ~niter:1 ())
  in
  roundtrip m;
  (* and the post-discovery mixed module too *)
  ignore (Fsc_core.Discovery.run m);
  ignore (Fsc_core.Merge.run m);
  roundtrip m

(* random expression-module generator for the property *)
let gen_module =
  QCheck.Gen.(
    let rec gen_expr depth b values =
      if depth = 0 || values = [] then
        map
          (fun f -> Fsc_dialects.Arith.constant_float b f)
          (float_range (-100.) 100.)
      else
        oneof
          [ map
              (fun f -> Fsc_dialects.Arith.constant_float b f)
              (float_range (-100.) 100.);
            (pair (oneofl values) (gen_expr (depth - 1) b values)
            >|= fun (x, y) -> Fsc_dialects.Arith.addf b x y);
            (pair (oneofl values) (gen_expr (depth - 1) b values)
            >|= fun (x, y) -> Fsc_dialects.Arith.mulf b x y) ]
    in
    sized (fun n ->
        let n = min n 12 in
        fun st ->
          let m = Op.create_module () in
          let b = Builder.at_end (Op.module_block m) in
          let values = ref [] in
          for _ = 0 to n do
            let v = (gen_expr 3 b !values) st in
            values := v :: !values
          done;
          m))

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip on random IR" ~count:100
    (QCheck.make gen_module) (fun m ->
      let s1 = Printer.module_to_string m in
      match Parser.parse_module_result s1 with
      | Error _ -> false
      | Ok m2 -> Printer.module_to_string m2 = s1)

(* fuzz: arbitrary garbage must produce Ok/Error, never an escaped
   exception or a hang *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser is total on garbage" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.printable)
    (fun s ->
      match Parser.parse_module_result s with
      | Ok _ | Error _ -> true)

(* fuzz with IR-flavoured fragments, which reach deeper into the
   grammar than uniform noise *)
let prop_parser_total_irish =
  QCheck.Test.make ~name:"parser is total on IR-flavoured garbage"
    ~count:500
    (QCheck.make
       QCheck.Gen.(
         let frag =
           oneofl
             [ "\"builtin.module\"() ({"; "^bb0:"; "%0 = "; "(%1, %2)";
               ": (f64) -> (f64)"; "!stencil.temp<[-1,255]xf64>";
               "{\"value\" = 0.25}"; "memref<10x"; "})"; "\""; "<"; "[";
               "#stencil.index<1,"; "-"; "1e"; "}) : () -> ()" ]
         in
         map (String.concat " ") (list_size (int_range 0 12) frag)))
    (fun s ->
      match Parser.parse_module_result s with
      | Ok _ | Error _ -> true)

let () =
  Alcotest.run "parser"
    [ ("roundtrip",
       [ Alcotest.test_case "empty module" `Quick test_empty_module;
         Alcotest.test_case "simple module" `Quick test_simple_module;
         Alcotest.test_case "regions and args" `Quick test_regions_and_args;
         Alcotest.test_case "loops and attrs" `Quick test_loops_and_attrs;
         Alcotest.test_case "types" `Quick test_stencil_types_roundtrip;
         Alcotest.test_case "attributes" `Quick test_attr_roundtrip;
         Alcotest.test_case "parse errors" `Quick test_parse_errors;
         Alcotest.test_case "fortran pipeline IR" `Quick
           test_fortran_pipeline_roundtrip ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_roundtrip; prop_parser_total; prop_parser_total_irish ]) ]

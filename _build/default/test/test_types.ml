(* Type system and bounds arithmetic tests, including qcheck properties
   on the interval algebra that shape inference relies on. *)

open Fsc_ir

let check_str = Alcotest.(check string)

let test_to_string () =
  check_str "memref" "memref<10x20xf64>"
    (Types.to_string (Types.Memref ([ Types.Static 10; Types.Static 20 ],
                                    Types.F64)));
  check_str "dynamic memref" "memref<?x4xf32>"
    (Types.to_string
       (Types.Memref ([ Types.Dynamic; Types.Static 4 ], Types.F32)));
  check_str "stencil temp" "!stencil.temp<[-1,255]x[-1,255]xf64>"
    (Types.to_string
       (Types.Stencil_temp ([ (-1, 255); (-1, 255) ], Types.F64)));
  check_str "fir ref array" "!fir.ref<!fir.array<257x257xf64>>"
    (Types.to_string
       (Types.Fir_ref
          (Types.Fir_array ([ Types.Static 257; Types.Static 257 ],
                            Types.F64))));
  check_str "func type" "(i64, f64) -> (f64)"
    (Types.to_string (Types.Func_t ([ Types.I64; Types.F64 ], [ Types.F64 ])))

let test_bounds () =
  let b1 = [ (0, 10); (0, 10) ] and b2 = [ (-1, 5); (2, 12) ] in
  Alcotest.(check (list (pair int int)))
    "union" [ (-1, 10); (0, 12) ]
    (Types.bounds_union b1 b2);
  Alcotest.(check (list (pair int int)))
    "intersect" [ (0, 5); (2, 10) ]
    (Types.bounds_intersect b1 b2);
  Alcotest.(check int) "volume" 121 (Types.bounds_volume b1);
  Alcotest.(check (list (pair int int)))
    "expand by offsets" [ (-1, 11); (0, 10) ]
    (Types.bounds_expand_by_offsets b1 [ [ -1; 0 ]; [ 1; 0 ] ])

let test_element_rank () =
  let t = Types.Memref ([ Types.Static 4; Types.Static 5 ], Types.F32) in
  Alcotest.(check bool) "element" true (Types.element_type t = Types.F32);
  Alcotest.(check int) "rank" 2 (Types.rank t);
  Alcotest.(check int) "scalar rank" 0 (Types.rank Types.F64)

(* qcheck: bounds algebra *)
let bounds_gen =
  QCheck.Gen.(
    list_size (int_range 1 3)
      (map
         (fun (a, b) -> (min a b, max a b))
         (pair (int_range (-50) 50) (int_range (-50) 50))))

let arb_bounds_pair =
  QCheck.make
    QCheck.Gen.(
      bounds_gen >>= fun b1 ->
      map
        (fun deltas ->
          let b2 =
            List.map2
              (fun (lo, hi) (dl, dh) -> (lo + dl, hi + dh))
              b1 deltas
          in
          (b1, b2))
        (list_size (return (List.length b1))
           (pair (int_range (-5) 5) (int_range 0 5))))

let prop_union_contains =
  QCheck.Test.make ~name:"bounds_union contains both" ~count:200
    arb_bounds_pair (fun (b1, b2) ->
      let u = Types.bounds_union b1 b2 in
      List.for_all2 (fun (lo, hi) (ulo, uhi) -> ulo <= lo && uhi >= hi) b1 u
      && List.for_all2
           (fun (lo, hi) (ulo, uhi) -> ulo <= lo && uhi >= hi)
           b2 u)

let prop_union_idempotent =
  QCheck.Test.make ~name:"bounds_union idempotent" ~count:200
    (QCheck.make bounds_gen) (fun b -> Types.bounds_union b b = b)

let prop_intersect_within =
  QCheck.Test.make ~name:"intersect within union" ~count:200 arb_bounds_pair
    (fun (b1, b2) ->
      let i = Types.bounds_intersect b1 b2
      and u = Types.bounds_union b1 b2 in
      List.for_all2 (fun (ilo, ihi) (ulo, uhi) -> ilo >= ulo && ihi <= uhi)
        i u)

let prop_expand_grows =
  QCheck.Test.make ~name:"expand_by_offsets covers shifted regions"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         bounds_gen >>= fun b ->
         map
           (fun offs -> (b, offs))
           (list_size (int_range 1 4)
              (list_size (return (List.length b)) (int_range (-3) 3)))))
    (fun (b, offsets) ->
      let e = Types.bounds_expand_by_offsets b offsets in
      List.for_all
        (fun ofs ->
          List.for_all2
            (fun ((lo, hi), o) (elo, ehi) -> elo <= lo + o && ehi >= hi + o)
            (List.combine b ofs) e)
        offsets)

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_contains; prop_union_idempotent; prop_intersect_within;
      prop_expand_grows ]

let () =
  Alcotest.run "types"
    [ ("types",
       [ Alcotest.test_case "to_string" `Quick test_to_string;
         Alcotest.test_case "bounds algebra" `Quick test_bounds;
         Alcotest.test_case "element/rank" `Quick test_element_rank ]);
      ("properties", qcheck_suite) ]

(* Transformation pass tests: canonicalise/CSE/DCE, math simplification,
   cast reconciliation — plus a qcheck property that canonicalisation
   preserves interpreter semantics on random arithmetic programs. *)

open Fsc_ir
module Arith = Fsc_dialects.Arith

let () = Fsc_dialects.Registry.init ()

let count name m =
  List.length (Op.collect_ops (fun o -> o.Op.o_name = name) m)

(* build a module with a function evaluating an expression and storing it
   to a 1-cell memref so DCE cannot remove it *)
let with_sink build =
  let m = Op.create_module () in
  let blk = Op.module_block m in
  let f =
    Fsc_dialects.Func.func ~name:"main"
      ~args:[ Types.Memref ([ Types.Static 1 ], Types.F64) ]
      ~results:[] (fun b args ->
        let out = List.hd args in
        let v = build b in
        let zero = Arith.constant_index b 0 in
        Fsc_dialects.Memref.store b v out [ zero ];
        Fsc_dialects.Func.return_ b [])
  in
  Op.append_to blk f;
  m

let eval m =
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx m;
  let buf = Fsc_rt.Memref_rt.create [ 1 ] in
  ignore (Fsc_rt.Interp.call ctx "main" [ Fsc_rt.Interp.R_buf buf ]);
  Fsc_rt.Memref_rt.get_flat buf 0

let test_constant_folding () =
  let m =
    with_sink (fun b ->
        let x = Arith.constant_float b 2.0 in
        let y = Arith.constant_float b 3.0 in
        let s = Arith.addf b x y in
        Arith.mulf b s s)
  in
  let before = eval m in
  ignore (Fsc_transforms.Canonicalize.run m);
  Alcotest.(check int) "all folded" 0 (count "arith.addf" m + count "arith.mulf" m);
  Alcotest.(check (float 0.)) "value preserved" before (eval m)

let test_identities () =
  let m =
    with_sink (fun b ->
        let x = Arith.constant_float b 7.0 in
        let one = Arith.constant_float b 1.0 in
        let zero = Arith.constant_float b 0.0 in
        Arith.addf b (Arith.mulf b x one) zero)
  in
  ignore (Fsc_transforms.Canonicalize.run m);
  Alcotest.(check int) "mulf gone" 0 (count "arith.mulf" m);
  Alcotest.(check int) "addf gone" 0 (count "arith.addf" m);
  Alcotest.(check (float 0.)) "still 7" 7.0 (eval m)

let test_cse () =
  let m =
    with_sink (fun b ->
        (* two identical loads of the same expression *)
        let x = Arith.constant_float b 4.0 in
        let a = Fsc_dialects.Math.sqrt b x in
        let c = Fsc_dialects.Math.sqrt b x in
        Arith.addf b a c)
  in
  let eliminated = Fsc_transforms.Cse.run m in
  Alcotest.(check int) "one sqrt eliminated" 1 eliminated;
  Alcotest.(check int) "one sqrt left" 1 (count "math.sqrt" m);
  Alcotest.(check (float 1e-12)) "value" 4.0 (eval m)

let test_cse_respects_attrs () =
  let m =
    with_sink (fun b ->
        let x = Arith.constant_float b 1.0 in
        let y = Arith.constant_float b 2.0 in
        Arith.addf b x y)
  in
  ignore (Fsc_transforms.Cse.run m);
  (* the two constants differ in attrs: must NOT merge *)
  Alcotest.(check int) "constants kept" 3 (count "arith.constant" m)

let test_dce_keeps_side_effects () =
  let m =
    with_sink (fun b ->
        let x = Arith.constant_float b 1.0 in
        (* a dead pure chain *)
        let d = Arith.addf b x x in
        ignore (Arith.mulf b d d);
        x)
  in
  let removed = Fsc_transforms.Dce.run m in
  Alcotest.(check bool) "removed dead ops" true (removed >= 2);
  Alcotest.(check int) "store survives" 1 (count "memref.store" m);
  Alcotest.(check (float 0.)) "value" 1.0 (eval m)

let test_math_simplify_powf () =
  let m =
    with_sink (fun b ->
        let x = Arith.constant_float b 3.0 in
        let two = Arith.constant_float b 2.0 in
        Fsc_dialects.Math.powf b x two)
  in
  ignore
    (Rewrite.apply_greedily Fsc_transforms.Math_simplify.algebraic_patterns m);
  Alcotest.(check int) "powf expanded" 0 (count "math.powf" m);
  Alcotest.(check (float 0.)) "9" 9.0 (eval m)

let test_expand_fpowi () =
  let m =
    with_sink (fun b ->
        let x = Arith.constant_float b 2.0 in
        let n = Arith.constant_int b ~ty:Types.I32 5 in
        Fsc_dialects.Math.fpowi b x n)
  in
  ignore
    (Rewrite.apply_greedily Fsc_transforms.Math_simplify.expand_patterns m);
  Alcotest.(check int) "fpowi expanded" 0 (count "math.fpowi" m);
  Alcotest.(check (float 0.)) "32" 32.0 (eval m)

let test_reconcile_casts () =
  let m =
    with_sink (fun b ->
        let x = Arith.constant_float b 5.0 in
        let p = Fsc_dialects.Builtin.unrealized_cast b ~to_:Types.Llvm_ptr x in
        Fsc_dialects.Builtin.unrealized_cast b ~to_:Types.F64 p)
  in
  Pass.run_pipeline ~verify_each:false
    [ Fsc_transforms.Reconcile_casts.pass ] m
  |> ignore;
  Alcotest.(check int) "cast pair cancelled" 0
    (count "builtin.unrealized_conversion_cast" m)

let test_fold_memref_aliases () =
  let m = Op.create_module () in
  let f =
    Fsc_dialects.Func.func ~name:"main"
      ~args:[ Types.Memref ([ Types.Static 4 ], Types.F64) ]
      ~results:[] (fun b args ->
        let mr = List.hd args in
        let cast =
          Fsc_dialects.Memref.cast b
            ~to_:(Types.Memref ([ Types.Dynamic ], Types.F64))
            mr
        in
        let zero = Arith.constant_index b 0 in
        let v = Fsc_dialects.Memref.load b cast [ zero ] in
        Fsc_dialects.Memref.store b v cast [ zero ];
        Fsc_dialects.Func.return_ b [])
  in
  Op.append_to (Op.module_block m) f;
  Pass.run_pipeline ~verify_each:false
    [ Fsc_transforms.Fold_memref_aliases.pass ] m
  |> ignore;
  let load =
    List.hd (Op.collect_ops (fun o -> o.Op.o_name = "memref.load") m)
  in
  Alcotest.(check bool) "load bypasses cast" true
    (match Op.defining_op (Op.operand load) with
    | None -> true (* block argument: the root *)
    | Some d -> d.Op.o_name <> "memref.cast")

(* property: canonicalisation preserves semantics on random programs *)
let gen_program =
  QCheck.Gen.(
    let leaf b = map (fun f -> Arith.constant_float b f) (float_range (-8.) 8.) in
    let rec expr depth b =
      if depth = 0 then leaf b
      else
        oneof
          [ leaf b;
            (pair (expr (depth - 1) b) (expr (depth - 1) b)
            >|= fun (x, y) -> Arith.addf b x y);
            (pair (expr (depth - 1) b) (expr (depth - 1) b)
            >|= fun (x, y) -> Arith.subf b x y);
            (pair (expr (depth - 1) b) (expr (depth - 1) b)
            >|= fun (x, y) -> Arith.mulf b x y) ]
    in
    int_range 1 4 >>= fun depth st ->
    with_sink (fun b -> (expr depth b) st))

let prop_canonicalize_preserves =
  QCheck.Test.make ~name:"canonicalize preserves semantics" ~count:150
    (QCheck.make gen_program) (fun m ->
      let before = eval m in
      ignore (Fsc_transforms.Canonicalize.run m);
      ignore (Fsc_transforms.Cse.run m);
      let after = eval m in
      before = after
      || Float.abs (before -. after) <= 1e-9 *. Float.abs before)

let () =
  Alcotest.run "transforms"
    [ ("canonicalize",
       [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
         Alcotest.test_case "identities" `Quick test_identities ]);
      ("cse-dce",
       [ Alcotest.test_case "cse" `Quick test_cse;
         Alcotest.test_case "cse respects attrs" `Quick
           test_cse_respects_attrs;
         Alcotest.test_case "dce keeps side effects" `Quick
           test_dce_keeps_side_effects ]);
      ("math",
       [ Alcotest.test_case "powf simplification" `Quick
           test_math_simplify_powf;
         Alcotest.test_case "fpowi expansion" `Quick test_expand_fpowi ]);
      ("casts",
       [ Alcotest.test_case "reconcile casts" `Quick test_reconcile_casts;
         Alcotest.test_case "fold memref aliases" `Quick
           test_fold_memref_aliases ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_canonicalize_preserves ]) ]

(* Kernel JIT tests: analysis of lowered kernels, compiled-vs-interpreted
   equivalence, and fallback behaviour. *)

open Fsc_ir
module Kc = Fsc_rt.Kernel_compile
module Rt = Fsc_rt.Memref_rt

let () = Fsc_dialects.Registry.init ()

let lowered_kernels ?(openmp = false) src =
  Fsc_core.Extraction.reset_name_counter ();
  let m = Fsc_fortran.Flower.compile_source src in
  ignore (Fsc_core.Discovery.run m);
  ignore (Fsc_core.Merge.run m);
  let ex = Fsc_core.Extraction.run m in
  let sm = ex.Fsc_core.Extraction.stencil_module in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu sm;
  ignore (Fsc_lowering.Loop_specialize.run sm);
  if openmp then ignore (Fsc_lowering.Scf_to_openmp.run sm);
  Fsc_dialects.Func.all_functions sm

let gs_src = Fsc_driver.Benchmarks.gauss_seidel ~nx:6 ~ny:6 ~nz:6 ~niter:1 ()

let test_gs_analysis () =
  let kernels = lowered_kernels gs_src in
  (* the sweep+copy kernel has two nests *)
  let specs = List.filter_map (fun f ->
      match Kc.try_analyze f with Ok s -> Some s | Error _ -> None)
      kernels
  in
  Alcotest.(check int) "both kernels analyse" 2 (List.length specs);
  let sweep =
    List.find (fun s -> List.length s.Kc.k_nests = 2) specs
  in
  let nest = List.hd sweep.Kc.k_nests in
  Alcotest.(check int) "3 loops" 3 (List.length nest.Kc.n_loops);
  Alcotest.(check bool) "outermost parallel" true
    (List.hd nest.Kc.n_loops).Kc.l_parallel;
  Alcotest.(check int) "6 flops per cell (5 add + 1 div)" 6
    nest.Kc.n_flops_per_cell;
  Alcotest.(check int) "6 loads per cell" 6 nest.Kc.n_loads_per_cell;
  Alcotest.(check int) "2 buffers" 2 sweep.Kc.k_num_bufs

let test_openmp_form_analyses () =
  let kernels = lowered_kernels ~openmp:true gs_src in
  List.iter
    (fun f ->
      match Kc.try_analyze f with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "kernel failed to analyse: %s" e)
    kernels

let test_compiled_equals_interpreted () =
  let kernels = lowered_kernels gs_src in
  let sweep =
    List.find
      (fun f ->
        match Kc.try_analyze f with
        | Ok s -> List.length s.Kc.k_nests = 2
        | Error _ -> false)
      kernels
  in
  let spec =
    match Kc.try_analyze sweep with Ok s -> s | Error e -> Alcotest.fail e
  in
  let mk () =
    let b = Rt.create [ 8; 8; 8 ] in
    Rt.init b (fun i -> Float.sin (float_of_int i));
    b
  in
  (* compiled *)
  let u1 = mk () and n1 = mk () in
  Kc.run spec ~bufs:[| u1; n1 |] ~scalars:[||] ();
  (* interpreted: call the same func through the interpreter *)
  let u2 = mk () and n2 = mk () in
  let ctx = Fsc_rt.Interp.create_context () in
  let m = Op.create_module () in
  Op.append_to (Op.module_block m) (Op.clone sweep);
  Fsc_rt.Interp.add_module ctx m;
  ignore
    (Fsc_rt.Interp.call ctx
       (Fsc_dialects.Func.name sweep)
       [ Fsc_rt.Interp.R_buf u2; Fsc_rt.Interp.R_buf n2 ]);
  Alcotest.(check (float 0.)) "u identical" 0.0 (Rt.max_abs_diff u1 u2);
  Alcotest.(check (float 0.)) "unew identical" 0.0 (Rt.max_abs_diff n1 n2)

let test_scalar_arguments () =
  let src = Fsc_driver.Benchmarks.pw_advection ~nx:6 ~ny:6 ~nz:6 ~niter:1 () in
  let kernels = lowered_kernels src in
  let with_scalars =
    List.filter_map
      (fun f ->
        match Kc.try_analyze f with
        | Ok s when s.Kc.k_num_scalars > 0 -> Some s
        | _ -> None)
      kernels
  in
  (* each of the three fused advection stencils hoists its own
     rdx/rdy/rdz load, so the merged kernel carries 3x3 scalar args
     (they all hold the same values; deduplication would be a later
     CSE-at-host-level improvement) *)
  Alcotest.(check int) "advection kernel has 9 scalars" 9
    (List.hd with_scalars).Kc.k_num_scalars

let test_fallback_reports_reason () =
  (* a function that is not a loop nest must fall back gracefully *)
  let m = Op.create_module () in
  let f =
    Fsc_dialects.Func.func ~name:"odd" ~args:[ Types.Llvm_ptr ] ~results:[]
      (fun b _ ->
        ignore (Fsc_dialects.Arith.constant_float b 1.0);
        Fsc_dialects.Func.return_ b [])
  in
  Op.append_to (Op.module_block m) f;
  match Kc.try_analyze f with
  | Error reason -> Alcotest.(check bool) "reason given" true (reason <> "")
  | Ok _ -> Alcotest.fail "should not analyse"

let test_vector_unroll_matches () =
  (* specialised (unrolled) and unspecialised kernels must agree *)
  let kernels = lowered_kernels gs_src in
  let sweep =
    List.find
      (fun f ->
        match Kc.try_analyze f with
        | Ok s -> List.length s.Kc.k_nests = 2
        | Error _ -> false)
      kernels
  in
  let spec =
    match Kc.try_analyze sweep with Ok s -> s | Error e -> Alcotest.fail e
  in
  let no_unroll =
    { spec with
      Kc.k_nests =
        List.map
          (fun n ->
            { n with
              Kc.n_loops =
                List.map
                  (fun l -> { l with Kc.l_vector_width = 1 })
                  n.Kc.n_loops })
          spec.Kc.k_nests }
  in
  let mk () =
    let b = Rt.create [ 8; 8; 8 ] in
    Rt.init b (fun i -> float_of_int (i mod 17));
    b
  in
  let u1 = mk () and n1 = mk () and u2 = mk () and n2 = mk () in
  Kc.run spec ~bufs:[| u1; n1 |] ~scalars:[||] ();
  Kc.run no_unroll ~bufs:[| u2; n2 |] ~scalars:[||] ();
  Alcotest.(check (float 0.)) "identical" 0.0 (Rt.max_abs_diff u1 u2)

let test_mismatched_buffers_rejected () =
  let kernels = lowered_kernels gs_src in
  let sweep = List.hd kernels in
  match Kc.try_analyze sweep with
  | Error _ -> ()
  | Ok spec ->
    let a = Rt.create [ 8; 8; 8 ] and b = Rt.create [ 4; 4; 4 ] in
    Alcotest.(check bool) "extent mismatch rejected" true
      (match Kc.run spec ~bufs:[| a; b |] ~scalars:[||] () with
      | exception Kc.Fallback _ -> true
      | () -> false)

let () =
  Alcotest.run "kernel_compile"
    [ ("analysis",
       [ Alcotest.test_case "gauss-seidel" `Quick test_gs_analysis;
         Alcotest.test_case "openmp form" `Quick test_openmp_form_analyses;
         Alcotest.test_case "scalar arguments" `Quick test_scalar_arguments;
         Alcotest.test_case "fallback reason" `Quick
           test_fallback_reports_reason ]);
      ("execution",
       [ Alcotest.test_case "compiled == interpreted" `Quick
           test_compiled_equals_interpreted;
         Alcotest.test_case "unrolled == rolled" `Quick
           test_vector_unroll_matches;
         Alcotest.test_case "mismatched buffers" `Quick
           test_mismatched_buffers_rejected ]) ]

(* Stencil merging tests: the PW advection fusion the paper reports, and
   the safety conditions that must prevent fusion. *)

open Fsc_ir
module Stencil = Fsc_stencil.Stencil

let () = Fsc_dialects.Registry.init ()

let prepare src =
  let m = Fsc_fortran.Flower.compile_source src in
  ignore (Fsc_core.Discovery.run m);
  m

let applies m = Op.collect_ops Stencil.is_apply m

let test_pw_fusion () =
  let m =
    prepare (Fsc_driver.Benchmarks.pw_advection ~nx:6 ~ny:6 ~nz:6 ~niter:1 ())
  in
  (* before merging: 6 init applies + 3 advection applies *)
  Alcotest.(check int) "9 applies before" 9 (List.length (applies m));
  let merged = Fsc_core.Merge.run m in
  Verifier.verify_exn m;
  Alcotest.(check int) "7 merges" 7 merged;
  (* after: 1 fused init + 1 fused advection *)
  let remaining = applies m in
  Alcotest.(check int) "2 applies after" 2 (List.length remaining);
  (* the advection apply carries three results (su, sv, sw) *)
  Alcotest.(check bool) "one apply with 3 results" true
    (List.exists (fun a -> Op.num_results a = 3) remaining)

let test_fusion_semantics_preserved () =
  (* executing with and without merging gives identical results *)
  let src = Fsc_driver.Benchmarks.pw_advection ~nx:6 ~ny:6 ~nz:6 ~niter:2 () in
  let run ~merge =
    Fsc_core.Extraction.reset_name_counter ();
    let m = Fsc_fortran.Flower.compile_source src in
    ignore (Fsc_core.Discovery.run m);
    if merge then ignore (Fsc_core.Merge.run m);
    let ex = Fsc_core.Extraction.run m in
    Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu
      ex.Fsc_core.Extraction.stencil_module;
    let ctx = Fsc_rt.Interp.create_context () in
    Fsc_rt.Interp.add_module ctx ex.Fsc_core.Extraction.host_module;
    Fsc_rt.Interp.add_module ctx ex.Fsc_core.Extraction.stencil_module;
    Fsc_rt.Interp.run_main ctx;
    List.map
      (fun n -> List.assoc n ctx.Fsc_rt.Interp.named_buffers)
      [ "su"; "sv"; "sw" ]
  in
  let with_merge = run ~merge:true and without = run ~merge:false in
  List.iter2
    (fun a b ->
      Alcotest.(check (float 0.)) "identical grids" 0.
        (Fsc_rt.Memref_rt.max_abs_diff a b))
    with_merge without

let test_no_fusion_on_dependency () =
  (* Gauss-Seidel: the copy-back reads what the sweep wrote; they must
     NOT merge *)
  let m =
    prepare (Fsc_driver.Benchmarks.gauss_seidel ~nx:6 ~ny:6 ~nz:6 ~niter:1 ())
  in
  let before = List.length (applies m) in
  let merged = Fsc_core.Merge.run m in
  (* only the two init applies merge *)
  Alcotest.(check int) "only init fusion" 1 merged;
  Alcotest.(check int) "sweep and copy stay separate" (before - 1)
    (List.length (applies m))

let test_no_fusion_on_bounds_mismatch () =
  let src =
    {|
program p
  implicit none
  integer, parameter :: n = 10
  integer :: i
  real(kind=8), dimension(0:n+1) :: a, b, c, d
  do i = 1, n
    b(i) = a(i) * 2.0d0
  end do
  do i = 2, n - 1
    d(i) = c(i) * 3.0d0
  end do
end program p
|}
  in
  let m = prepare src in
  let merged = Fsc_core.Merge.run m in
  Alcotest.(check int) "different bounds: no merge" 0 merged

let test_fusion_dedupes_inputs () =
  (* two stencils reading the same array: the fused apply takes it once *)
  let src =
    {|
program p
  implicit none
  integer, parameter :: n = 10
  integer :: i
  real(kind=8), dimension(0:n+1) :: a, b, c
  do i = 1, n
    b(i) = a(i-1) + a(i+1)
  end do
  do i = 1, n
    c(i) = a(i) * 2.0d0
  end do
end program p
|}
  in
  let m = prepare src in
  let merged = Fsc_core.Merge.run m in
  Alcotest.(check int) "merged" 1 merged;
  match applies m with
  | [ fused ] ->
    (* inputs: one temp of a for the first apply and one for the second;
       both load from the same array — after dedup at most 2 temps *)
    Alcotest.(check bool) "inputs deduped" true (Op.num_operands fused <= 2)
  | l -> Alcotest.failf "expected 1 apply, got %d" (List.length l)

let () =
  Alcotest.run "merge"
    [ ("merge",
       [ Alcotest.test_case "pw fusion" `Quick test_pw_fusion;
         Alcotest.test_case "semantics preserved" `Quick
           test_fusion_semantics_preserved;
         Alcotest.test_case "no fusion on dependency" `Quick
           test_no_fusion_on_dependency;
         Alcotest.test_case "no fusion on bounds mismatch" `Quick
           test_no_fusion_on_bounds_mismatch;
         Alcotest.test_case "inputs deduped" `Quick
           test_fusion_dedupes_inputs ]) ]

(* Interpreter tests: op semantics, control flow, calls, printing. *)

open Fsc_ir
module Interp = Fsc_rt.Interp
module Arith = Fsc_dialects.Arith

let () = Fsc_dialects.Registry.init ()

(* build main returning a float, run it *)
let run_float build =
  let m = Op.create_module () in
  let f =
    Fsc_dialects.Func.func ~name:"main" ~args:[] ~results:[ Types.F64 ]
      (fun b _ -> Fsc_dialects.Func.return_ b [ build b ])
  in
  Op.append_to (Op.module_block m) f;
  let ctx = Interp.create_context () in
  Interp.add_module ctx m;
  match Interp.call ctx "main" [] with
  | [ Interp.R_float f ] -> f
  | _ -> Alcotest.fail "expected one float"

let test_arith () =
  Alcotest.(check (float 0.)) "addf" 5.5
    (run_float (fun b ->
         Arith.addf b (Arith.constant_float b 2.25)
           (Arith.constant_float b 3.25)));
  Alcotest.(check (float 0.)) "select" 7.0
    (run_float (fun b ->
         let c =
           Arith.cmpi b Arith.Slt (Arith.constant_int b 1)
             (Arith.constant_int b 2)
         in
         Arith.select b c (Arith.constant_float b 7.0)
           (Arith.constant_float b 9.0)));
  Alcotest.(check (float 1e-12)) "math.sqrt" 3.0
    (run_float (fun b ->
         Fsc_dialects.Math.sqrt b (Arith.constant_float b 9.0)))

let test_fptosi_truncates () =
  Alcotest.(check (float 0.)) "fptosi truncates toward zero" 3.0
    (run_float (fun b ->
         let x = Arith.constant_float b 3.9 in
         let i = Arith.fptosi b ~to_:Types.I32 x in
         Arith.sitofp b ~to_:Types.F64 i))

let test_scf_for_iter_args () =
  (* sum of 0..9 via iter_args *)
  Alcotest.(check (float 0.)) "loop sum" 45.0
    (run_float (fun b ->
         let lb = Arith.constant_index b 0 in
         let ub = Arith.constant_index b 10 in
         let step = Arith.constant_index b 1 in
         let init = Arith.constant_float b 0.0 in
         match
           Fsc_dialects.Scf.for_ b ~lb ~ub ~step ~iter_args:[ init ]
             (fun inner iv iters ->
               let ivf =
                 Builder.op1 inner "arith.index_cast" ~operands:[ iv ]
                   ~results:[ Types.I64 ]
               in
               let ivf = Arith.sitofp inner ~to_:Types.F64 ivf in
               [ Arith.addf inner (List.hd iters) ivf ])
         with
         | [ r ] -> r
         | _ -> assert false))

let test_fir_do_loop_inclusive () =
  (* fir.do_loop runs lb..ub inclusive: 1..5 -> 5 iterations *)
  Alcotest.(check (float 0.)) "inclusive bounds" 5.0
    (run_float (fun b ->
         let cell = Fsc_fir.Fir.alloca b Types.F64 in
         Fsc_fir.Fir.store b (Arith.constant_float b 0.0) cell;
         let lb = Arith.constant_index b 1 in
         let ub = Arith.constant_index b 5 in
         let step = Arith.constant_index b 1 in
         ignore
           (Fsc_fir.Fir.do_loop b ~lb ~ub ~step (fun inner _ _ ->
                let v = Fsc_fir.Fir.load inner cell in
                let v' = Arith.addf inner v (Arith.constant_float inner 1.0) in
                Fsc_fir.Fir.store inner v' cell;
                []));
         Fsc_fir.Fir.load b cell))

let test_if_else () =
  Alcotest.(check (float 0.)) "else branch" 2.0
    (run_float (fun b ->
         let cell = Fsc_fir.Fir.alloca b Types.F64 in
         let c =
           Arith.cmpi b Arith.Sgt (Arith.constant_int b 1)
             (Arith.constant_int b 2)
         in
         ignore
           (Fsc_fir.Fir.if_ b c
              ~else_:(fun eb ->
                Fsc_fir.Fir.store eb (Arith.constant_float eb 2.0) cell)
              (fun tb ->
                Fsc_fir.Fir.store tb (Arith.constant_float tb 1.0) cell));
         Fsc_fir.Fir.load b cell))

let test_print_capture () =
  let src =
    {|
program p
  implicit none
  integer :: i
  real(kind=8) :: x
  x = 1.5d0
  i = 3
  print *, "x =", x, "i =", i
end program p
|}
  in
  let m = Fsc_fortran.Flower.compile_source src in
  let ctx = Interp.create_context () in
  Interp.add_module ctx m;
  let buf = Buffer.create 32 in
  ctx.Interp.output <- Some buf;
  Interp.run_main ctx;
  Alcotest.(check string) "captured output" "x = 1.5 i = 3\n"
    (Buffer.contents buf)

let test_cross_module_linking () =
  (* host module fir.calls a function defined in a second module with a
     nominally different pointer type — resolved at "link" time *)
  let host = Op.create_module () in
  let f =
    Fsc_dialects.Func.func ~name:"main" ~args:[] ~results:[ Types.F64 ]
      (fun b _ ->
        let arr =
          Fsc_fir.Fir.alloca b
            (Types.Fir_array ([ Types.Static 4 ], Types.F64))
        in
        let ptr =
          Fsc_fir.Fir.convert b ~to_:(Types.Fir_llvm_ptr Types.I8) arr
        in
        ignore
          (Fsc_fir.Fir.call b ~callee:"fill" ~results:[] [ ptr ]);
        let zero = Arith.constant_index b 0 in
        let addr = Fsc_fir.Fir.coordinate_of b arr [ zero ] in
        Fsc_dialects.Func.return_ b [ Fsc_fir.Fir.load b addr ])
  in
  Op.append_to (Op.module_block host) f;
  let kernel_mod = Op.create_module () in
  let k =
    Fsc_dialects.Func.func ~name:"fill" ~args:[ Types.Llvm_ptr ]
      ~results:[] (fun b args ->
        let mr =
          Fsc_dialects.Builtin.unrealized_cast b
            ~to_:(Types.Memref ([ Types.Static 4 ], Types.F64))
            (List.hd args)
        in
        let zero = Arith.constant_index b 0 in
        Fsc_dialects.Memref.store b (Arith.constant_float b 42.0) mr [ zero ];
        Fsc_dialects.Func.return_ b [])
  in
  Op.append_to (Op.module_block kernel_mod) k;
  let ctx = Interp.create_context () in
  Interp.add_module ctx host;
  Interp.add_module ctx kernel_mod;
  match Interp.call ctx "main" [] with
  | [ Interp.R_float f ] -> Alcotest.(check (float 0.)) "linked" 42.0 f
  | _ -> Alcotest.fail "expected float"

let test_unknown_symbol_error () =
  let ctx = Interp.create_context () in
  Alcotest.(check bool) "unknown symbol" true
    (match Interp.call ctx "nope" [] with
    | exception Interp.Interp_error _ -> true
    | _ -> false)

let test_scf_parallel_reference () =
  (* scf.parallel in the interpreter = serial reference execution *)
  let m = Op.create_module () in
  let f =
    Fsc_dialects.Func.func ~name:"main"
      ~args:[ Types.Memref ([ Types.Static 4; Types.Static 4 ], Types.F64) ]
      ~results:[] (fun b args ->
        let mr = List.hd args in
        let zero = Arith.constant_index b 0 in
        let four = Arith.constant_index b 4 in
        let one = Arith.constant_index b 1 in
        ignore
          (Fsc_dialects.Scf.parallel b ~lbs:[ zero; zero ]
             ~ubs:[ four; four ] ~steps:[ one; one ]
             (fun inner ivs ->
               match ivs with
               | [ i; j ] ->
                 let v = Arith.constant_float inner 1.0 in
                 Fsc_dialects.Memref.store inner v mr [ i; j ]
               | _ -> assert false));
        Fsc_dialects.Func.return_ b [])
  in
  Op.append_to (Op.module_block m) f;
  let ctx = Interp.create_context () in
  Interp.add_module ctx m;
  let buf = Fsc_rt.Memref_rt.create [ 4; 4 ] in
  ignore (Interp.call ctx "main" [ Interp.R_buf buf ]);
  Alcotest.(check (float 0.)) "all cells written" 16.0
    (let s = ref 0.0 in
     for i = 0 to 15 do
       s := !s +. Fsc_rt.Memref_rt.get_flat buf i
     done;
     !s)

let () =
  Alcotest.run "interp"
    [ ("ops",
       [ Alcotest.test_case "arith/math" `Quick test_arith;
         Alcotest.test_case "fptosi truncation" `Quick test_fptosi_truncates ]);
      ("control-flow",
       [ Alcotest.test_case "scf.for iter_args" `Quick
           test_scf_for_iter_args;
         Alcotest.test_case "fir.do_loop inclusive" `Quick
           test_fir_do_loop_inclusive;
         Alcotest.test_case "if/else" `Quick test_if_else;
         Alcotest.test_case "scf.parallel reference" `Quick
           test_scf_parallel_reference ]);
      ("programs",
       [ Alcotest.test_case "print capture" `Quick test_print_capture;
         Alcotest.test_case "cross-module linking" `Quick
           test_cross_module_linking;
         Alcotest.test_case "unknown symbol" `Quick
           test_unknown_symbol_error ]) ]

(* Tests for the FIR -> standard-dialects lowering (the paper's fourth
   further-work item, implemented): the lowered module must be free of
   computational FIR, acceptable to the mlir-opt registry (modulo
   fir.print), and compute bit-identical grids. *)

open Fsc_ir
module P = Fsc_driver.Pipeline
module F2S = Fsc_lowering.Fir_to_std_dialects
module Rt = Fsc_rt.Memref_rt

let () = Fsc_dialects.Registry.init ()

let buffer_of_ctx ctx name =
  List.assoc name ctx.Fsc_rt.Interp.named_buffers

let dialect_census m =
  let tbl = Hashtbl.create 8 in
  Op.walk
    (fun o ->
      let d = Dialect.dialect_of_op_name o.Op.o_name in
      Hashtbl.replace tbl d
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    m;
  tbl

let test_gs_lowered_matches () =
  let src = Fsc_driver.Benchmarks.gauss_seidel ~nx:8 ~ny:8 ~nz:8 ~niter:3 () in
  (* reference via FIR interpretation *)
  let reference = P.flang_only src in
  P.run reference;
  let u_ref = P.buffer_exn reference "u" in
  (* lowered module *)
  let m = Fsc_fortran.Flower.compile_source src in
  let { F2S.lowered; skipped } = F2S.run m in
  Alcotest.(check int) "nothing skipped" 0 (List.length skipped);
  Verifier.verify_exn lowered;
  let census = dialect_census lowered in
  Alcotest.(check bool) "no computational fir left" true
    (match Hashtbl.find_opt census "fir" with
    | None -> true
    | Some _ ->
      (* only fir.print may remain *)
      let bad = ref false in
      Op.walk
        (fun o ->
          if
            Dialect.dialect_of_op_name o.Op.o_name = "fir"
            && o.Op.o_name <> "fir.print"
          then bad := true)
        lowered;
      not !bad);
  Alcotest.(check bool) "uses scf and memref now" true
    (Hashtbl.mem census "scf" && Hashtbl.mem census "memref");
  (* execute the lowered module *)
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx lowered;
  Fsc_rt.Interp.run_main ctx;
  Alcotest.(check (float 0.)) "identical grid" 0.0
    (Rt.max_abs_diff u_ref (buffer_of_ctx ctx "u"))

let test_heap_arrays_forwarded () =
  (* allocatable arrays: the heap pointer cell must be store-forwarded
     away entirely *)
  let src =
    {|
program p
  implicit none
  integer, parameter :: n = 6
  integer :: i
  real(kind=8), allocatable :: a(:)
  allocate(a(n))
  do i = 1, n
    a(i) = dble(i) * 1.5d0
  end do
  print *, sum(a)
  deallocate(a)
end program p
|}
  in
  let m = Fsc_fortran.Flower.compile_source src in
  let { F2S.lowered; skipped } = F2S.run m in
  Alcotest.(check int) "nothing skipped" 0 (List.length skipped);
  Verifier.verify_exn lowered;
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx lowered;
  let buf = Buffer.create 16 in
  ctx.Fsc_rt.Interp.output <- Some buf;
  Fsc_rt.Interp.run_main ctx;
  Alcotest.(check string) "sum computed" "31.5\n" (Buffer.contents buf)

let test_host_module_after_extraction () =
  (* the paper's suggestion: with FIR lowered to standard dialects, the
     host side of the split pipeline joins the mlir-opt world too *)
  Fsc_core.Extraction.reset_name_counter ();
  let src = Fsc_driver.Benchmarks.gauss_seidel ~nx:6 ~ny:6 ~nz:6 ~niter:2 () in
  let m = Fsc_fortran.Flower.compile_source src in
  ignore (Fsc_core.Discovery.run m);
  ignore (Fsc_core.Merge.run m);
  let ex = Fsc_core.Extraction.run m in
  let { F2S.lowered = host; skipped } =
    F2S.run ex.Fsc_core.Extraction.host_module
  in
  Alcotest.(check int) "host fully lowered" 0 (List.length skipped);
  (* lower the stencil side as usual and link both *)
  let sm = ex.Fsc_core.Extraction.stencil_module in
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu sm;
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx host;
  Fsc_rt.Interp.add_module ctx sm;
  Fsc_rt.Interp.run_main ctx;
  (* versus the plain flang-only reference *)
  let reference = P.flang_only src in
  P.run reference;
  Alcotest.(check (float 0.)) "linked pipeline identical" 0.0
    (Rt.max_abs_diff
       (P.buffer_exn reference "u")
       (buffer_of_ctx ctx "u"))

let test_unsupported_is_skipped_not_broken () =
  (* a do-while cannot be lowered (no scf.while here); the function is
     kept as FIR and reported, and still runs *)
  let src =
    {|
program p
  implicit none
  integer :: i
  i = 0
  do while (i < 4)
    i = i + 1
  end do
  print *, i
end program p
|}
  in
  let m = Fsc_fortran.Flower.compile_source src in
  let { F2S.lowered; skipped } = F2S.run m in
  Alcotest.(check int) "one function skipped" 1 (List.length skipped);
  let ctx = Fsc_rt.Interp.create_context () in
  Fsc_rt.Interp.add_module ctx lowered;
  let buf = Buffer.create 16 in
  ctx.Fsc_rt.Interp.output <- Some buf;
  Fsc_rt.Interp.run_main ctx;
  Alcotest.(check string) "still runs" "4\n" (Buffer.contents buf)

let () =
  
  Alcotest.run "fir_to_std"
    [ ("fir-to-std",
       [ Alcotest.test_case "gauss-seidel lowered" `Quick
           test_gs_lowered_matches;
         Alcotest.test_case "heap arrays forwarded" `Quick
           test_heap_arrays_forwarded;
         Alcotest.test_case "host module after extraction" `Quick
           test_host_module_after_extraction;
         Alcotest.test_case "unsupported skipped" `Quick
           test_unsupported_is_skipped_not_broken ]) ]

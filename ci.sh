#!/bin/sh
# Tier-1 gate plus a service smoke test: build, run the full test
# suite, then drive `sfc batch` over the example programs twice with a
# shared cache directory — the warm pass must hit on every job.
set -eu
cd "$(dirname "$0")"

dune build
dune runtest

SFC=_build/default/bin/sfc.exe

# Static-analysis gate: every example program must check clean, and the
# racy in-place Gauss-Seidel fixture must fail under --werror.
for f in examples/*.f90; do
  if ! "$SFC" check "$f"; then
    echo "ci: sfc check flagged $f, expected it to be clean"
    exit 1
  fi
done
if "$SFC" check test/fixtures/gauss_seidel_inplace.f90 --werror \
    >/dev/null 2>&1; then
  echo "ci: sfc check --werror accepted the racy fixture"
  exit 1
fi
# Footprint lints: --json must be well-formed (diagnostics + summary
# keys) on every example, with zero dead-write false positives; the
# dead-write fixture must be flagged (both lints) and rejected under
# --werror.
for f in examples/*.f90; do
  json_out=$("$SFC" check "$f" --json)
  if ! printf '%s\n' "$json_out" | grep -q '"diagnostics"' \
      || ! printf '%s\n' "$json_out" | grep -q '"summary"'; then
    echo "ci: sfc check --json on $f missing diagnostics/summary"
    printf '%s\n' "$json_out"
    exit 1
  fi
  if printf '%s\n' "$json_out" | grep -q 'dead-write'; then
    echo "ci: dead-write false positive on clean example $f"
    printf '%s\n' "$json_out"
    exit 1
  fi
done
dead_out=$("$SFC" check test/fixtures/dead_write.f90 2>&1)
if ! printf '%s\n' "$dead_out" | grep -q 'dead-write' \
    || ! printf '%s\n' "$dead_out" | grep -q 'unread-field'; then
  echo "ci: dead-write fixture not flagged"
  printf '%s\n' "$dead_out"
  exit 1
fi
if "$SFC" check test/fixtures/dead_write.f90 --werror >/dev/null 2>&1; then
  echo "ci: sfc check --werror accepted the dead-write fixture"
  exit 1
fi
echo "check smoke: examples clean (no dead-write FPs), racy and dead-write fixtures rejected under --werror"

CACHE=$(mktemp -d)
JOBS=$(mktemp)
trap 'rm -rf "$CACHE" "$JOBS"' EXIT

for f in examples/*.f90; do
  for target in serial openmp gpu-initial gpu-optimised; do
    printf '{"src": "%s", "target": "%s", "action": "run"}\n' "$f" "$target"
    printf '{"src": "%s", "target": "%s", "action": "compile"}\n' "$f" "$target"
  done
done >"$JOBS"

njobs=$(wc -l <"$JOBS")

cold_out=$("$SFC" batch "$JOBS" --workers 2 --cache-dir "$CACHE")
cold_hits=$(printf '%s\n' "$cold_out" | grep -c '"cache":"hit"' || true)
warm_out=$("$SFC" batch "$JOBS" --workers 2 --cache-dir "$CACHE")
warm_hits=$(printf '%s\n' "$warm_out" | grep -c '"cache":"hit"' || true)
errors=$(printf '%s\n%s\n' "$cold_out" "$warm_out" \
  | grep -c '"status":"error"' || true)

echo "batch smoke: $njobs jobs, cold hits=$cold_hits, warm hits=$warm_hits"
[ "$errors" -eq 0 ] || { echo "ci: batch jobs failed"; exit 1; }
[ "$warm_hits" -ge "$cold_hits" ] || {
  echo "ci: warm run reused fewer cache entries than cold"
  exit 1
}
[ "$warm_hits" -eq "$njobs" ] || {
  echo "ci: warm run should hit the cache on every job"
  exit 1
}

# Execution-engine smoke: the kernels bench compares interp/closure/
# vector/native on identical artifacts, requires bitwise-identical
# grids, vector >= closure and native >= vector (when a toolchain is
# present), and exits nonzero on any violation.
ROOT=$(pwd)
BENCHDIR=$(mktemp -d)
if ! (cd "$BENCHDIR" && "$ROOT/_build/default/bench/main.exe" \
    --kernels-only --quick); then
  echo "ci: kernels bench failed (engine mismatch or vector < closure)"
  rm -rf "$BENCHDIR"
  exit 1
fi
if ! [ -s "$BENCHDIR/BENCH_kernels.json" ] \
    || ! grep -q '"speedups"' "$BENCHDIR/BENCH_kernels.json"; then
  echo "ci: BENCH_kernels.json missing or malformed"
  rm -rf "$BENCHDIR"
  exit 1
fi
# When a toolchain is present the bench also lands its scheduling
# ablation (v2 vs no-tile/no-fuse vs v1) and self-gates v2 >= the gate
# factor over v1 on the fusable stencils — a bench exit of 0 above
# means those gates passed; CI just re-checks the section landed.
if grep -q '"native_over_vector"' "$BENCHDIR/BENCH_kernels.json" \
    && ! grep -q '"scheduling"' "$BENCHDIR/BENCH_kernels.json"; then
  echo "ci: kernels bench ran native but landed no scheduling section"
  rm -rf "$BENCHDIR"
  exit 1
fi
echo "bench smoke: BENCH_kernels.json well-formed, vector >= closure"
rm -rf "$BENCHDIR"

# Native JIT smoke: a cold run must compile plugins (reporting their
# cold build time) with grid checksums identical to the vector engine;
# a warm re-run over the same cache directory must Dynlink the cached
# plugins without invoking the compiler — zero .cmxs newer than the
# marker — and report the cache hit. Skipped with a visible notice when
# the container has no ocamlopt toolchain.
NCACHE=$(mktemp -d)
cold_out=$("$SFC" run examples/laplace.f90 --exec-engine native \
  --cache-dir "$NCACHE" --stats 2>&1 >/dev/null)
if printf '%s\n' "$cold_out" | grep -q 'native unavailable'; then
  echo "native smoke: SKIPPED (no ocamlopt toolchain in this environment)"
else
  vec_grids=$("$SFC" run examples/laplace.f90 --exec-engine vector \
    --stats 2>&1 >/dev/null | grep '^grid')
  if ! printf '%s\n' "$cold_out" | grep -q 'cold build'; then
    echo "ci: native cold run did not report a cold build"
    printf '%s\n' "$cold_out"
    exit 1
  fi
  if [ "$vec_grids" != "$(printf '%s\n' "$cold_out" | grep '^grid')" ]; then
    echo "ci: native cold checksums differ from vector"
    printf 'vector:\n%s\nnative:\n%s\n' "$vec_grids" "$cold_out"
    exit 1
  fi
  marker="$NCACHE/.ci-marker"
  touch "$marker"
  warm_out=$("$SFC" run examples/laplace.f90 --exec-engine native \
    --cache-dir "$NCACHE" --stats 2>&1 >/dev/null)
  if ! printf '%s\n' "$warm_out" | grep -q 'warm cache hit'; then
    echo "ci: native warm run did not hit the artifact cache"
    printf '%s\n' "$warm_out"
    exit 1
  fi
  if [ "$vec_grids" != "$(printf '%s\n' "$warm_out" | grep '^grid')" ]; then
    echo "ci: native warm checksums differ from vector"
    exit 1
  fi
  recompiled=$(find "$NCACHE" -name '*.cmxs' -newer "$marker" | wc -l)
  if [ "$recompiled" -ne 0 ]; then
    echo "ci: warm native run recompiled $recompiled plugin(s)"
    exit 1
  fi
  echo "native smoke: cold build + warm cache hit, checksums match vector, 0 recompiles"

  # Scheduling smoke: laplace's sweep/copy pair must fuse (the --stats
  # detail names the shift), and every knob combination must answer the
  # same grid checksums — the transforms change loop control only.
  if ! printf '%s\n' "$cold_out" | grep -q 'fused 2 nests (shift d=1)'; then
    echo "ci: native --stats does not report the fused sweep/copy pair"
    printf '%s\n' "$cold_out"
    exit 1
  fi
  if ! printf '%s\n' "$cold_out" | grep -q 'x4-unrolled'; then
    echo "ci: native --stats does not report the unrolled schedule"
    printf '%s\n' "$cold_out"
    exit 1
  fi
  for knobs in "--native-no-tile" "--native-no-fuse" \
      "--native-no-tile --native-no-fuse"; do
    KCACHE=$(mktemp -d)
    # shellcheck disable=SC2086
    knob_out=$("$SFC" run examples/laplace.f90 --exec-engine native \
      --cache-dir "$KCACHE" --stats $knobs 2>&1 >/dev/null)
    rm -rf "$KCACHE"
    if [ "$vec_grids" != "$(printf '%s\n' "$knob_out" | grep '^grid')" ]; then
      echo "ci: native checksums drift under $knobs"
      printf 'vector:\n%s\nnative:\n%s\n' "$vec_grids" "$knob_out"
      exit 1
    fi
    case $knobs in
    *no-fuse*)
      if printf '%s\n' "$knob_out" | grep -q 'fused'; then
        echo "ci: --native-no-fuse still reports fused nests"
        exit 1
      fi
      ;;
    esac
  done
  echo "native scheduling smoke: shift-fused pair reported, all knob combos bitwise vs vector"
fi
rm -rf "$NCACHE"

# Distributed-backend smoke: the dist target must reproduce the serial
# grid checksums exactly, a rank count the grid cannot host must fail
# with the located decomposition diagnostic, and the dist bench must
# emit a well-formed BENCH_dmp.json (it exits nonzero when overlap
# loses to blocking).
serial_grids=$("$SFC" run examples/laplace.f90 --stats 2>&1 >/dev/null \
  | grep '^grid')
dist_grids=$("$SFC" run examples/laplace.f90 --target dist --ranks 4 \
  --stats 2>&1 >/dev/null | grep '^grid')
if [ "$serial_grids" != "$dist_grids" ]; then
  echo "ci: dist checksums differ from serial"
  printf 'serial:\n%s\ndist:\n%s\n' "$serial_grids" "$dist_grids"
  exit 1
fi
if "$SFC" run examples/laplace.f90 --target dist --ranks 1000 \
    >/dev/null 2>&1; then
  echo "ci: 1000 ranks on a 12^3 grid should be rejected"
  exit 1
fi
if ! "$SFC" run examples/laplace.f90 --target dist --ranks 1000 2>&1 \
    | grep -q 'error\[decomp\]'; then
  echo "ci: degenerate decomposition missing the located diagnostic"
  exit 1
fi
echo "dist smoke: 4-rank run matches serial, degenerate ranks rejected"

# Superstep fusion + footprint staling: examples/residual.f90 re-reads
# u at offsets and writes it back only along the global j = k = 1 edge —
# a plane the affine write footprint proves is never a mirrored block
# boundary — so every superstep after the first finds u's halos fresh
# and fuses the exchange away. Halo messages at 4 ranks must drop
# versus the pre-fusion schedule (--dist-no-fuse), with grid checksums
# identical to serial either way.
res_serial=$("$SFC" run examples/residual.f90 --stats 2>&1 >/dev/null \
  | grep '^grid')
res_fused=$("$SFC" run examples/residual.f90 --target dist --ranks 4 \
  --stats 2>&1 >/dev/null)
res_unfused=$("$SFC" run examples/residual.f90 --target dist --ranks 4 \
  --stats --dist-no-fuse 2>&1 >/dev/null)
for run in "$res_fused" "$res_unfused"; do
  if [ "$res_serial" != "$(printf '%s\n' "$run" | grep '^grid')" ]; then
    echo "ci: residual dist checksums differ from serial"
    printf 'serial:\n%s\nrun:\n%s\n' "$res_serial" "$run"
    exit 1
  fi
done
fused_msgs=$(printf '%s\n' "$res_fused" | grep '^dist: group' \
  | sed 's/.*grid, \([0-9][0-9]*\) msgs.*/\1/')
unfused_msgs=$(printf '%s\n' "$res_unfused" | grep '^dist: group' \
  | sed 's/.*grid, \([0-9][0-9]*\) msgs.*/\1/')
if [ -z "$fused_msgs" ] || [ -z "$unfused_msgs" ] \
    || [ "$fused_msgs" -ge "$unfused_msgs" ]; then
  echo "ci: fusion did not cut halo messages ($fused_msgs vs $unfused_msgs)"
  exit 1
fi
if ! printf '%s\n' "$res_fused" | grep -q 'fused stages'; then
  echo "ci: dist --stats missing the fused-stage count"
  exit 1
fi
if ! printf '%s\n' "$res_fused" | grep -q 'avoided by footprint'; then
  echo "ci: dist --stats missing the footprint staling count"
  exit 1
fi
# with footprints disabled the probe's edge write stales u every
# superstep: strictly more halo messages on identical work
res_nofp=$("$SFC" run examples/residual.f90 --target dist --ranks 4 \
  --stats --dist-no-footprint 2>&1 >/dev/null)
if [ "$res_serial" != "$(printf '%s\n' "$res_nofp" | grep '^grid')" ]; then
  echo "ci: --dist-no-footprint checksums differ from serial"
  exit 1
fi
nofp_msgs=$(printf '%s\n' "$res_nofp" | grep '^dist: group' \
  | sed 's/.*grid, \([0-9][0-9]*\) msgs.*/\1/')
if [ -z "$nofp_msgs" ] || [ "$fused_msgs" -ge "$nofp_msgs" ]; then
  echo "ci: footprint staling did not cut halo messages ($fused_msgs vs $nofp_msgs)"
  exit 1
fi
echo "dist fusion smoke: $fused_msgs msgs fused vs $unfused_msgs unfused, $nofp_msgs without footprints"

# The dist bench self-validates (strong-scaling traffic present, the
# 8-rank point within the stated factor of the Net_model projection,
# coalescing cutting messages by the swap-set size, overlap >= blocking)
# and exits nonzero on any violation; CI only re-checks the sections
# landed in the file.
DISTDIR=$(mktemp -d)
if ! (cd "$DISTDIR" && "$ROOT/_build/default/bench/main.exe" \
    --dist --quick); then
  echo "ci: dist bench failed its own validation gate"
  rm -rf "$DISTDIR"
  exit 1
fi
if ! [ -s "$DISTDIR/BENCH_dmp.json" ] \
    || ! grep -q '"overlap_vs_blocking"' "$DISTDIR/BENCH_dmp.json" \
    || ! grep -q '"projected"' "$DISTDIR/BENCH_dmp.json" \
    || ! grep -q '"model_gate"' "$DISTDIR/BENCH_dmp.json" \
    || ! grep -q '"coalescing"' "$DISTDIR/BENCH_dmp.json" \
    || ! grep -q '"footprint_staling"' "$DISTDIR/BENCH_dmp.json"; then
  echo "ci: BENCH_dmp.json missing or malformed"
  rm -rf "$DISTDIR"
  exit 1
fi
echo "dist bench smoke: BENCH_dmp.json well-formed and self-validated"
rm -rf "$DISTDIR"

# Serve smoke: a live `sfc serve` instance must answer three concurrent
# clients with checksums identical to a serial in-process batch, report
# every client identity in its metrics JSON, and shut down cleanly on
# request.
SRVDIR=$(mktemp -d)
SOCK="$SRVDIR/sfc.sock"
for f in examples/*.f90; do
  for target in serial openmp; do
    printf '{"src": "%s", "target": "%s", "action": "run"}\n' "$f" "$target"
  done
done >"$SRVDIR/jobs.jsonl"
srv_njobs=$(wc -l <"$SRVDIR/jobs.jsonl")
serial_sums=$("$SFC" batch "$SRVDIR/jobs.jsonl" --workers 1 --no-cache \
  | grep -o '"checksums":{[^}]*}' | sort)

"$SFC" serve --socket "$SOCK" --workers 2 --handlers 4 --quota 32 \
  --cache-dir "$SRVDIR/cache" --cache-mb 64 2>"$SRVDIR/serve.log" &
SRVPID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
if [ ! -S "$SOCK" ]; then
  echo "ci: serve socket never appeared"
  kill "$SRVPID" 2>/dev/null || true
  exit 1
fi

for cl in a b c; do
  "$SFC" batch "$SRVDIR/jobs.jsonl" --socket "$SOCK" --client "$cl" \
    >"$SRVDIR/out.$cl" &
  eval "PID_$cl=\$!"
done
wait "$PID_a" "$PID_b" "$PID_c"
for cl in a b c; do
  oks=$(grep -c '"status":"ok"' "$SRVDIR/out.$cl" || true)
  if [ "$oks" -ne "$srv_njobs" ]; then
    echo "ci: concurrent client $cl: $oks/$srv_njobs jobs ok"
    cat "$SRVDIR/out.$cl"
    kill "$SRVPID" 2>/dev/null || true
    exit 1
  fi
  sums=$(grep -o '"checksums":{[^}]*}' "$SRVDIR/out.$cl" | sort)
  if [ "$sums" != "$serial_sums" ]; then
    echo "ci: concurrent client $cl checksums differ from serial batch"
    kill "$SRVPID" 2>/dev/null || true
    exit 1
  fi
done

printf '{"action": "metrics"}\n' >"$SRVDIR/metrics.jsonl"
metrics=$("$SFC" batch "$SRVDIR/metrics.jsonl" --socket "$SOCK")
for key in '"scheduler"' '"queue_depth"' '"cache"' '"counters"' \
    '"a":{"weight"' '"b":{"weight"' '"c":{"weight"'; do
  if ! printf '%s\n' "$metrics" | grep -q "$key"; then
    echo "ci: serve metrics JSON missing $key"
    printf '%s\n' "$metrics"
    kill "$SRVPID" 2>/dev/null || true
    exit 1
  fi
done

printf '{"action": "shutdown"}\n' >"$SRVDIR/shutdown.jsonl"
"$SFC" batch "$SRVDIR/shutdown.jsonl" --socket "$SOCK" >/dev/null
wait "$SRVPID"
echo "serve smoke: 3 concurrent clients x $srv_njobs jobs match serial, metrics well-formed, clean shutdown"
rm -rf "$SRVDIR"

# The serve bench self-validates (>= 4 saturation points, percentiles,
# shed rate, ok results bitwise equal to a serial reference) and exits
# nonzero on any violation; CI re-checks the sections landed.
SERVEDIR=$(mktemp -d)
if ! (cd "$SERVEDIR" && "$ROOT/_build/default/bench/main.exe" \
    --serve --quick); then
  echo "ci: serve bench failed its own validation gate"
  rm -rf "$SERVEDIR"
  exit 1
fi
if ! [ -s "$SERVEDIR/BENCH_serve.json" ] \
    || ! grep -q '"saturation"' "$SERVEDIR/BENCH_serve.json" \
    || ! grep -q '"p99_ms"' "$SERVEDIR/BENCH_serve.json" \
    || ! grep -q '"shed_rate"' "$SERVEDIR/BENCH_serve.json" \
    || ! grep -q '"warm_hit_ratio"' "$SERVEDIR/BENCH_serve.json"; then
  echo "ci: BENCH_serve.json missing or malformed"
  rm -rf "$SERVEDIR"
  exit 1
fi
echo "serve bench smoke: BENCH_serve.json well-formed and self-validated"
rm -rf "$SERVEDIR"

echo "ci: OK"

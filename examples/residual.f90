! Repeated residual evaluation plus a boundary-edge probe — the
! smallest program where footprint-aware halo staling beats whole-field
! staling: the probe nest writes u every iteration, but only along the
! global edge j = k = 1, a plane the affine write footprint proves is
! never a block-boundary (mirrored) plane under any decomposition. So
! whole-field staling re-exchanges u's halos every superstep while
! footprint staling pays for the first exchange only.
!
!   dune exec bin/sfc.exe -- run examples/residual.f90 \
!     --target dist --ranks 4 --stats
!
! (compare against --dist-no-footprint: halo traffic grows with niter)
program residual_probe
  implicit none
  integer, parameter :: nx = 12, ny = 12, nz = 12, niter = 3
  integer :: i, j, k, iter
  real(kind=8), dimension(0:nx+1, 0:ny+1, 0:nz+1) :: u, r

  do k = 0, nz + 1
    do j = 0, ny + 1
      do i = 0, nx + 1
        u(i, j, k) = 0.01d0 * dble(i) * dble(i) &
                   + 0.02d0 * dble(j) * dble(k) + 0.03d0 * dble(k)
        r(i, j, k) = 0.0d0
      end do
    end do
  end do

  do iter = 1, niter
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          r(i, j, k) = u(i, j, k) - (u(i-1, j, k) + u(i+1, j, k) &
                     + u(i, j-1, k) + u(i, j+1, k) + u(i, j, k-1) &
                     + u(i, j, k+1)) / 6.0d0
        end do
      end do
    end do
    ! edge probe: accumulate the residual into u along the j = k = 1
    ! edge only — an interior-boundary write whose footprint never
    ! reaches a mirrored plane
    do k = 1, 1
      do j = 1, 1
        do i = 1, nx
          u(i, j, k) = u(i, j, k) + 0.25d0 * r(i, j, k)
        end do
      end do
    end do
  end do
end program residual_probe

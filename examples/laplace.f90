! 3-D Gauss-Seidel / Laplace diffusion at a CLI-friendly size — the
! paper's first benchmark, checked in so the sfc driver has a ready-made
! input:
!
!   dune exec bin/sfc.exe -- run examples/laplace.f90 \
!     --target openmp --threads 2 --stats --trace trace.json
!
! (same code shape as lib/driver/benchmarks.ml's gauss_seidel generator)
program gauss_seidel
  implicit none
  integer, parameter :: nx = 12, ny = 12, nz = 12, niter = 2
  integer :: i, j, k, iter
  real(kind=8), dimension(0:nx+1, 0:ny+1, 0:nz+1) :: u, unew

  ! initial condition: smooth non-harmonic field; the boundary stays
  ! fixed as a Dirichlet condition
  do k = 0, nz + 1
    do j = 0, ny + 1
      do i = 0, nx + 1
        u(i, j, k) = 0.01d0 * dble(i) * dble(i) &
                   + 0.02d0 * dble(j) * dble(k) + 0.03d0 * dble(k)
        unew(i, j, k) = 0.0d0
      end do
    end do
  end do

  do iter = 1, niter
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          unew(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                        + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0d0
        end do
      end do
    end do
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          u(i, j, k) = unew(i, j, k)
        end do
      end do
    end do
  end do
end program gauss_seidel

(* Quickstart: the paper's Listing 1 through the whole pipeline, with the
   IR printed at every stage of Figure 1.

   Run with:  dune exec examples/quickstart.exe                       *)

open Fsc_ir
module P = Fsc_driver.Pipeline

let banner title =
  Printf.printf "\n--- %s %s\n\n" title
    (String.make (max 1 (66 - String.length title)) '-')

let fortran_source =
  {|
program average
  implicit none
  integer, parameter :: n = 16
  integer :: i, j
  real(kind=8), dimension(0:n, 0:n) :: data, result

  ! fill the input grid with something to average
  do i = 0, n
    do j = 0, n
      data(j, i) = dble(i) * 0.5d0 + dble(j) * 0.25d0
    end do
  end do

  ! Listing 1 of the paper: average the four neighbours
  do i = 1, n - 1
    do j = 1, n - 1
      result(j, i) = 0.25 * (data(j, i - 1) + data(j, i + 1) &
                   + data(j - 1, i) + data(j + 1, i))
    end do
  end do

  print *, "result(8, 8) =", result(8, 8)
end program average
|}

let () =
  Fsc_dialects.Registry.init ();
  banner "1. Fortran source";
  print_string fortran_source;

  banner "2. FIR emitted by the frontend (flang -fc1 -emit-mlir)";
  let m = Fsc_fortran.Flower.compile_source fortran_source in
  print_string (Printer.module_to_string m);

  banner "3. after stencil discovery (Listing 3 of the paper)";
  let stats = Fsc_core.Discovery.run m in
  Printf.printf "discovered %d stencils, %d candidate stores rejected\n\n"
    stats.Fsc_core.Discovery.found
    (List.length stats.Fsc_core.Discovery.rejected);
  ignore (Fsc_core.Merge.run m);
  print_string (Printer.module_to_string m);

  banner "4. after extraction: the FIR host module (Flang-compilable)";
  let ex = Fsc_core.Extraction.run m in
  print_string (Printer.module_to_string ex.Fsc_core.Extraction.host_module);
  Verifier.verify_in_context_exn (Dialect.flang_context ())
    ex.Fsc_core.Extraction.host_module;
  print_endline "\n(verified against the Flang dialect registry)";

  banner "5. the extracted stencil module, lowered to scf for CPU";
  Fsc_lowering.Stencil_to_scf.run ~mode:Fsc_lowering.Stencil_to_scf.Cpu
    ex.Fsc_core.Extraction.stencil_module;
  ignore (Fsc_transforms.Canonicalize.run ex.Fsc_core.Extraction.stencil_module);
  print_string
    (Printer.module_to_string ex.Fsc_core.Extraction.stencil_module);
  Verifier.verify_in_context_exn (Dialect.mlir_opt_context ())
    ex.Fsc_core.Extraction.stencil_module;
  print_endline "\n(verified against the mlir-opt dialect registry)";

  banner "6. execution (host interpreted, kernels compiled)";
  let artifact, st = P.stencil ~target:P.Serial fortran_source in
  Printf.printf "pipeline: %d stencils discovered, %d kernels extracted\n"
    st.P.st_discovered st.P.st_kernels;
  List.iter
    (fun (name, impl) ->
      Printf.printf "  %s: %s\n" name
        (match impl with
        | P.Compiled spec ->
          Printf.sprintf "compiled (%d loop nest(s))"
            (List.length spec.Fsc_rt.Kernel_compile.k_nests)
        | P.Vectorised (spec, _) ->
          Printf.sprintf "vectorised (%d loop nest(s))"
            (List.length spec.Fsc_rt.Kernel_compile.k_nests)
        | P.Native_jit (spec, _) ->
          Printf.sprintf "native JIT (%d loop nest(s))"
            (List.length spec.Fsc_rt.Kernel_compile.k_nests)
        | P.Interpreted reason -> "interpreted (" ^ reason ^ ")"
        | P.Distributed spec ->
          Printf.sprintf "distributed (%d loop nest(s))"
            (List.length spec.Fsc_rt.Kernel_compile.k_nests)))
    artifact.P.a_kernels;
  print_newline ();
  P.run artifact;

  (* cross-check against the naive Flang-only execution *)
  let reference = P.flang_only fortran_source in
  P.run reference;
  let r1 = P.buffer_exn artifact "result" in
  let r2 = P.buffer_exn reference "result" in
  Printf.printf "\nmax |stencil - flang-only| over the whole grid: %g\n"
    (Fsc_rt.Memref_rt.max_abs_diff r1 r2)

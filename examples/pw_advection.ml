(* PW advection: the fusion story. The Piacsek-Williams scheme is written
   as three separate loop nests over three velocity fields; the merge
   pass fuses the three discovered stencils into a single apply — one
   pass over memory instead of three — which is what makes the stencil
   pipeline overtake hand-written OpenMP at high thread counts in the
   paper's Figure 4.

   Run with:  dune exec examples/pw_advection.exe                     *)

open Fsc_ir
module P = Fsc_driver.Pipeline
module B = Fsc_driver.Benchmarks
module Stencil = Fsc_stencil.Stencil

let () =
  Fsc_dialects.Registry.init ();
  let src = B.pw_advection ~nx:16 ~ny:16 ~nz:16 ~niter:4 () in
  print_endline
    "PW advection (Piacsek & Williams 1970, as used by the Met Office \
     MONC model).";
  print_endline
    "Three separate Fortran loop nests compute su, sv, sw from u, v, w \
     (~63 flops/cell).\n";

  (* stage 1: discovery finds nine stencils (six initialisation fills +
     three advection nests) *)
  let m = Fsc_fortran.Flower.compile_source src in
  let stats = Fsc_core.Discovery.run m in
  Printf.printf "discovery: %d stencils found\n" stats.Fsc_core.Discovery.found;

  (* stage 2: merging fuses them *)
  let merged = Fsc_core.Merge.run m in
  let applies = Op.collect_ops Stencil.is_apply m in
  Printf.printf "merging:   %d fusions -> %d stencil regions remain\n"
    merged (List.length applies);
  List.iter
    (fun a ->
      let bounds =
        match Op.results a with
        | r :: _ ->
          String.concat "x"
            (List.map
               (fun (lo, hi) -> Printf.sprintf "[%d,%d]" lo hi)
               (Stencil.type_bounds (Op.value_type r)))
        | [] -> "?"
      in
      Printf.printf
        "  stencil region: %d inputs, %d results, output bounds %s\n"
        (Op.num_operands a) (Op.num_results a) bounds)
    applies;
  print_endline
    "\nThe advection region carries three results: su, sv and sw are now \
     computed\nin a single sweep — the fusion the paper reports for this \
     benchmark.\n";

  (* stage 3: the fused kernel in numbers *)
  let a, st = P.stencil ~target:P.Serial src in
  Printf.printf "extraction: %d kernels\n" st.P.st_kernels;
  List.iter
    (fun (name, impl) ->
      match impl with
      | P.Compiled spec
      | P.Vectorised (spec, _)
      | P.Native_jit (spec, _)
      | P.Distributed spec ->
        List.iter
          (fun nest ->
            Printf.printf
              "  %s: nest of %d loops, %d stores/cell, %d flops/cell, %d \
               loads/cell\n"
              name
              (List.length nest.Fsc_rt.Kernel_compile.n_loops)
              (List.length nest.Fsc_rt.Kernel_compile.n_stores)
              nest.Fsc_rt.Kernel_compile.n_flops_per_cell
              nest.Fsc_rt.Kernel_compile.n_loads_per_cell)
          spec.Fsc_rt.Kernel_compile.k_nests
      | P.Interpreted reason ->
        Printf.printf "  %s: interpreted (%s)\n" name reason)
    a.P.a_kernels;

  (* stage 4: execute and validate against naive execution *)
  P.run a;
  let reference = P.flang_only src in
  P.run reference;
  List.iter
    (fun f ->
      Printf.printf "max |stencil - flang-only| for %s: %g\n" f
        (Fsc_rt.Memref_rt.max_abs_diff (P.buffer_exn a f)
           (P.buffer_exn reference f)))
    [ "su"; "sv"; "sw" ];

  (* stage 5: why fusion matters — the model's bandwidth arithmetic *)
  print_endline "\nwhy fusion wins at scale (ARCHER2 model, 2.1e9 cells):";
  List.iter
    (fun t ->
      let cray =
        Fsc_perf.Cpu_model.mcells ~bench:Fsc_perf.Cpu_model.Pw_advection
          ~pipe:Fsc_perf.Cpu_model.Cray ~threads:t ()
      in
      let st =
        Fsc_perf.Cpu_model.mcells ~bench:Fsc_perf.Cpu_model.Pw_advection
          ~pipe:Fsc_perf.Cpu_model.Stencil_opt ~threads:t ()
      in
      Printf.printf
        "  %3d threads: hand-OpenMP (unfused) %6.0f MCells/s, stencil \
         (fused) %6.0f MCells/s%s\n"
        t cray st
        (if st > cray then "  <- fused wins" else ""))
    [ 1; 16; 32; 64; 128 ]

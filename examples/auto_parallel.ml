(* Automatic distributed-memory parallelisation: the same serial Fortran
   Gauss-Seidel, decomposed over simulated MPI ranks via the DMP dialect
   path (paper Section 4.4 / Figure 6). Shows the IR-level lowering
   (stencil -> dmp.swap -> mpi.isend/irecv/waitall) and a functional SPMD
   execution validated against serial.

   Run with:  dune exec examples/auto_parallel.exe                    *)

open Fsc_ir
module B = Fsc_driver.Benchmarks
module D = Fsc_dmp.Decomp
module DX = Fsc_dmp.Dist_exec
module Rt = Fsc_rt.Memref_rt
module V = Fsc_rt.Vendor_kernels

let nx, ny, nz = (12, 14, 16)
let iters = 5
let ranks = 6

let () =
  Fsc_dialects.Registry.init ();
  print_endline
    "Auto-parallelisation to distributed memory: serial Fortran in, SPMD \
     out.\n";

  (* --- IR level: stencil -> DMP -> MPI --- *)
  let src = B.gauss_seidel ~nx ~ny ~nz ~niter:iters () in
  let m = Fsc_fortran.Flower.compile_source src in
  ignore (Fsc_core.Discovery.run m);
  ignore (Fsc_core.Merge.run m);
  let ex = Fsc_core.Extraction.run m in
  let sm = ex.Fsc_core.Extraction.stencil_module in
  let swaps = Fsc_dmp.Stencil_to_dmp.run sm in
  Printf.printf "lower-to-dmp: %d halo swap(s) inserted\n" swaps;
  Op.walk
    (fun o ->
      if o.Op.o_name = "dmp.swap" then
        Printf.printf "  dmp.swap with halo widths %s over dims %s\n"
          (String.concat ","
             (List.map string_of_int (Fsc_dmp.Dmp_dialect.swap_halo o)))
          (match Op.attr_exn o "decomposed_dims" with
          | Attr.Arr_a xs ->
            String.concat "," (List.map Attr.to_string xs)
          | _ -> "?"))
    sm;
  let lowered = Fsc_dmp.Dmp_to_mpi.run sm in
  let count name =
    List.length (Op.collect_ops (fun o -> o.Op.o_name = name) sm)
  in
  Printf.printf
    "dmp-to-mpi:   %d swap(s) lowered -> %d mpi.isend + %d mpi.irecv + %d \
     mpi.waitall\n\n"
    lowered (count "mpi.isend") (count "mpi.irecv") (count "mpi.waitall");

  (* --- decomposition --- *)
  let d = D.create ~global:(nx, ny, nz) ~ranks in
  Printf.printf
    "decomposition: %dx%dx%d grid over %d ranks as a %dx%d process grid\n"
    nx ny nz ranks d.D.py d.D.pz;
  for r = 0 to D.nranks d - 1 do
    let (xl, xh), (yl, yh), (zl, zh) = D.local_range d r in
    Printf.printf "  rank %d owns x %d..%d, y %d..%d, z %d..%d\n" r xl xh yl
      yh zl zh
  done;

  (* --- functional SPMD execution over simulated MPI --- *)
  let init name (i, j, k) =
    match name with
    | "u" ->
      V.gs_init i j k
    | _ -> 0.0
  in
  let pool = Fsc_rt.Domain_pool.create 2 in
  let t = DX.create ~pool d ~fields:[ "u"; "unew" ] ~init in
  let local_grids t rank =
    let st = t.DX.ranks.(rank) in
    let lu = DX.field st "u" and ln = DX.field st "unew" in
    let lx, ly, lz = D.local_extents d rank in
    ( { V.g_buf = lu; V.g_nx = lx; V.g_ny = ly; V.g_nz = lz },
      { V.g_buf = ln; V.g_nx = lx; V.g_ny = ly; V.g_nz = lz } )
  in
  (* overlapped superstep: the interior block is swept while the halo
     messages are in flight, then the boundary shells finish *)
  DX.iterate t ~mode:DX.Overlap ~iters ~swap_fields:[ "u" ]
    ~sweep:(fun t ~rank w ->
      let gu, gn = local_grids t rank in
      V.gs3d_sweep_in ~u:gu ~unew:gn ~jlo:w.DX.w_jlo ~jhi:w.DX.w_jhi
        ~klo:w.DX.w_klo ~khi:w.DX.w_khi ())
    ~finish:(fun t ~rank ->
      let gu, gn = local_grids t rank in
      V.gs3d_copyback ~u:gu ~unew:gn ())
    ();
  Fsc_rt.Domain_pool.shutdown pool;
  let msgs, bytes = DX.stats t in
  Printf.printf
    "\nSPMD run (overlapped): %d iterations, %d halo messages, %d kB moved\n"
    iters msgs (bytes / 1024);

  (* --- validation against serial --- *)
  let u = V.grid3 ~nx ~ny ~nz and unew = V.grid3 ~nx ~ny ~nz in
  V.init_linear u;
  V.gs3d_run ~u ~unew ~iters ();
  let gathered = DX.gather t "u" in
  let max_diff = ref 0.0 in
  for k = 1 to nz do
    for j = 1 to ny do
      for i = 1 to nx do
        max_diff :=
          Float.max !max_diff
            (Float.abs
               (Rt.get u.V.g_buf [| i; j; k |]
               -. Rt.get gathered [| i; j; k |]))
      done
    done
  done;
  Printf.printf "max |distributed - serial| over the interior: %g\n"
    !max_diff;
  assert (!max_diff = 0.0);

  (* --- the Figure 6 shape --- *)
  print_endline
    "\nscaling model (ARCHER2/Slingshot, 1.7e10 cells, MCells/s):";
  List.iter
    (fun ranks ->
      Printf.printf
        "  %5d cores: hand-MPI %8.0f | auto DMP/MPI %8.0f  (hand/auto = \
         %.2fx)\n"
        ranks
        (Fsc_perf.Net_model.mcells ~variant:Fsc_perf.Net_model.Hand_cray
           ~global:(2580, 2580, 2580) ~ranks ())
        (Fsc_perf.Net_model.mcells ~variant:Fsc_perf.Net_model.Auto_dmp
           ~global:(2580, 2580, 2580) ~ranks ())
        (Fsc_perf.Net_model.mcells ~variant:Fsc_perf.Net_model.Hand_cray
           ~global:(2580, 2580, 2580) ~ranks ()
        /. Fsc_perf.Net_model.mcells ~variant:Fsc_perf.Net_model.Auto_dmp
             ~global:(2580, 2580, 2580) ~ranks ()))
    [ 256; 1024; 4096; 8192 ]

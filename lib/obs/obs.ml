(* Observability substrate: spans, monotonic counters, and Chrome
   trace-event export.

   This is the instrumentation layer the evaluation pipeline records
   into — the mini equivalent of mlir-opt's -mlir-timing plus
   pass-statistics machinery, with the output format of chrome://tracing
   so traces can be inspected in Perfetto.

   Design constraints:
   - recording must be safe from any domain (the pool workers record
     chunk counters concurrently with the caller);
   - when disabled (the default) every probe must be near-free, so the
     interpreter hot loop can stay instrumented unconditionally;
   - span recording must survive exceptions: a failing pass still leaves
     its span in the trace, tagged with the error. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON values                                                  *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape_to buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let number_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 4096 in
    write buf j;
    Buffer.contents buf

  exception Parse_error of string

  (* Recursive-descent parser, enough to round-trip our own output (and
     any reasonable trace-sized JSON). *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("bad literal, expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let code = int_of_string ("0x" ^ String.sub s !pos 4) in
             pos := !pos + 4;
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_char buf '?'
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while
        match peek () with Some c -> is_num_char c | None -> false
      do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elems (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Recording state                                                      *)
(* ------------------------------------------------------------------ *)

type arg =
  | A_int of int
  | A_float of float
  | A_str of string

type event = {
  e_name : string;
  e_cat : string;
  e_tid : int; (* domain id that recorded the span *)
  e_start : float; (* seconds since the trace epoch *)
  e_dur : float; (* seconds *)
  e_args : (string * arg) list;
}

let enabled_flag = Atomic.make false
let lock = Mutex.create ()
let recorded : event list ref = ref [] (* newest first *)
let epoch = ref (Unix.gettimeofday ())

(* Counters are interned by name so a handle stays valid across
   [reset]: reset zeroes the cells rather than dropping them. *)
type counter = {
  c_name : string;
  c_cell : int Atomic.t;
}

let counters_tbl : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 64
let now () = Unix.gettimeofday ()
let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

(* Counters-only recording: a long-running server wants its counters
   live for metrics dumps, but full recording would accumulate span
   events without bound. This flag enables counter accumulation without
   touching span recording ([enabled] stays authoritative for spans). *)
let counters_only_flag = Atomic.make false
let set_counters_only on = Atomic.set counters_only_flag on
let counters_enabled () = enabled () || Atomic.get counters_only_flag

let reset () =
  Mutex.lock lock;
  recorded := [];
  Hashtbl.iter (fun _ cell -> Atomic.set cell 0) counters_tbl;
  epoch := now ();
  Mutex.unlock lock

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_t0 : float;
  sp_live : bool; (* was recording enabled when the span began? *)
}

let span_begin ?(cat = "") name =
  if enabled () then
    { sp_name = name; sp_cat = cat; sp_tid = (Domain.self () :> int);
      sp_t0 = now (); sp_live = true }
  else { sp_name = name; sp_cat = cat; sp_tid = 0; sp_t0 = 0.; sp_live = false }

let span_end ?(args = []) sp =
  if sp.sp_live then begin
    let t1 = now () in
    let e =
      { e_name = sp.sp_name; e_cat = sp.sp_cat; e_tid = sp.sp_tid;
        e_start = sp.sp_t0 -. !epoch; e_dur = t1 -. sp.sp_t0;
        e_args = args }
    in
    Mutex.lock lock;
    recorded := e :: !recorded;
    Mutex.unlock lock
  end

(* Run [f] under a span. The span is recorded even when [f] raises —
   tagged with the exception — and the exception propagates with its
   original backtrace. *)
let with_span ?cat ?(args = []) name f =
  let sp = span_begin ?cat name in
  match f () with
  | v ->
    span_end ~args sp;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    span_end ~args:(("error", A_str (Printexc.to_string e)) :: args) sp;
    Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)
(* ------------------------------------------------------------------ *)

let counter name =
  Mutex.lock lock;
  let cell =
    match Hashtbl.find_opt counters_tbl name with
    | Some c -> c
    | None ->
      let c = Atomic.make 0 in
      Hashtbl.add counters_tbl name c;
      c
  in
  Mutex.unlock lock;
  { c_name = name; c_cell = cell }

let add c n =
  if counters_enabled () then ignore (Atomic.fetch_and_add c.c_cell n)
let incr c = add c 1
let counter_name c = c.c_name
let counter_value c = Atomic.get c.c_cell

(* All counters that have accumulated anything, sorted by name. *)
let counter_totals () =
  Mutex.lock lock;
  let totals =
    Hashtbl.fold
      (fun name cell acc ->
        let v = Atomic.get cell in
        if v <> 0 then (name, v) :: acc else acc)
      counters_tbl []
  in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> compare a b) totals

(* ------------------------------------------------------------------ *)
(* Inspection and export                                                *)
(* ------------------------------------------------------------------ *)

(* Recorded events in completion order (a nested span completes before
   its parent, so children precede parents). *)
let events () =
  Mutex.lock lock;
  let evs = List.rev !recorded in
  Mutex.unlock lock;
  evs

let events_with_cat cat = List.filter (fun e -> e.e_cat = cat) (events ())

(* Aggregate spans by name, in order of first completion:
   (name, count, total seconds). *)
let span_summary ?cat () =
  let evs = match cat with None -> events () | Some c -> events_with_cat c in
  let order = ref [] in
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.e_name with
      | Some (n, t) -> Hashtbl.replace tbl e.e_name (n + 1, t +. e.e_dur)
      | None ->
        order := e.e_name :: !order;
        Hashtbl.add tbl e.e_name (1, e.e_dur))
    evs;
  List.rev_map
    (fun name ->
      let n, t = Hashtbl.find tbl name in
      (name, n, t))
    !order

let json_of_arg = function
  | A_int n -> Json.Num (float_of_int n)
  | A_float f -> Json.Num f
  | A_str s -> Json.Str s

(* Chrome trace-event format (the JSON object flavour): spans become
   "X" complete events, counters one final "C" event each. Load the
   file in chrome://tracing or https://ui.perfetto.dev. *)
let trace_json () =
  let evs = events () in
  let span_event e =
    Json.Obj
      [ ("name", Json.Str e.e_name);
        ("cat", Json.Str (if e.e_cat = "" then "default" else e.e_cat));
        ("ph", Json.Str "X");
        ("pid", Json.Num 1.);
        ("tid", Json.Num (float_of_int e.e_tid));
        ("ts", Json.Num (1e6 *. e.e_start));
        ("dur", Json.Num (1e6 *. e.e_dur));
        ("args",
         Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) e.e_args)) ]
  in
  let t_end =
    List.fold_left (fun acc e -> Float.max acc (e.e_start +. e.e_dur)) 0. evs
  in
  let counter_event (name, v) =
    Json.Obj
      [ ("name", Json.Str name);
        ("cat", Json.Str "counter");
        ("ph", Json.Str "C");
        ("pid", Json.Num 1.);
        ("tid", Json.Num 0.);
        ("ts", Json.Num (1e6 *. t_end));
        ("args", Json.Obj [ ("value", Json.Num (float_of_int v)) ]) ]
  in
  Json.Obj
    [ ("traceEvents",
       Json.List
         (List.map span_event evs
         @ List.map counter_event (counter_totals ())));
      ("displayTimeUnit", Json.Str "ms") ]

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (trace_json ()));
      output_char oc '\n')

(* Human-readable summary of everything recorded, for --stats output. *)
let report () =
  let buf = Buffer.create 1024 in
  let spans = span_summary () in
  if spans <> [] then begin
    Buffer.add_string buf "spans (count, total):\n";
    List.iter
      (fun (name, n, t) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-45s %6d %10.3f ms\n" name n (1000. *. t)))
      spans
  end;
  let totals = counter_totals () in
  if totals <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-45s %12d\n" name v))
      totals
  end;
  Buffer.contents buf

(* Bounded-queue scheduler over domain workers.

   Locking discipline: [t.mutex] guards the queue, intake flag and
   aggregate counters; each ticket carries its own mutex/condvar for its
   resolution state. The two are never held at once (resolve first,
   then bump counters), so there is no lock ordering to get wrong.

   Timeouts are cooperative by necessity — a running domain cannot be
   interrupted — so a deadline is enforced at the three points where it
   can be: the worker discards expired jobs instead of starting them,
   the awaiter stops waiting at the deadline, and a late worker result
   loses the resolution race against the awaiter's [Timed_out] (first
   resolution wins, later ones are dropped). *)

module Obs = Fsc_obs.Obs

type 'a outcome =
  | Done of 'a
  | Failed of string
  | Timed_out

type reject =
  [ `Queue_full
  | `Shutting_down ]

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  failed : int;
  timed_out : int;
  max_queue_depth : int;
  total_wait_s : float;
}

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  queue : (float * (unit -> unit)) Queue.t; (* enqueue time, job thunk *)
  capacity : int;
  mutable accepting : bool;
  mutable domains : unit Domain.t list;
  mutable s_submitted : int;
  mutable s_rejected : int;
  mutable s_completed : int;
  mutable s_failed : int;
  mutable s_timed_out : int;
  mutable s_max_depth : int;
  mutable s_wait : float;
}

type 'a state =
  | Waiting
  | Resolved of 'a outcome

type 'a ticket = {
  tk_mutex : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_state : 'a state;
  tk_deadline : float option; (* absolute, seconds *)
  tk_sched : t;
}

let c_completed = Obs.counter "server.jobs_completed"
let c_failed = Obs.counter "server.jobs_failed"
let c_timed_out = Obs.counter "server.jobs_timed_out"
let c_rejected = Obs.counter "server.jobs_rejected"
let c_wait_us = Obs.counter "server.queue_wait_us"

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* First resolution wins; returns whether this call was it. *)
let resolve ticket outcome =
  locked ticket.tk_mutex (fun () ->
      match ticket.tk_state with
      | Resolved _ -> false
      | Waiting ->
        ticket.tk_state <- Resolved outcome;
        Condition.broadcast ticket.tk_cond;
        true)

let expired ticket now =
  match ticket.tk_deadline with Some d -> now >= d | None -> false

(* Runs on a worker domain, outside any lock. *)
let run_job t ticket f =
  if expired ticket (Unix.gettimeofday ()) then begin
    if resolve ticket Timed_out then begin
      locked t.mutex (fun () -> t.s_timed_out <- t.s_timed_out + 1);
      Obs.incr c_timed_out
    end
  end
  else begin
    match Obs.with_span ~cat:"server" "job.exec" f with
    | v ->
      if resolve ticket (Done v) then begin
        locked t.mutex (fun () -> t.s_completed <- t.s_completed + 1);
        Obs.incr c_completed
      end
    | exception e ->
      if resolve ticket (Failed (Printexc.to_string e)) then begin
        locked t.mutex (fun () -> t.s_failed <- t.s_failed + 1);
        Obs.incr c_failed
      end
  end

let rec worker t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && t.accepting do
    Condition.wait t.not_empty t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* drained: exit *)
  else begin
    let enqueued_at, thunk = Queue.pop t.queue in
    let wait = Unix.gettimeofday () -. enqueued_at in
    t.s_wait <- t.s_wait +. wait;
    Mutex.unlock t.mutex;
    Obs.add c_wait_us (int_of_float (1e6 *. wait));
    thunk ();
    worker t
  end

let create ?(queue_capacity = 64) ~workers () =
  let t =
    { mutex = Mutex.create (); not_empty = Condition.create ();
      queue = Queue.create (); capacity = max 1 queue_capacity;
      accepting = true; domains = []; s_submitted = 0; s_rejected = 0;
      s_completed = 0; s_failed = 0; s_timed_out = 0; s_max_depth = 0;
      s_wait = 0. }
  in
  t.domains <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t ?deadline_s f =
  let now = Unix.gettimeofday () in
  locked t.mutex (fun () ->
      if not t.accepting then begin
        t.s_rejected <- t.s_rejected + 1;
        Obs.incr c_rejected;
        Error `Shutting_down
      end
      else if Queue.length t.queue >= t.capacity then begin
        t.s_rejected <- t.s_rejected + 1;
        Obs.incr c_rejected;
        Error `Queue_full
      end
      else begin
        let ticket =
          { tk_mutex = Mutex.create (); tk_cond = Condition.create ();
            tk_state = Waiting;
            tk_deadline = Option.map (fun d -> now +. d) deadline_s;
            tk_sched = t }
        in
        Queue.push (now, (fun () -> run_job t ticket f)) t.queue;
        t.s_submitted <- t.s_submitted + 1;
        t.s_max_depth <- max t.s_max_depth (Queue.length t.queue);
        Condition.signal t.not_empty;
        Ok ticket
      end)

let await ticket =
  let deadline_hit = ref false in
  let outcome =
    locked ticket.tk_mutex (fun () ->
        let rec wait () =
          match ticket.tk_state with
          | Resolved o -> o
          | Waiting -> (
            match ticket.tk_deadline with
            | None ->
              Condition.wait ticket.tk_cond ticket.tk_mutex;
              wait ()
            | Some d ->
              let now = Unix.gettimeofday () in
              if now >= d then begin
                (* we are the resolver: the worker's eventual result
                   will lose the race and be discarded *)
                ticket.tk_state <- Resolved Timed_out;
                Condition.broadcast ticket.tk_cond;
                deadline_hit := true;
                Timed_out
              end
              else begin
                (* no timed condition wait in the stdlib: poll at a
                   resolution far below any plausible deadline *)
                Mutex.unlock ticket.tk_mutex;
                Unix.sleepf (Float.min 0.002 (d -. now));
                Mutex.lock ticket.tk_mutex;
                wait ()
              end)
        in
        wait ())
  in
  if !deadline_hit then begin
    let t = ticket.tk_sched in
    locked t.mutex (fun () -> t.s_timed_out <- t.s_timed_out + 1);
    Obs.incr c_timed_out
  end;
  outcome

let queue_depth t = locked t.mutex (fun () -> Queue.length t.queue)

let shutdown t =
  let domains =
    locked t.mutex (fun () ->
        t.accepting <- false;
        Condition.broadcast t.not_empty;
        let d = t.domains in
        t.domains <- [];
        d)
  in
  List.iter Domain.join domains

let stats t =
  locked t.mutex (fun () ->
      { submitted = t.s_submitted; rejected = t.s_rejected;
        completed = t.s_completed; failed = t.s_failed;
        timed_out = t.s_timed_out; max_queue_depth = t.s_max_depth;
        total_wait_s = t.s_wait })

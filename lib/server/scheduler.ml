(* Quota-fair bounded scheduler over domain workers.

   Jobs are queued per client and drained by weighted round-robin: the
   rotation visits each backlogged client in turn and lets it dequeue up
   to [weight] jobs before yielding, so one client flooding the queue
   cannot starve the others (the head-of-line blocking the single FIFO
   had). Admission is bounded twice — globally ([queue_capacity], the
   overload shed) and per client ([quota] on in-flight jobs, the
   fairness shed).

   Locking discipline: [t.mutex] guards the client table, rotation,
   intake flag and aggregate counters; each ticket carries its own
   mutex/condvar for its resolution state. The two are never held at
   once (resolve first, then bump counters), so there is no lock
   ordering to get wrong.

   Timeouts and cancellation are cooperative by necessity — a running
   domain cannot be interrupted — so they are enforced at the points
   where they can be: the worker sheds expired or cancelled jobs at
   dequeue instead of starting them, the awaiter stops waiting at the
   deadline, and a late worker result loses the resolution race against
   the awaiter's [Timed_out] (first resolution wins, later ones are
   dropped). Job thunks that want mid-flight cancellation poll the same
   [cancelled] closure between their own phases. *)

module Obs = Fsc_obs.Obs

type 'a outcome =
  | Done of 'a
  | Failed of string
  | Timed_out
  | Cancelled

type reject =
  [ `Queue_full
  | `Quota_exceeded
  | `Shutting_down ]

type client_stats = {
  c_id : string;
  c_weight : int;
  c_quota : int option;
  c_inflight : int;
  c_queued : int;
  c_submitted : int;
  c_completed : int;
  c_rejected : int;
  c_shed : int;
}

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  shed : int;
  max_queue_depth : int;
  total_wait_s : float;
  clients : client_stats list;
}

type client = {
  cl_id : string;
  mutable cl_weight : int;
  mutable cl_quota : int option; (* max in-flight (queued + running) *)
  mutable cl_inflight : int;
  cl_queue : (float * (unit -> unit)) Queue.t; (* enqueue time, thunk *)
  mutable cl_credit : int;
  mutable cl_in_rotation : bool;
  mutable cl_submitted : int;
  mutable cl_completed : int;
  mutable cl_rejected : int;
  mutable cl_shed : int; (* expired-at-dequeue + cancelled *)
}

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  clients : (string, client) Hashtbl.t;
  rotation : client Queue.t; (* backlogged clients, round-robin order *)
  capacity : int;
  default_quota : int option;
  mutable total_queued : int;
  mutable accepting : bool;
  mutable domains : unit Domain.t list;
  mutable s_submitted : int;
  mutable s_rejected : int;
  mutable s_completed : int;
  mutable s_failed : int;
  mutable s_timed_out : int;
  mutable s_cancelled : int;
  mutable s_shed : int;
  mutable s_max_depth : int;
  mutable s_wait : float;
}

type 'a state =
  | Waiting
  | Resolved of 'a outcome

type 'a ticket = {
  tk_mutex : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_state : 'a state;
  tk_deadline : float option; (* absolute, seconds *)
  tk_cancelled : (unit -> bool) option;
  tk_client : client;
  tk_sched : t;
}

let c_completed = Obs.counter "server.jobs_completed"
let c_failed = Obs.counter "server.jobs_failed"
let c_timed_out = Obs.counter "server.jobs_timed_out"
let c_rejected = Obs.counter "server.jobs_rejected"
let c_cancelled = Obs.counter "server.jobs_cancelled"
let c_shed = Obs.counter "server.jobs_shed"
let c_wait_us = Obs.counter "server.queue_wait_us"

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let default_client_id = "_default"

(* t.mutex held *)
let get_client t id =
  match Hashtbl.find_opt t.clients id with
  | Some c -> c
  | None ->
    let c =
      { cl_id = id; cl_weight = 1; cl_quota = t.default_quota;
        cl_inflight = 0; cl_queue = Queue.create (); cl_credit = 1;
        cl_in_rotation = false; cl_submitted = 0; cl_completed = 0;
        cl_rejected = 0; cl_shed = 0 }
    in
    Hashtbl.add t.clients id c;
    c

let configure_client t ~id ?weight ?quota () =
  locked t.mutex (fun () ->
      let c = get_client t id in
      Option.iter (fun w -> c.cl_weight <- max 1 w) weight;
      Option.iter (fun q -> c.cl_quota <- if q <= 0 then None else Some q) quota)

(* First resolution wins; returns whether this call was it. *)
let resolve ticket outcome =
  locked ticket.tk_mutex (fun () ->
      match ticket.tk_state with
      | Resolved _ -> false
      | Waiting ->
        ticket.tk_state <- Resolved outcome;
        Condition.broadcast ticket.tk_cond;
        true)

let already_resolved ticket =
  locked ticket.tk_mutex (fun () ->
      match ticket.tk_state with Resolved _ -> true | Waiting -> false)

let expired ticket now =
  match ticket.tk_deadline with Some d -> now >= d | None -> false

let is_cancelled ticket =
  match ticket.tk_cancelled with Some f -> f () | None -> false

(* Account the winning resolution. [~shed] marks outcomes decided at
   dequeue (the worker dropped the job unrun). Called without any lock
   held. *)
let account t ticket outcome ~shed =
  let c = ticket.tk_client in
  locked t.mutex (fun () ->
      c.cl_inflight <- c.cl_inflight - 1;
      if shed then begin
        t.s_shed <- t.s_shed + 1;
        c.cl_shed <- c.cl_shed + 1
      end;
      match outcome with
      | Done _ ->
        t.s_completed <- t.s_completed + 1;
        c.cl_completed <- c.cl_completed + 1
      | Failed _ -> t.s_failed <- t.s_failed + 1
      | Timed_out -> t.s_timed_out <- t.s_timed_out + 1
      | Cancelled -> t.s_cancelled <- t.s_cancelled + 1);
  if shed then Obs.incr c_shed;
  match outcome with
  | Done _ -> Obs.incr c_completed
  | Failed _ -> Obs.incr c_failed
  | Timed_out -> Obs.incr c_timed_out
  | Cancelled -> Obs.incr c_cancelled

(* Runs on a worker domain, outside any lock. *)
let run_job t ticket f =
  if already_resolved ticket then ()
    (* the awaiter timed it out while queued; already accounted *)
  else if is_cancelled ticket then begin
    if resolve ticket Cancelled then account t ticket Cancelled ~shed:true
  end
  else if expired ticket (Unix.gettimeofday ()) then begin
    if resolve ticket Timed_out then account t ticket Timed_out ~shed:true
  end
  else begin
    match Obs.with_span ~cat:"server" "job.exec" f with
    | v ->
      if resolve ticket (Done v) then account t ticket (Done v) ~shed:false
    | exception e ->
      let o = Failed (Printexc.to_string e) in
      if resolve ticket o then account t ticket o ~shed:false
  end

(* t.mutex held; t.total_queued > 0. Weighted round-robin: the client
   at the head of the rotation dequeues until its credit (= weight) is
   spent or its queue empties, then moves to the back with fresh
   credit. *)
let rec take_next t =
  let c = Queue.peek t.rotation in
  if Queue.is_empty c.cl_queue then begin
    ignore (Queue.pop t.rotation);
    c.cl_in_rotation <- false;
    take_next t
  end
  else begin
    let job = Queue.pop c.cl_queue in
    t.total_queued <- t.total_queued - 1;
    c.cl_credit <- c.cl_credit - 1;
    if c.cl_credit <= 0 || Queue.is_empty c.cl_queue then begin
      ignore (Queue.pop t.rotation);
      c.cl_credit <- c.cl_weight;
      if Queue.is_empty c.cl_queue then c.cl_in_rotation <- false
      else Queue.push c t.rotation
    end;
    job
  end

let rec worker t =
  Mutex.lock t.mutex;
  while t.total_queued = 0 && t.accepting do
    Condition.wait t.not_empty t.mutex
  done;
  if t.total_queued = 0 then Mutex.unlock t.mutex (* drained: exit *)
  else begin
    let enqueued_at, thunk = take_next t in
    let wait = Unix.gettimeofday () -. enqueued_at in
    t.s_wait <- t.s_wait +. wait;
    Mutex.unlock t.mutex;
    Obs.add c_wait_us (int_of_float (1e6 *. wait));
    thunk ();
    worker t
  end

let create ?(queue_capacity = 64) ?default_quota ~workers () =
  let t =
    { mutex = Mutex.create (); not_empty = Condition.create ();
      clients = Hashtbl.create 16; rotation = Queue.create ();
      capacity = max 1 queue_capacity;
      default_quota =
        Option.bind default_quota (fun q -> if q <= 0 then None else Some q);
      total_queued = 0; accepting = true; domains = []; s_submitted = 0;
      s_rejected = 0; s_completed = 0; s_failed = 0; s_timed_out = 0;
      s_cancelled = 0; s_shed = 0; s_max_depth = 0; s_wait = 0. }
  in
  t.domains <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t ?client ?cancelled ?deadline_s f =
  let now = Unix.gettimeofday () in
  let id = Option.value client ~default:default_client_id in
  locked t.mutex (fun () ->
      let c = get_client t id in
      let reject r =
        t.s_rejected <- t.s_rejected + 1;
        c.cl_rejected <- c.cl_rejected + 1;
        Obs.incr c_rejected;
        Error r
      in
      if not t.accepting then reject `Shutting_down
      else if t.total_queued >= t.capacity then reject `Queue_full
      else if
        match c.cl_quota with Some q -> c.cl_inflight >= q | None -> false
      then reject `Quota_exceeded
      else begin
        let ticket =
          { tk_mutex = Mutex.create (); tk_cond = Condition.create ();
            tk_state = Waiting;
            tk_deadline = Option.map (fun d -> now +. d) deadline_s;
            tk_cancelled = cancelled; tk_client = c; tk_sched = t }
        in
        Queue.push (now, fun () -> run_job t ticket f) c.cl_queue;
        if not c.cl_in_rotation then begin
          c.cl_credit <- c.cl_weight;
          c.cl_in_rotation <- true;
          Queue.push c t.rotation
        end;
        t.total_queued <- t.total_queued + 1;
        c.cl_inflight <- c.cl_inflight + 1;
        t.s_submitted <- t.s_submitted + 1;
        c.cl_submitted <- c.cl_submitted + 1;
        t.s_max_depth <- max t.s_max_depth t.total_queued;
        Condition.signal t.not_empty;
        Ok ticket
      end)

let await ticket =
  let deadline_hit = ref false in
  let outcome =
    locked ticket.tk_mutex (fun () ->
        let rec wait () =
          match ticket.tk_state with
          | Resolved o -> o
          | Waiting -> (
            match ticket.tk_deadline with
            | None ->
              Condition.wait ticket.tk_cond ticket.tk_mutex;
              wait ()
            | Some d ->
              let now = Unix.gettimeofday () in
              if now >= d then begin
                (* we are the resolver: the worker's eventual result
                   will lose the race and be discarded *)
                ticket.tk_state <- Resolved Timed_out;
                Condition.broadcast ticket.tk_cond;
                deadline_hit := true;
                Timed_out
              end
              else begin
                (* no timed condition wait in the stdlib: poll at a
                   resolution far below any plausible deadline *)
                Mutex.unlock ticket.tk_mutex;
                Unix.sleepf (Float.min 0.002 (d -. now));
                Mutex.lock ticket.tk_mutex;
                wait ()
              end)
        in
        wait ())
  in
  if !deadline_hit then
    account ticket.tk_sched ticket Timed_out ~shed:false;
  outcome

let queue_depth t = locked t.mutex (fun () -> t.total_queued)

let shutdown t =
  let domains =
    locked t.mutex (fun () ->
        t.accepting <- false;
        Condition.broadcast t.not_empty;
        let d = t.domains in
        t.domains <- [];
        d)
  in
  List.iter Domain.join domains

let stats t =
  locked t.mutex (fun () ->
      let clients =
        Hashtbl.fold
          (fun _ c acc ->
            { c_id = c.cl_id; c_weight = c.cl_weight; c_quota = c.cl_quota;
              c_inflight = c.cl_inflight;
              c_queued = Queue.length c.cl_queue;
              c_submitted = c.cl_submitted; c_completed = c.cl_completed;
              c_rejected = c.cl_rejected; c_shed = c.cl_shed }
            :: acc)
          t.clients []
        |> List.sort (fun a b -> String.compare a.c_id b.c_id)
      in
      { submitted = t.s_submitted; rejected = t.s_rejected;
        completed = t.s_completed; failed = t.s_failed;
        timed_out = t.s_timed_out; cancelled = t.s_cancelled;
        shed = t.s_shed; max_queue_depth = t.s_max_depth;
        total_wait_s = t.s_wait; clients })

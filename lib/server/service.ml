(* The JSONL job protocol. [run_batch] and [serve] are thin transports
   over the same core: parse_job -> Scheduler.submit -> execute ->
   result_to_line, with results emitted in input order so identical
   inputs give identical outputs whatever the completion order. *)

module J = Fsc_obs.Obs.Json
module P = Fsc_driver.Pipeline
module CC = Fsc_driver.Compile_cache
module Interp = Fsc_rt.Interp
module Rt = Fsc_rt.Memref_rt

type action =
  | Compile
  | Run

type job = {
  j_id : int;
  j_src : [ `Path of string | `Inline of string ];
  j_target : P.target;
  j_action : action;
}

type status =
  | Ok_
  | Error_ of string
  | Timeout

type result_rec = {
  r_id : int;
  r_label : string;
  r_target : string;
  r_action : string;
  r_status : status;
  r_cache : [ `Hit | `Miss | `Off ];
  r_compile_ms : float;
  r_run_ms : float;
  r_kernels : int;
  r_checksums : (string * float) list;
}

(* ---------------- job parsing ---------------- *)

let ( let* ) = Result.bind

let target_of_name = function
  | "serial" -> Ok P.Serial
  | "openmp" -> Ok (P.Openmp (Fsc_rt.Domain_pool.recommended_size ()))
  | "gpu-initial" -> Ok (P.Gpu P.Gpu_initial)
  | "gpu" | "gpu-optimised" | "gpu-optimized" -> Ok (P.Gpu P.Gpu_optimised)
  | "dist" -> Ok (P.Dist 4)
  | s -> Error ("unknown target " ^ s)

(* An explicit thread count overrides the openmp default sizing;
   combining it with a non-OpenMP target is an error instead of being
   silently ignored. With no target at all, threads imply openmp. *)
let resolve_target target threads =
  match (target, threads) with
  | _, Some n when n < 1 ->
    Error (Printf.sprintf "threads must be >= 1 (got %d)" n)
  | None, None -> Ok P.Serial
  | None, Some n -> Ok (P.Openmp n)
  | Some (P.Openmp _), Some n -> Ok (P.Openmp n)
  | Some ((P.Serial | P.Gpu _ | P.Dist _) as t), Some _ ->
    Error
      (Printf.sprintf "threads only apply to the openmp target (target is %s)"
         (P.target_name t))
  | Some t, None -> Ok t

let str_field name json =
  match J.member name json with
  | Some (J.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Ok None

let int_field name json =
  match J.member name json with
  | Some (J.Num f) -> Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)
  | None -> Ok None

let parse_job ~index line =
  match J.of_string line with
  | exception J.Parse_error e -> Error ("bad job JSON: " ^ e)
  | json ->
    let* src = str_field "src" json in
    let* source = str_field "source" json in
    let* target = str_field "target" json in
    let* threads = int_field "threads" json in
    let* action = str_field "action" json in
    let* id = int_field "id" json in
    let* j_src =
      match (src, source) with
      | Some p, None -> Ok (`Path p)
      | None, Some s -> Ok (`Inline s)
      | Some _, Some _ -> Error "give \"src\" or \"source\", not both"
      | None, None -> Error "missing \"src\" (or inline \"source\")"
    in
    let* j_action =
      match action with
      | None | Some "run" -> Ok Run
      | Some "compile" -> Ok Compile
      | Some "shutdown" -> Error "\"shutdown\" is a control line, not a job"
      | Some a -> Error ("unknown action " ^ a)
    in
    let* target =
      match target with
      | None -> Ok None
      | Some name ->
        let* t = target_of_name name in
        Ok (Some t)
    in
    let* j_target = resolve_target target threads in
    Ok { j_id = Option.value id ~default:index; j_src; j_target; j_action }

let is_shutdown line =
  match J.of_string line with
  | exception J.Parse_error _ -> false
  | json -> (
    match J.member "action" json with
    | Some (J.Str "shutdown") -> true
    | _ -> false)

(* ---------------- execution ---------------- *)

let action_name = function Compile -> "compile" | Run -> "run"

let blank_result ~id ~label ~target ~action =
  { r_id = id; r_label = label; r_target = target; r_action = action;
    r_status = Ok_; r_cache = `Off; r_compile_ms = 0.; r_run_ms = 0.;
    r_kernels = 0; r_checksums = [] }

let job_result job =
  blank_result ~id:job.j_id
    ~label:(match job.j_src with `Path p -> p | `Inline _ -> "<inline>")
    ~target:(P.target_name job.j_target)
    ~action:(action_name job.j_action)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let execute ?cache job =
  let base = job_result job in
  try
    let source =
      match job.j_src with `Inline s -> s | `Path p -> read_file p
    in
    let options = P.default_options ~target:job.j_target () in
    let t0 = Unix.gettimeofday () in
    let ca, outcome = CC.compile ?cache options source in
    let compile_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
    let base =
      { base with r_cache = outcome; r_compile_ms = compile_ms;
        r_kernels = ca.P.ca_stats.P.st_kernels }
    in
    match job.j_action with
    | Compile -> base
    | Run ->
      let t1 = Unix.gettimeofday () in
      let a = P.link ca in
      let checksums =
        Fun.protect
          ~finally:(fun () -> P.shutdown a)
          (fun () ->
            P.run a;
            a.P.a_ctx.Interp.named_buffers
            |> List.map (fun (name, buf) -> (name, Rt.checksum buf))
            |> List.sort (fun (a, _) (b, _) -> String.compare a b))
      in
      { base with r_run_ms = 1e3 *. (Unix.gettimeofday () -. t1);
        r_kernels = List.length a.P.a_kernels; r_checksums = checksums }
  with e -> { base with r_status = Error_ (Printexc.to_string e) }

(* ---------------- result lines ---------------- *)

let result_to_line r =
  let status, error =
    match r.r_status with
    | Ok_ -> ("ok", [])
    | Timeout -> ("timeout", [])
    | Error_ msg -> ("error", [ ("error", J.Str msg) ])
  in
  let cache =
    match r.r_cache with `Hit -> "hit" | `Miss -> "miss" | `Off -> "off"
  in
  J.to_string
    (J.Obj
       ([ ("id", J.Num (float_of_int r.r_id));
          ("src", J.Str r.r_label);
          ("action", J.Str r.r_action);
          ("target", J.Str r.r_target);
          ("status", J.Str status);
          ("cache", J.Str cache);
          ("compile_ms", J.Num r.r_compile_ms);
          ("run_ms", J.Num r.r_run_ms);
          ("kernels", J.Num (float_of_int r.r_kernels));
          ("checksums",
           (* full-precision strings: equal grids -> byte-equal output *)
           J.Obj
             (List.map
                (fun (name, v) -> (name, J.Str (Printf.sprintf "%.17g" v)))
                r.r_checksums)) ]
       @ error))

let parse_error_result ~index msg =
  { (blank_result ~id:index ~label:"<parse>" ~target:"" ~action:"") with
    r_status = Error_ msg }

(* ---------------- transports ---------------- *)

type slot =
  | Immediate of result_rec
  | Pending of job * result_rec Scheduler.ticket

let await_slot = function
  | Immediate r -> r
  | Pending (job, ticket) -> (
    match Scheduler.await ticket with
    | Scheduler.Done r -> r
    | Scheduler.Failed msg -> { (job_result job) with r_status = Error_ msg }
    | Scheduler.Timed_out -> { (job_result job) with r_status = Timeout })

(* Submit one parsed line; [on_full] decides the backpressure policy
   (batch retries, serve reports the rejection to the client). *)
let submit_line ?cache ?deadline_s ~on_full sched ~index line =
  match parse_job ~index line with
  | Error msg -> Immediate (parse_error_result ~index msg)
  | Ok job -> (
    let rec go () =
      match Scheduler.submit sched ?deadline_s (fun () -> execute ?cache job) with
      | Ok ticket -> Pending (job, ticket)
      | Error `Shutting_down ->
        Immediate
          { (job_result job) with
            r_status = Error_ "rejected: scheduler shutting down" }
      | Error `Queue_full -> (
        match on_full with
        | `Retry ->
          Unix.sleepf 0.002;
          go ()
        | `Reject ->
          Immediate
            { (job_result job) with
              r_status = Error_ "rejected: queue full" })
    in
    go ())

let default_workers () = Fsc_rt.Domain_pool.recommended_size ()

let run_batch ?cache ?workers ?(queue_capacity = 64) ?deadline_s lines =
  let workers = match workers with Some n -> n | None -> default_workers () in
  (* dialect registration touches shared tables: do it once, serially,
     before any worker domain can race into it *)
  Fsc_dialects.Registry.init ();
  let sched = Scheduler.create ~queue_capacity ~workers () in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      lines
      |> List.mapi (fun index line ->
             submit_line ?cache ?deadline_s ~on_full:`Retry sched ~index line)
      |> List.map (fun slot -> result_to_line (await_slot slot)))

(* ---- socket server ---- *)

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* One client connection: read job lines to EOF (or a shutdown line),
   answer in input order. Returns whether shutdown was requested. *)
let handle_connection ?cache ?deadline_s sched client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let rec read_jobs index acc =
    match input_line ic with
    | exception End_of_file -> (List.rev acc, false)
    | line when String.trim line = "" -> read_jobs index acc
    | line when is_shutdown line -> (List.rev acc, true)
    | line ->
      let slot =
        submit_line ?cache ?deadline_s ~on_full:`Reject sched ~index line
      in
      read_jobs (index + 1) (slot :: acc)
  in
  let slots, shutdown_requested = read_jobs 0 [] in
  List.iter
    (fun slot ->
      output_string oc (result_to_line (await_slot slot));
      output_char oc '\n')
    slots;
  if shutdown_requested then
    output_string oc "{\"status\": \"shutting-down\"}\n";
  flush oc;
  shutdown_requested

let serve ?cache ?workers ?(queue_capacity = 64) ?deadline_s ~socket () =
  let workers = match workers with Some n -> n | None -> default_workers () in
  Fsc_dialects.Registry.init ();
  let sched = Scheduler.create ~queue_capacity ~workers () in
  remove_if_exists socket;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      remove_if_exists socket;
      Scheduler.shutdown sched)
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 16;
      let stop = ref false in
      while not !stop do
        let client, _ = Unix.accept fd in
        let finished =
          match handle_connection ?cache ?deadline_s sched client with
          | v -> v
          | exception _ -> false (* client vanished: keep serving *)
        in
        (try Unix.close client with Unix.Unix_error _ -> ());
        if finished then stop := true
      done)

let request ~socket lines =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let oc = Unix.out_channel_of_descr fd in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines;
      flush oc;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let ic = Unix.in_channel_of_descr fd in
      let rec read acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> read (line :: acc)
      in
      read [])

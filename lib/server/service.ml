(* The JSONL job protocol. [run_batch] and [serve] are thin transports
   over the same core: parse_job -> Scheduler.submit -> execute ->
   result_to_line, with results emitted in input order so identical
   inputs give identical outputs whatever the completion order.

   [serve] multiplexes connections over a pool of handler domains that
   all accept on the same listening socket; the accept loop is guarded
   (EINTR and fd-exhaustion are survived, not fatal), and each
   connection carries a cancellation flag that sheds its remaining work
   once the client vanishes. *)

module J = Fsc_obs.Obs.Json
module Obs = Fsc_obs.Obs
module P = Fsc_driver.Pipeline
module CC = Fsc_driver.Compile_cache
module Cache = Fsc_cache.Cache
module Interp = Fsc_rt.Interp
module Rt = Fsc_rt.Memref_rt

type action =
  | Compile
  | Run

type job = {
  j_id : int;
  j_src : [ `Path of string | `Inline of string ];
  j_target : P.target;
  j_action : action;
  j_client : string option;
}

type status =
  | Ok_
  | Error_ of string
  | Timeout
  | Cancelled_
  | Rejected_ of string (* reason: overloaded | quota-exceeded | ... *)

type result_rec = {
  r_id : int;
  r_label : string;
  r_target : string;
  r_action : string;
  r_status : status;
  r_cache : [ `Hit | `Miss | `Off ];
  r_compile_ms : float;
  r_run_ms : float;
  r_kernels : int;
  r_checksums : (string * float) list;
}

(* ---------------- job parsing ---------------- *)

let ( let* ) = Result.bind

let target_of_name = function
  | "serial" -> Ok P.Serial
  | "openmp" -> Ok (P.Openmp (Fsc_rt.Domain_pool.recommended_size ()))
  | "gpu-initial" -> Ok (P.Gpu P.Gpu_initial)
  | "gpu" | "gpu-optimised" | "gpu-optimized" -> Ok (P.Gpu P.Gpu_optimised)
  | "dist" -> Ok (P.Dist 4)
  | s -> Error ("unknown target " ^ s)

(* An explicit thread count overrides the openmp default sizing;
   combining it with a non-OpenMP target is an error instead of being
   silently ignored. With no target at all, threads imply openmp. *)
let resolve_target target threads =
  match (target, threads) with
  | _, Some n when n < 1 ->
    Error (Printf.sprintf "threads must be >= 1 (got %d)" n)
  | None, None -> Ok P.Serial
  | None, Some n -> Ok (P.Openmp n)
  | Some (P.Openmp _), Some n -> Ok (P.Openmp n)
  | Some ((P.Serial | P.Gpu _ | P.Dist _) as t), Some _ ->
    Error
      (Printf.sprintf "threads only apply to the openmp target (target is %s)"
         (P.target_name t))
  | Some t, None -> Ok t

let str_field name json =
  match J.member name json with
  | Some (J.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Ok None

let int_field name json =
  match J.member name json with
  | Some (J.Num f) -> Ok (Some (int_of_float f))
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)
  | None -> Ok None

let parse_job ~index line =
  match J.of_string line with
  | exception J.Parse_error e -> Error ("bad job JSON: " ^ e)
  | json ->
    let* src = str_field "src" json in
    let* source = str_field "source" json in
    let* target = str_field "target" json in
    let* threads = int_field "threads" json in
    let* action = str_field "action" json in
    let* id = int_field "id" json in
    let* j_client = str_field "client" json in
    let* j_src =
      match (src, source) with
      | Some p, None -> Ok (`Path p)
      | None, Some s -> Ok (`Inline s)
      | Some _, Some _ -> Error "give \"src\" or \"source\", not both"
      | None, None -> Error "missing \"src\" (or inline \"source\")"
    in
    let* j_action =
      match action with
      | None | Some "run" -> Ok Run
      | Some "compile" -> Ok Compile
      | Some ("shutdown" | "metrics") ->
        Error
          (Printf.sprintf "%S is a control line, not a job"
             (Option.get action))
      | Some a -> Error ("unknown action " ^ a)
    in
    let* target =
      match target with
      | None -> Ok None
      | Some name ->
        let* t = target_of_name name in
        Ok (Some t)
    in
    let* j_target = resolve_target target threads in
    Ok
      { j_id = Option.value id ~default:index; j_src; j_target; j_action;
        j_client }

let control_action name line =
  match J.of_string line with
  | exception J.Parse_error _ -> false
  | json -> (
    match J.member "action" json with
    | Some (J.Str a) -> a = name
    | _ -> false)

let is_shutdown line = control_action "shutdown" line
let is_metrics line = control_action "metrics" line

(* ---------------- execution ---------------- *)

let action_name = function Compile -> "compile" | Run -> "run"

let blank_result ~id ~label ~target ~action =
  { r_id = id; r_label = label; r_target = target; r_action = action;
    r_status = Ok_; r_cache = `Off; r_compile_ms = 0.; r_run_ms = 0.;
    r_kernels = 0; r_checksums = [] }

let job_result job =
  blank_result ~id:job.j_id
    ~label:(match job.j_src with `Path p -> p | `Inline _ -> "<inline>")
    ~target:(P.target_name job.j_target)
    ~action:(action_name job.j_action)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let execute ?cache ?(should_cancel = fun () -> false) job =
  let base = job_result job in
  if should_cancel () then { base with r_status = Cancelled_ }
  else
    try
      let source =
        match job.j_src with `Inline s -> s | `Path p -> read_file p
      in
      let options = P.default_options ~target:job.j_target () in
      let t0 = Unix.gettimeofday () in
      let ca, outcome = CC.compile ?cache options source in
      let compile_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
      let base =
        { base with r_cache = outcome; r_compile_ms = compile_ms;
          r_kernels = ca.P.ca_stats.P.st_kernels }
      in
      match job.j_action with
      | Compile -> base
      | Run ->
        (* phase boundary: a cancelled client's job stops here instead
           of occupying a worker for the whole run *)
        if should_cancel () then { base with r_status = Cancelled_ }
        else begin
          let t1 = Unix.gettimeofday () in
          let a = P.link ca in
          let checksums =
            Fun.protect
              ~finally:(fun () -> P.shutdown a)
              (fun () ->
                P.run a;
                a.P.a_ctx.Interp.named_buffers
                |> List.map (fun (name, buf) -> (name, Rt.checksum buf))
                |> List.sort (fun (a, _) (b, _) -> String.compare a b))
          in
          { base with r_run_ms = 1e3 *. (Unix.gettimeofday () -. t1);
            r_kernels = List.length a.P.a_kernels; r_checksums = checksums }
        end
    with e -> { base with r_status = Error_ (Printexc.to_string e) }

(* ---------------- result lines ---------------- *)

let result_to_line r =
  let status, extra =
    match r.r_status with
    | Ok_ -> ("ok", [])
    | Timeout -> ("timeout", [])
    | Cancelled_ -> ("cancelled", [])
    | Rejected_ reason -> ("rejected", [ ("reason", J.Str reason) ])
    | Error_ msg -> ("error", [ ("error", J.Str msg) ])
  in
  let cache =
    match r.r_cache with `Hit -> "hit" | `Miss -> "miss" | `Off -> "off"
  in
  J.to_string
    (J.Obj
       ([ ("id", J.Num (float_of_int r.r_id));
          ("src", J.Str r.r_label);
          ("action", J.Str r.r_action);
          ("target", J.Str r.r_target);
          ("status", J.Str status);
          ("cache", J.Str cache);
          ("compile_ms", J.Num r.r_compile_ms);
          ("run_ms", J.Num r.r_run_ms);
          ("kernels", J.Num (float_of_int r.r_kernels));
          ("checksums",
           (* full-precision strings: equal grids -> byte-equal output *)
           J.Obj
             (List.map
                (fun (name, v) -> (name, J.Str (Printf.sprintf "%.17g" v)))
                r.r_checksums)) ]
       @ extra))

let parse_error_result ~index msg =
  { (blank_result ~id:index ~label:"<parse>" ~target:"" ~action:"") with
    r_status = Error_ msg }

(* ---------------- metrics ---------------- *)

let num n = J.Num (float_of_int n)

let metrics_json ?cache sched =
  let s = Scheduler.stats sched in
  let client c =
    ( c.Scheduler.c_id,
      J.Obj
        [ ("weight", num c.Scheduler.c_weight);
          ("quota",
           match c.Scheduler.c_quota with
           | None -> J.Null
           | Some q -> num q);
          ("inflight", num c.Scheduler.c_inflight);
          ("queued", num c.Scheduler.c_queued);
          ("submitted", num c.Scheduler.c_submitted);
          ("completed", num c.Scheduler.c_completed);
          ("rejected", num c.Scheduler.c_rejected);
          ("shed", num c.Scheduler.c_shed) ] )
  in
  let cache_json =
    match cache with
    | None -> J.Null
    | Some c ->
      let cs = Cache.stats c in
      J.Obj
        [ ("mem_hits", num cs.Cache.mem_hits);
          ("disk_hits", num cs.Cache.disk_hits);
          ("misses", num cs.Cache.misses);
          ("evictions", num cs.Cache.evictions);
          ("invalid", num cs.Cache.invalid);
          ("stores", num cs.Cache.stores);
          ("store_failures", num cs.Cache.store_failures);
          ("disk_bytes", num (Cache.disk_bytes c));
          ("disk_evictions", num cs.Cache.disk_evictions) ]
  in
  J.Obj
    [ ("type", J.Str "metrics");
      ("queue_depth", num (Scheduler.queue_depth sched));
      ("scheduler",
       J.Obj
         [ ("submitted", num s.Scheduler.submitted);
           ("rejected", num s.Scheduler.rejected);
           ("completed", num s.Scheduler.completed);
           ("failed", num s.Scheduler.failed);
           ("timed_out", num s.Scheduler.timed_out);
           ("cancelled", num s.Scheduler.cancelled);
           ("shed", num s.Scheduler.shed);
           ("max_queue_depth", num s.Scheduler.max_queue_depth);
           ("total_wait_ms", J.Num (1e3 *. s.Scheduler.total_wait_s)) ]);
      ("clients", J.Obj (List.map client s.Scheduler.clients));
      ("cache", cache_json);
      ("counters",
       J.Obj
         (List.map (fun (n, v) -> (n, num v)) (Obs.counter_totals ()))) ]

(* ---------------- transports ---------------- *)

type slot =
  | Immediate of result_rec
  | Pending of job * result_rec Scheduler.ticket
  | Raw of string (* pre-rendered response line (metrics) *)

let await_slot = function
  | Raw _ -> invalid_arg "await_slot: raw slot"
  | Immediate r -> r
  | Pending (job, ticket) -> (
    match Scheduler.await ticket with
    | Scheduler.Done r -> r
    | Scheduler.Failed msg -> { (job_result job) with r_status = Error_ msg }
    | Scheduler.Timed_out -> { (job_result job) with r_status = Timeout }
    | Scheduler.Cancelled -> { (job_result job) with r_status = Cancelled_ })

let slot_line slot =
  match slot with Raw s -> s | _ -> result_to_line (await_slot slot)

(* Submit one parsed line; [on_full] decides the backpressure policy:
   [`Retry_within budget] retries for at most [budget] seconds before
   shedding (batch), [`Reject] sheds immediately (serve). Either way a
   shed job comes back as a typed [rejected: overloaded] result rather
   than spinning forever. *)
let submit_line ?cache ?deadline_s ?cancelled ?default_client ~on_full sched
    ~index line =
  match parse_job ~index line with
  | Error msg -> Immediate (parse_error_result ~index msg)
  | Ok job -> (
    let client =
      match job.j_client with Some c -> Some c | None -> default_client
    in
    let should_cancel =
      match cancelled with Some f -> f | None -> fun () -> false
    in
    let started = Unix.gettimeofday () in
    let rec go () =
      match
        Scheduler.submit sched ?client ?cancelled ?deadline_s (fun () ->
            execute ?cache ~should_cancel job)
      with
      | Ok ticket -> Pending (job, ticket)
      | Error `Shutting_down ->
        Immediate { (job_result job) with r_status = Rejected_ "shutting-down" }
      | Error `Quota_exceeded ->
        Immediate
          { (job_result job) with r_status = Rejected_ "quota-exceeded" }
      | Error `Queue_full -> (
        match on_full with
        | `Reject ->
          Immediate { (job_result job) with r_status = Rejected_ "overloaded" }
        | `Retry_within budget ->
          if Unix.gettimeofday () -. started >= budget then
            Immediate
              { (job_result job) with r_status = Rejected_ "overloaded" }
          else begin
            Unix.sleepf 0.002;
            go ()
          end)
    in
    go ())

let default_workers () = Fsc_rt.Domain_pool.recommended_size ()

let run_batch ?cache ?workers ?(queue_capacity = 64) ?deadline_s
    ?(overload_budget_s = 30.) lines =
  let workers = match workers with Some n -> n | None -> default_workers () in
  (* dialect registration touches shared tables: do it once, serially,
     before any worker domain can race into it *)
  Fsc_dialects.Registry.init ();
  let sched = Scheduler.create ~queue_capacity ~workers () in
  Fun.protect
    ~finally:(fun () -> Scheduler.shutdown sched)
    (fun () ->
      lines
      |> List.mapi (fun index line ->
             submit_line ?cache ?deadline_s
               ~on_full:(`Retry_within overload_budget_s) sched ~index line)
      |> List.map slot_line)

(* ---- socket server ---- *)

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* One client connection: read job lines to EOF (or a shutdown line),
   answer in input order. Returns whether shutdown was requested.

   The connection owns a cancellation flag. It flips when the client
   stops being readable/writable (reset, stalled past the idle timeout,
   or gone when we try to reply); queued jobs are then shed at dequeue
   and running jobs stop at their next phase boundary, so a vanished
   client's work is dropped instead of riding a worker to completion. *)
let handle_connection ?cache ?deadline_s ?idle_timeout_s ~client_id sched
    client =
  Option.iter
    (fun s -> if s > 0. then Unix.setsockopt_float client Unix.SO_RCVTIMEO s)
    idle_timeout_s;
  let cancelled = Atomic.make false in
  let should_cancel () = Atomic.get cancelled in
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let rec read_jobs index acc =
    match input_line ic with
    | exception End_of_file -> (List.rev acc, false)
    | exception Unix.Unix_error _ ->
      (* stalled past the idle timeout, or reset mid-line: drop its work *)
      Atomic.set cancelled true;
      (List.rev acc, false)
    | line when String.trim line = "" -> read_jobs index acc
    | line when is_shutdown line -> (List.rev acc, true)
    | line when is_metrics line ->
      let reply = Raw (J.to_string (metrics_json ?cache sched)) in
      read_jobs (index + 1) (reply :: acc)
    | line ->
      let slot =
        submit_line ?cache ?deadline_s ~cancelled:should_cancel
          ~default_client:client_id ~on_full:`Reject sched ~index line
      in
      read_jobs (index + 1) (slot :: acc)
  in
  let slots, shutdown_requested = read_jobs 0 [] in
  (try
     List.iter
       (fun slot ->
         if not (should_cancel ()) then begin
           output_string oc (slot_line slot);
           output_char oc '\n';
           (* per-line flush so a vanished client surfaces as EPIPE on
              the next result, not after all of them are computed *)
           flush oc
         end)
       slots
   with Sys_error _ | Unix.Unix_error _ -> Atomic.set cancelled true);
  if shutdown_requested && not (should_cancel ()) then (
    try
      output_string oc "{\"status\": \"shutting-down\"}\n";
      flush oc
    with Sys_error _ | Unix.Unix_error _ -> ());
  shutdown_requested

let default_handlers = 4

let serve ?cache ?workers ?(queue_capacity = 64) ?deadline_s ?handlers
    ?default_quota ?(client_weights = []) ?idle_timeout_s ~socket () =
  let workers = match workers with Some n -> n | None -> default_workers () in
  let handlers =
    match handlers with Some n -> max 1 n | None -> default_handlers
  in
  (* a client that disconnects mid-reply must surface as EPIPE on the
     write, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Fsc_dialects.Registry.init ();
  (* live counters for the metrics request without unbounded span
     accumulation in a long-running process *)
  Obs.set_counters_only true;
  Option.iter (fun c -> ignore (Cache.sweep c)) cache;
  let sched = Scheduler.create ~queue_capacity ?default_quota ~workers () in
  List.iter
    (fun (id, weight) -> Scheduler.configure_client sched ~id ~weight ())
    client_weights;
  remove_if_exists socket;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stop = Atomic.make false in
  let conn_seq = Atomic.make 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      remove_if_exists socket;
      Scheduler.shutdown sched)
    (fun () ->
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 64;
      (* one dummy connection per handler: unblocks every accept so the
         pool can observe [stop] and exit *)
      let wake_accepts () =
        for _ = 1 to handlers do
          let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect c (Unix.ADDR_UNIX socket)
           with Unix.Unix_error _ -> ());
          try Unix.close c with Unix.Unix_error _ -> ()
        done
      in
      let rec accept_loop () =
        if not (Atomic.get stop) then
          match Unix.accept fd with
          | client, _ ->
            let finished =
              if Atomic.get stop then false
              else begin
                let n = Atomic.fetch_and_add conn_seq 1 in
                match
                  handle_connection ?cache ?deadline_s ?idle_timeout_s
                    ~client_id:(Printf.sprintf "conn-%d" n) sched client
                with
                | v -> v
                | exception _ -> false (* client vanished: keep serving *)
              end
            in
            (try Unix.close client with Unix.Unix_error _ -> ());
            if finished then begin
              Atomic.set stop true;
              wake_accepts ()
            end;
            accept_loop ()
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                 | Unix.EWOULDBLOCK), _, _) ->
            accept_loop ()
          | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE) as e, _, _)
            ->
            (* fd exhaustion is transient: existing connections drain and
               release descriptors; back off instead of dying *)
            Printf.eprintf "sfc serve: accept: %s; backing off\n%!"
              (Unix.error_message e);
            Unix.sleepf 0.05;
            accept_loop ()
          | exception Unix.Unix_error (e, _, _) ->
            if not (Atomic.get stop) then begin
              Printf.eprintf "sfc serve: accept: %s; retrying\n%!"
                (Unix.error_message e);
              Unix.sleepf 0.05;
              accept_loop ()
            end
      in
      let pool = List.init handlers (fun _ -> Domain.spawn accept_loop) in
      List.iter Domain.join pool)

let request ~socket lines =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let oc = Unix.out_channel_of_descr fd in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        lines;
      flush oc;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let ic = Unix.in_channel_of_descr fd in
      let rec read acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> read (line :: acc)
      in
      read [])

(** Concurrent job scheduler: a bounded submission queue drained by a
    fixed pool of domain workers — the request-multiplexing layer under
    [sfc batch] and [sfc serve].

    Contract highlights:

    - {b backpressure}: {!submit} never blocks; a full queue yields
      [Error `Queue_full] immediately and the caller decides whether to
      retry, shed or report;
    - {b deadlines}: a job past its deadline resolves to {!Timed_out} —
      whether it is still queued (the worker discards it unrun) or
      executing (the awaiter stops waiting; the worker's eventual result
      is discarded, since a running domain cannot be interrupted);
    - {b shutdown drains}: {!shutdown} stops intake, lets the workers
      finish every queued job, then joins them — submitted work is never
      silently dropped.

    Every job execution is recorded as an obs span ([cat:"server"]) and
    the scheduler keeps aggregate counters (see {!stats}). *)

type t

type 'a outcome =
  | Done of 'a
  | Failed of string  (** the job raised; carries [Printexc.to_string] *)
  | Timed_out  (** deadline exceeded while queued or running *)

(** A handle on one submitted job. *)
type 'a ticket

type reject =
  [ `Queue_full  (** backpressure: capacity reached *)
  | `Shutting_down  (** submitted after {!shutdown} began *) ]

(** [create ~workers ()] spawns [workers] domains; [queue_capacity]
    bounds the submission queue (default 64). *)
val create : ?queue_capacity:int -> workers:int -> unit -> t

(** Enqueue a job; [deadline_s] is relative to submission time. *)
val submit :
  t -> ?deadline_s:float -> (unit -> 'a) -> ('a ticket, reject) result

(** Block until the job resolves (or its deadline passes). Safe to call
    from any domain, and repeatedly — the outcome is sticky. *)
val await : 'a ticket -> 'a outcome

(** Jobs currently queued (not yet picked up). *)
val queue_depth : t -> int

(** Drain then stop: reject new work, run everything queued, join the
    workers. Idempotent. *)
val shutdown : t -> unit

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  failed : int;
  timed_out : int;
  max_queue_depth : int;
  total_wait_s : float;  (** summed time jobs spent queued *)
}

val stats : t -> stats

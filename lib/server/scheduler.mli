(** Quota-fair concurrent job scheduler: per-client bounded queues
    drained by weighted round-robin over a fixed pool of domain
    workers — the request-multiplexing layer under [sfc batch] and
    [sfc serve].

    Contract highlights:

    - {b backpressure}: {!submit} never blocks; a full scheduler yields
      [Error `Queue_full] (global capacity) or [Error `Quota_exceeded]
      (the client's in-flight bound) immediately and the caller decides
      whether to retry, shed or report;
    - {b fairness}: each backlogged client owns a queue; workers visit
      clients round-robin, dequeuing up to [weight] jobs per visit, so
      one client flooding the scheduler adds latency for itself, not
      for everyone else;
    - {b deadlines}: a job past its deadline resolves to {!Timed_out} —
      whether it is still queued (the worker sheds it unrun) or
      executing (the awaiter stops waiting; the worker's eventual result
      is discarded, since a running domain cannot be interrupted);
    - {b cancellation}: a job submitted with [cancelled] is shed at
      dequeue once the closure turns true (e.g. its client
      disconnected), resolving to {!Cancelled}; the same closure is
      available to the job body for mid-flight phase checks;
    - {b shutdown drains}: {!shutdown} stops intake, lets the workers
      finish every queued job, then joins them — submitted work is never
      silently dropped.

    Every job execution is recorded as an obs span ([cat:"server"]) and
    the scheduler keeps aggregate and per-client counters (see
    {!stats}). *)

type t

type 'a outcome =
  | Done of 'a
  | Failed of string  (** the job raised; carries [Printexc.to_string] *)
  | Timed_out  (** deadline exceeded while queued or running *)
  | Cancelled  (** shed at dequeue: the [cancelled] closure turned true *)

(** A handle on one submitted job. *)
type 'a ticket

type reject =
  [ `Queue_full  (** backpressure: global capacity reached *)
  | `Quota_exceeded  (** the client's in-flight quota is exhausted *)
  | `Shutting_down  (** submitted after {!shutdown} began *) ]

(** [create ~workers ()] spawns [workers] domains; [queue_capacity]
    bounds the total queued jobs across clients (default 64);
    [default_quota] bounds each client's in-flight jobs unless
    overridden by {!configure_client} ([<= 0] means unbounded). *)
val create : ?queue_capacity:int -> ?default_quota:int -> workers:int -> unit -> t

(** Set a client's round-robin [weight] (jobs dequeued per rotation
    visit, min 1) and in-flight [quota] ([<= 0] clears it). Creates the
    client if it has not submitted yet. *)
val configure_client :
  t -> id:string -> ?weight:int -> ?quota:int -> unit -> unit

(** Enqueue a job. [client] names the submitting identity (default: a
    shared anonymous client); [deadline_s] is relative to submission
    time; [cancelled] is polled at dequeue — and may be polled by the
    job itself between phases. *)
val submit :
  t ->
  ?client:string ->
  ?cancelled:(unit -> bool) ->
  ?deadline_s:float ->
  (unit -> 'a) ->
  ('a ticket, reject) result

(** Block until the job resolves (or its deadline passes). Safe to call
    from any domain, and repeatedly — the outcome is sticky. *)
val await : 'a ticket -> 'a outcome

(** Jobs currently queued (not yet picked up), across all clients. *)
val queue_depth : t -> int

(** Drain then stop: reject new work, run everything queued, join the
    workers. Idempotent. *)
val shutdown : t -> unit

type client_stats = {
  c_id : string;
  c_weight : int;
  c_quota : int option;
  c_inflight : int;  (** queued + running right now *)
  c_queued : int;
  c_submitted : int;
  c_completed : int;
  c_rejected : int;
  c_shed : int;  (** dropped unrun at dequeue: expired or cancelled *)
}

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  shed : int;  (** jobs dropped unrun at dequeue (expired or cancelled) *)
  max_queue_depth : int;
  total_wait_s : float;  (** summed time jobs spent queued *)
  clients : client_stats list;  (** sorted by id *)
}

val stats : t -> stats

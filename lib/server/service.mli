(** The compilation service protocol shared by [sfc batch] and
    [sfc serve]: newline-delimited JSON jobs in, newline-delimited JSON
    results out, jobs multiplexed over a {!Scheduler} pool with the
    artifact cache deduplicating repeated compiles.

    Job lines:

    {v
{"src": "path.f90", "target": "openmp", "threads": 4, "action": "run"}
{"source": "program p\n...", "action": "compile", "client": "team-a"}
{"action": "metrics"}                        (serve only)
{"action": "shutdown"}                       (serve only)
    v}

    [src] names a Fortran file; [source] carries inline text instead.
    [target] is serial (default) / openmp / gpu-initial / gpu-optimised;
    [threads] requires (or, absent a target, implies) openmp. [action]
    is [run] (default) or [compile]. An optional numeric [id] is echoed
    back; it defaults to the line's position. An optional [client]
    string names the scheduling identity (quota and fair-share bucket);
    it defaults to a per-connection identity under [serve] and a shared
    one under [run_batch].

    Result lines carry [id], [src], [action], [target], [status]
    (ok | error | timeout | cancelled | rejected), cache hit/miss/off,
    compile/run timings in milliseconds, the kernel count, per-grid
    checksums (full-precision strings, so equal grids give byte-equal
    results) and, when [status] is [error], the message — or, when
    [rejected], a [reason] (overloaded | quota-exceeded |
    shutting-down). A malformed or failing job fails {e alone}: its
    result line carries the error and every other job proceeds.

    A [{"action": "metrics"}] line is answered (in order, like a job)
    with one JSON object carrying the scheduler totals, per-client
    stats, queue depth, cache stats (including disk byte usage) and the
    process-wide Obs counters. *)

type action =
  | Compile
  | Run

type job = {
  j_id : int;
  j_src : [ `Path of string | `Inline of string ];
  j_target : Fsc_driver.Pipeline.target;
  j_action : action;
  j_client : string option;  (** scheduling identity, if the job names one *)
}

type status =
  | Ok_
  | Error_ of string
  | Timeout
  | Cancelled_  (** client vanished; work shed before completion *)
  | Rejected_ of string  (** admission shed; carries the reason *)

type result_rec = {
  r_id : int;
  r_label : string;  (** the [src] path, or ["<inline>"] *)
  r_target : string;
  r_action : string;
  r_status : status;
  r_cache : [ `Hit | `Miss | `Off ];
  r_compile_ms : float;
  r_run_ms : float;
  r_kernels : int;
  r_checksums : (string * float) list;  (** sorted by grid name *)
}

(** Parse a target name as both the CLI and the job protocol spell it:
    serial, openmp (machine-default threads), gpu-initial, and
    gpu / gpu-optimised / gpu-optimized. *)
val target_of_name : string -> (Fsc_driver.Pipeline.target, string) result

(** Combine an optional target with an optional thread count: threads
    require (or, absent a target, imply) openmp, and must be >= 1.
    Shared by the CLI flags and the job protocol so both reject the
    same nonsense the same way. *)
val resolve_target :
  Fsc_driver.Pipeline.target option ->
  int option ->
  (Fsc_driver.Pipeline.target, string) result

(** Parse one job line. [index] supplies the default id. *)
val parse_job : index:int -> string -> (job, string) result

(** Should [serve] stop after this line? *)
val is_shutdown : string -> bool

(** Is this line a [{"action": "metrics"}] control line? *)
val is_metrics : string -> bool

(** Compile (and for [Run], link + execute) one job. Never raises:
    failures become [Error_]. [should_cancel] is polled before the
    compile and again between the compile and run phases; once true the
    result is [Cancelled_] and the remaining phases are skipped. *)
val execute :
  ?cache:Fsc_cache.Cache.t ->
  ?should_cancel:(unit -> bool) ->
  job ->
  result_rec

(** One result line (no trailing newline). *)
val result_to_line : result_rec -> string

(** The metrics dump [serve] answers a [metrics] line with. *)
val metrics_json :
  ?cache:Fsc_cache.Cache.t -> Scheduler.t -> Fsc_obs.Obs.Json.t

(** Run a list of job lines through a worker pool. Results come back in
    input order regardless of completion order. [workers] defaults to
    the machine's recommended size; [deadline_s] applies per job.
    Submission retries for at most [overload_budget_s] seconds
    (default 30) when the queue is full, then sheds the job with a
    typed [rejected: overloaded] result — backpressure is latency up to
    a bound, never an infinite spin. *)
val run_batch :
  ?cache:Fsc_cache.Cache.t ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?deadline_s:float ->
  ?overload_budget_s:float ->
  string list ->
  string list

(** Serve the same protocol over a Unix domain socket. [handlers]
    connection-handler domains (default 4) accept concurrently, so a
    slow or stalled client occupies one handler, not the server; the
    accept loop survives transient failures ([EINTR], fd exhaustion).
    Jobs from all connections share one scheduler with weighted
    round-robin fairness; [default_quota] bounds each client's
    in-flight jobs and [client_weights] pins per-client weights.
    [idle_timeout_s] disconnects (and cancels) a client that sends no
    complete line for that long. Returns after a client sends a
    shutdown line (the scheduler is drained and the socket file
    removed). Any stale socket file at [socket] is replaced. When a
    [cache] is given its disk store is swept (orphaned temp files
    removed, byte budget enforced) before serving. *)
val serve :
  ?cache:Fsc_cache.Cache.t ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?deadline_s:float ->
  ?handlers:int ->
  ?default_quota:int ->
  ?client_weights:(string * int) list ->
  ?idle_timeout_s:float ->
  socket:string ->
  unit ->
  unit

(** Client helper: connect to [socket], send the job lines, half-close,
    and return the response lines (used by tests and scripts). *)
val request : socket:string -> string list -> string list

(* Machine descriptions for the paper's two systems (Section 4.1).
   Numbers are public specifications plus calibrated effective rates; the
   models below only claim to reproduce the *shape* of the paper's
   figures (who wins, by what factor, where the crossovers are). *)

type cpu_node = {
  cn_name : string;
  cores : int;
  numa_regions : int;
  cores_per_numa : int;
  (* peak double-precision flop/s of one core *)
  core_flops : float;
  (* sustained memory bandwidth of one NUMA region (bytes/s) *)
  numa_bw : float;
  (* sustained single-core streaming bandwidth cap (bytes/s) *)
  core_bw : float;
}

(* ARCHER2: HPE Cray EX, dual AMD EPYC 7742 (Rome), 128 cores/node,
   8 NUMA regions of 16 cores. *)
let archer2_node =
  { cn_name = "ARCHER2 (2x AMD EPYC 7742)"; cores = 128; numa_regions = 8;
    cores_per_numa = 16;
    core_flops = 36.0e9 (* 2.25 GHz x 16 dp flops/cycle *);
    numa_bw = 48.0e9; core_bw = 15.0e9 }

(* Per-core cache hierarchy, the input to the CPU executor's cache
   blocking: the vector engine tiles outer loops so a tile's working
   set (rows x arrays touched) stays within half the per-core L2. *)
type cache_hierarchy = {
  ch_l1_kb : int;  (* per-core L1d *)
  ch_l2_kb : int;  (* per-core private L2 *)
  ch_l3_kb : int;  (* shared LLC slice *)
}

(* AMD EPYC 7742 (Rome): 32 KB L1d + 512 KB L2 per core, 16 MB L3 per
   CCX. *)
let archer2_cache = { ch_l1_kb = 32; ch_l2_kb = 512; ch_l3_kb = 16384 }

(* Conservative figure for the host actually running the benchmarks:
   512 KB private L2 is the common denominator of current x86 server
   parts; the tile heuristic only needs the order of magnitude. *)
let host_cache = archer2_cache

(* Rows of [row_bytes] bytes per cache tile so that [arrays] arrays'
   worth of tile working set fits in half the L2 (the other half is
   left to the streaming stores and prefetch). *)
let tile_rows ~cache ~row_bytes ~arrays =
  max 1 (cache.ch_l2_kb * 1024 / 2 / max 1 (row_bytes * max 1 arrays))

type network = {
  nw_name : string;
  latency : float;       (* s per message *)
  bandwidth : float;     (* bytes/s per node (injection) *)
}

(* HPE Cray Slingshot: 2 x 100 Gbps bidirectional per node. *)
let slingshot = { nw_name = "Slingshot"; latency = 2.0e-6;
                  bandwidth = 25.0e9 }

(* Cirrus GPU node: V100 spec lives in Fsc_rt.Gpu_sim.v100. *)
let cirrus_gpu = Fsc_rt.Gpu_sim.v100

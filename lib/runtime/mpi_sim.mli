(** Simulated MPI: SPMD execution of ranks inside one process with real
    message buffers — the functional layer backing the distributed-memory
    experiments (Figure 6). Thread-safe: each destination rank owns a
    mutex-guarded mailbox, so ranks may post and take messages
    concurrently from pool workers. Superstep ordering (all sends of a
    phase visible before the next phase's receives) is the caller's
    rendezvous barrier, not this module's. *)

type message = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_payload : float array;
}

type t

(** @raise Invalid_argument when [nranks < 1]. *)
val create : int -> t

val nranks : t -> int

(** Post a message into [dst]'s mailbox. Both endpoints are validated.
    @raise Invalid_argument on an out-of-range [src] or [dst]. *)
val send : t -> src:int -> dst:int -> tag:int -> float array -> unit

(** Take the oldest matching message out of [dst]'s mailbox
    (non-blocking).
    @raise Invalid_argument when absent — the error includes a summary
    of what {e is} pending for [dst], so a mismatched tag or a skipped
    exchange is diagnosable. *)
val recv : t -> src:int -> dst:int -> tag:int -> float array

(** Undelivered (src, dst, tag) triples across all mailboxes, oldest
    first per mailbox. *)
val pending : t -> (int * int * int) list

(** Total messages posted so far. *)
val messages : t -> int

(** Total payload bytes posted so far. *)
val bytes : t -> int

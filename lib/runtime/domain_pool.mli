(** Work-sharing pool over OCaml domains: the OpenMP runtime of this
    substrate. A pool of [size] persistent workers executes parallel-for
    loops with guided work-stealing (per-worker contiguous segments,
    geometrically shrinking chunk claims, chunk stealing from other
    segments when a worker's own segment is drained); the calling domain
    participates as worker 0. Scheduling activity is visible through the
    [pool.*] Obs counters ([pool.chunks.caller], [pool.chunks.worker],
    [pool.steals]). *)

type t

(** Spawn a pool with [size] participants ([size - 1] worker domains
    plus the caller). *)
val create : int -> t

(** Number of participants (worker domains + caller). *)
val size : t -> int

(** Join all worker domains. The pool must be idle. *)
val shutdown : t -> unit

(** [parallel_for pool ~lo ~hi body] work-shares [lo, hi): [body lo' hi']
    is invoked on disjoint chunks covering the range, concurrently across
    the pool. Blocks until every chunk completed. [chunk] sets the
    minimum chunk granularity (clamped to [>= 1]); workers claim
    geometrically shrinking chunks down to that floor. Ranges smaller
    than twice the pool size run inline on the caller. *)
val parallel_for :
  ?chunk:int -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit

(** [team pool ~members body] launches a fixed team: participant [m]
    (member 0 is the caller, members [1 .. members-1] are pinned pool
    workers) runs [body ~member:m ~barrier] exactly once. [barrier ()]
    is a reusable hybrid spin-then-block phase rendezvous over exactly
    the [members] participants — one team launch plus any number of
    cheap barriers replaces one full pool join per phase. Blocks until
    every member returned. Teams are not stealable: each member keeps
    its identity (and whatever state is keyed on it) across every
    phase of the launch. With [members = 1] the body runs inline and
    the barrier is a no-op.

    The body must not use the pool itself (a nested [parallel_for] or
    [team] would deadlock). @raise Invalid_argument when [members < 1]
    or [members > size pool]. *)
val team :
  t -> members:int -> (member:int -> barrier:(unit -> unit) -> unit) -> unit

(** The machine's recommended worker count. *)
val recommended_size : unit -> int

(** A lazily created process-wide pool of {!recommended_size}. *)
val get_default : unit -> t

(** Run [f] with a fresh pool, shutting it down afterwards. *)
val with_pool : int -> (t -> 'a) -> 'a

(* Work-sharing pool over OCaml domains: the OpenMP runtime of this
   substrate. A pool of [size] persistent worker domains executes
   parallel-for loops; the calling domain acts as worker 0.

   Scheduling is guided work-stealing rather than a single shared index:
   the range is pre-split into one contiguous segment per worker, each
   worker claims geometrically shrinking chunks off its own segment's
   atomic cursor, and a worker that drains its segment steals chunks
   from the other segments. This keeps chunk claiming mostly
   uncontended, preserves locality (each worker sweeps one contiguous
   slab), and rebalances automatically when the per-chunk cost is skewed
   — the failure mode of the previous fixed [range / (size * 4)]
   chunking. *)

module Obs = Fsc_obs.Obs

(* Utilisation counters: "caller" chunks are executed by the domain that
   issued the parallel_for, "worker" chunks by pool workers, "steals"
   counts chunks executed off another worker's segment. caller >> worker
   means the range was too small (or the workers too slow to wake) for
   the pool to help; a large steal count means the load was skewed. *)
let c_parallel_for = Obs.counter "pool.parallel_for"
let c_serial_for = Obs.counter "pool.serial_for"
let c_caller_chunks = Obs.counter "pool.chunks.caller"
let c_worker_chunks = Obs.counter "pool.chunks.worker"
let c_steals = Obs.counter "pool.steals"

(* A reusable phase barrier: [await] blocks until all [parties] arrive,
   then releases the phase together. Generation-counted so it can be
   reused across parallel_for invocations without re-allocation. *)
module Barrier = struct
  type t = {
    b_mutex : Mutex.t;
    b_cond : Condition.t;
    b_parties : int;
    mutable b_count : int;
    mutable b_phase : int;
  }

  let create parties =
    { b_mutex = Mutex.create (); b_cond = Condition.create ();
      b_parties = parties; b_count = 0; b_phase = 0 }

  let await b =
    Mutex.lock b.b_mutex;
    b.b_count <- b.b_count + 1;
    if b.b_count = b.b_parties then begin
      b.b_count <- 0;
      b.b_phase <- b.b_phase + 1;
      Condition.broadcast b.b_cond
    end
    else begin
      let phase = b.b_phase in
      while b.b_phase = phase do
        Condition.wait b.b_cond b.b_mutex
      done
    end;
    Mutex.unlock b.b_mutex
end

type task = {
  t_body : int -> int -> unit; (* lo, hi (exclusive) *)
  (* per-worker segment cursors and (exclusive) segment ends *)
  t_pos : int Atomic.t array;
  t_end : int array;
  t_min_chunk : int;
}

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  work : task option ref;
  work_mutex : Mutex.t;
  work_cond : Condition.t;
  barrier : Barrier.t;
  mutable generation : int;
  mutable shutdown : bool;
}

(* Claim the next chunk from segment [seg]: a quarter of what remains,
   never below the task's minimum chunk. fetch_and_add may over-claim
   past the segment end when racing a thief; the claimed window is
   clipped, so every index is still executed exactly once. *)
let claim task seg =
  let pos = Array.unsafe_get task.t_pos seg in
  let seg_end = Array.unsafe_get task.t_end seg in
  let cur = Atomic.get pos in
  if cur >= seg_end then None
  else begin
    let remaining = seg_end - cur in
    let c = max task.t_min_chunk ((remaining + 3) / 4) in
    let lo = Atomic.fetch_and_add pos c in
    if lo >= seg_end then None else Some (lo, min (lo + c) seg_end)
  end

let drain task seg counter =
  let rec go () =
    match claim task seg with
    | Some (lo, hi) ->
      Obs.incr counter;
      task.t_body lo hi;
      go ()
    | None -> ()
  in
  go ()

(* Own segment first, then sweep the other segments stealing chunks
   until one full sweep finds no work anywhere. *)
let run_task ~self task =
  let n = Array.length task.t_pos in
  drain task self (if self = 0 then c_caller_chunks else c_worker_chunks);
  if n > 1 then begin
    let progressed = ref true in
    while !progressed do
      progressed := false;
      for k = 1 to n - 1 do
        let victim = (self + k) mod n in
        match claim task victim with
        | Some (lo, hi) ->
          progressed := true;
          Obs.incr c_steals;
          task.t_body lo hi;
          drain task victim c_steals
        | None -> ()
      done
    done
  end

let worker_loop pool self () =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.work_mutex;
    while (not pool.shutdown) && pool.generation = !seen do
      Condition.wait pool.work_cond pool.work_mutex
    done;
    if pool.shutdown then Mutex.unlock pool.work_mutex
    else begin
      seen := pool.generation;
      let task = !(pool.work) in
      Mutex.unlock pool.work_mutex;
      (match task with
      | Some task ->
        run_task ~self task;
        Barrier.await pool.barrier
      | None -> ());
      loop ()
    end
  in
  loop ()

let create size =
  let size = max 1 size in
  let pool =
    { size; workers = [||]; work = ref None; work_mutex = Mutex.create ();
      work_cond = Condition.create (); barrier = Barrier.create size;
      generation = 0; shutdown = false }
  in
  pool.workers <-
    Array.init (size - 1) (fun i -> Domain.spawn (worker_loop pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.work_mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.work_mutex;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

(* Parallel for over [lo, hi): [body lo' hi'] must handle any subrange.
   [chunk] is the minimum chunk granularity (clamped to >= 1); workers
   claim geometrically shrinking chunks down to that floor. Ranges too
   small to give every participant at least two indices run inline. *)
let parallel_for ?chunk pool ~lo ~hi body =
  if hi <= lo then ()
  else if pool.size = 1 || hi - lo < pool.size * 2 then begin
    Obs.incr c_serial_for;
    body lo hi
  end
  else begin
    Obs.incr c_parallel_for;
    let range = hi - lo in
    let min_chunk = match chunk with Some c -> max 1 c | None -> 1 in
    let n = pool.size in
    let seg_start i = lo + (i * range / n) in
    let task =
      { t_body = body;
        t_pos = Array.init n (fun i -> Atomic.make (seg_start i));
        t_end = Array.init n (fun i -> seg_start (i + 1));
        t_min_chunk = min_chunk }
    in
    Mutex.lock pool.work_mutex;
    pool.work := Some task;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_cond;
    Mutex.unlock pool.work_mutex;
    (* the caller participates as worker 0 *)
    run_task ~self:0 task;
    Barrier.await pool.barrier
  end

(* A lazily created default pool sized to the machine. *)
let default_pool : t option ref = ref None

let recommended_size () =
  match Domain.recommended_domain_count () with
  | n when n >= 1 -> n
  | _ -> 1

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create (recommended_size ()) in
    default_pool := Some p;
    p

let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Work-sharing pool over OCaml domains: the OpenMP runtime of this
   substrate. A pool of [size] persistent worker domains executes
   parallel-for loops; the calling domain acts as worker 0.

   Scheduling is guided work-stealing rather than a single shared index:
   the range is pre-split into one contiguous segment per worker, each
   worker claims geometrically shrinking chunks off its own segment's
   atomic cursor, and a worker that drains its segment steals chunks
   from the other segments. This keeps chunk claiming mostly
   uncontended, preserves locality (each worker sweeps one contiguous
   slab), and rebalances automatically when the per-chunk cost is skewed
   — the failure mode of the previous fixed [range / (size * 4)]
   chunking. *)

module Obs = Fsc_obs.Obs

(* Utilisation counters: "caller" chunks are executed by the domain that
   issued the parallel_for, "worker" chunks by pool workers, "steals"
   counts chunks executed off another worker's segment. caller >> worker
   means the range was too small (or the workers too slow to wake) for
   the pool to help; a large steal count means the load was skewed. *)
let c_parallel_for = Obs.counter "pool.parallel_for"
let c_serial_for = Obs.counter "pool.serial_for"
let c_caller_chunks = Obs.counter "pool.chunks.caller"
let c_worker_chunks = Obs.counter "pool.chunks.worker"
let c_steals = Obs.counter "pool.steals"
let c_teams = Obs.counter "pool.teams"
let c_team_barriers = Obs.counter "pool.team_barriers"

(* A reusable phase barrier: [await] blocks until all [parties] arrive,
   then releases the phase together.

   Hybrid spin-then-block, ticket based: arrival order is a monotone
   atomic ticket counter, a party's generation is [ticket / parties],
   and the last arriver of a generation publishes [phase = gen + 1].
   Early arrivers spin briefly on the phase word — a phase released
   while every party is still on-CPU costs no syscall — then fall back
   to a condition wait. The publish happens under the mutex before the
   broadcast, and blocked waiters re-check the phase under the same
   mutex, so no wakeup can be lost. Tickets never reset, which is what
   makes immediate reuse across back-to-back phases race-free: a fast
   party re-arriving before slow parties have observed the release
   simply lands in the next generation. *)
module Barrier = struct
  type t = {
    b_parties : int;
    b_tickets : int Atomic.t; (* monotone arrival counter *)
    b_phase : int Atomic.t;   (* completed generations *)
    b_spin : int;             (* bounded spin before blocking *)
    b_mutex : Mutex.t;
    b_cond : Condition.t;
  }

  (* The default spin is deliberately small: on an oversubscribed host
     (more parties than cores) the release can only come after a
     reschedule, so long spins just burn the releaser's timeslice. *)
  let create ?(spin = 300) parties =
    { b_parties = parties; b_tickets = Atomic.make 0;
      b_phase = Atomic.make 0; b_spin = spin; b_mutex = Mutex.create ();
      b_cond = Condition.create () }

  let await b =
    if b.b_parties > 1 then begin
      let ticket = Atomic.fetch_and_add b.b_tickets 1 in
      let gen = ticket / b.b_parties in
      if ticket mod b.b_parties = b.b_parties - 1 then begin
        Mutex.lock b.b_mutex;
        Atomic.set b.b_phase (gen + 1);
        Condition.broadcast b.b_cond;
        Mutex.unlock b.b_mutex
      end
      else begin
        let spins = ref b.b_spin in
        while Atomic.get b.b_phase <= gen && !spins > 0 do
          decr spins;
          Domain.cpu_relax ()
        done;
        if Atomic.get b.b_phase <= gen then begin
          Mutex.lock b.b_mutex;
          while Atomic.get b.b_phase <= gen do
            Condition.wait b.b_cond b.b_mutex
          done;
          Mutex.unlock b.b_mutex
        end
      end
    end
end

type task = {
  t_body : int -> int -> unit; (* lo, hi (exclusive) *)
  (* per-worker segment cursors and (exclusive) segment ends *)
  t_pos : int Atomic.t array;
  t_end : int array;
  t_min_chunk : int;
}

(* Two kinds of published work: a stealable parallel-for task, or a
   fixed-membership team in which participant [m] runs the body exactly
   once with its member index and a phase barrier shared by the team.
   Team work is deliberately not stealable: each member owns its slice
   of state for the whole launch, so the barrier can be the only
   synchronisation between phases. *)
type work =
  | W_for of task
  | W_team of {
      tm_members : int;
      tm_body : member:int -> barrier:(unit -> unit) -> unit;
      tm_barrier : unit -> unit;
    }

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  work : work option ref;
  work_mutex : Mutex.t;
  work_cond : Condition.t;
  barrier : Barrier.t;
  mutable generation : int;
  mutable shutdown : bool;
}

let size pool = pool.size

(* Claim the next chunk from segment [seg]: a quarter of what remains,
   never below the task's minimum chunk. fetch_and_add may over-claim
   past the segment end when racing a thief; the claimed window is
   clipped, so every index is still executed exactly once. *)
let claim task seg =
  let pos = Array.unsafe_get task.t_pos seg in
  let seg_end = Array.unsafe_get task.t_end seg in
  let cur = Atomic.get pos in
  if cur >= seg_end then None
  else begin
    let remaining = seg_end - cur in
    let c = max task.t_min_chunk ((remaining + 3) / 4) in
    let lo = Atomic.fetch_and_add pos c in
    if lo >= seg_end then None else Some (lo, min (lo + c) seg_end)
  end

let drain task seg counter =
  let rec go () =
    match claim task seg with
    | Some (lo, hi) ->
      Obs.incr counter;
      task.t_body lo hi;
      go ()
    | None -> ()
  in
  go ()

(* Own segment first, then sweep the other segments stealing chunks
   until one full sweep finds no work anywhere. *)
let run_task ~self task =
  let n = Array.length task.t_pos in
  drain task self (if self = 0 then c_caller_chunks else c_worker_chunks);
  if n > 1 then begin
    let progressed = ref true in
    while !progressed do
      progressed := false;
      for k = 1 to n - 1 do
        let victim = (self + k) mod n in
        match claim task victim with
        | Some (lo, hi) ->
          progressed := true;
          Obs.incr c_steals;
          task.t_body lo hi;
          drain task victim c_steals
        | None -> ()
      done
    done
  end

let worker_loop pool self () =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.work_mutex;
    while (not pool.shutdown) && pool.generation = !seen do
      Condition.wait pool.work_cond pool.work_mutex
    done;
    if pool.shutdown then Mutex.unlock pool.work_mutex
    else begin
      seen := pool.generation;
      let work = !(pool.work) in
      Mutex.unlock pool.work_mutex;
      (match work with
      | Some (W_for task) ->
        run_task ~self task;
        Barrier.await pool.barrier
      | Some (W_team tm) ->
        (* workers beyond the team size sit this launch out but still
           join the pool-wide completion barrier *)
        if self < tm.tm_members then
          tm.tm_body ~member:self ~barrier:tm.tm_barrier;
        Barrier.await pool.barrier
      | None -> ());
      loop ()
    end
  in
  loop ()

let create size =
  let size = max 1 size in
  let pool =
    { size; workers = [||]; work = ref None; work_mutex = Mutex.create ();
      work_cond = Condition.create (); barrier = Barrier.create size;
      generation = 0; shutdown = false }
  in
  pool.workers <-
    Array.init (size - 1) (fun i -> Domain.spawn (worker_loop pool (i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.work_mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.work_mutex;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

(* Parallel for over [lo, hi): [body lo' hi'] must handle any subrange.
   [chunk] is the minimum chunk granularity (clamped to >= 1); workers
   claim geometrically shrinking chunks down to that floor. Ranges too
   small to give every participant at least two indices run inline. *)
let parallel_for ?chunk pool ~lo ~hi body =
  if hi <= lo then ()
  else if pool.size = 1 || hi - lo < pool.size * 2 then begin
    Obs.incr c_serial_for;
    body lo hi
  end
  else begin
    Obs.incr c_parallel_for;
    let range = hi - lo in
    let min_chunk = match chunk with Some c -> max 1 c | None -> 1 in
    let n = pool.size in
    let seg_start i = lo + (i * range / n) in
    let task =
      { t_body = body;
        t_pos = Array.init n (fun i -> Atomic.make (seg_start i));
        t_end = Array.init n (fun i -> seg_start (i + 1));
        t_min_chunk = min_chunk }
    in
    Mutex.lock pool.work_mutex;
    pool.work := Some (W_for task);
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_cond;
    Mutex.unlock pool.work_mutex;
    (* the caller participates as worker 0 *)
    run_task ~self:0 task;
    Barrier.await pool.barrier
  end

(* Launch a fixed team of [members] participants: each runs
   [body ~member ~barrier] exactly once, with [member 0] being the
   caller and a fresh phase barrier of [members] parties shared by the
   team. One launch then an arbitrary number of cheap barrier
   rendezvous inside the body replaces a pool join per phase — the
   launch/join cost and the steal-thrash of chunked scheduling are paid
   once per team, not once per phase. The body must not use the pool
   itself ([parallel_for] or a nested [team] would deadlock waiting for
   workers that are pinned to this team). *)
let team pool ~members body =
  if members < 1 then invalid_arg "Domain_pool.team: members must be >= 1";
  if members > pool.size then
    invalid_arg
      (Printf.sprintf "Domain_pool.team: %d members exceed pool size %d"
         members pool.size);
  if members = 1 then body ~member:0 ~barrier:(fun () -> ())
  else begin
    Obs.incr c_teams;
    let phase = Barrier.create members in
    let tm_barrier () =
      Obs.incr c_team_barriers;
      Barrier.await phase
    in
    Mutex.lock pool.work_mutex;
    pool.work := Some (W_team { tm_members = members; tm_body = body; tm_barrier });
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_cond;
    Mutex.unlock pool.work_mutex;
    body ~member:0 ~barrier:tm_barrier;
    Barrier.await pool.barrier
  end

(* A lazily created default pool sized to the machine. *)
let default_pool : t option ref = ref None

let recommended_size () =
  match Domain.recommended_domain_count () with
  | n when n >= 1 -> n
  | _ -> 1

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create (recommended_size ()) in
    default_pool := Some p;
    p

let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Work-sharing pool over OCaml domains: the OpenMP runtime of this
   substrate. A pool of [size] worker domains executes chunked
   parallel-for loops; the calling domain acts as worker 0. *)

module Obs = Fsc_obs.Obs

(* Utilisation counters: "caller" chunks are executed by the domain that
   issued the parallel_for, "worker" chunks were stolen off the shared
   index by pool workers. caller >> worker means the range was too small
   (or the workers too slow to wake) for the pool to help. *)
let c_parallel_for = Obs.counter "pool.parallel_for"
let c_serial_for = Obs.counter "pool.serial_for"
let c_caller_chunks = Obs.counter "pool.chunks.caller"
let c_worker_chunks = Obs.counter "pool.chunks.worker"

type task = {
  t_body : int -> int -> unit; (* lo, hi (exclusive) *)
  t_lo : int;
  t_hi : int;
  t_chunk : int;
  t_next : int Atomic.t;
  t_remaining : int Atomic.t;
  t_done : Mutex.t * Condition.t;
}

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  work : task option ref;
  work_mutex : Mutex.t;
  work_cond : Condition.t;
  mutable generation : int;
  mutable shutdown : bool;
}

let run_chunks chunk_counter task =
  let rec go () =
    let i = Atomic.fetch_and_add task.t_next task.t_chunk in
    if i < task.t_hi then begin
      let hi = min (i + task.t_chunk) task.t_hi in
      Obs.incr chunk_counter;
      task.t_body i hi;
      go ()
    end
  in
  go ()

let worker_loop pool () =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.work_mutex;
    while (not pool.shutdown) && pool.generation = !seen do
      Condition.wait pool.work_cond pool.work_mutex
    done;
    if pool.shutdown then Mutex.unlock pool.work_mutex
    else begin
      seen := pool.generation;
      let task = !(pool.work) in
      Mutex.unlock pool.work_mutex;
      (match task with
      | Some task ->
        run_chunks c_worker_chunks task;
        let m, c = task.t_done in
        Mutex.lock m;
        if Atomic.fetch_and_add task.t_remaining (-1) = 1 then
          Condition.broadcast c;
        Mutex.unlock m
      | None -> ());
      loop ()
    end
  in
  loop ()

let create size =
  let size = max 1 size in
  let pool =
    { size; workers = [||]; work = ref None; work_mutex = Mutex.create ();
      work_cond = Condition.create (); generation = 0; shutdown = false }
  in
  pool.workers <-
    Array.init (size - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.work_mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.work_cond;
  Mutex.unlock pool.work_mutex;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

(* Parallel for over [lo, hi): [body lo' hi'] must handle any subrange.
   Chunk size defaults to a fraction of the range per worker. *)
let parallel_for ?chunk pool ~lo ~hi body =
  if hi <= lo then ()
  else if pool.size = 1 || hi - lo = 1 then begin
    Obs.incr c_serial_for;
    body lo hi
  end
  else begin
    Obs.incr c_parallel_for;
    let range = hi - lo in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (range / (pool.size * 4))
    in
    let task =
      { t_body = body; t_lo = lo; t_hi = hi; t_chunk = chunk;
        t_next = Atomic.make lo;
        t_remaining = Atomic.make pool.size;
        t_done = (Mutex.create (), Condition.create ()) }
    in
    Mutex.lock pool.work_mutex;
    pool.work := Some task;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_cond;
    Mutex.unlock pool.work_mutex;
    (* the caller participates as a worker *)
    run_chunks c_caller_chunks task;
    let m, c = task.t_done in
    Mutex.lock m;
    if Atomic.fetch_and_add task.t_remaining (-1) > 1 then
      while Atomic.get task.t_remaining > 0 do
        Condition.wait c m
      done;
    Mutex.unlock m
  end

(* A lazily created default pool sized to the machine. *)
let default_pool : t option ref = ref None

let recommended_size () =
  match Domain.recommended_domain_count () with
  | n when n >= 1 -> n
  | _ -> 1

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
    let p = create (recommended_size ()) in
    default_pool := Some p;
    p

let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Row-at-a-time vectorised execution engine for compiled stencil
   kernels — the tier above Kernel_compile's closure JIT.

   The closure engine pays one OCaml closure call per expression node
   per grid cell. This engine compiles each nest's statements once into
   a small register bytecode and executes a whole innermost row per
   step: every instruction is a tight [for] loop over the row (loads
   with precomputed flat-offset deltas into reusable scratch registers,
   arithmetic register-to-register), and the two dominant statement
   shapes bypass the bytecode entirely with fused single loops —
   weighted sums [a*x[d1] + b*x[d2] + ... (/ c)] and plain copies.

   Correctness contract: results are bitwise identical to the closure
   engine (and hence the interpreter). That is achieved by (a) never
   reassociating float arithmetic — only syntactically left-leaning
   add/sub chains are flattened, and terms accumulate in the original
   evaluation order; (b) vectorising a nest only when no statement
   reads a buffer the nest writes, so batching statements row-wise
   cannot change any read-after-write interleaving the per-cell engine
   would honour; (c) falling back per nest to the closure engine
   (compile-time: unsupported shape; bind-time: an access provably
   outside the buffer) rather than approximating.

   On top of the row engine sit cache blocking and parallelism: the
   sequential outer dimensions are processed in tiles of consecutive
   rows (sized by the ["cpu_tile"] annotation from
   Loop_tiling.annotate_cpu, or a built-in L2 heuristic), iterating the
   parallel dimensions innermost within a tile so planes stay hot in
   cache; the leading parallel loop levels are flattened into one index
   space and distributed over the Domain_pool. Memory safety without
   per-access bounds checks comes from the loop bounds being
   compile-time constants: the whole iteration space's minimum and
   maximum flat offsets are validated per access at bind time, then the
   row loops use unchecked accesses. *)

module Kc = Kernel_compile
module Obs = Fsc_obs.Obs
module A1 = Bigarray.Array1

let c_rows = Obs.counter "rt.vector.rows"
let c_tiles = Obs.counter "rt.vector.tiles"
let c_fallbacks = Obs.counter "rt.vector.fallbacks"

(* ------------------------------------------------------------------ *)
(* Statement bytecode                                                  *)
(* ------------------------------------------------------------------ *)

type term =
  | T_load of int * Kc.index_form list          (* x[d] *)
  | T_cload of float * int * Kc.index_form list (* c * x[d] *)
  | T_sload of int * int * Kc.index_form list   (* scalar * x[d] *)
  | T_const of float
  | T_scalar of int

type scale =
  | Sc_none
  | Sc_mul_const of float
  | Sc_div_const of float
  | Sc_mul_scalar of int
  | Sc_div_scalar of int

type instr =
  | I_load of int * int * Kc.index_form list (* dst reg, buf, index *)
  | I_const of int * float
  | I_scalar of int * int
  | I_iv of int * int * int                  (* dst reg, level, offset *)
  | I_unary of int * string * int
  | I_binary of int * string * int * int

type copy_stmt = {
  c_dst : int;
  c_dst_idx : Kc.index_form list;
  c_src : int;
  c_src_idx : Kc.index_form list;
}

type wsum_stmt = {
  w_dst : int;
  w_dst_idx : Kc.index_form list;
  w_terms : (bool * term) array; (* true = add, false = subtract *)
  w_scale : scale;
}

type expr_stmt = {
  e_dst : int;
  e_dst_idx : Kc.index_form list;
  e_code : instr array;
  e_nregs : int;
  e_out : int;
}

type vstmt =
  | V_copy of copy_stmt
  | V_wsum of wsum_stmt
  | V_expr of expr_stmt

type vnest = {
  v_nest : Kc.nest;
  v_stmts : vstmt array;
}

type compiled_nest =
  | Vec of vnest
  | Scalar of Kc.nest * string (* closure-engine fallback, with reason *)

type plan = {
  p_spec : Kc.spec;
  p_nests : compiled_nest list;
}

type nest_compile =
  | N_vector of string list
  | N_scalar of string

(* ------------------------------------------------------------------ *)
(* Compilation: Kc.nest -> vnest                                       *)
(* ------------------------------------------------------------------ *)

exception Unvectorisable of string

let unvec fmt = Printf.ksprintf (fun m -> raise (Unvectorisable m)) fmt

let max_regs = 64

let supported_unary = function
  | "arith.negf" | "math.sqrt" | "math.absf" | "math.exp" | "math.sin"
  | "math.cos" | "math.log" | "math.floor" ->
    true
  | name -> (
    (* anything Math.eval_unary knows; probe once at compile time *)
    match Fsc_dialects.Math.eval_unary name 1.0 with
    | (_ : float) -> true
    | exception Invalid_argument _ -> false)

let supported_binary = function
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
  | "arith.maximumf" | "arith.minimumf" | "math.powf" | "math.atan2" ->
    true
  | _ -> false

(* Weighted-sum recognition. Only syntactically left-leaning add/sub
   chains are flattened — terms execute in the exact order the closure
   engine would evaluate them, so no float reassociation happens. *)
let term_of = function
  | Kc.F_load (b, idx) -> Some (T_load (b, idx))
  | Kc.F_const c -> Some (T_const c)
  | Kc.F_scalar s -> Some (T_scalar s)
  | Kc.F_binary ("arith.mulf", Kc.F_const c, Kc.F_load (b, idx))
  | Kc.F_binary ("arith.mulf", Kc.F_load (b, idx), Kc.F_const c) ->
    Some (T_cload (c, b, idx))
  | Kc.F_binary ("arith.mulf", Kc.F_scalar s, Kc.F_load (b, idx))
  | Kc.F_binary ("arith.mulf", Kc.F_load (b, idx), Kc.F_scalar s) ->
    Some (T_sload (s, b, idx))
  | _ -> None

let rec flatten_sum acc e =
  match e with
  | Kc.F_binary ("arith.addf", l, r) -> (
    match term_of r with
    | Some t -> flatten_sum ((true, t) :: acc) l
    | None -> None)
  | Kc.F_binary ("arith.subf", l, r) -> (
    match term_of r with
    | Some t -> flatten_sum ((false, t) :: acc) l
    | None -> None)
  | e -> (
    match term_of e with
    | Some t -> Some ((true, t) :: acc)
    | None -> None)

(* Peel a whole-expression scale: [(e) * c], [c * (e)], [(e) / c] (and
   the scalar-argument variants). Multiplication commutes bitwise for
   the non-NaN coefficients these programs produce; division is only
   peeled with the divisor on the right, exactly as written. *)
let peel_scale = function
  | Kc.F_binary ("arith.divf", e, Kc.F_const c) -> (e, Sc_div_const c)
  | Kc.F_binary ("arith.divf", e, Kc.F_scalar s) -> (e, Sc_div_scalar s)
  | Kc.F_binary ("arith.mulf", e, Kc.F_const c)
  | Kc.F_binary ("arith.mulf", Kc.F_const c, e) ->
    (e, Sc_mul_const c)
  | Kc.F_binary ("arith.mulf", e, Kc.F_scalar s)
  | Kc.F_binary ("arith.mulf", Kc.F_scalar s, e) ->
    (e, Sc_mul_scalar s)
  | e -> (e, Sc_none)

(* Generic register program: post-order over the tree with stack
   register allocation (a register is freed as soon as its consumer
   executes), so the register count equals the tree's evaluation
   depth. *)
let compile_expr_code e =
  let code = ref [] in
  let next = ref 0 in
  let high = ref 0 in
  let emit i = code := i :: !code in
  let alloc () =
    let r = !next in
    incr next;
    if !next > !high then high := !next;
    if !high > max_regs then
      unvec "expression needs more than %d row registers" max_regs;
    r
  in
  let rec go e =
    match e with
    | Kc.F_const c ->
      let r = alloc () in
      emit (I_const (r, c));
      r
    | Kc.F_scalar s ->
      let r = alloc () in
      emit (I_scalar (r, s));
      r
    | Kc.F_ivf (l, c) ->
      let r = alloc () in
      emit (I_iv (r, l, c));
      r
    | Kc.F_load (b, idx) ->
      let r = alloc () in
      emit (I_load (r, b, idx));
      r
    | Kc.F_unary (name, a) ->
      if not (supported_unary name) then unvec "unary op %s" name;
      let ra = go a in
      emit (I_unary (ra, name, ra));
      ra
    | Kc.F_binary (name, a, b) ->
      if not (supported_binary name) then unvec "binary op %s" name;
      let ra = go a in
      let rb = go b in
      emit (I_binary (ra, name, ra, rb));
      next := rb; (* stack discipline: rb was the top allocation *)
      ra
  in
  let out = go e in
  (Array.of_list (List.rev !code), !high, out)

let rec loaded_buffers acc = function
  | Kc.F_load (b, _) -> b :: acc
  | Kc.F_unary (_, a) -> loaded_buffers acc a
  | Kc.F_binary (_, a, b) -> loaded_buffers (loaded_buffers acc a) b
  | Kc.F_const _ | Kc.F_scalar _ | Kc.F_ivf _ -> acc

let rec load_indices acc = function
  | Kc.F_load (b, idx) -> (b, idx) :: acc
  | Kc.F_unary (_, a) -> load_indices acc a
  | Kc.F_binary (_, a, b) -> load_indices (load_indices acc a) b
  | Kc.F_const _ | Kc.F_scalar _ | Kc.F_ivf _ -> acc

let compile_stmt (st : Kc.store_stmt) =
  match st.Kc.st_expr with
  | Kc.F_load (b, idx) ->
    V_copy
      { c_dst = st.Kc.st_buf; c_dst_idx = st.Kc.st_index; c_src = b;
        c_src_idx = idx }
  | e -> (
    let body, scale = peel_scale e in
    match flatten_sum [] body with
    | Some terms when List.length terms >= 2 || scale <> Sc_none ->
      V_wsum
        { w_dst = st.Kc.st_buf; w_dst_idx = st.Kc.st_index;
          w_terms = Array.of_list terms; w_scale = scale }
    | _ ->
      let code, nregs, out = compile_expr_code e in
      V_expr
        { e_dst = st.Kc.st_buf; e_dst_idx = st.Kc.st_index; e_code = code;
          e_nregs = nregs; e_out = out })

let compile_nest (nest : Kc.nest) : (vnest, string) result =
  try
    let loops = Array.of_list nest.Kc.n_loops in
    if Array.length loops = 0 then unvec "no loops";
    (* every load's induction uses must walk the same buffer dimension
       as the loop level does in the stores; a transposed access would
       make the shared row-base decomposition wrong *)
    List.iter
      (fun (st : Kc.store_stmt) ->
        List.iter
          (fun (_, idx) ->
            List.iteri
              (fun d i ->
                match i with
                | Kc.Iv (l, _) ->
                  if
                    l < 0 || l >= Array.length loops
                    || loops.(l).Kc.l_dim <> d
                  then unvec "load index not aligned with loop dimensions"
                | Kc.Cst _ -> ())
              idx)
          (load_indices [] st.Kc.st_expr))
      nest.Kc.n_stores;
    (* batching statements row-wise is only order-preserving when no
       statement reads a buffer the nest writes *)
    let stored =
      List.fold_left
        (fun acc (st : Kc.store_stmt) -> st.Kc.st_buf :: acc)
        [] nest.Kc.n_stores
    in
    List.iter
      (fun (st : Kc.store_stmt) ->
        List.iter
          (fun b ->
            if List.mem b stored then
              unvec "nest reads buffer %d that it also writes" b)
          (loaded_buffers [] st.Kc.st_expr))
      nest.Kc.n_stores;
    Ok
      { v_nest = nest;
        v_stmts = Array.of_list (List.map compile_stmt nest.Kc.n_stores) }
  with Unvectorisable reason -> Error reason

let compile_spec (spec : Kc.spec) : plan =
  let nests =
    List.map
      (fun nest ->
        match compile_nest nest with
        | Ok v -> Vec v
        | Error reason ->
          Obs.incr c_fallbacks;
          Scalar (nest, reason))
      spec.Kc.k_nests
  in
  { p_spec = spec; p_nests = nests }

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let stmt_kind = function
  | V_copy _ -> "copy"
  | V_wsum _ -> "wsum"
  | V_expr _ -> "expr"

let summary plan =
  List.map
    (function
      | Vec v -> N_vector (Array.to_list (Array.map stmt_kind v.v_stmts))
      | Scalar (_, reason) -> N_scalar reason)
    plan.p_nests

let nest_count plan = List.length plan.p_nests

let vectorised_nests plan =
  List.fold_left
    (fun acc -> function Vec _ -> acc + 1 | Scalar _ -> acc)
    0 plan.p_nests

let fallbacks plan =
  List.mapi
    (fun i n ->
      match n with Scalar (_, r) -> Some (i, r) | Vec _ -> None)
    plan.p_nests
  |> List.filter_map Fun.id

(* ------------------------------------------------------------------ *)
(* Binding and execution                                               *)
(* ------------------------------------------------------------------ *)

exception Bind_fallback of string

let bind_fail fmt = Printf.ksprintf (fun m -> raise (Bind_fallback m)) fmt

(* Validate one access over the whole (constant) iteration space:
   strides are positive, so the extreme flat offsets are reached at the
   loop bounds. *)
let check_access ~strides ~loops (buf : Memref_rt.t) idxs =
  let lo = ref 0 and hi = ref 0 in
  List.iteri
    (fun d idx ->
      let s = strides.(d) in
      match idx with
      | Kc.Iv (l, c) ->
        let lp : Kc.loop_spec = loops.(l) in
        lo := !lo + ((lp.Kc.l_lb + c) * s);
        hi := !hi + ((lp.Kc.l_ub - 1 + c) * s)
      | Kc.Cst c ->
        lo := !lo + (c * s);
        hi := !hi + (c * s))
    idxs;
  let len = A1.dim buf.Memref_rt.data in
  if !lo < 0 || !hi >= len then
    bind_fail "access spans [%d, %d] outside buffer of %d cells" !lo !hi len

let validate_nest ~strides ~loops ~(bufs : Memref_rt.t array)
    (nest : Kc.nest) =
  List.iter
    (fun (st : Kc.store_stmt) ->
      check_access ~strides ~loops bufs.(st.Kc.st_buf) st.Kc.st_index;
      List.iter
        (fun (b, idx) -> check_access ~strides ~loops bufs.(b) idx)
        (load_indices [] st.Kc.st_expr))
    nest.Kc.n_stores

(* Fallback default for untiled nests: half of a typical per-core L2,
   divided across the distinct arrays a row touches. The lowering
   normally supplies the real figure via the cpu_tile annotation. *)
let default_l2_bytes = 512 * 1024

let default_tile_rows ~row_bytes ~arrays =
  max 1 (default_l2_bytes / 2 / max 1 (row_bytes * max 1 arrays))

type row_fn = int array -> int -> unit

let unary_fn name =
  match name with
  | "arith.negf" -> fun x -> -.x
  | "math.sqrt" -> Float.sqrt
  | "math.absf" -> Float.abs
  | "math.exp" -> Float.exp
  | "math.sin" -> Float.sin
  | "math.cos" -> Float.cos
  | "math.log" -> Float.log
  | "math.floor" -> Float.floor
  | name -> Fsc_dialects.Math.eval_unary name

let binary_fn name =
  match name with
  | "arith.addf" -> ( +. )
  | "arith.subf" -> ( -. )
  | "arith.mulf" -> ( *. )
  | "arith.divf" -> ( /. )
  | "arith.maximumf" -> Float.max
  | "arith.minimumf" -> Float.min
  | "math.powf" -> Float.pow
  | "math.atan2" -> Float.atan2
  | name -> bind_fail "binary op %s" name

(* -------- copy rows -------- *)

let bind_copy ~bufs ~strides ~w ~si c : unit -> row_fn =
  let dd = bufs.(c.c_dst).Memref_rt.data in
  let sd = bufs.(c.c_src).Memref_rt.data in
  let od = Kc.delta_of strides c.c_dst_idx in
  let sod = Kc.delta_of strides c.c_src_idx in
  let fn : row_fn =
    if si = 1 then (fun _ base ->
      let ob = base + od and ib = base + sod in
      for i = 0 to w - 1 do
        A1.unsafe_set dd (ob + i) (A1.unsafe_get sd (ib + i))
      done)
    else fun _ base ->
      let ob = base + od and ib = base + sod in
      for i = 0 to w - 1 do
        let o = i * si in
        A1.unsafe_set dd (ob + o) (A1.unsafe_get sd (ib + o))
      done
  in
  fun () -> fn

(* -------- weighted-sum rows -------- *)

(* term kinds after binding: 0 = plain load, 1 = coefficient * load,
   2 = constant (coefficient only) *)
let bind_wsum ~bufs ~scalars ~strides ~w ~si ws : unit -> row_fn =
  let dd = bufs.(ws.w_dst).Memref_rt.data in
  let od = Kc.delta_of strides ws.w_dst_idx in
  let k = Array.length ws.w_terms in
  let adds = Array.map fst ws.w_terms in
  let kinds = Array.make k 0 in
  let coefs = Array.make k 0.0 in
  let datas = Array.make k dd in
  let deltas = Array.make k 0 in
  Array.iteri
    (fun t (_, term) ->
      match term with
      | T_load (b, idx) ->
        kinds.(t) <- 0;
        datas.(t) <- bufs.(b).Memref_rt.data;
        deltas.(t) <- Kc.delta_of strides idx
      | T_cload (c, b, idx) ->
        kinds.(t) <- 1;
        coefs.(t) <- c;
        datas.(t) <- bufs.(b).Memref_rt.data;
        deltas.(t) <- Kc.delta_of strides idx
      | T_sload (s, b, idx) ->
        kinds.(t) <- 1;
        coefs.(t) <- scalars.(s);
        datas.(t) <- bufs.(b).Memref_rt.data;
        deltas.(t) <- Kc.delta_of strides idx
      | T_const c ->
        kinds.(t) <- 2;
        coefs.(t) <- c
      | T_scalar s ->
        kinds.(t) <- 2;
        coefs.(t) <- scalars.(s))
    ws.w_terms;
  let sk, sv =
    match ws.w_scale with
    | Sc_none -> (0, 0.0)
    | Sc_mul_const c -> (1, c)
    | Sc_mul_scalar s -> (1, scalars.(s))
    | Sc_div_const c -> (2, c)
    | Sc_div_scalar s -> (2, scalars.(s))
  in
  let all_plain_add =
    Array.for_all Fun.id adds && Array.for_all (fun x -> x = 0) kinds
  in
  let fn : row_fn =
    match k with
    | 4 when all_plain_add ->
      (* e.g. the 2-D Laplace 4-point sum *)
      let d0 = datas.(0) and d1 = datas.(1) in
      let d2 = datas.(2) and d3 = datas.(3) in
      let e0 = deltas.(0) and e1 = deltas.(1) in
      let e2 = deltas.(2) and e3 = deltas.(3) in
      fun _ base ->
        let ob = base + od in
        for i = 0 to w - 1 do
          let c = base + (i * si) in
          let s =
            A1.unsafe_get d0 (c + e0)
            +. A1.unsafe_get d1 (c + e1)
            +. A1.unsafe_get d2 (c + e2)
            +. A1.unsafe_get d3 (c + e3)
          in
          let s = if sk = 0 then s else if sk = 1 then s *. sv else s /. sv in
          A1.unsafe_set dd (ob + (i * si)) s
        done
    | 6 when all_plain_add ->
      (* e.g. the 3-D Gauss-Seidel 6-point average *)
      let d0 = datas.(0) and d1 = datas.(1) and d2 = datas.(2) in
      let d3 = datas.(3) and d4 = datas.(4) and d5 = datas.(5) in
      let e0 = deltas.(0) and e1 = deltas.(1) and e2 = deltas.(2) in
      let e3 = deltas.(3) and e4 = deltas.(4) and e5 = deltas.(5) in
      fun _ base ->
        let ob = base + od in
        for i = 0 to w - 1 do
          let c = base + (i * si) in
          let s =
            A1.unsafe_get d0 (c + e0)
            +. A1.unsafe_get d1 (c + e1)
            +. A1.unsafe_get d2 (c + e2)
            +. A1.unsafe_get d3 (c + e3)
            +. A1.unsafe_get d4 (c + e4)
            +. A1.unsafe_get d5 (c + e5)
          in
          let s = if sk = 0 then s else if sk = 1 then s *. sv else s /. sv in
          A1.unsafe_set dd (ob + (i * si)) s
        done
    | _ ->
      fun _ base ->
        let ob = base + od in
        for i = 0 to w - 1 do
          let c = base + (i * si) in
          let acc =
            ref
              (match Array.unsafe_get kinds 0 with
              | 0 -> A1.unsafe_get (Array.unsafe_get datas 0)
                       (c + Array.unsafe_get deltas 0)
              | 1 ->
                Array.unsafe_get coefs 0
                *. A1.unsafe_get (Array.unsafe_get datas 0)
                     (c + Array.unsafe_get deltas 0)
              | _ -> Array.unsafe_get coefs 0)
          in
          for t = 1 to k - 1 do
            let v =
              match Array.unsafe_get kinds t with
              | 0 ->
                A1.unsafe_get (Array.unsafe_get datas t)
                  (c + Array.unsafe_get deltas t)
              | 1 ->
                Array.unsafe_get coefs t
                *. A1.unsafe_get (Array.unsafe_get datas t)
                     (c + Array.unsafe_get deltas t)
              | _ -> Array.unsafe_get coefs t
            in
            acc := (if Array.unsafe_get adds t then !acc +. v else !acc -. v)
          done;
          let s = !acc in
          let s = if sk = 0 then s else if sk = 1 then s *. sv else s /. sv in
          A1.unsafe_set dd (ob + (i * si)) s
        done
  in
  fun () -> fn

(* -------- generic register programs -------- *)

let bind_expr ~bufs ~scalars ~strides ~w ~si ~inner_level ~inner_lb ex :
    unit -> row_fn =
  let dd = bufs.(ex.e_dst).Memref_rt.data in
  let od = Kc.delta_of strides ex.e_dst_idx in
  (* scratch registers are per-row-executor (one executor per pool
     chunk), so concurrent chunks never share them *)
  fun () ->
    let regs = Array.init ex.e_nregs (fun _ -> Array.make (max w 1) 0.0) in
    let bind_instr = function
      | I_load (dst, b, idx) ->
        let data = bufs.(b).Memref_rt.data in
        let delta = Kc.delta_of strides idx in
        let r = regs.(dst) in
        if si = 1 then (fun (_ : int array) base ->
          let ib = base + delta in
          for i = 0 to w - 1 do
            Array.unsafe_set r i (A1.unsafe_get data (ib + i))
          done)
        else fun _ base ->
          let ib = base + delta in
          for i = 0 to w - 1 do
            Array.unsafe_set r i (A1.unsafe_get data (ib + (i * si)))
          done
      | I_const (dst, c) ->
        let r = regs.(dst) in
        fun _ _ -> Array.fill r 0 w c
      | I_scalar (dst, s) ->
        let r = regs.(dst) in
        let v = scalars.(s) in
        fun _ _ -> Array.fill r 0 w v
      | I_iv (dst, l, c) ->
        let r = regs.(dst) in
        if l = inner_level then (fun _ _ ->
          for i = 0 to w - 1 do
            Array.unsafe_set r i (float_of_int (inner_lb + i + c))
          done)
        else fun ivs _ ->
          Array.fill r 0 w (float_of_int (Array.unsafe_get ivs l + c))
      | I_unary (dst, name, a) ->
        let f = unary_fn name in
        let rd = regs.(dst) and ra = regs.(a) in
        fun _ _ ->
          for i = 0 to w - 1 do
            Array.unsafe_set rd i (f (Array.unsafe_get ra i))
          done
      | I_binary (dst, name, a, b) ->
        let rd = regs.(dst) and ra = regs.(a) and rb = regs.(b) in
        (match name with
        | "arith.addf" ->
          fun _ _ ->
            for i = 0 to w - 1 do
              Array.unsafe_set rd i
                (Array.unsafe_get ra i +. Array.unsafe_get rb i)
            done
        | "arith.subf" ->
          fun _ _ ->
            for i = 0 to w - 1 do
              Array.unsafe_set rd i
                (Array.unsafe_get ra i -. Array.unsafe_get rb i)
            done
        | "arith.mulf" ->
          fun _ _ ->
            for i = 0 to w - 1 do
              Array.unsafe_set rd i
                (Array.unsafe_get ra i *. Array.unsafe_get rb i)
            done
        | "arith.divf" ->
          fun _ _ ->
            for i = 0 to w - 1 do
              Array.unsafe_set rd i
                (Array.unsafe_get ra i /. Array.unsafe_get rb i)
            done
        | name ->
          let f = binary_fn name in
          fun _ _ ->
            for i = 0 to w - 1 do
              Array.unsafe_set rd i
                (f (Array.unsafe_get ra i) (Array.unsafe_get rb i))
            done)
    in
    let fns = Array.map bind_instr ex.e_code in
    let nf = Array.length fns in
    let out = regs.(ex.e_out) in
    fun ivs base ->
      for j = 0 to nf - 1 do
        (Array.unsafe_get fns j) ivs base
      done;
      let ob = base + od in
      if si = 1 then
        for i = 0 to w - 1 do
          A1.unsafe_set dd (ob + i) (Array.unsafe_get out i)
        done
      else
        for i = 0 to w - 1 do
          A1.unsafe_set dd (ob + (i * si)) (Array.unsafe_get out i)
        done

let bind_stmt ~bufs ~scalars ~strides ~w ~si ~inner_level ~inner_lb =
  function
  | V_copy c -> bind_copy ~bufs ~strides ~w ~si c
  | V_wsum ws -> bind_wsum ~bufs ~scalars ~strides ~w ~si ws
  | V_expr ex ->
    bind_expr ~bufs ~scalars ~strides ~w ~si ~inner_level ~inner_lb ex

(* -------- nest driver: tiles over rows, parallel prefix -------- *)

let run_vnest vn ?pool ~(bufs : Memref_rt.t array) ~scalars () =
  let nest = vn.v_nest in
  let strides = Kc.check_buffers bufs in
  let loops = Array.of_list nest.Kc.n_loops in
  let depth = Array.length loops in
  let extent (l : Kc.loop_spec) = l.Kc.l_ub - l.Kc.l_lb in
  if Array.exists (fun l -> extent l <= 0) loops then ()
  else begin
    validate_nest ~strides ~loops ~bufs nest;
    let inner = loops.(depth - 1) in
    let w = extent inner in
    let si = strides.(inner.Kc.l_dim) in
    let outers = Array.sub loops 0 (depth - 1) in
    let npar_levels =
      let n = ref 0 in
      (try
         Array.iter
           (fun (l : Kc.loop_spec) ->
             if l.Kc.l_parallel then incr n else raise Exit)
           outers
       with Exit -> ());
      !n
    in
    let par = Array.sub outers 0 npar_levels in
    let seq = Array.sub outers npar_levels (Array.length outers - npar_levels)
    in
    let npar = Array.fold_left (fun a l -> a * extent l) 1 par in
    let nseq = Array.fold_left (fun a l -> a * extent l) 1 seq in
    let tile =
      match nest.Kc.n_tile with
      | t :: _ when t > 0 -> t
      | _ ->
        default_tile_rows ~row_bytes:(8 * w) ~arrays:(Array.length bufs)
    in
    let tile = max 1 (min tile nseq) in
    let makes =
      Array.map
        (bind_stmt ~bufs ~scalars ~strides ~w ~si
           ~inner_level:inner.Kc.l_level ~inner_lb:inner.Kc.l_lb)
        vn.v_stmts
    in
    (* decode a flat lexicographic index over [lvls] into absolute ivs
       (written into [ivs]) and the summed base offset contribution *)
    let decode lvls flat (ivs : int array) =
      let base = ref 0 and rem = ref flat in
      for i = Array.length lvls - 1 downto 0 do
        let l : Kc.loop_spec = Array.unsafe_get lvls i in
        let r = extent l in
        let iv = l.Kc.l_lb + (!rem mod r) in
        rem := !rem / r;
        Array.unsafe_set ivs l.Kc.l_level iv;
        base := !base + (iv * strides.(l.Kc.l_dim))
      done;
      !base
    in
    let inner_base = inner.Kc.l_lb * si in
    let ntiles = (nseq + tile - 1) / tile in
    (* Tile loop outermost, parallel index innermost within a tile: the
       rows of a tile are revisited across adjacent parallel indices
       while still hot. Reordering across parallel indices is always
       legal; the sequential row order within each parallel index is
       preserved (tiles ascend, rows ascend within a tile). *)
    let do_range plo phi =
      let fns = Array.map (fun m -> m ()) makes in
      let nf = Array.length fns in
      let ivs = Array.make depth 0 in
      ivs.(depth - 1) <- inner.Kc.l_lb;
      for t = 0 to ntiles - 1 do
        Obs.incr c_tiles;
        let slo = t * tile and shi = min nseq ((t + 1) * tile) in
        for p = plo to phi - 1 do
          let pbase = decode par p ivs in
          for s = slo to shi - 1 do
            let base = pbase + decode seq s ivs + inner_base in
            for j = 0 to nf - 1 do
              (Array.unsafe_get fns j) ivs base
            done
          done
        done;
        Obs.add c_rows ((shi - slo) * (phi - plo))
      done
    in
    match pool with
    | Some pool when npar_levels > 0 && npar > 1 ->
      Domain_pool.parallel_for pool ~lo:0 ~hi:npar do_range
    | _ -> do_range 0 npar
  end

let run_compiled ?pool ~bufs ~scalars cn =
  match cn with
  | Vec vn -> (
    try run_vnest vn ?pool ~bufs ~scalars () with
    | Bind_fallback _ ->
      Obs.incr c_fallbacks;
      Kc.run_nest vn.v_nest ?pool ~bufs ~scalars ())
  | Scalar (nest, _) -> Kc.run_nest nest ?pool ~bufs ~scalars ()

let run plan ?pool ~bufs ~scalars () =
  List.iter (run_compiled ?pool ~bufs ~scalars) plan.p_nests

(* Single-nest entry point for engines that interleave their own nests
   with vector-executed ones (the native JIT's per-nest fallback). *)
let run_nest plan index ?pool ~bufs ~scalars () =
  run_compiled ?pool ~bufs ~scalars (List.nth plan.p_nests index)

let spec plan = plan.p_spec

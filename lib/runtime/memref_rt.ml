(* Runtime buffers backing FIR arrays and memrefs.

   All array data lives in float64 Bigarrays with explicit strides; FIR
   arrays and the memrefs derived from them are column-major (dimension 0
   contiguous), matching Fortran. Integer and logical array elements are
   stored as floats (exact for |n| < 2^53) — a simulator simplification
   recorded in DESIGN.md. *)

type t = {
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  dims : int array;
  strides : int array;
  (* unique id used by the GPU/MPI simulators to track residency *)
  buf_id : int;
}

let next_id =
  let c = ref 0 in
  fun () ->
    incr c;
    !c

let column_major_strides dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = 1 to n - 1 do
    strides.(i) <- strides.(i - 1) * dims.(i - 1)
  done;
  strides

let size t = Array.fold_left ( * ) 1 t.dims

let bytes t = 8 * size t

(* ---- storage arena ----

   Retired data arrays keyed by exact element count, recycled into
   later [create] calls of the same size. A buffer's storage is
   recycled when its record is collected: the record is the only
   durable path to the data (engines extract [t.data] only transiently,
   while [t] is live), so an unreachable record means unreachable
   storage. Recycled arrays are zero-filled before reuse, exactly like
   fresh ones — a pooled create is indistinguishable from a cold one.

   Why this matters: re-running a linked artifact re-allocates every
   program grid, and grids above glibc's mmap threshold each cost an
   mmap + munmap + first-touch fault storm per run. Under sustained
   re-runs that churn dominates short programs; recycling pins a small
   stable arena instead. Only grids are pooled (>= 4096 elements) —
   scalar temporaries are cheap and would bloat the size-class table.

   Finalisers may fire at any allocation point, including inside the
   arena's own critical sections, so both paths take the lock with
   [try_lock] and fall back to the plain allocator/free path when it
   is unavailable — dropping a recyclable array is always correct. *)

type data = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let arena : (int, data list) Hashtbl.t = Hashtbl.create 16
let arena_lock = Mutex.create ()
let arena_min_elems = 4096
let arena_class_max = 8
let arena_max_bytes = 64 * 1024 * 1024
let arena_bytes = ref 0
let arena_hit_count = ref 0
let arena_retire_count = ref 0

let arena_retire (data : data) =
  let n = Bigarray.Array1.dim data in
  if n >= arena_min_elems && Mutex.try_lock arena_lock then begin
    let free = Option.value (Hashtbl.find_opt arena n) ~default:[] in
    if List.length free < arena_class_max
       && !arena_bytes + (8 * n) <= arena_max_bytes
    then begin
      Hashtbl.replace arena n (data :: free);
      arena_bytes := !arena_bytes + (8 * n);
      incr arena_retire_count
    end;
    Mutex.unlock arena_lock
  end

let arena_take n =
  if n < arena_min_elems || not (Mutex.try_lock arena_lock) then None
  else begin
    let r =
      match Hashtbl.find_opt arena n with
      | Some (d :: rest) ->
        Hashtbl.replace arena n rest;
        arena_bytes := !arena_bytes - (8 * n);
        incr arena_hit_count;
        Some d
      | _ -> None
    in
    Mutex.unlock arena_lock;
    r
  end

let arena_stats () = (!arena_hit_count, !arena_retire_count)

let create dims =
  let dims = Array.of_list dims in
  let total = max (Array.fold_left ( * ) 1 dims) 1 in
  let data =
    match arena_take total with
    | Some d -> d
    | None ->
      Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout total
  in
  Bigarray.Array1.fill data 0.0;
  let t = { data; dims; strides = column_major_strides dims;
            buf_id = next_id () } in
  if total >= arena_min_elems then
    Gc.finalise (fun t -> arena_retire t.data) t;
  t

let scalar () = create [ 1 ]

let rank t = Array.length t.dims

let offset t (indices : int array) =
  let off = ref 0 in
  for i = 0 to Array.length indices - 1 do
    off := !off + (indices.(i) * t.strides.(i))
  done;
  !off

let get t indices = Bigarray.Array1.get t.data (offset t indices)

let set t indices v = Bigarray.Array1.set t.data (offset t indices) v

let get_flat t i = Bigarray.Array1.get t.data i
let set_flat t i v = Bigarray.Array1.set t.data i v

let fill t v = Bigarray.Array1.fill t.data v

let copy_into ~src ~dst =
  if size src <> size dst then invalid_arg "Memref_rt.copy_into: size";
  Bigarray.Array1.blit src.data dst.data

let clone t =
  let t' = create (Array.to_list t.dims) in
  Bigarray.Array1.blit t.data t'.data;
  t'

(* Initialise with a function of the flat index (deterministic test data). *)
let init t f =
  for i = 0 to size t - 1 do
    set_flat t i (f i)
  done

(* max |a - b| over all elements *)
let max_abs_diff a b =
  if size a <> size b then invalid_arg "Memref_rt.max_abs_diff: size";
  let m = ref 0.0 in
  for i = 0 to size a - 1 do
    let d = Float.abs (get_flat a i -. get_flat b i) in
    if d > !m then m := d
  done;
  !m

let checksum t =
  let acc = ref 0.0 in
  for i = 0 to size t - 1 do
    acc := !acc +. (get_flat t i *. float_of_int ((i mod 97) + 1))
  done;
  !acc

(* Simulated MPI: SPMD execution of R ranks inside one process, with real
   halo buffers and per-rank mailboxes — the functional layer backing the
   distributed-memory experiments (Figure 6). The substrate is
   thread-safe: each destination rank owns a mutex-guarded mailbox, so
   ranks may post and take messages concurrently from pool workers. The
   halo-swap ordering discipline (everything posted in a communication
   phase is receivable in the next) is the caller's job — [Dist_exec]
   separates its phases with a pool-join rendezvous barrier. Timing at
   scale comes from [Fsc_perf.Net_model]; this module is about
   correctness of decomposition + exchange. *)

type message = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_payload : float array;
}

(* One inbox per destination rank. [mb_pending] is kept oldest-first so
   [recv] matches in posting order. *)
type mailbox = {
  mb_mutex : Mutex.t;
  mutable mb_pending : message list;
}

type t = {
  nranks : int;
  boxes : mailbox array;
  total_messages : int Atomic.t;
  total_bytes : int Atomic.t;
}

let create nranks =
  if nranks < 1 then invalid_arg "Mpi_sim.create: nranks must be >= 1";
  { nranks;
    boxes =
      Array.init nranks (fun _ ->
          { mb_mutex = Mutex.create (); mb_pending = [] });
    total_messages = Atomic.make 0;
    total_bytes = Atomic.make 0 }

let nranks t = t.nranks
let messages t = Atomic.get t.total_messages
let bytes t = Atomic.get t.total_bytes

let check_rank t what r =
  if r < 0 || r >= t.nranks then
    invalid_arg
      (Printf.sprintf "Mpi_sim.%s: rank %d out of range 0..%d" what r
         (t.nranks - 1))

let with_box t dst f =
  let box = t.boxes.(dst) in
  Mutex.lock box.mb_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock box.mb_mutex) (fun () -> f box)

(* Both endpoints are validated: a negative or out-of-range *source*
   would silently poison the mailbox and only surface as a mystifying
   recv miss on some other rank. *)
let send t ~src ~dst ~tag payload =
  check_rank t "send src" src;
  check_rank t "send dst" dst;
  with_box t dst (fun box ->
      box.mb_pending <-
        box.mb_pending
        @ [ { m_src = src; m_dst = dst; m_tag = tag; m_payload = payload } ]);
  ignore (Atomic.fetch_and_add t.total_messages 1);
  ignore (Atomic.fetch_and_add t.total_bytes (8 * Array.length payload))

let triple_to_string m =
  Printf.sprintf "%d->%d tag %d (%d cells)" m.m_src m.m_dst m.m_tag
    (Array.length m.m_payload)

let pending t =
  Array.to_list t.boxes
  |> List.concat_map (fun box ->
         Mutex.lock box.mb_mutex;
         Fun.protect
           ~finally:(fun () -> Mutex.unlock box.mb_mutex)
           (fun () ->
             List.map (fun m -> (m.m_src, m.m_dst, m.m_tag)) box.mb_pending))

let recv t ~src ~dst ~tag =
  check_rank t "recv src" src;
  check_rank t "recv dst" dst;
  with_box t dst (fun box ->
      let rec pick acc = function
        | [] ->
          (* a miss names what *is* queued for this rank, so a mismatched
             tag or a skipped exchange is diagnosable from the error *)
          let queued =
            match box.mb_pending with
            | [] -> "mailbox empty"
            | ms ->
              "pending: "
              ^ String.concat ", " (List.map triple_to_string ms)
          in
          invalid_arg
            (Printf.sprintf "Mpi_sim.recv: no message %d->%d tag %d (%s)"
               src dst tag queued)
        | m :: rest ->
          if m.m_src = src && m.m_dst = dst && m.m_tag = tag then begin
            box.mb_pending <- List.rev_append acc rest;
            m.m_payload
          end
          else pick (m :: acc) rest
      in
      pick [] box.mb_pending)

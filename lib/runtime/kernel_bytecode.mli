(** Row-at-a-time vectorised execution engine for compiled stencil
    kernels — the tier above {!Kernel_compile}'s closure JIT.

    Each nest's statements compile once into either a fused fast path
    (weighted-sum rows, copy rows) or a small register bytecode whose
    instructions each run as one tight loop over the innermost row.
    Outer sequential dimensions execute in cache tiles of consecutive
    rows (sized by the ["cpu_tile"] annotation, falling back to an L2
    heuristic), and the leading parallel loop levels are flattened and
    work-shared over the {!Domain_pool}.

    Results are bitwise identical to the closure engine: no float
    reassociation (only syntactically left-leaning add/sub chains are
    flattened, accumulated in source order), and nests whose statements
    read a buffer the nest writes — where row batching could change the
    read/write interleaving — fall back to the closure engine, as do
    unsupported shapes (compile time) and accesses provably outside a
    buffer (bind time). Fallbacks are visible per nest via {!summary} /
    {!fallbacks} and counted on the ["rt.vector.fallbacks"] Obs
    counter; execution volume appears on ["rt.vector.rows"] and
    ["rt.vector.tiles"]. *)

module Kc = Kernel_compile

(** A compiled execution plan for one kernel (every nest, in order). *)
type plan

(** How one nest compiled. [N_vector kinds] lists the per-statement row
    shapes (["copy"], ["wsum"] or ["expr"]); [N_scalar reason] means the
    nest runs on the closure engine. *)
type nest_compile =
  | N_vector of string list
  | N_scalar of string

(** Compile every nest of a kernel spec. Never fails: unsupported nests
    become closure-engine fallbacks recorded in the plan. *)
val compile_spec : Kc.spec -> plan

(** The spec this plan was compiled from. *)
val spec : plan -> Kc.spec

(** Per-nest compilation outcome, in nest order. *)
val summary : plan -> nest_compile list

(** [(nest index, reason)] for every nest that fell back at compile
    time. *)
val fallbacks : plan -> (int * string) list

val nest_count : plan -> int
val vectorised_nests : plan -> int

(** Execute the whole kernel: every nest in order, vectorised where the
    plan allows and on the closure engine otherwise. Parallel nests are
    work-shared over [pool] when given.
    @raise Kc.Fallback on mismatched buffer extents (as {!Kc.run}). *)
val run :
  plan ->
  ?pool:Domain_pool.t ->
  bufs:Memref_rt.t array ->
  scalars:float array ->
  unit ->
  unit

(** Execute only the nest at [index] (0-based, nest order), with the
    same per-nest vectorised/closure selection and bind-time fallback
    as {!run}. For engines that interleave their own nest execution
    with vector-executed ones — the native JIT runs its emitted nests
    itself and routes skipped ones here.
    @raise Kc.Fallback as {!run}; [Failure] if [index] is out of
    range. *)
val run_nest :
  plan ->
  int ->
  ?pool:Domain_pool.t ->
  bufs:Memref_rt.t array ->
  scalars:float array ->
  unit ->
  unit

(** Default rows-per-tile heuristic used when a nest carries no
    ["cpu_tile"] annotation (half of a nominal L2 across [arrays]
    buffers of [row_bytes]-byte rows). Exposed for tests. *)
val default_tile_rows : row_bytes:int -> arrays:int -> int

(* Hand-optimised native kernels: the substitute for the proprietary Cray
   Compilation Environment (CPU baseline) and the Nvidia-compiled OpenACC
   code (GPU baseline). A mature vendor compiler's main advantage over
   our closure-JIT is full native-code generation with vectorisation;
   hand-written OCaml loops over the raw Bigarray data play that role.

   Numerics deliberately mirror the benchmark Fortran expression order
   exactly so differential tests can require bit-identical grids. *)

module A1 = Bigarray.Array1

type grid3 = {
  g_buf : Memref_rt.t;
  g_nx : int; (* interior extents; allocation is (nx+2)(ny+2)(nz+2) *)
  g_ny : int;
  g_nz : int;
}

let grid3 ~nx ~ny ~nz =
  { g_buf = Memref_rt.create [ nx + 2; ny + 2; nz + 2 ]; g_nx = nx;
    g_ny = ny; g_nz = nz }

(* column-major strides of a (nx+2)(ny+2)(nz+2) grid *)
let strides g =
  (1, g.g_nx + 2, (g.g_nx + 2) * (g.g_ny + 2))

(* The Gauss-Seidel benchmark initial condition; mirrors the Fortran in
   [Fsc_driver.Benchmarks.gauss_seidel] exactly, including evaluation
   order: 0.01 i^2 + 0.02 j k + 0.03 k (non-harmonic so the solver does
   real work, with a cross term so index mistakes cannot cancel). *)
let gs_init i j k =
  (0.01 *. float_of_int i *. float_of_int i)
  +. (0.02 *. float_of_int j *. float_of_int k)
  +. (0.03 *. float_of_int k)

let init_linear g =
  let d = g.g_buf.Memref_rt.data in
  let _, sy, sz = strides g in
  for k = 0 to g.g_nz + 1 do
    for j = 0 to g.g_ny + 1 do
      let row = (j * sy) + (k * sz) in
      for i = 0 to g.g_nx + 1 do
        A1.unsafe_set d (row + i) (gs_init i j k)
      done
    done
  done

(* ---- Gauss-Seidel (7-point, Jacobi-style sweep + copy-back) ---- *)

(* unew <- average of u's six orthogonal neighbours, interior only *)
let gs3d_sweep ?pool ~u ~unew () =
  let du = u.g_buf.Memref_rt.data and dn = unew.g_buf.Memref_rt.data in
  let _, sy, sz = strides u in
  let nx = u.g_nx and ny = u.g_ny and nz = u.g_nz in
  let do_k k =
    for j = 1 to ny do
      let row = (j * sy) + (k * sz) in
      for i = row + 1 to row + nx do
        (* mirrors (u(i-1)+u(i+1)+u(j-1)+u(j+1)+u(k-1)+u(k+1)) / 6.0d0 *)
        let s =
          A1.unsafe_get du (i - 1)
          +. A1.unsafe_get du (i + 1)
          +. A1.unsafe_get du (i - sy)
          +. A1.unsafe_get du (i + sy)
          +. A1.unsafe_get du (i - sz)
          +. A1.unsafe_get du (i + sz)
        in
        A1.unsafe_set dn i (s /. 6.0)
      done
    done
  in
  match pool with
  | Some pool ->
    Domain_pool.parallel_for pool ~lo:1 ~hi:(nz + 1) (fun lo hi ->
        for k = lo to hi - 1 do
          do_k k
        done)
  | None ->
    for k = 1 to nz do
      do_k k
    done

(* u <- unew on the interior *)
let gs3d_copyback ?pool ~u ~unew () =
  let du = u.g_buf.Memref_rt.data and dn = unew.g_buf.Memref_rt.data in
  let _, sy, sz = strides u in
  let nx = u.g_nx and ny = u.g_ny and nz = u.g_nz in
  let do_k k =
    for j = 1 to ny do
      let row = (j * sy) + (k * sz) in
      for i = row + 1 to row + nx do
        A1.unsafe_set du i (A1.unsafe_get dn i)
      done
    done
  in
  match pool with
  | Some pool ->
    Domain_pool.parallel_for pool ~lo:1 ~hi:(nz + 1) (fun lo hi ->
        for k = lo to hi - 1 do
          do_k k
        done)
  | None ->
    for k = 1 to nz do
      do_k k
    done

(* Windowed variants for distributed per-rank execution: sweep only
   j in [jlo..jhi], k in [klo..khi] of the local interior. No pool —
   these run inside pool workers (one rank per worker), and nesting
   pool use would deadlock. *)
let gs3d_sweep_in ~u ~unew ~jlo ~jhi ~klo ~khi () =
  let du = u.g_buf.Memref_rt.data and dn = unew.g_buf.Memref_rt.data in
  let _, sy, sz = strides u in
  let nx = u.g_nx in
  for k = klo to khi do
    for j = jlo to jhi do
      let row = (j * sy) + (k * sz) in
      for i = row + 1 to row + nx do
        let s =
          A1.unsafe_get du (i - 1)
          +. A1.unsafe_get du (i + 1)
          +. A1.unsafe_get du (i - sy)
          +. A1.unsafe_get du (i + sy)
          +. A1.unsafe_get du (i - sz)
          +. A1.unsafe_get du (i + sz)
        in
        A1.unsafe_set dn i (s /. 6.0)
      done
    done
  done

let gs3d_copyback_in ~u ~unew ~jlo ~jhi ~klo ~khi () =
  let du = u.g_buf.Memref_rt.data and dn = unew.g_buf.Memref_rt.data in
  let _, sy, sz = strides u in
  let nx = u.g_nx in
  for k = klo to khi do
    for j = jlo to jhi do
      let row = (j * sy) + (k * sz) in
      for i = row + 1 to row + nx do
        A1.unsafe_set du i (A1.unsafe_get dn i)
      done
    done
  done

let gs3d_run ?pool ~u ~unew ~iters () =
  for _ = 1 to iters do
    gs3d_sweep ?pool ~u ~unew ();
    gs3d_copyback ?pool ~u ~unew ()
  done

(* ---- Piacsek-Williams advection (three fused stencils) ---- *)

(* su/sv/sw <- PW advection source terms of u/v/w; mirrors the Fortran
   expression structure in [Fsc_driver.Benchmarks.pw_advection]. *)
let pw_advect ?pool ~u ~v ~w ~su ~sv ~sw ~rdx ~rdy ~rdz () =
  let du = u.g_buf.Memref_rt.data
  and dv = v.g_buf.Memref_rt.data
  and dw = w.g_buf.Memref_rt.data
  and dsu = su.g_buf.Memref_rt.data
  and dsv = sv.g_buf.Memref_rt.data
  and dsw = sw.g_buf.Memref_rt.data in
  let _, sy, sz = strides u in
  let nx = u.g_nx and ny = u.g_ny and nz = u.g_nz in
  let hx = 0.5 *. rdx and hy = 0.5 *. rdy and hz = 0.5 *. rdz in
  let advect d df i =
    (* 0.5*rdx*( f(i-1)*(d(i)+d(i-1)) - f(i+1)*(d(i)+d(i+1)) ) + y, z *)
    let c = A1.unsafe_get d i in
    (hx
     *. ((A1.unsafe_get df (i - 1) *. (c +. A1.unsafe_get d (i - 1)))
        -. (A1.unsafe_get df (i + 1) *. (c +. A1.unsafe_get d (i + 1)))))
    +. (hy
        *. ((A1.unsafe_get dv (i - sy) *. (c +. A1.unsafe_get d (i - sy)))
           -. (A1.unsafe_get dv (i + sy) *. (c +. A1.unsafe_get d (i + sy)))))
    +. (hz
        *. ((A1.unsafe_get dw (i - sz) *. (c +. A1.unsafe_get d (i - sz)))
           -. (A1.unsafe_get dw (i + sz) *. (c +. A1.unsafe_get d (i + sz)))))
  in
  let do_k k =
    for j = 1 to ny do
      let row = (j * sy) + (k * sz) in
      for i = row + 1 to row + nx do
        A1.unsafe_set dsu i (advect du du i);
        A1.unsafe_set dsv i (advect dv du i);
        A1.unsafe_set dsw i (advect dw du i)
      done
    done
  in
  match pool with
  | Some pool ->
    Domain_pool.parallel_for pool ~lo:1 ~hi:(nz + 1) (fun lo hi ->
        for k = lo to hi - 1 do
          do_k k
        done)
  | None ->
    for k = 1 to nz do
      do_k k
    done

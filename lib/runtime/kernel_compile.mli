(** Closure-compiling "JIT" for lowered stencil kernels.

    The interpreter executes any IR but pays tree-walking overhead per
    operation; this module compiles the restricted shape produced by the
    stencil lowering — perfect scf/omp loop nests over memref loads at
    constant offsets, pure float arithmetic, memref stores — into nested
    OCaml closures over the raw Bigarray data with precomputed
    flat-offset deltas. This is the real, measured performance gap behind
    the paper's "Stencil vs Flang only" series: the domain restriction is
    what makes the specialised compilation possible.

    A kernel function may contain several sequential loop nests (e.g. the
    Gauss-Seidel sweep plus its copy-back); each compiles independently
    and they run in order. Kernels outside the supported shape report a
    reason and run on the interpreter instead. *)

open Fsc_ir

type index_form =
  | Iv of int * int  (** loop level, constant offset *)
  | Cst of int

type fexpr =
  | F_load of int * index_form list  (** buffer arg index, per-dim index *)
  | F_scalar of int  (** scalar arg index *)
  | F_const of float
  | F_ivf of int * int  (** float of (loop iv + offset): stencil.index *)
  | F_unary of string * fexpr
  | F_binary of string * fexpr * fexpr

type store_stmt = {
  st_buf : int;
  st_index : index_form list;
  st_expr : fexpr;
}

type loop_spec = {
  l_level : int;  (** 0 = outermost within its nest *)
  l_dim : int;  (** buffer dimension this level walks *)
  l_lb : int;
  l_ub : int;  (** exclusive *)
  l_parallel : bool;
  l_vector_width : int;  (** > 1 on specialised (unroll + unchecked) *)
}

type nest = {
  n_loops : loop_spec list;  (** outermost first *)
  n_stores : store_stmt list;
  n_uses_iv : bool;  (** body reads induction values *)
  n_flops_per_cell : int;
  n_loads_per_cell : int;
  n_tile : int list;
      (** rows-per-cache-tile hint from the ["cpu_tile"] annotation set by
          {!Fsc_lowering.Loop_tiling.annotate_cpu}; [[]] when absent *)
}

type spec = {
  k_nests : nest list;
  k_num_bufs : int;
  k_num_scalars : int;
}

(** Raised by {!analyze} (and by {!run} on buffer-shape violations);
    carries the reason shown in diagnostics. *)
exception Fallback of string

(** Analyse a lowered kernel [func.func].
    @raise Fallback when the kernel is outside the supported shape. *)
val analyze : Op.op -> spec

(** Non-raising wrapper around {!analyze}. *)
val try_analyze : Op.op -> (spec, string) result

(** Is this nest's innermost loop specialised (enabling bounds-check-free
    accesses and unrolling)? *)
val nest_specialized : nest -> bool

(** Shared helpers for alternative execution engines
    ({!Kernel_bytecode}): validate that all buffers share extents and
    return their stride vector.
    @raise Fallback on mismatched buffer extents. *)
val check_buffers : Memref_rt.t array -> int array

(** Constant flat-offset delta of an index-form list under [strides]
    (the per-dimension constant offsets; induction contributions are
    added separately from the loop bases). *)
val delta_of : int array -> index_form list -> int

(** Execute one nest. *)
val run_nest :
  nest ->
  ?pool:Domain_pool.t ->
  bufs:Memref_rt.t array ->
  scalars:float array ->
  unit ->
  unit

(** Execute the whole kernel: every nest in order. All buffers must share
    extents (one stencil program's index space).
    @raise Fallback on mismatched buffer extents. *)
val run :
  spec ->
  ?pool:Domain_pool.t ->
  bufs:Memref_rt.t array ->
  scalars:float array ->
  unit ->
  unit

(** Cells written / flops / memory accesses per invocation (summed over
    nests) — inputs to the GPU simulator's roofline accounting. *)
val cells : spec -> int

val flops : spec -> int
val loads : spec -> int

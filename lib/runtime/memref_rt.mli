(** Runtime buffers backing FIR arrays and memrefs.

    All array data lives in float64 Bigarrays with explicit strides; FIR
    arrays (and the memrefs derived from them) are column-major
    (dimension 0 contiguous), matching Fortran. Integer and logical
    array elements are stored as floats (exact for |n| < 2^53) — a
    simulator simplification recorded in DESIGN.md. *)

type t = {
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  dims : int array;
  strides : int array;  (** column-major: [strides.(0) = 1] *)
  buf_id : int;  (** unique id; the GPU/MPI simulators key residency on it *)
}

val column_major_strides : int array -> int array

(** Total element count / byte size. *)
val size : t -> int

val bytes : t -> int

(** Zero-filled buffer with the given extents. Grid-sized buffers
    (>= 4096 elements) draw their storage from a recycling arena when a
    same-sized buffer has been collected — re-running a linked artifact
    then reuses a stable set of pages instead of paying an
    mmap/munmap/fault cycle per run. Pooled or fresh, the buffer is
    zero-filled and carries a fresh [buf_id]. *)
val create : int list -> t

(** Cumulative [(hits, retires)] of the storage arena: how many creates
    were served from recycled storage, and how many collected buffers
    donated theirs. Monotone process-wide counters (tests diff them). *)
val arena_stats : unit -> int * int

(** A 1-element buffer. *)
val scalar : unit -> t

val rank : t -> int

(** Flat offset of a multi-dimensional index. *)
val offset : t -> int array -> int

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit
val fill : t -> float -> unit

(** @raise Invalid_argument on size mismatch. *)
val copy_into : src:t -> dst:t -> unit

val clone : t -> t

(** Initialise from a function of the flat index (deterministic data). *)
val init : t -> (int -> float) -> unit

(** max |a - b| over all elements; the differential tests' metric. *)
val max_abs_diff : t -> t -> float

(** Position-weighted checksum (orders of elements matter). *)
val checksum : t -> float

(* Closure-compiling "JIT" for lowered stencil kernels.

   The interpreter executes any IR but pays tree-walking overhead per
   operation; this module compiles the restricted shape produced by the
   stencil lowering — perfect scf loop nests over memref loads at
   constant offsets, pure float arithmetic, and memref stores — into
   nested OCaml closures operating directly on the Bigarray data with
   precomputed flat-offset deltas. This is the real, measured performance
   gap behind the paper's "Stencil vs Flang only" series: the domain
   restriction (everything is a stencil) is what makes the specialised
   compilation possible.

   A kernel function may contain several sequential loop nests (e.g. the
   Gauss-Seidel sweep followed by its copy-back when both live in one
   extracted section); each nest compiles independently and they run in
   order. Kernels outside the supported shape report an error and run on
   the interpreter instead. *)

open Fsc_ir

type index_form =
  | Iv of int * int (* loop level, constant offset *)
  | Cst of int

type fexpr =
  | F_load of int * index_form list (* buffer arg index, per-dim index *)
  | F_scalar of int                 (* scalar arg index *)
  | F_const of float
  | F_ivf of int * int              (* float of (loop iv + offset) *)
  | F_unary of string * fexpr
  | F_binary of string * fexpr * fexpr

type store_stmt = {
  st_buf : int;
  st_index : index_form list;
  st_expr : fexpr;
}

type loop_spec = {
  l_level : int;  (* 0 = outermost within its nest *)
  l_dim : int;    (* which buffer dimension this level walks *)
  l_lb : int;
  l_ub : int;     (* exclusive *)
  l_parallel : bool;
  l_vector_width : int;
}

type nest = {
  n_loops : loop_spec list; (* outermost first *)
  n_stores : store_stmt list;
  n_uses_iv : bool;         (* body reads induction values (F_ivf) *)
  n_flops_per_cell : int;
  n_loads_per_cell : int;
  n_tile : int list;        (* cpu_tile annotation: rows per cache tile *)
}

type spec = {
  k_nests : nest list;
  k_num_bufs : int;
  k_num_scalars : int;
}

exception Fallback of string

exception Found_body of Op.block

let fallback fmt = Printf.ksprintf (fun m -> raise (Fallback m)) fmt

(* ------------------------------------------------------------------ *)
(* Analysis: IR -> spec                                                *)
(* ------------------------------------------------------------------ *)

let const_of (v : Op.value) =
  match Op.defining_op v with
  | Some op when op.Op.o_name = "arith.constant" -> (
    match Op.attr op "value" with
    | Some (Attr.Int_a n) -> Some n
    | _ -> None)
  | _ -> None

let const_exn v =
  match const_of v with
  | Some n -> n
  | None -> fallback "loop bound is not a constant"

type arg_class =
  | A_buffer of int
  | A_scalar of int

let classify_args entry =
  let buf_count = ref 0 and scalar_count = ref 0 in
  let arg_class : (int, arg_class) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (a : Op.value) ->
      match Op.value_type a with
      | Types.Llvm_ptr | Types.Llvm_typed_ptr _ | Types.Memref _
      | Types.Fir_llvm_ptr _ ->
        Hashtbl.replace arg_class a.Op.v_id (A_buffer !buf_count);
        incr buf_count
      | t when Types.is_scalar t ->
        Hashtbl.replace arg_class a.Op.v_id (A_scalar !scalar_count);
        incr scalar_count
      | t -> fallback "unsupported argument type %s" (Types.to_string t))
    (Op.block_args entry);
  (arg_class, !buf_count, !scalar_count)

let analyze_nest ~arg_class top_op =
  let loops = ref [] in
  let iv_level : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let add_parallel_levels op =
    let lbs, ubs, _ = Fsc_dialects.Scf.parallel_bounds op in
    let body = Fsc_dialects.Scf.body_block op in
    List.iteri
      (fun i lb ->
        let level = List.length !loops in
        (* prepended (reversed) to stay linear; re-ordered once below *)
        loops :=
          (level, const_exn lb, const_exn (List.nth ubs i), true, 1)
          :: !loops;
        Hashtbl.replace iv_level (Op.block_arg ~index:i body).Op.v_id level)
      lbs;
    body
  in
  let rec descend op =
    match op.Op.o_name with
    | "omp.parallel" ->
      descend_block (List.hd (Op.region op).Op.g_blocks)
    | "scf.parallel" | "omp.wsloop" ->
      descend_block (add_parallel_levels op)
    | "scf.for" ->
      let lb = const_exn (Op.operand ~index:0 op) in
      let ub = const_exn (Op.operand ~index:1 op) in
      let step = const_exn (Op.operand ~index:2 op) in
      if step <> 1 then fallback "non-unit loop step";
      let width =
        match Op.attr op "vector_width" with
        | Some (Attr.Int_a w) when Op.has_attr op "specialized" -> w
        | _ -> 1
      in
      let body = Fsc_dialects.Scf.body_block op in
      let level = List.length !loops in
      loops := (level, lb, ub, false, width) :: !loops;
      Hashtbl.replace iv_level (Op.block_arg ~index:0 body).Op.v_id level;
      descend_block body
    | name -> fallback "unexpected op %s in loop nest" name
  and descend_block block =
    let interesting =
      List.filter
        (fun op ->
          not
            (List.mem op.Op.o_name
               [ "arith.constant"; "scf.yield"; "omp.yield";
                 "omp.terminator" ]))
        (Op.block_ops block)
    in
    match interesting with
    | [ op ]
      when List.mem op.Op.o_name
             [ "omp.parallel"; "scf.parallel"; "omp.wsloop"; "scf.for" ] ->
      descend op
    | _ -> raise (Found_body block)
  in
  let body_block =
    match descend top_op with
    | () -> fallback "no loop body found"
    | exception Found_body blk -> blk
  in
  if !loops = [] then fallback "no loops";
  (* index analysis over scf induction variables *)
  let rec index_form (v : Op.value) : index_form =
    match Hashtbl.find_opt iv_level v.Op.v_id with
    | Some l -> Iv (l, 0)
    | None -> (
      match Op.defining_op v with
      | Some op when op.Op.o_name = "arith.constant" -> Cst (const_exn v)
      | Some op when op.Op.o_name = "arith.index_cast" ->
        index_form (Op.operand op)
      | Some op when op.Op.o_name = "arith.addi" -> (
        match
          (index_form (Op.operand ~index:0 op),
           index_form (Op.operand ~index:1 op))
        with
        | Iv (l, c), Cst k | Cst k, Iv (l, c) -> Iv (l, c + k)
        | Cst a, Cst b -> Cst (a + b)
        | _ -> fallback "non-affine index")
      | Some op when op.Op.o_name = "arith.subi" -> (
        match
          (index_form (Op.operand ~index:0 op),
           index_form (Op.operand ~index:1 op))
        with
        | Iv (l, c), Cst k -> Iv (l, c - k)
        | Cst a, Cst b -> Cst (a - b)
        | _ -> fallback "non-affine index")
      | _ -> fallback "unsupported index expression")
  in
  let buffer_of (v : Op.value) =
    let rec go (v : Op.value) =
      match Hashtbl.find_opt arg_class v.Op.v_id with
      | Some (A_buffer i) -> Some i
      | Some (A_scalar _) -> None
      | None -> (
        match Op.defining_op v with
        | Some op
          when List.mem op.Op.o_name
                 [ "builtin.unrealized_conversion_cast"; "memref.cast";
                   "stencil.external_load"; "stencil.load" ] ->
          go (Op.operand op)
        | _ -> None)
    in
    go v
  in
  let scalar_of (v : Op.value) =
    match Hashtbl.find_opt arg_class v.Op.v_id with
    | Some (A_scalar i) -> Some i
    | _ -> None
  in
  let flops = ref 0 and loads = ref 0 and uses_iv = ref false in
  let rec expr_of (v : Op.value) : fexpr =
    match scalar_of v with
    | Some i -> F_scalar i
    | None -> (
      match Op.defining_op v with
      | None -> fallback "free value in expression"
      | Some op -> (
        match op.Op.o_name with
        | "arith.constant" -> (
          match Op.attr_exn op "value" with
          | Attr.Float_a f -> F_const f
          | Attr.Int_a n -> F_const (float_of_int n)
          | _ -> fallback "constant kind")
        | "memref.load" -> (
          match buffer_of (Op.operand ~index:0 op) with
          | Some bi ->
            incr loads;
            let idxs = List.map index_form (List.tl (Op.operands op)) in
            F_load (bi, idxs)
          | None -> fallback "load from non-argument buffer")
        | "arith.sitofp" -> (
          (* float of an induction-variable expression (stencil.index) *)
          match index_form (Op.operand op) with
          | Iv (l, c) ->
            uses_iv := true;
            F_ivf (l, c)
          | Cst c -> F_const (float_of_int c))
        | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
        | "arith.maximumf" | "arith.minimumf" ->
          incr flops;
          F_binary
            (op.Op.o_name,
             expr_of (Op.operand ~index:0 op),
             expr_of (Op.operand ~index:1 op))
        | "arith.negf" ->
          incr flops;
          F_unary ("arith.negf", expr_of (Op.operand op))
        | "arith.extf" | "arith.truncf" -> expr_of (Op.operand op)
        | name when Dialect.dialect_of_op_name name = "math" -> (
          incr flops;
          match Op.num_operands op with
          | 1 -> F_unary (name, expr_of (Op.operand op))
          | 2 ->
            F_binary
              (name,
               expr_of (Op.operand ~index:0 op),
               expr_of (Op.operand ~index:1 op))
          | _ -> fallback "math arity")
        | name -> fallback "unsupported op %s in expression" name))
  in
  let stores = ref [] in
  List.iter
    (fun op ->
      match op.Op.o_name with
      | "memref.store" -> (
        match buffer_of (Op.operand ~index:1 op) with
        | Some bi ->
          let idxs =
            List.map index_form
              (List.filteri (fun i _ -> i >= 2) (Op.operands op))
          in
          (* prepended (reversed): appending with [@] per statement is
             quadratic in the statement count; re-ordered once below *)
          stores :=
            { st_buf = bi; st_index = idxs;
              st_expr = expr_of (Op.operand ~index:0 op) }
            :: !stores
        | None -> fallback "store to non-argument buffer")
      | "memref.load" | "arith.constant" | "scf.yield" -> ()
      | name
        when Dialect.dialect_of_op_name name = "arith"
             || Dialect.dialect_of_op_name name = "math" ->
        ()
      | name -> fallback "unsupported op %s in body" name)
    (Op.block_ops body_block);
  let stores = List.rev !stores in
  if stores = [] then fallback "nest has no stores";
  let depth = List.length !loops in
  let level_dim = Array.make depth (-1) in
  List.iter
    (fun st ->
      List.iteri
        (fun d idx ->
          match idx with
          | Iv (l, _) ->
            if level_dim.(l) >= 0 && level_dim.(l) <> d then
              fallback "inconsistent loop-dimension mapping";
            level_dim.(l) <- d
          | Cst _ -> fallback "constant store index")
        st.st_index)
    stores;
  Array.iteri
    (fun l d -> if d < 0 then fallback "loop level %d unused in stores" l)
    level_dim;
  let loop_specs =
    List.rev_map
      (fun (level, lb, ub, par, width) ->
        { l_level = level; l_dim = level_dim.(level); l_lb = lb; l_ub = ub;
          l_parallel = par; l_vector_width = width })
      !loops
  in
  let tile =
    match Op.attr top_op "cpu_tile" with
    | Some (Attr.Arr_a l) ->
      List.filter_map
        (function Attr.Int_a n -> Some n | _ -> None)
        l
    | Some (Attr.Int_a n) -> [ n ]
    | _ -> []
  in
  { n_loops = loop_specs; n_stores = stores; n_uses_iv = !uses_iv;
    n_flops_per_cell = !flops; n_loads_per_cell = !loads; n_tile = tile }

let analyze func =
  let entry = Fsc_dialects.Func.entry_block func in
  let arg_class, nbufs, nscalars = classify_args entry in
  let nests =
    List.filter_map
      (fun op ->
        match op.Op.o_name with
        | "scf.parallel" | "scf.for" | "omp.parallel" | "omp.wsloop" ->
          Some (analyze_nest ~arg_class op)
        | "builtin.unrealized_conversion_cast" | "memref.cast"
        | "arith.constant" | "func.return" ->
          None
        | name -> fallback "unexpected top-level op %s" name)
      (Op.block_ops entry)
  in
  if nests = [] then fallback "kernel has no loop nests";
  { k_nests = nests; k_num_bufs = nbufs; k_num_scalars = nscalars }

(* ------------------------------------------------------------------ *)
(* Execution: spec -> closures over Bigarray data                      *)
(* ------------------------------------------------------------------ *)

module A1 = Bigarray.Array1

let check_buffers (bufs : Memref_rt.t array) =
  if Array.length bufs = 0 then fallback "no buffers";
  let dims = bufs.(0).Memref_rt.dims in
  Array.iter
    (fun (b : Memref_rt.t) ->
      if b.Memref_rt.dims <> dims then
        fallback "buffers with differing extents")
    bufs;
  bufs.(0).Memref_rt.strides

let delta_of strides idxs =
  List.fold_left
    (fun acc (d, idx) ->
      match idx with
      | Iv (_, c) -> acc + (c * strides.(d))
      | Cst c -> acc + (c * strides.(d)))
    0
    (List.mapi (fun d i -> (d, i)) idxs)

(* [unchecked] accesses use Bigarray's unsafe (bounds-check-free) path;
   it is only enabled for specialised nests, modelling the bounds-check
   elimination / vectorisation a specialised constant-trip loop allows *)
let rec compile_expr ~unchecked bufs scalars strides ivs (e : fexpr) :
    int -> float =
  match e with
  | F_const c -> fun _ -> c
  | F_scalar i ->
    let v = scalars.(i) in
    fun _ -> v
  | F_ivf (l, c) ->
    fun _ -> float_of_int (Array.unsafe_get ivs l + c)
  | F_load (bi, idxs) ->
    let data = bufs.(bi).Memref_rt.data in
    let delta = delta_of strides idxs in
    if unchecked then fun base -> A1.unsafe_get data (base + delta)
    else fun base -> A1.get data (base + delta)
  | F_unary (name, a) -> (
    let fa = compile_expr ~unchecked bufs scalars strides ivs a in
    match name with
    | "arith.negf" -> fun b -> -.fa b
    | "math.sqrt" -> fun b -> Float.sqrt (fa b)
    | "math.absf" -> fun b -> Float.abs (fa b)
    | "math.exp" -> fun b -> Float.exp (fa b)
    | "math.sin" -> fun b -> Float.sin (fa b)
    | "math.cos" -> fun b -> Float.cos (fa b)
    | "math.log" -> fun b -> Float.log (fa b)
    | "math.floor" -> fun b -> Float.floor (fa b)
    | _ ->
      let g = Fsc_dialects.Math.eval_unary name in
      fun b -> g (fa b))
  | F_binary (name, a, c) -> (
    let fa = compile_expr ~unchecked bufs scalars strides ivs a in
    let fc = compile_expr ~unchecked bufs scalars strides ivs c in
    match name with
    | "arith.addf" -> fun b -> fa b +. fc b
    | "arith.subf" -> fun b -> fa b -. fc b
    | "arith.mulf" -> fun b -> fa b *. fc b
    | "arith.divf" -> fun b -> fa b /. fc b
    | "arith.maximumf" -> fun b -> Float.max (fa b) (fc b)
    | "arith.minimumf" -> fun b -> Float.min (fa b) (fc b)
    | "math.powf" -> fun b -> Float.pow (fa b) (fc b)
    | "math.atan2" -> fun b -> Float.atan2 (fa b) (fc b)
    | name -> fallback "binary op %s" name)

(* A nest counts as specialised when its innermost loop carries the
   specialisation annotation (vector_width > 1). *)
let nest_specialized nest =
  match List.rev nest.n_loops with
  | inner :: _ -> inner.l_vector_width > 1
  | [] -> false

let compile_body nest bufs scalars strides ivs : int -> unit =
  let unchecked = nest_specialized nest in
  let stmts =
    List.map
      (fun st ->
        let data = bufs.(st.st_buf).Memref_rt.data in
        let odelta = delta_of strides st.st_index in
        let f =
          compile_expr ~unchecked bufs scalars strides ivs st.st_expr
        in
        if unchecked then
          fun base -> A1.unsafe_set data (base + odelta) (f base)
        else fun base -> A1.set data (base + odelta) (f base))
      nest.n_stores
  in
  match stmts with
  | [ one ] -> one
  | [ a; b ] ->
    fun base ->
      a base;
      b base
  | [ a; b; c ] ->
    fun base ->
      a base;
      b base;
      c base
  | stmts -> fun base -> List.iter (fun s -> s base) stmts

let run_nest nest ?pool ~bufs ~scalars () =
  let strides = check_buffers bufs in
  let ivs = Array.make (List.length nest.n_loops) 0 in
  let track = nest.n_uses_iv in
  let body = compile_body nest bufs scalars strides ivs in
  let rec go loops base =
    match loops with
    | [] -> body base
    | [ l ] when strides.(l.l_dim) = 1 && not track ->
      let w = max 1 l.l_vector_width in
      let lb = l.l_lb and ub = l.l_ub in
      let b = ref (base + lb) in
      if w = 4 then begin
        let main_end = lb + ((ub - lb) / 4 * 4) in
        let i = ref lb in
        while !i < main_end do
          body !b;
          body (!b + 1);
          body (!b + 2);
          body (!b + 3);
          b := !b + 4;
          i := !i + 4
        done;
        while !i < ub do
          body !b;
          incr b;
          incr i
        done
      end
      else
        for _ = lb to ub - 1 do
          body !b;
          incr b
        done
    | l :: rest ->
      let stride = strides.(l.l_dim) in
      for i = l.l_lb to l.l_ub - 1 do
        if track then Array.unsafe_set ivs l.l_level i;
        go rest (base + (i * stride))
      done
  in
  match nest.n_loops with
  | outer :: rest when outer.l_parallel && not track ->
    let stride = strides.(outer.l_dim) in
    let do_range lo hi =
      for i = lo to hi - 1 do
        go rest (i * stride)
      done
    in
    (match pool with
    | Some pool ->
      Domain_pool.parallel_for pool ~lo:outer.l_lb ~hi:outer.l_ub
        (fun lo hi -> do_range lo hi)
    | None -> do_range outer.l_lb outer.l_ub)
  | loops -> go loops 0

let run spec ?pool ~bufs ~scalars () =
  List.iter (fun nest -> run_nest nest ?pool ~bufs ~scalars ()) spec.k_nests

(* Cells written per invocation (sum over nests). *)
let cells spec =
  List.fold_left
    (fun acc nest ->
      acc
      + List.fold_left (fun a l -> a * (l.l_ub - l.l_lb)) 1 nest.n_loops)
    0 spec.k_nests

let flops spec =
  List.fold_left
    (fun acc nest ->
      acc
      + (nest.n_flops_per_cell
        * List.fold_left (fun a l -> a * (l.l_ub - l.l_lb)) 1 nest.n_loops))
    0 spec.k_nests

let loads spec =
  List.fold_left
    (fun acc nest ->
      acc
      + ((nest.n_loads_per_cell + List.length nest.n_stores)
        * List.fold_left (fun a l -> a * (l.l_ub - l.l_lb)) 1 nest.n_loops))
    0 spec.k_nests

let try_analyze func =
  match analyze func with
  | spec -> Ok spec
  | exception Fallback reason -> Error reason

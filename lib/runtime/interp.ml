(* Tree-walking IR interpreter.

   This is the execution substrate for the "Flang only" path (direct FIR
   execution, deliberately naive — Flang without the stencil optimisation)
   and the functional reference for every lowered form (scf, omp, gpu).
   The fast paths live in [Kernel_compile]; benchmark speedups between
   tiers are real measured differences between this interpreter and the
   compiled kernels.

   Cross-module linking: modules are registered into a context by symbol;
   fir.call from the host module resolves into the stencil module's
   functions even though the pointer types differ nominally
   (!fir.llvm_ptr vs !llvm.ptr) — exactly the link-time reconciliation
   the paper relies on. *)

open Fsc_ir
module Math = Fsc_dialects.Math
module Obs = Fsc_obs.Obs

(* total interpreted ops; per-op-name counts live under "interp.op.<name>"
   and are only accumulated while tracing is enabled *)
let c_interp_ops = Obs.counter "interp.ops"
let c_kernel_launches = Obs.counter "interp.gpu_launches"

exception Interp_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Interp_error m)) fmt

type rvalue =
  | R_unit
  | R_int of int
  | R_float of float
  | R_buf of Memref_rt.t
  | R_cell of cell
  | R_elem of Memref_rt.t * int (* buffer, flat offset *)

and cell = { mutable contents : rvalue }

let as_int = function
  | R_int n -> n
  | R_float f -> int_of_float f
  | _ -> err "expected integer value"

let as_float = function
  | R_float f -> f
  | R_int n -> float_of_int n
  | _ -> err "expected float value"

let as_buf = function
  | R_buf b -> b
  | R_cell { contents = R_buf b } -> b
  | _ -> err "expected buffer value"

type context = {
  funcs : (string, Op.op) Hashtbl.t;
  gpu_funcs : (string, Op.op) Hashtbl.t; (* "module::name" *)
  externals : (string, context -> rvalue list -> rvalue list) Hashtbl.t;
  mutable pool : Domain_pool.t option;
  mutable gpu : Gpu_sim.t option;
  mutable gpu_strategy : Gpu_sim.data_strategy;
  mutable gpu_coords : int array; (* bid x,y,z, tid x,y,z *)
  mutable output : Buffer.t option; (* capture fir.print *)
  mutable op_count : int; (* interpreted ops, for tests/inspection *)
  (* every named array allocation, so drivers/tests can inspect grids *)
  mutable named_buffers : (string * Memref_rt.t) list;
}

let create_context () =
  { funcs = Hashtbl.create 16; gpu_funcs = Hashtbl.create 16;
    externals = Hashtbl.create 16; pool = None; gpu = None;
    gpu_strategy = Gpu_sim.Strategy_host_register;
    gpu_coords = Array.make 6 0; output = None; op_count = 0;
    named_buffers = [] }

(* Register every function of [m] (plus gpu.module kernels). *)
let add_module ctx m =
  Op.walk
    (fun op ->
      if op.Op.o_name = "func.func" then
        Hashtbl.replace ctx.funcs (Op.string_attr op "sym_name") op
      else if op.Op.o_name = "gpu.module" then begin
        let mod_name = Op.string_attr op "sym_name" in
        Op.walk_inner
          (fun k ->
            if k.Op.o_name = "gpu.func" then
              Hashtbl.replace ctx.gpu_funcs
                (mod_name ^ "::" ^ Op.string_attr k "sym_name")
                k)
          op
      end)
    m

let register_external ctx name f = Hashtbl.replace ctx.externals name f

let print_to ctx s =
  match ctx.output with
  | Some b -> Buffer.add_string b s
  | None -> print_string s

(* environment: SSA value id -> runtime value *)
type env = (int, rvalue) Hashtbl.t

let lookup (env : env) (v : Op.value) =
  match Hashtbl.find_opt env v.Op.v_id with
  | Some rv -> rv
  | None -> err "use of unbound SSA value (%%#%d)" v.Op.v_id

let bind (env : env) (v : Op.value) rv = Hashtbl.replace env v.Op.v_id rv

(* what a structured block evaluation produced *)
type block_result =
  | Fell_through
  | Yielded of rvalue list
  | Returned of rvalue list

let default_for_type = function
  | t when Types.is_float t -> R_float 0.0
  | t when Types.is_integer t -> R_int 0
  | _ -> R_unit

let scalar_of_type ty rv =
  (* coerce a value to the representation its type implies *)
  match ty with
  | t when Types.is_float t -> R_float (as_float rv)
  | t when Types.is_integer t -> R_int (as_int rv)
  | _ -> rv

let buffer_dims_of_type = function
  | Types.Fir_array (dims, _) | Types.Memref (dims, _) ->
    List.map
      (function
        | Types.Static n -> n
        | Types.Dynamic -> err "cannot allocate dynamic extent statically")
      dims
  | t -> err "not an array type: %s" (Types.to_string t)

exception Early_return of block_result

(* Fortran EXIT / CYCLE unwinding to the innermost enclosing loop *)
exception Loop_exit
exception Loop_cycle

let rec exec_block ctx env block : block_result =
  let rec go = function
    | [] -> Fell_through
    | op :: rest -> (
      ctx.op_count <- ctx.op_count + 1;
      Obs.incr c_interp_ops;
      if Obs.enabled () then
        Obs.incr (Obs.counter ("interp.op." ^ op.Op.o_name));
      match op.Op.o_name with
      | "func.return" -> Returned (List.map (lookup env) (Op.operands op))
      | "fir.result" | "scf.yield" | "omp.yield" | "omp.terminator"
      | "gpu.terminator" | "gpu.return" ->
        Yielded (List.map (lookup env) (Op.operands op))
      | _ ->
        (match exec_op ctx env op with
        | Some (Returned _ as r) -> raise (Early_return r)
        | _ -> ());
        go rest)
  in
  try go (Op.block_ops block) with Early_return r -> r

and exec_op ctx env op : block_result option =
  let operand i = lookup env (Op.operand ~index:i op) in
  let bind_result rv = bind env (Op.result op) rv in
  let int_binop f =
    bind_result (R_int (f (as_int (operand 0)) (as_int (operand 1))));
    None
  in
  let float_binop f =
    bind_result (R_float (f (as_float (operand 0)) (as_float (operand 1))));
    None
  in
  let register_buffer buf =
    match Op.attr op "bindc_name" with
    | Some (Attr.Str_a n) ->
      (* replace, never accumulate: a context is re-run many times on
         the same program, and keeping every historical allocation
         reachable pins its off-heap storage for the process lifetime *)
      ctx.named_buffers <- (n, buf) :: List.remove_assoc n ctx.named_buffers
    | _ -> ()
  in
  match op.Op.o_name with
  (* ---- arith ---- *)
  | "arith.constant" ->
    (match Op.attr_exn op "value" with
    | Attr.Int_a n -> bind_result (R_int n)
    | Attr.Float_a f -> bind_result (R_float f)
    | a -> err "arith.constant with value %s" (Attr.to_string a));
    None
  | "arith.addi" -> int_binop ( + )
  | "arith.subi" -> int_binop ( - )
  | "arith.muli" -> int_binop ( * )
  | "arith.divsi" -> int_binop (fun a b ->
      if b = 0 then err "integer division by zero" else a / b)
  | "arith.remsi" -> int_binop (fun a b ->
      if b = 0 then err "integer modulo by zero" else a mod b)
  | "arith.andi" -> int_binop ( land )
  | "arith.ori" -> int_binop ( lor )
  | "arith.xori" -> int_binop ( lxor )
  | "arith.shli" -> int_binop ( lsl )
  | "arith.shrsi" -> int_binop ( asr )
  | "arith.maxsi" -> int_binop max
  | "arith.minsi" -> int_binop min
  | "arith.addf" -> float_binop ( +. )
  | "arith.subf" -> float_binop ( -. )
  | "arith.mulf" -> float_binop ( *. )
  | "arith.divf" -> float_binop ( /. )
  | "arith.maximumf" -> float_binop Float.max
  | "arith.minimumf" -> float_binop Float.min
  | "arith.negf" ->
    bind_result (R_float (-.as_float (operand 0)));
    None
  | "arith.cmpi" ->
    let a = as_int (operand 0) and b = as_int (operand 1) in
    let r =
      match Op.int_attr op "predicate" with
      | 0 -> a = b
      | 1 -> a <> b
      | 2 -> a < b
      | 3 -> a <= b
      | 4 -> a > b
      | 5 -> a >= b
      | p -> err "cmpi predicate %d" p
    in
    bind_result (R_int (if r then 1 else 0));
    None
  | "arith.cmpf" ->
    let a = as_float (operand 0) and b = as_float (operand 1) in
    let r =
      match Op.int_attr op "predicate" with
      | 0 -> a = b
      | 1 -> a <> b
      | 2 -> a < b
      | 3 -> a <= b
      | 4 -> a > b
      | 5 -> a >= b
      | p -> err "cmpf predicate %d" p
    in
    bind_result (R_int (if r then 1 else 0));
    None
  | "arith.select" ->
    bind_result (if as_int (operand 0) <> 0 then operand 1 else operand 2);
    None
  | "arith.index_cast" ->
    bind_result (R_int (as_int (operand 0)));
    None
  | "arith.sitofp" ->
    bind_result (R_float (float_of_int (as_int (operand 0))));
    None
  | "arith.fptosi" ->
    bind_result (R_int (int_of_float (as_float (operand 0))));
    None
  | "arith.extf" | "arith.truncf" ->
    bind_result (R_float (as_float (operand 0)));
    None
  (* ---- math ---- *)
  | name when Dialect.dialect_of_op_name name = "math" ->
    (match Op.num_operands op with
    | 1 -> bind_result (R_float (Math.eval_unary name (as_float (operand 0))))
    | 2 ->
      if name = "math.fpowi" then
        bind_result
          (R_float
             (Float.pow (as_float (operand 0))
                (float_of_int (as_int (operand 1)))))
      else
        bind_result
          (R_float
             (Math.eval_binary name (as_float (operand 0))
                (as_float (operand 1))))
    | 3 ->
      (* fma *)
      bind_result
        (R_float
           (Float.fma (as_float (operand 0)) (as_float (operand 1))
              (as_float (operand 2))))
    | n -> err "math op with %d operands" n);
    None
  (* ---- fir ---- *)
  | "fir.alloca" -> (
    match Op.attr_exn op "in_type" with
    | Attr.Type_a (Types.Fir_array _ as t) ->
      let buf = Memref_rt.create (buffer_dims_of_type t) in
      register_buffer buf;
      bind_result (R_buf buf);
      None
    | Attr.Type_a (Types.Fir_heap _) | Attr.Type_a (Types.Fir_llvm_ptr _) ->
      bind_result (R_cell { contents = R_unit });
      None
    | Attr.Type_a t ->
      bind_result (R_cell { contents = default_for_type t });
      None
    | _ -> err "fir.alloca without in_type")
  | "fir.allocmem" -> (
    match Op.attr_exn op "in_type" with
    | Attr.Type_a (Types.Fir_array _ as t) ->
      let buf = Memref_rt.create (buffer_dims_of_type t) in
      register_buffer buf;
      bind_result (R_buf buf);
      None
    | _ -> err "fir.allocmem of non-array")
  | "fir.freemem" -> None
  | "fir.declare" ->
    bind_result (operand 0);
    None
  | "fir.load" -> (
    match operand 0 with
    | R_cell c ->
      bind_result c.contents;
      None
    | R_elem (buf, off) ->
      let f = Memref_rt.get_flat buf off in
      bind_result
        (scalar_of_type (Op.value_type (Op.result op)) (R_float f));
      None
    | R_buf _ as b ->
      bind_result b;
      None
    | _ -> err "fir.load of non-reference")
  | "fir.store" -> (
    let v = operand 0 in
    (match operand 1 with
    | R_cell c -> c.contents <- v
    | R_elem (buf, off) -> Memref_rt.set_flat buf off (as_float v)
    | _ -> err "fir.store to non-reference");
    None)
  | "fir.coordinate_of" ->
    let buf = as_buf (operand 0) in
    let idxs =
      Array.init
        (Op.num_operands op - 1)
        (fun i -> as_int (operand (i + 1)))
    in
    bind_result (R_elem (buf, Memref_rt.offset buf idxs));
    None
  | "fir.convert" ->
    let v = operand 0 in
    let to_ = Op.value_type (Op.result op) in
    (match (v, to_) with
    | (R_buf _ | R_cell _ | R_elem _), _ -> bind_result v
    | _, t when Types.is_float t -> bind_result (R_float (as_float v))
    | _, t when Types.is_integer t -> bind_result (R_int (as_int v))
    | _ -> bind_result v);
    None
  | "fir.no_reassoc" ->
    bind_result (operand 0);
    None
  | "fir.do_loop" -> exec_do_loop ctx env op ~inclusive:true
  | "scf.for" -> exec_do_loop ctx env op ~inclusive:false
  | "fir.exit" -> raise Loop_exit
  | "fir.cycle" -> raise Loop_cycle
  | "fir.iterate_while" ->
    let cond_region = Op.region ~index:0 op in
    let body_region = Op.region ~index:1 op in
    let rec loop () =
      let continue_ =
        match exec_region ctx env cond_region with
        | Yielded [ v ] -> as_int v <> 0
        | _ -> err "fir.iterate_while condition must yield one value"
      in
      if continue_ then begin
        (match exec_region ctx env body_region with
        | Returned _ as r -> raise (Early_return r)
        | exception Loop_cycle -> ()
        | _ -> ());
        loop ()
      end
    in
    (try loop () with Loop_exit -> ());
    None
  | "fir.if" | "scf.if" ->
    let cond = as_int (operand 0) <> 0 in
    let nregions = Array.length op.Op.o_regions in
    let result =
      if cond then exec_region ctx env (Op.region ~index:0 op)
      else if nregions > 1 then exec_region ctx env (Op.region ~index:1 op)
      else Yielded []
    in
    (match result with
    | Yielded values ->
      List.iteri (fun i v -> bind env (Op.result ~index:i op) v)
        (List.filteri (fun i _ -> i < Op.num_results op) values);
      None
    | Returned _ as r -> Some r
    | Fell_through -> None)
  | "scf.parallel" -> exec_scf_parallel ctx env op
  | "fir.call" | "func.call" | "llvm.call" ->
    let callee = Op.string_attr op "callee" in
    let args = List.map (lookup env) (Op.operands op) in
    let results = call ctx callee args in
    List.iteri (fun i v -> bind env (Op.result ~index:i op) v) results;
    None
  | "fir.print" ->
    let fmts =
      match Op.attr_exn op "format" with
      | Attr.Arr_a xs -> xs
      | _ -> []
    in
    let operands = ref (List.map (lookup env) (Op.operands op)) in
    let parts =
      List.map
        (fun fmt ->
          match fmt with
          | Attr.Str_a s -> s
          | _ -> (
            match !operands with
            | v :: rest ->
              operands := rest;
              (match v with
              | R_int n -> string_of_int n
              | R_float f -> Printf.sprintf "%.8g" f
              | _ -> "?")
            | [] -> "?"))
        fmts
    in
    print_to ctx (String.concat " " parts ^ "\n");
    None
  (* ---- memref ---- *)
  | "memref.alloc" | "memref.alloca" ->
    let buf =
      Memref_rt.create (buffer_dims_of_type (Op.value_type (Op.result op)))
    in
    register_buffer buf;
    bind_result (R_buf buf);
    None
  | "memref.dealloc" -> None
  | "memref.load" ->
    let buf = as_buf (operand 0) in
    let idxs =
      Array.init (Op.num_operands op - 1) (fun i -> as_int (operand (i + 1)))
    in
    bind_result
      (scalar_of_type
         (Op.value_type (Op.result op))
         (R_float (Memref_rt.get buf idxs)));
    None
  | "memref.store" ->
    let v = as_float (operand 0) in
    let buf = as_buf (operand 1) in
    let idxs =
      Array.init (Op.num_operands op - 2) (fun i -> as_int (operand (i + 2)))
    in
    Memref_rt.set buf idxs v;
    None
  | "memref.cast" | "builtin.unrealized_conversion_cast" | "llvm.bitcast" ->
    bind_result (operand 0);
    None
  | "memref.copy" ->
    Memref_rt.copy_into ~src:(as_buf (operand 0)) ~dst:(as_buf (operand 1));
    None
  | "memref.dim" ->
    let buf = as_buf (operand 0) in
    bind_result (R_int buf.Memref_rt.dims.(as_int (operand 1)));
    None
  (* ---- omp ---- *)
  | "omp.parallel" -> (
    (* the parallelism materialises at the wsloop inside *)
    match exec_region ctx env (Op.region op) with
    | Returned _ as r -> Some r
    | _ -> None)
  | "omp.wsloop" -> exec_wsloop ctx env op
  | "omp.barrier" -> None
  (* ---- gpu ---- *)
  | "gpu.host_register" ->
    (match ctx.gpu with
    | Some g -> Gpu_sim.host_register g (as_buf (operand 0))
    | None -> ());
    None
  | "gpu.alloc" ->
    (* device twin of a host buffer is created lazily; represent the
       device buffer by the host buffer identity *)
    let buf =
      Memref_rt.create
        (buffer_dims_of_type (Op.value_type (Op.result op)))
    in
    (match ctx.gpu with Some g -> Gpu_sim.alloc g buf | None -> ());
    bind_result (R_buf buf);
    None
  | "gpu.dealloc" ->
    (match ctx.gpu with
    | Some g -> Gpu_sim.dealloc g (as_buf (operand 0))
    | None -> ());
    None
  | "gpu.memcpy" ->
    (* dst, src; simulate as host copy plus device traffic accounting *)
    let dst = as_buf (operand 0) and src = as_buf (operand 1) in
    Memref_rt.copy_into ~src ~dst;
    (match ctx.gpu with
    | Some g -> Gpu_sim.charge g (Gpu_sim.copy_time g (Memref_rt.bytes src))
    | None -> ());
    None
  | "gpu.thread_id" | "gpu.block_id" | "gpu.block_dim" | "gpu.grid_dim" ->
    let d =
      match Op.string_attr op "dimension" with
      | "x" -> 0
      | "y" -> 1
      | "z" -> 2
      | s -> err "gpu dimension %s" s
    in
    let base =
      match op.Op.o_name with
      | "gpu.block_id" -> 0
      | "gpu.thread_id" -> 3
      | _ -> err "%s not available inside interpreted kernels" op.Op.o_name
    in
    bind_result (R_int ctx.gpu_coords.(base + d));
    None
  | "gpu.launch_func" -> exec_launch_func ctx env op
  | "gpu.wait" -> None
  (* ---- stencil (direct interpretation, for reference semantics) ---- *)
  | "stencil.external_load" | "stencil.load" | "stencil.cast" ->
    bind_result (operand 0);
    None
  | name -> err "interpreter: unhandled operation %s" name

and exec_region ctx env region =
  match region.Op.g_blocks with
  | [ b ] -> exec_block ctx env b
  | _ -> err "multi-block regions are not interpretable (structured IR only)"

(* fir.do_loop (inclusive ub) and scf.for (exclusive ub), with iter args *)
and exec_do_loop ctx env op ~inclusive =
  let lb = as_int (lookup env (Op.operand ~index:0 op)) in
  let ub = as_int (lookup env (Op.operand ~index:1 op)) in
  let step = as_int (lookup env (Op.operand ~index:2 op)) in
  if step <= 0 then err "loop step must be positive";
  let n_iter_args = Op.num_operands op - 3 in
  let body =
    match (Op.region op).Op.g_blocks with
    | [ b ] -> b
    | _ -> err "loop body must be a single block"
  in
  let iters =
    ref
      (List.init n_iter_args (fun i -> lookup env (Op.operand ~index:(3 + i) op)))
  in
  let limit = if inclusive then ub else ub - 1 in
  let i = ref lb in
  let early = ref None in
  let stop = ref false in
  while (not !stop) && !early = None && !i <= limit do
    bind env (Op.block_arg ~index:0 body) (R_int !i);
    List.iteri
      (fun k v -> bind env (Op.block_arg ~index:(k + 1) body) v)
      !iters;
    (match exec_block ctx env body with
    | Yielded vs -> iters := vs
    | Fell_through -> ()
    | Returned _ as r -> early := Some r
    | exception Loop_cycle -> ()
    | exception Loop_exit -> stop := true);
    i := !i + step
  done;
  match !early with
  | Some r -> Some r
  | None ->
    List.iteri (fun k v -> bind env (Op.result ~index:k op) v) !iters;
    None

(* reference (serial) execution of scf.parallel *)
and exec_scf_parallel ctx env op =
  let lbs, ubs, steps = Fsc_dialects.Scf.parallel_bounds op in
  let lbs = List.map (fun v -> as_int (lookup env v)) lbs in
  let ubs = List.map (fun v -> as_int (lookup env v)) ubs in
  let steps = List.map (fun v -> as_int (lookup env v)) steps in
  let body =
    match (Op.region op).Op.g_blocks with
    | [ b ] -> b
    | _ -> err "parallel body must be a single block"
  in
  let rec loop dims idxs =
    match dims with
    | [] ->
      List.iteri
        (fun k v -> bind env (Op.block_arg ~index:k body) (R_int v))
        (List.rev idxs);
      (match exec_block ctx env body with
      | Returned _ -> err "return from inside scf.parallel"
      | _ -> ())
    | (lb, ub, step) :: rest ->
      let i = ref lb in
      while !i < ub do
        loop rest (!i :: idxs);
        i := !i + step
      done
  in
  loop (List.combine lbs (List.combine ubs steps)
        |> List.map (fun (a, (b, c)) -> (a, b, c)))
    [];
  None

(* omp.wsloop: work-share the outermost dimension over the pool *)
and exec_wsloop ctx env op =
  let lbs, ubs, steps = Fsc_dialects.Openmp.wsloop_bounds op in
  let lbs = List.map (fun v -> as_int (lookup env v)) lbs in
  let ubs = List.map (fun v -> as_int (lookup env v)) ubs in
  let steps = List.map (fun v -> as_int (lookup env v)) steps in
  let body =
    match (Op.region op).Op.g_blocks with
    | [ b ] -> b
    | _ -> err "wsloop body must be a single block"
  in
  let run_range env0 lo hi =
    (* serial over [lo,hi) of dim 0, full inner dims *)
    let rec loop d idxs =
      if d = List.length lbs then begin
        List.iteri
          (fun k v -> bind env0 (Op.block_arg ~index:k body) (R_int v))
          (List.rev idxs);
        match exec_block ctx env0 body with
        | Returned _ -> err "return from inside omp.wsloop"
        | _ -> ()
      end
      else begin
        let lb = if d = 0 then lo else List.nth lbs d in
        let ub = if d = 0 then hi else List.nth ubs d in
        let step = List.nth steps d in
        let i = ref lb in
        while !i < ub do
          loop (d + 1) (!i :: idxs);
          i := !i + step
        done
      end
    in
    loop 0 []
  in
  (match ctx.pool with
  | Some pool ->
    Domain_pool.parallel_for pool ~lo:(List.hd lbs) ~hi:(List.hd ubs)
      (fun lo hi ->
        let env' = Hashtbl.copy env in
        run_range env' lo hi)
  | None -> run_range env (List.hd lbs) (List.hd ubs));
  None

(* Execute a gpu.launch_func by interpreting the kernel body once per
   thread, charging the simulator. *)
and exec_launch_func ctx env op =
  let kernel_sym = Op.string_attr op "kernel" in
  let kernel =
    match Hashtbl.find_opt ctx.gpu_funcs kernel_sym with
    | Some k -> k
    | None -> err "unknown GPU kernel %s" kernel_sym
  in
  let dim i = as_int (lookup env (Op.operand ~index:i op)) in
  let grid = (dim 0, dim 1, dim 2) and block = (dim 3, dim 4, dim 5) in
  let gx, gy, gz = grid and bx, by, bz = block in
  let args =
    List.filteri (fun i _ -> i >= 6) (Op.operands op)
    |> List.map (lookup env)
  in
  (* device views: kernels operate on device twins of host buffers *)
  let host_buffers =
    List.filter_map (function R_buf b -> Some b | _ -> None) args
  in
  let args =
    match ctx.gpu with
    | Some g ->
      List.map
        (function R_buf b -> R_buf (Gpu_sim.kernel_view g b) | v -> v)
        args
    | None -> args
  in
  let body =
    match (Op.region kernel).Op.g_blocks with
    | [ b ] -> b
    | _ -> err "gpu.func body must be a single block"
  in
  let execute () =
    let saved = ctx.gpu_coords in
    for bz_i = 0 to gz - 1 do
      for by_i = 0 to gy - 1 do
        for bx_i = 0 to gx - 1 do
          for tz = 0 to bz - 1 do
            for ty = 0 to by - 1 do
              for tx = 0 to bx - 1 do
                ctx.gpu_coords <- [| bx_i; by_i; bz_i; tx; ty; tz |];
                let kenv : env = Hashtbl.create 64 in
                List.iteri
                  (fun i v -> bind kenv (Op.block_arg ~index:i body) v)
                  args;
                ignore (exec_block ctx kenv body)
              done
            done
          done
        done
      done
    done;
    ctx.gpu_coords <- saved
  in
  Obs.incr c_kernel_launches;
  Obs.with_span ~cat:"kernel"
    ~args:
      [ ("blocks", Obs.A_int (gx * gy * gz));
        ("threads_per_block", Obs.A_int (bx * by * bz)) ]
    ("gpu.launch " ^ kernel_sym)
    (fun () ->
      match ctx.gpu with
      | Some g ->
        let cells = float_of_int (gx * gy * gz * bx * by * bz) in
        Gpu_sim.launch g ~strategy:ctx.gpu_strategy
          ~block_threads:(bx * by * bz) ~flops:(cells *. 10.)
          ~bytes_accessed:(cells *. 16.) ~body:execute host_buffers
      | None -> execute ());
  None

and call ctx callee args =
  (* externals first: the driver registers compiled kernels under the
     same symbols as the (slower) interpretable definitions *)
  match Hashtbl.find_opt ctx.externals callee with
  | Some f -> f ctx args
  | None -> (
    match Hashtbl.find_opt ctx.funcs callee with
    | Some f -> call_func ctx f args
    | None -> err "call to unknown symbol %s" callee)

and call_func ctx f args =
  let entry = Fsc_dialects.Func.entry_block f in
  let env : env = Hashtbl.create 256 in
  List.iteri (fun i v -> bind env (Op.block_arg ~index:i entry) v) args;
  match exec_block ctx env entry with
  | Returned vs -> vs
  | Yielded vs -> vs
  | Fell_through -> []

(* Run the Fortran main program of a registered module. *)
let run_main ctx =
  let main = ref None in
  Hashtbl.iter
    (fun name f -> if name = "_QQmain" then main := Some f)
    ctx.funcs;
  match !main with
  | Some f ->
    Obs.with_span ~cat:"interp" "interp.run_main" (fun () ->
        ignore (call_func ctx f []))
  | None -> err "no main program (_QQmain) registered"

(* Insertion-point based IR builder, the work-horse of every lowering. *)

type insertion =
  | At_end of Op.block
  | At_start of Op.block
  | Before of Op.op
  | After of Op.op

type t = { mutable point : insertion; mutable loc : (int * int) option }

let create point = { point; loc = None }

let at_end block = create (At_end block)
let at_start block = create (At_start block)
let before op = create (Before op)
let after op = create (After op)

let set_point b point = b.point <- point

let set_loc b loc = b.loc <- loc
let loc b = b.loc

let insert b op =
  (match b.point with
  | At_end block -> Op.append_to block op
  | At_start block -> Op.prepend_to block op
  | Before anchor -> Op.insert_before ~anchor op
  | After anchor ->
    Op.insert_after ~anchor op;
    (* Keep appending after the op we just inserted so a sequence of
       [insert] calls stays in source order. *)
    b.point <- After op);
  op

(* Build an op and insert it at the current point. The builder's current
   source location (set by the frontend lowering) is attached as a "loc"
   attribute unless the caller supplied one explicitly. *)
let op b ?operands ?results ?(attrs = []) ?regions name =
  let attrs =
    match b.loc with
    | Some (line, col) when not (List.mem_assoc "loc" attrs) ->
      attrs @ [ ("loc", Attr.Loc_a (line, col)) ]
    | _ -> attrs
  in
  insert b (Op.create ?operands ?results ~attrs ?regions name)

(* Convenience for single-result ops: returns the result value. *)
let op1 b ?operands ?(results = []) ?attrs ?regions name =
  let o = op b ?operands ~results ?attrs ?regions name in
  Op.result o

let block b =
  match b.point with
  | At_end blk | At_start blk -> blk
  | Before anchor | After anchor -> (
    match Op.parent_block anchor with
    | Some blk -> blk
    | None -> invalid_arg "Builder.block: anchor not in a block")

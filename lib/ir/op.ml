(* Core SSA IR: values, operations, blocks and regions.

   The representation mirrors MLIR: an operation has operands (SSA values),
   results (SSA values it defines), an attribute dictionary and nested
   regions; a region holds blocks; a block holds block arguments and a
   doubly-linked list of operations. Everything is mutable because the
   transformation passes of the paper (discovery, extraction, merging,
   lowering) are all in-place IR surgery.

   Invariant maintained by this module: every value knows its uses, i.e.
   the (op, operand-index) pairs that reference it. All operand mutation
   must go through [set_operand] / [set_operands] / [erase] so the use
   lists stay consistent. *)

type value = {
  v_id : int;
  mutable v_type : Types.t;
  mutable v_def : def;
  mutable v_uses : use list;
}

and def =
  | Op_result of op * int
  | Block_arg of block * int

and use = {
  u_op : op;
  u_index : int;
}

and op = {
  o_id : int;
  mutable o_name : string;
  mutable o_operands : value array;
  mutable o_results : value array;
  mutable o_attrs : (string * Attr.t) list;
  mutable o_regions : region array;
  mutable o_parent : block option;
  mutable o_prev : op option;
  mutable o_next : op option;
}

and block = {
  b_id : int;
  mutable b_args : value array;
  mutable b_first : op option;
  mutable b_last : op option;
  mutable b_parent : region option;
}

and region = {
  g_id : int;
  mutable g_blocks : block list;
  mutable g_parent : op option;
}

let next_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let value_type v = v.v_type

let value_uses v = v.v_uses

let has_uses v = v.v_uses <> []

let num_uses v = List.length v.v_uses

let defining_op v =
  match v.v_def with Op_result (op, _) -> Some op | Block_arg _ -> None

let result_index v =
  match v.v_def with
  | Op_result (_, i) -> i
  | Block_arg _ -> invalid_arg "Op.result_index: block argument"

(* ------------------------------------------------------------------ *)
(* Use-list maintenance                                                *)
(* ------------------------------------------------------------------ *)

let add_use value ~op ~index =
  value.v_uses <- { u_op = op; u_index = index } :: value.v_uses

let remove_use value ~op ~index =
  value.v_uses <-
    List.filter
      (fun u -> not (u.u_op == op && u.u_index = index))
      value.v_uses

let set_operand op index value =
  let old = op.o_operands.(index) in
  if not (old == value) then begin
    remove_use old ~op ~index;
    op.o_operands.(index) <- value;
    add_use value ~op ~index
  end

let set_operands op values =
  Array.iteri (fun i v -> remove_use v ~op ~index:i) op.o_operands;
  op.o_operands <- Array.of_list values;
  Array.iteri (fun i v -> add_use v ~op ~index:i) op.o_operands

let replace_all_uses_with old_v new_v =
  (* Snapshot: set_operand mutates the use list we are iterating. *)
  let uses = old_v.v_uses in
  List.iter (fun u -> set_operand u.u_op u.u_index new_v) uses

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create_region () = { g_id = next_id (); g_blocks = []; g_parent = None }

let create_block ?(args = []) () =
  let b =
    { b_id = next_id (); b_args = [||]; b_first = None; b_last = None;
      b_parent = None }
  in
  b.b_args <-
    Array.of_list
      (List.mapi
         (fun i t ->
           { v_id = next_id (); v_type = t; v_def = Block_arg (b, i);
             v_uses = [] })
         args);
  b

let add_block region block =
  block.b_parent <- Some region;
  region.g_blocks <- region.g_blocks @ [ block ]

let region_with_block ?(args = []) () =
  let r = create_region () in
  let b = create_block ~args () in
  add_block r b;
  (r, b)

let create ?(operands = []) ?(results = []) ?(attrs = []) ?(regions = []) name
    =
  let op =
    { o_id = next_id (); o_name = name; o_operands = [||]; o_results = [||];
      o_attrs = attrs; o_regions = Array.of_list regions; o_parent = None;
      o_prev = None; o_next = None }
  in
  op.o_operands <- Array.of_list operands;
  Array.iteri (fun i v -> add_use v ~op ~index:i) op.o_operands;
  op.o_results <-
    Array.of_list
      (List.mapi
         (fun i t ->
           { v_id = next_id (); v_type = t; v_def = Op_result (op, i);
             v_uses = [] })
         results);
  Array.iter (fun r -> r.g_parent <- Some op) op.o_regions;
  op

let result ?(index = 0) op = op.o_results.(index)

let results op = Array.to_list op.o_results

let operand ?(index = 0) op = op.o_operands.(index)

let operands op = Array.to_list op.o_operands

let num_operands op = Array.length op.o_operands

let num_results op = Array.length op.o_results

let region ?(index = 0) op = op.o_regions.(index)

let regions op = Array.to_list op.o_regions

let has_attr op key = List.mem_assoc key op.o_attrs

let attr op key = List.assoc_opt key op.o_attrs

let attr_exn op key =
  match attr op key with
  | Some a -> a
  | None ->
    invalid_arg (Printf.sprintf "Op.attr_exn: no attribute %S on %s" key
                   op.o_name)

let set_attr op key a =
  op.o_attrs <- (key, a) :: List.remove_assoc key op.o_attrs

let remove_attr op key = op.o_attrs <- List.remove_assoc key op.o_attrs

(* Source location threaded from the frontend as a "loc" attribute. *)
let location op =
  match attr op "loc" with
  | Some (Attr.Loc_a (line, col)) -> Some (line, col)
  | _ -> None

let int_attr op key = Attr.as_int (attr_exn op key)
let float_attr op key = Attr.as_float (attr_exn op key)
let string_attr op key = Attr.as_string (attr_exn op key)

(* ------------------------------------------------------------------ *)
(* Linked-list surgery                                                 *)
(* ------------------------------------------------------------------ *)

let parent_block op = op.o_parent

let parent_op op =
  match op.o_parent with
  | None -> None
  | Some b -> ( match b.b_parent with None -> None | Some r -> r.g_parent)

let unlink op =
  (match op.o_prev with
  | Some p -> p.o_next <- op.o_next
  | None -> (
    match op.o_parent with Some b -> b.b_first <- op.o_next | None -> ()));
  (match op.o_next with
  | Some n -> n.o_prev <- op.o_prev
  | None -> (
    match op.o_parent with Some b -> b.b_last <- op.o_prev | None -> ()));
  op.o_prev <- None;
  op.o_next <- None;
  op.o_parent <- None

let append_to block op =
  unlink op;
  op.o_parent <- Some block;
  match block.b_last with
  | None ->
    block.b_first <- Some op;
    block.b_last <- Some op
  | Some last ->
    last.o_next <- Some op;
    op.o_prev <- Some last;
    block.b_last <- Some op

let prepend_to block op =
  unlink op;
  op.o_parent <- Some block;
  match block.b_first with
  | None ->
    block.b_first <- Some op;
    block.b_last <- Some op
  | Some first ->
    first.o_prev <- Some op;
    op.o_next <- Some first;
    block.b_first <- Some op

let insert_before ~anchor op =
  unlink op;
  let block =
    match anchor.o_parent with
    | Some b -> b
    | None -> invalid_arg "Op.insert_before: anchor not in a block"
  in
  op.o_parent <- Some block;
  op.o_next <- Some anchor;
  op.o_prev <- anchor.o_prev;
  (match anchor.o_prev with
  | Some p -> p.o_next <- Some op
  | None -> block.b_first <- Some op);
  anchor.o_prev <- Some op

let insert_after ~anchor op =
  unlink op;
  let block =
    match anchor.o_parent with
    | Some b -> b
    | None -> invalid_arg "Op.insert_after: anchor not in a block"
  in
  op.o_parent <- Some block;
  op.o_prev <- Some anchor;
  op.o_next <- anchor.o_next;
  (match anchor.o_next with
  | Some n -> n.o_prev <- Some op
  | None -> block.b_last <- Some op);
  anchor.o_next <- Some op

(* Erase [op]: unlink it and drop its operand uses. The op must itself be
   unused (its results have no remaining uses). *)
let erase op =
  Array.iter
    (fun r ->
      if has_uses r then
        invalid_arg
          (Printf.sprintf "Op.erase: result of %s still has uses" op.o_name))
    op.o_results;
  Array.iteri (fun i v -> remove_use v ~op ~index:i) op.o_operands;
  op.o_operands <- [||];
  unlink op

(* ------------------------------------------------------------------ *)
(* Iteration                                                           *)
(* ------------------------------------------------------------------ *)

let block_ops block =
  let rec collect acc = function
    | None -> List.rev acc
    | Some op -> collect (op :: acc) op.o_next
  in
  collect [] block.b_first

let iter_block_ops f block =
  (* Safe against removal of the op currently visited: fetch next first. *)
  let rec go = function
    | None -> ()
    | Some op ->
      let next = op.o_next in
      f op;
      go next
  in
  go block.b_first

let first_op block = block.b_first
let last_op block = block.b_last

let block_arg ?(index = 0) block = block.b_args.(index)
let block_args block = Array.to_list block.b_args

(* Pre-order walk over [op] and everything nested inside its regions. *)
let rec walk f op =
  f op;
  Array.iter
    (fun r ->
      List.iter (fun b -> List.iter (walk f) (block_ops b)) r.g_blocks)
    op.o_regions

(* Walk only the ops nested inside [op]'s regions (not [op] itself). *)
let walk_inner f op =
  Array.iter
    (fun r ->
      List.iter (fun b -> List.iter (walk f) (block_ops b)) r.g_blocks)
    op.o_regions

let collect_ops pred top =
  let acc = ref [] in
  walk (fun op -> if pred op then acc := op :: !acc) top;
  List.rev !acc

(* Is [op] positioned after [anchor] in the same block? *)
let is_after ~anchor op =
  let same_block =
    match (op.o_parent, anchor.o_parent) with
    | Some b1, Some b2 -> b1 == b2
    | _ -> false
  in
  same_block
  &&
  let rec walk o =
    match o.o_next with
    | None -> false
    | Some n -> if n == op then true else walk n
  in
  walk anchor

(* Move the producer chain of [v] before [anchor] when it is positioned
   after it in the same block (dependencies first). Only correct for pure
   chains; callers are responsible for that. *)
let rec hoist_chain_before ~anchor (v : value) =
  match defining_op v with
  | None -> ()
  | Some op ->
    if is_after ~anchor op then begin
      Array.iter (hoist_chain_before ~anchor) op.o_operands;
      insert_before ~anchor op
    end

(* ------------------------------------------------------------------ *)
(* Module helpers                                                      *)
(* ------------------------------------------------------------------ *)

let module_op_name = "builtin.module"

let create_module () =
  let r, _ = region_with_block () in
  create module_op_name ~regions:[ r ]

let module_block m =
  match (region m).g_blocks with
  | [ b ] -> b
  | _ -> invalid_arg "Op.module_block: malformed module"

let is_module op = op.o_name = module_op_name

(* ------------------------------------------------------------------ *)
(* Cloning                                                             *)
(* ------------------------------------------------------------------ *)

(* Deep-copy [op] (including nested regions). [mapping] translates free
   values (operands defined outside the cloned subtree); values defined
   inside are remapped automatically. Returns the clone; the caller links
   it into a block. *)
let clone ?(mapping = Hashtbl.create 16) op =
  let map_value v =
    match Hashtbl.find_opt mapping v.v_id with Some v' -> v' | None -> v
  in
  let rec clone_op op =
    let regions =
      Array.to_list op.o_regions |> List.map clone_region
    in
    let operands = List.map map_value (Array.to_list op.o_operands) in
    let results = List.map (fun r -> r.v_type) (Array.to_list op.o_results) in
    let c =
      create op.o_name ~operands ~results ~attrs:op.o_attrs ~regions
    in
    Array.iteri
      (fun i r -> Hashtbl.replace mapping r.v_id c.o_results.(i))
      op.o_results;
    c
  and clone_region r =
    let r' = create_region () in
    List.iter
      (fun b ->
        let b' = create_block ~args:(List.map value_type (block_args b)) () in
        Array.iteri
          (fun i a -> Hashtbl.replace mapping a.v_id b'.b_args.(i))
          b.b_args;
        add_block r' b';
        List.iter (fun o -> append_to b' (clone_op o)) (block_ops b))
      r.g_blocks;
    r'
  in
  clone_op op

(* ------------------------------------------------------------------ *)
(* Debug                                                               *)
(* ------------------------------------------------------------------ *)

let to_debug_string op =
  Printf.sprintf "%s(#%d, %d operands, %d results, %d regions)" op.o_name
    op.o_id (Array.length op.o_operands) (Array.length op.o_results)
    (Array.length op.o_regions)

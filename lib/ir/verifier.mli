(** Structural and dialect verification.

    {!verify} checks IR well-formedness (parent links, use lists,
    per-dialect operand/result/region counts and custom verifiers,
    terminator placement, SSA dominance in the structured-control-flow
    discipline this codebase uses). {!verify_in_context} additionally
    enforces the dialect-registration constraint that drives the paper's
    module-splitting design. *)

type diagnostic = {
  d_op : string;
  d_loc : (int * int) option;
      (** source [line:col] of the offending op, from its ["loc"]
          attribute when the frontend threaded one *)
  d_message : string;
}

val to_string : diagnostic -> string

val verify : Op.op -> (unit, diagnostic list) result

val verify_in_context :
  Dialect.context -> Op.op -> (unit, diagnostic list) result

(** @raise Failure with all diagnostics when verification fails. *)
val verify_exn : Op.op -> unit

val verify_in_context_exn : Dialect.context -> Op.op -> unit

(** Core SSA IR: values, operations, blocks and regions.

    The representation mirrors MLIR: an operation has operands (SSA
    values), results (SSA values it defines), an attribute dictionary and
    nested regions; a region holds blocks; a block holds block arguments
    and a doubly-linked list of operations. Everything is mutable because
    the paper's transformations (discovery, extraction, merging,
    lowering) are all in-place IR surgery.

    Invariant: every value knows its uses — the (op, operand-index) pairs
    referencing it. All operand mutation must go through {!set_operand} /
    {!set_operands} / {!erase} so use lists stay consistent. *)

type value = {
  v_id : int;  (** process-unique id *)
  mutable v_type : Types.t;
  mutable v_def : def;
  mutable v_uses : use list;
}

and def =
  | Op_result of op * int
  | Block_arg of block * int

and use = {
  u_op : op;
  u_index : int;  (** which operand slot of [u_op] *)
}

and op = {
  o_id : int;
  mutable o_name : string;  (** e.g. ["arith.addf"] *)
  mutable o_operands : value array;
  mutable o_results : value array;
  mutable o_attrs : (string * Attr.t) list;
  mutable o_regions : region array;
  mutable o_parent : block option;
  mutable o_prev : op option;
  mutable o_next : op option;
}

and block = {
  b_id : int;
  mutable b_args : value array;
  mutable b_first : op option;
  mutable b_last : op option;
  mutable b_parent : region option;
}

and region = {
  g_id : int;
  mutable g_blocks : block list;
  mutable g_parent : op option;
}

(** {2 Values} *)

val value_type : value -> Types.t
val value_uses : value -> use list
val has_uses : value -> bool
val num_uses : value -> int

(** [None] for block arguments. *)
val defining_op : value -> op option

(** @raise Invalid_argument on block arguments. *)
val result_index : value -> int

(** {2 Use-list-preserving mutation} *)

val set_operand : op -> int -> value -> unit
val set_operands : op -> value list -> unit
val replace_all_uses_with : value -> value -> unit

(** {2 Construction} *)

val create_region : unit -> region

(** A detached block with arguments of the given types. *)
val create_block : ?args:Types.t list -> unit -> block

val add_block : region -> block -> unit

(** A fresh region containing a fresh (possibly argumented) block. *)
val region_with_block : ?args:Types.t list -> unit -> region * block

(** Create a detached operation. Result values are created from
    [results] types; regions are adopted. *)
val create :
  ?operands:value list ->
  ?results:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:region list ->
  string ->
  op

(** {2 Accessors} *)

val result : ?index:int -> op -> value
val results : op -> value list
val operand : ?index:int -> op -> value
val operands : op -> value list
val num_operands : op -> int
val num_results : op -> int
val region : ?index:int -> op -> region
val regions : op -> region list

val has_attr : op -> string -> bool
val attr : op -> string -> Attr.t option

(** @raise Invalid_argument when missing. *)
val attr_exn : op -> string -> Attr.t

val set_attr : op -> string -> Attr.t -> unit
val remove_attr : op -> string -> unit

(** The frontend source location carried by the op's ["loc"] attribute
    ([Attr.Loc_a]), when present: [(line, col)]. *)
val location : op -> (int * int) option
val int_attr : op -> string -> int
val float_attr : op -> string -> float
val string_attr : op -> string -> string

(** {2 Linked-list surgery} *)

val parent_block : op -> block option

(** The operation owning the region the op's block belongs to. *)
val parent_op : op -> op option

(** Detach from the current block (no-op when detached). *)
val unlink : op -> unit

val append_to : block -> op -> unit
val prepend_to : block -> op -> unit

(** @raise Invalid_argument when [anchor] is detached. *)
val insert_before : anchor:op -> op -> unit

val insert_after : anchor:op -> op -> unit

(** Unlink [op] and drop its operand uses. Its own results must be
    unused.
    @raise Invalid_argument otherwise. *)
val erase : op -> unit

(** Is [op] positioned after [anchor] in the same block? *)
val is_after : anchor:op -> op -> bool

(** Move the producer chain of a value before [anchor] when positioned
    after it in the same block (dependencies first). Only correct for
    pure chains; callers are responsible. *)
val hoist_chain_before : anchor:op -> value -> unit

(** {2 Iteration} *)

val block_ops : block -> op list

(** Safe against removal of the currently visited op. *)
val iter_block_ops : (op -> unit) -> block -> unit

val first_op : block -> op option
val last_op : block -> op option
val block_arg : ?index:int -> block -> value
val block_args : block -> value list

(** Pre-order walk over [op] and everything nested in its regions. *)
val walk : (op -> unit) -> op -> unit

(** Like {!walk} but excluding [op] itself. *)
val walk_inner : (op -> unit) -> op -> unit

val collect_ops : (op -> bool) -> op -> op list

(** {2 Modules} *)

val module_op_name : string
val create_module : unit -> op
val module_block : op -> block
val is_module : op -> bool

(** {2 Cloning} *)

(** Deep-copy [op] including nested regions. [mapping] (value id -> new
    value) translates free values; values defined inside the clone are
    remapped automatically and recorded in [mapping]. The clone is
    detached. *)
val clone : ?mapping:(int, value) Hashtbl.t -> op -> op

(** {2 Debug} *)

val to_debug_string : op -> string

(* Structural and dialect verification.

   [verify] checks IR well-formedness; [verify_in_context] additionally
   enforces the dialect-registration constraint that drives the paper's
   module-splitting design: a tool rejects ops from dialects it has not
   registered. *)

type diagnostic = {
  d_op : string;
  d_loc : (int * int) option; (* source line:col of the offending op *)
  d_message : string;
}

let diag op msg =
  { d_op = op.Op.o_name; d_loc = Op.location op; d_message = msg }

let to_string d =
  match d.d_loc with
  | Some (line, col) ->
    Printf.sprintf "[%s at %d:%d] %s" d.d_op line col d.d_message
  | None -> Printf.sprintf "[%s] %s" d.d_op d.d_message

(* Collect the set of values visible at [op]: block arguments of enclosing
   blocks plus results of ops preceding it (we check SSA-dominance in the
   single-block structured-control-flow discipline this codebase uses). *)
let check_dominance errors top =
  let visible : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let rec go_block block =
    Array.iter
      (fun (a : Op.value) -> Hashtbl.replace visible a.Op.v_id ())
      block.Op.b_args;
    List.iter go_op (Op.block_ops block)
  and go_op op =
    Array.iter
      (fun (v : Op.value) ->
        if not (Hashtbl.mem visible v.Op.v_id) then
          errors :=
            diag op
              (Printf.sprintf "operand %%#%d does not dominate its use"
                 v.Op.v_id)
            :: !errors)
      op.Op.o_operands;
    Array.iter
      (fun r -> List.iter go_block r.Op.g_blocks)
      op.Op.o_regions;
    Array.iter
      (fun (v : Op.value) -> Hashtbl.replace visible v.Op.v_id ())
      op.Op.o_results
  in
  go_op top

let check_structure errors top =
  Op.walk
    (fun op ->
      (* Parent links of regions *)
      Array.iter
        (fun (r : Op.region) ->
          (match r.Op.g_parent with
          | Some p when p == op -> ()
          | _ -> errors := diag op "region parent link broken" :: !errors);
          List.iter
            (fun (b : Op.block) ->
              match b.Op.b_parent with
              | Some p when p == r -> ()
              | _ -> errors := diag op "block parent link broken" :: !errors)
            r.Op.g_blocks)
        op.Op.o_regions;
      (* Use lists: every operand records this op as a user. *)
      Array.iteri
        (fun i (v : Op.value) ->
          let ok =
            List.exists
              (fun (u : Op.use) -> u.Op.u_op == op && u.Op.u_index = i)
              v.Op.v_uses
          in
          if not ok then
            errors := diag op "operand use-list entry missing" :: !errors)
        op.Op.o_operands;
      (* Dialect-declared structural expectations *)
      match Dialect.lookup_op op.Op.o_name with
      | None -> ()
      | Some info ->
        let structural_ok = ref true in
        let complain msg =
          structural_ok := false;
          errors := diag op msg :: !errors
        in
        if
          info.Dialect.oi_num_operands >= 0
          && Array.length op.Op.o_operands <> info.Dialect.oi_num_operands
        then
          complain
            (Printf.sprintf "expected %d operands, got %d"
               info.Dialect.oi_num_operands
               (Array.length op.Op.o_operands));
        if
          info.Dialect.oi_num_results >= 0
          && Array.length op.Op.o_results <> info.Dialect.oi_num_results
        then
          complain
            (Printf.sprintf "expected %d results, got %d"
               info.Dialect.oi_num_results
               (Array.length op.Op.o_results));
        if
          info.Dialect.oi_num_regions >= 0
          && Array.length op.Op.o_regions <> info.Dialect.oi_num_regions
        then
          complain
            (Printf.sprintf "expected %d regions, got %d"
               info.Dialect.oi_num_regions
               (Array.length op.Op.o_regions));
        (* per-op verifiers may index operands: only run them on
           structurally sound ops *)
        (match info.Dialect.oi_verify with
        | Some f when !structural_ok -> (
          match f op with
          | Ok () -> ()
          | Error msg -> errors := diag op msg :: !errors)
        | _ -> ());
        if info.Dialect.oi_terminator then begin
          match op.Op.o_parent with
          | Some b -> (
            match Op.last_op b with
            | Some last when last == op -> ()
            | _ ->
              errors :=
                diag op "terminator is not the last operation of its block"
                :: !errors)
          | None -> ()
        end)
    top

let verify top =
  let errors = ref [] in
  check_structure errors top;
  check_dominance errors top;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let verify_in_context ctx top =
  let errors = ref [] in
  check_structure errors top;
  check_dominance errors top;
  Op.walk
    (fun op ->
      if not (Dialect.op_accepted ctx op) then
        errors :=
          diag op
            (Printf.sprintf "dialect %S is not registered with %s"
               (Dialect.dialect_of_op_name op.Op.o_name)
               ctx.Dialect.ctx_name)
          :: !errors)
    top;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let verify_exn top =
  match verify top with
  | Ok () -> ()
  | Error es ->
    failwith
      ("IR verification failed:\n"
      ^ String.concat "\n" (List.map to_string es))

let verify_in_context_exn ctx top =
  match verify_in_context ctx top with
  | Ok () -> ()
  | Error es ->
    failwith
      (Printf.sprintf "IR verification failed in context %s:\n%s"
         ctx.Dialect.ctx_name
         (String.concat "\n" (List.map to_string es)))

(* Greedy pattern-rewrite driver, the engine behind canonicalisation and
   the dialect-conversion style lowerings. *)

module Obs = Fsc_obs.Obs

(* worklist iterations / successful pattern applications across all
   [apply_greedily] invocations; per-pattern application counts are
   recorded under "rewrite.pattern.<name>" when tracing is on *)
let c_steps = Obs.counter "rewrite.steps"
let c_applied = Obs.counter "rewrite.applied"
let c_invocations = Obs.counter "rewrite.invocations"

type rewriter = {
  mutable changed : bool;
  mutable worklist : Op.op list;
}

(* A pattern looks at a single op and either rewrites (returns true) or
   declines (returns false). Patterns must use the [rw_*] helpers below so
   newly created / affected ops are revisited. *)
type pattern = {
  p_name : string;
  p_benefit : int;
  p_match_name : string option; (* fast filter: only try on this op name *)
  p_rewrite : rewriter -> Op.op -> bool;
}

let pattern ?(benefit = 1) ?match_name name rewrite =
  { p_name = name; p_benefit = benefit; p_match_name = match_name;
    p_rewrite = rewrite }

let enqueue rw op = rw.worklist <- op :: rw.worklist

(* Replace all results of [op] with [values] and erase it. *)
let replace_op rw op values =
  let results = Op.results op in
  if List.length results <> List.length values then
    invalid_arg "Rewrite.replace_op: result count mismatch";
  List.iter2
    (fun r v ->
      (* Re-visit users: they may now fold further. *)
      List.iter (fun (u : Op.use) -> enqueue rw u.Op.u_op) r.Op.v_uses;
      Op.replace_all_uses_with r v)
    results values;
  Op.erase op;
  rw.changed <- true

let erase_op rw op =
  Op.erase op;
  rw.changed <- true

(* Create an op before [anchor], enqueue it for pattern processing. *)
let create_before rw ~anchor ?operands ?results ?attrs ?regions name =
  let op = Op.create ?operands ?results ?attrs ?regions name in
  Op.insert_before ~anchor op;
  enqueue rw op;
  op

let notify_changed rw op =
  enqueue rw op;
  rw.changed <- true

(* Apply [patterns] to all ops nested in [top] until fixpoint. Returns
   whether anything changed. A safety cap bounds pathological pattern sets;
   hitting it is a bug in the patterns, so we fail loudly. *)
exception Nontermination

let apply_greedily ?(max_iterations = 2_000_000) patterns top =
  let patterns =
    List.sort (fun a b -> compare b.p_benefit a.p_benefit) patterns
  in
  let by_name : (string, pattern list) Hashtbl.t = Hashtbl.create 16 in
  let generic = ref [] in
  List.iter
    (fun p ->
      match p.p_match_name with
      | Some n ->
        Hashtbl.replace by_name n (Hashtbl.find_opt by_name n
                                   |> Option.value ~default:[] |> fun l ->
                                   l @ [ p ])
      | None -> generic := !generic @ [ p ])
    patterns;
  let rw = { changed = false; worklist = [] } in
  Op.walk_inner (fun op -> enqueue rw op) top;
  (* The worklist was built front-to-back reversed; fine for fixpoints. *)
  let is_live op =
    (* An op removed from its block must not be rewritten again. *)
    Op.parent_block op <> None
  in
  Obs.incr c_invocations;
  let steps = ref 0 in
  let rec drain () =
    match rw.worklist with
    | [] -> ()
    | op :: rest ->
      rw.worklist <- rest;
      incr steps;
      Obs.incr c_steps;
      if !steps > max_iterations then raise Nontermination;
      if is_live op then begin
        let candidates =
          (Hashtbl.find_opt by_name op.Op.o_name
          |> Option.value ~default:[])
          @ !generic
        in
        let rec try_patterns = function
          | [] -> ()
          | p :: ps ->
            if is_live op then
              if p.p_rewrite rw op then begin
                Obs.incr c_applied;
                if Obs.enabled () then
                  Obs.incr (Obs.counter ("rewrite.pattern." ^ p.p_name))
              end
              else try_patterns ps
        in
        try_patterns candidates
      end;
      drain ()
  in
  drain ();
  rw.changed

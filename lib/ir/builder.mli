(** Insertion-point based IR builder, the work-horse of every lowering. *)

type insertion =
  | At_end of Op.block
  | At_start of Op.block
  | Before of Op.op
  | After of Op.op
      (** after inserting, the point advances so consecutive inserts stay
          in source order *)

type t = { mutable point : insertion; mutable loc : (int * int) option }

val create : insertion -> t
val at_end : Op.block -> t
val at_start : Op.block -> t
val before : Op.op -> t
val after : Op.op -> t
val set_point : t -> insertion -> unit

(** Current source location [(line, col)]. While set, every op built via
    {!op}/{!op1} carries it as a ["loc"] attribute ({!Attr.Loc_a}) — the
    frontend lowering updates it per statement/expression so diagnostics
    can point back into the Fortran source. *)
val set_loc : t -> (int * int) option -> unit

val loc : t -> (int * int) option

(** Insert an already-created op at the current point. *)
val insert : t -> Op.op -> Op.op

(** Create an op and insert it; attaches the builder's current source
    location unless [attrs] already has a ["loc"] entry. *)
val op :
  t ->
  ?operands:Op.value list ->
  ?results:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  string ->
  Op.op

(** Like {!op} for single-result operations; returns the result value. *)
val op1 :
  t ->
  ?operands:Op.value list ->
  ?results:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  string ->
  Op.value

(** The block the insertion point lives in. *)
val block : t -> Op.block

(** Pass manager: named module passes with optional verification between
    passes and per-pass timing — the mini equivalent of mlir-opt's
    [--pass-pipeline] driver from the paper's Listing 4. Every pass run
    is also recorded as an [Fsc_obs.Obs] span (category "pass") when
    tracing is enabled. *)

val log_src : Logs.src

type t = {
  name : string;  (** printed in pipelines, timings and errors *)
  run : Op.op -> unit;  (** transforms the module in place *)
}

val create : string -> (Op.op -> unit) -> t

type stats = {
  s_pass : string;
  s_seconds : float;  (** pass execution only *)
  s_verify_seconds : float;  (** post-pass verification, timed separately *)
  s_ops_before : int;  (** ops in the module before the pass *)
  s_ops_after : int;  (** ops in the module after the pass *)
}

(** Raised when a pass (or the post-pass verifier, suffixed
    [" (verify)"]) throws; carries the failing stage name, the original
    exception, and the stats recorded up to and including the failing
    pass. The original backtrace is preserved. *)
exception Pipeline_error of string * exn * stats list

(** Number of ops nested in (and including) a module op. *)
val count_ops : Op.op -> int

(** Run the passes in order over module [m]. With [verify_each] (default
    true) the IR is verified after every pass — against [ctx]'s dialect
    registry when given, otherwise structurally only. Returns per-pass
    timings. *)
val run_pipeline :
  ?verify_each:bool -> ?ctx:Dialect.context -> t list -> Op.op -> stats list

(** Wall time including verification. *)
val total_seconds : stats list -> float

(** Verification time alone, across all passes. *)
val verify_seconds : stats list -> float

(** Human-readable timing table: one line per pass with op-count delta,
    then a verifier line (mirroring mlir-opt -mlir-timing) and a total. *)
val report_stats : stats list -> string

(* Operation attributes: compile-time constant metadata attached to ops,
   mirroring MLIR's attribute dictionary. *)

type t =
  | Unit_a
  | Bool_a of bool
  | Int_a of int
  | Float_a of float
  | Str_a of string
  | Type_a of Types.t
  | Arr_a of t list
  | Index_a of int list (* #stencil.index<0, -1> and friends *)
  | Sym_a of string     (* @symbol reference *)
  | Dict_a of (string * t) list
  | Loc_a of int * int  (* source location: line, column *)

let rec to_string = function
  | Unit_a -> "unit"
  | Bool_a b -> if b then "true" else "false"
  | Int_a i -> string_of_int i
  | Float_a f ->
    (* Keep floats round-trippable through the parser. *)
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'n' (* nan, inf(n) *)
    then s
    else s ^ ".0"
  | Str_a s -> Printf.sprintf "%S" s
  | Type_a t -> Types.to_string t
  | Arr_a xs -> "[" ^ String.concat ", " (List.map to_string xs) ^ "]"
  | Index_a xs ->
    "#stencil.index<" ^ String.concat ", " (List.map string_of_int xs) ^ ">"
  | Sym_a s -> "@" ^ s
  | Dict_a kvs ->
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%S = %s" k (to_string v)) kvs)
    ^ "}"
  | Loc_a (line, col) -> Printf.sprintf "loc(%d:%d)" line col

let pp fmt a = Format.pp_print_string fmt (to_string a)

let equal (a : t) (b : t) = a = b

(* Accessors used pervasively by passes; raising on shape mismatch keeps
   verifier bugs loud. *)
let as_int = function
  | Int_a i -> i
  | a -> invalid_arg ("Attr.as_int: " ^ to_string a)

let as_float = function
  | Float_a f -> f
  | Int_a i -> float_of_int i
  | a -> invalid_arg ("Attr.as_float: " ^ to_string a)

let as_string = function
  | Str_a s -> s
  | Sym_a s -> s
  | a -> invalid_arg ("Attr.as_string: " ^ to_string a)

let as_bool = function
  | Bool_a b -> b
  | a -> invalid_arg ("Attr.as_bool: " ^ to_string a)

let as_type = function
  | Type_a t -> t
  | a -> invalid_arg ("Attr.as_type: " ^ to_string a)

let as_index = function
  | Index_a xs -> xs
  | Arr_a xs -> List.map as_int xs
  | a -> invalid_arg ("Attr.as_index: " ^ to_string a)

let as_array = function
  | Arr_a xs -> xs
  | a -> invalid_arg ("Attr.as_array: " ^ to_string a)

let as_loc = function
  | Loc_a (line, col) -> (line, col)
  | a -> invalid_arg ("Attr.as_loc: " ^ to_string a)

(** Greedy pattern-rewrite driver — the engine behind canonicalisation
    and the dialect-conversion style lowerings. *)

type rewriter

(** A pattern inspects one operation and either rewrites it (returning
    [true]) or declines ([false]). Patterns must perform their IR surgery
    through the helpers below so affected operations are revisited. *)
type pattern = {
  p_name : string;
  p_benefit : int;  (** higher-benefit patterns are tried first *)
  p_match_name : string option;
      (** fast filter: only try the pattern on ops with this name *)
  p_rewrite : rewriter -> Op.op -> bool;
}

val pattern :
  ?benefit:int ->
  ?match_name:string ->
  string ->
  (rewriter -> Op.op -> bool) ->
  pattern

(** Schedule an op for (re)processing. *)
val enqueue : rewriter -> Op.op -> unit

(** Replace all results of [op] with [values] and erase it; users are
    re-enqueued. *)
val replace_op : rewriter -> Op.op -> Op.value list -> unit

val erase_op : rewriter -> Op.op -> unit

(** Create an op before [anchor] and enqueue it. *)
val create_before :
  rewriter ->
  anchor:Op.op ->
  ?operands:Op.value list ->
  ?results:Types.t list ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Op.region list ->
  string ->
  Op.op

(** Record an in-place modification so the op is revisited. *)
val notify_changed : rewriter -> Op.op -> unit

(** The [max_iterations] non-termination backstop of {!apply_greedily}
    fired: the pattern set keeps rewriting without reaching a fixpoint.
    Drivers convert this into a diagnostic naming the offending pass. *)
exception Nontermination

(** Apply [patterns] to everything nested in [top] until fixpoint.
    Returns whether anything changed.
    @raise Nontermination when [max_iterations] is exceeded. *)
val apply_greedily : ?max_iterations:int -> pattern list -> Op.op -> bool

(** Operation attributes: compile-time constant metadata attached to
    operations, mirroring MLIR's attribute dictionary. The textual form
    ({!to_string}) round-trips through {!Parser.parse_attr}. *)

type t =
  | Unit_a
  | Bool_a of bool
  | Int_a of int
  | Float_a of float
  | Str_a of string
  | Type_a of Types.t
  | Arr_a of t list
  | Index_a of int list  (** [#stencil.index<0, -1>] and friends *)
  | Sym_a of string  (** [@symbol] reference *)
  | Dict_a of (string * t) list
  | Loc_a of int * int
      (** source location [loc(line:col)] threaded from the Fortran
          frontend onto lowered operations *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** {2 Accessors}

    All raise [Invalid_argument] on a shape mismatch — verifier bugs
    should be loud. [as_float] accepts ints; [as_index] accepts arrays of
    ints; [as_string] accepts symbols. *)

val as_int : t -> int
val as_float : t -> float
val as_string : t -> string
val as_bool : t -> bool
val as_type : t -> Types.t
val as_index : t -> int list
val as_array : t -> t list
val as_loc : t -> int * int

(* Pass manager: named module passes, optional verification between
   passes, and per-pass timing/statistics — the mini equivalent of
   mlir-opt's --pass-pipeline driver from Listing 4 of the paper.

   Every pass execution is also recorded as an [Obs] span (category
   "pass", with before/after op counts in the args) so `sfc --trace`
   and the bench harness can attribute pipeline cost per pass, the way
   mlir-opt's -mlir-timing does. *)

module Obs = Fsc_obs.Obs

let log_src = Logs.Src.create "fsc.pass" ~doc:"pass manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  name : string;
  run : Op.op -> unit;
}

let create name run = { name; run }

type stats = {
  s_pass : string;
  s_seconds : float; (* pass execution only *)
  s_verify_seconds : float; (* post-pass verification, timed separately *)
  s_ops_before : int;
  s_ops_after : int;
}

(* A pipeline failure carries the failing pass name, the original
   exception, and the stats recorded up to and including the failing
   pass, so a crash is still attributable and timeable. *)
exception Pipeline_error of string * exn * stats list

let count_ops m =
  let n = ref 0 in
  Op.walk (fun _ -> Stdlib.incr n) m;
  !n

(* Run [passes] over module [m]. When [verify_each] is set, the IR is
   verified after every pass (against [ctx] when provided, otherwise only
   structurally), mirroring mlir-opt's -verify-each. Verification time is
   measured separately from the pass so [report_stats] does not attribute
   verifier cost to the wrong pass. *)
let run_pipeline ?(verify_each = true) ?ctx passes m =
  let stats = ref [] in
  let fail name e bt =
    Printexc.raise_with_backtrace
      (Pipeline_error (name, e, List.rev !stats))
      bt
  in
  List.iter
    (fun p ->
      let ops_before = count_ops m in
      let sp = Obs.span_begin ~cat:"pass" p.name in
      let t0 = Unix.gettimeofday () in
      let pass_result =
        try
          p.run m;
          Ok ()
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      let dt = Unix.gettimeofday () -. t0 in
      let verify_result, vdt =
        match pass_result with
        | Ok () when verify_each ->
          let vsp = Obs.span_begin ~cat:"verify" ("verify after " ^ p.name) in
          let v0 = Unix.gettimeofday () in
          let r =
            try
              (match ctx with
              | Some c -> Verifier.verify_in_context_exn c m
              | None -> Verifier.verify_exn m);
              Ok ()
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          let vdt = Unix.gettimeofday () -. v0 in
          Obs.span_end vsp;
          (r, vdt)
        | _ -> (Ok (), 0.)
      in
      let ops_after = count_ops m in
      (* the stat is recorded before any re-raise: a failing pass still
         shows up in the report with the time it burned *)
      stats :=
        { s_pass = p.name; s_seconds = dt; s_verify_seconds = vdt;
          s_ops_before = ops_before; s_ops_after = ops_after }
        :: !stats;
      let error_args =
        match pass_result with
        | Ok () -> []
        | Error (e, _) -> [ ("error", Obs.A_str (Printexc.to_string e)) ]
      in
      Obs.span_end
        ~args:
          ([ ("ops_before", Obs.A_int ops_before);
             ("ops_after", Obs.A_int ops_after);
             ("verify_ms", Obs.A_float (1000. *. vdt)) ]
          @ error_args)
        sp;
      Log.debug (fun f ->
          f "pass %s: %.3f ms (%d -> %d ops)" p.name (1000. *. dt) ops_before
            ops_after);
      (match pass_result with
      | Ok () -> ()
      | Error (e, bt) -> fail p.name e bt);
      match verify_result with
      | Ok () -> ()
      | Error (e, bt) -> fail (p.name ^ " (verify)") e bt)
    passes;
  List.rev !stats

let total_seconds stats =
  List.fold_left
    (fun acc s -> acc +. s.s_seconds +. s.s_verify_seconds)
    0. stats

let verify_seconds stats =
  List.fold_left (fun acc s -> acc +. s.s_verify_seconds) 0. stats

let report_stats stats =
  let lines =
    List.map
      (fun s ->
        let delta = s.s_ops_after - s.s_ops_before in
        Printf.sprintf "  %-45s %8.3f ms   %5d ops (%+d)" s.s_pass
          (1000. *. s.s_seconds) s.s_ops_after delta)
      stats
  in
  let vs = verify_seconds stats in
  let lines =
    if vs > 0. then
      lines
      @ [ Printf.sprintf "  %-45s %8.3f ms" "(verifier)" (1000. *. vs) ]
    else lines
  in
  String.concat "\n"
    (lines
    @ [ Printf.sprintf "  %-45s %8.3f ms" "total"
          (1000. *. total_seconds stats) ])

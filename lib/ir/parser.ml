(* Parser for the generic operation syntax emitted by [Printer].

   Scannerless recursive descent over the raw string: MLIR's shaped-type
   syntax (e.g. memref<10x20xf64>) does not tokenise cleanly, so types are
   parsed character-wise, which in turn makes a separate lexer more trouble
   than it is worth at this scale. *)

exception Parse_error of string * int (* message, position *)

type state = {
  src : string;
  mutable pos : int;
  (* value name -> value, block label -> block *)
  values : (string, Op.value) Hashtbl.t;
  blocks : (string, Op.block) Hashtbl.t;
}

let error st msg = raise (Parse_error (msg, st.pos))

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  if not (eof st) then
    match peek st with
    | ' ' | '\t' | '\n' | '\r' ->
      advance st;
      skip_ws st
    | '/' when peek2 st = '/' ->
      while (not (eof st)) && peek st <> '\n' do
        advance st
      done;
      skip_ws st
    | _ -> ()

let expect_char st c =
  skip_ws st;
  if peek st = c then advance st
  else error st (Printf.sprintf "expected %C, found %C" c (peek st))

let try_char st c =
  skip_ws st;
  if peek st = c then begin
    advance st;
    true
  end
  else false

let looking_at st s =
  skip_ws st;
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect_string st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else error st (Printf.sprintf "expected %S" s)

let try_string st s =
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '$' || c = '-'

let parse_ident st =
  skip_ws st;
  let start = st.pos in
  while (not (eof st)) && is_ident_char (peek st) do
    advance st
  done;
  if st.pos = start then error st "expected identifier";
  String.sub st.src start (st.pos - start)

(* A quoted string with OCaml-compatible escapes (we print with %S). *)
let parse_quoted st =
  skip_ws st;
  expect_char st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if eof st then error st "unterminated string"
    else
      match peek st with
      | '"' -> advance st
      | '\\' ->
        advance st;
        (match peek st with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | '\\' -> Buffer.add_char b '\\'
        | '"' -> Buffer.add_char b '"'
        | c -> Buffer.add_char b c);
        advance st;
        go ()
      | c ->
        Buffer.add_char b c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents b

let is_digit c = c >= '0' && c <= '9'

(* Integer or float literal; returns the raw lexeme. *)
let parse_number_lexeme st =
  skip_ws st;
  let start = st.pos in
  if peek st = '-' then advance st;
  while
    (not (eof st))
    && (is_digit (peek st) || peek st = '.' || peek st = 'e'
        || (peek st = '+' && st.pos > start && st.src.[st.pos - 1] = 'e')
        || (peek st = '-' && st.pos > start && st.src.[st.pos - 1] = 'e'))
  do
    advance st
  done;
  if st.pos = start then error st "expected number";
  String.sub st.src start (st.pos - start)

let parse_int st =
  let lx = parse_number_lexeme st in
  match int_of_string_opt lx with
  | Some i -> i
  | None -> error st ("expected integer, found " ^ lx)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_type st : Types.t =
  skip_ws st;
  if try_string st "memref<" then parse_shaped st ~close:'>' memref_make
  else if try_string st "vector<" then
    parse_shaped st ~close:'>' (fun dims t ->
        Types.Vector
          ( List.map
              (function
                | Types.Static n -> n
                | Types.Dynamic -> error st "vector dims must be static")
              dims,
            t ))
  else if try_string st "index" then Types.Index
  else if try_string st "none" then Types.None_t
  else if try_string st "i1" && not (is_digit (peek st)) then Types.I1
  else if try_string st "i8" then Types.I8
  else if try_string st "i16" then Types.I16
  else if try_string st "i32" then Types.I32
  else if try_string st "i64" then Types.I64
  else if try_string st "f32" then Types.F32
  else if try_string st "f64" then Types.F64
  else if try_string st "!llvm.ptr" then
    if try_char st '<' then begin
      let t = parse_type st in
      expect_char st '>';
      Types.Llvm_typed_ptr t
    end
    else Types.Llvm_ptr
  else if try_string st "!llvm.struct<(" then begin
    let ts = parse_type_list st ~close:')' in
    expect_string st ">";
    Types.Llvm_struct ts
  end
  else if try_string st "!llvm.array<" then begin
    let n = parse_int st in
    skip_ws st;
    expect_char st 'x';
    let t = parse_type st in
    expect_char st '>';
    Types.Llvm_array (n, t)
  end
  else if try_string st "!fir.ref<" then wrap st (fun t -> Types.Fir_ref t)
  else if try_string st "!fir.heap<" then wrap st (fun t -> Types.Fir_heap t)
  else if try_string st "!fir.box<" then wrap st (fun t -> Types.Fir_box t)
  else if try_string st "!fir.llvm_ptr<" then
    wrap st (fun t -> Types.Fir_llvm_ptr t)
  else if try_string st "!fir.char<" then begin
    let n = parse_int st in
    expect_char st '>';
    Types.Fir_char n
  end
  else if try_string st "!fir.array<" then
    parse_shaped st ~close:'>' (fun dims t -> Types.Fir_array (dims, t))
  else if try_string st "!stencil.field<" then
    parse_bounded st (fun b t -> Types.Stencil_field (b, t))
  else if try_string st "!stencil.temp<" then
    parse_bounded st (fun b t -> Types.Stencil_temp (b, t))
  else if try_string st "!stencil.result<" then
    wrap st (fun t -> Types.Stencil_result t)
  else if looking_at st "(" then begin
    expect_char st '(';
    let args = parse_type_list st ~close:')' in
    skip_ws st;
    expect_string st "->";
    expect_char st '(';
    let rets = parse_type_list st ~close:')' in
    Types.Func_t (args, rets)
  end
  else error st "expected type"

and wrap st mk =
  let t = parse_type st in
  expect_char st '>';
  mk t

and memref_make dims t = Types.Memref (dims, t)

and parse_type_list st ~close =
  skip_ws st;
  if peek st = close then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let t = parse_type st in
      if try_char st ',' then go (t :: acc)
      else begin
        expect_char st close;
        List.rev (t :: acc)
      end
    in
    go []
  end

(* Body of memref< ... > and !fir.array< ... >: dims separated by 'x'
   followed by an element type. *)
and parse_shaped st ~close mk =
  let rec go dims =
    skip_ws st;
    if peek st = '?' then begin
      advance st;
      expect_char st 'x';
      go (Types.Dynamic :: dims)
    end
    else if is_digit (peek st) || (peek st = '-' && is_digit (peek2 st)) then begin
      (* Could be a dim (followed by 'x') — dims are always ints here. *)
      let n = parse_int st in
      expect_char st 'x';
      go (Types.Static n :: dims)
    end
    else begin
      let t = parse_type st in
      expect_char st close;
      mk (List.rev dims) t
    end
  in
  go []

(* Body of !stencil.field< [l,h]x[l,h]x elem > *)
and parse_bounded st mk =
  let rec go bounds =
    skip_ws st;
    if peek st = '[' then begin
      advance st;
      let lo = parse_int st in
      expect_char st ',';
      let hi = parse_int st in
      expect_char st ']';
      expect_char st 'x';
      go ((lo, hi) :: bounds)
    end
    else begin
      let t = parse_type st in
      expect_char st '>';
      mk (List.rev bounds) t
    end
  in
  go []

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_attr st : Attr.t =
  skip_ws st;
  match peek st with
  | '"' -> Attr.Str_a (parse_quoted st)
  | '@' ->
    advance st;
    (* possibly-nested reference: @sym, @module::sym or @module::@sym
       (gpu.launch_func kernel references are module-qualified) *)
    let rec nested acc =
      if
        st.pos + 1 < String.length st.src
        && st.src.[st.pos] = ':'
        && st.src.[st.pos + 1] = ':'
      then begin
        advance st;
        advance st;
        if (not (eof st)) && peek st = '@' then advance st;
        nested (acc ^ "::" ^ parse_ident st)
      end
      else acc
    in
    Attr.Sym_a (nested (parse_ident st))
  | '[' ->
    advance st;
    skip_ws st;
    if peek st = ']' then begin
      advance st;
      Attr.Arr_a []
    end
    else begin
      let rec go acc =
        let a = parse_attr st in
        if try_char st ',' then go (a :: acc)
        else begin
          expect_char st ']';
          Attr.Arr_a (List.rev (a :: acc))
        end
      in
      go []
    end
  | '{' ->
    advance st;
    skip_ws st;
    if peek st = '}' then begin
      advance st;
      Attr.Dict_a []
    end
    else begin
      let rec go acc =
        let k = parse_quoted st in
        skip_ws st;
        expect_char st '=';
        let v = parse_attr st in
        if try_char st ',' then go ((k, v) :: acc)
        else begin
          expect_char st '}';
          Attr.Dict_a (List.rev ((k, v) :: acc))
        end
      in
      go []
    end
  | '#' ->
    expect_string st "#stencil.index<";
    let rec go acc =
      let i = parse_int st in
      if try_char st ',' then go (i :: acc)
      else begin
        expect_char st '>';
        Attr.Index_a (List.rev (i :: acc))
      end
    in
    go []
  | c when is_digit c || c = '-' ->
    let lx = parse_number_lexeme st in
    (match int_of_string_opt lx with
    | Some i -> Attr.Int_a i
    | None -> (
      match float_of_string_opt lx with
      | Some f -> Attr.Float_a f
      | None -> error st ("bad numeric attribute " ^ lx)))
  | _ ->
    if try_string st "true" then Attr.Bool_a true
    else if try_string st "false" then Attr.Bool_a false
    else if looking_at st "unit" then begin
      expect_string st "unit";
      Attr.Unit_a
    end
    else if
      looking_at st "nan" || looking_at st "inf"
    then begin
      let lx = parse_ident st in
      Attr.Float_a (float_of_string lx)
    end
    else if looking_at st "loc(" then begin
      expect_string st "loc(";
      let line = parse_int st in
      expect_char st ':';
      let col = parse_int st in
      expect_char st ')';
      Attr.Loc_a (line, col)
    end
    else Attr.Type_a (parse_type st)

(* ------------------------------------------------------------------ *)
(* Values / operations / regions / blocks                              *)
(* ------------------------------------------------------------------ *)

let parse_value_name st =
  skip_ws st;
  expect_char st '%';
  let start = st.pos in
  while (not (eof st)) && is_ident_char (peek st) do
    advance st
  done;
  "%" ^ String.sub st.src start (st.pos - start)

let lookup_value st name =
  match Hashtbl.find_opt st.values name with
  | Some v -> v
  | None -> error st ("use of undefined value " ^ name)

let rec parse_op st : Op.op =
  skip_ws st;
  (* Optional result list *)
  let result_names =
    if peek st = '%' then begin
      let rec go acc =
        let n = parse_value_name st in
        if try_char st ',' then go (n :: acc)
        else begin
          skip_ws st;
          expect_char st '=';
          List.rev (n :: acc)
        end
      in
      go []
    end
    else []
  in
  let name = parse_quoted st in
  expect_char st '(';
  let operand_names =
    skip_ws st;
    if peek st = ')' then begin
      advance st;
      []
    end
    else begin
      let rec go acc =
        let n = parse_value_name st in
        if try_char st ',' then go (n :: acc)
        else begin
          expect_char st ')';
          List.rev (n :: acc)
        end
      in
      go []
    end
  in
  let operands = List.map (lookup_value st) operand_names in
  (* Optional regions: " ({...}, {...})" *)
  let regions =
    skip_ws st;
    if peek st = '(' && (peek2 st = '{' ||
                         (* allow whitespace between ( and { *)
                         (let save = st.pos in
                          advance st;
                          skip_ws st;
                          let r = peek st = '{' in
                          st.pos <- save;
                          r))
    then begin
      expect_char st '(';
      let rec go acc =
        let r = parse_region st in
        if try_char st ',' then go (r :: acc)
        else begin
          expect_char st ')';
          List.rev (r :: acc)
        end
      in
      go []
    end
    else []
  in
  (* Optional attribute dict *)
  let attrs =
    skip_ws st;
    if peek st = '{' then begin
      match parse_attr st with
      | Attr.Dict_a kvs -> kvs
      | _ -> error st "expected attribute dictionary"
    end
    else []
  in
  skip_ws st;
  expect_char st ':';
  expect_char st '(';
  let _operand_types = parse_type_list st ~close:')' in
  skip_ws st;
  expect_string st "->";
  skip_ws st;
  let result_types =
    if peek st = '(' then begin
      advance st;
      parse_type_list st ~close:')'
    end
    else [ parse_type st ]
  in
  if List.length result_types <> List.length result_names then
    error st
      (Printf.sprintf "op %s: %d result names but %d result types" name
         (List.length result_names)
         (List.length result_types));
  let op = Op.create name ~operands ~results:result_types ~attrs ~regions in
  List.iteri
    (fun i n -> Hashtbl.replace st.values n (Op.result ~index:i op))
    result_names;
  op

and parse_region st : Op.region =
  expect_char st '{';
  let region = Op.create_region () in
  skip_ws st;
  (* Entry block may omit its label. *)
  if peek st = '}' then begin
    advance st;
    (* Completely empty region: give it an empty entry block. *)
    Op.add_block region (Op.create_block ());
    region
  end
  else begin
    let rec blocks () =
      skip_ws st;
      if peek st = '}' then advance st
      else begin
        parse_block st region;
        blocks ()
      end
    in
    if peek st <> '^' then begin
      (* implicit entry block *)
      let b = Op.create_block () in
      Op.add_block region b;
      parse_block_body st b
    end;
    blocks ();
    region
  end

and parse_block st region =
  skip_ws st;
  expect_char st '^';
  let label = "^" ^ parse_ident st in
  skip_ws st;
  let args =
    if peek st = '(' then begin
      advance st;
      let rec go acc =
        let n = parse_value_name st in
        expect_char st ':';
        let t = parse_type st in
        if try_char st ',' then go ((n, t) :: acc)
        else begin
          expect_char st ')';
          List.rev ((n, t) :: acc)
        end
      in
      go []
    end
    else []
  in
  expect_char st ':';
  let b = Op.create_block ~args:(List.map snd args) () in
  List.iteri
    (fun i (n, _) -> Hashtbl.replace st.values n (Op.block_arg ~index:i b))
    args;
  Hashtbl.replace st.blocks label b;
  Op.add_block region b;
  parse_block_body st b

and parse_block_body st b =
  let rec go () =
    skip_ws st;
    if eof st || peek st = '}' || peek st = '^' then ()
    else begin
      let op = parse_op st in
      Op.append_to b op;
      go ()
    end
  in
  go ()

let parse_module src =
  let st =
    { src; pos = 0; values = Hashtbl.create 64; blocks = Hashtbl.create 8 }
  in
  let op = parse_op st in
  skip_ws st;
  if not (eof st) then error st "trailing input after module";
  op

let parse_module_exn = parse_module

let parse_module_result src =
  try Ok (parse_module src) with
  | Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | Failure msg | Invalid_argument msg ->
    (* malformed numerics and similar lexical junk surface as library
       exceptions; callers get a uniform Error either way *)
    Error (Printf.sprintf "parse error: %s" msg)

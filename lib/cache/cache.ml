(* Content-addressed artifact cache: a mutex-guarded in-memory LRU over
   an atomically written on-disk store. See the interface for the
   contract; the load path is deliberately paranoid because cache files
   are the one input the rest of the compiler does not control — every
   entry re-earns its place through the caller's validator on every hit,
   and anything suspect is deleted rather than reported. *)

module Obs = Fsc_obs.Obs

(* Disk entry layout:

     sfc-cache <version> <key> <payload-bytes>\n<payload>

   The explicit payload length makes truncation (a crash between the
   atomic rename of one entry and a later partial overwrite, or plain
   filesystem damage) detectable without parsing the payload. *)
let magic = "sfc-cache"

type entry = {
  e_payload : string;
  mutable e_stamp : int; (* LRU clock value at last touch *)
}

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  invalid : int;
  stores : int;
  store_failures : int;
  disk_bytes : int;
  disk_evictions : int;
}

type t = {
  mutex : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mem_entries : int;
  cache_dir : string option;
  t_version : int;
  max_disk_bytes : int option;
  (* disk accounting (lazy: populated by the first disk operation) *)
  mutable d_scanned : bool;
  d_files : (string, int) Hashtbl.t; (* basename -> bytes *)
  d_used : (string, float) Hashtbl.t; (* key -> last-used time *)
  mutable d_bytes : int;
  mutable tick : int;
  mutable s_mem_hits : int;
  mutable s_disk_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_invalid : int;
  mutable s_stores : int;
  mutable s_store_failures : int;
  mutable s_disk_evictions : int;
}

(* Obs counters (process-wide; no-ops unless recording is enabled) so a
   --stats run shows cache behaviour alongside spans and pool counters. *)
let c_hit = Obs.counter "cache.hit"
let c_miss = Obs.counter "cache.miss"
let c_invalid = Obs.counter "cache.invalid"
let c_evict = Obs.counter "cache.evict"
let c_disk_evict = Obs.counter "cache.disk_evict"

let default_dir () =
  let base =
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> d
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat h ".cache"
      | _ -> Filename.get_temp_dir_name ())
  in
  Filename.concat base "sfc"

let create ?(mem_entries = 64) ?(disk = true) ?dir ?max_disk_bytes ~version
    () =
  let cache_dir =
    if disk then Some (match dir with Some d -> d | None -> default_dir ())
    else None
  in
  { mutex = Mutex.create (); tbl = Hashtbl.create 64;
    mem_entries = max 1 mem_entries; cache_dir; t_version = version;
    max_disk_bytes =
      Option.bind max_disk_bytes (fun b -> if b <= 0 then None else Some b);
    d_scanned = false; d_files = Hashtbl.create 64;
    d_used = Hashtbl.create 64; d_bytes = 0;
    tick = 0; s_mem_hits = 0; s_disk_hits = 0; s_misses = 0;
    s_evictions = 0; s_invalid = 0; s_stores = 0; s_store_failures = 0;
    s_disk_evictions = 0 }

let version t = t.t_version
let dir t = t.cache_dir

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let digest t parts =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (Printf.sprintf "%s %d" magic t.t_version :: parts)))

let entry_path t ~key =
  Option.map (fun d -> Filename.concat d (key ^ ".art")) t.cache_dir

(* ---------------- memory layer ---------------- *)

let touch t e =
  t.tick <- t.tick + 1;
  e.e_stamp <- t.tick

(* O(n) scan for the least recently used entry; the memory layer is
   bounded to tens of entries, so simplicity wins over a linked list. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.e_stamp -> ()
      | _ -> victim := Some (key, e.e_stamp))
    t.tbl;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.s_evictions <- t.s_evictions + 1;
    Obs.incr c_evict
  | None -> ()

let mem_insert t key payload =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    let e' = { e_payload = payload; e_stamp = e.e_stamp } in
    touch t e';
    Hashtbl.replace t.tbl key e'
  | None ->
    if Hashtbl.length t.tbl >= t.mem_entries then evict_lru t;
    let e = { e_payload = payload; e_stamp = 0 } in
    touch t e;
    Hashtbl.add t.tbl key e

let mem_keys t =
  locked t (fun () ->
      Hashtbl.fold (fun key e acc -> (key, e.e_stamp) :: acc) t.tbl []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.map fst)

(* ---------------- disk byte accounting ----------------

   The disk store is bounded by [max_disk_bytes]: every write is
   recorded in an in-memory per-file size index (populated lazily by
   one directory scan), and going over budget evicts whole artifact
   sets — the [.art] entry and every sidecar of a key together, least
   recently used first — so eviction can never leave a
   sidecar-incomplete set behind. Recency survives restarts because
   disk hits also bump the entry file's mtime, which seeds [d_used] on
   the next scan. All helpers here expect [t.mutex] held. *)

(* [<key>.<rest>] -> key; dotfiles (in-flight temp files) and foreign
   names are not budget-accounted. *)
let key_of_file f =
  if String.length f = 0 || f.[0] = '.' then None
  else
    match String.index_opt f '.' with
    | None | Some 0 -> None
    | Some i -> Some (String.sub f 0 i)

let ensure_scanned t =
  if not t.d_scanned then begin
    t.d_scanned <- true;
    match t.cache_dir with
    | None -> ()
    | Some d -> (
      match Sys.readdir d with
      | exception Sys_error _ -> ()
      | files ->
        Array.iter
          (fun f ->
            match key_of_file f with
            | None -> ()
            | Some key -> (
              match Unix.stat (Filename.concat d f) with
              | exception Unix.Unix_error _ -> ()
              | st ->
                Hashtbl.replace t.d_files f st.Unix.st_size;
                t.d_bytes <- t.d_bytes + st.Unix.st_size;
                let prev =
                  Option.value (Hashtbl.find_opt t.d_used key) ~default:0.
                in
                Hashtbl.replace t.d_used key
                  (Float.max prev st.Unix.st_mtime)))
          files)
  end

let note_file_removed t fname =
  match Hashtbl.find_opt t.d_files fname with
  | None -> ()
  | Some bytes ->
    Hashtbl.remove t.d_files fname;
    t.d_bytes <- t.d_bytes - bytes

(* Whole-set removal: every file of [key] goes, or (if already gone)
   nothing does — never a partial set. *)
let evict_set t key =
  match t.cache_dir with
  | None -> ()
  | Some d ->
    let prefix = key ^ "." in
    let plen = String.length prefix in
    let victims =
      Hashtbl.fold
        (fun f _ acc ->
          if String.length f >= plen && String.sub f 0 plen = prefix then
            f :: acc
          else acc)
        t.d_files []
    in
    List.iter
      (fun f ->
        (try Sys.remove (Filename.concat d f) with Sys_error _ -> ());
        note_file_removed t f)
      victims;
    Hashtbl.remove t.d_used key;
    if victims <> [] then begin
      t.s_disk_evictions <- t.s_disk_evictions + 1;
      Obs.incr c_disk_evict
    end

let rec enforce_budget t ~keep =
  match t.max_disk_bytes with
  | None -> ()
  | Some budget ->
    if t.d_bytes > budget then begin
      let victim =
        Hashtbl.fold
          (fun key used acc ->
            if keep = Some key then acc
            else
              match acc with
              | Some (_, u) when u <= used -> acc
              | _ -> Some (key, used))
          t.d_used None
      in
      match victim with
      | None -> () (* nothing evictable (only the just-written set) *)
      | Some (key, _) ->
        evict_set t key;
        enforce_budget t ~keep
    end

let note_file_written t ~key fname =
  match t.cache_dir with
  | None -> ()
  | Some d ->
    ensure_scanned t;
    (match Unix.stat (Filename.concat d fname) with
    | exception Unix.Unix_error _ -> ()
    | st ->
      let prev =
        Option.value (Hashtbl.find_opt t.d_files fname) ~default:0
      in
      Hashtbl.replace t.d_files fname st.Unix.st_size;
      t.d_bytes <- t.d_bytes + st.Unix.st_size - prev;
      Hashtbl.replace t.d_used key (Unix.gettimeofday ()));
    enforce_budget t ~keep:(Some key)

let touch_disk_key t key =
  ensure_scanned t;
  if Hashtbl.mem t.d_used key then begin
    Hashtbl.replace t.d_used key (Unix.gettimeofday ());
    (* bump the entry mtime so recency survives a restart's rescan *)
    match entry_path t ~key with
    | Some p -> ( try Unix.utimes p 0. 0. with Unix.Unix_error _ -> ())
    | None -> ()
  end

(* ---------------- disk layer ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let encode_entry t ~key payload =
  Printf.sprintf "%s %d %s %d\n%s" magic t.t_version key
    (String.length payload)
    payload

(* [Ok payload] | [Error `Missing] | [Error `Invalid]: version skew,
   foreign key, truncation and malformed headers all map to `Invalid. *)
let decode_entry t ~key data =
  match String.index_opt data '\n' with
  | None -> Error `Invalid
  | Some nl -> (
    let header = String.sub data 0 nl in
    let payload_start = nl + 1 in
    match String.split_on_char ' ' header with
    | [ m; v; k; len ]
      when m = magic
           && int_of_string_opt v = Some t.t_version
           && k = key -> (
      match int_of_string_opt len with
      | Some n when String.length data - payload_start = n ->
        Ok (String.sub data payload_start n)
      | _ -> Error `Invalid)
    | _ -> Error `Invalid)

(* caller holds t.mutex *)
let disk_remove t key =
  match entry_path t ~key with
  | Some path when Sys.file_exists path ->
    (try Sys.remove path with Sys_error _ -> ());
    note_file_removed t (key ^ ".art")
  | _ -> ()

let disk_load t key =
  match entry_path t ~key with
  | None -> Error `Missing
  | Some path ->
    if not (Sys.file_exists path) then Error `Missing
    else (
      match read_file path with
      | exception Sys_error _ -> Error `Invalid
      | data -> decode_entry t ~key data)

(* Atomic publication: write the full entry to a private temp file in
   the same directory, then rename over the final name. Readers either
   see the old entry, the new one, or none — never a partial write. *)
let disk_store t key payload =
  match t.cache_dir with
  | None -> true
  | Some d -> (
    try
      mkdir_p d;
      let tmp =
        Filename.concat d
          (Printf.sprintf ".tmp.%s.%d" key (Unix.getpid ()))
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc (encode_entry t ~key payload);
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp (Filename.concat d (key ^ ".art"));
      note_file_written t ~key (key ^ ".art");
      true
    with Sys_error _ | Unix.Unix_error _ -> false)

(* ---------------- public API ---------------- *)

let put t ~key payload =
  locked t (fun () ->
      mem_insert t key payload;
      if disk_store t key payload then t.s_stores <- t.s_stores + 1
      else t.s_store_failures <- t.s_store_failures + 1)

(* Drop [key] everywhere after a failed validation. *)
let invalidate t key =
  Hashtbl.remove t.tbl key;
  disk_remove t key;
  t.s_invalid <- t.s_invalid + 1;
  Obs.incr c_invalid

let find t ~key ~validate =
  (* Fetch under the lock, validate outside it: validation re-parses IR
     and must not serialise every concurrent worker behind one mutex. *)
  let fetched =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          touch t e;
          `Mem e.e_payload
        | None -> (
          match disk_load t key with
          | Ok payload -> `Disk payload
          | Error `Missing -> `Missing
          | Error `Invalid -> `Invalid))
  in
  let miss () =
    locked t (fun () -> t.s_misses <- t.s_misses + 1);
    Obs.incr c_miss;
    None
  in
  match fetched with
  | `Missing -> miss ()
  | `Invalid ->
    locked t (fun () -> invalidate t key);
    miss ()
  | `Mem payload -> (
    match validate payload with
    | Ok v ->
      locked t (fun () -> t.s_mem_hits <- t.s_mem_hits + 1);
      Obs.incr c_hit;
      Some v
    | Error _ ->
      locked t (fun () -> invalidate t key);
      miss ())
  | `Disk payload -> (
    match validate payload with
    | Ok v ->
      locked t (fun () ->
          mem_insert t key payload;
          touch_disk_key t key;
          t.s_disk_hits <- t.s_disk_hits + 1);
      Obs.incr c_hit;
      Some v
    | Error _ ->
      locked t (fun () -> invalidate t key);
      miss ())

let stats t =
  locked t (fun () ->
      ensure_scanned t;
      { mem_hits = t.s_mem_hits; disk_hits = t.s_disk_hits;
        misses = t.s_misses; evictions = t.s_evictions;
        invalid = t.s_invalid; stores = t.s_stores;
        store_failures = t.s_store_failures; disk_bytes = t.d_bytes;
        disk_evictions = t.s_disk_evictions })

let disk_bytes t =
  locked t (fun () ->
      ensure_scanned t;
      t.d_bytes)

(* Startup sweep: delete orphaned temp files from crashed writers,
   rebuild the byte index from the directory, and evict LRU sets down
   to the budget. Returns temp files dropped + sets evicted. *)
let sweep t =
  locked t (fun () ->
      match t.cache_dir with
      | None -> 0
      | Some d ->
        let dropped_tmp = ref 0 in
        (match Sys.readdir d with
        | exception Sys_error _ -> ()
        | files ->
          Array.iter
            (fun f ->
              if String.length f >= 5 && String.sub f 0 5 = ".tmp." then (
                try
                  Sys.remove (Filename.concat d f);
                  incr dropped_tmp
                with Sys_error _ -> ()))
            files);
        Hashtbl.reset t.d_files;
        Hashtbl.reset t.d_used;
        t.d_bytes <- 0;
        t.d_scanned <- false;
        ensure_scanned t;
        let before = t.s_disk_evictions in
        enforce_budget t ~keep:None;
        t.s_disk_evictions - before + !dropped_tmp)

(* ---------------- sidecar artifacts ---------------- *)

(* Sidecars are raw files (`<key>.<ext>`) next to the `.art` entries:
   payloads like a Dynlink'able .cmxs must stay byte-exact on disk, so
   they skip the header-framed entry format. Their integrity story is
   the stamp sidecar instead: clients write a `.stamp` describing the
   producing toolchain and [revalidate_sidecars] sweeps whole sidecar
   sets whose stamp no longer matches at startup. *)

let c_sidecar_drop = Obs.counter "cache.sidecar_drop"

let valid_ext ext =
  ext <> ""
  && ext <> "art" (* reserved for the framed entry files *)
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       ext

let sidecar_path t ~key ~ext =
  if not (valid_ext ext) then
    invalid_arg ("Cache.sidecar_path: bad extension " ^ ext);
  Option.map (fun d -> Filename.concat d (key ^ "." ^ ext)) t.cache_dir

let find_sidecar t ~key ~ext =
  match sidecar_path t ~key ~ext with
  | Some path when Sys.file_exists path -> Some path
  | _ -> None

let read_sidecar t ~key ~ext =
  match find_sidecar t ~key ~ext with
  | None -> None
  | Some path -> ( try Some (read_file path) with Sys_error _ -> None)

(* Same atomic discipline as entries: write (or move) to a private name
   in the cache directory, then rename into place. *)
let publish t ~key ~ext ~install =
  match sidecar_path t ~key ~ext with
  | None -> None
  | Some path -> (
    try
      mkdir_p (Filename.dirname path);
      let tmp =
        Filename.concat (Filename.dirname path)
          (Printf.sprintf ".tmp.%s.%s.%d" key ext (Unix.getpid ()))
      in
      install tmp;
      Sys.rename tmp path;
      locked t (fun () ->
          t.s_stores <- t.s_stores + 1;
          note_file_written t ~key (key ^ "." ^ ext));
      Some path
    with Sys_error _ | Unix.Unix_error _ ->
      locked t (fun () -> t.s_store_failures <- t.s_store_failures + 1);
      None)

let put_sidecar t ~key ~ext payload =
  publish t ~key ~ext ~install:(fun tmp ->
      let oc = open_out_bin tmp in
      try
        output_string oc payload;
        close_out oc
      with e ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e)

let adopt_sidecar t ~key ~ext ~file =
  publish t ~key ~ext ~install:(fun tmp -> Sys.rename file tmp)

(* Every extension ever published under [key]; `.art` is not a sidecar. *)
let sidecar_exts t ~key =
  match t.cache_dir with
  | None -> []
  | Some d ->
    let prefix = key ^ "." in
    let plen = String.length prefix in
    (match Sys.readdir d with
    | exception Sys_error _ -> []
    | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             if String.length f > plen && String.sub f 0 plen = prefix then
               let ext = String.sub f plen (String.length f - plen) in
               if valid_ext ext then Some ext else None
             else None))

let remove_sidecars t ~key =
  let removed =
    List.filter_map
      (fun ext ->
        match sidecar_path t ~key ~ext with
        | Some path -> (
          try
            Sys.remove path;
            Some (key ^ "." ^ ext)
          with Sys_error _ -> None)
        | None -> None)
      (sidecar_exts t ~key)
  in
  if removed <> [] then
    locked t (fun () -> List.iter (note_file_removed t) removed)

let revalidate_sidecars ?validate t ~stamp =
  (* default policy: a set is valid iff its stamp equals [stamp];
     [validate] widens that (e.g. stamps carrying parameter suffixes
     that are valid under the current configuration) — it still only
     sees sets that have a readable stamp *)
  let is_valid =
    match validate with
    | Some f -> f
    | None -> fun ~key:_ ~stamp:s -> s = stamp
  in
  match t.cache_dir with
  | None -> 0
  | Some d -> (
    match Sys.readdir d with
    | exception Sys_error _ -> 0
    | files ->
      Array.fold_left
        (fun dropped f ->
          if Filename.check_suffix f ".stamp" then (
            let key = Filename.chop_suffix f ".stamp" in
            let current =
              try Some (read_file (Filename.concat d f))
              with Sys_error _ -> None
            in
            match current with
            | Some s when is_valid ~key ~stamp:s -> dropped
            | _ ->
            begin
              remove_sidecars t ~key;
              locked t (fun () -> t.s_invalid <- t.s_invalid + 1);
              Obs.incr c_sidecar_drop;
              dropped + 1
            end)
          else dropped)
        0 files)

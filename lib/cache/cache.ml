(* Content-addressed artifact cache: a mutex-guarded in-memory LRU over
   an atomically written on-disk store. See the interface for the
   contract; the load path is deliberately paranoid because cache files
   are the one input the rest of the compiler does not control — every
   entry re-earns its place through the caller's validator on every hit,
   and anything suspect is deleted rather than reported. *)

module Obs = Fsc_obs.Obs

(* Disk entry layout:

     sfc-cache <version> <key> <payload-bytes>\n<payload>

   The explicit payload length makes truncation (a crash between the
   atomic rename of one entry and a later partial overwrite, or plain
   filesystem damage) detectable without parsing the payload. *)
let magic = "sfc-cache"

type entry = {
  e_payload : string;
  mutable e_stamp : int; (* LRU clock value at last touch *)
}

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  invalid : int;
  stores : int;
  store_failures : int;
}

type t = {
  mutex : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mem_entries : int;
  cache_dir : string option;
  t_version : int;
  mutable tick : int;
  mutable s_mem_hits : int;
  mutable s_disk_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_invalid : int;
  mutable s_stores : int;
  mutable s_store_failures : int;
}

(* Obs counters (process-wide; no-ops unless recording is enabled) so a
   --stats run shows cache behaviour alongside spans and pool counters. *)
let c_hit = Obs.counter "cache.hit"
let c_miss = Obs.counter "cache.miss"
let c_invalid = Obs.counter "cache.invalid"
let c_evict = Obs.counter "cache.evict"

let default_dir () =
  let base =
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> d
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat h ".cache"
      | _ -> Filename.get_temp_dir_name ())
  in
  Filename.concat base "sfc"

let create ?(mem_entries = 64) ?(disk = true) ?dir ~version () =
  let cache_dir =
    if disk then Some (match dir with Some d -> d | None -> default_dir ())
    else None
  in
  { mutex = Mutex.create (); tbl = Hashtbl.create 64;
    mem_entries = max 1 mem_entries; cache_dir; t_version = version;
    tick = 0; s_mem_hits = 0; s_disk_hits = 0; s_misses = 0;
    s_evictions = 0; s_invalid = 0; s_stores = 0; s_store_failures = 0 }

let version t = t.t_version
let dir t = t.cache_dir

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let digest t parts =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (Printf.sprintf "%s %d" magic t.t_version :: parts)))

let entry_path t ~key =
  Option.map (fun d -> Filename.concat d (key ^ ".art")) t.cache_dir

(* ---------------- memory layer ---------------- *)

let touch t e =
  t.tick <- t.tick + 1;
  e.e_stamp <- t.tick

(* O(n) scan for the least recently used entry; the memory layer is
   bounded to tens of entries, so simplicity wins over a linked list. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.e_stamp -> ()
      | _ -> victim := Some (key, e.e_stamp))
    t.tbl;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.s_evictions <- t.s_evictions + 1;
    Obs.incr c_evict
  | None -> ()

let mem_insert t key payload =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    let e' = { e_payload = payload; e_stamp = e.e_stamp } in
    touch t e';
    Hashtbl.replace t.tbl key e'
  | None ->
    if Hashtbl.length t.tbl >= t.mem_entries then evict_lru t;
    let e = { e_payload = payload; e_stamp = 0 } in
    touch t e;
    Hashtbl.add t.tbl key e

let mem_keys t =
  locked t (fun () ->
      Hashtbl.fold (fun key e acc -> (key, e.e_stamp) :: acc) t.tbl []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.map fst)

(* ---------------- disk layer ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let encode_entry t ~key payload =
  Printf.sprintf "%s %d %s %d\n%s" magic t.t_version key
    (String.length payload)
    payload

(* [Ok payload] | [Error `Missing] | [Error `Invalid]: version skew,
   foreign key, truncation and malformed headers all map to `Invalid. *)
let decode_entry t ~key data =
  match String.index_opt data '\n' with
  | None -> Error `Invalid
  | Some nl -> (
    let header = String.sub data 0 nl in
    let payload_start = nl + 1 in
    match String.split_on_char ' ' header with
    | [ m; v; k; len ]
      when m = magic
           && int_of_string_opt v = Some t.t_version
           && k = key -> (
      match int_of_string_opt len with
      | Some n when String.length data - payload_start = n ->
        Ok (String.sub data payload_start n)
      | _ -> Error `Invalid)
    | _ -> Error `Invalid)

let disk_remove t key =
  match entry_path t ~key with
  | Some path when Sys.file_exists path -> (
    try Sys.remove path with Sys_error _ -> ())
  | _ -> ()

let disk_load t key =
  match entry_path t ~key with
  | None -> Error `Missing
  | Some path ->
    if not (Sys.file_exists path) then Error `Missing
    else (
      match read_file path with
      | exception Sys_error _ -> Error `Invalid
      | data -> decode_entry t ~key data)

(* Atomic publication: write the full entry to a private temp file in
   the same directory, then rename over the final name. Readers either
   see the old entry, the new one, or none — never a partial write. *)
let disk_store t key payload =
  match t.cache_dir with
  | None -> true
  | Some d -> (
    try
      mkdir_p d;
      let tmp =
        Filename.concat d
          (Printf.sprintf ".tmp.%s.%d" key (Unix.getpid ()))
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc (encode_entry t ~key payload);
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp (Filename.concat d (key ^ ".art"));
      true
    with Sys_error _ | Unix.Unix_error _ -> false)

(* ---------------- public API ---------------- *)

let put t ~key payload =
  locked t (fun () ->
      mem_insert t key payload;
      if disk_store t key payload then t.s_stores <- t.s_stores + 1
      else t.s_store_failures <- t.s_store_failures + 1)

(* Drop [key] everywhere after a failed validation. *)
let invalidate t key =
  Hashtbl.remove t.tbl key;
  disk_remove t key;
  t.s_invalid <- t.s_invalid + 1;
  Obs.incr c_invalid

let find t ~key ~validate =
  (* Fetch under the lock, validate outside it: validation re-parses IR
     and must not serialise every concurrent worker behind one mutex. *)
  let fetched =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          touch t e;
          `Mem e.e_payload
        | None -> (
          match disk_load t key with
          | Ok payload -> `Disk payload
          | Error `Missing -> `Missing
          | Error `Invalid -> `Invalid))
  in
  let miss () =
    locked t (fun () -> t.s_misses <- t.s_misses + 1);
    Obs.incr c_miss;
    None
  in
  match fetched with
  | `Missing -> miss ()
  | `Invalid ->
    locked t (fun () -> invalidate t key);
    miss ()
  | `Mem payload -> (
    match validate payload with
    | Ok v ->
      locked t (fun () -> t.s_mem_hits <- t.s_mem_hits + 1);
      Obs.incr c_hit;
      Some v
    | Error _ ->
      locked t (fun () -> invalidate t key);
      miss ())
  | `Disk payload -> (
    match validate payload with
    | Ok v ->
      locked t (fun () ->
          mem_insert t key payload;
          t.s_disk_hits <- t.s_disk_hits + 1);
      Obs.incr c_hit;
      Some v
    | Error _ ->
      locked t (fun () -> invalidate t key);
      miss ())

let stats t =
  locked t (fun () ->
      { mem_hits = t.s_mem_hits; disk_hits = t.s_disk_hits;
        misses = t.s_misses; evictions = t.s_evictions;
        invalid = t.s_invalid; stores = t.s_stores;
        store_failures = t.s_store_failures })

(* ---------------- sidecar artifacts ---------------- *)

(* Sidecars are raw files (`<key>.<ext>`) next to the `.art` entries:
   payloads like a Dynlink'able .cmxs must stay byte-exact on disk, so
   they skip the header-framed entry format. Their integrity story is
   the stamp sidecar instead: clients write a `.stamp` describing the
   producing toolchain and [revalidate_sidecars] sweeps whole sidecar
   sets whose stamp no longer matches at startup. *)

let c_sidecar_drop = Obs.counter "cache.sidecar_drop"

let valid_ext ext =
  ext <> ""
  && ext <> "art" (* reserved for the framed entry files *)
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       ext

let sidecar_path t ~key ~ext =
  if not (valid_ext ext) then
    invalid_arg ("Cache.sidecar_path: bad extension " ^ ext);
  Option.map (fun d -> Filename.concat d (key ^ "." ^ ext)) t.cache_dir

let find_sidecar t ~key ~ext =
  match sidecar_path t ~key ~ext with
  | Some path when Sys.file_exists path -> Some path
  | _ -> None

let read_sidecar t ~key ~ext =
  match find_sidecar t ~key ~ext with
  | None -> None
  | Some path -> ( try Some (read_file path) with Sys_error _ -> None)

(* Same atomic discipline as entries: write (or move) to a private name
   in the cache directory, then rename into place. *)
let publish t ~key ~ext ~install =
  match sidecar_path t ~key ~ext with
  | None -> None
  | Some path -> (
    try
      mkdir_p (Filename.dirname path);
      let tmp =
        Filename.concat (Filename.dirname path)
          (Printf.sprintf ".tmp.%s.%s.%d" key ext (Unix.getpid ()))
      in
      install tmp;
      Sys.rename tmp path;
      locked t (fun () -> t.s_stores <- t.s_stores + 1);
      Some path
    with Sys_error _ | Unix.Unix_error _ ->
      locked t (fun () -> t.s_store_failures <- t.s_store_failures + 1);
      None)

let put_sidecar t ~key ~ext payload =
  publish t ~key ~ext ~install:(fun tmp ->
      let oc = open_out_bin tmp in
      try
        output_string oc payload;
        close_out oc
      with e ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e)

let adopt_sidecar t ~key ~ext ~file =
  publish t ~key ~ext ~install:(fun tmp -> Sys.rename file tmp)

(* Every extension ever published under [key]; `.art` is not a sidecar. *)
let sidecar_exts t ~key =
  match t.cache_dir with
  | None -> []
  | Some d ->
    let prefix = key ^ "." in
    let plen = String.length prefix in
    (match Sys.readdir d with
    | exception Sys_error _ -> []
    | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             if String.length f > plen && String.sub f 0 plen = prefix then
               let ext = String.sub f plen (String.length f - plen) in
               if valid_ext ext then Some ext else None
             else None))

let remove_sidecars t ~key =
  List.iter
    (fun ext ->
      match sidecar_path t ~key ~ext with
      | Some path -> ( try Sys.remove path with Sys_error _ -> ())
      | None -> ())
    (sidecar_exts t ~key)

let revalidate_sidecars ?validate t ~stamp =
  (* default policy: a set is valid iff its stamp equals [stamp];
     [validate] widens that (e.g. stamps carrying parameter suffixes
     that are valid under the current configuration) — it still only
     sees sets that have a readable stamp *)
  let is_valid =
    match validate with
    | Some f -> f
    | None -> fun ~key:_ ~stamp:s -> s = stamp
  in
  match t.cache_dir with
  | None -> 0
  | Some d -> (
    match Sys.readdir d with
    | exception Sys_error _ -> 0
    | files ->
      Array.fold_left
        (fun dropped f ->
          if Filename.check_suffix f ".stamp" then (
            let key = Filename.chop_suffix f ".stamp" in
            let current =
              try Some (read_file (Filename.concat d f))
              with Sys_error _ -> None
            in
            match current with
            | Some s when is_valid ~key ~stamp:s -> dropped
            | _ ->
            begin
              remove_sidecars t ~key;
              locked t (fun () -> t.s_invalid <- t.s_invalid + 1);
              Obs.incr c_sidecar_drop;
              dropped + 1
            end)
          else dropped)
        0 files)

(** Content-addressed artifact cache.

    Keys are digests of whatever the client deems identity-defining
    (source text, target, flags, format version — see {!digest}); values
    are opaque serialized payloads. Two layers:

    - an in-memory LRU, capacity-bounded in entries and safe to use from
      any domain (one mutex guards all cache state);
    - an optional on-disk store, one file per entry, written atomically
      (temp file + rename) so a crash mid-write can only ever leave a
      garbage temp file or a truncated entry — never a half-visible one.

    Loads are {e revalidated}: every lookup (memory or disk) runs the
    caller's [validate] function over the raw payload, and entries that
    fail — corrupt, truncated, or written by a different format version —
    are evicted from both layers and reported as a miss, never an error.
    The cache is strictly best-effort: disk write failures are counted
    and swallowed. *)

type t

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;  (** lookups that returned nothing (includes invalid) *)
  evictions : int;  (** LRU evictions from the memory layer *)
  invalid : int;  (** entries dropped by validation / header checks *)
  stores : int;  (** successful {!put}s *)
  store_failures : int;  (** disk writes that failed and were swallowed *)
  disk_bytes : int;  (** bytes currently accounted on disk *)
  disk_evictions : int;  (** whole artifact sets evicted for the budget *)
}

(** [$XDG_CACHE_HOME/sfc] or [~/.cache/sfc]. *)
val default_dir : unit -> string

(** [create ~version ()] makes a cache whose entries are only readable
    by caches of the same [version] (mismatches are evicted on load).
    [mem_entries] bounds the LRU layer (default 64); [dir] places the
    disk store (default {!default_dir}); [disk:false] keeps the cache
    memory-only. [max_disk_bytes] bounds the disk store: writes that
    push usage past the budget evict least-recently-used {e whole}
    artifact sets (the [.art] entry plus every sidecar of a key — never
    a partial set); [<= 0] means unbounded. The directory is created on
    first write. *)
val create :
  ?mem_entries:int ->
  ?disk:bool ->
  ?dir:string ->
  ?max_disk_bytes:int ->
  version:int ->
  unit ->
  t

val version : t -> int

(** Directory of the disk store, if any. *)
val dir : t -> string option

(** Hex digest of the given identity parts plus the cache version; the
    canonical way to build a key. *)
val digest : t -> string list -> string

(** Insert (or refresh) an entry in both layers. *)
val put : t -> key:string -> string -> unit

(** [find t ~key ~validate] checks memory then disk. The payload found —
    on {e every} hit, memory included — is passed through [validate];
    [Error _] evicts the entry from both layers and yields [None]. *)
val find :
  t -> key:string -> validate:(string -> ('a, string) result) -> 'a option

(** {2 Sidecar artifacts}

    Raw files stored next to the framed [.art] entries as
    [<key>.<ext>] — for artifacts that must stay byte-exact on disk
    (generated [.ml] source, Dynlink'able [.cmxs] plugins). Extensions
    are lowercase alphanumeric/underscore; ["art"] is reserved.
    Sidecars bypass the entry format's header validation; instead,
    clients publish a ["stamp"] sidecar describing the producing
    toolchain and call {!revalidate_sidecars} at startup, which drops
    every sidecar set whose stamp no longer matches (counted on the
    ["cache.sidecar_drop"] Obs counter). All operations are no-ops
    returning [None]/[0] on a diskless cache. *)

(** Path the sidecar would occupy ([None] if diskless); the file need
    not exist. *)
val sidecar_path : t -> key:string -> ext:string -> string option

(** Atomically write [payload] as [<key>.<ext>]; returns the final
    path, or [None] if diskless or the write failed (counted, like
    entry stores, in {!stats}). *)
val put_sidecar : t -> key:string -> ext:string -> string -> string option

(** Atomically move an existing [file] (same filesystem — build it in
    or under the cache directory) into place as [<key>.<ext>]. *)
val adopt_sidecar :
  t -> key:string -> ext:string -> file:string -> string option

(** Path of the sidecar if it exists on disk. *)
val find_sidecar : t -> key:string -> ext:string -> string option

(** Contents of the sidecar, if present and readable. *)
val read_sidecar : t -> key:string -> ext:string -> string option

(** Extensions present on disk for [key], in directory order. *)
val sidecar_exts : t -> key:string -> string list

(** Delete every sidecar of [key] (never the [.art] entry). *)
val remove_sidecars : t -> key:string -> unit

(** Drop every sidecar set whose ["stamp"] sidecar differs from
    [stamp]; returns the number of keys dropped. [validate] replaces
    the equality test: a set with a readable stamp survives iff
    [validate ~key ~stamp] accepts it (sets without a readable stamp
    are always dropped) — used for stamps carrying parameter suffixes
    (e.g. the tile-shape budget) that are only valid under the current
    configuration. *)
val revalidate_sidecars :
  ?validate:(key:string -> stamp:string -> bool) -> t -> stamp:string -> int

(** Bytes currently accounted in the disk store (0 if diskless). *)
val disk_bytes : t -> int

(** Startup sweep of the disk store: delete orphaned [.tmp.*] files
    left by crashed writers, rebuild the byte index from the directory,
    and evict LRU sets until the byte budget holds. Returns the number
    of temp files dropped plus sets evicted. Cheap no-op when diskless
    or the directory does not exist. *)
val sweep : t -> int

(** Memory-layer keys, most recently used first (test hook). *)
val mem_keys : t -> string list

(** Path an entry would occupy on disk (test hook; [None] if diskless). *)
val entry_path : t -> key:string -> string option

val stats : t -> stats

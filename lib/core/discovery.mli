(** Stencil discovery — the paper's central transformation (Listing 3).

    Operating on the FIR produced by the frontend, the pass finds
    [fir.store] operations whose address is indexed by enclosing DO
    loops, analyses the right-hand side to find the neighbouring-cell
    reads, and replaces the loop nest with stencil dialect operations
    ([stencil.external_load] / [load] / [apply] / [store]) inserted
    directly before the outermost applicable loop. Loops whose bodies
    become empty are removed; stencil shape inference then assigns
    bounds.

    A store candidate is rejected — left completely untouched — when:
    - its address is not a [fir.coordinate_of] with per-dimension indices
      of the form induction-variable + constant (all variables distinct);
    - the loop nest bounds/step are not compile-time constants (step 1);
    - a right-hand-side array read uses a different induction variable
      for some dimension (e.g. a transposed access);
    - the expression tree contains an operation with no standard-dialect
      equivalent, or reads a scalar that is written inside the nest;
    - the {!Fsc_analysis.Dependence} oracle finds (or cannot rule out) a
      loop-carried dependence involving the candidate's store or reads —
      in-place Gauss-Seidel sweeps, imperfect nests whose inner loop
      rewrites the same elements, and cross-statement races.

    Every rejection is recorded as a structured
    {!Fsc_analysis.Diag.t} with the store's source location, consumed by
    [sfc check]. *)

open Fsc_ir

(** Raised internally when a candidate store is rejected; the message is
    recorded in {!stats}. *)
exception Reject of string

(** Like {!Reject} but carrying a fully-formed diagnostic (race
    rejections come with the conflicting access's location as a note). *)
exception Reject_diag of string * Fsc_analysis.Diag.t

type reject = {
  rej_store : string;  (** debug description of the store op *)
  rej_reason : string;
  rej_diag : Fsc_analysis.Diag.t;
      (** structured diagnostic with source location *)
}

type stats = {
  mutable found : int;  (** stencils generated *)
  mutable rejected : reject list;
      (** every candidate the pass declined — consumed by [sfc check]
          and tests *)
}

(** Run discovery over every [func.func] in the module. Returns the
    statistics; the module is rewritten in place. *)
val run : ?log_rejects:bool -> Op.op -> stats

(** The same as a named pass for {!Fsc_ir.Pass.run_pipeline}. *)
val pass : Pass.t

(* Stencil extraction (Section 3 of the paper).

   After discovery the IR mixes FIR with the stencil dialect — but Flang
   does not register the stencil/memref/builtin dialects and mlir-opt does
   not register FIR, so the module must be split: every stencil section is
   lifted into a function in a *separate* module, compiled by the
   mlir-opt-style flow, and invoked from FIR through a plain call.

   Data crosses the boundary as pointers: the host side converts each
   array reference to !fir.llvm_ptr<i8> (fir.convert — the only pointer
   type FIR can reach), while the kernel side receives !llvm.ptr and
   rebuilds a memref via builtin.unrealized_conversion_cast. The types are
   nominally different but semantically identical; as in the paper, the
   mismatch is only reconciled at link time (our runtime linker accepts
   it, and the dialect-registration verifier shows why neither module
   could hold both halves). *)

open Fsc_ir
module Stencil = Fsc_stencil.Stencil

type kernel_arg =
  | K_array of { extents : int list; elem : Types.t }
  | K_scalar of Types.t

type kernel_info = {
  k_name : string;
  k_args : kernel_arg list;
}

type extracted = {
  host_module : Op.op;
  stencil_module : Op.op;
  kernels : kernel_info list;
}

let is_stencil_op op =
  Dialect.dialect_of_op_name op.Op.o_name = "stencil"

(* A section: the maximal consecutive run of ops in one block starting at
   a stencil op, spanning to the last stencil op such that any interposed
   non-stencil op is pure plumbing. *)
let find_sections block =
  let ops = Op.block_ops block in
  let rec go acc current = function
    | [] -> (
      match current with
      | [] -> List.rev acc
      | c -> List.rev (List.rev c :: acc))
    | op :: rest ->
      if is_stencil_op op then go acc (op :: current) rest
      else if
        current <> []
        && List.exists is_stencil_op rest
        && (Dialect.op_is_pure op || op.Op.o_name = "fir.load")
      then
        (* host-side plumbing interleaved in the section: skip over it;
           it stays in the host module *)
        go acc current rest
      else if current <> [] then go (List.rev current :: acc) [] rest
      else go acc [] rest
  in
  go [] [] ops

(* Array extents encoded in a field type (bounds are zero-based). *)
let field_extents t =
  List.map (fun (lo, hi) -> hi - lo + 1) (Stencil.type_bounds t)

let memref_type_of_field t =
  Types.Memref
    ( List.map (fun e -> Types.Static e) (field_extents t),
      Stencil.type_elem t )

(* Atomic so concurrent compiles (the job server) never mint the same
   name; resetting remains a serial-caller affair. *)
let kernel_counter = Atomic.make 0

let fresh_kernel_name () =
  Printf.sprintf "_stencil_kernel_%d" (Atomic.fetch_and_add kernel_counter 1)

(* Extract one section from [block] into a kernel function appended to
   [stencil_block]. Returns kernel metadata. *)
let extract_section ~stencil_block section =
  let kname = fresh_kernel_name () in
  (* Free values: operands of section ops defined outside the section. *)
  let in_section op = List.exists (fun o -> o == op) section in
  let free = ref [] in
  List.iter
    (fun op ->
      Array.iter
        (fun (v : Op.value) ->
          let defined_inside =
            match Op.defining_op v with
            | Some d -> in_section d
            | None -> false
          in
          if
            (not defined_inside)
            && not (List.exists (fun w -> w == v) !free)
          then free := v :: !free)
        op.Op.o_operands)
    section;
  let free = List.rev !free in
  (* Classify free values: array references (external_load operands) vs
     scalars. *)
  let classify (v : Op.value) =
    match Op.value_type v with
    | Types.Fir_ref (Types.Fir_array _)
    | Types.Fir_ref (Types.Fir_heap (Types.Fir_array _))
    | Types.Fir_heap (Types.Fir_array _) ->
      `Array
    | t when Types.is_scalar t -> `Scalar
    | t ->
      invalid_arg
        ("Extraction: cannot pass value of type " ^ Types.to_string t
        ^ " across the module boundary")
  in
  (* Field type each array is loaded at (from its external_load use in the
     section). *)
  let field_type_of v =
    let found = ref None in
    List.iter
      (fun op ->
        if
          op.Op.o_name = "stencil.external_load"
          && Op.operand op == v
        then found := Some (Op.value_type (Op.result op)))
      section;
    match !found with
    | Some t -> t
    | None ->
      invalid_arg "Extraction: array free value without external_load"
  in
  let args_info =
    List.map
      (fun v ->
        match classify v with
        | `Array ->
          let ft = field_type_of v in
          (v, K_array { extents = field_extents ft;
                        elem = Stencil.type_elem ft })
        | `Scalar -> (v, K_scalar (Op.value_type v)))
      free
  in
  (* Kernel function: one !llvm.ptr per array, value type per scalar. *)
  let kernel_arg_types =
    List.map
      (fun (_, k) ->
        match k with K_array _ -> Types.Llvm_ptr | K_scalar t -> t)
      args_info
  in
  let anchor = List.hd section in
  (* host-side plumbing interleaved in the section (hoisted scalar loads)
     must dominate the trampoline call we are about to insert *)
  List.iter
    (fun (v, _) -> Op.hoist_chain_before ~anchor v)
    args_info;
  let host_b = Builder.before anchor in
  (* Host-side marshalling: convert array refs to !fir.llvm_ptr<i8>. *)
  let host_args =
    List.map
      (fun (v, k) ->
        match k with
        | K_array _ -> (
          match Op.value_type v with
          | Types.Fir_ref (Types.Fir_heap _) ->
            let data = Fsc_fir.Fir.load host_b v in
            Fsc_fir.Fir.convert host_b
              ~to_:(Types.Fir_llvm_ptr Types.I8) data
          | _ ->
            Fsc_fir.Fir.convert host_b
              ~to_:(Types.Fir_llvm_ptr Types.I8) v)
        | K_scalar _ -> v)
      args_info
  in
  ignore
    (Builder.op host_b "fir.call" ~operands:host_args
       ~attrs:[ ("callee", Attr.Sym_a kname) ]);
  (* Kernel body: rebuild memrefs, then move the section ops in. *)
  let kernel =
    Fsc_dialects.Func.func ~name:kname ~args:kernel_arg_types ~results:[]
      (fun kb kargs ->
        let mapping = Hashtbl.create 16 in
        List.iteri
          (fun i (v, k) ->
            let karg = List.nth kargs i in
            match k with
            | K_array _ ->
              let ft = field_type_of v in
              let mr =
                Builder.op1 kb "builtin.unrealized_conversion_cast"
                  ~operands:[ karg ]
                  ~results:[ memref_type_of_field ft ]
              in
              Hashtbl.replace mapping v.Op.v_id mr
            | K_scalar _ -> Hashtbl.replace mapping v.Op.v_id karg)
          args_info;
        (* Move (clone) section ops into the kernel, then erase originals.
           Cloning keeps value identity bookkeeping simple. *)
        let blk = Builder.block kb in
        List.iter
          (fun op ->
            let c = Op.clone ~mapping op in
            Op.append_to blk c)
          section;
        Fsc_dialects.Func.return_ kb [])
  in
  Op.append_to stencil_block kernel;
  (* Erase the originals, last-to-first so consumers go before their
     producers. Any use from outside the section would be a bug in
     discovery (stencil values never escape their section). *)
  List.iter
    (fun op ->
      List.iter
        (fun (r : Op.value) ->
          List.iter
            (fun (u : Op.use) ->
              if not (in_section u.Op.u_op) then
                invalid_arg
                  "Extraction: stencil result used outside section")
            r.Op.v_uses)
        (Op.results op))
    section;
  List.iter Op.erase (List.rev section);
  { k_name = kname;
    k_args = List.map snd args_info }

(* Split [m]: mutates it into the host module and returns the stencil
   module alongside. *)
let run m =
  let stencil_module = Op.create_module () in
  let stencil_block = Op.module_block stencil_module in
  let kernels = ref [] in
  let rec process_block block =
    (* Recurse first so nested sections (inside fir.do_loop bodies, where
       they typically live) are handled. *)
    List.iter
      (fun op ->
        if not (is_stencil_op op) then
          Array.iter
            (fun r -> List.iter process_block r.Op.g_blocks)
            op.Op.o_regions)
      (Op.block_ops block);
    List.iter
      (fun section ->
        if section <> [] then
          kernels := extract_section ~stencil_block section :: !kernels)
      (find_sections block)
  in
  List.iter process_block (Op.region m).Op.g_blocks;
  { host_module = m; stencil_module; kernels = List.rev !kernels }

let reset_name_counter () = Atomic.set kernel_counter 0

(* Stencil discovery: the paper's central transformation (Listing 3).

   Operating on the FIR produced by the frontend, it finds fir.store ops
   whose address is indexed by enclosing DO loops, analyses the right-hand
   side to find the neighbouring-cell reads, and replaces the loop nest
   with stencil dialect operations inserted directly before the outermost
   applicable loop:

     stencil.external_load  (one per accessed array)
     stencil.load           (field -> temp, for read arrays)
     stencil.apply          (the computation, translated to arith/math)
     stencil.store          (result temp -> output field)

   Loops whose bodies become empty are removed. Adjacent stencils with
   identical bounds are merged by the separate [Merge] pass.

   A store is rejected (left untouched) when any of these fail:
   - the address is not a fir.coordinate_of with per-dimension indices of
     the form loop-induction-variable + constant;
   - the loop nest bounds and step are not compile-time constants (step 1);
   - a right-hand-side array read uses a different induction variable for
     some dimension than the store does (non-stencil access);
   - the expression tree contains an operation with no standard-dialect
     equivalent, or reads a scalar that is written inside the nest. *)

open Fsc_ir
module Stencil = Fsc_stencil.Stencil
module Index_expr = Fsc_analysis.Index_expr
module Dependence = Fsc_analysis.Dependence
module Diag = Fsc_analysis.Diag

let log_src = Logs.Src.create "fsc.discovery" ~doc:"stencil discovery"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Reject of string

(* Like [Reject], but carrying a fully-formed diagnostic (race rejections
   come with the conflicting-access location as a note). *)
exception Reject_diag of string * Diag.t

type array_read = {
  ar_root : Index_expr.array_root;
  ar_offsets : int list; (* relative to the output cell *)
  ar_load_op : Op.op;
}

type scalar_input = {
  si_load_op : Op.op; (* the fir.load of a loop-invariant scalar cell *)
}

type candidate = {
  c_store : Op.op;
  c_out_root : Index_expr.array_root;
  c_ivs : Op.value list;        (* per array dim, induction variable *)
  c_store_offsets : int list;   (* per dim, offset of write vs loop iv *)
  c_loops : Op.op list;         (* applicable loops, outermost first *)
  c_lb : int list;              (* output region bounds, zero-based *)
  c_ub : int list;
  c_reads : array_read list;
  c_scalars : scalar_input list;
}

(* ------------------------------------------------------------------ *)
(* Gathering information                                               *)
(* ------------------------------------------------------------------ *)

let enclosing_loops op =
  let rec go acc o =
    match Op.parent_op o with
    | Some p when p.Op.o_name = "fir.do_loop" -> go (p :: acc) p
    | Some p -> go acc p
    | None -> acc
  in
  go [] op

let loop_of_iv (iv : Op.value) =
  match iv.Op.v_def with
  | Op.Block_arg (b, 0) -> (
    match b.Op.b_parent with
    | Some r -> r.Op.g_parent
    | None -> None)
  | _ -> None

let loop_bounds_const loop =
  let lb, ub, step = Fsc_fir.Fir.do_loop_bounds loop in
  match
    ( Index_expr.eval_const lb,
      Index_expr.eval_const ub,
      Index_expr.eval_const step )
  with
  | Some l, Some u, Some 1 -> (l, u)
  | Some _, Some _, Some s ->
    raise (Reject (Printf.sprintf "loop step %d is not 1" s))
  | _ -> raise (Reject "loop bounds are not compile-time constants")

(* Analyse the address of a memory access: returns the array root plus
   per-dimension affine forms. *)
let analyze_address addr =
  match Op.defining_op addr with
  | Some coord when Fsc_fir.Fir.is_coordinate_of coord -> (
    let base = Op.operand ~index:0 coord in
    let indices = List.tl (Op.operands coord) in
    match Index_expr.resolve_root base with
    | Some root when Index_expr.root_is_static root ->
      Some (root, List.map Index_expr.analyze indices)
    | Some _ -> raise (Reject "array extents are not static")
    | None -> None)
  | _ -> None

(* Is [v] the load of a scalar cell that is never stored to inside
   [scope]? Such loads can be hoisted before the stencil region. The
   dependence analysis distinguishes the fates of a written scalar:
   privatisable temporaries and genuine loop-carried reductions are both
   rejected (privatisation is not implemented), but with different
   diagnostics. *)
let invariant_scalar_load ~scope op =
  if not (Fsc_fir.Fir.is_load op) then None
  else
    let addr = Op.operand op in
    match Op.value_type addr with
    | Types.Fir_ref t when Types.is_scalar t -> (
      let name =
        match Op.defining_op addr with
        | Some d -> (
          match Fsc_fir.Fir.var_name d with Some n -> n | None -> "scalar")
        | None -> "scalar"
      in
      match Dependence.scalar_fate ~scope ~cell:addr with
      | Dependence.Scalar_invariant -> Some { si_load_op = op }
      | Dependence.Scalar_private ->
        raise
          (Reject
             (Printf.sprintf
                "scalar '%s' is written inside nest (privatisable \
                 temporary, not supported)"
                name))
      | Dependence.Scalar_carried (st, ld) ->
        let msg =
          Printf.sprintf
            "loop-carried dependence on scalar '%s': it is written inside \
             nest and a read can observe a previous iteration's value \
             (reduction pattern)"
            name
        in
        let diag =
          Diag.warning
            ?loc:(Diag.loc_of_op st)
            ~notes:
              [ ( Diag.loc_of_op ld,
                  Printf.sprintf "the read of '%s' that carries the \
                                  dependence is here" name ) ]
            ~code:"race" msg
        in
        raise (Reject_diag (msg, diag)))
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Candidate construction (Listing 3 lines 4-17)                       *)
(* ------------------------------------------------------------------ *)

(* Walk the stored value's expression tree, collecting array reads,
   scalar inputs, and checking translatability. *)
let rec walk_rhs ~cand_ivs ~store_offsets ~scope acc (v : Op.value) =
  match Op.defining_op v with
  | None ->
    (* block argument: allowed only if it is one of the loop ivs *)
    if List.exists (fun iv -> iv == v) cand_ivs then acc
    else raise (Reject "free block argument in stencil expression")
  | Some op -> (
    let reads, scalars = acc in
    match op.Op.o_name with
    | "fir.load" -> (
      match analyze_address (Op.operand op) with
      | Some (root, forms) ->
        let offsets =
          List.mapi
            (fun dim form ->
              match form with
              | Index_expr.Affine (iv, off) ->
                let expected_iv = List.nth cand_ivs dim in
                if not (iv == expected_iv) then
                  raise
                    (Reject
                       "array read indexed by a different loop variable");
                off - List.nth store_offsets dim
              | Index_expr.Const _ ->
                raise (Reject "constant subscript in array read")
              | Index_expr.Unknown ->
                raise (Reject "non-affine subscript in array read"))
            forms
        in
        if List.length offsets <> List.length cand_ivs then
          raise (Reject "array read rank differs from store rank");
        ({ ar_root = root; ar_offsets = offsets; ar_load_op = op } :: reads,
         scalars)
      | None -> (
        match invariant_scalar_load ~scope op with
        | Some si -> (reads, si :: scalars)
        | None -> raise (Reject "unanalysable fir.load")))
    | "arith.constant" -> acc
    | "fir.no_reassoc" | "fir.convert" ->
      walk_rhs ~cand_ivs ~store_offsets ~scope acc (Op.operand op)
    | name
      when Dialect.dialect_of_op_name name = "arith"
           || Dialect.dialect_of_op_name name = "math" ->
      Array.fold_left
        (fun acc operand ->
          walk_rhs ~cand_ivs ~store_offsets ~scope acc operand)
        acc op.Op.o_operands
    | name -> raise (Reject ("op " ^ name ^ " has no stencil translation")))

(* The legality oracle: consult the dependence analysis before accepting
   a candidate. Rejects (with a located race diagnostic) when

   - an enclosing loop inside the nest does not index the store, so its
     iterations rewrite the same elements (imperfect nest / carried
     output dependence);
   - any access in the nest's scope conflicts with the candidate's store
     across iterations (carried flow/anti/output dependence, e.g. an
     in-place Gauss-Seidel sweep);
   - any other write in scope conflicts with the candidate's own reads
     (cross-statement races such as [b(i) = a(i); c(i) = b(i-1)]);
   - a conflict cannot be ruled out (may-dependence). *)
let dependence_gate cand =
  match Dependence.nest_of_store cand.c_store with
  | None -> ()
  | Some nest -> (
    (match nest.Dependence.n_inner_seq with
    | loop :: _ ->
      let msg =
        Printf.sprintf
          "loop-carried output dependence on '%s': an enclosing loop does \
           not index the store, so each of its iterations rewrites the \
           same elements"
          cand.c_out_root.Index_expr.root_name
      in
      let diag =
        Diag.warning
          ?loc:(Diag.loc_of_op cand.c_store)
          ~notes:
            [ (Diag.loc_of_op loop, "the repeating loop starts here") ]
          ~code:"race" msg
      in
      raise (Reject_diag (msg, diag))
    | [] -> ());
    let reads = List.map (fun r -> r.ar_load_op) cand.c_reads in
    match Dependence.candidate_hazards nest ~reads with
    | [] -> ()
    | dep :: _ ->
      let msg = Dependence.describe dep in
      let what =
        if dep.Dependence.dep_dst.Dependence.acc_is_write then "write"
        else "read"
      in
      let diag =
        Diag.warning
          ?loc:(Diag.loc_of_op dep.Dependence.dep_src.Dependence.acc_op)
          ~notes:
            [ ( Diag.loc_of_op dep.Dependence.dep_dst.Dependence.acc_op,
                Printf.sprintf "conflicting %s is here" what ) ]
          ~code:"race" msg
      in
      raise (Reject_diag (msg, diag)))

let build_candidate store_op =
  match analyze_address (Op.operand ~index:1 store_op) with
  | None -> (
    match Op.value_type (Op.operand ~index:1 store_op) with
    | Types.Fir_ref t when Types.is_scalar t ->
      raise (Reject "scalar assignment (not a stencil candidate)")
    | _ -> raise (Reject "store address is not a static array element"))
  | Some (out_root, forms) ->
    let loops_around = enclosing_loops store_op in
    if loops_around = [] then raise (Reject "store is not inside a loop");
    (* is_indexed_by_loops: every dimension must be iv + const with all
       ivs distinct and belonging to enclosing loops. *)
    let ivs, store_offsets =
      List.split
        (List.map
           (function
             | Index_expr.Affine (iv, off) -> (iv, off)
             | Index_expr.Const _ ->
               raise (Reject "constant subscript in store")
             | Index_expr.Unknown ->
               raise (Reject "non-affine subscript in store"))
           forms)
    in
    let distinct =
      List.for_all
        (fun iv ->
          List.length (List.filter (fun iv' -> iv' == iv) ivs) = 1)
        ivs
    in
    if not distinct then
      raise (Reject "the same loop variable indexes two dimensions");
    let applicable_loops =
      List.filter
        (fun l ->
          let arg = Fsc_fir.Fir.do_loop_induction_var l in
          List.exists (fun iv -> iv == arg) ivs)
        loops_around
    in
    if List.length applicable_loops <> List.length ivs then
      raise (Reject "store subscripts use non-enclosing loop variables");
    (* Loops inside the applicable nest that are not themselves applicable
       (imperfect nests) are caught by the dependence gate below. *)
    let top = List.hd applicable_loops in
    let scope = top in
    (* bounds per array dimension: loop range shifted by write offset *)
    let bounds =
      List.map2
        (fun iv off ->
          match loop_of_iv iv with
          | Some l ->
            let lo, hi = loop_bounds_const l in
            (lo + off, hi + off)
          | None -> raise (Reject "induction variable without a loop"))
        ivs store_offsets
    in
    let reads, scalars =
      walk_rhs ~cand_ivs:ivs ~store_offsets ~scope ([], [])
        (Op.operand ~index:0 store_op)
    in
    let cand =
      { c_store = store_op; c_out_root = out_root; c_ivs = ivs;
        c_store_offsets = store_offsets; c_loops = applicable_loops;
        c_lb = List.map fst bounds; c_ub = List.map snd bounds;
        c_reads = List.rev reads; c_scalars = List.rev scalars }
    in
    dependence_gate cand;
    cand

(* ------------------------------------------------------------------ *)
(* Stencil generation                                                  *)
(* ------------------------------------------------------------------ *)

(* Full-array bounds: zero-based [0, extent-1] per dimension. *)
let root_bounds (r : Index_expr.array_root) =
  List.map (fun e -> (0, e - 1)) r.Index_expr.root_extents

(* Translate the RHS expression tree into the apply region. [lookup_read]
   maps a fir.load op to its stencil.access replacement builder;
   [lookup_scalar] maps hoisted scalar loads to block arguments. *)
let translate_body cand b ~temp_args ~scalar_args =
  let memo : (int, Op.value) Hashtbl.t = Hashtbl.create 32 in
  let read_for op =
    List.find_opt (fun r -> r.ar_load_op == op) cand.c_reads
  in
  let scalar_for op =
    let rec idx i = function
      | [] -> None
      | s :: rest ->
        if s.si_load_op == op then Some i else idx (i + 1) rest
    in
    idx 0 cand.c_scalars
  in
  let temp_index_for_root root =
    (* temps are ordered by unique roots in read order *)
    let rec go i seen = function
      | [] -> invalid_arg "temp_index_for_root"
      | r :: rest ->
        if r.ar_root.Index_expr.root_value == root then i
        else if
          List.exists
            (fun v -> v == r.ar_root.Index_expr.root_value)
            seen
        then go i seen rest
        else go (i + 1) (r.ar_root.Index_expr.root_value :: seen) rest
    in
    go 0 [] cand.c_reads
  in
  let dim_of_iv iv =
    let rec go d = function
      | [] -> invalid_arg "dim_of_iv"
      | v :: rest -> if v == iv then d else go (d + 1) rest
    in
    go 0 cand.c_ivs
  in
  let rec tr (v : Op.value) : Op.value =
    match Hashtbl.find_opt memo v.Op.v_id with
    | Some v' -> v'
    | None ->
      let v' = tr_uncached v in
      Hashtbl.replace memo v.Op.v_id v';
      v'
  and tr_uncached v =
    (* loop induction variable used as a value: current cell index *)
    if List.exists (fun iv -> iv == v) cand.c_ivs then begin
      let d = dim_of_iv v in
      let idx = Stencil.index b ~dim:d in
      let c = List.nth cand.c_store_offsets d in
      if c = 0 then idx
      else begin
        let cst =
          Builder.op1 b "arith.constant" ~results:[ Types.Index ]
            ~attrs:[ ("value", Attr.Int_a (-c)) ]
        in
        Builder.op1 b "arith.addi" ~operands:[ idx; cst ]
          ~results:[ Types.Index ]
      end
    end
    else
      match Op.defining_op v with
      | None -> invalid_arg "translate_body: free value"
      | Some op -> (
        match op.Op.o_name with
        | "fir.load" -> (
          match read_for op with
          | Some r ->
            let ti = temp_index_for_root r.ar_root.Index_expr.root_value in
            Stencil.access b (List.nth temp_args ti)
              ~offset:r.ar_offsets
          | None -> (
            match scalar_for op with
            | Some i -> List.nth scalar_args i
            | None -> invalid_arg "translate_body: unexpected fir.load"))
        | "arith.constant" ->
          (* drop source locations: the apply body is synthesised code *)
          Builder.op1 b "arith.constant"
            ~results:[ Op.value_type (Op.result op) ]
            ~attrs:(List.remove_assoc "loc" op.Op.o_attrs)
        | "fir.no_reassoc" -> tr (Op.operand op)
        | "fir.convert" ->
          let x = tr (Op.operand op) in
          Fir_to_std.std_convert b x (Op.value_type (Op.result op))
        | name ->
          (* arith/math op: clone with translated operands *)
          let operands = List.map tr (Op.operands op) in
          Builder.op1 b name ~operands
            ~results:[ Op.value_type (Op.result op) ]
            ~attrs:(List.remove_assoc "loc" op.Op.o_attrs))
  in
  tr

(* Unique read roots in first-occurrence order. *)
let unique_read_roots cand =
  List.fold_left
    (fun acc r ->
      if
        List.exists
          (fun (root : Index_expr.array_root) ->
            root.Index_expr.root_value == r.ar_root.Index_expr.root_value)
          acc
      then acc
      else acc @ [ r.ar_root ])
    [] cand.c_reads

(* Generate the stencil ops for one candidate, inserted before its
   outermost applicable loop. *)
let generate cand =
  let top = List.hd cand.c_loops in
  let b = Builder.before top in
  (* scalar inputs first: they are host-side FIR loads and must dominate
     the trampoline call the extraction pass will insert at the start of
     the stencil section *)
  let scalar_vals =
    List.map
      (fun si ->
        let cell = Op.operand si.si_load_op in
        Builder.op1 b "fir.load" ~operands:[ cell ]
          ~results:[ Op.value_type (Op.result si.si_load_op) ])
      cand.c_scalars
  in
  let roots = unique_read_roots cand in
  (* field + temp per unique read array *)
  let temps =
    List.map
      (fun (root : Index_expr.array_root) ->
        let bounds = root_bounds root in
        let field =
          Builder.op1 b "stencil.external_load"
            ~operands:[ root.Index_expr.root_value ]
            ~results:[ Stencil.field_type bounds root.Index_expr.root_elem ]
        in
        Stencil.load b field)
      roots
  in
  (* output field *)
  let out_bounds_full = root_bounds cand.c_out_root in
  let out_field =
    Builder.op1 b "stencil.external_load"
      ~operands:[ cand.c_out_root.Index_expr.root_value ]
      ~results:
        [ Stencil.field_type out_bounds_full
            cand.c_out_root.Index_expr.root_elem ]
  in
  let inputs = temps @ scalar_vals in
  let out_elem = cand.c_out_root.Index_expr.root_elem in
  let out_bounds = List.combine cand.c_lb cand.c_ub in
  let results =
    Stencil.apply b ~inputs ~out_bounds ~out_elems:[ out_elem ]
      (fun inner args ->
        let n_temps = List.length temps in
        let temp_args = List.filteri (fun i _ -> i < n_temps) args in
        let scalar_args = List.filteri (fun i _ -> i >= n_temps) args in
        let tr = translate_body cand inner ~temp_args ~scalar_args in
        [ tr (Op.operand ~index:0 cand.c_store) ])
  in
  (match results with
  | [ temp ] -> Stencil.store b temp out_field ~lb:cand.c_lb ~ub:cand.c_ub
  | _ -> assert false);
  (* remove the original store *)
  Op.erase cand.c_store

(* ------------------------------------------------------------------ *)
(* Cleanup: dead ops and empty loops (Listing 3 lines 25-27)           *)
(* ------------------------------------------------------------------ *)

let rec erase_dead_ops_in block =
  let changed = ref false in
  Op.iter_block_ops
    (fun op ->
      Array.iter (fun r -> List.iter (fun b -> erase_dead_ops_in b)
                     r.Op.g_blocks)
        op.Op.o_regions;
      let dead =
        Op.num_results op > 0
        && (not (List.exists Op.has_uses (Op.results op)))
        && (Dialect.op_is_pure op
           || List.mem op.Op.o_name
                [ "fir.load"; "arith.constant"; "fir.convert";
                  "fir.no_reassoc" ])
      in
      if dead then begin
        Op.erase op;
        changed := true
      end)
    block;
  if !changed then erase_dead_ops_in block

let remove_empty_loops func =
  let rec sweep () =
    let removed = ref false in
    let loops =
      Op.collect_ops (fun o -> o.Op.o_name = "fir.do_loop") func
    in
    List.iter
      (fun loop ->
        if Op.parent_block loop <> None && Op.num_results loop = 0 then begin
          let body = Fsc_fir.Fir.do_loop_body loop in
          erase_dead_ops_in body;
          match Op.block_ops body with
          | [ term ] when term.Op.o_name = "fir.result" ->
            Op.erase term;
            Op.erase loop;
            removed := true
          | _ -> ()
        end)
      (* innermost first *)
      (List.rev loops);
    if !removed then sweep ()
  in
  sweep ();
  (* finally clear now-dead index computations at function level *)
  Op.walk_inner
    (fun o -> ignore o)
    func;
  List.iter erase_dead_ops_in
    (match (Op.region func).Op.g_blocks with bs -> bs)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

type reject = {
  rej_store : string; (* debug description of the store op *)
  rej_reason : string;
  rej_diag : Diag.t; (* structured diagnostic, with source location *)
}

type stats = {
  mutable found : int;
  mutable rejected : reject list;
}

(* Run discovery over every function in [m]. Returns statistics. *)
let run ?(log_rejects = true) m =
  let stats = { found = 0; rejected = [] } in
  let record store reason diag =
    if log_rejects then
      Log.debug (fun f -> f "store #%d rejected: %s" store.Op.o_id reason);
    stats.rejected <-
      { rej_store = Op.to_debug_string store; rej_reason = reason;
        rej_diag = diag }
      :: stats.rejected
  in
  let funcs = Op.collect_ops (fun o -> o.Op.o_name = "func.func") m in
  List.iter
    (fun func ->
      let stores =
        Op.collect_ops (fun o -> o.Op.o_name = "fir.store") func
      in
      let candidates =
        List.filter_map
          (fun store ->
            match build_candidate store with
            | c -> Some c
            | exception Reject reason ->
              record store reason
                (Diag.note
                   ?loc:(Diag.loc_of_op store)
                   ~code:"stencil-reject" reason);
              None
            | exception Reject_diag (reason, diag) ->
              record store reason diag;
              None)
          stores
      in
      List.iter
        (fun c ->
          generate c;
          stats.found <- stats.found + 1)
        candidates;
      if candidates <> [] then remove_empty_loops func;
      Stencil.infer_shapes_in_func func)
    funcs;
  stats

let pass =
  Pass.create "discover-stencils" (fun m -> ignore (run m))

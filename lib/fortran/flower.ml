(* Lowering of the Fortran AST to the FIR dialect — the mini-Flang
   "fc1 -emit-mlir" stage of the paper's Figure 1 pipeline.

   Representation choices mirror Flang closely enough for the discovery
   pass to face the same obstacles the paper describes:

   - scalars live in fir.alloca cells, reads are fir.load;
   - explicit-shape arrays are fir.alloca of !fir.array<...> and accessed
     with fir.coordinate_of on the alloca result (the "stack" route);
   - allocatable arrays live behind a pointer cell: fir.alloca of
     !fir.heap<!fir.array<...>>; allocate does fir.allocmem + fir.store,
     every access first fir.load's the cell (the "heap" route);
   - all index expressions are computed in i32 and fir.convert'ed to
     index, with the Fortran lower bound subtracted (zero-basing);
   - DO loop induction variables are bound directly to the fir.do_loop
     block argument (converted to i32);
   - parenthesised subexpressions of real type become fir.no_reassoc.

   Arrays are column-major (first subscript contiguous), matching
   Fortran; the runtime's buffers carry explicit strides. *)

open Fast
open Fsc_ir
module Fir = Fsc_fir.Fir
module Arith = Fsc_dialects.Arith
module Math = Fsc_dialects.Math
module Func = Fsc_dialects.Func

exception Unsupported of string * loc

let unsupported loc fmt =
  Printf.ksprintf (fun msg -> raise (Unsupported (msg, loc))) fmt

(* Thread frontend source locations onto lowered ops: while a location is
   set on the builder, every op it creates carries a loc(line:col)
   attribute (see Builder.set_loc). [no_loc] clears it. *)
let set_builder_loc b (l : loc) =
  if l.line = 0 then () else Builder.set_loc b (Some (l.line, l.col))

let fir_scalar_type = function
  | T_integer -> Types.I32
  | T_real 4 -> Types.F32
  | T_real _ -> Types.F64
  | T_logical -> Types.I1

(* ------------------------------------------------------------------ *)
(* Lowering environment                                                *)
(* ------------------------------------------------------------------ *)

type array_storage = {
  mutable as_ref : Op.value; (* the alloca cell (or dummy arg ref) *)
  as_heap : bool;            (* cell holds !fir.heap<array> *)
  as_elem : Types.t;
  mutable as_lbs : int list;     (* per-dim lower bounds *)
  mutable as_extents : int list; (* per-dim extents *)
}

type binding =
  | B_scalar of Op.value (* !fir.ref<T> cell *)
  | B_array of array_storage
  | B_param of Fsema.const_value * ftype
  | B_loop_var of Op.value (* i32 SSA value, only while inside the loop *)

type lenv = {
  sema : Fsema.unit_env;
  bindings : (string, binding) Hashtbl.t;
  mutable result_cell : Op.value option; (* function result storage *)
}

let lookup_binding env loc name =
  match Hashtbl.find_opt env.bindings name with
  | Some b -> b
  | None -> unsupported loc "no binding for %s" name

let mangle unit_ =
  match unit_.u_kind with
  | Program -> "_QQmain"
  | Subroutine _ | Function _ -> "_QP" ^ unit_.u_name

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

let value_ftype env e = Fsema.type_of_expr env.sema e

(* Convert [v] to FIR scalar type [to_] via fir.convert (identity if the
   types already match), as Flang does for mixed-kind arithmetic. *)
let convert b v to_ =
  if Types.equal (Op.value_type v) to_ then v else Fir.convert b ~to_ v

let rec lower_expr env b (e : expr) : Op.value =
  set_builder_loc b e.e_loc;
  match e.e_kind with
  | Int_lit n -> Arith.constant_int b ~ty:Types.I32 n
  | Real_lit (f, k) ->
    Arith.constant_float b ~ty:(if k = 4 then Types.F32 else Types.F64) f
  | Logical_lit v -> Arith.constant_int b ~ty:Types.I1 (if v then 1 else 0)
  | Var n -> (
    match lookup_binding env e.e_loc n with
    | B_scalar cell -> Fir.load b cell
    | B_param (c, t) -> lower_const b c t
    | B_loop_var v -> v
    | B_array _ -> unsupported e.e_loc "whole-array expression %s" n)
  | Unop (Neg, a) -> (
    let v = lower_expr env b a in
    match Op.value_type v with
    | Types.F32 | Types.F64 -> Arith.negf b v
    | t ->
      let zero = Arith.constant_int b ~ty:t 0 in
      Arith.subi b zero v)
  | Unop (Not, a) ->
    let v = lower_expr env b a in
    let one = Arith.constant_int b ~ty:Types.I1 1 in
    Builder.op1 b "arith.xori" ~operands:[ v; one ] ~results:[ Types.I1 ]
  | Unop (Paren, a) ->
    let v = lower_expr env b a in
    if Types.is_float (Op.value_type v) then Fir.no_reassoc b v else v
  | Binop (op, x, y) -> lower_binop env b e.e_loc op x y
  | Ref_or_call (n, args) ->
    if Fsema.is_array env.sema n then begin
      let addr = lower_array_address env b e.e_loc n args in
      Fir.load b addr
    end
    else if Fsema.is_intrinsic n then lower_intrinsic env b e.e_loc n args
    else lower_function_call env b e.e_loc n args

and lower_const b c t =
  match (c, t) with
  | Fsema.C_int n, T_integer -> Arith.constant_int b ~ty:Types.I32 n
  | Fsema.C_int n, T_real k ->
    Arith.constant_float b
      ~ty:(if k = 4 then Types.F32 else Types.F64)
      (float_of_int n)
  | Fsema.C_real f, T_real k ->
    Arith.constant_float b ~ty:(if k = 4 then Types.F32 else Types.F64) f
  | Fsema.C_real f, T_integer ->
    Arith.constant_int b ~ty:Types.I32 (int_of_float f)
  | Fsema.C_bool v, _ -> Arith.constant_int b ~ty:Types.I1 (if v then 1 else 0)
  | Fsema.C_int n, T_logical ->
    Arith.constant_int b ~ty:Types.I1 (if n <> 0 then 1 else 0)
  | Fsema.C_real _, T_logical -> invalid_arg "lower_const: real as logical"

(* Address (fir.ref<elem>) of array element [n](args). *)
and lower_array_address env b loc n args =
  let storage =
    match lookup_binding env loc n with
    | B_array s -> s
    | _ -> unsupported loc "%s is not an array" n
  in
  let base =
    if storage.as_heap then Fir.load b storage.as_ref else storage.as_ref
  in
  let indices =
    List.map2
      (fun arg lb ->
        let idx = lower_expr env b arg in
        let idx = convert b idx Types.I32 in
        let zero_based =
          if lb = 0 then idx
          else
            let lbv = Arith.constant_int b ~ty:Types.I32 lb in
            Arith.subi b idx lbv
        in
        Fir.convert b ~to_:Types.Index zero_based)
      args storage.as_lbs
  in
  (* index sub-expressions moved the location; the coordinate itself
     should point at the array reference *)
  set_builder_loc b loc;
  Fir.coordinate_of b base indices

and lower_binop env b loc op x y =
  match op with
  | Add | Sub | Mul | Div | Pow ->
    let tx = value_ftype env x and ty_ = value_ftype env y in
    let t = Fsema.type_join tx ty_ in
    let st = fir_scalar_type t in
    let vx = convert b (lower_expr env b x) st in
    let vy = convert b (lower_expr env b y) st in
    let is_f = Types.is_float st in
    (match op with
    | Add -> if is_f then Arith.addf b vx vy else Arith.addi b vx vy
    | Sub -> if is_f then Arith.subf b vx vy else Arith.subi b vx vy
    | Mul -> if is_f then Arith.mulf b vx vy else Arith.muli b vx vy
    | Div -> if is_f then Arith.divf b vx vy else Arith.divsi b vx vy
    | Pow ->
      if is_f then begin
        match y.e_kind with
        | Int_lit _ ->
          let vy_int = convert b (lower_expr env b y) Types.I32 in
          Math.fpowi b vx vy_int
        | _ -> Math.powf b vx vy
      end
      else unsupported loc "integer exponentiation of integers"
    | _ -> assert false)
  | Eq | Ne | Lt | Le | Gt | Ge ->
    let t = Fsema.type_join (value_ftype env x) (value_ftype env y) in
    let st = fir_scalar_type t in
    let vx = convert b (lower_expr env b x) st in
    let vy = convert b (lower_expr env b y) st in
    let pred =
      match op with
      | Eq -> Arith.Eq
      | Ne -> Arith.Ne
      | Lt -> Arith.Slt
      | Le -> Arith.Sle
      | Gt -> Arith.Sgt
      | Ge -> Arith.Sge
      | _ -> assert false
    in
    if Types.is_float st then Arith.cmpf b pred vx vy
    else Arith.cmpi b pred vx vy
  | And | Or ->
    let vx = lower_expr env b x and vy = lower_expr env b y in
    let name = if op = And then "arith.andi" else "arith.ori" in
    Builder.op1 b name ~operands:[ vx; vy ] ~results:[ Types.I1 ]

and lower_intrinsic env b loc n args =
  let arg i = List.nth args i in
  let fl i =
    (* argument as float (f32/f64 preserved, ints promoted to f64) *)
    let v = lower_expr env b (arg i) in
    if Types.is_float (Op.value_type v) then v else convert b v Types.F64
  in
  match (n, args) with
  | "sqrt", [ _ ] -> Math.unary b "sqrt" (fl 0)
  | ("exp" | "sin" | "cos" | "tan" | "log" | "atan"), [ _ ] ->
    Math.unary b n (fl 0)
  | "atan2", [ _; _ ] -> Math.binary b "atan2" (fl 0) (fl 1)
  | "abs", [ a ] ->
    let v = lower_expr env b a in
    if Types.is_float (Op.value_type v) then Math.absf b v
    else begin
      let zero = Arith.constant_int b ~ty:(Op.value_type v) 0 in
      let neg = Arith.subi b zero v in
      let isneg = Arith.cmpi b Arith.Slt v zero in
      Arith.select b isneg neg v
    end
  | ("max" | "min"), (_ :: _ :: _ as xs) ->
    let t =
      List.fold_left
        (fun acc a -> Fsema.type_join acc (value_ftype env a))
        T_integer xs
    in
    let st = fir_scalar_type t in
    let vs = List.map (fun a -> convert b (lower_expr env b a) st) xs in
    let name =
      if Types.is_float st then
        if n = "max" then "arith.maximumf" else "arith.minimumf"
      else if n = "max" then "arith.maxsi"
      else "arith.minsi"
    in
    List.fold_left
      (fun acc v ->
        Builder.op1 b name ~operands:[ acc; v ] ~results:[ st ])
      (List.hd vs) (List.tl vs)
  | "mod", [ x; y ] ->
    let t = Fsema.type_join (value_ftype env x) (value_ftype env y) in
    let st = fir_scalar_type t in
    let vx = convert b (lower_expr env b x) st in
    let vy = convert b (lower_expr env b y) st in
    if Types.is_float st then unsupported loc "real mod"
    else Arith.remsi b vx vy
  | "dble", [ a ] -> convert b (lower_expr env b a) Types.F64
  | "real", [ a ] -> convert b (lower_expr env b a) Types.F32
  | "int", [ a ] -> convert b (lower_expr env b a) Types.I32
  | "floor", [ a ] ->
    let v = Math.unary b "floor" (fl 0) in
    ignore a;
    convert b v Types.I32
  | "nint", [ a ] ->
    ignore a;
    let half = Arith.constant_float b 0.5 in
    let v = fl 0 in
    let v = convert b v Types.F64 in
    let shifted = Arith.addf b v half in
    let fl_ = Math.unary b "floor" shifted in
    convert b fl_ Types.I32
  | ("sum" | "maxval" | "minval"), [ { e_kind = Var name; _ } ] ->
    lower_array_reduction env b loc n name
  | _ -> unsupported loc "intrinsic %s with %d args" n (List.length args)

(* Whole-array reduction: a loop nest over the full extents accumulating
   into a stack cell. Deliberately *not* a stencil shape (the accumulator
   is written inside the nest), so discovery correctly leaves it alone. *)
and lower_array_reduction env b loc n name =
  let storage =
    match lookup_binding env loc name with
    | B_array s -> s
    | _ -> unsupported loc "%s of non-array" n
  in
  let elem = storage.as_elem in
  let is_f = Types.is_float elem in
  let acc = Fir.alloca b elem in
  let init =
    match n with
    | "sum" ->
      if is_f then Arith.constant_float b ~ty:elem 0.0
      else Arith.constant_int b ~ty:elem 0
    | "maxval" ->
      (* largest finite magnitudes keep the textual IR round-trippable *)
      if is_f then Arith.constant_float b ~ty:elem (-.Float.max_float)
      else Arith.constant_int b ~ty:elem min_int
    | _ ->
      if is_f then Arith.constant_float b ~ty:elem Float.max_float
      else Arith.constant_int b ~ty:elem max_int
  in
  Fir.store b init acc;
  let base =
    if storage.as_heap then Fir.load b storage.as_ref else storage.as_ref
  in
  let zero = Arith.constant_index b 0 in
  let one = Arith.constant_index b 1 in
  (* nested inclusive loops over zero-based extents, innermost = dim 0 *)
  let rec nest dims_left idxs bb =
    match dims_left with
    | [] ->
      (* idxs accumulated innermost-last, i.e. already in dim order *)
      let addr = Fir.coordinate_of bb base idxs in
      let v = Fir.load bb addr in
      let cur = Fir.load bb acc in
      let combined =
        match n with
        | "sum" -> if is_f then Arith.addf bb cur v else Arith.addi bb cur v
        | "maxval" ->
          Builder.op1 bb
            (if is_f then "arith.maximumf" else "arith.maxsi")
            ~operands:[ cur; v ] ~results:[ elem ]
        | _ ->
          Builder.op1 bb
            (if is_f then "arith.minimumf" else "arith.minsi")
            ~operands:[ cur; v ] ~results:[ elem ]
      in
      Fir.store bb combined acc
    | extent :: rest ->
      let ub = Arith.constant_index bb (extent - 1) in
      ignore
        (Fir.do_loop bb ~lb:zero ~ub ~step:one (fun inner iv _ ->
             nest rest (iv :: idxs) inner;
             []))
  in
  (* dims outermost-first so dim 0 is the innermost loop *)
  nest (List.rev storage.as_extents) [] b;
  Fir.load b acc

(* Fortran passes by reference: materialise each argument in a cell. *)
and lower_function_call env b loc n args =
  let callee_unit =
    match Hashtbl.find_opt env.sema.Fsema.env_functions n with
    | Some u -> u
    | None -> unsupported loc "unknown function %s" n
  in
  let ret_type =
    match callee_unit.u_kind with
    | Function (_, result) -> (
      match
        List.find_opt (fun d -> d.d_name = result) callee_unit.u_decls
      with
      | Some d -> fir_scalar_type d.d_type
      | None -> Types.F64)
    | _ -> unsupported loc "%s is not a function" n
  in
  let refs = List.map (lower_actual_arg env b loc) args in
  let call = Fir.call b ~callee:("_QP" ^ n) ~results:[ ret_type ] refs in
  Op.result call

and lower_actual_arg env b loc (a : expr) : Op.value =
  match a.e_kind with
  | Var n -> (
    match lookup_binding env loc n with
    | B_scalar cell -> cell
    | B_array s ->
      if s.as_heap then Fir.load b s.as_ref else s.as_ref
    | B_param (c, t) ->
      let v = lower_const b c t in
      let cell = Fir.alloca b (Op.value_type v) in
      Fir.store b v cell;
      cell
    | B_loop_var v ->
      let cell = Fir.alloca b (Op.value_type v) in
      Fir.store b v cell;
      cell)
  | Ref_or_call (n, idx) when Fsema.is_array env.sema n ->
    lower_array_address env b loc n idx
  | _ ->
    let v = lower_expr env b a in
    let cell = Fir.alloca b (Op.value_type v) in
    Fir.store b v cell;
    cell

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt env b (s : stmt) =
  set_builder_loc b s.s_loc;
  match s.s_kind with
  | Assign (lhs, rhs) -> (
    match lhs.e_kind with
    | Var n -> (
      match lookup_binding env s.s_loc n with
      | B_scalar cell ->
        let target_t = Fir.referenced_type cell in
        let v = convert b (lower_expr env b rhs) target_t in
        set_builder_loc b s.s_loc;
        Fir.store b v cell
      | _ -> unsupported s.s_loc "assignment to %s" n)
    | Ref_or_call (n, idx) ->
      let addr = lower_array_address env b s.s_loc n idx in
      let target_t = Fir.referenced_type addr in
      let v = convert b (lower_expr env b rhs) target_t in
      (* the rhs lowering leaves the location at its last sub-expression;
         the store is the statement *)
      set_builder_loc b s.s_loc;
      Fir.store b v addr
    | _ -> unsupported s.s_loc "invalid assignment target")
  | Do (v, lb, ub, step, body) ->
    let lbv = convert b (lower_expr env b lb) Types.I32 in
    let ubv = convert b (lower_expr env b ub) Types.I32 in
    let stepv =
      match step with
      | None -> Arith.constant_int b ~ty:Types.I32 1
      | Some e -> convert b (lower_expr env b e) Types.I32
    in
    let lb_i = Fir.convert b ~to_:Types.Index lbv in
    let ub_i = Fir.convert b ~to_:Types.Index ubv in
    let step_i = Fir.convert b ~to_:Types.Index stepv in
    (* bound expressions moved the location; the loop op itself should
       point at the DO statement *)
    set_builder_loc b s.s_loc;
    let saved = Hashtbl.find_opt env.bindings v in
    ignore
      (Fir.do_loop b ~lb:lb_i ~ub:ub_i ~step:step_i (fun inner iv _ ->
           let iv32 = Fir.convert inner ~to_:Types.I32 iv in
           Hashtbl.replace env.bindings v (B_loop_var iv32);
           List.iter (lower_stmt env inner) body;
           []));
    (match saved with
    | Some old -> Hashtbl.replace env.bindings v old
    | None -> Hashtbl.remove env.bindings v)
  | Do_while (cond, body) ->
    ignore
      (Fir.iterate_while b
         ~cond:(fun cb -> lower_expr env cb cond)
         ~body:(fun bb -> List.iter (lower_stmt env bb) body))
  | If (branches, else_body) -> lower_if env b s.s_loc branches else_body
  | Call_stmt (n, args) ->
    let refs = List.map (lower_actual_arg env b s.s_loc) args in
    ignore (Fir.call b ~callee:("_QP" ^ n) ~results:[] refs)
  | Allocate allocs ->
    List.iter
      (fun (n, dims) ->
        let storage =
          match lookup_binding env s.s_loc n with
          | B_array st -> st
          | _ -> unsupported s.s_loc "allocate of non-array %s" n
        in
        let resolve d =
          let const e =
            match Fsema.eval_const env.sema.Fsema.env_symbols e with
            | Fsema.C_int n -> n
            | _ -> unsupported s.s_loc "allocate bound must be integer"
          in
          match (d.ds_lower, d.ds_upper) with
          | None, Some u -> (1, const u)
          | Some l, Some u -> (const l, const u)
          | _ -> unsupported s.s_loc "allocate bounds must be explicit"
        in
        let bounds = List.map resolve dims in
        storage.as_lbs <- List.map fst bounds;
        storage.as_extents <- List.map (fun (l, h) -> h - l + 1) bounds;
        let arr_t =
          Types.Fir_array
            ( List.map (fun e -> Types.Static e) storage.as_extents,
              storage.as_elem )
        in
        let mem = Fir.allocmem b ~name:n arr_t in
        (* the cell was typed with the deferred shape; re-type it now *)
        let cell_t = Types.Fir_ref (Types.Fir_heap arr_t) in
        (match Op.defining_op storage.as_ref with
        | Some cell_op ->
          (Op.result cell_op).Op.v_type <- cell_t;
          Op.set_attr cell_op "in_type" (Attr.Type_a (Types.Fir_heap arr_t))
        | None -> ());
        Fir.store b mem storage.as_ref)
      allocs
  | Deallocate names ->
    List.iter
      (fun n ->
        match lookup_binding env s.s_loc n with
        | B_array st when st.as_heap ->
          let mem = Fir.load b st.as_ref in
          Fir.freemem b mem
        | _ -> unsupported s.s_loc "deallocate of %s" n)
      names
  | Print args ->
    let operands, fmts =
      List.fold_left
        (fun (ops, fmts) (a : expr) ->
          match a.e_kind with
          | Var n when String.length n > 0 && n.[0] = '"' ->
            (ops, fmts @ [ Attr.Str_a (String.sub n 1 (String.length n - 2)) ])
          | _ -> (ops @ [ lower_expr env b a ], fmts @ [ Attr.Unit_a ]))
        ([], []) args
    in
    ignore
      (Builder.op b "fir.print" ~operands
         ~attrs:[ ("format", Attr.Arr_a fmts) ])
  | Return -> () (* structured return handled at unit end *)
  | Exit_stmt -> Fir.exit_ b
  | Cycle_stmt -> Fir.cycle b

and lower_if env b _loc branches else_body =
  match branches with
  | [] -> Option.iter (List.iter (lower_stmt env b)) else_body
  | (cond, body) :: rest ->
    let cv = lower_expr env b cond in
    let else_fn =
      if rest = [] && else_body = None then None
      else
        Some
          (fun inner ->
            lower_if env inner _loc rest else_body)
    in
    ignore
      (Fir.if_ b cv ?else_:else_fn (fun inner ->
           List.iter (lower_stmt env inner) body))

(* ------------------------------------------------------------------ *)
(* Unit lowering                                                       *)
(* ------------------------------------------------------------------ *)

let decl_array_types env (d : decl) =
  let elem = fir_scalar_type d.d_type in
  let info =
    match Hashtbl.find_opt env.Fsema.env_symbols d.d_name with
    | Some (Fsema.S_array i) | Some (Fsema.S_dummy_array (i, _)) -> Some i
    | _ -> None
  in
  match info with
  | Some { Fsema.a_bounds = Some bounds; _ } ->
    let lbs = List.map fst bounds in
    let extents = List.map (fun (l, h) -> h - l + 1) bounds in
    (elem, lbs, extents,
     Types.Fir_array (List.map (fun e -> Types.Static e) extents, elem))
  | Some { Fsema.a_rank = r; _ } ->
    ( elem,
      List.init r (fun _ -> 1),
      List.init r (fun _ -> 0),
      Types.Fir_array (List.init r (fun _ -> Types.Dynamic), elem) )
  | None -> invalid_arg "decl_array_types: not an array"

let lower_unit (sema_env : Fsema.unit_env) : Op.op =
  let u = sema_env.Fsema.env_unit in
  let env =
    { sema = sema_env; bindings = Hashtbl.create 32; result_cell = None }
  in
  let dummy_args =
    match u.u_kind with
    | Program -> []
    | Subroutine args -> args
    | Function (args, _) -> args
  in
  (* Dummy argument FIR types: scalars and arrays are both by-reference. *)
  let arg_types =
    List.map
      (fun a ->
        match Hashtbl.find_opt sema_env.Fsema.env_symbols a with
        | Some (Fsema.S_dummy_scalar (t, _) | Fsema.S_scalar t) ->
          Types.Fir_ref (fir_scalar_type t)
        | Some (Fsema.S_dummy_array (i, _) | Fsema.S_array i) ->
          let elem = fir_scalar_type i.Fsema.a_type in
          let dims =
            match i.Fsema.a_bounds with
            | Some bs ->
              List.map (fun (l, h) -> Types.Static (h - l + 1)) bs
            | None -> List.init i.Fsema.a_rank (fun _ -> Types.Dynamic)
          in
          Types.Fir_ref (Types.Fir_array (dims, elem))
        | _ -> Types.Fir_ref Types.F64)
      dummy_args
  in
  let result_types =
    match u.u_kind with
    | Function (_, result) -> (
      match List.find_opt (fun d -> d.d_name = result) u.u_decls with
      | Some d -> [ fir_scalar_type d.d_type ]
      | None -> [ Types.F64 ])
    | _ -> []
  in
  let fname = mangle u in
  Func.func ~name:fname ~args:arg_types ~results:result_types
    ~attrs:
      (match u.u_kind with
      | Program -> [ ("fortran.program", Attr.Unit_a) ]
      | _ -> [])
    (fun b args ->
      (* Bind dummy arguments. *)
      List.iteri
        (fun i a ->
          let v = List.nth args i in
          match Hashtbl.find_opt sema_env.Fsema.env_symbols a with
          | Some (Fsema.S_dummy_array (info, _) | Fsema.S_array info) ->
            let bounds =
              match info.Fsema.a_bounds with
              | Some bs -> bs
              | None -> List.init info.Fsema.a_rank (fun _ -> (1, 0))
            in
            Hashtbl.replace env.bindings a
              (B_array
                 { as_ref = v; as_heap = false;
                   as_elem = fir_scalar_type info.Fsema.a_type;
                   as_lbs = List.map fst bounds;
                   as_extents =
                     List.map (fun (l, h) -> h - l + 1) bounds })
          | _ -> Hashtbl.replace env.bindings a (B_scalar v))
        dummy_args;
      (* Local declarations. *)
      let result_var =
        match u.u_kind with Function (_, r) -> Some r | _ -> None
      in
      List.iter
        (fun (d : decl) ->
          if List.mem d.d_name dummy_args then ()
          else
            match Hashtbl.find_opt sema_env.Fsema.env_symbols d.d_name with
            | Some (Fsema.S_param (t, c)) ->
              Hashtbl.replace env.bindings d.d_name (B_param (c, t))
            | Some (Fsema.S_scalar t) ->
              let cell = Fir.alloca b ~name:d.d_name (fir_scalar_type t) in
              Hashtbl.replace env.bindings d.d_name (B_scalar cell);
              if result_var = Some d.d_name then
                env.result_cell <- Some cell
            | Some (Fsema.S_array info) ->
              let elem, lbs, extents, arr_t = decl_array_types sema_env d in
              if info.Fsema.a_allocatable then begin
                let cell =
                  Fir.alloca b ~name:d.d_name (Types.Fir_heap arr_t)
                in
                Hashtbl.replace env.bindings d.d_name
                  (B_array
                     { as_ref = cell; as_heap = true; as_elem = elem;
                       as_lbs = lbs; as_extents = extents })
              end
              else begin
                let cell = Fir.alloca b ~name:d.d_name arr_t in
                Hashtbl.replace env.bindings d.d_name
                  (B_array
                     { as_ref = cell; as_heap = false; as_elem = elem;
                       as_lbs = lbs; as_extents = extents })
              end
            | _ -> ())
        u.u_decls;
      (* Function result cell when the result variable is undeclared. *)
      (match (u.u_kind, env.result_cell) with
      | Function (_, r), None
        when not (Hashtbl.mem env.bindings r) ->
        let cell = Fir.alloca b ~name:r Types.F64 in
        Hashtbl.replace env.bindings r (B_scalar cell);
        env.result_cell <- Some cell
      | Function (_, r), None -> (
        match Hashtbl.find_opt env.bindings r with
        | Some (B_scalar cell) -> env.result_cell <- Some cell
        | _ -> ())
      | _ -> ());
      (* Body. *)
      List.iter (lower_stmt env b) u.u_body;
      (* Return. *)
      match u.u_kind with
      | Function _ -> (
        match env.result_cell with
        | Some cell -> Func.return_ b [ Fir.load b cell ]
        | None -> unsupported u.u_loc "function without result storage")
      | _ -> Func.return_ b [])

(* Lower a full compilation unit to a FIR module. *)
let lower_compilation_unit (envs : Fsema.unit_env list) : Op.op =
  let m = Op.create_module () in
  let blk = Op.module_block m in
  List.iter (fun env -> Op.append_to blk (lower_unit env)) envs;
  m

(* One-stop front door: Fortran source text -> FIR module. *)
let compile_source src =
  let units = Fparser.parse_source src in
  let envs = Fsema.analyze units in
  lower_compilation_unit envs

(** scf-parallel-loop-tiling{parallel-loop-tile-sizes=...}: splits an
    [scf.parallel] into an outer parallel over tile origins (step = tile
    size) and an inner parallel over intra-tile offsets bounded by
    min(tile, remaining). The paper found GPU performance — and even
    correctness — sensitive to these sizes; 32,32,1 performed well
    across kernels (Section 3). The outer loop is annotated with
    ["tiled"] and ["tile_sizes"] for the GPU mapping pass. *)

open Fsc_ir

val run : tile_sizes:int list -> Op.op -> unit

val pass : tile_sizes:int list -> Pass.t

(** CPU-side cache-tile annotation: marks every top-level loop nest of
    every kernel with a ["cpu_tile"] attribute — the number of innermost
    rows whose working set (across all buffer arguments) fits in half of
    [l2_kb] KB of cache. Read by the vector execution engine
    ([Fsc_rt.Kernel_bytecode]) to block its outer loops; the driver
    supplies [l2_kb] from the machine model. Returns the number of nests
    annotated. *)
val annotate_cpu : l2_kb:int -> Op.op -> int

(* The GPU leg of the paper's pipeline (Listing 4):

   - gpu-map-parallel-loops annotates the tiled scf.parallel nest with a
     processor mapping (outer -> blocks, inner -> threads);
   - convert-parallel-loops-to-gpu converts *only mapped* loops into a
     gpu.launch region — unmapped loops are silently left on the CPU,
     which is exactly the failure mode the paper warns about;
   - gpu-kernel-outlining lifts the launch region into a gpu.func inside
     a gpu.module and replaces it with gpu.launch_func;
   - gpu-to-cubin marks the module as containing target binary. A
     missing/misordered pass leaves no "cubin" and execution falls back
     to the host without an error. *)

open Fsc_ir
module Scf = Fsc_dialects.Scf
module Arith = Fsc_dialects.Arith
module Gpu = Fsc_dialects.Gpu

(* ---------------- gpu-map-parallel-loops ---------------- *)

let map_parallel_loops m =
  let mapped = ref 0 in
  Op.walk
    (fun op ->
      if op.Op.o_name = "scf.parallel" && Op.has_attr op "tiled" then begin
        Op.set_attr op "mapping" (Attr.Str_a "blocks");
        (* the inner parallel produced by tiling *)
        Op.walk_inner
          (fun inner ->
            if
              inner.Op.o_name = "scf.parallel"
              && not (Op.has_attr inner "mapping")
            then Op.set_attr inner "mapping" (Attr.Str_a "threads"))
          op;
        incr mapped
      end)
    m;
  !mapped

let map_pass =
  Pass.create "gpu-map-parallel-loops" (fun m -> ignore (map_parallel_loops m))

(* ---------------- convert-parallel-loops-to-gpu ---------------- *)

(* trip count = ceil((ub - lb) / step) as an index SSA value *)
let trip_count b lb ub step =
  let diff =
    Builder.op1 b "arith.subi" ~operands:[ ub; lb ] ~results:[ Types.Index ]
  in
  let one = Arith.constant_index b 1 in
  let sm1 =
    Builder.op1 b "arith.subi" ~operands:[ step; one ]
      ~results:[ Types.Index ]
  in
  let num =
    Builder.op1 b "arith.addi" ~operands:[ diff; sm1 ]
      ~results:[ Types.Index ]
  in
  Builder.op1 b "arith.divsi" ~operands:[ num; step ]
    ~results:[ Types.Index ]

let convert_one outer =
  let lbs, ubs, steps = Scf.parallel_bounds outer in
  let k = List.length lbs in
  if k > 3 then invalid_arg "convert-parallel-loops-to-gpu: rank > 3";
  let b = Builder.before outer in
  let one = Arith.constant_index b 1 in
  (* hardware dim for loop dim i (0 = outermost): innermost loop -> x *)
  let hw i = k - 1 - i in
  let grids = Array.make 3 one in
  List.iteri
    (fun i lb ->
      grids.(hw i) <- trip_count b lb (List.nth ubs i) (List.nth steps i))
    lbs;
  let blocks = Array.make 3 one in
  (match Op.attr outer "tile_sizes" with
  | Some (Attr.Arr_a sizes) ->
    List.iteri
      (fun i s ->
        if i < k then blocks.(hw i) <- Arith.constant_index b (Attr.as_int s))
      sizes
  | _ -> ());
  (* launch region: 6 index args (bid x,y,z then tid x,y,z) *)
  let region, blk =
    Op.region_with_block ~args:(List.init 6 (fun _ -> Types.Index)) ()
  in
  let ib = Builder.at_end blk in
  let bid i = Op.block_arg ~index:i blk in
  let tid i = Op.block_arg ~index:(3 + i) blk in
  (* outer indices: lb + bid*step *)
  let outer_idxs =
    List.mapi
      (fun i lb ->
        let scaled =
          Builder.op1 ib "arith.muli"
            ~operands:[ bid (hw i); List.nth steps i ]
            ~results:[ Types.Index ]
        in
        Builder.op1 ib "arith.addi" ~operands:[ lb; scaled ]
          ~results:[ Types.Index ])
      lbs
  in
  (* splice the outer body, substituting ivs; the inner mapped parallel
     becomes thread indices + bounds guard *)
  let body = Scf.body_block outer in
  let mapping = Hashtbl.create 16 in
  List.iteri
    (fun i (arg : Op.value) ->
      Hashtbl.replace mapping arg.Op.v_id (List.nth outer_idxs i))
    (Op.block_args body);
  let map_v (v : Op.value) =
    match Hashtbl.find_opt mapping v.Op.v_id with Some v' -> v' | None -> v
  in
  List.iter
    (fun op ->
      match op.Op.o_name with
      | "scf.yield" -> ()
      | "scf.parallel"
        when Op.attr op "mapping" = Some (Attr.Str_a "threads") ->
        (* thread indices with guard tid < trip *)
        let ilbs, iubs, isteps = Scf.parallel_bounds op in
        let inner_body = Scf.body_block op in
        let guards = ref [] in
        let inner_idxs =
          List.mapi
            (fun i ilb ->
              let ilb = map_v ilb and iub = map_v (List.nth iubs i) in
              let istep = map_v (List.nth isteps i) in
              let scaled =
                Builder.op1 ib "arith.muli"
                  ~operands:[ tid (hw i); istep ]
                  ~results:[ Types.Index ]
              in
              let idx =
                Builder.op1 ib "arith.addi" ~operands:[ ilb; scaled ]
                  ~results:[ Types.Index ]
              in
              let in_range =
                Builder.op1 ib "arith.cmpi" ~operands:[ idx; iub ]
                  ~results:[ Types.I1 ]
                  ~attrs:
                    [ ("predicate",
                       Attr.Int_a (Arith.cmp_predicate_to_int Arith.Slt)) ]
              in
              guards := in_range :: !guards;
              idx)
            ilbs
        in
        let cond =
          match !guards with
          | [] -> Arith.constant_int ib ~ty:Types.I1 1
          | g :: gs ->
            List.fold_left
              (fun acc g' ->
                Builder.op1 ib "arith.andi" ~operands:[ acc; g' ]
                  ~results:[ Types.I1 ])
              g gs
        in
        ignore
          (Scf.if_ ib cond (fun tb ->
               let inner_map = Hashtbl.copy mapping in
               List.iteri
                 (fun i (arg : Op.value) ->
                   Hashtbl.replace inner_map arg.Op.v_id
                     (List.nth inner_idxs i))
                 (Op.block_args inner_body);
               List.iter
                 (fun iop ->
                   if iop.Op.o_name <> "scf.yield" then
                     ignore
                       (Builder.insert tb (Op.clone ~mapping:inner_map iop)))
                 (Op.block_ops inner_body)))
      | _ ->
        let c = Op.clone ~mapping op in
        ignore (Builder.insert ib c);
        Array.iteri
          (fun i (r : Op.value) ->
            Hashtbl.replace mapping r.Op.v_id c.Op.o_results.(i))
          op.Op.o_results)
    (Op.block_ops body);
  ignore (Builder.op (Builder.at_end blk) "gpu.terminator");
  ignore
    (Builder.op b "gpu.launch"
       ~operands:(Array.to_list grids @ Array.to_list blocks)
       ~regions:[ region ]);
  Op.erase outer

let convert_parallel_loops_to_gpu m =
  let candidates =
    Op.collect_ops
      (fun o ->
        o.Op.o_name = "scf.parallel"
        && Op.attr o "mapping" = Some (Attr.Str_a "blocks"))
      m
  in
  List.iter convert_one candidates;
  List.length candidates

let convert_pass =
  Pass.create "convert-parallel-loops-to-gpu" (fun m ->
      ignore (convert_parallel_loops_to_gpu m))

(* ---------------- gpu-kernel-outlining ---------------- *)

let outline_counter = Atomic.make 0

let outline_one ~gpu_mod launch =
  let n = Atomic.fetch_and_add outline_counter 1 in
  let kname = Printf.sprintf "stencil_gpu_kernel_%d" n in
  let region = Op.region ~index:0 launch in
  let blk =
    match region.Op.g_blocks with [ b ] -> b | _ -> assert false
  in
  (* free values of the region = kernel arguments *)
  let free = ref [] in
  let in_region op =
    let rec up o =
      match Op.parent_block o with
      | Some pb ->
        if pb == blk then true
        else (
          match pb.Op.b_parent with
          | Some r -> (
            match r.Op.g_parent with Some p -> up p | None -> false)
          | None -> false)
      | None -> false
    in
    up op
  in
  List.iter
    (fun op ->
      Op.walk
        (fun o ->
          Array.iter
            (fun (v : Op.value) ->
              let inside =
                match Op.defining_op v with
                | Some d -> in_region d
                | None -> (
                  (* block arg: inside iff its block is within region *)
                  match v.Op.v_def with
                  | Op.Block_arg (b', _) ->
                    b' == blk
                    ||
                    (match b'.Op.b_parent with
                    | Some r -> (
                      match r.Op.g_parent with
                      | Some p -> in_region p
                      | None -> false)
                    | None -> false)
                  | _ -> false)
              in
              if
                (not inside)
                && not (List.exists (fun w -> w == v) !free)
              then free := v :: !free)
            o.Op.o_operands)
        op)
    (Op.block_ops blk);
  let free = List.rev !free in
  let arg_types = List.map Op.value_type free in
  (* build the kernel function *)
  let kernel =
    Gpu.gpu_func ~name:kname ~args:arg_types (fun kb kargs ->
        let mapping = Hashtbl.create 16 in
        List.iteri
          (fun i (v : Op.value) ->
            Hashtbl.replace mapping v.Op.v_id (List.nth kargs i))
          free;
        (* block/thread ids replace the launch region block args *)
        let dims = [ Gpu.X; Gpu.Y; Gpu.Z ] in
        List.iteri
          (fun i d ->
            Hashtbl.replace mapping
              (Op.block_arg ~index:i blk).Op.v_id
              (Gpu.block_id kb d))
          dims;
        List.iteri
          (fun i d ->
            Hashtbl.replace mapping
              (Op.block_arg ~index:(3 + i) blk).Op.v_id
              (Gpu.thread_id kb d))
          dims;
        List.iter
          (fun op ->
            if op.Op.o_name <> "gpu.terminator" then
              ignore (Builder.insert kb (Op.clone ~mapping op)))
          (Op.block_ops blk))
  in
  Op.append_to (Op.module_block gpu_mod) kernel;
  (* replace launch with launch_func *)
  let b = Builder.before launch in
  let ops = Op.operands launch in
  let grid = (List.nth ops 0, List.nth ops 1, List.nth ops 2) in
  let block = (List.nth ops 3, List.nth ops 4, List.nth ops 5) in
  Gpu.launch_func b
    ~kernel:(Printf.sprintf "kernels::%s" kname)
    ~grid ~block free;
  Op.erase launch

let kernel_outlining m =
  let launches = Op.collect_ops (fun o -> o.Op.o_name = "gpu.launch") m in
  if launches = [] then 0
  else begin
    let gpu_mod = Gpu.gpu_module ~name:"kernels" in
    Op.prepend_to (Op.module_block m) gpu_mod;
    List.iter (outline_one ~gpu_mod) launches;
    List.length launches
  end

let outline_pass =
  Pass.create "gpu-kernel-outlining" (fun m -> ignore (kernel_outlining m))

(* ---------------- gpu-to-cubin ---------------- *)

(* Marks gpu.modules as carrying target binary; without this attribute the
   runtime has nothing to put on the device and execution silently stays
   on the host — the sharp edge the paper reports. *)
let to_cubin m =
  let count = ref 0 in
  Op.walk
    (fun op ->
      if op.Op.o_name = "gpu.module" then begin
        Op.set_attr op "cubin" (Attr.Str_a "sm_70");
        incr count
      end)
    m;
  !count

let cubin_pass = Pass.create "gpu-to-cubin" (fun m -> ignore (to_cubin m))

(* gpu-async-region: marker pass (execution in this substrate is
   synchronous; kept for pipeline fidelity with Listing 4). *)
let async_region_pass = Pass.create "gpu-async-region" (fun _ -> ())

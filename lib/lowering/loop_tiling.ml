(* scf-parallel-loop-tiling{parallel-loop-tile-sizes=...}: splits an
   scf.parallel into an outer parallel over tile origins (step = tile
   size) and an inner parallel over intra-tile offsets bounded by
   min(tile, remaining). The paper found GPU performance — and even
   correctness — sensitive to these sizes; 32,32,1 performed well across
   kernels (Section 3). *)

open Fsc_ir
module Arith = Fsc_dialects.Arith
module Scf = Fsc_dialects.Scf

let tile_one ~tile_sizes par =
  let lbs, ubs, steps = Scf.parallel_bounds par in
  let rank = List.length lbs in
  let sizes =
    List.init rank (fun i ->
        if i < List.length tile_sizes then List.nth tile_sizes i else 1)
  in
  let b = Builder.before par in
  let size_consts = List.map (Arith.constant_index b) sizes in
  (* outer: same bounds, step = original step * tile size *)
  let outer_steps =
    List.map2 (fun s c -> Arith.muli b s c) steps size_consts
  in
  let body = Scf.body_block par in
  let outer =
    Scf.parallel b ~lbs ~ubs ~steps:outer_steps (fun ob oivs ->
        (* inner parallel over [0, min(size, ub - oiv)) step original *)
        let inner_ubs =
          List.mapi
            (fun i oiv ->
              let ub = List.nth ubs i and sz = List.nth size_consts i in
              let remaining =
                Builder.op1 ob "arith.subi" ~operands:[ ub; oiv ]
                  ~results:[ Types.Index ]
              in
              Builder.op1 ob "arith.minsi" ~operands:[ sz; remaining ]
                ~results:[ Types.Index ])
            oivs
        in
        let zero = Arith.constant_index ob 0 in
        ignore
          (Scf.parallel ob
             ~lbs:(List.map (fun _ -> zero) oivs)
             ~ubs:inner_ubs ~steps
             (fun ib iivs ->
               (* absolute index = outer + inner *)
               let idxs =
                 List.map2
                   (fun o i ->
                     Builder.op1 ib "arith.addi" ~operands:[ o; i ]
                       ~results:[ Types.Index ])
                   oivs iivs
               in
               (* splice the original body, remapping its ivs *)
               let mapping = Hashtbl.create 8 in
               List.iteri
                 (fun d (arg : Op.value) ->
                   Hashtbl.replace mapping arg.Op.v_id (List.nth idxs d))
                 (Op.block_args body);
               List.iter
                 (fun op ->
                   if op.Op.o_name <> "scf.yield" then begin
                     let c = Op.clone ~mapping op in
                     ignore (Builder.insert ib c)
                   end)
                 (Op.block_ops body))))
  in
  Op.set_attr outer "tiled" Attr.Unit_a;
  Op.set_attr outer "tile_sizes"
    (Attr.Arr_a (List.map (fun s -> Attr.Int_a s) sizes));
  Op.erase par

(* Tiles every *top-level* scf.parallel (not ones already produced by
   tiling). *)
let run ~tile_sizes m =
  let parallels =
    Op.collect_ops
      (fun o ->
        o.Op.o_name = "scf.parallel"
        && (not (Op.has_attr o "tiled"))
        && (match Op.parent_op o with
           | Some p -> p.Op.o_name <> "scf.parallel"
           | None -> true))
      m
  in
  List.iter (tile_one ~tile_sizes) parallels

let pass ~tile_sizes =
  Pass.create
    (Printf.sprintf "scf-parallel-loop-tiling{parallel-loop-tile-sizes=%s}"
       (String.concat "," (List.map string_of_int tile_sizes)))
    (fun m -> run ~tile_sizes m)

(* ------------------------------------------------------------------ *)
(* CPU cache-tile annotation                                           *)
(* ------------------------------------------------------------------ *)

let const_of (v : Op.value) =
  match Op.defining_op v with
  | Some op when op.Op.o_name = "arith.constant" -> (
    match Op.attr op "value" with
    | Some (Attr.Int_a n) -> Some n
    | _ -> None)
  | _ -> None

let is_loop_name = function
  | "scf.for" | "scf.parallel" | "omp.parallel" | "omp.wsloop" -> true
  | _ -> false

(* Extent of the innermost constant-bound scf.for under [top] (the row
   the vector engine processes per step), if the nest bottoms out in
   one. *)
let innermost_extent top =
  let result = ref None in
  let visit o =
    if o.Op.o_name = "scf.for" then begin
      let nested = ref false in
      Op.walk_inner
        (fun i -> if is_loop_name i.Op.o_name then nested := true)
        o;
      if not !nested then
        match
          (const_of (Op.operand ~index:0 o), const_of (Op.operand ~index:1 o))
        with
        | Some lb, Some ub when ub > lb -> result := Some (ub - lb)
        | _ -> ()
    end
  in
  visit top;
  Op.walk_inner visit top;
  !result

(* Annotate every top-level loop nest of every kernel function with a
   ["cpu_tile"] attribute: the number of innermost rows whose working
   set (across all buffer arguments) fits in half of [l2_kb] of cache.
   The CPU vector executor (Fsc_rt.Kernel_bytecode) reads the attribute
   off the analysed nest and blocks its outer loops accordingly. The
   driver supplies [l2_kb] from the machine model — this pass stays
   machine-agnostic. Returns the number of nests annotated. *)
let annotate_cpu ~l2_kb m =
  let count = ref 0 in
  List.iter
    (fun f ->
      let entry = Fsc_dialects.Func.entry_block f in
      let arrays =
        List.length
          (List.filter
             (fun (a : Op.value) ->
               match Op.value_type a with
               | Types.Llvm_ptr | Types.Llvm_typed_ptr _ | Types.Memref _
               | Types.Fir_llvm_ptr _ ->
                 true
               | _ -> false)
             (Op.block_args entry))
      in
      List.iter
        (fun op ->
          if is_loop_name op.Op.o_name then
            match innermost_extent op with
            | Some w ->
              let rows =
                max 1 (l2_kb * 1024 / 2 / max 1 (8 * w * max 1 arrays))
              in
              Op.set_attr op "cpu_tile" (Attr.Arr_a [ Attr.Int_a rows ]);
              incr count
            | None -> ())
        (Op.block_ops entry))
    (Fsc_dialects.Func.all_functions m);
  !count

(* The `sfc check` engine: run the static analyses over a module (or
   straight from Fortran source) without compiling, and produce
   diagnostics plus a per-nest parallelisability summary. *)

open Fsc_ir
module Fir = Fsc_fir.Fir
module Fortran = Fsc_fortran

(* Dialect registration is process-global and guarded; `sfc check` can
   run without the driver library, so do it here too. *)
let reg_done = ref false

let ensure_registered () =
  if not !reg_done then begin
    Fsc_dialects.Registry.init ();
    reg_done := true
  end

type nest_summary = {
  ns_parallel : int;
  ns_carried : int;
  ns_unknown : int;
}

type nest_footprint = {
  fp_loc : Diag.srcloc option;
  fp_reads : (string * Footprint.region) list;
  fp_writes : (string * Footprint.region) list;
}

type result = {
  r_diags : Diag.t list;
  r_summary : nest_summary; (* one entry per distinct loop-nest scope *)
  r_footprints : nest_footprint list;
}

let empty_summary = { ns_parallel = 0; ns_carried = 0; ns_unknown = 0 }

(* ------------------------------------------------------------------ *)
(* Dependence diagnostics                                              *)
(* ------------------------------------------------------------------ *)

let access_what (a : Dependence.access) =
  if a.Dependence.acc_is_write then "write" else "read"

let dep_diag (d : Dependence.dependence) =
  let loc = Diag.loc_of_op d.Dependence.dep_src.Dependence.acc_op in
  let notes =
    [ ( Diag.loc_of_op d.Dependence.dep_dst.Dependence.acc_op,
        Printf.sprintf "conflicting %s of '%s' is here"
          (access_what d.Dependence.dep_dst)
          d.Dependence.dep_src.Dependence.acc_root.Index_expr.root_name ) ]
  in
  if d.Dependence.dep_definite then
    Diag.warning ?loc ~notes ~code:"race" (Dependence.describe d)
  else Diag.note ?loc ~notes ~code:"race" (Dependence.describe d)

let inner_seq_diag (nest : Dependence.nest) loop =
  let store = nest.Dependence.n_store in
  let loc = Diag.loc_of_op store.Dependence.acc_op in
  let notes =
    [ ( Diag.loc_of_op loop,
        "the loop that repeats the write starts here" ) ]
  in
  Diag.warningf ?loc ~notes ~code:"race"
    "loop-carried output dependence on '%s': the store does not use the \
     induction variable of an enclosing loop, so every iteration of that \
     loop rewrites the same elements"
    store.Dependence.acc_root.Index_expr.root_name

(* Symmetric pairs (write A vs write B) show up once per nest; dedupe on
   the unordered (src, dst) op-id pair. *)
let dep_key (d : Dependence.dependence) =
  let a = d.Dependence.dep_src.Dependence.acc_op.Op.o_id in
  let b = d.Dependence.dep_dst.Dependence.acc_op.Op.o_id in
  (min a b, max a b)

let check_dependences m =
  let nests = ref [] in
  Op.walk
    (fun o ->
      if Fir.is_store o then
        match Dependence.nest_of_store o with
        | Some n -> nests := n :: !nests
        | None -> ())
    m;
  let nests = List.rev !nests in
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  (* per-scope classification, worst nest wins *)
  let scopes : (int, [ `Parallel | `Carried | `May ]) Hashtbl.t =
    Hashtbl.create 8
  in
  let worsen scope cls =
    let id = scope.Op.o_id in
    let cur = Hashtbl.find_opt scopes id in
    let next =
      match (cur, cls) with
      | Some `Carried, _ | _, `Carried -> `Carried
      | Some `May, _ | _, `May -> `May
      | _ -> `Parallel
    in
    Hashtbl.replace scopes id next
  in
  List.iter
    (fun nest ->
      let cls =
        match Dependence.classify nest with
        | Dependence.Parallel -> `Parallel
        | Dependence.Carried deps | Dependence.May deps ->
          List.iter
            (fun d ->
              let key = dep_key d in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                diags := dep_diag d :: !diags
              end)
            deps;
          if List.exists (fun d -> d.Dependence.dep_definite) deps then
            `Carried
          else `May
      in
      let cls =
        match nest.Dependence.n_inner_seq with
        | [] -> cls
        | loop :: _ ->
          diags := inner_seq_diag nest loop :: !diags;
          `Carried
      in
      worsen nest.Dependence.n_scope cls)
    nests;
  let summary =
    Hashtbl.fold
      (fun _ cls s ->
        match cls with
        | `Parallel -> { s with ns_parallel = s.ns_parallel + 1 }
        | `Carried -> { s with ns_carried = s.ns_carried + 1 }
        | `May -> { s with ns_unknown = s.ns_unknown + 1 })
      scopes empty_summary
  in
  (List.rev !diags, summary)

(* ------------------------------------------------------------------ *)
(* Footprint lints: dead-write, unread-field, redundant-exchange       *)
(* ------------------------------------------------------------------ *)

module F = Footprint

(* Region of one FIR access: per dimension, the value set of the affine
   subscript over its loop's constant bounds. Over-approximate by
   construction — [Unknown] forms and non-constant loop bounds widen to
   [Top] — which is the safe direction for every lint below (a larger
   write region stales more / is less often dead). *)
let form_dim = function
  | Index_expr.Const c -> F.range c c
  | Index_expr.Affine (iv, off) -> (
    match Bounds.iv_range iv with
    | Some (lo, hi) -> F.range (lo + off) (hi + off)
    | None -> F.Top)
  | Index_expr.Unknown -> F.Top

let access_region (a : Dependence.access) : F.region =
  List.map form_dim a.Dependence.acc_forms

(* An array access (through fir.coordinate_of) whose root could not be
   summarised: it may alias any field, so whole-program claims (dead
   writes, unread fields, redundant exchanges) are off the table. *)
let is_unresolved_array_access o =
  let addr =
    if Fir.is_store o then Some (Op.operand ~index:1 o)
    else if Fir.is_load o then Some (Op.operand o)
    else None
  in
  match addr with
  | None -> false
  | Some addr -> (
    match Op.defining_op addr with
    | Some coord when Fir.is_coordinate_of coord ->
      Option.is_none
        (if Fir.is_store o then Dependence.access_of_store o
         else Dependence.access_of_load o)
    | _ -> false)

type field_acc = {
  fa_root : Index_expr.array_root;
  mutable fa_reads : (Dependence.access * F.region) list;
  mutable fa_writes : (Dependence.access * F.region) list;
}

(* Mirrors Dist_kernel's decomposition: rank-2 fields distribute along
   dimension 1, rank-3 fields along 1 and 2. *)
let ddims root =
  match List.length root.Index_expr.root_extents with
  | 2 -> [ 1 ]
  | 3 -> [ 1; 2 ]
  | _ -> []

(* Does a read cross rank boundaries (nonzero affine offset in a
   decomposed dimension), i.e. would the distributed backend exchange
   halos for it? *)
let is_offset_read (a : Dependence.access) =
  (not a.Dependence.acc_is_write)
  && List.exists
       (fun d ->
         match List.nth_opt a.Dependence.acc_forms d with
         | Some (Index_expr.Affine (_, off)) -> off <> 0
         | _ -> false)
       (ddims a.Dependence.acc_root)

(* Can this write invalidate some rank's halo under ANY decomposition
   with at least two blocks per split axis? Mirrored planes then all
   lie in the index band [2, extent-3] (first/last owned plane of an
   interior block edge), so a write provably outside that band in every
   decomposed dimension keeps halos fresh. Dynamic extents and [Top]
   dimensions are conservatively mirrorable. *)
let is_mirrorable_write root region =
  List.exists
    (fun d ->
      match List.nth root.Index_expr.root_extents d with
      | exception _ -> true
      | e when e < 0 -> true
      | e when e - 3 < 2 -> false (* too small to have interior planes *)
      | e -> (
        match List.nth_opt region d with
        | None | Some F.Top -> true
        | Some (F.Range (lo, hi)) -> lo <= e - 3 && hi >= 2))
    (ddims root)

let check_footprints m =
  (* 1. per-field read/write region sets over every resolvable access *)
  let fields = Hashtbl.create 8 in
  let field_order = ref [] in
  let unresolved = ref false in
  let field_for root =
    let key = root.Index_expr.root_value.Op.v_id in
    match Hashtbl.find_opt fields key with
    | Some fa -> fa
    | None ->
      let fa = { fa_root = root; fa_reads = []; fa_writes = [] } in
      Hashtbl.add fields key fa;
      field_order := fa :: !field_order;
      fa
  in
  Op.walk
    (fun o ->
      let acc =
        if Fir.is_store o then Dependence.access_of_store o
        else if Fir.is_load o then Dependence.access_of_load o
        else None
      in
      match acc with
      | Some a ->
        let fa = field_for a.Dependence.acc_root in
        let entry = (a, access_region a) in
        if a.Dependence.acc_is_write then fa.fa_writes <- entry :: fa.fa_writes
        else fa.fa_reads <- entry :: fa.fa_reads
      | None -> if is_unresolved_array_access o then unresolved := true)
    m;
  let fields_in_order = List.rev !field_order in
  List.iter
    (fun fa ->
      fa.fa_reads <- List.rev fa.fa_reads;
      fa.fa_writes <- List.rev fa.fa_writes)
    fields_in_order;
  (* 2. statement nests (store scopes) in program order *)
  let seen_scopes = Hashtbl.create 8 in
  let scopes = ref [] in
  Op.walk
    (fun o ->
      if Fir.is_store o then
        match Dependence.nest_of_store o with
        | Some n ->
          let id = n.Dependence.n_scope.Op.o_id in
          if not (Hashtbl.mem seen_scopes id) then begin
            Hashtbl.add seen_scopes id ();
            scopes := n.Dependence.n_scope :: !scopes
          end
        | None -> ())
    m;
  let scopes = List.rev !scopes in
  let scope_accs = List.map (fun s -> (s, Dependence.collect_accesses s)) scopes
  in
  (* 3. the --footprints dump: per nest, per field, joined regions *)
  let footprints =
    List.map
      (fun (scope, accs) ->
        let add l name r =
          match List.assoc_opt name l with
          | None -> l @ [ (name, r) ]
          | Some prev ->
            List.map
              (fun (n, x) ->
                if n = name then (n, F.join_region prev r) else (n, x))
              l
        in
        let reads, writes =
          List.fold_left
            (fun (rs, ws) (a : Dependence.access) ->
              let name = a.Dependence.acc_root.Index_expr.root_name in
              let r = access_region a in
              if a.Dependence.acc_is_write then (rs, add ws name r)
              else (add rs name r, ws))
            ([], []) accs
        in
        let loc =
          match Diag.loc_of_op scope with
          | Some l -> Some l
          | None -> (
            match accs with
            | a :: _ -> Diag.loc_of_op a.Dependence.acc_op
            | [] -> None)
        in
        { fp_loc = loc; fp_reads = reads; fp_writes = writes })
      scope_accs
  in
  let diags = ref [] in
  if not !unresolved then begin
    (* 4. dead writes and unread fields *)
    List.iter
      (fun fa ->
        let name = fa.fa_root.Index_expr.root_name in
        if fa.fa_writes <> [] && fa.fa_reads = [] then begin
          let a, _ = List.hd fa.fa_writes in
          let loc = Diag.loc_of_op a.Dependence.acc_op in
          diags :=
            Diag.warningf ?loc ~code:"unread-field"
              "field '%s' is written but never read: every store to it is \
               dead"
              name
            :: !diags
        end
        else
          List.iter
            (fun ((a : Dependence.access), r) ->
              if
                not
                  (List.exists
                     (fun (_, rr) -> F.regions_intersect r rr)
                     fa.fa_reads)
              then begin
                let loc = Diag.loc_of_op a.Dependence.acc_op in
                diags :=
                  Diag.warningf ?loc ~code:"dead-write"
                    "dead write to '%s': the written region %s intersects \
                     no read of the field"
                    name
                    (F.region_to_string r)
                  :: !diags
              end)
            fa.fa_writes)
      fields_in_order;
    (* 5. redundant-exchange: replay the distributed backend's
       freshness tracking over the statement nests. Lap one runs the
       whole program to reach steady state; lap two revisits only the
       nests that sit under an enclosing (time) loop, and flags any
       halo exchange that finds its field still fresh — exactly the
       exchanges footprint-aware staling fuses away at runtime. *)
    let repeated scope =
      List.exists
        (fun l ->
          match Bounds.const_bounds l with
          | None -> true
          | Some (lb, ub, _) -> ub > lb)
        (Dependence.enclosing_loops scope)
    in
    let fresh = Hashtbl.create 8 in
    let step ~emit (scope, accs) =
      ignore scope;
      (* the backend exchanges once per field per superstep, so judge
         freshness per field at scope entry — several offset reads of
         one field inside a nest still share a single exchange *)
      let exchange_fields = Hashtbl.create 4 in
      List.iter
        (fun (a : Dependence.access) ->
          if is_offset_read a then begin
            let key = a.Dependence.acc_root.Index_expr.root_value.Op.v_id in
            if not (Hashtbl.mem exchange_fields key) then
              Hashtbl.add exchange_fields key a
          end)
        accs;
      Hashtbl.iter
        (fun key (a : Dependence.access) ->
          if Hashtbl.mem fresh key then begin
            if emit then begin
              let loc = Diag.loc_of_op a.Dependence.acc_op in
              diags :=
                Diag.notef ?loc ~code:"redundant-exchange"
                  "repeated halo exchange of '%s' is redundant: no \
                   write between iterations touches a block-boundary \
                   plane, so distributed runs keep its halos fresh \
                   (footprint-aware staling fuses this exchange)"
                  a.Dependence.acc_root.Index_expr.root_name
                :: !diags
            end
          end
          else Hashtbl.replace fresh key ())
        exchange_fields;
      List.iter
        (fun (a : Dependence.access) ->
          if
            a.Dependence.acc_is_write
            && is_mirrorable_write a.Dependence.acc_root (access_region a)
          then
            Hashtbl.remove fresh
              a.Dependence.acc_root.Index_expr.root_value.Op.v_id)
        accs
    in
    List.iter (step ~emit:false) scope_accs;
    List.iter
      (fun ((scope, _) as info) -> if repeated scope then step ~emit:true info)
      scope_accs
  end;
  (List.rev !diags, footprints)

(* ------------------------------------------------------------------ *)
(* Whole-module / whole-source entry points                            *)
(* ------------------------------------------------------------------ *)

let verify_diags m =
  match Verifier.verify m with
  | Ok () -> []
  | Error ds ->
    List.map
      (fun (d : Verifier.diagnostic) ->
        let loc =
          match d.Verifier.d_loc with
          | Some (line, col) -> Some (Diag.loc line col)
          | None -> None
        in
        Diag.errorf ?loc ~code:"verify" "invalid IR in %s: %s"
          d.Verifier.d_op d.Verifier.d_message)
      ds

let check_module m =
  ensure_registered ();
  match verify_diags m with
  | _ :: _ as vds ->
    (* malformed IR: report it and skip the analyses *)
    { r_diags = vds; r_summary = empty_summary; r_footprints = [] }
  | [] ->
    let dep_diags, summary = check_dependences m in
    let bounds_diags = Bounds.check m in
    let fp_diags, footprints = check_footprints m in
    { r_diags = dep_diags @ bounds_diags @ fp_diags; r_summary = summary;
      r_footprints = footprints }

(* Map a frontend failure to a located diagnostic, for both `sfc check`
   and the compile/run error paths. *)
let diag_of_frontend_exn = function
  | Fortran.Flexer.Lex_error (msg, line, col) ->
    Some (Diag.error ~loc:(Diag.loc line col) ~code:"frontend" msg)
  | Fortran.Fparser.Parse_error (msg, line) ->
    Some (Diag.error ~loc:(Diag.loc line 1) ~code:"frontend" msg)
  | Fortran.Fsema.Sema_error (msg, l) ->
    Some
      (Diag.error
         ~loc:(Diag.loc l.Fortran.Fast.line l.Fortran.Fast.col)
         ~code:"frontend" msg)
  | Fortran.Flower.Unsupported (msg, l) ->
    Some
      (Diag.error
         ~loc:(Diag.loc l.Fortran.Fast.line l.Fortran.Fast.col)
         ~code:"frontend" msg)
  | _ -> None

let check_source src =
  ensure_registered ();
  match Fortran.Flower.compile_source src with
  | m -> Ok (m, check_module m)
  | exception e -> (
    match diag_of_frontend_exn e with
    | Some d -> Error d
    | None -> raise e)

let summary_to_string s =
  let total = s.ns_parallel + s.ns_carried + s.ns_unknown in
  Printf.sprintf "%d loop nest%s: %d parallel, %d carried, %d unknown"
    total
    (if total = 1 then "" else "s")
    s.ns_parallel s.ns_carried s.ns_unknown

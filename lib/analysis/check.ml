(* The `sfc check` engine: run the static analyses over a module (or
   straight from Fortran source) without compiling, and produce
   diagnostics plus a per-nest parallelisability summary. *)

open Fsc_ir
module Fir = Fsc_fir.Fir
module Fortran = Fsc_fortran

(* Dialect registration is process-global and guarded; `sfc check` can
   run without the driver library, so do it here too. *)
let reg_done = ref false

let ensure_registered () =
  if not !reg_done then begin
    Fsc_dialects.Registry.init ();
    reg_done := true
  end

type nest_summary = {
  ns_parallel : int;
  ns_carried : int;
  ns_unknown : int;
}

type result = {
  r_diags : Diag.t list;
  r_summary : nest_summary; (* one entry per distinct loop-nest scope *)
}

let empty_summary = { ns_parallel = 0; ns_carried = 0; ns_unknown = 0 }

(* ------------------------------------------------------------------ *)
(* Dependence diagnostics                                              *)
(* ------------------------------------------------------------------ *)

let access_what (a : Dependence.access) =
  if a.Dependence.acc_is_write then "write" else "read"

let dep_diag (d : Dependence.dependence) =
  let loc = Diag.loc_of_op d.Dependence.dep_src.Dependence.acc_op in
  let notes =
    [ ( Diag.loc_of_op d.Dependence.dep_dst.Dependence.acc_op,
        Printf.sprintf "conflicting %s of '%s' is here"
          (access_what d.Dependence.dep_dst)
          d.Dependence.dep_src.Dependence.acc_root.Index_expr.root_name ) ]
  in
  if d.Dependence.dep_definite then
    Diag.warning ?loc ~notes ~code:"race" (Dependence.describe d)
  else Diag.note ?loc ~notes ~code:"race" (Dependence.describe d)

let inner_seq_diag (nest : Dependence.nest) loop =
  let store = nest.Dependence.n_store in
  let loc = Diag.loc_of_op store.Dependence.acc_op in
  let notes =
    [ ( Diag.loc_of_op loop,
        "the loop that repeats the write starts here" ) ]
  in
  Diag.warningf ?loc ~notes ~code:"race"
    "loop-carried output dependence on '%s': the store does not use the \
     induction variable of an enclosing loop, so every iteration of that \
     loop rewrites the same elements"
    store.Dependence.acc_root.Index_expr.root_name

(* Symmetric pairs (write A vs write B) show up once per nest; dedupe on
   the unordered (src, dst) op-id pair. *)
let dep_key (d : Dependence.dependence) =
  let a = d.Dependence.dep_src.Dependence.acc_op.Op.o_id in
  let b = d.Dependence.dep_dst.Dependence.acc_op.Op.o_id in
  (min a b, max a b)

let check_dependences m =
  let nests = ref [] in
  Op.walk
    (fun o ->
      if Fir.is_store o then
        match Dependence.nest_of_store o with
        | Some n -> nests := n :: !nests
        | None -> ())
    m;
  let nests = List.rev !nests in
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  (* per-scope classification, worst nest wins *)
  let scopes : (int, [ `Parallel | `Carried | `May ]) Hashtbl.t =
    Hashtbl.create 8
  in
  let worsen scope cls =
    let id = scope.Op.o_id in
    let cur = Hashtbl.find_opt scopes id in
    let next =
      match (cur, cls) with
      | Some `Carried, _ | _, `Carried -> `Carried
      | Some `May, _ | _, `May -> `May
      | _ -> `Parallel
    in
    Hashtbl.replace scopes id next
  in
  List.iter
    (fun nest ->
      let cls =
        match Dependence.classify nest with
        | Dependence.Parallel -> `Parallel
        | Dependence.Carried deps | Dependence.May deps ->
          List.iter
            (fun d ->
              let key = dep_key d in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                diags := dep_diag d :: !diags
              end)
            deps;
          if List.exists (fun d -> d.Dependence.dep_definite) deps then
            `Carried
          else `May
      in
      let cls =
        match nest.Dependence.n_inner_seq with
        | [] -> cls
        | loop :: _ ->
          diags := inner_seq_diag nest loop :: !diags;
          `Carried
      in
      worsen nest.Dependence.n_scope cls)
    nests;
  let summary =
    Hashtbl.fold
      (fun _ cls s ->
        match cls with
        | `Parallel -> { s with ns_parallel = s.ns_parallel + 1 }
        | `Carried -> { s with ns_carried = s.ns_carried + 1 }
        | `May -> { s with ns_unknown = s.ns_unknown + 1 })
      scopes empty_summary
  in
  (List.rev !diags, summary)

(* ------------------------------------------------------------------ *)
(* Whole-module / whole-source entry points                            *)
(* ------------------------------------------------------------------ *)

let verify_diags m =
  match Verifier.verify m with
  | Ok () -> []
  | Error ds ->
    List.map
      (fun (d : Verifier.diagnostic) ->
        let loc =
          match d.Verifier.d_loc with
          | Some (line, col) -> Some (Diag.loc line col)
          | None -> None
        in
        Diag.errorf ?loc ~code:"verify" "invalid IR in %s: %s"
          d.Verifier.d_op d.Verifier.d_message)
      ds

let check_module m =
  ensure_registered ();
  match verify_diags m with
  | _ :: _ as vds ->
    (* malformed IR: report it and skip the analyses *)
    { r_diags = vds; r_summary = empty_summary }
  | [] ->
    let dep_diags, summary = check_dependences m in
    let bounds_diags = Bounds.check m in
    { r_diags = dep_diags @ bounds_diags; r_summary = summary }

(* Map a frontend failure to a located diagnostic, for both `sfc check`
   and the compile/run error paths. *)
let diag_of_frontend_exn = function
  | Fortran.Flexer.Lex_error (msg, line, col) ->
    Some (Diag.error ~loc:(Diag.loc line col) ~code:"frontend" msg)
  | Fortran.Fparser.Parse_error (msg, line) ->
    Some (Diag.error ~loc:(Diag.loc line 1) ~code:"frontend" msg)
  | Fortran.Fsema.Sema_error (msg, l) ->
    Some
      (Diag.error
         ~loc:(Diag.loc l.Fortran.Fast.line l.Fortran.Fast.col)
         ~code:"frontend" msg)
  | Fortran.Flower.Unsupported (msg, l) ->
    Some
      (Diag.error
         ~loc:(Diag.loc l.Fortran.Fast.line l.Fortran.Fast.col)
         ~code:"frontend" msg)
  | _ -> None

let check_source src =
  ensure_registered ();
  match Fortran.Flower.compile_source src with
  | m -> Ok (m, check_module m)
  | exception e -> (
    match diag_of_frontend_exn e with
    | Some d -> Error d
    | None -> raise e)

let summary_to_string s =
  let total = s.ns_parallel + s.ns_carried + s.ns_unknown in
  Printf.sprintf "%d loop nest%s: %d parallel, %d carried, %d unknown"
    total
    (if total = 1 then "" else "s")
    s.ns_parallel s.ns_carried s.ns_unknown

(** Affine analysis of FIR index expressions.

    The discovery pass must understand the expressions feeding each
    dimension of a [fir.coordinate_of]: it walks backwards through
    [fir.convert] and i32 arithmetic to decide whether an index is "loop
    variable plus constant offset" ([data(j, i-1)] style), a constant, or
    something non-affine that disqualifies the candidate store. *)

open Fsc_ir

(** Result of analysing one index expression. *)
type form =
  | Affine of Op.value * int
      (** [Affine (iv, c)]: the index is the [fir.do_loop] induction
          block-argument [iv] plus the compile-time constant [c]. *)
  | Const of int  (** a compile-time constant subscript *)
  | Unknown  (** anything else (indirect, multiplicative in an iv, ...) *)

(** [is_do_loop_arg v] is [true] when [v] is the induction-variable block
    argument of a [fir.do_loop] body. *)
val is_do_loop_arg : Op.value -> bool

(** Analyse an index value into its affine {!form}. Walks through
    [fir.convert], [arith.index_cast], [fir.no_reassoc] and combines
    [arith.addi]/[subi]/[muli] where the result stays affine. *)
val analyze : Op.value -> form

(** Constant-evaluate an integer/index expression (used on loop bounds,
    which the frontend emits as convert chains over parameters). Returns
    [None] when the value is not compile-time constant. *)
val eval_const : Op.value -> int option

(** The "root" of an array reference: the storage object a
    [fir.coordinate_of] ultimately addresses. *)
type array_root = {
  root_value : Op.value;
      (** the [fir.alloca] result (stack array, or the pointer cell of a
          heap array) or a function entry-block argument (dummy array) *)
  root_name : string;  (** Fortran variable name, when recorded *)
  root_elem : Types.t;  (** element type *)
  root_extents : int list;  (** per-dimension extents; [-1] = dynamic *)
}

(** Resolve the root of an access base value, handling both FIR array
    representations: the stack route (base is the [fir.alloca] itself)
    and the heap route (base is a [fir.load] of the pointer cell — the
    cell is returned so both routes to one array share a root). *)
val resolve_root : Op.value -> array_root option

(** Are all extents compile-time known? *)
val root_is_static : array_root -> bool

(* Static bounds analysis: flag provably out-of-bounds array accesses.

   For every fir.coordinate_of whose root has static extents we compare
   each subscript's compile-time range against [0, extent). A violation
   is only reported when the access provably executes: every ancestor up
   to the function is a fir.do_loop (no fir.if or other control flow)
   with constant, non-empty, unit-or-positive-step bounds. fir.do_loop
   upper bounds are inclusive (Fortran `do`). *)

open Fsc_ir
module Fir = Fsc_fir.Fir

(* The fir.do_loop whose induction variable is [iv], when it is one. *)
let loop_of_iv (iv : Op.value) =
  match iv.Op.v_def with
  | Op.Block_arg (blk, 0) -> (
    match blk.Op.b_parent with
    | Some region -> (
      match region.Op.g_parent with
      | Some op when op.Op.o_name = "fir.do_loop" -> Some op
      | _ -> None)
    | None -> None)
  | _ -> None

(* Constant (lb, ub, step) of a loop, requiring step >= 1. *)
let const_bounds loop =
  let lb, ub, step = Fir.do_loop_bounds loop in
  match
    ( Index_expr.eval_const lb,
      Index_expr.eval_const ub,
      Index_expr.eval_const step )
  with
  | Some l, Some u, Some s when s >= 1 -> Some (l, u, s)
  | _ -> None

(* Every ancestor between [op] and its function must be a fir.do_loop
   with constant non-empty bounds, so the op provably executes. Returns
   the ancestor loops, or None when execution is conditional. *)
let provably_executed op =
  let rec go acc o =
    match Op.parent_op o with
    | None -> Some acc
    | Some p when p.Op.o_name = "func.func" || Op.is_module p -> Some acc
    | Some p when p.Op.o_name = "fir.do_loop" -> (
      match const_bounds p with
      | Some (l, u, _) when l <= u -> go (p :: acc) p
      | _ -> None)
    | Some _ -> None
  in
  go [] op

(* Inclusive value range of a loop's induction variable. *)
let iv_range iv =
  match loop_of_iv iv with
  | None -> None
  | Some loop -> (
    match const_bounds loop with
    | Some (l, u, s) when l <= u -> Some (l, l + ((u - l) / s) * s)
    | _ -> None)

(* Check one coordinate op against its root's extents; emit one error
   per provably out-of-range dimension. *)
let check_coordinate coord =
  match Op.defining_op (Op.operand ~index:0 coord) with
  | _ when not (Fir.is_coordinate_of coord) -> []
  | _ -> (
    match Index_expr.resolve_root (Op.operand ~index:0 coord) with
    | Some root when Index_expr.root_is_static root -> (
      match provably_executed coord with
      | None -> []
      | Some _ ->
        let indices = List.tl (Op.operands coord) in
        let loc = Diag.loc_of_op coord in
        List.concat
          (List.mapi
             (fun dim idx ->
               let extent =
                 try List.nth root.Index_expr.root_extents dim
                 with _ -> -1
               in
               if extent < 0 then []
               else
                 let flag lo hi =
                   if lo < 0 || hi >= extent then
                     [ Diag.errorf ?loc ~code:"bounds"
                         "array '%s' dimension %d: subscript range \
                          [%d, %d] is outside the allocated range [0, %d] \
                          (zero-based)"
                         root.Index_expr.root_name (dim + 1) lo hi
                         (extent - 1) ]
                   else []
                 in
                 match Index_expr.analyze idx with
                 | Index_expr.Const k -> flag k k
                 | Index_expr.Affine (iv, off) -> (
                   match iv_range iv with
                   | Some (lo, hi) -> flag (lo + off) (hi + off)
                   | None -> [])
                 | Index_expr.Unknown -> [])
             indices))
    | _ -> [])

(* Run over a whole module (or any op): one diagnostic per provably
   out-of-bounds (coordinate, dimension). *)
let check m =
  let diags = ref [] in
  Op.walk
    (fun o -> if Fir.is_coordinate_of o then diags := check_coordinate o :: !diags)
    m;
  List.concat (List.rev !diags)

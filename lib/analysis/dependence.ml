(* Loop-carried dependence / race analysis over FIR loop nests.

   Built on the same affine access summaries ([Index_expr]) the discovery
   pass uses, this module computes distance/direction information per
   loop dimension and classifies each store's loop nest as parallel
   (Jacobi-style), carried (Gauss-Seidel-style, with the offending
   read/write pair) or unknown. The discovery pass consults it as its
   legality oracle; `sfc check` reports its findings as diagnostics.

   Conventions: for a (write W, access X) pair on the same array the
   per-loop distance is d = i_X - i_W, the number of iterations after the
   write at which X touches the same cell. All-zero distances mean the
   dependence is loop-independent (harmless for parallelisation); a
   nonzero leading distance means the enclosing loop carries it. *)

open Fsc_ir
module Fir = Fsc_fir.Fir

(* ------------------------------------------------------------------ *)
(* Access summaries                                                    *)
(* ------------------------------------------------------------------ *)

type access = {
  acc_op : Op.op; (* the fir.load / fir.store *)
  acc_is_write : bool;
  acc_root : Index_expr.array_root;
  acc_forms : Index_expr.form list; (* per array dimension *)
}

let analyze_coordinate addr =
  match Op.defining_op addr with
  | Some coord when Fir.is_coordinate_of coord -> (
    let base = Op.operand ~index:0 coord in
    let indices = List.tl (Op.operands coord) in
    match Index_expr.resolve_root base with
    | Some root -> Some (root, List.map Index_expr.analyze indices)
    | None -> None)
  | _ -> None

let access_of_store op =
  if not (Fir.is_store op) then None
  else
    match analyze_coordinate (Op.operand ~index:1 op) with
    | Some (root, forms) ->
      Some { acc_op = op; acc_is_write = true; acc_root = root;
             acc_forms = forms }
    | None -> None

let access_of_load op =
  if not (Fir.is_load op) then None
  else
    match analyze_coordinate (Op.operand op) with
    | Some (root, forms) ->
      Some { acc_op = op; acc_is_write = false; acc_root = root;
             acc_forms = forms }
    | None -> None

(* Every array access (through fir.coordinate_of) inside [scope],
   including conditional ones — conservatively treated like any other. *)
let collect_accesses scope =
  let acc = ref [] in
  Op.walk
    (fun o ->
      match access_of_store o with
      | Some a -> acc := a :: !acc
      | None -> (
        match access_of_load o with
        | Some a -> acc := a :: !acc
        | None -> ()))
    scope;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Loop nests                                                          *)
(* ------------------------------------------------------------------ *)

type nest = {
  n_store : access;
  n_loops : Op.op list; (* applicable loops, outermost first *)
  n_ivs : Op.value list; (* induction variables, outermost first *)
  n_scope : Op.op; (* the outermost applicable loop *)
  n_inner_seq : Op.op list;
      (* enclosing loops between scope and store whose induction variable
         does not index the store: each of their iterations rewrites the
         same elements (an output dependence they carry) *)
}

let enclosing_loops op =
  let rec go acc o =
    match Op.parent_op o with
    | Some p when p.Op.o_name = "fir.do_loop" -> go (p :: acc) p
    | Some p -> go acc p
    | None -> acc
  in
  go [] op

let nest_of_store store =
  match access_of_store store with
  | None -> None
  | Some acc ->
    let ivs =
      List.filter_map
        (function Index_expr.Affine (iv, _) -> Some iv | _ -> None)
        acc.acc_forms
    in
    if List.length ivs <> List.length acc.acc_forms then None
    else if
      not
        (List.for_all
           (fun iv ->
             List.length (List.filter (fun v -> v == iv) ivs) = 1)
           ivs)
    then None
    else
      let loops_around = enclosing_loops store in
      let applicable =
        List.filter
          (fun l ->
            let arg = Fir.do_loop_induction_var l in
            List.exists (fun iv -> iv == arg) ivs)
          loops_around
      in
      if applicable = [] || List.length applicable <> List.length ivs then
        None
      else
        let scope = List.hd applicable in
        let chain =
          let rec drop = function
            | [] -> []
            | l :: rest -> if l == scope then l :: rest else drop rest
          in
          drop loops_around
        in
        let inner_seq =
          List.filter (fun l -> not (List.memq l applicable)) chain
        in
        Some
          { n_store = acc; n_loops = applicable;
            n_ivs = List.map Fir.do_loop_induction_var applicable;
            n_scope = scope; n_inner_seq = inner_seq }

(* ------------------------------------------------------------------ *)
(* Pairwise dependence                                                 *)
(* ------------------------------------------------------------------ *)

type dep_kind = Flow | Anti | Output

type dependence = {
  dep_src : access; (* the write *)
  dep_dst : access; (* the conflicting access (read or write) *)
  dep_kind : dep_kind;
  dep_distances : int option list;
      (* per nest loop, outermost first; None = not compile-time known *)
  dep_carrier : int;
      (* index into the nest loops of the loop that (possibly) carries
         the dependence *)
  dep_definite : bool;
      (* true: provably carried with a known distance vector;
         false: may-dependence (subscripts not fully analysable) *)
}

(* Classify the (write [w], access [x]) pair against the nest loops with
   induction variables [ivs] (outermost first). Returns [None] when the
   two accesses provably never conflict across different iterations —
   distinct roots, distinct constant subscripts, or a loop-independent
   (all-zero-distance) dependence. *)
let pair ~ivs (w : access) (x : access) : dependence option =
  if
    not
      (w.acc_root.Index_expr.root_value == x.acc_root.Index_expr.root_value)
  then None
  else if w.acc_op == x.acc_op then None
  else begin
    let n = List.length ivs in
    let dist = Array.make n `Unconstrained in
    let unknown = ref false in
    let independent = ref false in
    let idx_of iv =
      let rec go i = function
        | [] -> None
        | v :: rest -> if v == iv then Some i else go (i + 1) rest
      in
      go 0 ivs
    in
    let constrain l d =
      match dist.(l) with
      | `Unconstrained | `Any -> dist.(l) <- `Exact d
      | `Exact d' -> if d' <> d then independent := true
    in
    let weaken l =
      match dist.(l) with
      | `Unconstrained -> dist.(l) <- `Any
      | _ -> ()
    in
    if List.length w.acc_forms <> List.length x.acc_forms then
      (* same root accessed at different ranks: give up *)
      unknown := true
    else
      List.iter2
        (fun fw fx ->
          match (fw, fx) with
          | Index_expr.Const a, Index_expr.Const b ->
            if a <> b then independent := true
          | Index_expr.Affine (vw, cw), Index_expr.Affine (vx, cx)
            when vw == vx -> (
            match idx_of vw with
            (* same cell needs i_w + cw = i_x + cx, i.e. d = cw - cx *)
            | Some l -> constrain l (cw - cx)
            | None -> unknown := true)
          | Index_expr.Affine (v, _), Index_expr.Const _
          | Index_expr.Const _, Index_expr.Affine (v, _) -> (
            (* pins one side's iteration without relating the two *)
            match idx_of v with
            | Some l -> weaken l
            | None -> unknown := true)
          | _ -> unknown := true)
        w.acc_forms x.acc_forms;
    if !independent then None
    else begin
      let rec scan i = function
        | [] -> `Loop_independent
        | `Exact 0 :: rest -> scan (i + 1) rest
        | `Exact _ :: _ -> `Carried_at i
        | (`Any | `Unconstrained) :: _ -> `May_at i
      in
      let status = scan 0 (Array.to_list dist) in
      let status =
        (* fully zero distances but unanalysable dims elsewhere *)
        match status with
        | `Loop_independent when !unknown -> `May_at 0
        | s -> s
      in
      match status with
      | `Loop_independent -> None
      | `Carried_at l | `May_at l ->
        let definite =
          (match status with `Carried_at _ -> true | _ -> false)
          && not !unknown
        in
        let distances =
          Array.to_list
            (Array.map
               (function `Exact d -> Some d | _ -> None)
               dist)
        in
        let kind =
          if x.acc_is_write then Output
          else
            match dist.(l) with
            | `Exact d when d < 0 -> Anti
            | _ -> Flow
        in
        Some
          { dep_src = w; dep_dst = x; dep_kind = kind;
            dep_distances = distances; dep_carrier = l;
            dep_definite = definite }
    end
  end

(* ------------------------------------------------------------------ *)
(* Nest classification                                                 *)
(* ------------------------------------------------------------------ *)

type classification =
  | Parallel
  | Carried of dependence list (* at least one definite carried dep *)
  | May of dependence list (* only may-dependences *)

(* Dependences between the nest's store and every same-root access in its
   scope. Loop-independent pairs are dropped by [pair]. *)
let store_dependences nest =
  let accesses = collect_accesses nest.n_scope in
  List.filter_map (fun x -> pair ~ivs:nest.n_ivs nest.n_store x) accesses

let classify nest =
  let deps = store_dependences nest in
  let definite = List.filter (fun d -> d.dep_definite) deps in
  if definite <> [] then Carried definite
  else if deps <> [] then May deps
  else Parallel

(* All hazards that make extracting [nest]'s store unsound: dependences
   involving the store itself, plus dependences between any other write
   in scope and the candidate's own reads (the [reads] fir.load ops) —
   a read of an array another statement writes in the same nest is not
   loop-invariant even when the store's own root is clean. *)
let candidate_hazards nest ~reads =
  let accesses = collect_accesses nest.n_scope in
  let store_deps =
    List.filter_map (fun x -> pair ~ivs:nest.n_ivs nest.n_store x) accesses
  in
  let read_accs = List.filter_map access_of_load reads in
  let other_writes =
    List.filter
      (fun a -> a.acc_is_write && not (a.acc_op == nest.n_store.acc_op))
      accesses
  in
  let read_deps =
    List.concat_map
      (fun w ->
        List.filter_map (fun r -> pair ~ivs:nest.n_ivs w r) read_accs)
      other_writes
  in
  store_deps @ read_deps

(* ------------------------------------------------------------------ *)
(* Scalar cells                                                        *)
(* ------------------------------------------------------------------ *)

type scalar_fate =
  | Scalar_invariant (* never written inside the nest *)
  | Scalar_private
      (* written, but every read sees a value stored earlier in the same
         iteration: privatisable temporary, no cross-iteration flow *)
  | Scalar_carried of Op.op * Op.op
      (* (store, load): some read can observe a previous iteration's
         value — a reduction/recurrence pattern *)

let scalar_fate ~scope ~cell =
  let stores = ref [] in
  let loads = ref [] in
  Op.walk
    (fun o ->
      if Fir.is_store o && Op.operand ~index:1 o == cell then
        stores := o :: !stores
      else if Fir.is_load o && Op.operand o == cell then loads := o :: !loads)
    scope;
  match !stores with
  | [] -> Scalar_invariant
  | store :: _ -> (
    (* a load is private when a store to the cell precedes it in the same
       block, so each iteration rewrites the value before reading it *)
    let preceded_by_store load =
      match Op.parent_block load with
      | None -> false
      | Some blk ->
        let rec go found = function
          | [] -> false
          | o :: rest ->
            if o == load then found
            else
              go
                (found
                || (Fir.is_store o && Op.operand ~index:1 o == cell))
                rest
        in
        go false (Op.block_ops blk)
    in
    match List.find_opt (fun l -> not (preceded_by_store l)) (List.rev !loads)
    with
    | None -> Scalar_private
    | Some l -> Scalar_carried (store, l))

(* ------------------------------------------------------------------ *)
(* Descriptions                                                        *)
(* ------------------------------------------------------------------ *)

let kind_to_string = function
  | Flow -> "flow (read-after-write)"
  | Anti -> "anti (write-after-read)"
  | Output -> "output (write-after-write)"

let describe d =
  let root = d.dep_src.acc_root.Index_expr.root_name in
  if d.dep_definite then
    let distance =
      match List.nth d.dep_distances d.dep_carrier with
      | Some dd -> abs dd
      | None -> 0
    in
    Printf.sprintf
      "loop-carried %s dependence on '%s': iterations %d apart touch the \
       same element (carried by loop %d of the nest)"
      (kind_to_string d.dep_kind) root distance (d.dep_carrier + 1)
  else
    Printf.sprintf
      "possible loop-carried dependence on '%s': subscripts are not \
       analysable as loop-variable plus constant"
      root

(** Static bounds analysis: flag provably out-of-bounds array accesses.

    Compares the compile-time range of each subscript of a
    [fir.coordinate_of] (constant, or loop-variable plus offset over a
    constant-bounds loop) against the root array's static extents.
    Reports only {e provable} violations: the access must execute
    unconditionally (all ancestors are constant-bounds, non-empty
    [fir.do_loop]s) and the offending index range must be known. *)

open Fsc_ir

(** The [fir.do_loop] whose induction variable is the given value, when
    it is one. *)
val loop_of_iv : Op.value -> Op.op option

(** Constant [(lb, ub, step)] of a loop (inclusive [ub]), requiring
    [step >= 1]. *)
val const_bounds : Op.op -> (int * int * int) option

(** Inclusive value range of a loop induction variable with constant
    bounds. *)
val iv_range : Op.value -> (int * int) option

(** One error diagnostic (code ["bounds"]) per provably out-of-bounds
    (access, dimension) under the given op. *)
val check : Op.op -> Diag.t list

(** The [sfc check] engine: run the dependence/race and bounds analyses
    over a module — or straight from Fortran source — without
    compiling, and produce diagnostics plus a per-nest
    parallelisability summary. *)

open Fsc_ir

type nest_summary = {
  ns_parallel : int;
  ns_carried : int;
  ns_unknown : int;
}

type result = {
  r_diags : Diag.t list;
  r_summary : nest_summary;
      (** one entry per distinct loop-nest scope (outermost applicable
          loop) *)
}

val empty_summary : nest_summary

(** Verify the module, then run the dependence classification (code
    ["race"]: warnings for provable carried dependences, notes for
    may-dependences) and the static bounds analysis (code ["bounds"],
    errors). Malformed IR yields ["verify"] errors and skips the
    analyses. *)
val check_module : Op.op -> result

(** Frontend (lex/parse/sema/lowering) failures as located ["frontend"]
    diagnostics; [None] for unrelated exceptions. *)
val diag_of_frontend_exn : exn -> Diag.t option

(** Lower Fortran source and {!check_module} it. [Error] carries the
    frontend diagnostic when the source does not lower. *)
val check_source : string -> (Op.op * result, Diag.t) Result.t

val summary_to_string : nest_summary -> string

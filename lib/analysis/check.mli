(** The [sfc check] engine: run the dependence/race and bounds analyses
    over a module — or straight from Fortran source — without
    compiling, and produce diagnostics plus a per-nest
    parallelisability summary. *)

open Fsc_ir

type nest_summary = {
  ns_parallel : int;
  ns_carried : int;
  ns_unknown : int;
}

(** Computed affine footprint of one statement nest, per field name:
    the joined read/write regions of every access in the nest's scope.
    Dumped by [sfc check --footprints]. *)
type nest_footprint = {
  fp_loc : Diag.srcloc option;
  fp_reads : (string * Footprint.region) list;
  fp_writes : (string * Footprint.region) list;
}

type result = {
  r_diags : Diag.t list;
  r_summary : nest_summary;
      (** one entry per distinct loop-nest scope (outermost applicable
          loop) *)
  r_footprints : nest_footprint list;
      (** one entry per statement nest, in program order *)
}

val empty_summary : nest_summary

(** Verify the module, then run the dependence classification (code
    ["race"]: warnings for provable carried dependences, notes for
    may-dependences), the static bounds analysis (code ["bounds"],
    errors) and the footprint lints — ["dead-write"] (warning: a
    written region no read of the field ever intersects),
    ["unread-field"] (warning: a field written but never read) and
    ["redundant-exchange"] (note: a repeated halo exchange the
    distributed backend's footprint-aware staling would fuse away).
    Malformed IR yields ["verify"] errors and skips the analyses. *)
val check_module : Op.op -> result

(** Frontend (lex/parse/sema/lowering) failures as located ["frontend"]
    diagnostics; [None] for unrelated exceptions. *)
val diag_of_frontend_exn : exn -> Diag.t option

(** Lower Fortran source and {!check_module} it. [Error] carries the
    frontend diagnostic when the source does not lower. *)
val check_source : string -> (Op.op * result, Diag.t) Result.t

val summary_to_string : nest_summary -> string

(* Compiler diagnostics: severities, source locations, text and JSON
   renderers. Every analysis in this library (and the discovery pass in
   fsc_core) reports its findings as [t] values, so `sfc check` and the
   pipeline error paths share one user-facing format. *)

open Fsc_ir

type severity = Error | Warning | Note

type srcloc = { l_line : int; l_col : int }

type t = {
  d_severity : severity;
  d_code : string; (* short machine-readable slug: "race", "bounds", ... *)
  d_loc : srcloc option;
  d_message : string;
  d_notes : (srcloc option * string) list; (* secondary locations *)
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let loc line col = { l_line = line; l_col = col }

let loc_of_op op =
  match Op.location op with
  | Some (line, col) -> Some { l_line = line; l_col = col }
  | None -> None

let make ?loc ?(notes = []) severity ~code message =
  { d_severity = severity; d_code = code; d_loc = loc; d_message = message;
    d_notes = notes }

let error ?loc ?notes ~code message = make ?loc ?notes Error ~code message
let warning ?loc ?notes ~code message = make ?loc ?notes Warning ~code message
let note ?loc ?notes ~code message = make ?loc ?notes Note ~code message

let errorf ?loc ?notes ~code fmt =
  Printf.ksprintf (error ?loc ?notes ~code) fmt

let warningf ?loc ?notes ~code fmt =
  Printf.ksprintf (warning ?loc ?notes ~code) fmt

let notef ?loc ?notes ~code fmt = Printf.ksprintf (note ?loc ?notes ~code) fmt

(* ------------------------------------------------------------------ *)
(* Text rendering: file:line:col: severity[code]: message              *)
(* ------------------------------------------------------------------ *)

let render_loc ?file l =
  let f = match file with Some f -> f ^ ":" | None -> "" in
  match l with
  | Some { l_line; l_col } -> Printf.sprintf "%s%d:%d: " f l_line l_col
  | None -> ( match file with Some f -> f ^ ": " | None -> "")

let render ?file d =
  let head =
    Printf.sprintf "%s%s[%s]: %s"
      (render_loc ?file d.d_loc)
      (severity_to_string d.d_severity)
      d.d_code d.d_message
  in
  let notes =
    List.map
      (fun (l, msg) ->
        Printf.sprintf "  %snote: %s" (render_loc ?file l) msg)
      d.d_notes
  in
  String.concat "\n" (head :: notes)

let render_all ?file ds = String.concat "\n" (List.map (render ?file) ds)

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled; keep it dependency-free)               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_loc = function
  | Some { l_line; l_col } ->
    Printf.sprintf "{\"line\": %d, \"col\": %d}" l_line l_col
  | None -> "null"

let to_json ?file d =
  let file_field =
    match file with
    | Some f -> Printf.sprintf "\"file\": \"%s\", " (json_escape f)
    | None -> ""
  in
  let notes =
    String.concat ", "
      (List.map
         (fun (l, msg) ->
           Printf.sprintf "{\"loc\": %s, \"message\": \"%s\"}"
             (json_of_loc l) (json_escape msg))
         d.d_notes)
  in
  Printf.sprintf
    "{%s\"severity\": \"%s\", \"code\": \"%s\", \"loc\": %s, \"message\": \
     \"%s\", \"notes\": [%s]}"
    file_field
    (severity_to_string d.d_severity)
    (json_escape d.d_code) (json_of_loc d.d_loc) (json_escape d.d_message)
    notes

(* ------------------------------------------------------------------ *)
(* Aggregation helpers                                                 *)
(* ------------------------------------------------------------------ *)

(* Drop repeats of the same finding: two diagnostics with the same code
   at the same location are one finding reported twice (e.g. a lint
   firing per-access inside one statement). Keeps the first
   occurrence, preserves order otherwise. *)
let dedupe ds =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let key = (d.d_code, d.d_loc) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ds

(* Stable sort by source location (unlocated diagnostics first), for
   deterministic --json output. *)
let sort_by_loc ds =
  let key d =
    match d.d_loc with
    | None -> (-1, -1)
    | Some { l_line; l_col } -> (l_line, l_col)
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) ds

let count sev ds = List.length (List.filter (fun d -> d.d_severity = sev) ds)

(* Errors for exit-code purposes; [werror] promotes warnings. *)
let error_count ?(werror = false) ds =
  count Error ds + if werror then count Warning ds else 0

(* Affine footprints: per-dimension interval boxes over kernel specs.
   See footprint.mli for the consumer map. *)

module Kc = Fsc_rt.Kernel_compile

type dim =
  | Top
  | Range of int * int

type region = dim list

let range lo hi = if lo <= hi then Range (lo, hi) else Range (hi, lo)

let join_dim a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Range (al, ah), Range (bl, bh) -> Range (min al bl, max ah bh)

let meet_dim a b =
  match (a, b) with
  | Top, d | d, Top -> Some d
  | Range (al, ah), Range (bl, bh) ->
      let lo = max al bl and hi = min ah bh in
      if lo <= hi then Some (Range (lo, hi)) else None

let dim_contains d x =
  match d with Top -> true | Range (lo, hi) -> lo <= x && x <= hi

let dims_intersect a b = meet_dim a b <> None

(* Regions of different ranks come from rank-mismatched uses of the
   same name; treat the missing dimensions as Top so every lattice
   answer stays conservative. *)
let rec join_region a b =
  match (a, b) with
  | [], [] -> []
  | [], rest | rest, [] -> List.map (fun _ -> Top) rest
  | da :: ta, db :: tb -> join_dim da db :: join_region ta tb

let rec meet_region a b =
  match (a, b) with
  | [], rest | rest, [] -> Some rest
  | da :: ta, db :: tb -> (
      match meet_dim da db with
      | None -> None
      | Some d -> (
          match meet_region ta tb with
          | None -> None
          | Some t -> Some (d :: t)))

let regions_intersect a b = meet_region a b <> None

let region_within ~extents region =
  List.length extents = List.length region
  && List.for_all2
       (fun ext d ->
         match d with
         | Top -> false
         | Range (lo, hi) -> 0 <= lo && ext > 0 && hi < ext)
       extents region

let dim_to_string = function
  | Top -> "[?]"
  | Range (lo, hi) -> Printf.sprintf "[%d:%d]" lo hi

let region_to_string r = String.concat "" (List.map dim_to_string r)

type nest_fp = {
  nf_empty : bool;
  nf_reads : (int * region) list;
  nf_writes : (int * region) list;
}

(* The subscript in buffer dimension [d] is [iv + offset] where the iv
   of loop level [lvl] ranges over [l_lb, l_ub) — the loop's own l_dim
   is irrelevant here, the position in the index list is the dimension
   being subscripted. *)
let dim_of_form loops = function
  | Kc.Cst c -> Range (c, c)
  | Kc.Iv (lvl, off) -> (
      match List.find_opt (fun l -> l.Kc.l_level = lvl) loops with
      | None -> Top
      | Some l -> range (l.Kc.l_lb + off) (l.Kc.l_ub - 1 + off))

let region_of_forms loops forms = List.map (dim_of_form loops) forms

let add_access acc buf region =
  match List.assoc_opt buf acc with
  | None -> (buf, region) :: acc
  | Some prev -> (buf, join_region prev region) :: List.remove_assoc buf acc

let of_nest (n : Kc.nest) =
  let empty = List.exists (fun l -> l.Kc.l_ub <= l.Kc.l_lb) n.Kc.n_loops in
  if empty then { nf_empty = true; nf_reads = []; nf_writes = [] }
  else
    let reads = ref [] in
    let rec walk_expr = function
      | Kc.F_load (buf, forms) ->
          reads := add_access !reads buf (region_of_forms n.Kc.n_loops forms)
      | Kc.F_scalar _ | Kc.F_const _ | Kc.F_ivf _ -> ()
      | Kc.F_unary (_, e) -> walk_expr e
      | Kc.F_binary (_, a, b) ->
          walk_expr a;
          walk_expr b
    in
    let writes =
      List.fold_left
        (fun acc (st : Kc.store_stmt) ->
          walk_expr st.Kc.st_expr;
          add_access acc st.Kc.st_buf
            (region_of_forms n.Kc.n_loops st.Kc.st_index))
        [] n.Kc.n_stores
    in
    let by_buf l = List.sort (fun (a, _) (b, _) -> compare a b) l in
    { nf_empty = false; nf_reads = by_buf !reads; nf_writes = by_buf writes }

type t = nest_fp list

let of_spec (spec : Kc.spec) = List.map of_nest spec.Kc.k_nests

let accesses_to_string accs =
  String.concat ", "
    (List.map
       (fun (buf, r) -> Printf.sprintf "b%d%s" buf (region_to_string r))
       accs)

let nest_to_string i fp =
  if fp.nf_empty then Printf.sprintf "nest %d: empty" i
  else
    Printf.sprintf "nest %d: read %s; write %s" i
      (if fp.nf_reads = [] then "-" else accesses_to_string fp.nf_reads)
      (if fp.nf_writes = [] then "-" else accesses_to_string fp.nf_writes)

let to_string t = String.concat "\n" (List.mapi nest_to_string t)

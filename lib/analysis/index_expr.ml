(* Affine analysis of FIR index expressions.

   The discovery pass (Listing 3 of the paper) must understand the
   expressions feeding each dimension of a fir.coordinate_of: walking
   backwards through fir.convert and i32 arithmetic to decide whether an
   index is "loop variable plus constant offset" (data(j, i-1) style),
   a constant, or something non-affine that disqualifies the store. *)

open Fsc_ir

type form =
  (* base SSA value (a fir.do_loop induction block-arg) + constant offset *)
  | Affine of Op.value * int
  | Const of int
  | Unknown

let is_do_loop_arg (v : Op.value) =
  match v.Op.v_def with
  | Op.Block_arg (b, 0) -> (
    match b.Op.b_parent with
    | Some r -> (
      match r.Op.g_parent with
      | Some op -> op.Op.o_name = "fir.do_loop"
      | None -> false)
    | None -> false)
  | _ -> false

let rec analyze (v : Op.value) : form =
  if is_do_loop_arg v then Affine (v, 0)
  else
    match Op.defining_op v with
    | None -> Unknown
    | Some op -> (
      match op.Op.o_name with
      | "fir.convert" | "arith.index_cast" | "fir.no_reassoc" ->
        (* integer<->index conversions are offset-transparent *)
        let from = Op.value_type (Op.operand op) in
        if Types.is_integer from then analyze (Op.operand op) else Unknown
      | "arith.constant" -> (
        match Op.attr op "value" with
        | Some (Attr.Int_a n) -> Const n
        | _ -> Unknown)
      | "arith.addi" -> (
        match (analyze (Op.operand ~index:0 op),
               analyze (Op.operand ~index:1 op))
        with
        | Affine (b, c), Const k | Const k, Affine (b, c) ->
          Affine (b, c + k)
        | Const a, Const b -> Const (a + b)
        | _ -> Unknown)
      | "arith.subi" -> (
        match (analyze (Op.operand ~index:0 op),
               analyze (Op.operand ~index:1 op))
        with
        | Affine (b, c), Const k -> Affine (b, c - k)
        | Const a, Const b -> Const (a - b)
        | _ -> Unknown)
      | "arith.muli" -> (
        match (analyze (Op.operand ~index:0 op),
               analyze (Op.operand ~index:1 op))
        with
        | Const a, Const b -> Const (a * b)
        | _ -> Unknown)
      | _ -> Unknown)

(* Constant evaluation of integer/index expressions (loop bounds are
   fir.convert chains over arith on parameters). *)
let rec eval_const (v : Op.value) : int option =
  match Op.defining_op v with
  | None -> None
  | Some op -> (
    match op.Op.o_name with
    | "arith.constant" -> (
      match Op.attr op "value" with
      | Some (Attr.Int_a n) -> Some n
      | _ -> None)
    | "fir.convert" | "arith.index_cast" ->
      eval_const (Op.operand op)
    | "arith.addi" -> lift2 ( + ) op
    | "arith.subi" -> lift2 ( - ) op
    | "arith.muli" -> lift2 ( * ) op
    | "arith.divsi" ->
      lift2_checked (fun a b -> if b = 0 then None else Some (a / b)) op
    | _ -> None)

and lift2 f op =
  match
    (eval_const (Op.operand ~index:0 op), eval_const (Op.operand ~index:1 op))
  with
  | Some a, Some b -> Some (f a b)
  | _ -> None

and lift2_checked f op =
  match
    (eval_const (Op.operand ~index:0 op), eval_const (Op.operand ~index:1 op))
  with
  | Some a, Some b -> f a b
  | _ -> None

(* Resolve the "root" of an array reference used by fir.coordinate_of:
   either the fir.alloca itself (stack array / heap pointer cell), or a
   function entry-block argument (dummy array). For the heap route the
   coordinate base is fir.load of the cell — we return the *cell*, so that
   stack and heap accesses to the same array share one root. *)
type array_root = {
  root_value : Op.value; (* alloca result or block argument *)
  root_name : string;
  root_elem : Types.t;
  root_extents : int list;
}

let rec resolve_root (base : Op.value) : array_root option =
  let of_type name v t =
    match t with
    | Types.Fir_ref (Types.Fir_array (dims, elem))
    | Types.Fir_heap (Types.Fir_array (dims, elem))
    | Types.Fir_ref (Types.Fir_heap (Types.Fir_array (dims, elem))) ->
      let extents =
        List.map
          (function Types.Static n -> n | Types.Dynamic -> -1)
          dims
      in
      Some { root_value = v; root_name = name; root_elem = elem;
             root_extents = extents }
    | _ -> None
  in
  match Op.defining_op base with
  | Some op when op.Op.o_name = "fir.alloca" ->
    let name =
      match Op.attr op "bindc_name" with
      | Some (Attr.Str_a s) -> s
      | _ -> Printf.sprintf "anon%d" op.Op.o_id
    in
    of_type name (Op.result op) (Op.value_type (Op.result op))
  | Some op when op.Op.o_name = "fir.load" ->
    (* heap route: base = fir.load of the heap pointer cell *)
    resolve_root (Op.operand op)
  | Some op when op.Op.o_name = "fir.declare" ->
    resolve_root (Op.operand op)
  | Some _ -> None
  | None -> (
    (* dummy argument *)
    match base.Op.v_def with
    | Op.Block_arg (_, i) ->
      of_type (Printf.sprintf "arg%d" i) base (Op.value_type base)
    | Op.Op_result _ -> None)

(* Do the extents of this root include dynamic dimensions? *)
let root_is_static r = List.for_all (fun e -> e >= 0) r.root_extents

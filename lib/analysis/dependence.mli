(** Loop-carried dependence / race analysis over FIR loop nests.

    Computes per-loop distance vectors for pairs of affine array accesses
    (via {!Index_expr}) and classifies each store's loop nest as parallel
    (Jacobi-style), carried (Gauss-Seidel-style, with the offending
    read/write pair) or unknown. The discovery pass consults this module
    as its legality oracle; [sfc check] reports its findings as
    diagnostics. *)

open Fsc_ir

(** {2 Access summaries} *)

type access = {
  acc_op : Op.op;  (** the [fir.load] / [fir.store] *)
  acc_is_write : bool;
  acc_root : Index_expr.array_root;
  acc_forms : Index_expr.form list;  (** per array dimension *)
}

(** Summarise a [fir.store] / [fir.load] whose address is a
    [fir.coordinate_of] into a resolvable array root. [None] for
    scalar accesses or unresolvable bases. *)
val access_of_store : Op.op -> access option

val access_of_load : Op.op -> access option

(** Every array access inside [scope] (pre-order), including conditional
    ones — conservatively treated like any other. *)
val collect_accesses : Op.op -> access list

(** {2 Loop nests} *)

type nest = {
  n_store : access;
  n_loops : Op.op list;  (** applicable loops, outermost first *)
  n_ivs : Op.value list;  (** induction variables, outermost first *)
  n_scope : Op.op;  (** the outermost applicable loop *)
  n_inner_seq : Op.op list;
      (** enclosing loops between scope and store whose induction
          variable does not index the store: each of their iterations
          rewrites the same elements (an output dependence they carry) *)
}

(** The enclosing [fir.do_loop]s of an op, outermost first. *)
val enclosing_loops : Op.op -> Op.op list

(** The loop nest a store belongs to: [None] unless every subscript is
    affine in a distinct enclosing loop's induction variable. *)
val nest_of_store : Op.op -> nest option

(** {2 Pairwise dependence} *)

type dep_kind = Flow | Anti | Output

type dependence = {
  dep_src : access;  (** the write *)
  dep_dst : access;  (** the conflicting access (read or write) *)
  dep_kind : dep_kind;
  dep_distances : int option list;
      (** per nest loop, outermost first; [None] = not compile-time
          known *)
  dep_carrier : int;
      (** index into the nest loops of the loop that (possibly) carries
          the dependence *)
  dep_definite : bool;
      (** [true]: provably carried with a known distance vector;
          [false]: may-dependence (subscripts not fully analysable) *)
}

(** Classify the (write [w], access [x]) pair against the nest loops
    with induction variables [ivs] (outermost first). [None] when the
    accesses provably never conflict across different iterations —
    distinct roots, distinct constant subscripts, or a loop-independent
    (all-zero-distance) dependence. *)
val pair : ivs:Op.value list -> access -> access -> dependence option

(** Dependences between the nest's store and every same-root access in
    its scope. *)
val store_dependences : nest -> dependence list

(** {2 Nest classification} *)

type classification =
  | Parallel
  | Carried of dependence list  (** at least one definite carried dep *)
  | May of dependence list  (** only may-dependences *)

val classify : nest -> classification

(** All hazards that make extracting [nest]'s store unsound: dependences
    involving the store itself, plus dependences between any other write
    in scope and the candidate's own reads ([reads] are the candidate's
    [fir.load] ops). *)
val candidate_hazards : nest -> reads:Op.op list -> dependence list

(** {2 Scalar cells} *)

type scalar_fate =
  | Scalar_invariant  (** never written inside the nest *)
  | Scalar_private
      (** written, but every read sees a value stored earlier in the
          same iteration: privatisable temporary *)
  | Scalar_carried of Op.op * Op.op
      (** [(store, load)]: some read can observe a previous iteration's
          value — a reduction/recurrence pattern *)

(** Fate of the scalar memory cell [cell] with respect to the loop
    [scope]. *)
val scalar_fate : scope:Op.op -> cell:Op.value -> scalar_fate

(** {2 Descriptions} *)

val kind_to_string : dep_kind -> string

(** One-line human description of a dependence, for diagnostics. *)
val describe : dependence -> string

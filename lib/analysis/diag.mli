(** Compiler diagnostics: severities, source locations, text and JSON
    renderers.

    Every analysis in this library — and the discovery pass in
    [Fsc_core] — reports findings as {!t} values so that [sfc check],
    pipeline error paths and tests share one user-facing format:

    {v file:line:col: warning[race]: message v}

    Locations come from the Fortran frontend: the lexer/parser record
    line:col, the lowering attaches them to FIR ops as [Attr.Loc_a]
    ["loc"] attributes, and {!loc_of_op} reads them back. *)

open Fsc_ir

type severity = Error | Warning | Note

type srcloc = { l_line : int; l_col : int }

type t = {
  d_severity : severity;
  d_code : string;
      (** short machine-readable slug: ["race"], ["bounds"],
          ["stencil-reject"], ["frontend"], ["verify"], ["pipeline"] *)
  d_loc : srcloc option;
  d_message : string;
  d_notes : (srcloc option * string) list;
      (** secondary locations, e.g. the conflicting read of a race *)
}

val severity_to_string : severity -> string
val loc : int -> int -> srcloc

(** Location of an op's ["loc"] attribute, when the frontend threaded
    one. *)
val loc_of_op : Op.op -> srcloc option

val make :
  ?loc:srcloc ->
  ?notes:(srcloc option * string) list ->
  severity ->
  code:string ->
  string ->
  t

val error :
  ?loc:srcloc ->
  ?notes:(srcloc option * string) list ->
  code:string ->
  string ->
  t

val warning :
  ?loc:srcloc ->
  ?notes:(srcloc option * string) list ->
  code:string ->
  string ->
  t

val note :
  ?loc:srcloc ->
  ?notes:(srcloc option * string) list ->
  code:string ->
  string ->
  t

val errorf :
  ?loc:srcloc ->
  ?notes:(srcloc option * string) list ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a

val warningf :
  ?loc:srcloc ->
  ?notes:(srcloc option * string) list ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a

val notef :
  ?loc:srcloc ->
  ?notes:(srcloc option * string) list ->
  code:string ->
  ('a, unit, string, t) format4 ->
  'a

(** [render ?file d] is the human-readable form,
    [file:line:col: severity[code]: message] followed by indented note
    lines. *)
val render : ?file:string -> t -> string

val render_all : ?file:string -> t list -> string

(** One JSON object per diagnostic (hand-rolled, dependency-free). *)
val to_json : ?file:string -> t -> string

val json_escape : string -> string

(** Drop repeated findings: diagnostics sharing a code and location
    after the first occurrence. Order otherwise preserved. *)
val dedupe : t list -> t list

(** Stable sort by location (unlocated first) for deterministic
    machine-readable output. *)
val sort_by_loc : t list -> t list

val count : severity -> t list -> int

(** Number of diagnostics that should fail the run; [werror] promotes
    warnings to errors. *)
val error_count : ?werror:bool -> t list -> int

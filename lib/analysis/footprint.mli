(** Affine footprint analysis over compiled kernel specs.

    The dependence oracle answers "is this nest parallel?"; this module
    answers the stronger question several backends need: which
    rectangular region of which field does each statement read and
    write?  Footprints are conservative per-dimension interval boxes
    derived from {!Fsc_rt.Kernel_compile} index forms ([Iv (level,
    offset)] / [Cst c]) and loop bounds, with a sound [Top] for any
    subscript the abstraction cannot bound.  Consumers: halo-aware
    staling in [Fsc_dmp.Dist_kernel] (a write only stales halo
    freshness when its footprint touches a mirrored boundary plane),
    bounds-guard elision in [Fsc_codegen.Native] (a nest whose
    footprint is proven inside every buffer extent needs no flat-offset
    scan), and the [sfc check] lints built in {!Check}. *)

(** One dimension of a footprint: a closed interval or the whole axis.
    [Range (lo, hi)] is inclusive on both ends and satisfies
    [lo <= hi]. *)
type dim =
  | Top
  | Range of int * int

(** A rectangular region: one {!dim} per buffer dimension, outermost
    buffer dimension first (same order as [Kernel_compile.index_form]
    lists). *)
type region = dim list

(** [range lo hi] builds a [Range], swapping the endpoints if given in
    descending order. *)
val range : int -> int -> dim

val join_dim : dim -> dim -> dim
(** Least upper bound: the interval hull. *)

val meet_dim : dim -> dim -> dim option
(** Greatest lower bound; [None] when the intersection is empty. *)

val dim_contains : dim -> int -> bool
val dims_intersect : dim -> dim -> bool

(** Region-level lattice ops.  Mismatched ranks are handled
    conservatively: missing dimensions behave as [Top]. *)

val join_region : region -> region -> region

val meet_region : region -> region -> region option
(** [None] when the regions are disjoint in some shared dimension. *)

val regions_intersect : region -> region -> bool

val region_within : extents:int list -> region -> bool
(** Is every access provably inside [0 .. extent - 1] in every
    dimension?  False when any dimension is [Top], the ranks disagree,
    or an extent is unknown (negative). *)

val region_to_string : region -> string
(** E.g. ["[1:12][0:13][?]"] — [?] renders [Top]. *)

(** Footprint of one compiled loop nest, joined per buffer argument. *)
type nest_fp = {
  nf_empty : bool;
      (** Some loop has an empty range: the nest executes nothing and
          both access lists are empty. *)
  nf_reads : (int * region) list;
      (** Per buffer-argument index, the join of all load regions. *)
  nf_writes : (int * region) list;
      (** Per buffer-argument index, the join of all store regions. *)
}

val of_nest : Fsc_rt.Kernel_compile.nest -> nest_fp

(** Whole-kernel footprint: one {!nest_fp} per nest, in program
    order. *)
type t = nest_fp list

val of_spec : Fsc_rt.Kernel_compile.spec -> t

val to_string : t -> string
(** Stable multi-line rendering, one line per nest; used both for
    [--stats] display and as the canonical form the artifact cache
    stores and revalidates against. *)

(** Cached compilation: the bridge between {!Pipeline.compile} and the
    content-addressed artifact store in [Fsc_cache.Cache].

    Entries are keyed by a digest of (source text, target kind, tile
    sizes, merge/specialize flags, format version) and hold the {e
    printed} IR of every pipeline stage plus kernel metadata — including
    the per-kernel affine footprints (canonical string form). Loading
    re-parses each module through [Fsc_ir.Parser], re-verifies the host
    and recomputes every footprint from the parsed stencil IR, demanding
    it match what was stored — so every warm hit doubles as a
    printer/parser round-trip check {e and} a footprint-analysis
    consistency check; entries that fail are evicted by the cache, never
    fatal.

    The OpenMP thread count is deliberately absent from the key: the
    pool is created at {!Pipeline.link} time, so one cached artifact
    serves every pool size (the requested options are re-attached on
    load). *)

(** Bumped whenever the serialized layout or anything feeding the digest
    changes; old entries are then evicted on sight. *)
val format_version : int

(** A cache wired to [format_version] (defaults: 64 in-memory entries,
    disk store under [Cache.default_dir ()]); [max_disk_bytes] bounds
    the disk store with LRU whole-set eviction (see {!Fsc_cache.Cache.create}). *)
val create_cache :
  ?mem_entries:int ->
  ?disk:bool ->
  ?dir:string ->
  ?max_disk_bytes:int ->
  unit ->
  Fsc_cache.Cache.t

(** The entry key for compiling [source] under the given options. *)
val key : Fsc_cache.Cache.t -> Pipeline.options -> string -> string

(** Serialize to the cached payload (printed IR + metadata, JSON). *)
val encode : Pipeline.compiled_artifact -> string

(** Re-parse and re-verify a payload; the artifact's options are the
    requested ones, not the (kind-identical) ones it was compiled
    under. *)
val decode :
  Pipeline.options -> string -> (Pipeline.compiled_artifact, string) result

(** [compile ?cache options src] — with a cache, look up first and
    populate on miss; without one, plain {!Pipeline.compile}. The second
    component reports what happened, for [--stats] and the job
    protocol. *)
val compile :
  ?cache:Fsc_cache.Cache.t ->
  Pipeline.options ->
  string ->
  Pipeline.compiled_artifact * [ `Hit | `Miss | `Off ]

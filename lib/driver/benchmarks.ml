(* The two benchmark codes of the paper's evaluation (Section 4.1), as
   Fortran source generators.

   Gauss-Seidel: LaPlace diffusion in 3-D, 7-point stencil averaging the
   six orthogonal neighbours (6 flops/cell), iterative with an outer time
   loop. Written as a two-array sweep + copy-back so that the serial FIR
   execution and the (value-semantics) stencil execution are numerically
   identical — stencil.apply always reads a snapshot, so a literal
   in-place Gauss-Seidel would change numerics under extraction.

   PW advection: the Piacsek-Williams advection scheme from the MONC
   atmospheric model — three separate stencil computations over three
   velocity fields (u, v, w -> su, sv, sw, ~63 flops/cell) which the
   merge pass fuses into a single stencil region, exactly the fusion the
   paper reports. *)

let gauss_seidel ?(nx = 16) ?(ny = 16) ?(nz = 16) ?(niter = 4) () =
  Printf.sprintf
    {|
program gauss_seidel
  implicit none
  integer, parameter :: nx = %d, ny = %d, nz = %d, niter = %d
  integer :: i, j, k, iter
  real(kind=8), dimension(0:nx+1, 0:ny+1, 0:nz+1) :: u, unew

  ! initial condition: smooth non-harmonic field (quadratic + cross
  ! term, so the sweep does real work and index mistakes cannot cancel);
  ! the boundary stays fixed as a Dirichlet condition
  do k = 0, nz + 1
    do j = 0, ny + 1
      do i = 0, nx + 1
        u(i, j, k) = 0.01d0 * dble(i) * dble(i) &
                   + 0.02d0 * dble(j) * dble(k) + 0.03d0 * dble(k)
        unew(i, j, k) = 0.0d0
      end do
    end do
  end do

  do iter = 1, niter
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          unew(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                        + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0d0
        end do
      end do
    end do
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          u(i, j, k) = unew(i, j, k)
        end do
      end do
    end do
  end do
end program gauss_seidel
|}
    nx ny nz niter

let pw_advection ?(nx = 16) ?(ny = 16) ?(nz = 16) ?(niter = 4) () =
  Printf.sprintf
    {|
program pw_advection
  implicit none
  integer, parameter :: nx = %d, ny = %d, nz = %d, niter = %d
  integer :: i, j, k, iter
  real(kind=8) :: rdx, rdy, rdz
  real(kind=8), dimension(0:nx+1, 0:ny+1, 0:nz+1) :: u, v, w, su, sv, sw

  rdx = 0.1d0
  rdy = 0.2d0
  rdz = 0.3d0

  do k = 0, nz + 1
    do j = 0, ny + 1
      do i = 0, nx + 1
        u(i, j, k) = 0.01d0 * dble(i) + 0.02d0 * dble(j) + 0.03d0 * dble(k)
        v(i, j, k) = 0.03d0 * dble(i) + 0.01d0 * dble(j) + 0.02d0 * dble(k)
        w(i, j, k) = 0.02d0 * dble(i) + 0.03d0 * dble(j) + 0.01d0 * dble(k)
        su(i, j, k) = 0.0d0
        sv(i, j, k) = 0.0d0
        sw(i, j, k) = 0.0d0
      end do
    end do
  end do

  do iter = 1, niter
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          su(i, j, k) = 0.5d0 * rdx * (u(i-1, j, k) * (u(i, j, k) + u(i-1, j, k)) &
                      - u(i+1, j, k) * (u(i, j, k) + u(i+1, j, k))) &
                      + 0.5d0 * rdy * (v(i, j-1, k) * (u(i, j, k) + u(i, j-1, k)) &
                      - v(i, j+1, k) * (u(i, j, k) + u(i, j+1, k))) &
                      + 0.5d0 * rdz * (w(i, j, k-1) * (u(i, j, k) + u(i, j, k-1)) &
                      - w(i, j, k+1) * (u(i, j, k) + u(i, j, k+1)))
        end do
      end do
    end do
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          sv(i, j, k) = 0.5d0 * rdx * (u(i-1, j, k) * (v(i, j, k) + v(i-1, j, k)) &
                      - u(i+1, j, k) * (v(i, j, k) + v(i+1, j, k))) &
                      + 0.5d0 * rdy * (v(i, j-1, k) * (v(i, j, k) + v(i, j-1, k)) &
                      - v(i, j+1, k) * (v(i, j, k) + v(i, j+1, k))) &
                      + 0.5d0 * rdz * (w(i, j, k-1) * (v(i, j, k) + v(i, j, k-1)) &
                      - w(i, j, k+1) * (v(i, j, k) + v(i, j, k+1)))
        end do
      end do
    end do
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          sw(i, j, k) = 0.5d0 * rdx * (u(i-1, j, k) * (w(i, j, k) + w(i-1, j, k)) &
                      - u(i+1, j, k) * (w(i, j, k) + w(i+1, j, k))) &
                      + 0.5d0 * rdy * (v(i, j-1, k) * (w(i, j, k) + w(i, j-1, k)) &
                      - v(i, j+1, k) * (w(i, j, k) + w(i, j+1, k))) &
                      + 0.5d0 * rdz * (w(i, j, k-1) * (w(i, j, k) + w(i, j, k-1)) &
                      - w(i, j, k+1) * (w(i, j, k) + w(i, j, k+1)))
        end do
      end do
    end do
  end do
end program pw_advection
|}
    nx ny nz niter

(* 2-D Laplace (5-point Jacobi): the long-innermost-row benchmark. One
   sweep reads four neighbours into phinew, one copies back — the shape
   the row-vectorised engine's fused weighted-sum path targets, with
   rows long enough that per-row dispatch overhead amortises away. *)
let laplace ?(n = 64) ?(niter = 4) () =
  Printf.sprintf
    {|
program laplace
  implicit none
  integer, parameter :: n = %d, niter = %d
  integer :: i, j, iter
  real(kind=8), dimension(0:n+1, 0:n+1) :: phi, phinew

  do j = 0, n + 1
    do i = 0, n + 1
      phi(i, j) = 0.01d0 * dble(i) * dble(i) + 0.02d0 * dble(i) * dble(j)
      phinew(i, j) = 0.0d0
    end do
  end do

  do iter = 1, niter
    do j = 1, n
      do i = 1, n
        phinew(i, j) = 0.25d0 * (phi(i-1, j) + phi(i+1, j) &
                     + phi(i, j-1) + phi(i, j+1))
      end do
    end do
    do j = 1, n
      do i = 1, n
        phi(i, j) = phinew(i, j)
      end do
    end do
  end do
end program laplace
|}
    n niter

(* Residual evaluation plus a boundary-edge probe (the inline twin of
   examples/residual.f90): the probe nest writes u every iteration, but
   only along the global j = k = 1 edge — a plane the affine write
   footprint proves is never a mirrored block boundary — so footprint
   staling pays for u's first halo exchange only while whole-field
   staling re-exchanges every superstep. The benchmark program for the
   footprint-staling ablation gate in BENCH_dmp.json. *)
let residual ?(nx = 12) ?(ny = 12) ?(nz = 12) ?(niter = 3) () =
  Printf.sprintf
    {|
program residual_probe
  implicit none
  integer, parameter :: nx = %d, ny = %d, nz = %d, niter = %d
  integer :: i, j, k, iter
  real(kind=8), dimension(0:nx+1, 0:ny+1, 0:nz+1) :: u, r

  do k = 0, nz + 1
    do j = 0, ny + 1
      do i = 0, nx + 1
        u(i, j, k) = 0.01d0 * dble(i) * dble(i) &
                   + 0.02d0 * dble(j) * dble(k) + 0.03d0 * dble(k)
        r(i, j, k) = 0.0d0
      end do
    end do
  end do

  do iter = 1, niter
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          r(i, j, k) = u(i, j, k) - (u(i-1, j, k) + u(i+1, j, k) &
                     + u(i, j-1, k) + u(i, j+1, k) + u(i, j, k-1) &
                     + u(i, j, k+1)) / 6.0d0
        end do
      end do
    end do
    do k = 1, 1
      do j = 1, 1
        do i = 1, nx
          u(i, j, k) = u(i, j, k) + 0.25d0 * r(i, j, k)
        end do
      end do
    end do
  end do
end program residual_probe
|}
    nx ny nz niter

(* Smoothing with relaxation: a 6-point average into rs, then a
   cell-wise blend d = 0.25*rs + 0.75*u. The blend reads rs through the
   identity index — the shape the native emitter's aligned cross-nest
   fusion accepts (every shared cell produced before consumed in the
   fused body), unlike the sweep/copy-back pairs above which need the
   shifted schedule. The benchmark program for the aligned-fusion gate
   in BENCH_kernels.json's scheduling section. *)
let smooth ?(nx = 16) ?(ny = 16) ?(nz = 16) ?(niter = 4) () =
  Printf.sprintf
    {|
program smooth
  implicit none
  integer, parameter :: nx = %d, ny = %d, nz = %d, niter = %d
  integer :: i, j, k, iter
  real(kind=8), dimension(0:nx+1, 0:ny+1, 0:nz+1) :: u, rs, d

  do k = 0, nz + 1
    do j = 0, ny + 1
      do i = 0, nx + 1
        u(i, j, k) = 0.01d0 * dble(i) * dble(i) &
                   + 0.02d0 * dble(j) * dble(k) + 0.03d0 * dble(k)
        rs(i, j, k) = 0.0d0
        d(i, j, k) = 0.0d0
      end do
    end do
  end do

  do iter = 1, niter
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          rs(i, j, k) = (u(i-1, j, k) + u(i+1, j, k) + u(i, j-1, k) &
                      + u(i, j+1, k) + u(i, j, k-1) + u(i, j, k+1)) / 6.0d0
        end do
      end do
    end do
    do k = 1, nz
      do j = 1, ny
        do i = 1, nx
          d(i, j, k) = 0.25d0 * rs(i, j, k) + 0.75d0 * u(i, j, k)
        end do
      end do
    end do
  end do
end program smooth
|}
    nx ny nz niter

(* The paper's Listing 1: 2-D neighbour averaging. *)
let listing1 ?(n = 256) () =
  Printf.sprintf
    {|
program average
  implicit none
  integer, parameter :: n = %d
  integer :: i, j
  real(kind=8), dimension(0:n, 0:n) :: data, result

  do i = 1, n - 1
    do j = 1, n - 1
      result(j, i) = 0.25 * (data(j, i - 1) + data(j, i + 1) &
                   + data(j - 1, i) + data(j + 1, i))
    end do
  end do
end program average
|}
    n

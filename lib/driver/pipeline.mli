(** End-to-end compilation and execution pipelines — the paper's Figure 1
    as code. Each flow takes Fortran source text and produces a runnable
    {!artifact}. *)

open Fsc_ir

(** A typed, renderable driver error. The CLI catches it, renders the
    diagnostic through {!Fsc_analysis.Diag} and exits nonzero. *)
exception Error_diag of Fsc_analysis.Diag.t

(** GPU data-management strategy (Section 4.3 / Figure 5). *)
type gpu_strategy =
  | Gpu_initial  (** [gpu.host_register]: page everything, every launch *)
  | Gpu_optimised  (** the bespoke data-placement pass: device-resident *)

type target =
  | Serial
  | Openmp of int  (** auto-parallelised, thread count *)
  | Gpu of gpu_strategy
  | Dist of int
      (** distributed-memory lowering over simulated MPI, rank count *)

(** Human-readable target, e.g. ["openmp(4)"] — the one spelling used by
    the CLI, the batch/serve job printer and error messages. *)
val target_name : target -> string

(** Target without link-time parameters (["openmp"], no thread count):
    the spelling that identifies {e compiled code}, and therefore the one
    that belongs in cache keys — an OpenMP artifact is reusable across
    pool sizes because the pool is only created at {!link} time. *)
val target_kind : target -> string

(** Which execution tier runs compiled kernels on CPU targets. The
    engine is link-time state (like the pool size): it never changes the
    compiled IR, so it is not part of {!options} or the cache key. GPU
    targets always execute through the closure engine on the simulator's
    device twins. *)
type exec_engine =
  | Engine_interp  (** force the tree-walking interpreter *)
  | Engine_closure  (** {!Fsc_rt.Kernel_compile}'s per-cell closure JIT *)
  | Engine_vector
      (** {!Fsc_rt.Kernel_bytecode}'s row engine; per-nest automatic
          fallback to the closure engine outside the vectorisable
          shape *)
  | Engine_native
      (** {!Fsc_codegen.Native}: kernels emitted as OCaml source,
          compiled with [ocamlfind ocamlopt -shared] and Dynlink'ed;
          serves from the vector engine until the plugin is ready and
          falls back to it per nest (emit/bounds) or per kernel
          (toolchain/build/load failures). CPU targets only: [Dist]
          executes its rank-sliced spaces on the vector engine, GPU
          targets on the device twins as always. *)

val engine_name : exec_engine -> string

(** Inverse of {!engine_name}; [None] for unknown spellings. *)
val engine_of_name : string -> exec_engine option

(** Every engine, in ladder order. *)
val all_engines : exec_engine list

(** Valid [--exec-engine] spellings, for diagnostics. *)
val engine_names : string list

(** How a kernel is executed at runtime. *)
type kernel_impl =
  | Compiled of Fsc_rt.Kernel_compile.spec
      (** closure-compiled fast path *)
  | Vectorised of Fsc_rt.Kernel_compile.spec * Fsc_rt.Kernel_bytecode.plan
      (** row-vectorised engine (inspect the plan for per-nest
          fallbacks) *)
  | Native_jit of Fsc_rt.Kernel_compile.spec * Fsc_codegen.Native.kernel
      (** native JIT tier (query {!Fsc_codegen.Native.report} for build
          origin, timing and per-nest fallbacks) *)
  | Interpreted of string  (** fallback, with the analyser's reason *)
  | Distributed of Fsc_rt.Kernel_compile.spec
      (** SPMD execution over the ranks of a [Dist] target *)

type artifact = {
  a_host : Op.op;  (** the FIR host module *)
  a_stencil : Op.op option;  (** extracted module after lowering *)
  a_gpu_ir : Op.op option;
      (** the Listing-4 pipeline output (GPU targets only) *)
  a_ctx : Fsc_rt.Interp.context;  (** linked execution context *)
  a_kernels : (string * kernel_impl) list;
  a_target : target;
  a_dist : Fsc_dmp.Dist_kernel.state option;
      (** distributed runtime ([Dist] targets under the closure/vector
          engines) *)
}

type stencil_stats = {
  st_discovered : int;
  st_merged : int;
  st_kernels : int;
}

(** Everything {!compile} is parameterised by. One record so the cache
    key and the compiler agree by construction on what defines an
    artifact's identity. *)
type options = {
  opt_target : target;
  opt_tile_sizes : int list;  (** GPU pipeline tiling (paper: 32,32,1) *)
  opt_merge : bool;  (** ablation: stencil merging *)
  opt_specialize : bool;  (** ablation: loop specialisation *)
  opt_l2_kb : int;
      (** per-core cache budget (KB) driving the ["cpu_tile"] nest
          annotations the vector engine blocks by *)
}

val default_options :
  ?target:target ->
  ?tile_sizes:int list ->
  ?merge:bool ->
  ?specialize:bool ->
  ?l2_kb:int ->
  unit ->
  options

(** The pure, serializable half of a stencil compilation: IR modules and
    metadata only — no interpreter context, no domain pool, no GPU
    simulator, no Bigarrays, no closures. It is exactly the value the
    artifact cache stores (as printed IR) and {!link} consumes. *)
type compiled_artifact = {
  ca_host : Op.op;  (** FIR host module after extraction *)
  ca_stencil : Op.op;  (** extracted module after lowering *)
  ca_gpu_ir : Op.op option;  (** Listing-4 output (GPU targets) *)
  ca_kernels : string list;  (** stencil kernel symbols, in order *)
  ca_managed : string list;
      (** kernels whose GPU data placement was hoisted (optimised GPU) *)
  ca_footprints : (string * Fsc_analysis.Footprint.t) list;
      (** per-kernel affine read/write footprints (analysable kernels
          only) — the proof artifacts behind halo-aware staling and
          codegen guard elision, and part of the cache contract *)
  ca_stats : stencil_stats;
  ca_options : options;
}

(** The baseline: frontend to FIR, no stencil optimisation, naive
    execution (the paper's "Flang only" series). *)
val flang_only : string -> artifact

(** Pure front half of the Figure-1 pipeline: frontend, discovery,
    merge, extraction, GPU data placement and lowering. Deterministic in
    [options] and the source text, and free of runtime state — the
    cacheable unit. *)
val compile : options -> string -> compiled_artifact

(** Impure back half: create the interpreter context, register the host
    and stencil modules, allocate the OpenMP pool / GPU simulator for
    the artifact's target, and compile each kernel for [engine]
    (default {!Engine_vector}; falls back to the interpreter outside
    the analysable shape, and per nest to the closure engine outside
    the vectorisable shape). Safe to call several times on one
    artifact; each call yields an independent runnable.

    For [Dist] targets, [dist_mode] (default {!Fsc_dmp.Dist_exec.Overlap})
    selects overlapped or blocking halo supersteps; ranks execute
    concurrently on a domain pool sized [min ranks (recommended_size ())].
    [dist_fuse] (default [true]) skips superstep halo exchanges whose
    halos are already fresh; [dist_coalesce] (default [true]) packs a
    stage's swap set into one message per neighbour per superstep;
    [dist_footprint] (default [true]) stales a written field's halos
    only when its affine write footprint provably reaches a
    block-boundary plane (interior-only writes keep halos fresh and fuse
    away the re-exchange). All three preserve bitwise results. Under
    {!Engine_interp} the program runs entirely on the host interpreter
    (no distribution).

    [native] supplies the {!Engine_native} context (cache directory,
    build mode, toolchain); without it a process-wide default ctx
    (async builds, default cache directory) is created on first use.
    [native_tile] and [native_fuse] (default [true]) select the
    emit-time scheduling transforms of the native tier — intra-nest
    scheduling (cache tiling, register reuse, row blits) and cross-nest
    fusion; with both disabled the emitted code is the v1 flat loop
    schedule. All native knobs are ignored under other engines, and all
    preserve bitwise results. *)
val link :
  ?engine:exec_engine ->
  ?native:Fsc_codegen.Native.ctx ->
  ?native_tile:bool ->
  ?native_fuse:bool ->
  ?dist_mode:Fsc_dmp.Dist_exec.mode ->
  ?dist_fuse:bool ->
  ?dist_coalesce:bool ->
  ?dist_footprint:bool ->
  compiled_artifact ->
  artifact

(** The full stencil pipeline: {!compile} then {!link}. [merge] and
    [specialize] default to [true] and exist for ablation studies;
    [tile_sizes] parameterises the GPU pipeline (paper default
    32,32,1). *)
val stencil :
  ?target:target ->
  ?tile_sizes:int list ->
  ?merge:bool ->
  ?specialize:bool ->
  ?engine:exec_engine ->
  ?native:Fsc_codegen.Native.ctx ->
  ?native_tile:bool ->
  ?native_fuse:bool ->
  ?dist_mode:Fsc_dmp.Dist_exec.mode ->
  ?dist_fuse:bool ->
  ?dist_coalesce:bool ->
  ?dist_footprint:bool ->
  string ->
  artifact * stencil_stats

(** Execute the program's [_QQmain]; for GPU targets, synchronise device
    mirrors back to the host afterwards; for [Dist] targets, gather the
    scattered rank-local buffers back into the host globals.
    @raise Fsc_dmp.Decomp.Invalid_decomp when a distributed kernel's
    grid cannot host the requested rank count. *)
val run : artifact -> unit

(** Release the artifact's worker pool (OpenMP targets) after draining
    any in-flight native builds, so short runs still publish their
    compiled plugins to the artifact cache. *)
val shutdown : artifact -> unit

(** Look up a named Fortran array allocated during execution. *)
val buffer : artifact -> string -> Fsc_rt.Memref_rt.t option

val buffer_exn : artifact -> string -> Fsc_rt.Memref_rt.t

(* Cached compilation: serialize compiled artifacts as printed IR plus
   metadata, keyed by a content digest of everything that defines them.
   The warm path (find -> decode -> link) must skip every pipeline
   stage before "link + kernel compile" — the obs spans of a warm run
   are the contract the cache tests pin down. *)

open Fsc_ir
module Obs = Fsc_obs.Obs
module J = Fsc_obs.Obs.Json
module Cache = Fsc_cache.Cache
module P = Pipeline

(* v2: compiled artifacts carry per-kernel affine footprints; entries
   written by v1 lack them and must recompile. *)
let format_version = 2

let create_cache ?mem_entries ?disk ?dir ?max_disk_bytes () =
  Cache.create ?mem_entries ?disk ?dir ?max_disk_bytes
    ~version:format_version ()

let key cache (options : P.options) src =
  Cache.digest cache
    [ "target:" ^ P.target_kind options.P.opt_target;
      "tiles:"
      ^ String.concat "," (List.map string_of_int options.P.opt_tile_sizes);
      "merge:" ^ string_of_bool options.P.opt_merge;
      "specialize:" ^ string_of_bool options.P.opt_specialize;
      (* the cache budget shapes the cpu_tile annotations baked into the
         stencil IR, so it is part of the artifact's identity (the
         execution engine, by contrast, is link-time state) *)
      "l2:" ^ string_of_int options.P.opt_l2_kb;
      src ]

(* ---------------- serialization ---------------- *)

let encode (ca : P.compiled_artifact) =
  let module_str m = J.Str (Printer.module_to_string m) in
  let strings l = J.List (List.map (fun s -> J.Str s) l) in
  J.to_string
    (J.Obj
       [ ("format", J.Num (float_of_int format_version));
         ("target", J.Str (P.target_kind ca.P.ca_options.P.opt_target));
         ("host", module_str ca.P.ca_host);
         ("stencil", module_str ca.P.ca_stencil);
         ("gpu_ir",
          match ca.P.ca_gpu_ir with Some m -> module_str m | None -> J.Null);
         ("kernels", strings ca.P.ca_kernels);
         ("managed", strings ca.P.ca_managed);
         ("footprints",
          J.List
            (List.map
               (fun (name, fp) ->
                 J.Obj
                   [ ("kernel", J.Str name);
                     ("regions", J.Str (Fsc_analysis.Footprint.to_string fp))
                   ])
               ca.P.ca_footprints));
         ("stats",
          J.Obj
            [ ("discovered",
               J.Num (float_of_int ca.P.ca_stats.P.st_discovered));
              ("merged", J.Num (float_of_int ca.P.ca_stats.P.st_merged));
              ("kernels", J.Num (float_of_int ca.P.ca_stats.P.st_kernels)) ])
       ])

let ( let* ) = Result.bind

let member_exn name payload =
  match J.member name payload with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_str name = function
  | J.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

let as_int name = function
  | J.Num f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "field %S is not a number" name)

let as_strings name = function
  | J.List l ->
    List.fold_right
      (fun v acc ->
        let* acc = acc in
        let* s = as_str name v in
        Ok (s :: acc))
      l (Ok [])
  | _ -> Error (Printf.sprintf "field %S is not a list" name)

let parse_ir name text =
  match Parser.parse_module_result text with
  | Ok m -> Ok m
  | Error e -> Error (Printf.sprintf "%s module: %s" name e)

(* Decoding IS the revalidation: JSON layer, format version, a full
   parser round-trip per module and a host verification — any failure
   means the entry is evicted by the cache layer above. *)
let decode (options : P.options) payload =
  Obs.with_span ~cat:"pipeline" "cache revalidate" @@ fun () ->
  let* json =
    match J.of_string payload with
    | j -> Ok j
    | exception J.Parse_error e -> Error ("payload: " ^ e)
  in
  let* format = member_exn "format" json in
  let* format = as_int "format" format in
  if format <> format_version then
    Error
      (Printf.sprintf "format version %d, expected %d" format format_version)
  else
    let* tk = member_exn "target" json in
    let* tk = as_str "target" tk in
    if tk <> P.target_kind options.P.opt_target then
      Error
        (Printf.sprintf "target %s, expected %s" tk
           (P.target_kind options.P.opt_target))
    else
      let* host = member_exn "host" json in
      let* host = as_str "host" host in
      let* host = parse_ir "host" host in
      let* stencil = member_exn "stencil" json in
      let* stencil = as_str "stencil" stencil in
      let* stencil = parse_ir "stencil" stencil in
      let* gpu_ir =
        match J.member "gpu_ir" json with
        | None | Some J.Null -> Ok None
        | Some v ->
          let* s = as_str "gpu_ir" v in
          let* m = parse_ir "gpu_ir" s in
          Ok (Some m)
      in
      let* kernels = member_exn "kernels" json in
      let* kernels = as_strings "kernels" kernels in
      let* managed = member_exn "managed" json in
      let* managed = as_strings "managed" managed in
      let* stored_fps =
        let* v = member_exn "footprints" json in
        match v with
        | J.List l ->
          List.fold_right
            (fun entry acc ->
              let* acc = acc in
              let* name = member_exn "kernel" entry in
              let* name = as_str "kernel" name in
              let* regions = member_exn "regions" entry in
              let* regions = as_str "regions" regions in
              Ok ((name, regions) :: acc))
            l (Ok [])
        | _ -> Error "field \"footprints\" is not a list"
      in
      (* decoding is revalidation: recompute every footprint from the
         parsed stencil IR and demand it matches what was stored — a
         drifted analysis (or corrupted entry) evicts rather than
         serving stale proofs to the staling/guard-elision consumers *)
      let* footprints =
        let funcs = Fsc_dialects.Func.all_functions stencil in
        let recomputed =
          List.filter_map
            (fun f ->
              let n = Fsc_dialects.Func.name f in
              if not (List.mem n kernels) then None
              else
                match Fsc_rt.Kernel_compile.try_analyze f with
                | Ok spec -> Some (n, Fsc_analysis.Footprint.of_spec spec)
                | Error _ -> None)
            funcs
        in
        let canon =
          List.map
            (fun (n, fp) -> (n, Fsc_analysis.Footprint.to_string fp))
            recomputed
        in
        if canon = stored_fps then Ok recomputed
        else Error "footprints do not match the stencil IR"
      in
      let* st = member_exn "stats" json in
      let* discovered = member_exn "discovered" st in
      let* discovered = as_int "discovered" discovered in
      let* merged = member_exn "merged" st in
      let* merged = as_int "merged" merged in
      let* st_kernels = member_exn "kernels" st in
      let* st_kernels = as_int "kernels" st_kernels in
      let* () =
        match
          Verifier.verify_in_context_exn (Dialect.flang_context ()) host
        with
        | () -> Ok ()
        | exception e -> Error ("host verification: " ^ Printexc.to_string e)
      in
      Ok
        { P.ca_host = host; P.ca_stencil = stencil; P.ca_gpu_ir = gpu_ir;
          P.ca_kernels = kernels; P.ca_managed = managed;
          P.ca_footprints = footprints;
          P.ca_stats =
            { P.st_discovered = discovered; P.st_merged = merged;
              P.st_kernels = st_kernels };
          P.ca_options = options }

(* ---------------- cached compile ---------------- *)

let compile ?cache options src =
  match cache with
  | None -> (P.compile options src, `Off)
  | Some c -> (
    let key = key c options src in
    match
      Obs.with_span ~cat:"pipeline" "cache lookup" (fun () ->
          Cache.find c ~key ~validate:(decode options))
    with
    | Some ca -> (ca, `Hit)
    | None ->
      let ca = P.compile options src in
      Cache.put c ~key (encode ca);
      (ca, `Miss))

(* End-to-end compilation and execution pipelines — the "Figure 1" of the
   paper as code. Each flow takes Fortran source text and produces a
   runnable artifact:

   - [flang_only]: frontend -> FIR -> direct execution (the paper's
     baseline of Flang lowering FIR straight to LLVM-IR with no standard-
     dialect optimisation — here, the naive tree-walking tier);
   - [stencil]: frontend -> FIR -> discover -> merge -> extract ->
     stencil-to-scf (+specialise / openmp / gpu pipeline) -> compiled
     kernels linked back into the FIR host program;
   - vendor baselines (Cray CPU, OpenACC-Nvidia GPU, hand-MPI) live in
     [Fsc_rt.Vendor_kernels] and are driven by the bench harness. *)

open Fsc_ir
module Interp = Fsc_rt.Interp
module Kc = Fsc_rt.Kernel_compile
module Kb = Fsc_rt.Kernel_bytecode
module Obs = Fsc_obs.Obs
module Diag = Fsc_analysis.Diag

(* A typed, renderable driver error. The CLI catches it, renders the
   diagnostic through [Fsc_analysis.Diag] and exits nonzero — no raw
   [Failure] backtraces for user errors. *)
exception Error_diag of Diag.t

let driver_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Error_diag (Diag.error ~code:"pipeline" msg)))
    fmt

(* A rewrite pass hitting its max-iterations backstop used to escape as
   a raw [Failure] through the CLI; surface it as a typed diagnostic
   naming the offending pass instead. *)
let nontermination_diag pass =
  Error_diag
    (Diag.errorf ~code:"pipeline"
       ~notes:
         [ ( None,
             "the greedy rewriter exceeded its max-iterations backstop; a \
              pattern in this pass keeps firing without reaching a \
              fixpoint" ) ]
       "pass '%s' does not terminate" pass)

(* every pipeline stage is a span under this category, so a --trace of a
   compile shows frontend / discovery / merge / extraction / lowering /
   linking as one nested timeline *)
let stage name f =
  Obs.with_span ~cat:"pipeline" name (fun () ->
      try f () with
      | Rewrite.Nontermination -> raise (nontermination_diag name)
      | Pass.Pipeline_error (pass, Rewrite.Nontermination, _) ->
        raise (nontermination_diag pass))

let log_src = Logs.Src.create "fsc.driver" ~doc:"compilation driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type gpu_strategy =
  | Gpu_initial
  | Gpu_optimised

type target =
  | Serial
  | Openmp of int (* threads *)
  | Gpu of gpu_strategy
  | Dist of int (* simulated MPI ranks *)

let target_kind = function
  | Serial -> "serial"
  | Openmp _ -> "openmp"
  | Gpu Gpu_initial -> "gpu-initial"
  | Gpu Gpu_optimised -> "gpu-optimised"
  | Dist _ -> "dist"

let target_name = function
  | Openmp n -> Printf.sprintf "openmp(%d)" n
  | Dist r -> Printf.sprintf "dist(%d)" r
  | t -> target_kind t

(* Which execution tier runs compiled kernels. The engine is link-time
   state (like the pool size): it never changes the compiled IR, so it
   is not part of {!options} or the cache key. *)
type exec_engine =
  | Engine_interp  (* force the tree-walking interpreter *)
  | Engine_closure (* Kernel_compile's per-cell closure JIT *)
  | Engine_vector  (* Kernel_bytecode's row engine, closure fallback *)
  | Engine_native  (* Fsc_codegen's emitted-OCaml JIT, vector fallback *)

let engine_name = function
  | Engine_interp -> "interp"
  | Engine_closure -> "closure"
  | Engine_vector -> "vector"
  | Engine_native -> "native"

let engine_of_name = function
  | "interp" -> Some Engine_interp
  | "closure" -> Some Engine_closure
  | "vector" -> Some Engine_vector
  | "native" -> Some Engine_native
  | _ -> None

let all_engines =
  [ Engine_interp; Engine_closure; Engine_vector; Engine_native ]

let engine_names = List.map engine_name all_engines

type kernel_impl =
  | Compiled of Kc.spec
  | Vectorised of Kc.spec * Kb.plan
  | Native_jit of Kc.spec * Fsc_codegen.Native.kernel
  | Interpreted of string (* fallback reason *)
  | Distributed of Kc.spec (* SPMD over simulated ranks via Dist_kernel *)

type artifact = {
  a_host : Op.op;
  a_stencil : Op.op option; (* the extracted module, post-lowering *)
  a_gpu_ir : Op.op option;  (* Listing-4 pipeline output, GPU targets *)
  a_ctx : Interp.context;
  a_kernels : (string * kernel_impl) list;
  a_target : target;
  a_dist : Fsc_dmp.Dist_kernel.state option; (* distributed runtime *)
}

(* Not [lazy]: forcing a lazy from two domains at once is undefined in
   OCaml 5, and the job server compiles on worker domains. A mutex-run
   once-guard gives the same one-shot init, domain-safely. *)
let reg_mutex = Mutex.create ()
let reg_done = ref false

let ensure_registered () =
  Mutex.lock reg_mutex;
  if not !reg_done then begin
    Fsc_dialects.Registry.init ();
    reg_done := true
  end;
  Mutex.unlock reg_mutex

(* -------------------- flang only -------------------- *)

let flang_only src =
  ensure_registered ();
  let m = stage "frontend" (fun () -> Fsc_fortran.Flower.compile_source src) in
  stage "verify" (fun () ->
      Verifier.verify_in_context_exn (Dialect.flang_context ()) m);
  let ctx = Interp.create_context () in
  Interp.add_module ctx m;
  { a_host = m; a_stencil = None; a_gpu_ir = None; a_ctx = ctx;
    a_kernels = []; a_target = Serial; a_dist = None }

(* -------------------- stencil flow -------------------- *)

let spec_buffers args =
  List.filter_map
    (function Interp.R_buf b -> Some b | _ -> None)
    args

let spec_scalars args =
  List.filter_map
    (function
      | Interp.R_float f -> Some f
      | Interp.R_int n -> Some (float_of_int n)
      | _ -> None)
    args

(* The default native-JIT context: process-wide, created on first use
   (async builds, artifact cache in the default directory). Callers
   wanting a specific cache directory, sync builds or a different
   toolchain pass their own ctx to [link ~native]. *)
let native_mutex = Mutex.create ()
let native_default : Fsc_codegen.Native.ctx option ref = ref None

let default_native_ctx () =
  Mutex.lock native_mutex;
  let ctx =
    match !native_default with
    | Some c -> c
    | None ->
      let c = Fsc_codegen.Native.create () in
      native_default := Some c;
      c
  in
  Mutex.unlock native_mutex;
  ctx

(* Register one stencil kernel's runtime implementation. [dist] is the
   distributed runtime state for [Dist] targets (absent under the interp
   engine, which executes the whole program on the host interpreter).
   [native] is the native-JIT context, present iff the engine is
   [Engine_native] on a CPU target. *)
let register_kernel ~engine ~target ~pool ~dist ~native ~native_tile
    ~native_fuse ctx kernel_func =
  let name = Fsc_dialects.Func.name kernel_func in
  match engine with
  | Engine_interp ->
    (* register nothing: the interpreter executes the kernel func *)
    (name, Interpreted "execution engine 'interp' selected")
  | Engine_closure | Engine_vector | Engine_native -> (
    match Kc.try_analyze kernel_func with
    | Error reason ->
      Log.debug (fun f ->
          f "kernel %s: interpreter fallback (%s)" name reason);
      (match (target, dist) with
      | Dist _, Some dst ->
        (* the interpreter must see current host globals: gather the
           scattered groups first, and re-scatter afterwards *)
        let impl ctx args =
          Obs.with_span ~cat:"kernel" ("kernel.exec " ^ name) @@ fun () ->
          Fsc_dmp.Dist_kernel.run_fallback dst ~reason (fun () ->
              Interp.call_func ctx kernel_func args)
        in
        Interp.register_external ctx name impl
      | _ -> ());
      (name, Interpreted reason)
    | Ok spec ->
      (* GPU targets execute on the simulator's device twins through the
         closure engine regardless of [engine]; the vector and native
         tiers are CPU execution strategies (under [Dist], both use the
         per-rank vector plans in [Dist_kernel], native being a
         per-process-JIT story that does not fit rank-sliced spaces). *)
      let native_kernel =
        match (engine, target, native) with
        | Engine_native, (Serial | Openmp _), Some nctx ->
          Some
            (Fsc_codegen.Native.prepare nctx ~tile:native_tile
               ~fuse:native_fuse ~name spec)
        | _ -> None
      in
      let vplan =
        match (engine, target) with
        | (Engine_vector | Engine_native), (Serial | Openmp _ | Dist _)
          when Option.is_none native_kernel ->
          Some (Kb.compile_spec spec)
        | _ -> None
      in
      let exec ?pool ~bufs ~scalars () =
        match native_kernel with
        | Some nk -> Fsc_codegen.Native.run nk ?pool ~bufs ~scalars ()
        | None -> (
          match vplan with
          | Some plan -> Kb.run plan ?pool ~bufs ~scalars ()
          | None -> Kc.run spec ?pool ~bufs ~scalars ())
      in
      let impl _ctx args =
        Obs.with_span ~cat:"kernel" ("kernel.exec " ^ name) @@ fun () ->
        let bufs = Array.of_list (spec_buffers args) in
        let scalars = Array.of_list (spec_scalars args) in
        (match target with
        | Serial -> exec ~bufs ~scalars ()
        | Openmp _ -> exec ?pool ~bufs ~scalars ()
        | Dist _ -> (
          match dist with
          | Some dst ->
            Fsc_dmp.Dist_kernel.run_kernel dst ~name spec
              ~host:(fun () -> exec ?pool ~bufs ~scalars ())
              ~bufs ~scalars
          | None -> exec ~bufs ~scalars ())
        | Gpu strategy ->
          let g =
            match ctx.Interp.gpu with
            | Some g -> g
            | None ->
              driver_error
                "kernel '%s' requires a GPU device, but the artifact was \
                 linked without one (GPU target without device)"
                name
          in
          (* execute on the device twins, charge the simulator *)
          let dev_bufs = Array.map (Fsc_rt.Gpu_sim.kernel_view g) bufs in
          let sim_strategy =
            match strategy with
            | Gpu_initial -> Fsc_rt.Gpu_sim.Strategy_host_register
            | Gpu_optimised -> Fsc_rt.Gpu_sim.Strategy_device_resident
          in
          let block_threads = 32 * 32 in
          let elems =
            if Array.length bufs = 0 then 0
            else Fsc_rt.Memref_rt.size bufs.(0)
          in
          let blocks = (elems + block_threads - 1) / block_threads in
          Obs.with_span ~cat:"kernel"
            ~args:
              [ ("blocks", Obs.A_int blocks);
                ("threads_per_block", Obs.A_int block_threads) ]
            ("gpu.launch " ^ name)
          @@ fun () ->
          Fsc_rt.Gpu_sim.launch g ~strategy:sim_strategy
            ~block_threads
            ~flops:(float_of_int (Kc.flops spec))
            ~bytes_accessed:(8.0 *. float_of_int (Kc.loads spec))
            ~body:(fun () -> Kc.run spec ~bufs:dev_bufs ~scalars ())
            (Array.to_list bufs));
        []
      in
      Interp.register_external ctx name impl;
      (match (native_kernel, vplan) with
      | Some nk, _ -> (name, Native_jit (spec, nk))
      | None, Some plan -> (name, Vectorised (spec, plan))
      | None, None -> (name, Compiled spec)))

(* GPU data-management externals for the optimised strategy; [managed]
   is the list of kernel symbols whose placement was hoisted. *)
let register_gpu_data ctx (managed : string list) =
  List.iter
    (fun kernel ->
      let with_gpu f _ args =
        (match ctx.Interp.gpu with
        | Some g -> List.iter (f g) (spec_buffers args)
        | None -> ());
        []
      in
      Interp.register_external ctx (kernel ^ "_gpu_init")
        (with_gpu (fun g b ->
             Fsc_rt.Gpu_sim.alloc g b;
             Fsc_rt.Gpu_sim.memcpy_h2d g b));
      Interp.register_external ctx (kernel ^ "_gpu_sync")
        (with_gpu Fsc_rt.Gpu_sim.memcpy_d2h);
      Interp.register_external ctx (kernel ^ "_gpu_free")
        (with_gpu (fun _ _ -> ())))
    managed

type stencil_stats = {
  st_discovered : int;
  st_merged : int;
  st_kernels : int;
}

type options = {
  opt_target : target;
  opt_tile_sizes : int list;
  opt_merge : bool;
  opt_specialize : bool;
  opt_l2_kb : int; (* per-core cache budget for CPU tile annotation *)
}

let default_options ?(target = Serial) ?(tile_sizes = [ 32; 32; 1 ])
    ?(merge = true) ?(specialize = true)
    ?(l2_kb = Fsc_perf.Machine.host_cache.Fsc_perf.Machine.ch_l2_kb) () =
  { opt_target = target; opt_tile_sizes = tile_sizes; opt_merge = merge;
    opt_specialize = specialize; opt_l2_kb = l2_kb }

type compiled_artifact = {
  ca_host : Op.op;
  ca_stencil : Op.op;
  ca_gpu_ir : Op.op option;
  ca_kernels : string list;
  ca_managed : string list;
  ca_footprints : (string * Fsc_analysis.Footprint.t) list;
  ca_stats : stencil_stats;
  ca_options : options;
}

let is_stencil_kernel n =
  String.length n >= 15
  && String.sub n 0 15 = "_stencil_kernel"
  (* the *_gpu_init/sync/free device-management trampolines are
     implemented by runtime externals, not kernels *)
  && not (Filename.check_suffix n "_gpu_init")
  && not (Filename.check_suffix n "_gpu_sync")
  && not (Filename.check_suffix n "_gpu_free")

(* The pure front half of the paper's Figure 1: everything from source
   text to lowered modules. No runtime state is created here, so the
   result can be printed, cached and re-linked at will. [opt_merge] and
   [opt_specialize] exist for the ablation studies: disabling them
   leaves the rest of the pipeline untouched. *)
let compile options src =
  ensure_registered ();
  let target = options.opt_target in
  (* 1. Flang frontend *)
  let m = stage "frontend" (fun () -> Fsc_fortran.Flower.compile_source src) in
  (* 2. xDSL side: discover + merge on the mixed module *)
  let dstats = stage "discovery" (fun () -> Fsc_core.Discovery.run m) in
  let merged =
    stage "merge" (fun () ->
        if options.opt_merge then Fsc_core.Merge.run m else 0)
  in
  stage "verify" (fun () -> Verifier.verify_exn m);
  (* 3. extract stencil sections into their own module *)
  let ex = stage "extraction" (fun () -> Fsc_core.Extraction.run m) in
  let host = ex.Fsc_core.Extraction.host_module in
  let stencil_m = ex.Fsc_core.Extraction.stencil_module in
  (* the host side must now be pure Flang-registered dialects *)
  stage "verify host" (fun () ->
      Verifier.verify_in_context_exn (Dialect.flang_context ()) host);
  (* 4. GPU data placement (optimised strategy only) *)
  let managed =
    match target with
    | Gpu Gpu_optimised ->
      stage "gpu data placement" (fun () ->
          Fsc_core.Gpu_data.run ~host_module:host ~stencil_module:stencil_m)
    | _ -> []
  in
  (* 5. lower the stencil module *)
  let mode =
    match target with
    | Gpu _ -> Fsc_lowering.Stencil_to_scf.Gpu
    | _ -> Fsc_lowering.Stencil_to_scf.Cpu
  in
  stage "stencil-to-scf" (fun () ->
      Fsc_lowering.Stencil_to_scf.run ~mode stencil_m);
  stage "canonicalize" (fun () ->
      ignore (Fsc_transforms.Canonicalize.run stencil_m));
  (match target with
  | Serial | Openmp _ | Dist _ ->
    if options.opt_specialize then
      stage "loop specialisation" (fun () ->
          ignore (Fsc_lowering.Loop_specialize.run stencil_m))
  | Gpu _ -> ());
  (* keep a pre-GPU-pipeline copy for compiled execution; the Listing 4
     pipeline output is produced alongside for inspection/verification *)
  let gpu_ir =
    match target with
    | Gpu _ ->
      stage "gpu pipeline (Listing 4)" (fun () ->
          let clone = Op.clone stencil_m in
          ignore
            (Fsc_lowering.Gpu_pipeline.run ~tile_sizes:options.opt_tile_sizes
               clone);
          Some clone)
    | _ -> None
  in
  (match target with
  | Openmp _ ->
    stage "scf-to-openmp" (fun () ->
        ignore (Fsc_lowering.Scf_to_openmp.run stencil_m))
  | _ -> ());
  (* annotate the (final) top-level loop ops with cache-tile sizes for
     the CPU vector executor; after scf-to-openmp so the attribute lands
     on the op the kernel analyser starts from *)
  (match target with
  | Serial | Openmp _ | Dist _ ->
    stage "cpu tile annotation" (fun () ->
        ignore
          (Fsc_lowering.Loop_tiling.annotate_cpu ~l2_kb:options.opt_l2_kb
             stencil_m))
  | Gpu _ -> ());
  let kernel_funcs =
    Fsc_dialects.Func.all_functions stencil_m
    |> List.filter (fun f -> is_stencil_kernel (Fsc_dialects.Func.name f))
  in
  let kernels = List.map Fsc_dialects.Func.name kernel_funcs in
  (* per-kernel affine footprints, for the halo-staling and guard-elision
     consumers; kernels outside the analysable shape simply have none *)
  let footprints =
    stage "footprint analysis" (fun () ->
        List.filter_map
          (fun f ->
            match Kc.try_analyze f with
            | Ok spec ->
              Some
                ( Fsc_dialects.Func.name f,
                  Fsc_analysis.Footprint.of_spec spec )
            | Error _ -> None)
          kernel_funcs)
  in
  { ca_host = host; ca_stencil = stencil_m; ca_gpu_ir = gpu_ir;
    ca_kernels = kernels; ca_footprints = footprints;
    ca_managed = List.map (fun m -> m.Fsc_core.Gpu_data.mg_kernel) managed;
    ca_stats =
      { st_discovered = dstats.Fsc_core.Discovery.found; st_merged = merged;
        st_kernels = List.length kernels };
    ca_options = options }

(* The impure back half: host interpreted, kernels compiled where
   possible, pool/device allocated per target. Works identically on a
   freshly compiled artifact and on one re-parsed from the cache. *)
let link ?(engine = Engine_vector) ?native ?(native_tile = true)
    ?(native_fuse = true) ?(dist_mode = Fsc_dmp.Dist_exec.Overlap)
    ?(dist_fuse = true) ?(dist_coalesce = true) ?(dist_footprint = true) ca =
  ensure_registered ();
  let target = ca.ca_options.opt_target in
  (* resolve the native ctx only when the engine/target pair uses it *)
  let native =
    match (engine, target) with
    | Engine_native, (Serial | Openmp _) ->
      Some
        (match native with
        | Some nctx -> nctx
        | None -> default_native_ctx ())
    | _ -> None
  in
  let ctx = Interp.create_context () in
  Interp.add_module ctx ca.ca_host;
  Interp.add_module ctx ca.ca_stencil;
  let pool =
    match target with
    | Openmp n -> Some (Fsc_rt.Domain_pool.create n)
    | Dist r ->
      (* run ranks concurrently, but never spawn more domains than the
         host has cores for — extra ranks time-share via work stealing *)
      let n = min r (Fsc_rt.Domain_pool.recommended_size ()) in
      if n >= 2 then Some (Fsc_rt.Domain_pool.create n) else None
    | _ -> None
  in
  ctx.Interp.pool <- pool;
  let dist =
    match (target, engine) with
    | Dist ranks, (Engine_closure | Engine_vector | Engine_native) ->
      let dengine =
        match engine with
        | Engine_vector | Engine_native -> Fsc_dmp.Dist_kernel.E_vector
        | _ -> Fsc_dmp.Dist_kernel.E_closure
      in
      Some
        (Fsc_dmp.Dist_kernel.create ?pool ~fuse:dist_fuse
           ~coalesce:dist_coalesce ~footprint_stale:dist_footprint ~ranks
           ~mode:dist_mode ~engine:dengine ())
    | _ -> None
  in
  (match target with
  | Gpu strategy ->
    ctx.Interp.gpu <- Some (Fsc_rt.Gpu_sim.create ());
    ctx.Interp.gpu_strategy <-
      (match strategy with
      | Gpu_initial -> Fsc_rt.Gpu_sim.Strategy_host_register
      | Gpu_optimised -> Fsc_rt.Gpu_sim.Strategy_device_resident)
  | _ -> ());
  let kernels =
    stage "link + kernel compile" (fun () ->
        Fsc_dialects.Func.all_functions ca.ca_stencil
        |> List.filter (fun f ->
               List.mem (Fsc_dialects.Func.name f) ca.ca_kernels)
        |> List.map
             (register_kernel ~engine ~target ~pool ~dist ~native
                ~native_tile ~native_fuse ctx))
  in
  register_gpu_data ctx ca.ca_managed;
  { a_host = ca.ca_host; a_stencil = Some ca.ca_stencil;
    a_gpu_ir = ca.ca_gpu_ir; a_ctx = ctx; a_kernels = kernels;
    a_target = target; a_dist = dist }

(* The full stencil pipeline of the paper's Figure 1. Resets the global
   kernel-name counter for reproducible names — which is why [compile]
   (callable concurrently from server workers) does not: a reset racing
   another in-flight compile could hand out duplicate names. *)
let stencil ?target ?tile_sizes ?merge ?specialize ?engine ?native
    ?native_tile ?native_fuse ?dist_mode ?dist_fuse ?dist_coalesce
    ?dist_footprint src =
  let options = default_options ?target ?tile_sizes ?merge ?specialize () in
  Fsc_core.Extraction.reset_name_counter ();
  let ca = compile options src in
  ( link ?engine ?native ?native_tile ?native_fuse ?dist_mode ?dist_fuse
      ?dist_coalesce ?dist_footprint ca,
    ca.ca_stats )

(* -------------------- execution -------------------- *)

let run artifact =
  (* distributed: buffers are allocated per run, so reset the scatter
     groups before main and gather everything back after *)
  Option.iter Fsc_dmp.Dist_kernel.begin_run artifact.a_dist;
  Interp.run_main artifact.a_ctx;
  Option.iter Fsc_dmp.Dist_kernel.sync_back artifact.a_dist;
  (* GPU: make host mirrors consistent at program end *)
  (match artifact.a_ctx.Interp.gpu with
  | Some g when artifact.a_target <> Gpu Gpu_initial ->
    Fsc_rt.Gpu_sim.sync_all_d2h g
  | _ -> ())

let shutdown artifact =
  (* drain in-flight native builds first: even a short run must leave
     its compiled plugins published in the cache for the next process *)
  List.iter
    (fun (_, impl) ->
      match impl with
      | Native_jit (_, nk) -> Fsc_codegen.Native.drain nk
      | _ -> ())
    artifact.a_kernels;
  match artifact.a_ctx.Interp.pool with
  | Some p ->
    Fsc_rt.Domain_pool.shutdown p;
    artifact.a_ctx.Interp.pool <- None
  | None -> ()

(* Grid named [name] allocated during execution. *)
let buffer artifact name =
  List.assoc_opt name artifact.a_ctx.Interp.named_buffers

let buffer_exn artifact name =
  match buffer artifact name with
  | Some b -> b
  | None ->
    driver_error
      "no buffer named '%s' was allocated during execution (known \
       buffers: %s)"
      name
      (match artifact.a_ctx.Interp.named_buffers with
      | [] -> "none"
      | bs -> String.concat ", " (List.map fst bs))
